// Quickstart: annotate a C program for GC-safety, compile it for the
// simulated SPARC, and run it against the conservative collector — the
// whole pipeline in a page of code.
package main

import (
	"fmt"
	"log"

	"gcsafety"
	"gcsafety/internal/interp"
)

const program = `
struct node { int val; struct node *next; };

struct node *cons(int v, struct node *rest) {
    struct node *n = (struct node *)GC_malloc(sizeof(struct node));
    n->val = v;
    n->next = rest;
    return n;
}

int main() {
    struct node *list = 0;
    int i;
    int sum = 0;
    for (i = 1; i <= 100; i++) list = cons(i, list);
    while (list) {
        sum += list->val;
        list = list->next;
    }
    print_str("sum 1..100 = ");
    print_int(sum);
    print_str("\n");
    return 0;
}
`

func main() {
	// Step 1: the preprocessor. This is the paper's contribution — a
	// C-to-C rewrite inserting KEEP_LIVE(e, BASE(e)) around pointer
	// arithmetic.
	ann, err := gcsafety.Annotate("quickstart.c", program, gcsafety.Safe())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("annotator inserted %d KEEP_LIVE calls (%d suppressed as plain copies)\n\n",
		ann.Inserted, ann.Suppressed)
	fmt.Println("--- annotated source ---")
	fmt.Println(ann.Output)

	// Step 2: compile (optimized) and execute with an asynchronous
	// collector — a collection may fire between any two instructions —
	// and the premature-reclamation detector armed.
	res, err := gcsafety.Run("quickstart.c", program, gcsafety.Pipeline{
		Annotate:        true,
		AnnotateOptions: gcsafety.Safe(),
		Optimize:        true,
		Exec: interp.Options{
			GCEveryInstrs: 50,
			Validate:      true,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- program output ---")
	fmt.Print(res.Exec.Output)
	fmt.Printf("\n%d instructions, %d cycles, %d collections, %d objects allocated\n",
		res.Exec.Instrs, res.Exec.Cycles, res.Exec.GCStats.Collections,
		res.Exec.GCStats.ObjectsAlloced)
}
