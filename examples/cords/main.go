// Cords: run the cordtest workload — the cord (rope) string package the
// paper measured — through every treatment of the evaluation, printing the
// slowdown row exactly as it appears in the paper's tables, plus the
// postprocessor's recovery.
package main

import (
	"fmt"
	"log"

	"gcsafety/internal/bench"
	"gcsafety/internal/machine"
	"gcsafety/internal/workloads"
)

func main() {
	w, ok := workloads.ByName("cordtest")
	if !ok {
		log.Fatal("cordtest workload missing")
	}
	fmt.Printf("cordtest: %d lines of C, cord package + test driver\n\n", w.Lines)

	for _, cfg := range machine.Configs() {
		base, err := bench.Measure(w, bench.Opt, cfg)
		if err != nil {
			log.Fatal(err)
		}
		safe, err := bench.Measure(w, bench.OptSafe, cfg)
		if err != nil {
			log.Fatal(err)
		}
		dbg, err := bench.Measure(w, bench.Debug, cfg)
		if err != nil {
			log.Fatal(err)
		}
		chk, err := bench.Measure(w, bench.DebugChecked, cfg)
		if err != nil {
			log.Fatal(err)
		}
		post, err := bench.Measure(w, bench.OptSafePost, cfg)
		if err != nil {
			log.Fatal(err)
		}
		pct := func(m *bench.Measurement) float64 {
			return (float64(m.Cycles)/float64(base.Cycles) - 1) * 100
		}
		fmt.Printf("%s:\n", cfg.Name)
		fmt.Printf("  -O          %12d cycles   (baseline)\n", base.Cycles)
		fmt.Printf("  -O safe     %12d cycles   %+6.1f%%\n", safe.Cycles, pct(safe))
		fmt.Printf("  -O safe+post%12d cycles   %+6.1f%%   (after the peephole postprocessor)\n", post.Cycles, pct(post))
		fmt.Printf("  -g          %12d cycles   %+6.1f%%\n", dbg.Cycles, pct(dbg))
		fmt.Printf("  -g checked  %12d cycles   %+6.1f%%\n", chk.Cycles, pct(chk))
		fmt.Println()
	}

	res, err := bench.Measure(w, bench.Opt, machine.SPARCstation10())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("program output:")
	fmt.Print(res.Output)
}
