// Hazards: the temporal and concurrency hazard catalogue, promoted from
// the best fuzz-generated hazard programs into named workloads with golden
// expected outputs (testdata/*.c + testdata/*.want).
//
//   - uaf.c reads through a freed-and-recycled pointer: invisible where
//     free is a no-op, a deterministic epoch violation in temporal mode;
//   - dblfree.c frees the same object twice: the second GC_free finds no
//     live object at the address;
//   - escape.c plants the paper's displacement hazard in a worker thread:
//     under the unannotated optimizer, a collection triggered from another
//     thread's schedule point can reclaim the object mid-use.
//
// Each program runs under the safe production build (which must reproduce
// the golden output) and under the checker build that detects its bug.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"gcsafety"
	"gcsafety/internal/interp"
)

func load(name string) (src, want string) {
	c, err := os.ReadFile(filepath.Join("testdata", name+".c"))
	if err != nil {
		panic(err)
	}
	w, err := os.ReadFile(filepath.Join("testdata", name+".want"))
	if err != nil {
		panic(err)
	}
	return string(c), string(w)
}

func run(label, name, src, want string, p gcsafety.Pipeline) {
	res, err := gcsafety.Run(name+".c", src, p)
	fmt.Printf("%-24s", label+":")
	if err != nil {
		fmt.Printf("DETECTED: %v\n", err)
		return
	}
	if res.Exec.Output == want {
		fmt.Printf("ok, golden output %q\n", res.Exec.Output)
	} else {
		fmt.Printf("SILENT DIVERGENCE: got %q want %q\n", res.Exec.Output, want)
	}
}

func main() {
	exec := interp.Options{
		Validate:      true,
		GCEveryInstrs: 211,
		TriggerBytes:  8 << 10,
	}

	for _, name := range []string{"uaf", "dblfree"} {
		src, want := load(name)
		fmt.Printf("%s.c — a temporal bug, silent where free is a no-op:\n", name)
		run("-O safe", name, src, want, gcsafety.Pipeline{
			Optimize: true, Annotate: true, AnnotateOptions: gcsafety.Safe(), Exec: exec,
		})
		texec := exec
		texec.Temporal = true
		run("-O temporal", name, src, want, gcsafety.Pipeline{
			Optimize: true, Annotate: true, AnnotateOptions: gcsafety.Temporal(), Exec: texec,
		})
		fmt.Println()
	}

	src, want := load("escape")
	fmt.Println("escape.c — a worker thread races the collector; the unsafe build")
	fmt.Println("loses its object under some interleaving, the safe build never does:")
	cexec := exec
	cexec.Threads = 4
	cexec.CollectAtEveryAlloc = true
	cexec.CollectAtSwitch = true
	cexec.GCEveryInstrs = 0
	cexec.TriggerBytes = 0
	run("-O safe mt4", "escape", src, want, gcsafety.Pipeline{
		Optimize: true, Annotate: true, AnnotateOptions: gcsafety.Safe(), Exec: cexec,
	})
	// Scan interleavings for the losing one: the race is existential over
	// schedules, and roughly one in two hundred hits the two-instruction
	// window the optimizer creates.
	for seed := uint64(1); seed <= 2048; seed++ {
		uexec := cexec
		uexec.SchedSeed = seed
		res, err := gcsafety.Run("escape.c", src, gcsafety.Pipeline{Optimize: true, Exec: uexec})
		if err != nil {
			fmt.Printf("%-24sDETECTED under interleaving %d: %v\n", "-O (unsafe) mt4:", seed, err)
			return
		}
		if res.Exec.Output != want {
			fmt.Printf("%-24sSILENT DIVERGENCE under interleaving %d\n", "-O (unsafe) mt4:", seed)
			return
		}
	}
	fmt.Printf("%-24ssurvived 2048 interleavings (hazard did not fire)\n", "-O (unsafe) mt4:")
}
