package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"gcsafety"
	"gcsafety/internal/interp"
	"gcsafety/internal/workloads"
)

// The golden files are the promoted form of the hazard workloads: each
// testdata/<name>.c and .want pair must match internal/workloads'
// catalogue exactly, so the two never drift apart.
func TestGoldenFilesMatchWorkloadCatalogue(t *testing.T) {
	for _, w := range workloads.Hazards() {
		src, err := os.ReadFile(filepath.Join("testdata", w.Name+".c"))
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if string(src) != w.Source {
			t.Errorf("%s.c has drifted from workloads.Hazards(); regenerate it from the catalogue", w.Name)
		}
		want, err := os.ReadFile(filepath.Join("testdata", w.Name+".want"))
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if string(want) != w.Want {
			t.Errorf("%s.want has drifted from workloads.Hazards(): file %q, catalogue %q",
				w.Name, want, w.Want)
		}
	}
}

// TestHazardEngineEquivalence drives every golden hazard through the
// public API on both execution engines, under a benign and an adversarial
// collection schedule, in the safe and the temporal-checker builds. The
// engines must agree exactly: same detection outcome (error for error,
// message for message, fault address for fault address) and the same
// simulated output, instruction and cycle counts on clean runs.
func TestHazardEngineEquivalence(t *testing.T) {
	for _, w := range workloads.Hazards() {
		src, err := os.ReadFile(filepath.Join("testdata", w.Name+".c"))
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		benign := interp.Options{Validate: true, GCEveryInstrs: 211, TriggerBytes: 8 << 10, HeapProfile: true}
		adversarial := interp.Options{Validate: true, CollectAtEveryAlloc: true, HeapProfile: true}
		if w.Threads > 1 {
			benign.Threads = w.Threads
			adversarial.Threads = w.Threads
			adversarial.CollectAtSwitch = true
		}
		temporal := func(e interp.Options) interp.Options { e.Temporal = true; return e }
		for _, c := range []struct {
			build, sched string
			pipe         gcsafety.Pipeline
		}{
			{"safe", "benign", gcsafety.Pipeline{Optimize: true, Annotate: true, AnnotateOptions: gcsafety.Safe(), Exec: benign}},
			{"safe", "adversarial", gcsafety.Pipeline{Optimize: true, Annotate: true, AnnotateOptions: gcsafety.Safe(), Exec: adversarial}},
			{"temporal", "benign", gcsafety.Pipeline{Optimize: true, Annotate: true, AnnotateOptions: gcsafety.Temporal(), Exec: temporal(benign)}},
			{"temporal", "adversarial", gcsafety.Pipeline{Optimize: true, Annotate: true, AnnotateOptions: gcsafety.Temporal(), Exec: temporal(adversarial)}},
		} {
			c := c
			t.Run(w.Name+"/"+c.build+"/"+c.sched, func(t *testing.T) {
				p := c.pipe
				p.Exec.Engine = "interp"
				want, wantErr := gcsafety.Run(w.Name+".c", string(src), p)
				p.Exec.Engine = "threaded"
				got, gotErr := gcsafety.Run(w.Name+".c", string(src), p)
				if (wantErr == nil) != (gotErr == nil) ||
					(wantErr != nil && wantErr.Error() != gotErr.Error()) {
					t.Fatalf("engines disagree on classification:\n  interp:   %v\n  threaded: %v", wantErr, gotErr)
				}
				if (want.Exec == nil) != (got.Exec == nil) {
					t.Fatalf("result presence diverges: interp %v, threaded %v", want.Exec != nil, got.Exec != nil)
				}
				if want.Exec == nil {
					return
				}
				if want.Exec.Output != got.Exec.Output ||
					want.Exec.Instrs != got.Exec.Instrs ||
					want.Exec.Cycles != got.Exec.Cycles {
					t.Errorf("simulated results diverge:\n  interp:   %q instrs=%d cycles=%d\n  threaded: %q instrs=%d cycles=%d",
						want.Exec.Output, want.Exec.Instrs, want.Exec.Cycles,
						got.Exec.Output, got.Exec.Instrs, got.Exec.Cycles)
				}
				ws, gs := want.Exec.Snapshot, got.Exec.Snapshot
				if (ws == nil) != (gs == nil) {
					t.Fatalf("snapshot presence diverges: interp %v, threaded %v", ws != nil, gs != nil)
				}
				if ws != nil && (ws.Trigger != gs.Trigger || ws.FaultAddr != gs.FaultAddr) {
					t.Errorf("violation classification diverges:\n  interp:   trigger=%q addr=%#x\n  threaded: trigger=%q addr=%#x",
						ws.Trigger, ws.FaultAddr, gs.Trigger, gs.FaultAddr)
				}
			})
		}
	}
}

// Smoke test: the example must show both temporal bugs detected, the safe
// builds reproducing the golden outputs, and no silent divergence anywhere.
func TestHazardsExampleSmoke(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "hazards")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	cmd := exec.Command(bin)
	cmd.Dir = "." // golden files load relative to the example directory
	out, err = cmd.Output()
	if err != nil {
		t.Fatalf("hazards example: %v", err)
	}
	text := string(out)
	if strings.Count(text, "DETECTED") < 2 {
		t.Fatalf("example detected fewer than the two temporal bugs:\n%s", text)
	}
	if strings.Count(text, "ok, golden output") < 3 {
		t.Fatalf("safe builds did not all reproduce their golden outputs:\n%s", text)
	}
	if strings.Contains(text, "SILENT DIVERGENCE") {
		t.Fatalf("a build silently diverged:\n%s", text)
	}
}
