package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"gcsafety/internal/workloads"
)

// The golden files are the promoted form of the hazard workloads: each
// testdata/<name>.c and .want pair must match internal/workloads'
// catalogue exactly, so the two never drift apart.
func TestGoldenFilesMatchWorkloadCatalogue(t *testing.T) {
	for _, w := range workloads.Hazards() {
		src, err := os.ReadFile(filepath.Join("testdata", w.Name+".c"))
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if string(src) != w.Source {
			t.Errorf("%s.c has drifted from workloads.Hazards(); regenerate it from the catalogue", w.Name)
		}
		want, err := os.ReadFile(filepath.Join("testdata", w.Name+".want"))
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if string(want) != w.Want {
			t.Errorf("%s.want has drifted from workloads.Hazards(): file %q, catalogue %q",
				w.Name, want, w.Want)
		}
	}
}

// Smoke test: the example must show both temporal bugs detected, the safe
// builds reproducing the golden outputs, and no silent divergence anywhere.
func TestHazardsExampleSmoke(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "hazards")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	cmd := exec.Command(bin)
	cmd.Dir = "." // golden files load relative to the example directory
	out, err = cmd.Output()
	if err != nil {
		t.Fatalf("hazards example: %v", err)
	}
	text := string(out)
	if strings.Count(text, "DETECTED") < 2 {
		t.Fatalf("example detected fewer than the two temporal bugs:\n%s", text)
	}
	if strings.Count(text, "ok, golden output") < 3 {
		t.Fatalf("safe builds did not all reproduce their golden outputs:\n%s", text)
	}
	if strings.Contains(text, "SILENT DIVERGENCE") {
		t.Fatalf("a build silently diverged:\n%s", text)
	}
}
