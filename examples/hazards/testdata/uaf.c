/* uaf: allocation churn, then a read through a freed-and-recycled
 * pointer. free is a no-op outside temporal mode, so the stale read still
 * sees 41 there; temporal mode retires u's allocation epoch at free and
 * faults on the read. */
int main() {
    int i;
    int s = 0;
    int *t;
    int *u;
    int *w;
    for (i = 0; i < 50; i++) {
        t = (int *)GC_malloc(16);
        t[0] = i;
        s = s + t[0];
    }
    print_int(s); print_str("|");
    u = (int *)GC_malloc(12);
    u[0] = 41;
    free(u);
    w = (int *)GC_malloc(12);
    w[0] = 17;
    print_int(u[0]); print_str("|");
    print_int(w[0]); print_str("|");
    return 0;
}
