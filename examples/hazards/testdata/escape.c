/* escape: the paper's displacement hazard on a worker thread. The final
 * reference p[i - 300] reassociates under -O into a far-displaced pointer
 * that the conservative collector cannot recognize; main's allocation churn
 * gives a concurrent collector every opportunity to reclaim p's object
 * while the worker spins. getchar() at EOF is the optimizer-opaque zero. */
int thread1() {
    int t = getchar() + 1;
    int i = t + 420;
    int k = t + 120;
    char *p = (char *)GC_malloc(512);
    int j;
    int s = 0;
    p[k] = 77;
    for (j = 0; j < 4000; j++) s = s + 1;
    assert_true(s == 4000);
    assert_true(p[i - 300] == 77);
    return 0;
}
int main() {
    int i;
    int s = 0;
    int *t;
    for (i = 0; i < 200; i++) {
        t = (int *)GC_malloc(16);
        t[0] = i;
        s = s + t[0];
    }
    join_threads();
    print_int(s); print_str("|");
    return 0;
}
