/* dblfree: pair churn, then the same object freed twice. Both frees are
 * no-ops outside temporal mode; in temporal mode the second GC_free finds
 * no live object at the address and reports the double free. */
struct pair { int a; int b; };
int main() {
    int i;
    int s = 0;
    struct pair *t;
    struct pair *d;
    for (i = 0; i < 40; i++) {
        t = (struct pair *)GC_malloc(sizeof(struct pair));
        t->a = i;
        t->b = i + 1;
        s = s + t->a + t->b;
    }
    print_int(s); print_str("|");
    d = (struct pair *)GC_malloc(sizeof(struct pair));
    d->a = 7;
    print_int(d->a); print_str("|");
    free(d);
    free(d);
    print_str("ok|");
    return 0;
}
