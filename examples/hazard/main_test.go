package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// Smoke test: the example must show the unannotated optimized build losing
// its object to the collector while the annotated and debuggable builds
// print the right answer.

func TestHazardExampleSmoke(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "hazard")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	out, err = exec.Command(bin).Output()
	if err != nil {
		t.Fatalf("hazard example: %v", err)
	}
	text := string(out)
	if !strings.Contains(text, "FAULT:") {
		t.Fatalf("example output shows no fault for the unsafe build:\n%s", text)
	}
	if strings.Count(text, `ok, output "55\n"`) < 2 {
		t.Fatalf("annotated and debuggable builds should both print 55:\n%s", text)
	}
}
