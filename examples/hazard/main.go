// Hazard: reproduce the paper's opening example. An optimizing compiler
// may replace a final reference p[i-1000] by the sequence
//
//	p = p - 1000;  ...  p[i]
//
// and "if a garbage collection is triggered between the replacement of p,
// and the reference to p[i], there may be no recognizable pointer to the
// object referenced by p". This example compiles the same program three
// ways and shows the unannotated optimized build genuinely losing its
// object to the collector, while the KEEP_LIVE-annotated build survives.
package main

import (
	"fmt"

	"gcsafety"
	"gcsafety/internal/interp"
)

const program = `
int main() {
    int i = getchar() + 2000;            /* dynamic index defeats constant folding */
    int k = getchar() + 1000;
    char *p = (char *)GC_malloc(2000);   /* p's live range crosses no call,   */
    p[k] = 55;                           /* so p lives purely in a register   */
    print_int(p[i - 1000]);              /* final reference through p         */
    print_str("\n");
    return 0;
}
`

func run(name string, p gcsafety.Pipeline) {
	p.Exec = interp.Options{
		GCEveryInstrs: 1, // fully asynchronous collector: GC between every two instructions
		Validate:      true,
		Input:         "AA",
	}
	res, err := gcsafety.Run("hazard.c", program, p)
	fmt.Printf("%-28s", name+":")
	if err != nil {
		fmt.Printf("FAULT: %v\n", err)
		return
	}
	fmt.Printf("ok, output %q (%d collections ran)\n",
		res.Exec.Output, res.Exec.GCStats.Collections)
}

func main() {
	fmt.Println("The same program, three treatments, under a maximally hostile GC schedule:")
	fmt.Println()
	run("-O (unsafe)", gcsafety.Pipeline{Optimize: true})
	run("-O + KEEP_LIVE (safe)", gcsafety.Pipeline{Optimize: true, Annotate: true, AnnotateOptions: gcsafety.Safe()})
	run("-g (debuggable)", gcsafety.Pipeline{})
	fmt.Println()

	// Show the disguising instruction sequence the optimizer produced.
	prog, _, err := gcsafety.Build("hazard.c", program, gcsafety.Pipeline{Optimize: true})
	if err != nil {
		panic(err)
	}
	fmt.Println("The unsafe optimized main() — note the `sub rN, rN, 1000` overwriting p:")
	fmt.Print(prog.Listing())
}
