// Checker: use the preprocessor's debugging mode as a pointer-arithmetic
// checker, the paper's second application. The program below contains the
// classic C bug the paper describes — "to represent an array as a pointer
// to one element before the beginning of the array's memory" — the very bug
// the paper's checker found in gawk. The unchecked build runs "correctly";
// the checked build pinpoints the bad arithmetic at its source.
package main

import (
	"fmt"

	"gcsafety"
	"gcsafety/internal/interp"
)

const program = `
int *base;   /* keeps the allocation reachable, masking the bug at run time */

int main() {
    int i;
    int sum = 0;
    base = (int *)GC_malloc(10 * sizeof(int));
    {
        /* 1-indexed view: one element before the beginning of the array */
        int *v = base - 1;
        for (i = 1; i <= 10; i++) v[i] = i * i;
        for (i = 1; i <= 10; i++) sum += v[i];
    }
    print_int(sum);
    print_str("\n");
    return 0;
}
`

func main() {
	// Unchecked: the program "works" because the base pointer keeps the
	// object alive and v[1..10] lands back inside it.
	res, err := gcsafety.Run("buggy.c", program, gcsafety.Pipeline{Optimize: true})
	if err != nil {
		panic(err)
	}
	fmt.Printf("unchecked optimized build: output %s", res.Exec.Output)

	// Checked: every pointer-arithmetic result is validated by
	// GC_same_obj against the collector's own object map.
	fmt.Println("\nchecked (debugging) build:")
	ann, err := gcsafety.Annotate("buggy.c", program, gcsafety.Checked())
	if err != nil {
		panic(err)
	}
	fmt.Println("  the checker rewrote the suspicious line to:")
	for _, line := range splitLines(ann.Output) {
		if contains(line, "GC_same_obj") && contains(line, "- 1") {
			fmt.Println("   ", trim(line))
		}
	}
	_, err = gcsafety.Run("buggy.c", program, gcsafety.Pipeline{
		Annotate:        true,
		AnnotateOptions: gcsafety.Checked(),
		Exec:            interp.Options{Validate: true},
	})
	if err == nil {
		fmt.Println("  BUG NOT DETECTED (unexpected)")
		return
	}
	fmt.Printf("  detected: %v\n", err)
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func trim(s string) string {
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\t') {
		s = s[1:]
	}
	return s
}
