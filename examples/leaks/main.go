// Leaks: retained-size forensics on a rooted leak.
//
// testdata/leak.c grows a global cache list the program never reads back:
// every entry stays reachable from the 'cache' root, so the collector must
// keep it all — the classic leak a tracing collector cannot free. The
// example runs it with heap profiling on, verifies the dominator-tree
// retained sizes against the brute-force reachability-deletion oracle, and
// prints the end-of-run snapshot report: top retainers by retained size,
// each with its allocation site and shortest root path. Execution is
// deterministic, so the report is pinned as testdata/leak.want.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"gcsafety"
	"gcsafety/internal/heapdump"
	"gcsafety/internal/interp"
)

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "leaks: %v\n", err)
	os.Exit(1)
}

func main() {
	src, err := os.ReadFile(filepath.Join("testdata", "leak.c"))
	if err != nil {
		fatal(err)
	}
	res, err := gcsafety.Run("leak.c", string(src), gcsafety.Pipeline{
		Optimize: true,
		Exec:     interp.Options{HeapProfile: true, TriggerBytes: 8 << 10},
	})
	if err != nil {
		fatal(err)
	}
	snap := res.Exec.Snapshot
	if snap == nil {
		fatal(fmt.Errorf("no snapshot: %s", res.Exec.SnapshotErr))
	}
	a := heapdump.Analyze(snap)
	// The oracle check first: every retained size the report is about to
	// print must match the reachability-deletion definition.
	for i := range snap.Objects {
		if got, want := a.Dom.Retained[i], a.Graph.BruteRetained(i); got != want {
			fmt.Printf("ORACLE DISAGREEMENT at object %#x: dominator retained %d, deletion retained %d\n",
				snap.Objects[i].Base, got, want)
			os.Exit(1)
		}
	}
	fmt.Printf("program output: %q\n", res.Exec.Output)
	a.RenderReport(os.Stdout, 5)
	fmt.Println("oracle agreement: dominator retained sizes match reachability deletion for every object")
}
