package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"gcsafety/internal/workloads"
)

// testdata/leak.c is the promoted form of workloads.Leak(): the two must
// never drift apart, so the heapdump-smoke target and this example always
// profile the same program.
func TestGoldenSourceMatchesWorkloadCatalogue(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "leak.c"))
	if err != nil {
		t.Fatal(err)
	}
	if string(src) != workloads.Leak().Source {
		t.Error("leak.c has drifted from workloads.Leak(); regenerate it from the catalogue")
	}
}

// Smoke test: execution and capture are deterministic, so the whole report
// — retainer order, allocation sites, root paths, retained byte counts —
// is pinned as a golden file. Any disagreement between the dominator tree
// and the brute-force oracle exits nonzero and fails here too.
func TestLeaksExampleSmoke(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "leaks")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	cmd := exec.Command(bin)
	cmd.Dir = "." // leak.c loads relative to the example directory
	out, err = cmd.Output()
	if err != nil {
		t.Fatalf("leaks example: %v\n%s", err, out)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "leak.want"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != string(want) {
		t.Errorf("report drifted from the golden:\n--- got ---\n%s--- want ---\n%s", out, want)
	}
}
