package gcsafety

import (
	"testing"

	"gcsafety/internal/interp"
	"gcsafety/internal/pipeline"
	"gcsafety/internal/threaded"
	"gcsafety/internal/workloads"
)

// TestEngineSmoke is the engine-smoke gate (make engine-smoke): for every
// Zorn workload, a warm threaded rebuild is served entirely from the
// stage cache — including the Lower stage's closure artifact — and the
// two execution engines agree exactly on simulated instructions, cycles
// and output.
func TestEngineSmoke(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p := Pipeline{Optimize: true, Exec: interp.Options{Engine: threaded.Name, Input: w.Input}}
			if _, _, _, err := BuildWithReport(w.Name+".c", w.Source, p); err != nil {
				t.Fatalf("cold build: %v", err)
			}
			_, _, rep, err := BuildWithReport(w.Name+".c", w.Source, p)
			if err != nil {
				t.Fatalf("warm build: %v", err)
			}
			if !rep.AllHits() {
				for _, st := range rep.Stages {
					if !st.CacheHit {
						t.Errorf("warm threaded rebuild recomputed stage %s", st.Stage)
					}
				}
			}
			var sawLower bool
			for _, st := range rep.Stages {
				sawLower = sawLower || st.Stage == string(pipeline.StageLower)
			}
			if !sawLower {
				t.Error("threaded build report has no lower stage")
			}

			ri, err := Run(w.Name+".c", w.Source, Pipeline{Optimize: true, Exec: interp.Options{Input: w.Input}})
			if err != nil {
				t.Fatalf("interp run: %v", err)
			}
			rt, err := Run(w.Name+".c", w.Source, p)
			if err != nil {
				t.Fatalf("threaded run: %v", err)
			}
			if ri.Exec.Instrs != rt.Exec.Instrs || ri.Exec.Cycles != rt.Exec.Cycles {
				t.Errorf("engines disagree: interp instrs=%d cycles=%d, threaded instrs=%d cycles=%d",
					ri.Exec.Instrs, ri.Exec.Cycles, rt.Exec.Instrs, rt.Exec.Cycles)
			}
			if ri.Exec.Output != rt.Exec.Output {
				t.Errorf("output diverges between engines")
			}
			if w.Want != "" && rt.Exec.Output != w.Want {
				t.Errorf("threaded output does not match the workload's golden output")
			}
		})
	}
}
