package workloads

import (
	"errors"
	"testing"

	"gcsafety/internal/cc/parser"
	"gcsafety/internal/codegen"
	"gcsafety/internal/gcsafe"
	"gcsafety/internal/interp"
	"gcsafety/internal/machine"
	"gcsafety/internal/peephole"
)

type buildMode struct {
	name        string
	annotate    bool
	mode        gcsafe.Mode
	optimize    bool
	postprocess bool
}

var modes = []buildMode{
	{name: "-O"},
	{name: "-O safe", annotate: true, optimize: true},
	{name: "-g"},
	{name: "-g checked", annotate: true, mode: gcsafe.ModeChecked},
	{name: "-O safe +post", annotate: true, optimize: true, postprocess: true},
}

func init() {
	modes[0].optimize = true
}

func runWorkload(t *testing.T, w Workload, bm buildMode) (*interp.Result, error) {
	t.Helper()
	file, err := parser.Parse(w.Name+".c", w.Source)
	if err != nil {
		t.Fatalf("%s: parse: %v", w.Name, err)
	}
	if bm.annotate {
		if _, err := gcsafe.Annotate(file, gcsafe.Options{Mode: bm.mode}); err != nil {
			t.Fatalf("%s: annotate: %v", w.Name, err)
		}
	}
	cfg := machine.SPARCstation10()
	prog, err := codegen.Compile(file, codegen.Options{Optimize: bm.optimize, Machine: cfg})
	if err != nil {
		t.Fatalf("%s: compile: %v", w.Name, err)
	}
	if bm.postprocess {
		peephole.Optimize(prog, cfg)
	}
	return interp.Run(prog, interp.Options{
		Config:   cfg,
		Input:    w.Input,
		Validate: true,
	})
}

func TestWorkloadsAllModes(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			ref, err := runWorkload(t, w, buildMode{name: "-g reference"})
			if err != nil {
				t.Fatalf("reference run failed: %v\noutput: %q", err, ref.Output)
			}
			if ref.Output == "" {
				t.Fatal("reference produced no output")
			}
			t.Logf("reference output (%d cycles, %d allocs):\n%s",
				ref.Cycles, ref.GCStats.ObjectsAlloced, ref.Output)
			if ref.Output != w.Want {
				t.Errorf("reference output does not match the pinned golden.\ngot:  %q\nwant: %q", ref.Output, w.Want)
			}
			for _, bm := range modes {
				bm := bm
				t.Run(bm.name, func(t *testing.T) {
					res, err := runWorkload(t, w, bm)
					isChecked := bm.mode == gcsafe.ModeChecked && bm.annotate
					if isChecked && w.CheckedFails {
						var ce *interp.CheckError
						if err == nil {
							t.Fatalf("checked build was expected to detect the pointer bug (paper's gawk footnote); output %q", res.Output)
						}
						if !errors.As(err, &ce) {
							t.Fatalf("checked build failed with a non-check error: %v", err)
						}
						return
					}
					if err != nil {
						t.Fatalf("run failed: %v\noutput: %q", err, res.Output)
					}
					if res.Output != ref.Output {
						t.Errorf("output differs from reference.\ngot:  %q\nwant: %q", res.Output, ref.Output)
					}
				})
			}
		})
	}
}

func TestWorkloadsAreAllocationIntensive(t *testing.T) {
	// The paper: "All of these programs are very pointer and allocation
	// intensive."
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			res, err := runWorkload(t, w, buildMode{name: "-O", optimize: true})
			if err != nil {
				t.Fatalf("run failed: %v", err)
			}
			if res.GCStats.ObjectsAlloced < 500 {
				t.Errorf("only %d allocations; not allocation-intensive", res.GCStats.ObjectsAlloced)
			}
		})
	}
}

func TestWorkloadsSurviveCollection(t *testing.T) {
	// Force frequent collections and re-check outputs.
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			file, err := parser.Parse(w.Name+".c", w.Source)
			if err != nil {
				t.Fatal(err)
			}
			cfg := machine.SPARCstation10()
			prog, err := codegen.Compile(file, codegen.Options{Optimize: false, Machine: cfg})
			if err != nil {
				t.Fatal(err)
			}
			res, err := interp.Run(prog, interp.Options{
				Config: cfg, Input: w.Input, Validate: true, TriggerBytes: 16 << 10,
			})
			if err != nil {
				t.Fatalf("run failed: %v", err)
			}
			if res.GCStats.Collections == 0 {
				t.Error("no collections happened; the test proves nothing")
			}
			ref, err := runWorkload(t, w, buildMode{name: "-g"})
			if err != nil {
				t.Fatal(err)
			}
			if res.Output != ref.Output {
				t.Errorf("output changed under frequent collection")
			}
		})
	}
}

func TestWorkloadMetadata(t *testing.T) {
	names := map[string]bool{}
	for _, w := range All() {
		if names[w.Name] {
			t.Errorf("duplicate workload %s", w.Name)
		}
		names[w.Name] = true
		if w.Lines < 50 {
			t.Errorf("%s: implausibly small source (%d lines)", w.Name, w.Lines)
		}
		if _, ok := ByName(w.Name); !ok {
			t.Errorf("ByName(%s) failed", w.Name)
		}
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Error("ByName accepted an unknown name")
	}
}

// TestWorkloadsSafeUnderAsyncGC runs the annotated optimized build of every
// workload with collections firing asynchronously between instructions —
// the regime the paper's safety argument must survive on real programs.
func TestWorkloadsSafeUnderAsyncGC(t *testing.T) {
	if testing.Short() {
		t.Skip("async sweep is slow")
	}
	cfg := machine.SPARCstation10()
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			file, err := parser.Parse(w.Name+".c", w.Source)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := gcsafe.Annotate(file, gcsafe.Options{}); err != nil {
				t.Fatal(err)
			}
			prog, err := codegen.Compile(file, codegen.Options{Optimize: true, Machine: cfg})
			if err != nil {
				t.Fatal(err)
			}
			res, err := interp.Run(prog, interp.Options{
				Config:        cfg,
				Input:         w.Input,
				Validate:      true,
				GCEveryInstrs: 4999, // prime cadence: sample many program points
			})
			if err != nil {
				t.Fatalf("faulted under async GC: %v", err)
			}
			if res.Output != w.Want {
				t.Fatalf("output changed under async GC")
			}
			if res.GCStats.Collections < 10 {
				t.Fatalf("only %d collections; regime not exercised", res.GCStats.Collections)
			}
		})
	}
}
