package workloads

// Gs returns the miniature PostScript-style interpreter: a token scanner, a
// tagged-object operand stack, a dictionary, procedure objects and a
// working set of operators. Like the real Ghostscript, "most heap objects
// have prepended standard headers": every object is allocated with a header
// block in front of the body, so body pointers are interior pointers into
// the allocation — the layout the paper credits for Ghostscript's clean
// behaviour under checking.
func Gs() Workload {
	return Workload{
		Name:   "gs",
		Source: gsSrc,
		Input:  gsProgram,
		Want:   gsWant,
		Lines:  countLines(gsSrc),
	}
}

// gsProgram is the PostScript-flavoured input: integer math, stack
// manipulation, named definitions, procedures and loops.
const gsProgram = `
/fact { dup 1 le { pop 1 } { dup 1 sub fact mul } ifelse } def
/square { dup mul } def
/sumsq 0 def
1 1 10 { square /sumsq sumsq 2 index add def pop } for
(sum of squares 1..10: ) print sumsq =
(10 factorial: ) print 10 fact =
/fib { dup 2 lt { } { dup 1 sub fib exch 2 sub fib add } ifelse } def
(fib 12: ) print 12 fib =
/count 0 def
20 { /count count 1 add def } repeat
(repeat count: ) print count =
1 2 3 4 5 add add add add (stack sum: ) print =
(done) print nl
`

const gsSrc = `/* gs: a miniature PostScript interpreter with header-prefixed objects. */

enum {
    T_INT = 1, T_NAME = 2, T_STRING = 3, T_PROC = 4,
    STACKSZ = 256, MAXTOK = 128
};

/* Every object is allocated as header + body in one block; the object
   pointer refers to the body, an interior pointer past the header. */
struct header {
    int magic;
    int kind;
};

struct obj {
    int type;
    int ival;
    char *sval;          /* name, string, or procedure token text */
};

enum { HDRMAGIC = 0x6753 };

struct obj *new_obj(int type) {
    char *block = (char *)GC_malloc(sizeof(struct header) + sizeof(struct obj));
    struct header *h = (struct header *)block;
    struct obj *o = (struct obj *)(block + sizeof(struct header));
    h->magic = HDRMAGIC;
    h->kind = type;
    o->type = type;
    o->ival = 0;
    o->sval = 0;
    return o;
}

/* object header lookup, Ghostscript style */
struct header *obj_header(struct obj *o) {
    return (struct header *)((char *)o - sizeof(struct header));
}

struct obj *new_int(int v) {
    struct obj *o = new_obj(T_INT);
    o->ival = v;
    return o;
}

struct obj *new_strobj(int type, char *s) {
    struct obj *o = new_obj(type);
    char *copy = (char *)GC_malloc(strlen(s) + 1);
    strcpy(copy, s);
    o->sval = copy;
    return o;
}

/* operand stack */
struct obj *stack[STACKSZ];
int sp = 0;

void push(struct obj *o) {
    if (sp >= STACKSZ) { print_str("stack overflow\n"); exit(1); }
    stack[sp] = o;
    sp++;
}

struct obj *pop_obj() {
    if (sp == 0) { print_str("stack underflow\n"); exit(1); }
    sp--;
    return stack[sp];
}

int pop_int() {
    struct obj *o = pop_obj();
    if (o->type != T_INT) { print_str("typecheck: int expected\n"); exit(1); }
    if (obj_header(o)->magic != HDRMAGIC) { print_str("corrupt header\n"); exit(1); }
    return o->ival;
}

/* dictionary: association list */
struct dictent {
    char *name;
    struct obj *value;
    struct dictent *next;
};

struct dictent *dict = 0;

void dict_def(char *name, struct obj *value) {
    struct dictent *d = (struct dictent *)GC_malloc(sizeof(struct dictent));
    d->name = (char *)GC_malloc(strlen(name) + 1);
    strcpy(d->name, name);
    d->value = value;
    d->next = dict;
    dict = d;
}

struct obj *dict_load(char *name) {
    struct dictent *d;
    for (d = dict; d != 0; d = d->next) {
        if (strcmp(d->name, name) == 0) return d->value;
    }
    return 0;
}

/* token scanner over a program string */
struct scanner {
    char *text;
    int pos;
    int len;
};

/* next token into tok; returns 0 at end. Handles (...) strings and
   nested { } procedure bodies (returned as a single token). */
int next_token(struct scanner *sc, char *tok) {
    int n = 0;
    char c;
    for (;;) {
        if (sc->pos >= sc->len) return 0;
        c = sc->text[sc->pos];
        if (c != ' ' && c != '\n' && c != '\t') break;
        sc->pos++;
    }
    c = sc->text[sc->pos];
    if (c == '(') {
        sc->pos++;
        while (sc->pos < sc->len && sc->text[sc->pos] != ')') {
            if (n < MAXTOK - 2) { tok[n] = sc->text[sc->pos]; n++; }
            sc->pos++;
        }
        sc->pos++;
        /* mark as string with a leading SOH byte */
        {
            int i;
            for (i = n; i > 0; i--) tok[i] = tok[i - 1];
        }
        tok[0] = 1;
        tok[n + 1] = 0;
        return 1;
    }
    if (c == '{') {
        int depth = 1;
        sc->pos++;
        tok[n] = 2; n++;    /* STX marks a procedure body */
        while (sc->pos < sc->len && depth > 0) {
            c = sc->text[sc->pos];
            if (c == '{') depth++;
            if (c == '}') depth--;
            if (depth > 0) {
                if (n < MAXTOK - 1) { tok[n] = c; n++; }
            }
            sc->pos++;
        }
        tok[n] = 0;
        return 1;
    }
    while (sc->pos < sc->len) {
        c = sc->text[sc->pos];
        if (c == ' ' || c == '\n' || c == '\t') break;
        if (n < MAXTOK - 1) { tok[n] = c; n++; }
        sc->pos++;
    }
    tok[n] = 0;
    return 1;
}

int is_number(char *s) {
    if (*s == '-') s++;
    if (*s < '0' || *s > '9') return 0;
    while (*s) {
        if (*s < '0' || *s > '9') return 0;
        s++;
    }
    return 1;
}

int parse_int(char *s) {
    int neg = 0;
    int v = 0;
    if (*s == '-') { neg = 1; s++; }
    while (*s) { v = v * 10 + (*s - '0'); s++; }
    if (neg) return -v;
    return v;
}

void run_string(char *text);

/* execute one operator or name token */
void exec_token(char *tok) {
    if (is_number(tok)) {
        push(new_int(parse_int(tok)));
        return;
    }
    if (tok[0] == 1) { /* string literal */
        push(new_strobj(T_STRING, tok + 1));
        return;
    }
    if (tok[0] == 2) { /* procedure body */
        push(new_strobj(T_PROC, tok + 1));
        return;
    }
    if (tok[0] == '/') { /* literal name */
        push(new_strobj(T_NAME, tok + 1));
        return;
    }
    if (strcmp(tok, "add") == 0) { int b = pop_int(); int a = pop_int(); push(new_int(a + b)); return; }
    if (strcmp(tok, "sub") == 0) { int b = pop_int(); int a = pop_int(); push(new_int(a - b)); return; }
    if (strcmp(tok, "mul") == 0) { int b = pop_int(); int a = pop_int(); push(new_int(a * b)); return; }
    if (strcmp(tok, "div") == 0) { int b = pop_int(); int a = pop_int(); push(new_int(a / b)); return; }
    if (strcmp(tok, "mod") == 0) { int b = pop_int(); int a = pop_int(); push(new_int(a % b)); return; }
    if (strcmp(tok, "neg") == 0) { push(new_int(-pop_int())); return; }
    if (strcmp(tok, "dup") == 0) { struct obj *o = pop_obj(); push(o); push(o); return; }
    if (strcmp(tok, "pop") == 0) { pop_obj(); return; }
    if (strcmp(tok, "exch") == 0) {
        struct obj *b = pop_obj();
        struct obj *a = pop_obj();
        push(b); push(a);
        return;
    }
    if (strcmp(tok, "index") == 0) {
        int n = pop_int();
        if (n < 0 || n >= sp) { print_str("rangecheck\n"); exit(1); }
        push(stack[sp - 1 - n]);
        return;
    }
    if (strcmp(tok, "eq") == 0) { int b = pop_int(); int a = pop_int(); push(new_int(a == b)); return; }
    if (strcmp(tok, "lt") == 0) { int b = pop_int(); int a = pop_int(); push(new_int(a < b)); return; }
    if (strcmp(tok, "le") == 0) { int b = pop_int(); int a = pop_int(); push(new_int(a <= b)); return; }
    if (strcmp(tok, "gt") == 0) { int b = pop_int(); int a = pop_int(); push(new_int(a > b)); return; }
    if (strcmp(tok, "ge") == 0) { int b = pop_int(); int a = pop_int(); push(new_int(a >= b)); return; }
    if (strcmp(tok, "def") == 0) {
        struct obj *val = pop_obj();
        struct obj *name = pop_obj();
        if (name->type != T_NAME) { print_str("typecheck: name expected\n"); exit(1); }
        dict_def(name->sval, val);
        return;
    }
    if (strcmp(tok, "if") == 0) {
        struct obj *proc = pop_obj();
        int cond = pop_int();
        if (cond) run_string(proc->sval);
        return;
    }
    if (strcmp(tok, "ifelse") == 0) {
        struct obj *pelse = pop_obj();
        struct obj *pthen = pop_obj();
        int cond = pop_int();
        if (cond) run_string(pthen->sval);
        else run_string(pelse->sval);
        return;
    }
    if (strcmp(tok, "repeat") == 0) {
        struct obj *proc = pop_obj();
        int n = pop_int();
        int i;
        for (i = 0; i < n; i++) run_string(proc->sval);
        return;
    }
    if (strcmp(tok, "for") == 0) {
        struct obj *proc = pop_obj();
        int limit = pop_int();
        int step = pop_int();
        int init = pop_int();
        int i;
        for (i = init; (step > 0 && i <= limit) || (step < 0 && i >= limit); i += step) {
            push(new_int(i));
            run_string(proc->sval);
        }
        return;
    }
    if (strcmp(tok, "print") == 0) {
        struct obj *o = pop_obj();
        if (o->type == T_STRING) print_str(o->sval);
        else print_int(o->ival);
        return;
    }
    if (strcmp(tok, "=") == 0) {
        struct obj *o = pop_obj();
        if (o->type == T_INT) print_int(o->ival);
        else print_str(o->sval);
        print_str("\n");
        return;
    }
    if (strcmp(tok, "nl") == 0) { print_str("\n"); return; }
    if (strcmp(tok, "pstack") == 0) {
        int i;
        for (i = sp - 1; i >= 0; i--) {
            if (stack[i]->type == T_INT) print_int(stack[i]->ival);
            else print_str(stack[i]->sval);
            print_str(" ");
        }
        print_str("\n");
        return;
    }
    /* otherwise: executable name — load and run/push */
    {
        struct obj *v = dict_load(tok);
        if (v == 0) {
            print_str("undefined: ");
            print_str(tok);
            print_str("\n");
            exit(1);
        }
        if (v->type == T_PROC) run_string(v->sval);
        else push(v);
    }
}

void run_string(char *text) {
    struct scanner sc;
    char tok[MAXTOK];
    sc.text = text;
    sc.pos = 0;
    sc.len = strlen(text);
    while (next_token(&sc, tok)) {
        exec_token(tok);
    }
}

int main() {
    char *program;
    int cap = 4096;
    int n = 0;
    int c;
    program = (char *)GC_malloc(cap);
    for (;;) {
        c = getchar();
        if (c == -1) break;
        if (n < cap - 1) {
            program[n] = c;
            n++;
        }
    }
    program[n] = 0;
    run_string(program);
    print_str("objects on stack at exit: ");
    print_int(sp);
    print_str("\n");
    return 0;
}
`

const gsWant = "sum of squares 1..10: 385\n" +
	"10 factorial: 3628800\n" +
	"fib 12: 144\n" +
	"repeat count: 20\n" +
	"stack sum: 15\n" +
	"done\n" +
	"objects on stack at exit: 0\n"
