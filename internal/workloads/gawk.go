package workloads

import "strings"

// Gawk returns the miniature awk-style interpreter: it reads lines, splits
// them into fields, accumulates per-key statistics in a chained hash table,
// and prints a report. Like the real gawk 2.11 measured in the paper, it
// contains a genuine pointer-arithmetic bug: the field vector is accessed
// through a pointer to one element before the beginning of the array so
// that fields are 1-indexed — "a common bug (sometimes referred to
// incorrectly as a 'technique')". The unchecked builds run correctly (the
// base pointer is also retained); the checked build "immediately and
// correctly detected a pointer arithmetic error", so CheckedFails is set.
func Gawk() Workload {
	return Workload{
		Name:         "gawk",
		Source:       gawkSrc,
		Input:        gawkInput(),
		Want:         gawkWant,
		CheckedFails: true,
		Lines:        countLines(gawkSrc),
	}
}

// gawkInput synthesizes the "second largest input supplied by Zorn" analog:
// a deterministic log of space-separated records.
func gawkInput() string {
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta"}
	var sb strings.Builder
	state := uint32(12345)
	for i := 0; i < 400; i++ {
		state = state*1103515245 + 12345
		w := words[state%uint32(len(words))]
		n := int(state % 997)
		sb.WriteString(w)
		sb.WriteByte(' ')
		writeInt(&sb, n)
		sb.WriteByte(' ')
		writeInt(&sb, i)
		sb.WriteByte('\n')
	}
	return sb.String()
}

func writeInt(sb *strings.Builder, n int) {
	if n == 0 {
		sb.WriteByte('0')
		return
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	sb.Write(buf[i:])
}

const gawkSrc = `/* gawk: a miniature awk — field splitting, numeric accumulators and a
   chained hash table keyed by the first field. */

enum { MAXLINE = 256, MAXFIELDS = 16, NBUCKETS = 31 };

struct entry {
    char *key;
    int count;
    int sum;
    struct entry *next;
};

struct entry *buckets[NBUCKETS];

int hash_str(char *s) {
    int h = 0;
    while (*s) {
        h = h * 31 + *s;
        s++;
    }
    if (h < 0) h = -h;
    return h % NBUCKETS;
}

struct entry *intern(char *key) {
    int h = hash_str(key);
    struct entry *e;
    for (e = buckets[h]; e != 0; e = e->next) {
        if (strcmp(e->key, key) == 0) return e;
    }
    e = (struct entry *)GC_malloc(sizeof(struct entry));
    e->key = (char *)GC_malloc(strlen(key) + 1);
    strcpy(e->key, key);
    e->count = 0;
    e->sum = 0;
    e->next = buckets[h];
    buckets[h] = e;
    return e;
}

/* read one line; returns length or -1 at EOF */
int read_line(char *buf) {
    int c;
    int n = 0;
    for (;;) {
        c = getchar();
        if (c == -1) {
            if (n == 0) return -1;
            break;
        }
        if (c == '\n') break;
        if (n < MAXLINE - 1) {
            buf[n] = c;
            n++;
        }
    }
    buf[n] = 0;
    return n;
}

/* fieldbase keeps the real allocation reachable; fields is the buggy
   1-indexed view: one element before the beginning of the array. */
char **fieldbase;
char **fields;

/* split buf into NUL-terminated fields; returns the field count */
int split_fields(char *buf) {
    int nf = 0;
    char *p = buf;
    fieldbase = (char **)GC_malloc(MAXFIELDS * sizeof(char *));
    fields = fieldbase - 1;     /* 1-indexed access: fields[1] .. fields[nf] */
    for (;;) {
        while (*p == ' ' || *p == '\t') p++;
        if (*p == 0) break;
        nf++;
        fields[nf] = p;
        while (*p != 0 && *p != ' ' && *p != '\t') p++;
        if (*p == 0) break;
        *p = 0;
        p++;
    }
    return nf;
}

/* duplicate a field into fresh heap storage (awk's $n values are fresh
   strings each record) */
char *dupstr(char *s) {
    char *d = (char *)GC_malloc(strlen(s) + 1);
    strcpy(d, s);
    return d;
}

int to_number(char *s) {
    int v = 0;
    int neg = 0;
    if (*s == '-') { neg = 1; s++; }
    while (*s >= '0' && *s <= '9') {
        v = v * 10 + (*s - '0');
        s++;
    }
    if (neg) return -v;
    return v;
}

int nlines = 0;
int total = 0;
int maxval = -1;
char maxkey[64];

void process(char *line) {
    int nf = split_fields(line);
    struct entry *e;
    int v;
    int i;
    if (nf < 2) return;
    nlines++;
    /* materialize $1..$nf as fresh heap strings, as awk does */
    for (i = 1; i <= nf; i++) {
        fields[i] = dupstr(fields[i]);
    }
    v = to_number(fields[2]);
    total += v;
    e = intern(fields[1]);
    e->count++;
    e->sum += v;
    if (v > maxval) {
        maxval = v;
        strcpy(maxkey, fields[1]);
    }
}

void report_key(char *key) {
    struct entry *e = intern(key);
    print_str(key);
    print_str(": count ");
    print_int(e->count);
    print_str(" sum ");
    print_int(e->sum);
    print_str("\n");
}

int main() {
    char line[MAXLINE];
    for (;;) {
        int n = read_line(line);
        if (n < 0) break;
        process(line);
    }
    print_str("lines ");
    print_int(nlines);
    print_str(" total ");
    print_int(total);
    print_str(" max ");
    print_int(maxval);
    print_str(" at ");
    print_str(maxkey);
    print_str("\n");
    report_key("alpha");
    report_key("beta");
    report_key("gamma");
    report_key("delta");
    report_key("epsilon");
    report_key("zeta");
    report_key("eta");
    return 0;
}
`

const gawkWant = "lines 400 total 200516 max 995 at epsilon\n" +
	"alpha: count 46 sum 21396\n" +
	"beta: count 74 sum 34604\n" +
	"gamma: count 60 sum 30512\n" +
	"delta: count 55 sum 27003\n" +
	"epsilon: count 60 sum 33447\n" +
	"zeta: count 61 sum 30755\n" +
	"eta: count 44 sum 22799\n"
