package workloads

// Cordtest returns the cord (rope) string package and its test driver:
// heap-allocated concatenation trees over immutable string leaves, with
// construction, indexing, flattening, substring and comparison — the shape
// of the cord package distributed with the Boehm collector.
func Cordtest() Workload {
	return Workload{
		Name:   "cordtest",
		Source: cordtestSrc,
		Want:   cordtestWant,
		Lines:  countLines(cordtestSrc),
	}
}

const cordtestSrc = `/* cordtest: concatenation-tree (rope) string package and test driver. */

struct cord {
    int len;
    char *leaf;           /* non-null for leaf nodes */
    struct cord *left;
    struct cord *right;
};

struct cord *cord_from(char *s) {
    struct cord *c = (struct cord *)GC_malloc(sizeof(struct cord));
    int n = strlen(s);
    char *copy = (char *)GC_malloc(n + 1);
    strcpy(copy, s);
    c->len = n;
    c->leaf = copy;
    c->left = 0;
    c->right = 0;
    return c;
}

struct cord *cord_cat(struct cord *a, struct cord *b) {
    struct cord *c;
    if (a == 0 || a->len == 0) return b;
    if (b == 0 || b->len == 0) return a;
    c = (struct cord *)GC_malloc(sizeof(struct cord));
    c->len = a->len + b->len;
    c->leaf = 0;
    c->left = a;
    c->right = b;
    return c;
}

int cord_len(struct cord *c) {
    if (c == 0) return 0;
    return c->len;
}

char cord_fetch(struct cord *c, int i) {
    while (c->leaf == 0) {
        if (i < c->left->len) {
            c = c->left;
        } else {
            i -= c->left->len;
            c = c->right;
        }
    }
    return c->leaf[i];
}

void cord_fill(struct cord *c, char *buf) {
    if (c == 0) return;
    if (c->leaf != 0) {
        int i;
        for (i = 0; i < c->len; i++) buf[i] = c->leaf[i];
        return;
    }
    cord_fill(c->left, buf);
    cord_fill(c->right, buf + c->left->len);
}

char *cord_to_str(struct cord *c) {
    char *buf = (char *)GC_malloc(cord_len(c) + 1);
    cord_fill(c, buf);
    buf[cord_len(c)] = 0;
    return buf;
}

struct cord *cord_substr(struct cord *c, int start, int n) {
    if (c == 0 || n <= 0) return 0;
    if (start < 0) { n += start; start = 0; }
    if (start >= c->len) return 0;
    if (start + n > c->len) n = c->len - start;
    if (c->leaf != 0) {
        struct cord *r = (struct cord *)GC_malloc(sizeof(struct cord));
        char *piece = (char *)GC_malloc(n + 1);
        int i;
        for (i = 0; i < n; i++) piece[i] = c->leaf[start + i];
        piece[n] = 0;
        r->len = n;
        r->leaf = piece;
        r->left = 0;
        r->right = 0;
        return r;
    }
    if (start + n <= c->left->len)
        return cord_substr(c->left, start, n);
    if (start >= c->left->len)
        return cord_substr(c->right, start - c->left->len, n);
    return cord_cat(cord_substr(c->left, start, c->left->len - start),
                    cord_substr(c->right, 0, start + n - c->left->len));
}

int cord_cmp(struct cord *a, struct cord *b) {
    int la = cord_len(a);
    int lb = cord_len(b);
    int n = la;
    int i;
    if (lb < n) n = lb;
    for (i = 0; i < n; i++) {
        char ca = cord_fetch(a, i);
        char cb = cord_fetch(b, i);
        if (ca != cb) {
            if (ca < cb) return -1;
            return 1;
        }
    }
    if (la < lb) return -1;
    if (la > lb) return 1;
    return 0;
}

struct cord *cord_reverse(struct cord *c) {
    if (c == 0) return 0;
    if (c->leaf != 0) {
        struct cord *r = (struct cord *)GC_malloc(sizeof(struct cord));
        char *buf = (char *)GC_malloc(c->len + 1);
        int i;
        for (i = 0; i < c->len; i++) buf[i] = c->leaf[c->len - 1 - i];
        buf[c->len] = 0;
        r->len = c->len;
        r->leaf = buf;
        r->left = 0;
        r->right = 0;
        return r;
    }
    return cord_cat(cord_reverse(c->right), cord_reverse(c->left));
}

/* A simple checksum over a cord via repeated indexing. */
int cord_hash(struct cord *c) {
    int h = 0;
    int i;
    int n = cord_len(c);
    for (i = 0; i < n; i++) {
        h = h * 31 + cord_fetch(c, i);
        h = h & 0xFFFFFF;
    }
    return h;
}

enum { ITERS = 5 };

int check(int cond, char *what) {
    if (!cond) {
        print_str("FAIL: ");
        print_str(what);
        print_str("\n");
        return 0;
    }
    return 1;
}

int run_iter(int iter) {
    struct cord *c = cord_from("");
    struct cord *unit = cord_from("abcdefghij");
    int reps = 40 + iter;
    int i;
    int ok = 1;
    for (i = 0; i < reps; i++) {
        c = cord_cat(c, unit);
    }
    ok = ok & check(cord_len(c) == reps * 10, "length after concatenation");
    ok = ok & check(cord_fetch(c, 10 * (reps / 2) + 3) == 'd', "fetch mid character");

    /* substring and flatten */
    {
        struct cord *mid = cord_substr(c, 15, 20);
        char *s = cord_to_str(mid);
        ok = ok & check(cord_len(mid) == 20, "substring length");
        ok = ok & check(strlen(s) == 20, "flattened length");
        ok = ok & check(s[0] == 'f', "substring start");
    }

    /* comparison laws */
    {
        struct cord *x = cord_cat(cord_from("hello "), cord_from("world"));
        struct cord *y = cord_from("hello world");
        struct cord *z = cord_from("hello worlz");
        ok = ok & check(cord_cmp(x, y) == 0, "cmp equal across shapes");
        ok = ok & check(cord_cmp(x, z) < 0, "cmp less");
        ok = ok & check(cord_cmp(z, x) > 0, "cmp greater");
    }

    /* reverse twice is identity */
    {
        struct cord *r = cord_reverse(c);
        struct cord *rr = cord_reverse(r);
        ok = ok & check(cord_cmp(c, rr) == 0, "reverse twice");
        ok = ok & check(cord_fetch(r, 0) == cord_fetch(c, cord_len(c) - 1), "reverse ends");
    }

    /* build a deep unbalanced cord and hash it */
    {
        struct cord *d = cord_from("x");
        for (i = 0; i < 60; i++) {
            d = cord_cat(d, cord_from("y"));
            d = cord_cat(cord_from("z"), d);
        }
        ok = ok & check(cord_len(d) == 121, "deep cord length");
        print_int(cord_hash(d));
        print_str(" ");
    }
    print_int(cord_hash(cord_substr(c, 7, 91)));
    print_str("\n");
    return ok;
}

int main() {
    int iter;
    int ok = 1;
    for (iter = 0; iter < ITERS; iter++) {
        ok = ok & run_iter(iter);
    }
    if (ok) print_str("cordtest: PASS\n");
    else print_str("cordtest: FAIL\n");
    return 0;
}
`

// cordtestWant was captured from the -g reference build and pins the whole
// stack against regressions.
const cordtestWant = "15057080 1931061\n" +
	"15057080 1931061\n" +
	"15057080 1931061\n" +
	"15057080 1931061\n" +
	"15057080 1931061\n" +
	"cordtest: PASS\n"
