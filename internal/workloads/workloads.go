// Package workloads holds the benchmark programs of the evaluation: C
// sources standing in for the paper's Zorn-suite measurements. All four are
// "very pointer and allocation intensive", as the paper requires:
//
//   - cordtest: a cord (rope) string package and its test, the analogue of
//     the package "normally distributed with our garbage collector";
//   - cfrac: a factoring program over linked-list bignums (the smallest
//     Zorn member);
//   - gawk: a miniature awk-style field/accumulator interpreter that
//     deliberately contains the classic pointer-arithmetic bug the paper's
//     checker found in the real gawk ("to represent an array as a pointer
//     to one element before the beginning of the array's memory");
//   - gs: a miniature PostScript-style stack interpreter whose heap
//     objects carry prepended standard headers, like the real Ghostscript.
//
// The sources use only the front end's C subset and the native runtime
// library (the unpreprocessed libc of the methodology).
package workloads

// Workload is one benchmark program with its input and expected output.
type Workload struct {
	Name   string
	Source string
	Input  string
	// Want is the expected program output; every measurement mode must
	// reproduce it exactly (except modes marked as failing).
	Want string
	// CheckedFails marks workloads whose checked build correctly detects a
	// real pointer-arithmetic bug and aborts (the paper's gawk footnote).
	CheckedFails bool
	// TemporalFails marks workloads that seed a deliberate use-after-free
	// or double-free: the temporal build is required to detect it and
	// abort, while every other mode (where free is a no-op) reproduces
	// Want.
	TemporalFails bool
	// Threads, when > 1, runs the workload as N concurrent mutator threads
	// (thread 0 is main; thread i runs the workload's threadN function).
	Threads int
	// DebugUnavailable marks workloads without -g numbers (the paper's
	// cfrac footnote: inlining kept it from compiling at -O0).
	DebugUnavailable bool
	// Lines is the source line count, reported like the paper does.
	Lines int
}

// All returns the four workloads in the paper's presentation order.
func All() []Workload {
	return []Workload{
		Cordtest(),
		Cfrac(),
		Gawk(),
		Gs(),
	}
}

// ByName returns the named workload, searching the benchmark suite, the
// hazard catalogue and the leak workload.
func ByName(name string) (Workload, bool) {
	all := append(All(), Hazards()...)
	all = append(all, Leak())
	for _, w := range all {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

func countLines(s string) int {
	n := 1
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			n++
		}
	}
	return n
}
