package workloads

import (
	"errors"
	"testing"

	"gcsafety/internal/cc/parser"
	"gcsafety/internal/codegen"
	"gcsafety/internal/gcsafe"
	"gcsafety/internal/interp"
	"gcsafety/internal/machine"
)

// runHazard builds and runs one hazard workload under a given annotation
// mode, honoring the workload's thread count and an optional adversarial
// collection schedule. schedSeed selects the interleaving for concurrent
// workloads (0 = the interpreter's fixed default).
func runHazard(t *testing.T, w Workload, annotate bool, mode gcsafe.Mode, optimize, adversarial bool, schedSeed uint64) (*interp.Result, error) {
	t.Helper()
	file, err := parser.Parse(w.Name+".c", w.Source)
	if err != nil {
		t.Fatalf("%s: parse: %v", w.Name, err)
	}
	if annotate {
		if _, err := gcsafe.Annotate(file, gcsafe.Options{Mode: mode}); err != nil {
			t.Fatalf("%s: annotate: %v", w.Name, err)
		}
	}
	cfg := machine.SPARCstation10()
	prog, err := codegen.Compile(file, codegen.Options{Optimize: optimize, Machine: cfg})
	if err != nil {
		t.Fatalf("%s: compile: %v", w.Name, err)
	}
	opts := interp.Options{
		Config:    cfg,
		Input:     w.Input,
		Validate:  true,
		Temporal:  mode == gcsafe.ModeTemporal && annotate,
		Threads:   w.Threads,
		SchedSeed: schedSeed,
	}
	if adversarial {
		if w.Threads > 1 {
			opts.CollectAtEveryAlloc = true
			opts.CollectAtSwitch = true
		} else {
			opts.GCEveryInstrs = 1
			opts.CollectAtEveryAlloc = true
		}
	} else {
		opts.GCEveryInstrs = 211
		opts.TriggerBytes = 8 << 10
	}
	return interp.Run(prog, opts)
}

// Every hazard workload's non-temporal builds must reproduce the golden
// output — the seeded bugs are invisible where free is a no-op, which is
// exactly what makes them differential test subjects.
func TestHazardWorkloadsGoldenOutputs(t *testing.T) {
	for _, w := range Hazards() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			for _, bm := range []struct {
				name     string
				annotate bool
				mode     gcsafe.Mode
				optimize bool
			}{
				{name: "-g"},
				{name: "-O safe", annotate: true, optimize: true},
				{name: "-g checked", annotate: true, mode: gcsafe.ModeChecked},
			} {
				res, err := runHazard(t, w, bm.annotate, bm.mode, bm.optimize, false, 0)
				if err != nil {
					t.Fatalf("[%s] run failed: %v", bm.name, err)
				}
				if res.Output != w.Want {
					t.Fatalf("[%s] output diverged:\ngot:  %q\nwant: %q", bm.name, res.Output, w.Want)
				}
			}
		})
	}
}

// The temporal contract on the catalogue: TemporalFails workloads must trip
// the epoch checker in both the optimized and debuggable temporal builds;
// the others must reproduce Want under temporal mode unchanged.
func TestHazardWorkloadsTemporalDetection(t *testing.T) {
	for _, w := range Hazards() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			for _, optimize := range []bool{false, true} {
				res, err := runHazard(t, w, true, gcsafe.ModeTemporal, optimize, false, 0)
				if w.TemporalFails {
					var te *interp.TemporalError
					if err == nil {
						t.Fatalf("temporal build (optimize=%v) missed the seeded bug; output %q", optimize, res.Output)
					}
					if !errors.As(err, &te) {
						t.Fatalf("temporal build (optimize=%v) failed with a non-temporal error: %v", optimize, err)
					}
					continue
				}
				if err != nil {
					t.Fatalf("temporal build (optimize=%v) false positive: %v", optimize, err)
				}
				if res.Output != w.Want {
					t.Fatalf("temporal build (optimize=%v) output diverged: got %q want %q", optimize, res.Output, w.Want)
				}
			}
		})
	}
}

// The escape workload's reason to exist: there is an interleaving under
// which the unannotated optimized build loses the worker's object to a
// collection from another thread's schedule point — the race is existential
// over schedules, so the unsafe build scans interleaving seeds for the
// losing one — while the safe build must survive every one of those same
// interleavings with the golden output.
func TestEscapeWorkloadCrossThreadDetection(t *testing.T) {
	w := Escape()
	// The safe build must survive every interleaving; spot-check a band.
	for seed := uint64(1); seed <= 64; seed++ {
		res, err := runHazard(t, w, true, gcsafe.ModeSafe, true, true, seed)
		if err != nil {
			t.Fatalf("safe concurrent build failed under schedule %d: %v", seed, err)
		}
		if res.Output != w.Want {
			t.Fatalf("safe concurrent build diverged under schedule %d: got %q want %q",
				seed, res.Output, w.Want)
		}
	}
	// The unsafe build needs only one losing interleaving, and the losing
	// window (the two instructions between the displacement overwriting
	// p's slot and the final load) is narrow — so scan: ~0.5% of schedules
	// hit it, and the scan stops at the first one.
	const seeds = 2048
	for seed := uint64(1); seed <= seeds; seed++ {
		_, err := runHazard(t, w, false, gcsafe.ModeSafe, true, true, seed)
		if err == nil {
			continue
		}
		var fe *interp.FaultError
		if !errors.As(err, &fe) {
			t.Fatalf("unexpected failure shape under schedule %d: %v", seed, err)
		}
		safe, err := runHazard(t, w, true, gcsafe.ModeSafe, true, true, seed)
		if err != nil || safe.Output != w.Want {
			t.Fatalf("safe build failed under the losing schedule %d: err=%v got=%q", seed, err, safe.Output)
		}
		t.Logf("cross-thread escape detected under schedule %d: %v", seed, fe)
		return
	}
	t.Fatalf("unannotated optimized concurrent build survived all %d interleavings — the escape hazard has gone stale", seeds)
}

func TestHazardWorkloadMetadata(t *testing.T) {
	names := map[string]bool{}
	for _, w := range Hazards() {
		if names[w.Name] {
			t.Errorf("duplicate hazard workload %s", w.Name)
		}
		names[w.Name] = true
		if got, ok := ByName(w.Name); !ok || got.Name != w.Name {
			t.Errorf("ByName(%s) failed", w.Name)
		}
		if w.Want == "" {
			t.Errorf("%s: no golden output", w.Name)
		}
	}
}
