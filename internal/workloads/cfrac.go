package workloads

// Cfrac returns the factoring workload: trial-division factorization over
// linked-list bignums, the allocation profile of the real cfrac (every
// intermediate number is a fresh chain of heap cells).
func Cfrac() Workload {
	return Workload{
		Name:             "cfrac",
		Source:           cfracSrc,
		Want:             cfracWant,
		DebugUnavailable: true, // the paper's footnote: no -g numbers for cfrac
		Lines:            countLines(cfracSrc),
	}
}

const cfracSrc = `/* cfrac: factoring with linked-list bignums (base 10000 cells). */

enum { BASE = 10000 };

struct cell {
    int digit;            /* 0..BASE-1, least significant first */
    struct cell *next;
};

struct num {
    struct cell *head;    /* null means zero */
    int ncells;
};

struct num *num_zero() {
    struct num *n = (struct num *)GC_malloc(sizeof(struct num));
    n->head = 0;
    n->ncells = 0;
    return n;
}

struct cell *new_cell(int digit, struct cell *next) {
    struct cell *c = (struct cell *)GC_malloc(sizeof(struct cell));
    c->digit = digit;
    c->next = next;
    return c;
}

struct num *num_from_int(int v) {
    struct num *n = num_zero();
    struct cell **tail = &n->head;
    while (v > 0) {
        struct cell *c = new_cell(v % BASE, 0);
        *tail = c;
        tail = &c->next;
        v /= BASE;
        n->ncells++;
    }
    return n;
}

int num_is_zero(struct num *n) { return n->head == 0; }

/* compare n against small nonnegative v */
int num_cmp_int(struct num *n, int v) {
    struct num *m = num_from_int(v);
    struct cell *a = n->head;
    struct cell *b = m->head;
    int result = 0;
    while (a != 0 || b != 0) {
        int da = 0;
        int db = 0;
        if (a != 0) { da = a->digit; a = a->next; }
        if (b != 0) { db = b->digit; b = b->next; }
        if (da != db) {
            if (da < db) result = -1;
            else result = 1;
        }
    }
    return result;
}

/* compare two bignums */
int num_cmp(struct num *x, struct num *y) {
    struct cell *a = x->head;
    struct cell *b = y->head;
    int result = 0;
    while (a != 0 || b != 0) {
        int da = 0;
        int db = 0;
        if (a != 0) { da = a->digit; a = a->next; }
        if (b != 0) { db = b->digit; b = b->next; }
        if (da != db) {
            if (da < db) result = -1;
            else result = 1;
        }
    }
    return result;
}

/* n * v for small v, fresh result */
struct num *num_mul_int(struct num *n, int v) {
    struct num *r = num_zero();
    struct cell **tail = &r->head;
    struct cell *a = n->head;
    int carry = 0;
    while (a != 0 || carry != 0) {
        int d = carry;
        struct cell *c;
        if (a != 0) {
            d += a->digit * v;
            a = a->next;
        }
        carry = d / BASE;
        c = new_cell(d % BASE, 0);
        *tail = c;
        tail = &c->next;
        r->ncells++;
    }
    /* normalize a trailing zero cell away (v == 0 case) */
    if (r->head != 0 && r->head->digit == 0 && r->head->next == 0) {
        r->head = 0;
        r->ncells = 0;
    }
    return r;
}

/* n + v for small v, fresh result */
struct num *num_add_int(struct num *n, int v) {
    struct num *r = num_zero();
    struct cell **tail = &r->head;
    struct cell *a = n->head;
    int carry = v;
    while (a != 0 || carry != 0) {
        int d = carry;
        struct cell *c;
        if (a != 0) {
            d += a->digit;
            a = a->next;
        }
        carry = d / BASE;
        c = new_cell(d % BASE, 0);
        *tail = c;
        tail = &c->next;
        r->ncells++;
    }
    return r;
}

/* x * y, full bignum product (schoolbook, cell chains throughout) */
struct num *num_mul(struct num *x, struct num *y) {
    struct num *r = num_zero();
    struct num *shifted = x;
    struct cell *b;
    for (b = y->head; b != 0; b = b->next) {
        struct num *term = num_mul_int(shifted, b->digit);
        /* r = r + term */
        struct num *ns = num_zero();
        struct cell **tail = &ns->head;
        struct cell *p = r->head;
        struct cell *q = term->head;
        int carry = 0;
        while (p != 0 || q != 0 || carry != 0) {
            int d = carry;
            struct cell *c;
            if (p != 0) { d += p->digit; p = p->next; }
            if (q != 0) { d += q->digit; q = q->next; }
            carry = d / BASE;
            c = new_cell(d % BASE, 0);
            *tail = c;
            tail = &c->next;
            ns->ncells++;
        }
        r = ns;
        shifted = num_mul_int(shifted, BASE);
    }
    return r;
}

/* Divide n by small d: fresh quotient, remainder through *rem. */
struct num *num_divmod_int(struct num *n, int d, int *rem) {
    struct cell **cells;
    struct cell *p;
    struct num *q = num_zero();
    int k = n->ncells;
    int i;
    int r = 0;
    if (k == 0) { *rem = 0; return q; }
    cells = (struct cell **)GC_malloc(k * sizeof(struct cell *));
    i = 0;
    for (p = n->head; p != 0; p = p->next) {
        cells[i] = p;
        i++;
    }
    for (i = k - 1; i >= 0; i--) {
        int cur = r * BASE + cells[i]->digit;
        int qd = cur / d;
        r = cur % d;
        if (qd != 0 || q->head != 0) {
            q->head = new_cell(qd, q->head);
            q->ncells++;
        }
    }
    *rem = r;
    return q;
}

void num_print(struct num *n) {
    struct cell **cells;
    struct cell *p;
    int k = n->ncells;
    int i;
    if (k == 0) { print_str("0"); return; }
    cells = (struct cell **)GC_malloc(k * sizeof(struct cell *));
    i = 0;
    for (p = n->head; p != 0; p = p->next) { cells[i] = p; i++; }
    print_int(cells[k - 1]->digit);
    for (i = k - 2; i >= 0; i--) {
        int d = cells[i]->digit;
        if (d < 1000) print_str("0");
        if (d < 100) print_str("0");
        if (d < 10) print_str("0");
        print_int(d);
    }
}

/* parse a decimal string into a bignum */
struct num *num_from_str(char *s) {
    struct num *n = num_zero();
    int i;
    int len = strlen(s);
    for (i = 0; i < len; i++) {
        n = num_mul_int(n, 10);
        n = num_add_int(n, s[i] - '0');
    }
    return n;
}

enum { TRIAL_LIMIT = 3000 };

/* factor n by trial division; prints the factorization and verifies it by
   multiplying the factors back together. Returns the factor count. */
int factor(char *decimal) {
    struct num *orig = num_from_str(decimal);
    struct num *n = orig;
    struct num *check = num_from_int(1);
    int count = 0;
    int d = 2;
    num_print(orig);
    print_str(" = ");
    while (num_cmp_int(n, 1) > 0) {
        int rem;
        struct num *q = num_divmod_int(n, d, &rem);
        if (rem == 0) {
            print_int(d);
            print_str(" ");
            count++;
            check = num_mul(check, num_from_int(d));
            n = q;
        } else {
            if (d == 2) d = 3;
            else d += 2;
            if (d > TRIAL_LIMIT) {
                /* remaining cofactor is prime for our inputs */
                print_str("[");
                num_print(n);
                print_str("] ");
                count++;
                check = num_mul(check, n);
                n = num_from_int(1);
            }
        }
    }
    if (num_cmp(check, orig) == 0) print_str("ok\n");
    else print_str("MISMATCH\n");
    return count;
}

int main() {
    int total = 0;
    total += factor("1063409504683");        /* 1009*1013*1019*1021 */
    total += factor("10403");                /* 101*103 */
    total += factor("87178291200");          /* 14! */
    total += factor("614889782588491410");   /* primorial(47) */
    total += factor("18006");                /* 2*3*3001: cofactor path */
    print_str("factors: ");
    print_int(total);
    print_str("\n");
    return 0;
}
`

const cfracWant = "1063409504683 = 1009 1013 1019 1021 ok\n" +
	"10403 = 101 103 ok\n" +
	"87178291200 = 2 2 2 2 2 2 2 2 2 2 2 3 3 3 3 3 5 5 7 7 11 13 ok\n" +
	"614889782588491410 = 2 3 5 7 11 13 17 19 23 29 31 37 41 43 47 ok\n" +
	"18006 = 2 3 [3001] ok\n" +
	"factors: 46\n"
