package workloads

// The hazard catalogue: small named workloads promoted from the best
// fuzz-generated hazard programs (internal/fuzz's uaf, double-free and
// thread-escape operations), cleaned up by hand and given fixed golden
// outputs. Each one seeds exactly one bug class:
//
//   - uaf reads through a pointer after freeing it and reallocating its
//     size class — silent outside temporal mode (free is a no-op there),
//     a deterministic epoch violation in temporal mode;
//   - dblfree frees the same object twice — the second free is detected
//     by temporal mode's GC_free against the retired allocation epoch;
//   - escape plants the paper's displacement hazard in a worker thread:
//     under an unannotated optimizer a collection triggered from another
//     thread's schedule point reclaims the object mid-loop, while the
//     annotated build survives any interleaving.
//
// They are benchmark columns (internal/bench's hazard table) and example
// programs (examples/hazards) at once.

// Hazards returns the temporal/concurrency hazard workloads.
func Hazards() []Workload {
	return []Workload{
		UAF(),
		DblFree(),
		Escape(),
	}
}

// UAF is the use-after-free workload.
func UAF() Workload {
	return Workload{
		Name:          "uaf",
		Source:        uafSrc,
		Want:          "1225|41|17|",
		TemporalFails: true,
		Lines:         countLines(uafSrc),
	}
}

const uafSrc = `/* uaf: allocation churn, then a read through a freed-and-recycled
 * pointer. free is a no-op outside temporal mode, so the stale read still
 * sees 41 there; temporal mode retires u's allocation epoch at free and
 * faults on the read. */
int main() {
    int i;
    int s = 0;
    int *t;
    int *u;
    int *w;
    for (i = 0; i < 50; i++) {
        t = (int *)GC_malloc(16);
        t[0] = i;
        s = s + t[0];
    }
    print_int(s); print_str("|");
    u = (int *)GC_malloc(12);
    u[0] = 41;
    free(u);
    w = (int *)GC_malloc(12);
    w[0] = 17;
    print_int(u[0]); print_str("|");
    print_int(w[0]); print_str("|");
    return 0;
}
`

// DblFree is the double-free workload.
func DblFree() Workload {
	return Workload{
		Name:          "dblfree",
		Source:        dblfreeSrc,
		Want:          "1600|7|ok|",
		TemporalFails: true,
		Lines:         countLines(dblfreeSrc),
	}
}

const dblfreeSrc = `/* dblfree: pair churn, then the same object freed twice. Both frees are
 * no-ops outside temporal mode; in temporal mode the second GC_free finds
 * no live object at the address and reports the double free. */
struct pair { int a; int b; };
int main() {
    int i;
    int s = 0;
    struct pair *t;
    struct pair *d;
    for (i = 0; i < 40; i++) {
        t = (struct pair *)GC_malloc(sizeof(struct pair));
        t->a = i;
        t->b = i + 1;
        s = s + t->a + t->b;
    }
    print_int(s); print_str("|");
    d = (struct pair *)GC_malloc(sizeof(struct pair));
    d->a = 7;
    print_int(d->a); print_str("|");
    free(d);
    free(d);
    print_str("ok|");
    return 0;
}
`

// Escape is the cross-thread-escape workload. It only demonstrates the
// hazard under a concurrent treatment (Threads > 1); single-thread builds
// never run the worker.
func Escape() Workload {
	return Workload{
		Name:    "escape",
		Source:  escapeSrc,
		Want:    "19900|",
		Threads: 4,
		Lines:   countLines(escapeSrc),
	}
}

const escapeSrc = `/* escape: the paper's displacement hazard on a worker thread. The final
 * reference p[i - 300] reassociates under -O into a far-displaced pointer
 * that the conservative collector cannot recognize; main's allocation churn
 * gives a concurrent collector every opportunity to reclaim p's object
 * while the worker spins. getchar() at EOF is the optimizer-opaque zero. */
int thread1() {
    int t = getchar() + 1;
    int i = t + 420;
    int k = t + 120;
    char *p = (char *)GC_malloc(512);
    int j;
    int s = 0;
    p[k] = 77;
    for (j = 0; j < 4000; j++) s = s + 1;
    assert_true(s == 4000);
    assert_true(p[i - 300] == 77);
    return 0;
}
int main() {
    int i;
    int s = 0;
    int *t;
    for (i = 0; i < 200; i++) {
        t = (int *)GC_malloc(16);
        t[0] = i;
        s = s + t[0];
    }
    join_threads();
    print_int(s); print_str("|");
    return 0;
}
`
