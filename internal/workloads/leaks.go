package workloads

// The leak workload: the heap-introspection subsystem's demonstration
// program. It grows a structure that is rooted (a global cache list the
// collector must keep) but unreachable in the program-logic sense — after
// construction nothing ever reads it — while churning through short-lived
// scratch allocations the collector reclaims. A heap snapshot at exit
// shows the cache head retaining the whole structure: the classic
// "rooted leak" a tracing collector cannot free and only retained-size
// forensics can attribute.

// Leak returns the rooted-leak workload (examples/leaks, heapdump-smoke).
func Leak() Workload {
	return Workload{
		Name:   "leak",
		Source: leakSrc,
		Want:   "2003950\n",
		Lines:  countLines(leakSrc),
	}
}

const leakSrc = `/* leak: a global cache that only ever grows. Every entry stays
 * reachable from the 'cache' root, so the collector must retain it all,
 * but no code path ever reads an entry back: a logical leak. The scratch
 * loop below allocates garbage the collector does reclaim, so a heap
 * snapshot at exit shows the cache chain dominating the live set. */
struct entry { int key; int *payload; struct entry *next; };
struct entry *cache;
int add(int k) {
    struct entry *e = (struct entry *)GC_malloc(sizeof(struct entry));
    e->key = k;
    e->payload = (int *)GC_malloc(64);
    e->payload[0] = k;
    e->next = cache;
    cache = e;
    return k;
}
int main() {
    int i;
    int s = 0;
    for (i = 0; i < 100; i++) s = s + add(i);
    for (i = 0; i < 2000; i++) {
        int *t = (int *)malloc(32);
        t[0] = i;
        s = s + t[0];
    }
    print_int(s);
    print_str("\n");
    return 0;
}
`
