package machine

import (
	"strings"
	"testing"
	"unsafe"
)

func TestConfigsDistinct(t *testing.T) {
	cfgs := Configs()
	if len(cfgs) != 3 {
		t.Fatalf("want 3 machines, got %d", len(cfgs))
	}
	names := map[string]bool{}
	for _, c := range cfgs {
		if names[c.Name] {
			t.Errorf("duplicate machine %s", c.Name)
		}
		names[c.Name] = true
		if c.NumRegs < 4 {
			t.Errorf("%s: too few registers (%d)", c.Name, c.NumRegs)
		}
	}
	if !Pentium90().TwoOperand || SPARCstation2().TwoOperand {
		t.Error("two-operand flags wrong")
	}
}

func TestCostModel(t *testing.T) {
	cfg := SPARCstation10()
	if cfg.CostOf(KeepLive) != 0 {
		t.Error("KeepLive must be free (an empty asm instruction)")
	}
	if cfg.CostOf(Label) != 0 || cfg.CostOf(Nop) != 0 {
		t.Error("pseudo-instructions must be free")
	}
	if cfg.CostOf(Ld) == 0 || cfg.CostOf(St) == 0 || cfg.CostOf(Add) == 0 {
		t.Error("real instructions must cost cycles")
	}
	if cfg.CostOf(Div) <= cfg.CostOf(Mul) || cfg.CostOf(Mul) <= cfg.CostOf(Add) {
		t.Error("cost ordering add < mul < div expected")
	}
}

func TestDefAndUses(t *testing.T) {
	cases := []struct {
		in   Instr
		def  Reg
		uses []Reg
	}{
		{RR(Add, 1, 2, 3), 1, []Reg{2, 3}},
		{RI(Add, 1, 2, 7), 1, []Reg{2}},
		{RR(Mov, 1, 2, NoReg), 1, []Reg{2}},
		{RI(Mov, 1, NoReg, 7), 1, nil},
		{RI(Ld, 1, 2, 0), 1, []Reg{2}},
		{Instr{Op: St, Rd: 1, Rs1: 2, HasImm: true, Imm: 4}, NoReg, []Reg{1, 2}},
		{Instr{Op: St, Rd: 1, Rs1: 2, Rs2: 3}, NoReg, []Reg{1, 2, 3}},
		{Instr{Op: Bz, Rs1: 5, Imm: 1}, NoReg, []Reg{5}},
		{Instr{Op: Ret, Rs1: 5}, NoReg, []Reg{5}},
		{Instr{Op: Call, Rd: 4, Sym: "f"}, 4, nil},
		{Instr{Op: CallR, Rd: 4, Rs1: 6}, 4, []Reg{6}},
		{Instr{Op: KeepLive, Rd: 1, Rs1: 2, Rs2: 3}, 1, []Reg{2, 3}},
		{Instr{Op: Arg, Rd: 7, Imm: 0}, NoReg, []Reg{7}},
		{Instr{Op: LdSP, Rd: 7, Imm: 0}, 7, nil},
		{Instr{Op: StSP, Rd: 7, Imm: 0}, NoReg, []Reg{7}},
		{Instr{Op: LeaSP, Rd: 7, Imm: 0}, 7, nil},
	}
	for i, c := range cases {
		if got := Def(c.in); got != c.def {
			t.Errorf("case %d (%s): def = %v, want %v", i, c.in, got, c.def)
		}
		got := Uses(c.in, nil)
		if len(got) != len(c.uses) {
			t.Errorf("case %d (%s): uses = %v, want %v", i, c.in, got, c.uses)
			continue
		}
		for j := range got {
			if got[j] != c.uses[j] {
				t.Errorf("case %d use %d = %v, want %v", i, j, got[j], c.uses[j])
			}
		}
	}
}

func TestListingAndSize(t *testing.T) {
	f := &Func{
		Name: "f",
		Code: []Instr{
			{Op: Label, Imm: 0},
			RI(Add, 0, 1, 4),
			{Op: KeepLive, Rd: 0, Rs1: 0, Rs2: 1},
			RI(Ld, 2, 0, 0),
			{Op: Ret, Rs1: 2},
		},
	}
	p := &Program{Funcs: map[string]*Func{"f": f}, Order: []string{"f"}}
	// labels and keeplive do not contribute object bytes
	if got := p.Size(); got != 3 {
		t.Fatalf("Size = %d, want 3", got)
	}
	if got := f.Size(); got != 3 {
		t.Fatalf("Func.Size = %d, want 3", got)
	}
	l := p.Listing()
	for _, want := range []string{"f:", "add", "keeplive", "ld", "ret", ".L0:"} {
		if !strings.Contains(l, want) {
			t.Errorf("listing missing %q:\n%s", want, l)
		}
	}
}

func TestInstrStringForms(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{RI(Add, 1, 2, 7), "add %r1, %r2, 7"},
		{RR(Sub, 1, 2, 3), "sub %r1, %r2, %r3"},
		{RI(Mov, 1, NoReg, 9), "mov %r1, 9"},
		{RI(Ld, 1, 2, 8), "ld %r1, [%r2+8]"},
		{Instr{Op: LdB, Rd: 1, Rs1: 2, Rs2: 3}, "ldsb %r1, [%r2+%r3]"},
		{Instr{Op: Jmp, Imm: 3}, "jmp .L3"},
		{Instr{Op: Bz, Rs1: 1, Imm: 2}, "bz %r1, .L2"},
		{Instr{Op: Call, Sym: "strlen"}, "call strlen"},
		{Instr{Op: AdjSP, Imm: -16}, "adjsp -16"},
		{Instr{Op: LeaSP, Rd: 1, Imm: 8}, "leasp %r1, [sp+8]"},
	}
	for _, c := range cases {
		got := strings.TrimSpace(c.in.String())
		if got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestVirtualRegisters(t *testing.T) {
	if Reg(5).IsVirtual() {
		t.Error("physical register reported virtual")
	}
	if !VRegBase.IsVirtual() || !(VRegBase + 100).IsVirtual() {
		t.Error("virtual register not recognized")
	}
	in := RR(Add, VRegBase, VRegBase+1, VRegBase+2)
	if !strings.Contains(in.String(), "v0") || !strings.Contains(in.String(), "v2") {
		t.Errorf("virtual register printing: %s", in)
	}
}

func TestOpClassPredicates(t *testing.T) {
	if !Ld.IsLoad() || !LdB.IsLoad() || St.IsLoad() {
		t.Error("IsLoad")
	}
	if !St.IsStore() || !StH.IsStore() || Ld.IsStore() {
		t.Error("IsStore")
	}
	if !CmpEq.IsCmp() || Add.IsCmp() {
		t.Error("IsCmp")
	}
	if !Add.IsArith() || !CmpGeu.IsArith() || Mov.IsArith() || Ld.IsArith() {
		t.Error("IsArith")
	}
	if !Label.IsBarrier() || !Ret.IsBarrier() || Add.IsBarrier() {
		t.Error("IsBarrier")
	}
}

// The interpreter's dispatch throughput depends on Instr being exactly one
// cache line: []Instr then strides in 64-byte steps and no instruction
// straddles two lines. New fields must go into padding holes, not grow it.
func TestInstrSize(t *testing.T) {
	if got := unsafe.Sizeof(Instr{}); got != 64 {
		t.Fatalf("sizeof(Instr) = %d, want 64 (fit new fields into padding)", got)
	}
}
