package machine

// Config describes one target machine. Three canned configurations stand
// in for the paper's measurement platforms. The absolute cycle numbers are
// nominal; only the ratios between compilation modes matter, as in the
// paper ("we give slowdown percentages relative to the unpreprocessed
// optimized version").
type Config struct {
	Name string
	// NumRegs is the number of general-purpose allocatable registers.
	// SPARC's windowed files give gcc many locals; the Pentium has
	// "substantially fewer registers than the SPARC-based machines".
	NumRegs int
	// TwoOperand models x86-style destructive ALU instructions: when the
	// destination differs from the first source an extra register move is
	// needed ("On machines with only two operand instructions, it may also
	// directly add a small amount of additional code.")
	TwoOperand bool
	// LoadIndexed allows reg+reg addressing in loads and stores — "a free
	// addition in the load instruction (e.g. SPARC)".
	LoadIndexed bool
	// Costs gives cycles per instruction class.
	Costs CostModel
}

// CostModel holds nominal cycle costs.
type CostModel struct {
	ALU      uint64 // add/sub/logical/compare/mov
	Mul      uint64
	Div      uint64
	Load     uint64
	Store    uint64
	Branch   uint64 // taken or not; includes jmp
	CallRet  uint64 // call/ret overhead each
	SPAdjust uint64
}

// CostOf returns the cycle cost of one instruction.
func (c *Config) CostOf(op Op) uint64 {
	m := &c.Costs
	switch {
	case op == Label, op == Nop, op == KeepLive:
		return 0
	case op == Mul:
		return m.Mul
	case op == Div, op == Divu, op == Rem, op == Remu:
		return m.Div
	case op.IsLoad(), op == LdSP:
		return m.Load
	case op.IsStore(), op == StSP, op == Arg:
		return m.Store
	case op == Jmp, op == Bz, op == Bnz:
		return m.Branch
	case op == Call, op == CallR, op == Ret:
		return m.CallRet
	case op == AdjSP:
		return m.SPAdjust
	case op == LeaSP:
		return m.ALU
	default:
		return m.ALU
	}
}

// SPARCstation2 models the Weitek-processor SPARCstation 2 (SunOS 4.1.4):
// a scalar early SPARC with slow memory operations relative to ALU work.
func SPARCstation2() Config {
	return Config{
		Name:        "SPARCstation 2",
		NumRegs:     12,
		TwoOperand:  false,
		LoadIndexed: true,
		Costs: CostModel{
			ALU: 1, Mul: 5, Div: 18, Load: 2, Store: 3,
			Branch: 2, CallRet: 6, SPAdjust: 1,
		},
	}
}

// SPARCstation10 models the SPARCstation 10 (Solaris 2.5): faster memory
// hierarchy, same register model.
func SPARCstation10() Config {
	return Config{
		Name:        "SPARCstation 10",
		NumRegs:     12,
		TwoOperand:  false,
		LoadIndexed: true,
		Costs: CostModel{
			ALU: 1, Mul: 4, Div: 12, Load: 1, Store: 2,
			Branch: 1, CallRet: 4, SPAdjust: 1,
		},
	}
}

// Pentium90 models the Pentium 90 (Linux 1.x): two-operand ISA with few
// registers but cheap memory operands.
func Pentium90() Config {
	return Config{
		Name:        "Pentium 90",
		NumRegs:     8,
		TwoOperand:  true,
		LoadIndexed: true,
		Costs: CostModel{
			ALU: 1, Mul: 9, Div: 25, Load: 1, Store: 1,
			Branch: 1, CallRet: 3, SPAdjust: 1,
		},
	}
}

// Configs returns the three paper machines in presentation order.
func Configs() []Config {
	return []Config{SPARCstation2(), SPARCstation10(), Pentium90()}
}
