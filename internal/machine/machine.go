// Package machine defines the RISC-style target of the compiler: the
// instruction set, register model, machine configurations standing in for
// the paper's three measurement platforms (SPARCstation 2, SPARCstation 10,
// Pentium 90), and an assembly printer.
//
// GC-unsafety is a property of liveness and address-arithmetic decisions,
// not of real silicon, so a small simulated ISA reproduces everything the
// paper measures: register pressure, load-address folding (the SPARC "free
// addition in the load instruction"), two-operand instruction penalties,
// and the empty KEEPLIVE pseudo-instruction whose operand constraints pin
// values exactly the way the paper's gcc inline-asm expansion does.
package machine

import "fmt"

// Reg identifies a register. Values 0..NumRegs-1 are general-purpose
// allocatable registers; the assembler-level special registers follow.
// During compilation, values >= VRegBase are virtual registers awaiting
// allocation.
type Reg int32

// NoReg marks an unused register operand.
const NoReg Reg = -1

// VRegBase is the first virtual register number used by the compiler.
const VRegBase Reg = 1000

// IsVirtual reports whether r is an unallocated virtual register.
func (r Reg) IsVirtual() bool { return r >= VRegBase }

// Op is an instruction opcode.
type Op int

// Opcodes.
const (
	Nop Op = iota
	// Arithmetic and logic: Rd = Rs1 op (Rs2 | Imm).
	Add
	Sub
	Mul
	Div  // signed
	Divu // unsigned
	Rem  // signed remainder
	Remu
	And
	Or
	Xor
	Shl
	Shr  // arithmetic (signed) right shift
	Shru // logical right shift
	// Comparison: Rd = (Rs1 op Rs2|Imm) ? 1 : 0.
	CmpEq
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
	CmpLtu
	CmpLeu
	CmpGtu
	CmpGeu
	// Data movement: Mov Rd, Rs1|Imm.
	Mov
	// Loads: Rd = mem[Rs1 + (Rs2|Imm)]. The width/sign variants mirror
	// SPARC's ldsb/ldub/ldsh/lduh/ld.
	Ld
	LdB  // signed byte
	LdBu // unsigned byte
	LdH  // signed halfword
	LdHu
	// Stores: mem[Rs1 + (Rs2|Imm)] = Rd.
	St
	StB
	StH
	// Control flow.
	Label // pseudo: Imm is the label id
	Jmp   // Imm is the label id
	Bz    // branch to Imm if Rs1 == 0
	Bnz   // branch to Imm if Rs1 != 0
	Call  // Sym names the callee; arguments are on the stack
	CallR // indirect call through Rs1 (function id)
	Ret
	// Stack adjustment: sp += Imm.
	AdjSP
	// Frame access: Rd = sp + Imm (address of a stack slot).
	LeaSP
	// LdSP/StSP: Rd = mem[sp+Imm] / mem[sp+Imm] = Rd.
	LdSP
	StSP
	// KeepLive is the paper's empty asm instruction: it defines Rd as an
	// opaque copy of Rs1 ("the first argument be assigned the same
	// location as the result") and carries an artificial use of Rs2 (the
	// base pointer, "an unused second argument which may be stored
	// anywhere"). It costs zero cycles but constrains the optimizer,
	// register allocator and peephole passes.
	KeepLive
	// Arg marks an outgoing argument store: mem[sp+Imm] = Rd, where sp has
	// already been adjusted for the outgoing call. Distinct from StSP only
	// for readability of listings.
	Arg
	numOps
)

// NumOps is the number of defined opcodes. Interpreters index
// per-opcode tables (e.g. precomputed cycle costs) with it.
const NumOps = int(numOps)

var opNames = [numOps]string{
	Nop: "nop", Add: "add", Sub: "sub", Mul: "mul", Div: "div", Divu: "divu",
	Rem: "rem", Remu: "remu", And: "and", Or: "or", Xor: "xor",
	Shl: "shl", Shr: "shr", Shru: "shru",
	CmpEq: "cmpeq", CmpNe: "cmpne", CmpLt: "cmplt", CmpLe: "cmple",
	CmpGt: "cmpgt", CmpGe: "cmpge", CmpLtu: "cmpltu", CmpLeu: "cmpleu",
	CmpGtu: "cmpgtu", CmpGeu: "cmpgeu",
	Mov: "mov", Ld: "ld", LdB: "ldsb", LdBu: "ldub", LdH: "ldsh", LdHu: "lduh",
	St: "st", StB: "stb", StH: "sth",
	Label: "label", Jmp: "jmp", Bz: "bz", Bnz: "bnz",
	Call: "call", CallR: "callr", Ret: "ret",
	AdjSP: "adjsp", LeaSP: "leasp", LdSP: "ldsp", StSP: "stsp",
	KeepLive: "keeplive", Arg: "arg",
}

func (o Op) String() string { return opNames[o] }

// IsLoad reports whether o reads memory into Rd.
func (o Op) IsLoad() bool { return o == Ld || o == LdB || o == LdBu || o == LdH || o == LdHu }

// IsStore reports whether o writes Rd to memory.
func (o Op) IsStore() bool { return o == St || o == StB || o == StH }

// IsCmp reports whether o is a comparison producing 0/1.
func (o Op) IsCmp() bool { return o >= CmpEq && o <= CmpGeu }

// IsArith reports whether o is a register-to-register ALU operation.
func (o Op) IsArith() bool { return o >= Add && o <= CmpGeu }

// Instr is one instruction. Operand usage depends on Op; unused register
// fields hold NoReg. When HasImm is set, Imm replaces Rs2.
type Instr struct {
	Op     Op
	Rd     Reg
	Rs1    Reg
	Rs2    Reg
	HasImm bool
	Imm    int32
	// Line is the 1-based source line the instruction was generated from;
	// 0 means unknown. Currently stamped only on direct Call instructions,
	// where it gives heap snapshots their allocation-site provenance
	// (which malloc call produced an object). It does not participate in
	// listings or in the cost model. It sits in the padding after Imm so
	// Instr stays exactly 64 bytes — one cache line — which the dispatch
	// loop's throughput depends on (TestInstrSize).
	Line int32
	Sym  string // callee for Call
	// Comment annotates listings (the paper's peephole pass communicates
	// KEEP_LIVE placement via "a special comment understood by the
	// peephole optimizer"; here the KeepLive opcode itself carries it).
	Comment string
}

// RI builds a register-immediate instruction.
func RI(op Op, rd, rs1 Reg, imm int32) Instr {
	return Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: NoReg, HasImm: true, Imm: imm}
}

// RR builds a register-register instruction.
func RR(op Op, rd, rs1, rs2 Reg) Instr {
	return Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}
}

func (i Instr) String() string {
	reg := func(r Reg) string {
		switch {
		case r == NoReg:
			return "-"
		case r.IsVirtual():
			return fmt.Sprintf("v%d", r-VRegBase)
		default:
			return fmt.Sprintf("%%r%d", r)
		}
	}
	src2 := func() string {
		if i.HasImm {
			return fmt.Sprintf("%d", i.Imm)
		}
		return reg(i.Rs2)
	}
	var s string
	switch {
	case i.Op == Label:
		return fmt.Sprintf(".L%d:", i.Imm)
	case i.Op == Jmp:
		s = fmt.Sprintf("jmp .L%d", i.Imm)
	case i.Op == Bz || i.Op == Bnz:
		s = fmt.Sprintf("%s %s, .L%d", i.Op, reg(i.Rs1), i.Imm)
	case i.Op == Call:
		s = fmt.Sprintf("call %s", i.Sym)
	case i.Op == CallR:
		s = fmt.Sprintf("callr %s", reg(i.Rs1))
	case i.Op == Ret:
		s = "ret"
	case i.Op == AdjSP:
		s = fmt.Sprintf("adjsp %d", i.Imm)
	case i.Op == LeaSP:
		s = fmt.Sprintf("leasp %s, [sp%+d]", reg(i.Rd), i.Imm)
	case i.Op == LdSP:
		s = fmt.Sprintf("ldsp %s, [sp%+d]", reg(i.Rd), i.Imm)
	case i.Op == StSP || i.Op == Arg:
		s = fmt.Sprintf("%s %s, [sp%+d]", i.Op, reg(i.Rd), i.Imm)
	case i.Op.IsLoad():
		s = fmt.Sprintf("%s %s, [%s+%s]", i.Op, reg(i.Rd), reg(i.Rs1), src2())
	case i.Op.IsStore():
		s = fmt.Sprintf("%s %s, [%s+%s]", i.Op, reg(i.Rd), reg(i.Rs1), src2())
	case i.Op == Mov:
		s = fmt.Sprintf("mov %s, %s", reg(i.Rd), src2first(i, reg))
	case i.Op == KeepLive:
		s = fmt.Sprintf("keeplive %s, %s ! base %s", reg(i.Rd), reg(i.Rs1), reg(i.Rs2))
	case i.Op == Nop:
		s = "nop"
	default:
		s = fmt.Sprintf("%s %s, %s, %s", i.Op, reg(i.Rd), reg(i.Rs1), src2())
	}
	if i.Comment != "" {
		s += " ! " + i.Comment
	}
	return "\t" + s
}

func src2first(i Instr, reg func(Reg) string) string {
	if i.HasImm {
		return fmt.Sprintf("%d", i.Imm)
	}
	return reg(i.Rs1)
}

// Func is one compiled function.
type Func struct {
	Name      string
	Code      []Instr
	FrameSize int32 // bytes of locals + spills (excluding outgoing args)
	NumParams int
	ID        int32 // function "address" for indirect calls
}

// Program is a compiled translation unit plus its static data image.
type Program struct {
	Funcs   map[string]*Func
	Order   []string          // definition order, for listings
	Data    []byte            // static segment image, based at DataBase
	Globals map[string]uint32 // symbol -> absolute address
}

// Clone returns a copy of the program whose functions and code slices are
// independent of p: in-place rewrites (the peephole postprocessor) can run
// on the copy while p stays frozen — the contract cached compile artifacts
// rely on. The static data image and symbol table are immutable after
// compilation and are shared, not copied.
func (p *Program) Clone() *Program {
	q := &Program{
		Funcs:   make(map[string]*Func, len(p.Funcs)),
		Order:   append([]string(nil), p.Order...),
		Data:    p.Data,
		Globals: p.Globals,
	}
	for name, f := range p.Funcs {
		nf := *f
		nf.Code = append([]Instr(nil), f.Code...)
		q.Funcs[name] = &nf
	}
	return q
}

// DataBase is the absolute address of the static data segment.
const DataBase uint32 = 0x0000_2000

// StackTop is the initial stack pointer; the stack grows down.
const StackTop uint32 = 0x4000_0000

// StackLimit is the lowest valid stack address.
const StackLimit uint32 = StackTop - (1 << 20)

// Listing renders the whole program as assembly text.
func (p *Program) Listing() string {
	s := ""
	for _, name := range p.Order {
		f := p.Funcs[name]
		s += f.Name + ":\n"
		for _, in := range f.Code {
			s += in.String() + "\n"
		}
	}
	return s
}

// Size returns the static instruction count of the program, excluding
// labels and zero-size pseudo-instructions — the paper's object-code size
// measure ("these numbers include only the code that was actually
// processed, not the standard libraries").
func (p *Program) Size() int {
	n := 0
	for _, name := range p.Order {
		for _, in := range p.Funcs[name].Code {
			if in.Op == Label || in.Op == Nop || in.Op == KeepLive {
				// KeepLive assembles to an empty sequence: no object bytes.
				continue
			}
			n++
		}
	}
	return n
}

// FuncSize returns the instruction count of one function.
func (f *Func) Size() int {
	n := 0
	for _, in := range f.Code {
		if in.Op == Label || in.Op == Nop || in.Op == KeepLive {
			continue
		}
		n++
	}
	return n
}

// Def returns the register defined by an instruction, or NoReg.
func Def(in Instr) Reg {
	switch {
	case in.Op.IsArith(), in.Op == Mov, in.Op.IsLoad(),
		in.Op == LeaSP, in.Op == LdSP, in.Op == KeepLive:
		return in.Rd
	case in.Op == Call, in.Op == CallR:
		return in.Rd
	}
	return NoReg
}

// Uses appends the registers read by an instruction to buf and returns it.
func Uses(in Instr, buf []Reg) []Reg {
	add := func(r Reg) {
		if r != NoReg {
			buf = append(buf, r)
		}
	}
	switch {
	case in.Op.IsArith():
		add(in.Rs1)
		if !in.HasImm {
			add(in.Rs2)
		}
	case in.Op == Mov:
		if !in.HasImm {
			add(in.Rs1)
		}
	case in.Op.IsLoad():
		add(in.Rs1)
		if !in.HasImm {
			add(in.Rs2)
		}
	case in.Op.IsStore():
		add(in.Rd) // the stored value
		add(in.Rs1)
		if !in.HasImm {
			add(in.Rs2)
		}
	case in.Op == StSP, in.Op == Arg:
		add(in.Rd)
	case in.Op == Bz, in.Op == Bnz, in.Op == CallR:
		add(in.Rs1)
	case in.Op == Ret:
		add(in.Rs1)
	case in.Op == KeepLive:
		add(in.Rs1)
		add(in.Rs2)
	}
	return buf
}

// IsBarrier reports whether an instruction ends a straight-line window for
// local value tracking (labels, branches, returns).
func (o Op) IsBarrier() bool {
	switch o {
	case Label, Jmp, Bz, Bnz, Ret:
		return true
	}
	return false
}
