// Package heapdump turns the collector's address→object knowledge into an
// explorable artifact: a point-in-time snapshot of every live heap object
// (base, size, birth epoch, allocation site, outgoing references discovered
// by conservative word scanning) together with the GC roots referencing
// them, plus the analyses every heap tool needs — nearest-root paths (BFS),
// parent/reference indexes, and retained sizes via the Lengauer–Tarjan
// dominator tree. It is the repo's answer to ROADMAP's "heap introspection
// as a product": checker violations and leaks stop being a single error
// string and become provenance ("allocated at main:12, epoch 5, retained by
// path root→A→B, 4,312 bytes").
//
// Because the heap is untyped and scanning is conservative, edges are
// approximate in exactly the collector's way: any word that happens to look
// like a pointer into a live object is an edge. False-positive edges can
// only over-approximate reachability and retained sizes — the same
// direction the collector itself errs in — never hide an object.
package heapdump

import (
	"fmt"
	"sort"
	"time"

	"gcsafety/internal/gc"
)

// Snapshot triggers.
const (
	// TriggerExit marks a snapshot taken when the program ran to completion.
	TriggerExit = "exit"
	// TriggerViolation marks a snapshot taken because a checker fired
	// (CheckError/TemporalError) or the access validator caught a fault.
	TriggerViolation = "violation"
	// TriggerFault marks a snapshot taken after a non-checker fault.
	TriggerFault = "fault"
	// TriggerRequest marks a snapshot served on demand (RequestSnapshot,
	// the /v1/heapdump endpoint).
	TriggerRequest = "request"
)

// Root kinds.
const (
	RootReg    = "reg"    // a machine register (Slot = register number)
	RootStack  = "stack"  // a live stack word (Slot = its address)
	RootStatic = "static" // a static-segment word (Slot = its address)
)

// Object is one live heap object.
type Object struct {
	Base  uint32 `json:"base"`
	Size  uint32 `json:"size"` // rounded (actual) size in bytes
	Epoch uint32 `json:"epoch"`
	// Site is the allocation-site ID (index into Snapshot.Sites), or -1
	// when provenance was not recorded (profiling off, or runtime-internal
	// allocation).
	Site   int32 `json:"site"`
	Marked bool  `json:"marked,omitempty"`
	Large  bool  `json:"large,omitempty"`
	// Refs holds the base addresses of the live objects this object's
	// words conservatively reference, deduplicated and sorted.
	Refs []uint32 `json:"refs,omitempty"`
}

// Root is one GC-root word that references a live object.
type Root struct {
	Kind   string `json:"kind"` // RootReg, RootStack or RootStatic
	Thread int    `json:"thread,omitempty"`
	Slot   uint32 `json:"slot"`   // register number, or the word's address
	Word   uint32 `json:"word"`   // the raw root word
	Target uint32 `json:"target"` // base of the object it references
}

// String renders a root for reports: "reg r3", "stack@0x3fffff40",
// "static@0x2004" (with a thread prefix in concurrent mode).
func (r Root) String() string {
	var s string
	switch r.Kind {
	case RootReg:
		s = fmt.Sprintf("reg r%d", r.Slot)
	default:
		s = fmt.Sprintf("%s@%#x", r.Kind, r.Slot)
	}
	if r.Thread > 0 {
		s = fmt.Sprintf("t%d:%s", r.Thread, s)
	}
	return s
}

// Site is one allocation site: a (function, line, allocator) triple with
// cumulative allocation counters.
type Site struct {
	ID     int32  `json:"id"`
	Func   string `json:"func"`
	Line   int32  `json:"line"` // 1-based source line; 0 unknown
	Kind   string `json:"kind"` // "malloc", "calloc", "realloc"
	Allocs uint64 `json:"allocs"`
	Bytes  uint64 `json:"bytes"`
}

// String renders a site as "main:12 (malloc)".
func (s Site) String() string {
	if s.Line == 0 {
		return fmt.Sprintf("%s (%s)", s.Func, s.Kind)
	}
	return fmt.Sprintf("%s:%d (%s)", s.Func, s.Line, s.Kind)
}

// Snapshot is a point-in-time image of the live heap.
type Snapshot struct {
	Trigger string `json:"trigger"`
	// Reason carries the violation/fault message for TriggerViolation and
	// TriggerFault snapshots.
	Reason string `json:"reason,omitempty"`
	// FaultAddr is the faulting address of a violation snapshot (0 when
	// unknown or not applicable).
	FaultAddr uint32 `json:"fault_addr,omitempty"`
	// Epoch is the allocation clock's reading at capture time.
	Epoch   uint32   `json:"epoch"`
	Objects []Object `json:"objects"` // sorted by Base
	Roots   []Root   `json:"roots"`
	Sites   []Site   `json:"sites,omitempty"` // indexed by Site.ID
	// Truncated reports that Objects was cut short by a caller-imposed
	// bound (the /v1/heapdump per-request size bound).
	Truncated bool `json:"truncated,omitempty"`
	// CaptureNs is how long the capture took on the host, for the
	// daemon's snapshot-duration histogram. Not part of snapshot
	// identity: two captures of the same heap differ only here.
	CaptureNs int64 `json:"capture_ns,omitempty"`
}

// RootSource feeds Capture the GC-root words: the interpreter (or a test)
// calls emit once per root word with its provenance. Words that do not
// resolve to a live object are dropped by Capture, so sources may emit
// fully conservatively, exactly like a collector root scan.
type RootSource func(emit func(kind string, thread int, slot, word uint32))

// Capture snapshots h. roots supplies the GC-root words; siteOf maps an
// object base to its allocation-site ID (-1 when unknown) and sites is the
// site table those IDs index (both may be nil). Capture only reads the
// heap — see gc's introspection API — so a snapshot perturbs neither the
// mutator nor the collector.
func Capture(h *gc.Heap, trigger string, roots RootSource, siteOf func(base uint32) int32, sites []Site) *Snapshot {
	start := time.Now()
	snap := &Snapshot{Trigger: trigger, Epoch: h.Epoch(), Sites: sites}
	h.VisitObjects(func(o gc.ObjectInfo) {
		obj := Object{Base: o.Base, Size: o.Size, Epoch: o.Epoch,
			Marked: o.Marked, Large: o.Large, Site: -1}
		if siteOf != nil {
			obj.Site = siteOf(o.Base)
		}
		snap.Objects = append(snap.Objects, obj)
	})
	sort.Slice(snap.Objects, func(i, j int) bool {
		return snap.Objects[i].Base < snap.Objects[j].Base
	})
	for i := range snap.Objects {
		o := &snap.Objects[i]
		h.VisitReferences(o.Base, func(off uint32, target uint32) {
			o.Refs = append(o.Refs, target)
		})
		if len(o.Refs) > 1 {
			sort.Slice(o.Refs, func(a, b int) bool { return o.Refs[a] < o.Refs[b] })
			o.Refs = dedupSorted(o.Refs)
		}
	}
	if roots != nil {
		roots(func(kind string, thread int, slot, word uint32) {
			if target := h.BaseRO(word); target != 0 {
				snap.Roots = append(snap.Roots, Root{
					Kind: kind, Thread: thread, Slot: slot, Word: word, Target: target})
			}
		})
	}
	snap.CaptureNs = time.Since(start).Nanoseconds()
	return snap
}

func dedupSorted(s []uint32) []uint32 {
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// TotalBytes sums the sizes of every object in the snapshot.
func (s *Snapshot) TotalBytes() uint64 {
	var n uint64
	for i := range s.Objects {
		n += uint64(s.Objects[i].Size)
	}
	return n
}

// Object returns the object whose base address is exactly base, or nil.
func (s *Snapshot) Object(base uint32) *Object {
	i := sort.Search(len(s.Objects), func(i int) bool { return s.Objects[i].Base >= base })
	if i < len(s.Objects) && s.Objects[i].Base == base {
		return &s.Objects[i]
	}
	return nil
}

// Find returns the object containing addr (interior addresses included),
// or nil.
func (s *Snapshot) Find(addr uint32) *Object {
	i := sort.Search(len(s.Objects), func(i int) bool { return s.Objects[i].Base > addr })
	if i == 0 {
		return nil
	}
	o := &s.Objects[i-1]
	if addr < o.Base+o.Size {
		return o
	}
	return nil
}

// SiteOf returns o's allocation site, or nil when provenance is absent.
func (s *Snapshot) SiteOf(o *Object) *Site {
	if o == nil || o.Site < 0 || int(o.Site) >= len(s.Sites) {
		return nil
	}
	return &s.Sites[o.Site]
}

// TruncateObjects bounds the snapshot to at most max objects (by base
// order), dropping roots and references that point past the kept prefix.
// The per-request size bound of the /v1/heapdump endpoint.
func (s *Snapshot) TruncateObjects(max int) {
	if max <= 0 || len(s.Objects) <= max {
		return
	}
	limit := s.Objects[max].Base
	s.Objects = s.Objects[:max:max]
	for i := range s.Objects {
		o := &s.Objects[i]
		n := sort.Search(len(o.Refs), func(j int) bool { return o.Refs[j] >= limit })
		o.Refs = o.Refs[:n:n]
	}
	kept := s.Roots[:0]
	for _, r := range s.Roots {
		if r.Target < limit {
			kept = append(kept, r)
		}
	}
	s.Roots = kept
	s.Truncated = true
}
