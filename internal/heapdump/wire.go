package heapdump

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"gcsafety/internal/artifact"
)

// WireKind is the disk/cache codec kind for snapshots. Versioned by
// convention: bump when the Snapshot schema changes incompatibly.
const WireKind = "heapdump/v1"

// wireSnapshot is the gob envelope: the snapshot plus the cache size it
// was accounted at, so a restored entry charges the LRU budget exactly
// like a freshly captured one.
type wireSnapshot struct {
	Snap *Snapshot
	Size int64
}

// AccountedSize estimates the snapshot's in-memory footprint for cache
// accounting.
func (s *Snapshot) AccountedSize() int64 {
	n := int64(len(s.Reason)) + 64
	for i := range s.Objects {
		n += 32 + int64(len(s.Objects[i].Refs))*4
	}
	n += int64(len(s.Roots)) * 24
	for i := range s.Sites {
		n += 40 + int64(len(s.Sites[i].Func)+len(s.Sites[i].Kind))
	}
	return n
}

// RegisterWire contributes the snapshot codec to a codec registry, so the
// gcsafed disk tier persists /v1/heapdump artifacts across restarts
// alongside annotate/compile/pipeline artifacts.
func RegisterWire(reg *artifact.CodecRegistry) {
	reg.Register(WireKind, artifact.Codec{
		Encode: func(key artifact.Key, v any) ([]byte, bool) {
			s, ok := v.(*Snapshot)
			if !ok {
				return nil, false
			}
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(&wireSnapshot{Snap: s, Size: s.AccountedSize()}); err != nil {
				return nil, false
			}
			return buf.Bytes(), true
		},
		Decode: func(data []byte) (any, int64, error) {
			var w wireSnapshot
			if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
				return nil, 0, err
			}
			if w.Snap == nil {
				return nil, 0, fmt.Errorf("heapdump artifact with no snapshot")
			}
			return w.Snap, w.Size, nil
		},
	})
}
