package heapdump

// Graph indexes a snapshot's reference edges for analysis: objects become
// dense indices, Refs become forward adjacency (Out), and the reverse
// index (In — who references me?) is materialized once so every analysis
// can walk parents without rescanning.
type Graph struct {
	Snap *Snapshot
	// Out[i] and In[i] hold object indices (positions in Snap.Objects).
	// Out preserves Refs order (sorted by base); In is sorted too.
	Out [][]int
	In  [][]int
	// RootTargets holds, in first-appearance order over Snap.Roots, the
	// distinct object indices directly referenced by a GC root.
	RootTargets []int
	// RootOf maps a directly-rooted object index to the first root in
	// Snap.Roots referencing it (its "nearest root").
	RootOf map[int]*Root

	index map[uint32]int
}

// NewGraph builds the analysis graph over s. Edges to bases absent from
// the snapshot (possible only on truncated snapshots) are dropped.
func NewGraph(s *Snapshot) *Graph {
	n := len(s.Objects)
	g := &Graph{
		Snap:   s,
		Out:    make([][]int, n),
		In:     make([][]int, n),
		RootOf: map[int]*Root{},
		index:  make(map[uint32]int, n),
	}
	for i := range s.Objects {
		g.index[s.Objects[i].Base] = i
	}
	for i := range s.Objects {
		for _, ref := range s.Objects[i].Refs {
			if j, ok := g.index[ref]; ok {
				g.Out[i] = append(g.Out[i], j)
				g.In[j] = append(g.In[j], i)
			}
		}
	}
	for ri := range s.Roots {
		r := &s.Roots[ri]
		j, ok := g.index[r.Target]
		if !ok {
			continue
		}
		if _, seen := g.RootOf[j]; !seen {
			g.RootOf[j] = r
			g.RootTargets = append(g.RootTargets, j)
		}
	}
	return g
}

// IndexOf maps an object base address to its graph index, or -1.
func (g *Graph) IndexOf(base uint32) int {
	if i, ok := g.index[base]; ok {
		return i
	}
	return -1
}

// Len returns the number of objects in the graph.
func (g *Graph) Len() int { return len(g.Snap.Objects) }
