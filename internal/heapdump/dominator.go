package heapdump

// Dominator-tree construction and retained sizes.
//
// An object d dominates v when every path from the GC roots to v passes
// through d; the retained size of d is the total size of the objects that
// would become unreachable if d were deleted — exactly the objects d
// dominates. We compute immediate dominators with the Lengauer–Tarjan
// algorithm (the simple O(E log V) variant with path compression) over
// the reference graph augmented with one virtual super-root whose
// successors are the directly-rooted objects, then sum subtree sizes.
// Lengauer–Tarjan was chosen over the iterative Cooper–Harvey–Kennedy
// scheme because heap graphs are arbitrary (deep lists, dense cycles),
// where the iterative scheme's O(V²) worst case actually bites, while
// LT's bound is insensitive to graph shape.

// DomTree holds the dominator analysis of a Graph.
type DomTree struct {
	g *Graph
	// Idom[i] is the immediate dominator of object i: another object
	// index, Root (dominated only by the root set), or -1 (unreachable).
	Idom []int
	// Retained[i] is object i's retained size in bytes (0 for unreachable
	// objects, which retain nothing the roots could lose).
	Retained []uint64
	// Root is the virtual super-root's index (== number of objects).
	Root int
}

// Dominators computes the dominator tree and retained sizes.
func (g *Graph) Dominators() *DomTree {
	n := g.Len()
	root := n
	N := n + 1

	succ := func(v int) []int {
		if v == root {
			return g.RootTargets
		}
		return g.Out[v]
	}

	// Lengauer–Tarjan state, indexed by vertex (0..n-1 objects, n root).
	semi := make([]int, N) // DFS number, -1 = unreachable
	parent := make([]int, N)
	ancestor := make([]int, N)
	label := make([]int, N)
	idom := make([]int, N)
	bucket := make([][]int, N)
	vertex := make([]int, 0, N) // DFS number -> vertex
	for v := 0; v < N; v++ {
		semi[v], ancestor[v], idom[v] = -1, -1, -1
		label[v] = v
	}

	// Iterative preorder DFS from the super-root.
	type dfsFrame struct{ v, i int }
	stack := []dfsFrame{{root, 0}}
	semi[root] = 0
	parent[root] = -1
	vertex = append(vertex, root)
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		s := succ(fr.v)
		if fr.i >= len(s) {
			stack = stack[:len(stack)-1]
			continue
		}
		w := s[fr.i]
		fr.i++
		if semi[w] >= 0 {
			continue
		}
		semi[w] = len(vertex)
		parent[w] = fr.v
		vertex = append(vertex, w)
		stack = append(stack, dfsFrame{w, 0})
	}

	compress := func(v int) {
		var path []int
		for ancestor[ancestor[v]] >= 0 {
			path = append(path, v)
			v = ancestor[v]
		}
		for i := len(path) - 1; i >= 0; i-- {
			w := path[i]
			a := ancestor[w]
			if semi[label[a]] < semi[label[w]] {
				label[w] = label[a]
			}
			ancestor[w] = ancestor[a]
		}
	}
	eval := func(v int) int {
		if ancestor[v] < 0 {
			return v
		}
		compress(v)
		return label[v]
	}

	pred := func(w int) []int {
		if w == root {
			return nil
		}
		return g.In[w]
	}

	for i := len(vertex) - 1; i >= 1; i-- {
		w := vertex[i]
		for _, v := range pred(w) {
			if semi[v] < 0 {
				continue // predecessor itself unreachable
			}
			if u := eval(v); semi[u] < semi[w] {
				semi[w] = semi[u]
			}
		}
		// Directly-rooted objects also have the super-root as predecessor.
		if parent[w] == root || g.RootOf[w] != nil {
			if u := eval(root); semi[u] < semi[w] {
				semi[w] = semi[u]
			}
		}
		sv := vertex[semi[w]]
		bucket[sv] = append(bucket[sv], w)
		ancestor[w] = parent[w]
		for _, v := range bucket[parent[w]] {
			if u := eval(v); semi[u] < semi[v] {
				idom[v] = u
			} else {
				idom[v] = parent[w]
			}
		}
		bucket[parent[w]] = nil
	}
	for i := 1; i < len(vertex); i++ {
		w := vertex[i]
		if idom[w] != vertex[semi[w]] {
			idom[w] = idom[idom[w]]
		}
	}
	idom[root] = -1

	// Retained sizes: every reachable object starts at its own size;
	// walking DFS numbers high-to-low folds each subtree into its
	// immediate dominator (idom always has a smaller DFS number).
	retained := make([]uint64, N)
	for i := 0; i < n; i++ {
		if semi[i] >= 0 {
			retained[i] = uint64(g.Snap.Objects[i].Size)
		}
	}
	for i := len(vertex) - 1; i >= 1; i-- {
		w := vertex[i]
		retained[idom[w]] += retained[w]
	}

	return &DomTree{g: g, Idom: idom[:n], Retained: retained[:n], Root: root}
}

// BruteRetained computes object i's retained size by definition —
// reachable bytes from the roots minus reachable bytes when i is deleted
// from the graph. O(V+E) per call; it exists as the oracle the dominator
// implementation is verified against (tests, and the leak example's
// self-check), not for production use.
func (g *Graph) BruteRetained(i int) uint64 {
	return g.reachableBytes(-1) - g.reachableBytes(i)
}

// reachableBytes sums the sizes of objects reachable from the root set
// with object skip (an index, or -1) deleted from the graph.
func (g *Graph) reachableBytes(skip int) uint64 {
	seen := make([]bool, g.Len())
	var total uint64
	var stack []int
	push := func(v int) {
		if v != skip && !seen[v] {
			seen[v] = true
			total += uint64(g.Snap.Objects[v].Size)
			stack = append(stack, v)
		}
	}
	for _, v := range g.RootTargets {
		push(v)
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Out[v] {
			push(w)
		}
	}
	return total
}
