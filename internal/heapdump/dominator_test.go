package heapdump

import (
	"fmt"
	"math/rand"
	"testing"
)

// buildSnapshot hand-builds a snapshot from an adjacency description:
// sizes[i] is object i's size, edges[i] lists i's successors, rooted
// lists the directly-rooted objects. Object i gets base 0x1000_0000 +
// 0x100*i so indices and addresses are trivially convertible.
func buildSnapshot(sizes []uint32, edges map[int][]int, rooted []int) *Snapshot {
	base := func(i int) uint32 { return 0x1000_0000 + 0x100*uint32(i) }
	s := &Snapshot{Trigger: TriggerRequest}
	for i, sz := range sizes {
		o := Object{Base: base(i), Size: sz, Epoch: uint32(i + 1), Site: -1}
		for _, j := range edges[i] {
			o.Refs = append(o.Refs, base(j))
		}
		s.Objects = append(s.Objects, o)
	}
	for _, i := range rooted {
		s.Roots = append(s.Roots, Root{Kind: RootStatic, Slot: uint32(0x2000 + 4*i),
			Word: base(i), Target: base(i)})
	}
	return s
}

// checkAgainstBruteForce verifies every object's dominator-tree retained
// size against the reachability-deletion definition.
func checkAgainstBruteForce(t *testing.T, g *Graph, dom *DomTree) {
	t.Helper()
	for i := 0; i < g.Len(); i++ {
		want := g.BruteRetained(i)
		if got := dom.Retained[i]; got != want {
			t.Errorf("object %d (%#x): retained %d, want %d (brute force)",
				i, g.Snap.Objects[i].Base, got, want)
		}
	}
}

func TestDominatorsDiamond(t *testing.T) {
	// r -> 0; 0 -> 1,2; 1 -> 3; 2 -> 3. The diamond: 3 is dominated by 0,
	// not by 1 or 2.
	s := buildSnapshot([]uint32{8, 16, 32, 64},
		map[int][]int{0: {1, 2}, 1: {3}, 2: {3}}, []int{0})
	g := NewGraph(s)
	dom := g.Dominators()
	if dom.Idom[3] != 0 {
		t.Errorf("idom(3) = %d, want 0", dom.Idom[3])
	}
	if dom.Idom[0] != dom.Root {
		t.Errorf("idom(0) = %d, want root %d", dom.Idom[0], dom.Root)
	}
	if want := uint64(8 + 16 + 32 + 64); dom.Retained[0] != want {
		t.Errorf("retained(0) = %d, want %d", dom.Retained[0], want)
	}
	if dom.Retained[1] != 16 || dom.Retained[2] != 32 {
		t.Errorf("retained(1,2) = %d,%d, want 16,32 (neither retains the shared sink)",
			dom.Retained[1], dom.Retained[2])
	}
	checkAgainstBruteForce(t, g, dom)
}

func TestDominatorsCycle(t *testing.T) {
	// r -> 0 -> 1 -> 2 -> 1 (cycle between 1 and 2).
	s := buildSnapshot([]uint32{8, 16, 32},
		map[int][]int{0: {1}, 1: {2}, 2: {1}}, []int{0})
	g := NewGraph(s)
	dom := g.Dominators()
	if dom.Idom[1] != 0 || dom.Idom[2] != 1 {
		t.Errorf("idom(1)=%d idom(2)=%d, want 0,1", dom.Idom[1], dom.Idom[2])
	}
	if dom.Retained[1] != 16+32 {
		t.Errorf("retained(1) = %d, want 48 (cycle member dominates its partner)", dom.Retained[1])
	}
	checkAgainstBruteForce(t, g, dom)
}

func TestDominatorsSelfLoop(t *testing.T) {
	// r -> 0 -> 0 (self-loop) and r -> 1 -> 1.
	s := buildSnapshot([]uint32{24, 40},
		map[int][]int{0: {0}, 1: {1}}, []int{0, 1})
	g := NewGraph(s)
	dom := g.Dominators()
	if dom.Retained[0] != 24 || dom.Retained[1] != 40 {
		t.Errorf("retained = %d,%d, want 24,40", dom.Retained[0], dom.Retained[1])
	}
	checkAgainstBruteForce(t, g, dom)
}

func TestDominatorsTwoRoots(t *testing.T) {
	// Two roots reach the same sink: r -> 0 -> 2, r -> 1 -> 2, 2 -> 3.
	// Nothing but the virtual root dominates 2, so neither 0 nor 1 retains
	// it; 2 retains 3.
	s := buildSnapshot([]uint32{8, 16, 32, 64},
		map[int][]int{0: {2}, 1: {2}, 2: {3}}, []int{0, 1})
	g := NewGraph(s)
	dom := g.Dominators()
	if dom.Idom[2] != dom.Root {
		t.Errorf("idom(2) = %d, want virtual root %d", dom.Idom[2], dom.Root)
	}
	if dom.Retained[0] != 8 || dom.Retained[1] != 16 {
		t.Errorf("retained(0,1) = %d,%d, want 8,16", dom.Retained[0], dom.Retained[1])
	}
	if dom.Retained[2] != 32+64 {
		t.Errorf("retained(2) = %d, want 96", dom.Retained[2])
	}
	checkAgainstBruteForce(t, g, dom)
}

func TestDominatorsObjectRootedTwiceAndReferenced(t *testing.T) {
	// An object that is both directly rooted and referenced from another
	// rooted object: the root edge means nothing else dominates it.
	s := buildSnapshot([]uint32{8, 16},
		map[int][]int{0: {1}}, []int{0, 1})
	g := NewGraph(s)
	dom := g.Dominators()
	if dom.Idom[1] != dom.Root {
		t.Errorf("idom(1) = %d, want virtual root", dom.Idom[1])
	}
	if dom.Retained[0] != 8 {
		t.Errorf("retained(0) = %d, want 8", dom.Retained[0])
	}
	checkAgainstBruteForce(t, g, dom)
}

func TestDominatorsEmptyHeap(t *testing.T) {
	s := buildSnapshot(nil, nil, nil)
	g := NewGraph(s)
	dom := g.Dominators()
	if len(dom.Retained) != 0 || len(dom.Idom) != 0 {
		t.Fatalf("empty heap produced non-empty dominator tree: %+v", dom)
	}
	rs := g.ScanRoots()
	if len(rs.Dist) != 0 {
		t.Fatalf("empty heap produced root distances: %+v", rs.Dist)
	}
	if a := Analyze(s); len(a.TopRetainers(10)) != 0 {
		t.Fatal("empty heap produced retainers")
	}
}

func TestDominatorsUnreachableObjects(t *testing.T) {
	// 2 and 3 reference each other but no root reaches them.
	s := buildSnapshot([]uint32{8, 16, 32, 64},
		map[int][]int{0: {1}, 2: {3}, 3: {2}}, []int{0})
	g := NewGraph(s)
	dom := g.Dominators()
	if dom.Idom[2] != -1 || dom.Idom[3] != -1 {
		t.Errorf("unreachable objects got dominators: idom(2)=%d idom(3)=%d",
			dom.Idom[2], dom.Idom[3])
	}
	if dom.Retained[2] != 0 || dom.Retained[3] != 0 {
		t.Errorf("unreachable objects retain bytes: %d,%d", dom.Retained[2], dom.Retained[3])
	}
	checkAgainstBruteForce(t, g, dom)
}

// TestDominatorsRandomGraphs cross-checks Lengauer–Tarjan against the
// brute-force oracle on randomized graphs of varying density, including
// cycles, self-loops, multi-root overlap and unreachable islands.
func TestDominatorsRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(30)
		sizes := make([]uint32, n)
		for i := range sizes {
			sizes[i] = 8 * uint32(1+rng.Intn(64))
		}
		edges := map[int][]int{}
		nedges := rng.Intn(3 * n)
		for e := 0; e < nedges; e++ {
			from := rng.Intn(n)
			edges[from] = append(edges[from], rng.Intn(n)) // self-loops included
		}
		var rooted []int
		for i := 0; i < n; i++ {
			if rng.Intn(4) == 0 {
				rooted = append(rooted, i)
			}
		}
		if len(rooted) == 0 {
			rooted = append(rooted, rng.Intn(n))
		}
		s := buildSnapshot(sizes, edges, rooted)
		g := NewGraph(s)
		dom := g.Dominators()
		for i := 0; i < n; i++ {
			want := g.BruteRetained(i)
			if got := dom.Retained[i]; got != want {
				t.Fatalf("trial %d: object %d retained %d, want %d\nsizes=%v edges=%v rooted=%v",
					trial, i, got, want, sizes, edges, rooted)
			}
		}
	}
}

func TestRootScanDistancesAndPaths(t *testing.T) {
	// r -> 0 -> 1 -> 2; r -> 3; 4 unreachable.
	s := buildSnapshot([]uint32{8, 8, 8, 8, 8},
		map[int][]int{0: {1}, 1: {2}}, []int{0, 3})
	g := NewGraph(s)
	rs := g.ScanRoots()
	wantDist := []int{1, 2, 3, 1, -1}
	for i, want := range wantDist {
		if rs.Dist[i] != want {
			t.Errorf("dist(%d) = %d, want %d", i, rs.Dist[i], want)
		}
	}
	path := rs.Path(2)
	if fmt.Sprint(path) != "[0 1 2]" {
		t.Errorf("path(2) = %v, want [0 1 2]", path)
	}
	if r := rs.NearestRoot(2); r == nil || r.Target != s.Objects[0].Base {
		t.Errorf("nearest root of 2 = %+v, want root of object 0", r)
	}
	if rs.Path(4) != nil || rs.NearestRoot(4) != nil {
		t.Error("unreachable object got a root path")
	}
}

func TestCommaFormatting(t *testing.T) {
	cases := map[uint64]string{0: "0", 999: "999", 1000: "1,000",
		4312: "4,312", 1234567: "1,234,567"}
	for n, want := range cases {
		if got := Comma(n); got != want {
			t.Errorf("Comma(%d) = %q, want %q", n, got, want)
		}
	}
}
