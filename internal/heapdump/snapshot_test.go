package heapdump

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"gcsafety/internal/artifact"
	"gcsafety/internal/gc"
)

func testHeap(t *testing.T) *gc.Heap {
	t.Helper()
	return gc.NewHeap(gc.Config{MaxBytes: 8 << 20, TriggerBytes: ^uint32(0), Poison: true})
}

func alloc(t *testing.T, h *gc.Heap, n uint32) uint32 {
	t.Helper()
	a, err := h.Alloc(n)
	if err != nil {
		t.Fatalf("Alloc(%d): %v", n, err)
	}
	return a
}

// write stores a word into the heap through the public access API.
func write(t *testing.T, h *gc.Heap, a, w uint32) {
	t.Helper()
	if err := h.WriteWord(a, w); err != nil {
		t.Fatalf("WriteWord(%#x): %v", a, err)
	}
}

func TestCaptureFromLiveHeap(t *testing.T) {
	h := testHeap(t)
	a := alloc(t, h, 16)
	b := alloc(t, h, 16)
	c := alloc(t, h, 16)
	write(t, h, a, b)
	write(t, h, b+4, c+8) // interior reference

	roots := func(emit func(kind string, thread int, slot, word uint32)) {
		emit(RootReg, 0, 3, a)
		emit(RootReg, 0, 4, 12345) // not a pointer: dropped
		emit(RootStatic, 0, 0x2000, a+4)
	}
	snap := Capture(h, TriggerRequest, roots, nil, nil)

	if len(snap.Objects) != 3 {
		t.Fatalf("snapshot has %d objects, want 3", len(snap.Objects))
	}
	for i := 1; i < len(snap.Objects); i++ {
		if snap.Objects[i-1].Base >= snap.Objects[i].Base {
			t.Fatal("objects not sorted by base")
		}
	}
	oa := snap.Object(a)
	if oa == nil || len(oa.Refs) != 1 || oa.Refs[0] != b {
		t.Fatalf("object a refs = %+v, want [%#x]", oa, b)
	}
	ob := snap.Object(b)
	if ob == nil || len(ob.Refs) != 1 || ob.Refs[0] != c {
		t.Fatalf("object b refs = %+v, want [%#x] (interior pointer resolves)", ob, c)
	}
	if len(snap.Roots) != 2 {
		t.Fatalf("roots = %+v, want 2 (the non-pointer dropped)", snap.Roots)
	}
	if snap.Roots[1].Target != a {
		t.Errorf("interior root resolved to %#x, want %#x", snap.Roots[1].Target, a)
	}
	if snap.TotalBytes() != uint64(h.ObjectSize(a)+h.ObjectSize(b)+h.ObjectSize(c)) {
		t.Errorf("TotalBytes = %d", snap.TotalBytes())
	}
	if got := snap.Find(c + 8); got == nil || got.Base != c {
		t.Errorf("Find(interior) = %+v, want object %#x", got, c)
	}
	if snap.Find(0xdead) != nil {
		t.Error("Find(non-heap) found an object")
	}
	if snap.Epoch != uint32(h.Stats().EpochHighWater) {
		t.Errorf("snapshot epoch %d, want %d", snap.Epoch, h.Stats().EpochHighWater)
	}
}

func TestCaptureEndToEndAnalysis(t *testing.T) {
	// A rooted chain head -> n1 -> n2 plus garbage: the head must retain
	// the whole chain, and the analysis path must name the root.
	h := testHeap(t)
	head := alloc(t, h, 16)
	n1 := alloc(t, h, 16)
	n2 := alloc(t, h, 16)
	write(t, h, head, n1)
	write(t, h, n1, n2)
	garbage := alloc(t, h, 400)
	_ = garbage

	sites := []Site{{ID: 0, Func: "main", Line: 7, Kind: "malloc", Allocs: 4, Bytes: 472}}
	siteOf := func(base uint32) int32 { return 0 }
	snap := Capture(h, TriggerExit, func(emit func(string, int, uint32, uint32)) {
		emit(RootStatic, 0, 0x2004, head)
	}, siteOf, sites)

	a := Analyze(snap)
	i := a.Graph.IndexOf(head)
	sz := uint64(h.ObjectSize(head) + h.ObjectSize(n1) + h.ObjectSize(n2))
	if a.Dom.Retained[i] != sz {
		t.Errorf("head retained %d, want %d", a.Dom.Retained[i], sz)
	}
	if want := a.Graph.BruteRetained(i); a.Dom.Retained[i] != want {
		t.Errorf("dominator retained %d disagrees with brute force %d", a.Dom.Retained[i], want)
	}
	gi := a.Graph.IndexOf(garbage)
	if a.Roots.Dist[gi] != -1 {
		t.Error("garbage object reachable from roots")
	}
	explain := a.ExplainAddr(n2 + 4)
	for _, want := range []string{"main:7 (malloc)", "static@0x2004", "retained size"} {
		if !strings.Contains(explain, want) {
			t.Errorf("ExplainAddr = %q, missing %q", explain, want)
		}
	}
	var buf bytes.Buffer
	a.RenderReport(&buf, 3)
	if !strings.Contains(buf.String(), "top retainers") {
		t.Errorf("report missing retainers section:\n%s", buf.String())
	}
}

func TestTruncateObjects(t *testing.T) {
	h := testHeap(t)
	var bases []uint32
	for i := 0; i < 10; i++ {
		bases = append(bases, alloc(t, h, 16))
	}
	// Last object references the first; a root references the last.
	write(t, h, bases[9], bases[0])
	snap := Capture(h, TriggerRequest, func(emit func(string, int, uint32, uint32)) {
		emit(RootReg, 0, 1, bases[9])
		emit(RootReg, 0, 2, bases[0])
	}, nil, nil)
	snap.TruncateObjects(4)
	if len(snap.Objects) != 4 || !snap.Truncated {
		t.Fatalf("truncate kept %d objects (truncated=%v), want 4", len(snap.Objects), snap.Truncated)
	}
	for _, r := range snap.Roots {
		if snap.Object(r.Target) == nil {
			t.Errorf("root targets dropped object %#x", r.Target)
		}
	}
	for i := range snap.Objects {
		for _, ref := range snap.Objects[i].Refs {
			if snap.Object(ref) == nil {
				t.Errorf("ref to dropped object %#x survived truncation", ref)
			}
		}
	}
	// Analyses must still run on a truncated snapshot.
	_ = Analyze(snap)
}

func TestSnapshotJSONRoundtrip(t *testing.T) {
	h := testHeap(t)
	a := alloc(t, h, 16)
	b := alloc(t, h, 16)
	write(t, h, a, b)
	snap := Capture(h, TriggerExit, func(emit func(string, int, uint32, uint32)) {
		emit(RootReg, 0, 1, a)
	}, nil, []Site{{ID: 0, Func: "main", Line: 3, Kind: "malloc"}})
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(back.Objects) != len(snap.Objects) || back.TotalBytes() != snap.TotalBytes() {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", back, snap)
	}
}

func TestWireCodecRoundtrip(t *testing.T) {
	h := testHeap(t)
	a := alloc(t, h, 16)
	snap := Capture(h, TriggerRequest, func(emit func(string, int, uint32, uint32)) {
		emit(RootReg, 0, 1, a)
	}, nil, nil)

	reg := artifact.NewCodecRegistry()
	RegisterWire(reg)
	codec := reg.DiskCodec()
	kind, data, ok := codec.Encode(artifact.NewKey("test").Str("x").Sum(), snap)
	if !ok || kind != WireKind {
		t.Fatalf("encode: ok=%v kind=%q", ok, kind)
	}
	v, size, err := codec.Decode(kind, data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	back, ok := v.(*Snapshot)
	if !ok {
		t.Fatalf("decode type %T", v)
	}
	if size != snap.AccountedSize() || len(back.Objects) != 1 || back.Objects[0].Base != a {
		t.Fatalf("roundtrip mismatch: size=%d objects=%+v", size, back.Objects)
	}
	// A non-snapshot value must not be claimed.
	if _, _, ok := codec.Encode(artifact.NewKey("test").Str("z").Sum(), 42); ok {
		t.Fatal("codec claimed a non-snapshot value")
	}
}
