package heapdump

// RootScan is the RootScanner analysis of the heapdump design (after
// tokuhirom's heapdump analyzer): one breadth-first search over the
// reference graph from the GC roots computes, for every reachable object,
// its root distance (number of edges from the root set; 1 = directly
// rooted) and a shortest root path. BFS from all roots at once means the
// "nearest root" is exact, and processing roots and successors in
// deterministic order makes paths reproducible run to run.
type RootScan struct {
	g *Graph
	// Dist[i] is the root distance of object i, or -1 when the object is
	// unreachable from the recorded roots.
	Dist []int
	// Pred[i] is the BFS predecessor of object i (-1 for directly-rooted
	// and unreachable objects).
	Pred []int
}

// ScanRoots runs the BFS.
func (g *Graph) ScanRoots() *RootScan {
	n := g.Len()
	rs := &RootScan{g: g, Dist: make([]int, n), Pred: make([]int, n)}
	for i := range rs.Dist {
		rs.Dist[i], rs.Pred[i] = -1, -1
	}
	queue := make([]int, 0, n)
	for _, i := range g.RootTargets {
		if rs.Dist[i] < 0 {
			rs.Dist[i] = 1
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Out[v] {
			if rs.Dist[w] < 0 {
				rs.Dist[w] = rs.Dist[v] + 1
				rs.Pred[w] = v
				queue = append(queue, w)
			}
		}
	}
	return rs
}

// NearestRoot returns the GC root anchoring object i's shortest root path,
// or nil when i is unreachable.
func (rs *RootScan) NearestRoot(i int) *Root {
	if i < 0 || i >= len(rs.Dist) || rs.Dist[i] < 0 {
		return nil
	}
	for rs.Pred[i] >= 0 {
		i = rs.Pred[i]
	}
	return rs.g.RootOf[i]
}

// Path returns a shortest root path to object i as object indices, root
// side first (the directly-rooted ancestor) and i last. Nil when i is
// unreachable.
func (rs *RootScan) Path(i int) []int {
	if i < 0 || i >= len(rs.Dist) || rs.Dist[i] < 0 {
		return nil
	}
	var rev []int
	for v := i; v >= 0; v = rs.Pred[v] {
		rev = append(rev, v)
	}
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev
}
