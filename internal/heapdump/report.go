package heapdump

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Analysis bundles a snapshot with the three derived structures every
// report needs. Building it runs the whole pipeline once: graph indexes,
// root BFS, dominator tree.
type Analysis struct {
	Snap  *Snapshot
	Graph *Graph
	Roots *RootScan
	Dom   *DomTree
}

// Analyze runs all analyses over s.
func Analyze(s *Snapshot) *Analysis {
	g := NewGraph(s)
	return &Analysis{Snap: s, Graph: g, Roots: g.ScanRoots(), Dom: g.Dominators()}
}

// Retainer is one entry of the top-retainers table.
type Retainer struct {
	Obj      *Object
	Retained uint64
	Dist     int // root distance (-1 unreachable)
}

// TopRetainers returns the n objects with the largest retained sizes,
// ties broken by base address (deterministic for golden files).
func (a *Analysis) TopRetainers(n int) []Retainer {
	all := make([]Retainer, 0, len(a.Snap.Objects))
	for i := range a.Snap.Objects {
		all = append(all, Retainer{
			Obj:      &a.Snap.Objects[i],
			Retained: a.Dom.Retained[i],
			Dist:     a.Roots.Dist[i],
		})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Retained != all[j].Retained {
			return all[i].Retained > all[j].Retained
		}
		return all[i].Obj.Base < all[j].Obj.Base
	})
	if n < len(all) {
		all = all[:n]
	}
	return all
}

// PathString renders object i's shortest root path as
// "static@0x2004 → 0x10000020 → 0x10000040", or "(unreachable)".
func (a *Analysis) PathString(i int) string {
	path := a.Roots.Path(i)
	if path == nil {
		return "(unreachable from recorded roots)"
	}
	var b strings.Builder
	if r := a.Roots.NearestRoot(i); r != nil {
		b.WriteString(r.String())
	}
	for _, v := range path {
		fmt.Fprintf(&b, " → %#x", a.Snap.Objects[v].Base)
	}
	return b.String()
}

// describe renders one object's identity for reports:
// "object 0x10000040 (64 bytes, epoch 5, allocated at main:12 (malloc))".
func (a *Analysis) describe(o *Object) string {
	s := fmt.Sprintf("object %#x (%s bytes, epoch %d", o.Base, Comma(uint64(o.Size)), o.Epoch)
	if site := a.Snap.SiteOf(o); site != nil {
		s += ", allocated at " + site.String()
	}
	return s + ")"
}

// ExplainAddr is the forensics renderer: given the faulting address of a
// CheckError/TemporalError, it names the object containing (or the live
// object nearest to) the address, its allocation site and epoch, its
// shortest root path, and its retained size.
func (a *Analysis) ExplainAddr(addr uint32) string {
	o := a.Snap.Find(addr)
	if o == nil {
		return fmt.Sprintf("address %#x is not inside any live object "+
			"(the storage was reclaimed or never allocated)", addr)
	}
	i := a.Graph.IndexOf(o.Base)
	return fmt.Sprintf("pointer escaped into %s, retained by path %s, retained size %s bytes",
		a.describe(o), a.PathString(i), Comma(a.Dom.Retained[i]))
}

// RenderReport writes the human-readable snapshot report: the summary
// line, the top-n retainers table, and per-retainer root paths. The
// output is deterministic and is what examples/leaks pins as a golden
// file.
func (a *Analysis) RenderReport(w io.Writer, n int) {
	s := a.Snap
	fmt.Fprintf(w, "heap snapshot: trigger=%s, %d objects, %s bytes live, epoch high-water %d\n",
		s.Trigger, len(s.Objects), Comma(s.TotalBytes()), s.Epoch)
	if s.Reason != "" {
		fmt.Fprintf(w, "reason: %s\n", s.Reason)
	}
	if s.FaultAddr != 0 {
		fmt.Fprintf(w, "forensics: %s\n", a.ExplainAddr(s.FaultAddr))
	}
	top := a.TopRetainers(n)
	fmt.Fprintf(w, "top retainers by retained size:\n")
	for rank, r := range top {
		i := a.Graph.IndexOf(r.Obj.Base)
		site := "?"
		if st := a.Snap.SiteOf(r.Obj); st != nil {
			site = st.String()
		}
		fmt.Fprintf(w, "  #%-2d %#x  size %s  retained %s  dist %d  site %s\n",
			rank+1, r.Obj.Base, Comma(uint64(r.Obj.Size)), Comma(r.Retained), r.Dist, site)
		fmt.Fprintf(w, "      path: %s\n", a.PathString(i))
	}
}

// Comma formats n with thousands separators ("4,312").
func Comma(n uint64) string {
	s := fmt.Sprintf("%d", n)
	if len(s) <= 3 {
		return s
	}
	var b strings.Builder
	lead := len(s) % 3
	if lead > 0 {
		b.WriteString(s[:lead])
	}
	for i := lead; i < len(s); i += 3 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s[i : i+3])
	}
	return b.String()
}
