package bench

import (
	"testing"

	"gcsafety/internal/machine"
	"gcsafety/internal/pipeline"
	"gcsafety/internal/workloads"
)

// TestMeasureAllSharesFrontEnd is the stage-sharing acceptance bar for
// the pipeline refactor: the full table cell set — every workload under
// the four canonical treatments plus the postprocessor treatment, on all
// three machines, fanned out at parallelism 8 — must execute Lex, Parse
// and Typecheck exactly once per workload. Everything else is a stage
// cache hit (or singleflight wait) by construction.
func TestMeasureAllSharesFrontEnd(t *testing.T) {
	defer SetParallelism(0)
	defer ResetCache()
	SetParallelism(8)
	ResetCache()

	var reqs []CellRequest
	for _, cfg := range machine.Configs() {
		for _, w := range workloads.All() {
			for _, tr := range append(slowdownTreatments(w), OptSafePost) {
				reqs = append(reqs, CellRequest{Workload: w, Treatment: tr, Machine: cfg})
			}
		}
	}
	if _, err := MeasureAll(reqs); err != nil {
		t.Fatal(err)
	}
	want := uint64(len(workloads.All()))
	for _, st := range PipelineStats() {
		switch st.Stage {
		case "lex", "parse", "typecheck":
			if st.Misses != want {
				t.Errorf("%s: %d executions across %d cells, want one per workload (%d)",
					st.Stage, st.Misses, len(reqs), want)
			}
			if st.Errors != 0 {
				t.Errorf("%s: %d stage errors", st.Stage, st.Errors)
			}
		}
	}
}

// TestStageVersionBumpInvalidatesCells pins the invalidation rule that
// folds pipeline stage versions into bench cell keys: bumping any
// stage's version must recompute cells, not serve stale measurements.
func TestStageVersionBumpInvalidatesCells(t *testing.T) {
	defer ResetCache()
	ResetCache()

	w := workloads.All()[0]
	cfg := machine.SPARCstation10()
	first, err := Measure(w, Opt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Measure(w, Opt, cfg); err != nil {
		t.Fatal(err)
	}
	if n := CellCompiles(); n != 1 {
		t.Fatalf("warm re-measure compiled %d cells, want 1", n)
	}

	restore := pipeline.SetVersionForTest(pipeline.StageCodegen, "v1-cell-invalidation-test")
	defer restore()
	bumped, err := Measure(w, Opt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n := CellCompiles(); n != 2 {
		t.Fatalf("measure after a stage version bump compiled %d cells total, want 2 (recompute)", n)
	}
	// The stage implementation did not actually change, so the recomputed
	// cell must agree with the original measurement.
	if bumped.Cycles != first.Cycles || bumped.Size != first.Size || bumped.Output != first.Output {
		t.Fatal("recomputed cell diverges from the original measurement")
	}
}
