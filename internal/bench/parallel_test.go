package bench

import (
	"sync"
	"testing"

	"gcsafety/internal/machine"
	"gcsafety/internal/workloads"
)

// buildTables renders the tables under test into one string. -short keeps
// the -race gate fast with a single machine's slowdown table; the full run
// covers every table the `make tables` output contains.
func buildTables(t *testing.T) string {
	t.Helper()
	var out string
	add := func(tbl *Table, err error) {
		if err != nil {
			t.Fatal(err)
		}
		out += tbl.String()
	}
	add(SlowdownTable(machine.SPARCstation10()))
	// The hazard table exercises the temporal and concurrent-mutator
	// treatments; keeping it in the -short set means the -race gate proves
	// the concurrent cells are deterministic at every fan-out width.
	add(HazardTable(machine.SPARCstation10()))
	if !testing.Short() {
		add(SlowdownTable(machine.SPARCstation2()))
		add(SlowdownTable(machine.Pentium90()))
		add(CodeSizeTable(machine.SPARCstation10()))
		add(PostprocessorTable(machine.SPARCstation10()))
		add(AblationCallVsAsm(machine.SPARCstation10()))
	}
	return out
}

// TestTablesParallelDeterministic is the acceptance bar for the parallel
// cell fan-out: tables built with parallel prefetch must be byte-identical
// to a sequential build, at any width. Run under -race (make race) this
// also shakes out data races in the fan-out itself.
func TestTablesParallelDeterministic(t *testing.T) {
	defer SetParallelism(0)
	defer ResetCache()

	SetParallelism(1)
	ResetCache()
	seq := buildTables(t)

	for _, width := range []int{2, 8} {
		SetParallelism(width)
		ResetCache()
		if par := buildTables(t); par != seq {
			t.Fatalf("width-%d tables differ from sequential build:\n--- sequential ---\n%s\n--- parallel ---\n%s",
				width, seq, par)
		}
	}
}

// TestMeasureAllPositional pins MeasureAll's contract: out[i] answers
// reqs[i], and the results are the same *Measurement the sequential
// Measure path returns (shared cache entries, not copies).
func TestMeasureAllPositional(t *testing.T) {
	defer SetParallelism(0)
	defer ResetCache()
	SetParallelism(4)
	ResetCache()

	cfg := machine.SPARCstation10()
	all := workloads.All()
	reqs := make([]CellRequest, 0, 2*len(all))
	for _, w := range all {
		reqs = append(reqs,
			CellRequest{Workload: w, Treatment: Opt, Machine: cfg},
			CellRequest{Workload: w, Treatment: OptSafe, Machine: cfg})
	}
	out, err := MeasureAll(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(reqs) {
		t.Fatalf("got %d results for %d requests", len(out), len(reqs))
	}
	for i, req := range reqs {
		got, err := Measure(req.Workload, req.Treatment, req.Machine)
		if err != nil {
			t.Fatal(err)
		}
		if out[i] != got {
			t.Fatalf("result %d (%s/%s) is not the cached measurement", i, req.Workload.Name, req.Treatment.Name)
		}
	}
}

// TestMeasureStampede proves the singleflight guarantee under real
// concurrency: many goroutines measuring the same cold cell compile it
// exactly once.
func TestMeasureStampede(t *testing.T) {
	defer ResetCache()
	ResetCache()

	w, ok := workloads.ByName("cordtest")
	if !ok {
		t.Fatal("no cordtest workload")
	}
	cfg := machine.SPARCstation10()

	const callers = 8
	var wg sync.WaitGroup
	results := make([]*Measurement, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = Measure(w, OptSafe, cfg)
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different measurement instance", i)
		}
	}
	if n := CellCompiles(); n != 1 {
		t.Fatalf("%d concurrent Measure calls compiled the cell %d times, want 1", callers, n)
	}
	// The stampede coalesced above the cell cache, so the pipeline below it
	// saw one build: every stage executed at most once.
	for _, st := range PipelineStats() {
		if st.Misses > 1 {
			t.Fatalf("stage %s executed %d times under the stampede, want at most 1", st.Stage, st.Misses)
		}
	}
}
