package bench

import (
	"gcsafety/internal/gcsafe"
	"gcsafety/internal/machine"
	"gcsafety/internal/workloads"
)

// Ablation studies for the design choices DESIGN.md calls out. Each returns
// a table whose columns are variants of the safe treatment.

// AblationCallVsAsm compares the paper's two KEEP_LIVE implementations:
// the opaque-external-function fallback ("terribly inefficient") versus the
// empty-asm pseudo-instruction. The call variant is produced by running the
// annotated *source text* back through the front end, so every KEEP_LIVE is
// a genuine function call.
func AblationCallVsAsm(cfg machine.Config) (*Table, error) {
	t := &Table{
		Title:   "KEEP_LIVE implementation: empty asm vs. opaque call (" + cfg.Name + "):",
		Columns: []string{"asm (safe)", "call"},
	}
	// The call variant measures a derived workload (the annotated source
	// re-parsed, so KEEP_LIVE is a genuine call); derive them up front so
	// all three cells per workload prefetch in one parallel batch.
	derived := make(map[string]workloads.Workload, len(workloads.All()))
	var reqs []CellRequest
	for _, w := range workloads.All() {
		res, err := gcsafe.AnnotateSource(w.Name+".c", w.Source, gcsafe.Options{})
		if err != nil {
			return nil, err
		}
		w2 := w
		w2.Source = res.Output
		w2.Want = "" // output text identical, but skip double-checking
		derived[w.Name] = w2
		reqs = append(reqs,
			CellRequest{Workload: w, Treatment: Opt, Machine: cfg},
			CellRequest{Workload: w, Treatment: OptSafe, Machine: cfg},
			CellRequest{Workload: w2, Treatment: Opt, Machine: cfg})
	}
	if _, err := MeasureAll(reqs); err != nil {
		return nil, err
	}
	for _, w := range workloads.All() {
		base, err := Measure(w, Opt, cfg)
		if err != nil {
			return nil, err
		}
		asm, err := Measure(w, OptSafe, cfg)
		if err != nil {
			return nil, err
		}
		call, err := Measure(derived[w.Name], Opt, cfg)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{
			Workload: w.Name,
			Cells: []Cell{
				{Pct: pct(asm.Cycles, base.Cycles)},
				{Pct: pct(call.Cycles, base.Cycles)},
			},
		})
	}
	return t, nil
}

// AblationCopySuppression measures the paper's optimization (1): with
// suppression disabled, every plain pointer copy also gets a KEEP_LIVE.
func AblationCopySuppression(cfg machine.Config) (*Table, error) {
	t := &Table{
		Title:   "Optimization (1) copy suppression (" + cfg.Name + "):",
		Columns: []string{"safe (opt1 on)", "safe (opt1 off)"},
	}
	off := OptSafe
	off.Name = "-O, safe, no-opt1"
	off.Gcsafe = &gcsafe.Options{NoCopySuppression: true}
	if err := prefetch(cfg, func(workloads.Workload) []Treatment {
		return []Treatment{Opt, OptSafe, off}
	}); err != nil {
		return nil, err
	}
	for _, w := range workloads.All() {
		base, err := Measure(w, Opt, cfg)
		if err != nil {
			return nil, err
		}
		on, err := Measure(w, OptSafe, cfg)
		if err != nil {
			return nil, err
		}
		noSup, err := Measure(w, off, cfg)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{
			Workload: w.Name,
			Cells: []Cell{
				{Pct: pct(on.Cycles, base.Cycles)},
				{Pct: pct(noSup.Cycles, base.Cycles)},
			},
		})
	}
	return t, nil
}

// AblationIncDecExpansion measures the paper's optimization (2): with the
// specialized expansion disabled, pointer ++/-- forces the variable's
// address to be taken, pushing it out of registers.
func AblationIncDecExpansion(cfg machine.Config) (*Table, error) {
	t := &Table{
		Title:   "Optimization (2) ++/-- expansion (" + cfg.Name + "):",
		Columns: []string{"safe (opt2 on)", "safe (opt2 off)"},
	}
	off := OptSafe
	off.Name = "-O, safe, no-opt2"
	off.Gcsafe = &gcsafe.Options{NoIncDecExpansion: true}
	if err := prefetch(cfg, func(workloads.Workload) []Treatment {
		return []Treatment{Opt, OptSafe, off}
	}); err != nil {
		return nil, err
	}
	for _, w := range workloads.All() {
		base, err := Measure(w, Opt, cfg)
		if err != nil {
			return nil, err
		}
		on, err := Measure(w, OptSafe, cfg)
		if err != nil {
			return nil, err
		}
		general, err := Measure(w, off, cfg)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{
			Workload: w.Name,
			Cells: []Cell{
				{Pct: pct(on.Cycles, base.Cycles)},
				{Pct: pct(general.Cycles, base.Cycles)},
			},
		})
	}
	return t, nil
}

// AblationBaseHeuristic measures the paper's optimization (3): replacing
// base pointers with slowly varying equivalents.
func AblationBaseHeuristic(cfg machine.Config) (*Table, error) {
	t := &Table{
		Title:   "Optimization (3) base-pointer heuristic (" + cfg.Name + "):",
		Columns: []string{"safe", "safe + heuristic"},
	}
	heur := OptSafe
	heur.Name = "-O, safe, heuristic"
	heur.Gcsafe = &gcsafe.Options{BaseHeuristic: true}
	if err := prefetch(cfg, func(workloads.Workload) []Treatment {
		return []Treatment{Opt, OptSafe, heur}
	}); err != nil {
		return nil, err
	}
	for _, w := range workloads.All() {
		base, err := Measure(w, Opt, cfg)
		if err != nil {
			return nil, err
		}
		on, err := Measure(w, OptSafe, cfg)
		if err != nil {
			return nil, err
		}
		h, err := Measure(w, heur, cfg)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{
			Workload: w.Name,
			Cells: []Cell{
				{Pct: pct(on.Cycles, base.Cycles)},
				{Pct: pct(h.Cycles, base.Cycles)},
			},
		})
	}
	return t, nil
}

// AblationCallSiteOnly measures the paper's optimization (4): "If we know
// that garbage collections can be triggered only at procedure calls, the
// number of KEEP_LIVE invocations could often be reduced dramatically."
// The reduced program is measured under the allocation-trigger regime it
// is safe for.
func AblationCallSiteOnly(cfg machine.Config) (*Table, error) {
	t := &Table{
		Title:   "Optimization (4) call-site-only annotation (" + cfg.Name + "):",
		Columns: []string{"safe (async)", "safe (call-site)"},
	}
	callsite := OptSafe
	callsite.Name = "-O, safe, call-site"
	callsite.Gcsafe = &gcsafe.Options{CallSiteOnly: true}
	if err := prefetch(cfg, func(workloads.Workload) []Treatment {
		return []Treatment{Opt, OptSafe, callsite}
	}); err != nil {
		return nil, err
	}
	for _, w := range workloads.All() {
		base, err := Measure(w, Opt, cfg)
		if err != nil {
			return nil, err
		}
		full, err := Measure(w, OptSafe, cfg)
		if err != nil {
			return nil, err
		}
		reduced, err := Measure(w, callsite, cfg)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{
			Workload: w.Name,
			Cells: []Cell{
				{Pct: pct(full.Cycles, base.Cycles)},
				{Pct: pct(reduced.Cycles, base.Cycles)},
			},
		})
	}
	return t, nil
}
