package bench

import (
	"sync/atomic"

	"gcsafety/internal/machine"
	"gcsafety/internal/par"
	"gcsafety/internal/workloads"
)

// parOverride, when positive, pins the harness's fan-out width (tests force
// determinism checks to a fixed width; benchmarks force 1 to time the
// sequential path). Zero defers to the process-wide policy in internal/par.
var parOverride atomic.Int32

// SetParallelism overrides how many cells MeasureAll computes concurrently.
// n <= 0 restores the default (GCSAFETY_PARALLEL, else GOMAXPROCS).
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parOverride.Store(int32(n))
}

// Parallelism reports the fan-out width MeasureAll will use.
func Parallelism() int {
	if n := parOverride.Load(); n > 0 {
		return int(n)
	}
	return par.Default()
}

// CellRequest names one (workload, treatment, machine) cell.
type CellRequest struct {
	Workload  workloads.Workload
	Treatment Treatment
	Machine   machine.Config
}

// MeasureAll measures every requested cell, fanning the cache misses out
// over Parallelism() workers. Results are positional: out[i] answers
// reqs[i]. Cells are shared-nothing (each owns its machine and heap) and
// land in the same content-addressed cache as Measure, so a parallel
// prefetch followed by sequential Measure calls yields bit-identical
// measurements to a purely sequential run. On failure the first error in
// request order is returned, independent of completion order.
func MeasureAll(reqs []CellRequest) ([]*Measurement, error) {
	out := make([]*Measurement, len(reqs))
	errs := make([]error, len(reqs))
	par.ForEach(Parallelism(), len(reqs), func(i int) {
		out[i], errs[i] = Measure(reqs[i].Workload, reqs[i].Treatment, reqs[i].Machine)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// prefetch warms the cell cache for every (workload, treatment) pair a
// table is about to assemble, in parallel. Tables call it first and then
// run their original sequential assembly against the warm cache: the
// rendered output is byte-identical to a sequential build by construction,
// because assembly order never changes — only cache-fill order does.
func prefetch(cfg machine.Config, forWorkload func(w workloads.Workload) []Treatment) error {
	var reqs []CellRequest
	for _, w := range workloads.All() {
		for _, tr := range forWorkload(w) {
			reqs = append(reqs, CellRequest{Workload: w, Treatment: tr, Machine: cfg})
		}
	}
	_, err := MeasureAll(reqs)
	return err
}

// measureRetainedAll measures every workload's retained-at-exit value
// (MeasureRetained) in parallel, so the profiled runs behind the
// retained@exit column come off the table's sequential assembly path the
// same way prefetch takes the cells off it. Results are positional:
// out[i] answers ws[i] — tables index into it instead of re-asking, since
// even a cache hit pays the content-addressed key's source hash.
func measureRetainedAll(ws []workloads.Workload) ([]uint64, error) {
	out := make([]uint64, len(ws))
	errs := make([]error, len(ws))
	par.ForEach(Parallelism(), len(ws), func(i int) {
		out[i], errs[i] = MeasureRetained(ws[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
