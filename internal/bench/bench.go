// Package bench is the measurement harness for the evaluation: it builds
// each workload under the paper's compilation treatments, executes it on a
// machine model, and regenerates every table of the paper's Performance,
// Analysis and Postprocessor sections (see EXPERIMENTS.md for the
// paper-vs-measured record).
package bench

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync/atomic"

	"gcsafety/internal/artifact"
	"gcsafety/internal/gcsafe"
	"gcsafety/internal/heapdump"
	"gcsafety/internal/interp"
	"gcsafety/internal/machine"
	"gcsafety/internal/pipeline"
	"gcsafety/internal/workloads"
)

// Treatment is one compilation configuration measured in the paper.
type Treatment struct {
	Name     string
	Annotate bool
	Checked  bool
	Optimize bool
	Post     bool
	// Temporal selects the temporal annotation mode (free→GC_free plus
	// checked-mode pointer validation) and the interpreter's epoch checker.
	Temporal bool
	// Threads runs the cell on a concurrent-mutator simulation with this
	// many threads (0 or 1 = the single-thread interpreter).
	Threads int
	// SchedSeed selects the interleaving of a concurrent cell
	// (0 = the interpreter's fixed default schedule).
	SchedSeed uint64
	// Elide turns on the liveness-based elision analysis: KEEP_LIVE
	// annotations (and, in checked mode, provably in-bounds GC_same_obj
	// checks) that the pipeline's Liveness stage proves redundant are
	// dropped before codegen.
	Elide bool
	// Engine names the execution backend the cell runs on ("" = the
	// default interpreter). Simulated results are engine-invariant by
	// contract, but the field still folds into the cell key when set: a
	// cell measured on another engine is a distinct experiment.
	Engine string
	// Gcsafe overrides the default annotator options (ablations).
	Gcsafe *gcsafe.Options
}

// Canonical treatments, named as in the paper's tables.
var (
	Opt          = Treatment{Name: "-O", Optimize: true}
	OptSafe      = Treatment{Name: "-O, safe", Optimize: true, Annotate: true}
	Debug        = Treatment{Name: "-g"}
	DebugChecked = Treatment{Name: "-g, checked", Annotate: true, Checked: true}
	OptSafePost  = Treatment{Name: "-O, safe+post", Optimize: true, Annotate: true, Post: true}
)

// Treatments of the liveness-elision axis (the elision table).
var (
	// OptSafeElided is the safe production build with redundant KEEP_LIVE
	// annotations elided by the liveness analysis.
	OptSafeElided = Treatment{Name: "-O, safe-elided", Optimize: true, Annotate: true, Elide: true}
	// DebugCheckedElided is the checked debugging build with provably
	// in-bounds GC_same_obj checks elided; every check that can fire is
	// kept, so its detection power matches -g, checked exactly.
	DebugCheckedElided = Treatment{Name: "-g, checked-elided", Annotate: true, Checked: true, Elide: true}
)

// Treatments of the temporal/concurrency extension (the hazard table).
var (
	// OptTemporal is the temporal checker build: optimized, annotated in
	// temporal mode, executed with allocation-epoch checking on.
	OptTemporal = Treatment{Name: "-O, temporal", Optimize: true, Annotate: true, Temporal: true}
	// OptSafeConcurrent runs the safe production build on the
	// four-thread concurrent-mutator simulation at the default schedule.
	OptSafeConcurrent = Treatment{Name: "-O, safe, mt4", Optimize: true, Annotate: true, Threads: 4}
)

// Measurement is the result of one (workload, treatment, machine) cell.
type Measurement struct {
	Cycles      uint64
	Instrs      uint64
	Size        int // static instruction count of processed code
	Output      string
	CheckFailed bool // the pointer-arithmetic checker fired (gawk)
	Collections uint64
}

// cells is the harness's artifact cache. Every (workload, treatment,
// machine) cell is fully deterministic — same compile, same cycle counts —
// so the whole Measurement is content-addressed by the cell's inputs and
// computed once, no matter how many tables ask for it. Before this cache
// each table recompiled (and re-ran) its baseline and repeated cells from
// scratch; see EXPERIMENTS.md ("Artifact-cache speedup") for the measured
// effect. Unbounded: the cell space is the small finite treatment matrix.
var cells = artifact.New(0)

// pipe is the stage-graph pipeline behind every cell build. Cells cache
// whole Measurements; the pipeline underneath additionally shares the
// per-stage artifacts between cells, so the 3 tables x 4 treatments x 3
// machines of a full MeasureAll lex, parse and typecheck each workload
// exactly once.
var pipe = pipeline.NewRunner(artifact.New(0))

// cellCompiles counts the cells actually built and run (cache misses).
var cellCompiles atomic.Uint64

// CellCompiles reports how many cells have been measured for real since
// the last ResetCache (the rest were cache hits).
func CellCompiles() uint64 { return cellCompiles.Load() }

// CacheStats exposes the cell cache's counters.
func CacheStats() artifact.Stats { return cells.Stats() }

// PipelineStats exposes the per-stage counters of the pipeline under the
// cell cache (tests assert front-end sharing on these).
func PipelineStats() []pipeline.StageStat { return pipe.Stats() }

// ResetCache drops every cached cell and stage artifact (benchmarks that
// want to time the cold path).
func ResetCache() {
	cells = artifact.New(0)
	pipe = pipeline.NewRunner(artifact.New(0))
	cellCompiles.Store(0)
}

// cellKey digests everything that influences a cell: the workload's
// source, input and expected output, the full treatment configuration
// including annotator ablation options, the machine, and the version
// fingerprint of every pipeline stage — so shipping a changed stage
// recomputes every cell built through it.
func cellKey(w workloads.Workload, tr Treatment, cfg machine.Config) artifact.Key {
	opts := gcsafe.Options{}
	if tr.Gcsafe != nil {
		opts = *tr.Gcsafe
	}
	k := artifact.NewKey("bench-cell").
		Str(pipeline.VersionFingerprint()).
		Str(w.Name).
		Str(w.Source).
		Str(w.Input).
		Str(w.Want).
		Bool(tr.Annotate).
		Bool(tr.Checked).
		Bool(tr.Optimize).
		Bool(tr.Post).
		Int(int64(opts.Mode)).
		Bool(opts.NoCopySuppression).
		Bool(opts.NoIncDecExpansion).
		Bool(opts.BaseHeuristic).
		Bool(opts.CallSiteOnly).
		Bool(opts.StrictCastWarnings).
		Int(int64(opts.Style)).
		Str(cfg.Name)
	// The temporal/concurrent fields fold in only when set, so every
	// pre-existing treatment's key stays byte-stable across this extension
	// (no spurious cache invalidation of the classic tables).
	if tr.Temporal || tr.Threads > 1 {
		k = k.Bool(tr.Temporal).
			Int(int64(tr.Threads)).
			Int(int64(tr.SchedSeed))
	}
	// Elide likewise folds in only when set.
	if tr.Elide {
		k = k.Bool(true)
	}
	// A non-default engine likewise folds in only when named.
	if tr.Engine != "" {
		k = k.Str(tr.Engine)
	}
	return k.Sum()
}

// Measure returns one cell's measurement, computing it at most once per
// distinct cell across all tables (and all concurrent callers). The
// returned Measurement is shared: callers must not mutate it.
func Measure(w workloads.Workload, tr Treatment, cfg machine.Config) (*Measurement, error) {
	v, _, err := cells.GetOrCompute(context.Background(), cellKey(w, tr, cfg), func() (any, int64, error) {
		cellCompiles.Add(1)
		m, err := measureCell(w, tr, cfg)
		if err != nil {
			return nil, 0, err
		}
		return m, int64(len(m.Output)) + 128, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*Measurement), nil
}

// measureCell builds one cell on the stage-graph pipeline and runs it.
// The compiled program is shared through the pipeline's artifact cache
// (the interpreter never mutates it), so cells differing only in input
// or expected output reuse the whole build.
func measureCell(w workloads.Workload, tr Treatment, cfg machine.Config) (*Measurement, error) {
	opts := gcsafe.Options{}
	if tr.Gcsafe != nil {
		opts = *tr.Gcsafe
	}
	if tr.Temporal {
		opts.Mode = gcsafe.ModeTemporal
	} else if tr.Checked {
		opts.Mode = gcsafe.ModeChecked
	}
	if tr.Elide {
		opts.Elide = true
	}
	b, err := pipe.Build(context.Background(), w.Name+".c", w.Source, pipeline.Options{
		Annotate:        tr.Annotate,
		AnnotateOptions: opts,
		Optimize:        tr.Optimize,
		Post:            tr.Post,
		Machine:         cfg,
		Engine:          tr.Engine,
	})
	if err != nil {
		var se *pipeline.StageError
		if errors.As(err, &se) {
			switch se.Stage {
			case pipeline.StageLex, pipeline.StageParse, pipeline.StageTypecheck:
				return nil, fmt.Errorf("%s: parse: %w", w.Name, se.Err)
			case pipeline.StageAnnotate:
				return nil, fmt.Errorf("%s: annotate: %w", w.Name, se.Err)
			default:
				return nil, fmt.Errorf("%s: compile: %w", w.Name, se.Err)
			}
		}
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	prog := b.Prog
	m := &Measurement{Size: prog.Size()}
	res, err := interp.Run(prog, interp.Options{
		Engine:    tr.Engine,
		Config:    cfg,
		Input:     w.Input,
		Temporal:  tr.Temporal,
		Threads:   tr.Threads,
		SchedSeed: tr.SchedSeed,
	})
	if err != nil {
		if _, ok := findCheckError(err); ok {
			m.CheckFailed = true
			return m, nil
		}
		return nil, fmt.Errorf("%s [%s]: %w", w.Name, tr.Name, err)
	}
	m.Cycles = res.Cycles
	m.Instrs = res.Instrs
	m.Output = res.Output
	m.Collections = res.GCStats.Collections
	if w.Want != "" && res.Output != w.Want {
		return nil, fmt.Errorf("%s [%s]: wrong output", w.Name, tr.Name)
	}
	return m, nil
}

// MeasureRetained returns the total retained size of the live heap at the
// workload's exit — the sum over the dominator tree's root-dominated
// objects of an end-of-run heapdump snapshot — measured on the optimized
// baseline build (treatments change code, not the workload's data
// structures). It is a separate run from the timed cells: the
// allocation-site profiler costs a map insert per simulated allocation,
// and folding that into every measured cell would tax the whole table
// sweep for one column. The machine config prices cycles but does not
// change allocation semantics, so the exit heap is machine-invariant;
// it is measured once per workload, on the canonical SPARCstation 10.
func MeasureRetained(w workloads.Workload) (uint64, error) {
	k := artifact.NewKey("bench-retained").
		Str(pipeline.VersionFingerprint()).
		Str(w.Name).
		Str(w.Source).
		Str(w.Input).
		Sum()
	v, _, err := cells.GetOrCompute(context.Background(), k, func() (any, int64, error) {
		cfg := machine.SPARCstation10()
		b, err := pipe.Build(context.Background(), w.Name+".c", w.Source, pipeline.Options{
			Optimize: true,
			Machine:  cfg,
		})
		if err != nil {
			return nil, 0, fmt.Errorf("%s: %w", w.Name, err)
		}
		res, err := interp.Run(b.Prog, interp.Options{
			Config:      cfg,
			Input:       w.Input,
			HeapProfile: true,
		})
		if err != nil {
			return nil, 0, fmt.Errorf("%s [retained]: %w", w.Name, err)
		}
		return retainedAtExit(res.Snapshot), 8, nil
	})
	if err != nil {
		return 0, err
	}
	return v.(uint64), nil
}

// retainedAtExit sums the retained sizes of the root-dominated objects of
// the end-of-run snapshot — the bytes the roots would lose if severed,
// i.e. the total reachable heap at exit.
func retainedAtExit(s *heapdump.Snapshot) uint64 {
	if s == nil {
		return 0
	}
	a := heapdump.Analyze(s)
	var sum uint64
	for i, idom := range a.Dom.Idom {
		if idom == a.Dom.Root {
			sum += a.Dom.Retained[i]
		}
	}
	return sum
}

func findCheckError(err error) (*interp.CheckError, bool) {
	for err != nil {
		if ce, ok := err.(*interp.CheckError); ok {
			return ce, true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return nil, false
		}
		err = u.Unwrap()
	}
	return nil, false
}

// Cell is one formatted table entry.
type Cell struct {
	Pct       float64 // slowdown or expansion percentage
	Fails     bool    // "<fails>" (gawk checked)
	Unavail   bool    // "-" (cfrac -g)
	FailsNote string
	// Text renders literally when non-empty: the retained-size and
	// engine-throughput columns are absolute values, not percentages.
	Text string
}

func (c Cell) String() string {
	switch {
	case c.Text != "":
		return c.Text
	case c.Fails:
		return "<fails>"
	case c.Unavail:
		return "-"
	default:
		return fmt.Sprintf("%.0f%%", c.Pct)
	}
}

// retainedCell renders a workload's exit heap shape (MeasureRetained) for
// the tables' retained column.
func retainedCell(retained uint64) Cell {
	return Cell{Text: heapdump.Comma(retained) + "B"}
}

// Row is one workload's row in a table.
type Row struct {
	Workload string
	Cells    []Cell
}

// Table is one reproduced paper table.
type Table struct {
	Title   string
	Columns []string
	Rows    []Row
}

// String renders the table in the paper's layout.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", t.Title)
	fmt.Fprintf(&sb, "%-10s", "")
	for _, c := range t.Columns {
		fmt.Fprintf(&sb, "%-16s", c)
	}
	sb.WriteString("\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%-10s", r.Workload)
		for _, c := range r.Cells {
			fmt.Fprintf(&sb, "%-16s", c.String())
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// slowdownTreatments is the cell set of the slowdown and code-size tables:
// every workload needs the optimized baseline and the safe build, and all
// but the debug-unavailable ones (cfrac) need the two debug builds too.
func slowdownTreatments(w workloads.Workload) []Treatment {
	if w.DebugUnavailable {
		return []Treatment{Opt, OptSafe}
	}
	return []Treatment{Opt, OptSafe, Debug, DebugChecked}
}

func pct(mode, base uint64) float64 {
	if base == 0 {
		return math.NaN()
	}
	return (float64(mode)/float64(base) - 1) * 100
}

// SlowdownTable reproduces the paper's per-machine running-time tables
// (SPARCstation 2, SPARC 10, Pentium 90): "slowdown percentages relative to
// the unpreprocessed optimized version" for GC-safe code, fully debuggable
// code, and debuggable code with pointer-arithmetic checks.
func SlowdownTable(cfg machine.Config) (*Table, error) {
	t := &Table{
		Title:   cfg.Name + ":",
		Columns: []string{"-O, safe", "-g", "-g, checked", "retained@exit"},
	}
	if err := prefetch(cfg, slowdownTreatments); err != nil {
		return nil, err
	}
	// One catalogue generation for both passes: workloads.All builds its
	// sources and inputs fresh on every call.
	ws := workloads.All()
	retained, err := measureRetainedAll(ws)
	if err != nil {
		return nil, err
	}
	for wi, w := range ws {
		base, err := Measure(w, Opt, cfg)
		if err != nil {
			return nil, err
		}
		row := Row{Workload: w.Name}
		safe, err := Measure(w, OptSafe, cfg)
		if err != nil {
			return nil, err
		}
		row.Cells = append(row.Cells, Cell{Pct: pct(safe.Cycles, base.Cycles)})
		if w.DebugUnavailable {
			row.Cells = append(row.Cells, Cell{Unavail: true}, Cell{Unavail: true}, retainedCell(retained[wi]))
			t.Rows = append(t.Rows, row)
			continue
		}
		dbg, err := Measure(w, Debug, cfg)
		if err != nil {
			return nil, err
		}
		row.Cells = append(row.Cells, Cell{Pct: pct(dbg.Cycles, base.Cycles)})
		chk, err := Measure(w, DebugChecked, cfg)
		if err != nil {
			return nil, err
		}
		if chk.CheckFailed {
			row.Cells = append(row.Cells, Cell{Fails: true})
		} else {
			row.Cells = append(row.Cells, Cell{Pct: pct(chk.Cycles, base.Cycles)})
		}
		row.Cells = append(row.Cells, retainedCell(retained[wi]))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// CodeSizeTable reproduces the object-code expansion table: static
// instruction counts of the processed code only, "not the standard
// libraries", relative to the optimized build.
func CodeSizeTable(cfg machine.Config) (*Table, error) {
	t := &Table{
		Title:   "Object code size expansion (" + cfg.Name + "):",
		Columns: []string{"-O, safe", "-g", "-g, checked"},
	}
	if err := prefetch(cfg, slowdownTreatments); err != nil {
		return nil, err
	}
	for _, w := range workloads.All() {
		base, err := Measure(w, Opt, cfg)
		if err != nil {
			return nil, err
		}
		row := Row{Workload: w.Name}
		safe, err := Measure(w, OptSafe, cfg)
		if err != nil {
			return nil, err
		}
		row.Cells = append(row.Cells, Cell{Pct: pct(uint64(safe.Size), uint64(base.Size))})
		if w.DebugUnavailable {
			row.Cells = append(row.Cells, Cell{Unavail: true}, Cell{Unavail: true})
			t.Rows = append(t.Rows, row)
			continue
		}
		dbg, err := Measure(w, Debug, cfg)
		if err != nil {
			return nil, err
		}
		row.Cells = append(row.Cells, Cell{Pct: pct(uint64(dbg.Size), uint64(base.Size))})
		chk, err := Measure(w, DebugChecked, cfg)
		if err != nil {
			return nil, err
		}
		row.Cells = append(row.Cells, Cell{Pct: pct(uint64(chk.Size), uint64(base.Size))})
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// PostprocessorTable reproduces the final table: residual running-time and
// code-size degradation of safe code after the peephole postprocessor,
// relative to the fully optimized normally compiled code.
func PostprocessorTable(cfg machine.Config) (*Table, error) {
	t := &Table{
		Title:   "After the postprocessor (" + cfg.Name + "):",
		Columns: []string{"running time", "code size"},
	}
	if err := prefetch(cfg, func(workloads.Workload) []Treatment {
		return []Treatment{Opt, OptSafePost}
	}); err != nil {
		return nil, err
	}
	for _, w := range workloads.All() {
		base, err := Measure(w, Opt, cfg)
		if err != nil {
			return nil, err
		}
		post, err := Measure(w, OptSafePost, cfg)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{
			Workload: w.Name,
			Cells: []Cell{
				{Pct: pct(post.Cycles, base.Cycles)},
				{Pct: pct(uint64(post.Size), uint64(base.Size))},
			},
		})
	}
	return t, nil
}

// elisionTreatments is the cell set of the elision table: the optimized
// baseline, each classic treatment, and its elided twin.
func elisionTreatments(w workloads.Workload) []Treatment {
	if w.DebugUnavailable {
		return []Treatment{Opt, OptSafe, OptSafeElided}
	}
	return []Treatment{Opt, OptSafe, OptSafeElided, DebugChecked, DebugCheckedElided}
}

// ElisionTable measures the liveness-elision treatment columns against
// their classic twins: slowdowns relative to the unpreprocessed optimized
// build, with and without the Liveness stage's elision. A "<fails>" cell in
// a checked column is gawk's intentional out-of-object arithmetic being
// caught — it must appear in *both* checked columns, since elision only
// drops checks that provably cannot fire.
func ElisionTable(cfg machine.Config) (*Table, error) {
	t := &Table{
		Title:   "Liveness-based elision (" + cfg.Name + "):",
		Columns: []string{"-O, safe", "-O, safe-elided", "-g, checked", "-g, checked-elided"},
	}
	if err := prefetch(cfg, elisionTreatments); err != nil {
		return nil, err
	}
	for _, w := range workloads.All() {
		base, err := Measure(w, Opt, cfg)
		if err != nil {
			return nil, err
		}
		row := Row{Workload: w.Name}
		for _, tr := range []Treatment{OptSafe, OptSafeElided} {
			m, err := Measure(w, tr, cfg)
			if err != nil {
				return nil, err
			}
			row.Cells = append(row.Cells, Cell{Pct: pct(m.Cycles, base.Cycles)})
		}
		if w.DebugUnavailable {
			row.Cells = append(row.Cells, Cell{Unavail: true}, Cell{Unavail: true})
			t.Rows = append(t.Rows, row)
			continue
		}
		for _, tr := range []Treatment{DebugChecked, DebugCheckedElided} {
			m, err := Measure(w, tr, cfg)
			if err != nil {
				return nil, err
			}
			if m.CheckFailed {
				row.Cells = append(row.Cells, Cell{Fails: true})
				continue
			}
			row.Cells = append(row.Cells, Cell{Pct: pct(m.Cycles, base.Cycles)})
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// hazardTreatments is the cell set of the hazard table: the optimized
// baseline, the safe production build, the temporal checker build, and the
// safe build on the concurrent-mutator simulation.
var hazardTreatments = []Treatment{Opt, OptSafe, OptTemporal, OptSafeConcurrent}

// HazardTable measures the temporal/concurrency hazard catalogue
// (internal/workloads.Hazards()) under the extension's treatment columns.
// A "<fails>" cell is the desired outcome: the temporal checker caught the
// workload's seeded use-after-free or double-free as a deterministic
// violation. The remaining cells are slowdowns relative to the optimized
// baseline, as in the paper's tables (the mt4 column's cost includes the
// worker threads the single-thread baseline never runs).
func HazardTable(cfg machine.Config) (*Table, error) {
	t := &Table{
		Title:   "Temporal/concurrent hazard workloads (" + cfg.Name + "):",
		Columns: []string{"-O, safe", "-O, temporal", "-O, safe, mt4", "retained@exit"},
	}
	// One catalogue generation for all three passes: workloads.Hazards
	// builds its sources and inputs fresh on every call.
	hs := workloads.Hazards()
	var reqs []CellRequest
	for _, w := range hs {
		for _, tr := range hazardTreatments {
			reqs = append(reqs, CellRequest{Workload: w, Treatment: tr, Machine: cfg})
		}
	}
	if _, err := MeasureAll(reqs); err != nil {
		return nil, err
	}
	retained, err := measureRetainedAll(hs)
	if err != nil {
		return nil, err
	}
	for wi, w := range hs {
		base, err := Measure(w, Opt, cfg)
		if err != nil {
			return nil, err
		}
		row := Row{Workload: w.Name}
		for _, tr := range hazardTreatments[1:] {
			m, err := Measure(w, tr, cfg)
			if err != nil {
				return nil, err
			}
			if m.CheckFailed {
				row.Cells = append(row.Cells, Cell{Fails: true})
				continue
			}
			row.Cells = append(row.Cells, Cell{Pct: pct(m.Cycles, base.Cycles)})
		}
		row.Cells = append(row.Cells, retainedCell(retained[wi]))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
