package bench

import (
	"context"
	"fmt"
	"time"

	"gcsafety/internal/engine"
	"gcsafety/internal/interp"
	"gcsafety/internal/machine"
	"gcsafety/internal/pipeline"
	"gcsafety/internal/threaded"
	"gcsafety/internal/workloads"
)

// EngineTable compares the execution backends' wall-clock throughput on
// the optimized build of every workload: simulated megacycles retired per
// host second under the interpreter and the closure-threaded engine, plus
// their ratio. Unlike every other table this one measures the host, not
// the simulation — cells vary run to run and are never cached. The table
// also enforces the engines' equivalence contract while it measures: a
// divergence in simulated Instrs, Cycles or output is an error, not a row.
func EngineTable(cfg machine.Config) (*Table, error) {
	t := &Table{
		Title:   "Engine throughput, -O build (" + cfg.Name + "):",
		Columns: []string{"interp Mc/s", "threaded Mc/s", "threaded/interp"},
	}
	for _, w := range workloads.All() {
		b, err := pipe.Build(context.Background(), w.Name+".c", w.Source, pipeline.Options{
			Optimize: true,
			Machine:  cfg,
			Engine:   threaded.Name, // pre-lower so timing excludes the build
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.Name, err)
		}
		var rates [2]float64
		var ref *interp.Result
		for i, eng := range [2]string{engine.DefaultName, threaded.Name} {
			res, secs, err := timedRun(b.Prog, w.Input, eng, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s [%s]: %w", w.Name, eng, err)
			}
			rates[i] = float64(res.Cycles) / secs / 1e6
			if i == 0 {
				ref = res
				continue
			}
			if res.Instrs != ref.Instrs || res.Cycles != ref.Cycles || res.Output != ref.Output {
				return nil, fmt.Errorf("%s: engines diverged: interp %d instrs/%d cycles vs %s %d instrs/%d cycles",
					w.Name, ref.Instrs, ref.Cycles, eng, res.Instrs, res.Cycles)
			}
		}
		t.Rows = append(t.Rows, Row{Workload: w.Name, Cells: []Cell{
			{Text: fmt.Sprintf("%.1f", rates[0])},
			{Text: fmt.Sprintf("%.1f", rates[1])},
			{Text: fmt.Sprintf("%.2fx", rates[1]/rates[0])},
		}})
	}
	return t, nil
}

// timedRun executes one build on one engine and reports the result with
// the host seconds it took.
func timedRun(prog *machine.Program, input, eng string, cfg machine.Config) (*interp.Result, float64, error) {
	start := time.Now()
	res, err := interp.Run(prog, interp.Options{
		Engine: eng,
		Config: cfg,
		Input:  input,
	})
	secs := time.Since(start).Seconds()
	if err != nil {
		return nil, 0, err
	}
	if secs <= 0 {
		secs = 1e-9
	}
	return res, secs, nil
}
