package bench

import (
	"math"
	"strings"
	"sync"
	"testing"

	"gcsafety/internal/machine"
	"gcsafety/internal/workloads"
)

func TestMeasureBasics(t *testing.T) {
	w, _ := workloads.ByName("cordtest")
	cfg := machine.SPARCstation10()
	m, err := Measure(w, Opt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cycles == 0 || m.Size == 0 {
		t.Fatalf("empty measurement: %+v", m)
	}
	if !strings.Contains(m.Output, "PASS") {
		t.Fatalf("output: %q", m.Output)
	}
}

// TestSlowdownShape pins the qualitative shape of the running-time tables:
// the safe column is small, -g is larger, checked is much larger — the
// ordering and rough factors of the paper's measurements.
func TestSlowdownShape(t *testing.T) {
	for _, cfg := range machine.Configs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			tbl, err := SlowdownTable(cfg)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("\n%s", tbl)
			if len(tbl.Rows) != 4 {
				t.Fatalf("want 4 workloads, got %d", len(tbl.Rows))
			}
			for _, r := range tbl.Rows {
				safe, dbg, chk := r.Cells[0], r.Cells[1], r.Cells[2]
				if safe.Pct < -2 {
					t.Errorf("%s: safe mode cheaper than unsafe (%.1f%%)", r.Workload, safe.Pct)
				}
				if safe.Pct > 60 {
					t.Errorf("%s: safe overhead out of the paper's band (%.1f%%)", r.Workload, safe.Pct)
				}
				if dbg.Unavail {
					if r.Workload != "cfrac" {
						t.Errorf("%s: unexpected unavailable -g column", r.Workload)
					}
					continue
				}
				if dbg.Pct <= safe.Pct {
					t.Errorf("%s: -g (%.1f%%) should cost more than safe (%.1f%%)",
						r.Workload, dbg.Pct, safe.Pct)
				}
				if chk.Fails {
					if r.Workload != "gawk" {
						t.Errorf("%s: unexpected checked failure", r.Workload)
					}
					continue
				}
				if chk.Pct <= dbg.Pct {
					t.Errorf("%s: checked (%.1f%%) should cost more than -g (%.1f%%)",
						r.Workload, chk.Pct, dbg.Pct)
				}
				if chk.Pct < 60 {
					t.Errorf("%s: checked overhead implausibly low (%.1f%%)", r.Workload, chk.Pct)
				}
			}
		})
	}
}

func TestGawkCheckedFailsAndCfracDebugUnavailable(t *testing.T) {
	// The paper's two footnotes must both appear in the table.
	tbl, err := SlowdownTable(machine.SPARCstation10())
	if err != nil {
		t.Fatal(err)
	}
	var sawFails, sawUnavail bool
	for _, r := range tbl.Rows {
		for _, c := range r.Cells {
			if c.Fails && r.Workload == "gawk" {
				sawFails = true
			}
			if c.Unavail && r.Workload == "cfrac" {
				sawUnavail = true
			}
		}
	}
	if !sawFails {
		t.Error("gawk <fails> footnote missing")
	}
	if !sawUnavail {
		t.Error("cfrac '-' footnote missing")
	}
}

func TestCodeSizeShape(t *testing.T) {
	tbl, err := CodeSizeTable(machine.SPARCstation10())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tbl)
	for _, r := range tbl.Rows {
		safe := r.Cells[0]
		if safe.Pct < 0 || safe.Pct > 60 {
			t.Errorf("%s: safe code-size expansion out of band (%.1f%%)", r.Workload, safe.Pct)
		}
		if r.Cells[1].Unavail {
			continue
		}
		// Robust shape properties (see EXPERIMENTS.md for the known
		// divergence on the -g column's absolute magnitude): debug code is
		// never smaller than optimized code, and checking dominates both.
		if r.Cells[1].Pct < 0 {
			t.Errorf("%s: -g code smaller than -O (%.1f%%)", r.Workload, r.Cells[1].Pct)
		}
		if r.Cells[2].Pct <= safe.Pct {
			t.Errorf("%s: checked size (%.1f%%) should exceed safe (%.1f%%)",
				r.Workload, r.Cells[2].Pct, safe.Pct)
		}
		if r.Cells[2].Pct <= r.Cells[1].Pct {
			t.Errorf("%s: checked size (%.1f%%) should exceed -g (%.1f%%)",
				r.Workload, r.Cells[2].Pct, r.Cells[1].Pct)
		}
	}
}

func TestPostprocessorRecoversPerformance(t *testing.T) {
	cfg := machine.SPARCstation10()
	before, err := SlowdownTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	after, err := PostprocessorTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", after)
	for i, r := range after.Rows {
		post := r.Cells[0].Pct
		safe := before.Rows[i].Cells[0].Pct
		if post > safe+0.5 {
			t.Errorf("%s: postprocessor made things worse (%.1f%% -> %.1f%%)",
				r.Workload, safe, post)
		}
		if post > 10 {
			t.Errorf("%s: residual overhead after postprocessing too high (%.1f%%)",
				r.Workload, post)
		}
		if math.IsNaN(post) {
			t.Errorf("%s: NaN cell", r.Workload)
		}
	}
}

func TestAblationTables(t *testing.T) {
	cfg := machine.SPARCstation10()
	t.Run("CallVsAsm", func(t *testing.T) {
		tbl, err := AblationCallVsAsm(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("\n%s", tbl)
		for _, r := range tbl.Rows {
			if r.Cells[1].Pct < r.Cells[0].Pct {
				t.Errorf("%s: opaque-call KEEP_LIVE (%.1f%%) should cost at least the asm form (%.1f%%)",
					r.Workload, r.Cells[1].Pct, r.Cells[0].Pct)
			}
		}
	})
	t.Run("CopySuppression", func(t *testing.T) {
		tbl, err := AblationCopySuppression(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("\n%s", tbl)
		for _, r := range tbl.Rows {
			if r.Cells[1].Pct+0.5 < r.Cells[0].Pct {
				t.Errorf("%s: disabling copy suppression should not speed things up", r.Workload)
			}
		}
	})
	t.Run("IncDecExpansion", func(t *testing.T) {
		tbl, err := AblationIncDecExpansion(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("\n%s", tbl)
	})
	t.Run("CallSiteOnly", func(t *testing.T) {
		tbl, err := AblationCallSiteOnly(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("\n%s", tbl)
		for _, r := range tbl.Rows {
			if r.Cells[1].Pct > r.Cells[0].Pct+0.5 {
				t.Errorf("%s: call-site-only annotation (%.1f%%) costs more than full annotation (%.1f%%)",
					r.Workload, r.Cells[1].Pct, r.Cells[0].Pct)
			}
		}
	})
	t.Run("BaseHeuristic", func(t *testing.T) {
		tbl, err := AblationBaseHeuristic(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("\n%s", tbl)
	})
}

// TestHazardTableShape pins the hazard table's contract: the temporal
// column reports "<fails>" exactly for the workloads that seed a temporal
// bug (the checker caught it), and every other cell is a finite slowdown —
// in particular the concurrent column reproduces the golden output rather
// than crashing or silently diverging.
func TestHazardTableShape(t *testing.T) {
	tbl, err := HazardTable(machine.SPARCstation10())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tbl)
	hs := workloads.Hazards()
	if len(tbl.Rows) != len(hs) {
		t.Fatalf("want %d hazard rows, got %d", len(hs), len(tbl.Rows))
	}
	for i, r := range tbl.Rows {
		w := hs[i]
		safe, temporal, conc := r.Cells[0], r.Cells[1], r.Cells[2]
		if temporal.Fails != w.TemporalFails {
			t.Errorf("%s: temporal column Fails=%v, want %v", r.Workload, temporal.Fails, w.TemporalFails)
		}
		if safe.Fails || safe.Pct < -2 || math.IsNaN(safe.Pct) {
			t.Errorf("%s: bad safe cell %v", r.Workload, safe)
		}
		if conc.Fails || math.IsNaN(conc.Pct) {
			t.Errorf("%s: bad concurrent cell %v", r.Workload, conc)
		}
	}
}

// TestRetainedColumn pins the retained-size column: every table row ends
// with the optimized baseline's exit heap shape, the cell agrees with the
// underlying MeasureRetained value, and the workloads that hold data at
// exit report a non-zero value.
func TestRetainedColumn(t *testing.T) {
	cfg := machine.SPARCstation10()
	tbl, err := SlowdownTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.Columns[len(tbl.Columns)-1]; got != "retained@exit" {
		t.Fatalf("last column = %q, want retained@exit", got)
	}
	var nonzero int
	for _, r := range tbl.Rows {
		w, _ := workloads.ByName(r.Workload)
		retained, err := MeasureRetained(w)
		if err != nil {
			t.Fatal(err)
		}
		cell := r.Cells[len(r.Cells)-1]
		if want := retainedCell(retained).Text; cell.Text != want {
			t.Errorf("%s: retained cell %q, want %q", r.Workload, cell.Text, want)
		}
		if retained > 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Error("no workload retains anything at exit; the column is measuring nothing")
	}
}

// TestEngineTable pins the engine-throughput table's shape: a rate pair
// plus ratio per workload, every rate positive. The equivalence contract
// (identical simulated Instrs/Cycles/output) is enforced inside
// EngineTable itself — a divergence surfaces here as an error.
func TestEngineTable(t *testing.T) {
	tbl, err := EngineTable(machine.SPARCstation10())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tbl)
	if len(tbl.Rows) != len(workloads.All()) {
		t.Fatalf("want %d rows, got %d", len(workloads.All()), len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		if len(r.Cells) != 3 {
			t.Fatalf("%s: want 3 cells, got %d", r.Workload, len(r.Cells))
		}
		for _, c := range r.Cells {
			if c.Text == "" || strings.HasPrefix(c.Text, "-") {
				t.Errorf("%s: bad throughput cell %q", r.Workload, c.Text)
			}
		}
	}
}

// TestCellKeyStableForClassicTreatments pins the cache-compatibility rule
// of the temporal/concurrent extension: the new Treatment fields fold into
// the cell key only when actually set, so every pre-existing treatment
// digests to exactly the key it had before the fields existed — warm
// caches and recorded measurements of the classic tables stay valid.
func TestCellKeyStableForClassicTreatments(t *testing.T) {
	w := workloads.All()[0]
	cfg := machine.SPARCstation10()
	for _, tr := range []Treatment{Opt, OptSafe, Debug, DebugChecked, OptSafePost} {
		zeroed := tr
		zeroed.Temporal = false
		zeroed.Threads = 0
		zeroed.SchedSeed = 0x5bd1e995 // must be ignored off the concurrent path
		if cellKey(w, tr, cfg) != cellKey(w, zeroed, cfg) {
			t.Errorf("%s: temporal/concurrent zero fields perturb the classic cell key", tr.Name)
		}
	}
	// The new treatments must not collide with their classic counterparts.
	if cellKey(w, OptTemporal, cfg) == cellKey(w, OptSafe, cfg) {
		t.Error("temporal treatment collides with the safe treatment")
	}
	if cellKey(w, OptSafeConcurrent, cfg) == cellKey(w, OptSafe, cfg) {
		t.Error("concurrent treatment collides with the single-thread treatment")
	}
	// The engine axis follows the same fold-when-set rule.
	onThreaded := OptSafe
	onThreaded.Engine = "threaded"
	if cellKey(w, onThreaded, cfg) == cellKey(w, OptSafe, cfg) {
		t.Error("engine-set treatment collides with the default-engine treatment")
	}
}

// TestCellCacheDedupes pins the artifact-cache contract: a repeated cell
// is served from cache (same Measurement, no recompilation), including
// under concurrency.
func TestCellCacheDedupes(t *testing.T) {
	ResetCache()
	w, _ := workloads.ByName("cordtest")
	cfg := machine.SPARCstation10()
	m1, err := Measure(w, Opt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := CellCompiles(); got != 1 {
		t.Fatalf("compiles after first Measure = %d, want 1", got)
	}
	m2, err := Measure(w, Opt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatal("repeated cell was recomputed, not shared")
	}
	if got := CellCompiles(); got != 1 {
		t.Fatalf("compiles after repeat = %d, want 1", got)
	}

	ResetCache()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := Measure(w, OptSafe, cfg); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := CellCompiles(); got != 1 {
		t.Fatalf("concurrent identical cells compiled %d times, want 1", got)
	}
}

// TestTablesShareCells pins the satellite requirement: generating every
// table compiles each distinct (workload, treatment, machine) cell once.
// The three per-machine slowdown tables, the code-size table and the
// postprocessor table overlap heavily in cells; the cache collapses the
// overlap.
func TestTablesShareCells(t *testing.T) {
	if testing.Short() {
		t.Skip("generates every table")
	}
	ResetCache()
	cfg := machine.SPARCstation10()
	if _, err := SlowdownTable(cfg); err != nil {
		t.Fatal(err)
	}
	afterSlowdown := CellCompiles()
	if _, err := CodeSizeTable(cfg); err != nil {
		t.Fatal(err)
	}
	if got := CellCompiles(); got != afterSlowdown {
		t.Fatalf("CodeSizeTable recompiled %d cells; all were already measured", got-afterSlowdown)
	}
	if _, err := PostprocessorTable(cfg); err != nil {
		t.Fatal(err)
	}
	// The postprocessor table adds exactly one new treatment (safe+post)
	// per workload.
	want := afterSlowdown + uint64(len(workloads.All()))
	if got := CellCompiles(); got != want {
		t.Fatalf("compiles after all tables = %d, want %d", got, want)
	}
}
