package gcsafe

import (
	"strings"
	"testing"
)

// Edge cases of the annotation algorithm beyond the main test file.

func TestComplexLvalueCompoundAssign(t *testing.T) {
	// Pointer += through a dereference: the general expansion with
	// temporaries applies.
	src := `
void f(char **pp, int n) {
    *pp += n;
}
`
	res := annotate(t, src, Options{})
	reparse(t, res.Output)
	if !strings.Contains(res.Output, "__tmp1") || !strings.Contains(res.Output, "__tmp2") {
		t.Fatalf("general expansion temps missing:\n%s", res.Output)
	}
	if !strings.Contains(res.Output, "KEEP_LIVE(__tmp2 + n, __tmp2)") {
		t.Fatalf("arithmetic not annotated:\n%s", res.Output)
	}
}

func TestComplexLvalueIncrement(t *testing.T) {
	src := `
struct cur { char *pos; };
void f(struct cur *c) {
    c->pos++;
}
`
	res := annotate(t, src, Options{})
	reparse(t, res.Output)
	// The lvalue c->pos requires the general (tmp1 = &(e), ...) expansion;
	// &(c->pos) itself is address arithmetic with base c.
	if !strings.Contains(res.Output, "__tmp1") {
		t.Fatalf("expansion missing:\n%s", res.Output)
	}
	if !strings.Contains(res.Output, "KEEP_LIVE(& c->pos, c)") {
		t.Fatalf("address of member not annotated:\n%s", res.Output)
	}
}

func TestNestedAccessChain(t *testing.T) {
	src := `
struct inner { int vals[4]; };
struct outer { struct inner *in; };
int f(struct outer *o, int i) {
    return o->in->vals[i];
}
`
	res := annotate(t, src, Options{})
	reparse(t, res.Output)
	// Chain: load o->in (annotated), then index into the array member of
	// the loaded struct (annotated with a temp as base).
	if res.Inserted < 2 {
		t.Fatalf("Inserted = %d:\n%s", res.Inserted, res.Output)
	}
}

func TestArrayMemberNoDereference(t *testing.T) {
	// The paper: "the C expression e -> x will not actually involve a
	// dereference if the field x has array type". Using the array member
	// as a value is address arithmetic, not a load.
	src := `
struct buf { int len; char data[16]; };
char *f(struct buf *b) {
    return b->data;
}
`
	res := annotate(t, src, Options{})
	reparse(t, res.Output)
	if !strings.Contains(res.Output, "KEEP_LIVE(b->data, b)") {
		t.Fatalf("array-member decay not annotated as arithmetic:\n%s", res.Output)
	}
}

func TestAddressOfElementWrapped(t *testing.T) {
	src := `
int *f(int *xs, int i) {
    return &xs[i];
}
`
	res := annotate(t, src, Options{})
	reparse(t, res.Output)
	if !strings.Contains(res.Output, "KEEP_LIVE(&xs[i], xs)") {
		t.Fatalf("&xs[i] not annotated:\n%s", res.Output)
	}
}

func TestAddressOfLocalNotWrapped(t *testing.T) {
	src := `
void g(int *p);
void f() {
    int x;
    g(&x);
}
`
	res := annotate(t, src, Options{})
	if res.Inserted != 0 {
		t.Fatalf("address of a local annotated:\n%s", res.Output)
	}
}

func TestCastChainPreservesBase(t *testing.T) {
	src := `
struct a { int x; };
struct b { int y; };
struct b *f(struct a *p) {
    return (struct b *)((char *)p + 8);
}
`
	res := annotate(t, src, Options{})
	reparse(t, res.Output)
	if !strings.Contains(res.Output, ", p)") {
		t.Fatalf("base lost through cast chain:\n%s", res.Output)
	}
	if len(res.Warnings) != 0 {
		t.Fatalf("pointer-to-pointer casts should not warn: %v", res.Warnings)
	}
}

func TestCommaBasePropagation(t *testing.T) {
	// BASE(e1, e2) = BASE(e2).
	src := `
char *f(char *p, int n) {
    return (n++, p + n);
}
`
	res := annotate(t, src, Options{})
	reparse(t, res.Output)
	if !strings.Contains(res.Output, "KEEP_LIVE(p + n, p)") {
		t.Fatalf("comma RHS not annotated with p:\n%s", res.Output)
	}
}

func TestConditionalBaseSplit(t *testing.T) {
	src := `
char *f(int c, char *p, char *q) {
    char *r;
    r = (c ? p : q) + 1;
    return r;
}
`
	res := annotate(t, src, Options{})
	reparse(t, res.Output)
	// The conditional is a generating expression: its value is named by a
	// temporary and the arithmetic is based on it.
	if !strings.Contains(res.Output, "__tmp1") {
		t.Fatalf("no temp for the conditional base:\n%s", res.Output)
	}
	if !strings.Contains(res.Output, ", __tmp1))") {
		t.Fatalf("temp not used as base:\n%s", res.Output)
	}
}

func TestAsmStyleAddressForm(t *testing.T) {
	src := `int f(int *xs, int i) { return xs[i]; }`
	res := annotate(t, src, Options{Style: EmitAsm})
	if !strings.Contains(res.Output, "int * __kl = &(xs[i])") {
		t.Fatalf("asm address form:\n%s", res.Output)
	}
	if !strings.Contains(res.Output, `"rm"((xs))`) {
		t.Fatalf("asm base constraint:\n%s", res.Output)
	}
}

func TestGlobalInitializerWarningsOnly(t *testing.T) {
	src := `
char *bad = (char *)3000;
int *fine = 0;
int main() { return 0; }
`
	res := annotate(t, src, Options{})
	if len(res.Warnings) != 1 {
		t.Fatalf("warnings = %v", res.Warnings)
	}
	if res.Inserted != 0 {
		t.Fatalf("static initializers must not be annotated:\n%s", res.Output)
	}
}

func TestCheckedComplexLvalueIncrement(t *testing.T) {
	// Checked mode with a non-simple lvalue uses the general expansion
	// with GC_same_obj checks inside.
	src := `
void f(char **pp) {
    (*pp)++;
}
`
	res := annotate(t, src, Options{Mode: ModeChecked})
	reparse(t, res.Output)
	if !strings.Contains(res.Output, "GC_same_obj") {
		t.Fatalf("no check in:\n%s", res.Output)
	}
}

func TestPointerSubtractionNotWrapped(t *testing.T) {
	// p - q yields an integer; no annotation site exists.
	src := `int f(char *p, char *q) { return p - q; }`
	res := annotate(t, src, Options{})
	if res.Inserted != 0 {
		t.Fatalf("integer-valued subtraction annotated:\n%s", res.Output)
	}
}

func TestDecrementAndSubAssign(t *testing.T) {
	src := `
void f(char *p, int n) {
    p--;
    --p;
    p -= n;
    *p = 0;
}
`
	res := annotate(t, src, Options{})
	reparse(t, res.Output)
	if !strings.Contains(res.Output, "KEEP_LIVE(p - 1, p)") {
		t.Fatalf("decrement arithmetic missing:\n%s", res.Output)
	}
	if !strings.Contains(res.Output, "KEEP_LIVE(p - n, p)") {
		t.Fatalf("-= arithmetic missing:\n%s", res.Output)
	}
}

func TestMultipleFunctionsIndependentTemps(t *testing.T) {
	src := `
char *mk();
char *f() { return mk() + 1; }
char *g() { return mk() + 2; }
`
	res := annotate(t, src, Options{})
	reparse(t, res.Output)
	// Each function numbers its temporaries from 1.
	if strings.Count(res.Output, "char * __tmp1;") != 2 {
		t.Fatalf("per-function temp declarations wrong:\n%s", res.Output)
	}
}

func TestWhileConditionAnnotated(t *testing.T) {
	src := `
int f(char *p) {
    int n = 0;
    while (p[n]) n++;
    return n;
}
`
	res := annotate(t, src, Options{})
	reparse(t, res.Output)
	if !strings.Contains(res.Output, "KEEP_LIVE(&(p[n]), p)") {
		t.Fatalf("loop condition subscript not annotated:\n%s", res.Output)
	}
}

func TestStructPointerReturnedFieldChain(t *testing.T) {
	src := `
struct list { struct list *next; };
struct list *advance(struct list *l, int n) {
    while (n-- > 0) l = l->next;
    return l;
}
`
	res := annotate(t, src, Options{})
	reparse(t, res.Output)
	if !strings.Contains(res.Output, "KEEP_LIVE(&(l->next), l)") {
		t.Fatalf("next-chain not annotated:\n%s", res.Output)
	}
}

func TestWarningPositions(t *testing.T) {
	src := "int x;\nchar *f(int v) {\n    return (char *)v;\n}\n"
	res := annotate(t, src, Options{})
	if len(res.Warnings) != 1 {
		t.Fatalf("warnings = %v", res.Warnings)
	}
	w := res.Warnings[0]
	if w.Line != 3 {
		t.Errorf("warning line = %d, want 3", w.Line)
	}
	if !strings.Contains(w.String(), "warning:") {
		t.Errorf("warning format: %s", w)
	}
}

func TestStrictStructCastWarning(t *testing.T) {
	// The paper: warnings should also fire "when the same thing is
	// accomplished by a cast between different structure pointer types".
	src := `
struct holder { char *p; int n; };
struct plain  { int a; int b; };
struct same   { char *q; int m; };
void f(struct holder *h) {
    struct plain *bad = (struct plain *)h;   /* pointer word becomes int */
    struct same *ok = (struct same *)h;      /* layouts agree */
    bad->a = 1;
    ok->m = 2;
}
`
	res := annotate(t, src, Options{StrictCastWarnings: true})
	var strict int
	for _, w := range res.Warnings {
		if strings.Contains(w.Msg, "changes which words hold pointers") {
			strict++
		}
	}
	if strict != 1 {
		t.Fatalf("strict cast warnings = %d, want 1 (%v)", strict, res.Warnings)
	}
	// Default options keep the paper's implemented behaviour: no warning.
	res2 := annotate(t, src, Options{})
	for _, w := range res2.Warnings {
		if strings.Contains(w.Msg, "changes which words hold") {
			t.Fatalf("strict warning fired without the option: %v", w)
		}
	}
}
