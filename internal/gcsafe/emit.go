package gcsafe

import (
	"fmt"
	"strings"

	"gcsafety/internal/cc/ast"
	"gcsafety/internal/cc/types"
)

// Text-edit emission. All emission respects silent mode: inside a
// structural rewrite the whole span is replaced by printed text, so nested
// emissions would double up.

func (an *annotator) emitOpen(off int, text string) {
	if an.silent == 0 {
		an.edits.InsertOpen(off, text)
	}
}

func (an *annotator) emitClose(off int, text string) {
	if an.silent == 0 {
		an.edits.InsertClose(off, text)
	}
}

func (an *annotator) emitReplace(off, end int, text string) {
	if an.silent == 0 {
		an.edits.Replace(off, end, text)
	}
}

// emitValueWrap surrounds source span [off,end) — a pointer-valued
// expression of type t — with the annotation for KEEP_LIVE(e, base).
func (an *annotator) emitValueWrap(off, end int, t types.Type, base *ast.Object) {
	if an.silent > 0 {
		return
	}
	bn := "0"
	if base != nil {
		bn = base.Name
	}
	ct := typeCText(t)
	switch {
	case an.opts.Mode.Checked():
		an.emitOpen(off, "(("+ct+")GC_same_obj((void *)(")
		an.emitClose(end, "), (void *)("+bn+")))")
	case an.opts.Style == EmitAsm:
		an.emitOpen(off, "({ "+ct+" __kl = (")
		an.emitClose(end, "); __asm__(\"\" : \"+r\"(__kl) : \"rm\"(("+bn+"))); __kl; })")
	default:
		an.emitOpen(off, "(("+ct+")KEEP_LIVE(")
		an.emitClose(end, ", "+bn+"))")
	}
}

// emitAddrWrap surrounds an lvalue access span with the address-arithmetic
// annotation *KEEP_LIVE(&(e), base), where t is the accessed (element)
// type.
func (an *annotator) emitAddrWrap(off, end int, t types.Type, base *ast.Object) {
	if an.silent > 0 {
		return
	}
	bn := "0"
	if base != nil {
		bn = base.Name
	}
	ct := typeCText(t)
	switch {
	case an.opts.Mode.Checked():
		an.emitOpen(off, "(*("+ct+" *)GC_same_obj((void *)&(")
		an.emitClose(end, "), (void *)("+bn+")))")
	case an.opts.Style == EmitAsm:
		an.emitOpen(off, "(*({ "+ct+" * __kl = &(")
		an.emitClose(end, "); __asm__(\"\" : \"+r\"(__kl) : \"rm\"(("+bn+"))); __kl; }))")
	default:
		an.emitOpen(off, "(*("+ct+" *)KEEP_LIVE(&(")
		an.emitClose(end, "), "+bn+"))")
	}
}

// emitTempDecls inserts declarations for the function's synthesized
// temporaries right after the opening brace of its body.
func (an *annotator) emitTempDecls(fd *ast.FuncDecl) {
	var sb strings.Builder
	for _, t := range fd.Temps {
		fmt.Fprintf(&sb, " %s;", declCText(t.Type, t.Name))
	}
	an.emitOpen(fd.Body.Lbrace.Off+1, sb.String())
}

// typeCText renders a type as C source text suitable for a cast. Arrays
// and functions render as their decayed pointer forms.
func typeCText(t types.Type) string {
	switch t := t.(type) {
	case *types.Basic:
		return t.String()
	case *types.Pointer:
		if _, ok := t.Elem.(*types.Func); ok {
			return "void *"
		}
		return typeCText(t.Elem) + " *"
	case *types.Struct:
		return t.String()
	case *types.Enum:
		return "int"
	case *types.Array:
		return typeCText(t.Elem) + " *"
	case *types.Func:
		return "void *"
	}
	return "void *"
}

// declCText renders a declaration of name with type t.
func declCText(t types.Type, name string) string {
	return typeCText(t) + " " + name
}
