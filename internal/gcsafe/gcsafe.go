// Package gcsafe implements the paper's central contribution: the algorithm
// that annotates C source (or its AST) with KEEP_LIVE expressions so that
// conventionally compiled code is safe in the presence of a conservative
// garbage collector, and — by swapping the KEEP_LIVE implementation for a
// call to GC_same_obj — a run-time pointer-arithmetic checker in the style
// of Purify.
//
// The annotation rule (paper, "An Algorithm"): replace every pointer-valued
// expression e that occurs as the right side of an assignment, as the
// argument of a dereferencing operation, or as a function argument or
// result, by KEEP_LIVE(e, BASE(e)), where BASE is the inductive base-pointer
// computation reproduced in base.go. C increment and decrement operators
// are treated as assignments; subscript and member-access address
// computations are treated as pointer arithmetic ("we essentially treat
// pointer offset calculations as pointer arithmetic. This appears to result
// in better checking of structure accesses").
//
// The package produces two coupled artifacts from one traversal:
//
//   - the transformed AST, consumed by internal/codegen, in which KeepLive
//     nodes carry the liveness/opaqueness constraints into the optimizer;
//   - a rewritten copy of the original source text, produced the way the
//     paper's preprocessor works: a list of insertions and deletions sorted
//     by character position, applied to the untouched input.
package gcsafe

import (
	"fmt"

	"gcsafety/internal/cc/ast"
	"gcsafety/internal/cc/parser"
	"gcsafety/internal/cc/token"
	"gcsafety/internal/cc/types"
	"gcsafety/internal/liveness"
	"gcsafety/internal/rewrite"
)

// Mode selects what the inserted annotations mean.
type Mode int

const (
	// ModeSafe inserts KEEP_LIVE annotations compiled to the empty-asm
	// pseudo-instruction: production GC-safety.
	ModeSafe Mode = iota
	// ModeChecked inserts GC_same_obj calls: the debugging configuration
	// that validates every pointer-arithmetic result at run time (and, as a
	// side effect, is also GC-safe, "though not in a performance-optimal
	// fashion").
	ModeChecked
	// ModeTemporal inserts the same GC_same_obj checks as ModeChecked and
	// additionally rewrites free(p) calls to the runtime's GC_free: freed
	// storage is really retired and recycled, so — together with the
	// interpreter's allocation-epoch tags — use-after-free and double-free
	// become deterministic check failures instead of silent reads of
	// recycled memory.
	ModeTemporal
)

func (m Mode) String() string {
	switch m {
	case ModeChecked:
		return "checked"
	case ModeTemporal:
		return "temporal"
	}
	return "safe"
}

// Checked reports whether the mode emits run-time GC_same_obj checks
// (both ModeChecked and ModeTemporal do; ModeTemporal adds free rewriting).
func (m Mode) Checked() bool { return m == ModeChecked || m == ModeTemporal }

// EmitStyle selects the textual expansion of KEEP_LIVE in the rewritten
// source.
type EmitStyle int

const (
	// EmitMacro prints KEEP_LIVE(e, base) calls; the output re-parses with
	// this front end (KEEP_LIVE is declared as an opaque external function,
	// the paper's portable fallback implementation).
	EmitMacro EmitStyle = iota
	// EmitAsm prints the gcc statement-expression expansion with an empty
	// __asm__ whose constraints pin the value, as in the paper's "An
	// Implementation" section. gcc-specific; for display and diffing.
	EmitAsm
)

// Options configures the annotator. The zero value enables the paper's
// implemented optimizations (1) and (2) in safe mode.
type Options struct {
	Mode Mode
	// NoCopySuppression disables the paper's optimization (1): when set,
	// even plain copies like `p = q` are wrapped in KEEP_LIVE.
	NoCopySuppression bool
	// NoIncDecExpansion disables the paper's optimization (2): when set,
	// pointer ++/-- always uses the fully general
	// (tmp1 = &(e), tmp2 = *tmp1, *tmp1 = tmp2 + 1, tmp2) expansion even
	// for simple register-allocatable variables.
	NoIncDecExpansion bool
	// BaseHeuristic enables the paper's optimization (3): replace base
	// pointers in KEEP_LIVE expressions by equivalent but less rapidly
	// varying base pointers when the function's assignment structure proves
	// the equivalence.
	BaseHeuristic bool
	// CallSiteOnly enables the paper's optimization (4): "If we know that
	// garbage collections can be triggered only at procedure calls, the
	// number of KEEP_LIVE invocations could often be reduced dramatically."
	// Statements containing no function call cannot be interrupted by a
	// collection in that regime, so their annotations are dropped. The
	// resulting program is safe ONLY under a call-site-triggered collector
	// (the interpreter's allocation-trigger regime), not under the
	// asynchronous one.
	CallSiteOnly bool
	// StrictCastWarnings additionally warns when a cast between different
	// structure pointer types changes where pointers live in the pointee —
	// the check the paper says its preprocessor "could and should also
	// issue warnings" for.
	StrictCastWarnings bool
	// Elide consults the internal/liveness analysis to drop provably
	// redundant annotations: in safe mode, KEEP_LIVE whose base variable
	// is strongly live across the expression anyway; in checked mode,
	// GC_same_obj whose pointer arithmetic is provably in-bounds of a
	// known allocation (and whose base is live, since the call doubles as
	// the rooting point). ModeTemporal ignores Elide: an in-bounds access
	// through a stale pointer is exactly what the epoch check must catch.
	Elide bool
	Style EmitStyle
}

// Warning is a source-checking diagnostic (the paper's "our preprocessor
// issues warnings when nonpointer values are directly converted to
// pointers", plus the memcpy-shape check it recommends).
type Warning struct {
	File string
	Line int
	Col  int
	Msg  string
}

func (w Warning) String() string {
	return fmt.Sprintf("%s:%d:%d: warning: %s", w.File, w.Line, w.Col, w.Msg)
}

// Result is the outcome of annotating one translation unit.
type Result struct {
	// File is the transformed AST (the same *ast.File, mutated in place).
	File *ast.File
	// Output is the rewritten source text.
	Output string
	// Warnings are the source-checking diagnostics.
	Warnings []Warning
	// Inserted counts KEEP_LIVE/GC_same_obj annotations inserted.
	Inserted int
	// Suppressed counts annotations omitted thanks to optimization (1).
	Suppressed int
	// Temps counts compiler-introduced temporaries.
	Temps int
	// Considered counts sites where Options.Elide evaluated the liveness
	// facts (a named base existed and the mode permits elision).
	Considered int
	// Elided counts annotations dropped by the elision analysis; it is
	// split by reason into ElidedLive (safe mode: base strongly live) and
	// ElidedBounds (checked mode: provably in-bounds and base live).
	Elided       int
	ElidedLive   int
	ElidedBounds int
}

// Annotate applies the GC-safety (or checking) transformation to file,
// mutating its AST and producing rewritten source text. Under
// Options.Elide the liveness facts are computed on the spot; the pipeline
// instead passes its cached StageLiveness artifact through
// AnnotateWithFacts (the analysis is deterministic, so both paths produce
// identical results).
func Annotate(file *ast.File, opts Options) (*Result, error) {
	var facts *liveness.Facts
	if opts.Elide {
		facts = liveness.Analyze(file)
	}
	return AnnotateWithFacts(file, opts, facts)
}

// AnnotateWithFacts is Annotate with a precomputed liveness artifact. The
// facts must describe this file (positions and object Name/Seq pairs are
// how they are consulted, so a deep clone of the analyzed tree is fine).
// A nil facts value disables elision regardless of Options.Elide.
func AnnotateWithFacts(file *ast.File, opts Options, facts *liveness.Facts) (*Result, error) {
	an := &annotator{
		file:  file,
		opts:  opts,
		facts: facts,
		res:   &Result{File: file},
	}
	for _, d := range file.Decls {
		switch d := d.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				an.annotateFunc(d)
			}
		case *ast.VarDecl:
			an.globalDecl(d)
		}
	}
	out, err := an.edits.Apply(file.Source)
	if err != nil {
		return nil, fmt.Errorf("gcsafe: %w", err)
	}
	an.res.Output = out
	return an.res, nil
}

// AnnotateSource parses, annotates and returns the rewritten text of a C
// translation unit — the preprocessor pipeline as a single call.
func AnnotateSource(name, src string, opts Options) (*Result, error) {
	f, err := parser.Parse(name, src)
	if err != nil {
		return nil, err
	}
	return Annotate(f, opts)
}

// annotator carries traversal state.
type annotator struct {
	file  *ast.File
	opts  Options
	res   *Result
	edits rewrite.List
	fn    *ast.FuncDecl
	// silent suppresses text-edit emission inside structural rewrites whose
	// whole span is replaced by printed text.
	silent int
	// heuristicBase maps a pointer variable to the "less rapidly varying"
	// equivalent base chosen by optimization (3) for the current function.
	heuristicBase map[*ast.Object]*ast.Object
	// runtimeFns caches synthesized extern objects for runtime helpers
	// (GC_pre_incr and friends).
	runtimeFns map[string]*ast.Object
	// stmtHasCall is true while annotating a statement that contains a
	// function call (the only collection points under CallSiteOnly).
	stmtHasCall bool
	// forcedSpan overrides the source span of the next structural
	// replacement (set when a postfix increment is canonicalized to prefix
	// at statement level, which loses the node's ability to describe its
	// own byte range).
	forcedSpan *[2]int
	// facts is the liveness/extent analysis consulted under Options.Elide
	// (nil disables elision).
	facts *liveness.Facts
}

// elide reports whether the annotation about to be inserted for the
// expression spanning [pos, end) with base b is provably redundant.
// Elision applies only to named bases (a generating base needs its
// temporary regardless) and never inside structural rewrites or under
// ModeTemporal.
func (an *annotator) elide(b baseInfo, pos, end int) bool {
	if an.facts == nil || !an.opts.Elide || an.silent > 0 || b.obj == nil ||
		an.opts.Mode == ModeTemporal || an.fn == nil {
		return false
	}
	an.res.Considered++
	fn := an.fn.Obj.Name
	if !an.facts.BaseLive(fn, pos, liveness.ObjID(b.obj)) {
		return false
	}
	if an.opts.Mode == ModeChecked {
		if !an.facts.InBounds(fn, pos, end) {
			return false
		}
		an.res.Elided++
		an.res.ElidedBounds++
		return true
	}
	an.res.Elided++
	an.res.ElidedLive++
	return true
}

func (an *annotator) warnf(pos token.Pos, format string, args ...any) {
	an.res.Warnings = append(an.res.Warnings, Warning{
		File: an.file.Name,
		Line: pos.Line,
		Col:  pos.Col,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// isPtr reports whether the expression's value type is a pointer.
func isPtr(e ast.Expr) bool {
	t := e.Type()
	if t == nil {
		return false
	}
	return types.IsPointer(types.Decay(t))
}
