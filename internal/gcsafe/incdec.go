package gcsafe

import (
	"gcsafety/internal/cc/ast"
	"gcsafety/internal/cc/parser"
	"gcsafety/internal/cc/token"
	"gcsafety/internal/cc/types"
)

// This file implements the structural rewrites for pointer increment,
// decrement and compound assignment — the paper's optimization (2) and its
// debugging-mode GC_pre_incr / GC_post_incr expansions.

// elemSizeOf returns the byte size of the pointee of a pointer-typed
// expression (1 for void*, matching gcc's arithmetic-on-void* extension).
func elemSizeOf(e ast.Expr) int {
	pt, ok := types.Decay(e.Type()).(*types.Pointer)
	if !ok {
		return 1
	}
	s := pt.Elem.Size()
	if s <= 0 {
		return 1
	}
	return s
}

// replaceStructural annotates and rebuilds the expression in s via build
// (run in silent mode so no stray text edits escape), then replaces the
// original source span with the printed form of the new tree.
func (an *annotator) replaceStructural(s *slot, build func() ast.Expr) {
	orig := s.get()
	pos, end := orig.Pos().Off, orig.End()
	if an.forcedSpan != nil {
		pos, end = an.forcedSpan[0], an.forcedSpan[1]
		an.forcedSpan = nil
	}
	an.silent++
	n := build()
	an.silent--
	par := &ast.Paren{X: n, Lparen: token.Pos{Off: pos, Line: orig.Pos().Line, Col: orig.Pos().Col}, RparenEnd: end}
	par.SetType(types.Decay(n.Type()))
	s.set(par)
	an.emitReplace(pos, end, ast.PrintExpr(n))
}

// heuristicFor applies the optimization (3) base substitution for a
// variable, returning the variable itself when no better base is known.
func (an *annotator) heuristicFor(o *ast.Object) *ast.Object {
	if an.heuristicBase != nil {
		if b, ok := an.heuristicBase[o]; ok {
			return b
		}
	}
	return o
}

func isSimpleVar(e ast.Expr) (*ast.Ident, bool) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Obj == nil {
		return nil, false
	}
	switch id.Obj.Kind {
	case ast.ObjVar, ast.ObjParam, ast.ObjTemp:
		return id, true
	}
	return nil, false
}

// ptrIncDec rewrites ++p, p++, --p, p-- on pointer-typed lvalues.
func (an *annotator) ptrIncDec(s *slot, e *ast.Unary) {
	if an.opts.CallSiteOnly && !an.stmtHasCall {
		// Optimization (4): no collection point inside this statement.
		an.forcedSpan = nil
		an.res.Suppressed++
		return
	}
	delta := int64(1)
	op := token.Plus
	if e.Op == token.Dec {
		op = token.Minus
	}
	ptrT := types.Decay(e.X.Type())
	byteDelta := int64(elemSizeOf(e.X))
	if e.Op == token.Dec {
		byteDelta = -byteDelta
	}
	id, simple := isSimpleVar(e.X)

	if an.opts.Mode.Checked() && simple {
		// The paper's debugging expansion:
		//   ++p  =>  (char (*)) GC_pre_incr(&(p), sizeof(char)*(+(1)))
		an.replaceStructural(s, func() ast.Expr {
			fn := "GC_pre_incr"
			if e.Postfix {
				fn = "GC_post_incr"
			}
			return an.castTo(ptrT, an.runtimeCall(fn, an.addrOf(objIdent(id.Obj)), intLit(byteDelta)))
		})
		return
	}

	if simple && !an.opts.NoIncDecExpansion {
		// Optimization (2): a simple variable that might be register
		// allocated must not be forced to memory, so expand without taking
		// its address:
		//   ++p  =>  (p = KEEP_LIVE(p + 1, p))
		//   p++  =>  (tmp = p, p = KEEP_LIVE(tmp + 1, tmp), tmp)
		an.replaceStructural(s, func() ast.Expr {
			p := id.Obj
			if !e.Postfix {
				arith := an.ptrArith(objIdent(p), op, intLit(delta), ptrT)
				kl := an.newKeepLive(arith, an.heuristicFor(p))
				asn := &ast.Assign{Op: token.Assign, L: objIdent(p), R: kl}
				asn.SetType(ptrT)
				return asn
			}
			tmp := parser.NewTemp(an.fn, ptrT)
			save := &ast.Assign{Op: token.Assign, L: objIdent(tmp), R: objIdent(p)}
			save.SetType(ptrT)
			arith := an.ptrArith(objIdent(tmp), op, intLit(delta), ptrT)
			// Without the optimization (3) heuristic the saved old value is
			// the base; with it, the slowly varying equivalent replaces it.
			base := an.heuristicFor(p)
			if base == p {
				base = tmp
			}
			kl := an.newKeepLive(arith, base)
			upd := &ast.Assign{Op: token.Assign, L: objIdent(p), R: kl}
			upd.SetType(ptrT)
			return commaChain(ptrT, save, upd, objIdent(tmp))
		})
		return
	}

	// The fully general expansion for arbitrary lvalues (and the
	// NoIncDecExpansion ablation):
	//   e++ => (tmp1 = &(e), tmp2 = *tmp1, *tmp1 = KEEP_LIVE(tmp2+1, tmp2), tmp2)
	//   ++e => (tmp1 = &(e), tmp2 = *tmp1, tmp2 = KEEP_LIVE(tmp2+1, tmp2),
	//           *tmp1 = tmp2, tmp2)
	an.replaceStructural(s, func() ast.Expr {
		lv := an.annotatedLvalue(e.X)
		tmp1 := parser.NewTemp(an.fn, types.PointerTo(ptrT))
		tmp2 := parser.NewTemp(an.fn, ptrT)
		a1 := &ast.Assign{Op: token.Assign, L: objIdent(tmp1), R: an.addrOf(lv)}
		a1.SetType(tmp1.Type)
		a2 := &ast.Assign{Op: token.Assign, L: objIdent(tmp2), R: deref(objIdent(tmp1), ptrT)}
		a2.SetType(ptrT)
		arith := an.ptrArith(objIdent(tmp2), op, intLit(delta), ptrT)
		kl := an.newKeepLive(arith, tmp2)
		if e.Postfix {
			st := &ast.Assign{Op: token.Assign, L: deref(objIdent(tmp1), ptrT), R: kl}
			st.SetType(ptrT)
			return commaChain(ptrT, a1, a2, st, objIdent(tmp2))
		}
		upd := &ast.Assign{Op: token.Assign, L: objIdent(tmp2), R: kl}
		upd.SetType(ptrT)
		st := &ast.Assign{Op: token.Assign, L: deref(objIdent(tmp1), ptrT), R: objIdent(tmp2)}
		st.SetType(ptrT)
		return commaChain(ptrT, a1, a2, upd, st, objIdent(tmp2))
	})
}

// compoundPtrAssign rewrites p += e and p -= e for pointer-typed targets.
func (an *annotator) compoundPtrAssign(s *slot, e *ast.Assign) {
	if an.opts.CallSiteOnly && !an.stmtHasCall {
		an.res.Suppressed++
		an.exprSlot(mkslot(func() ast.Expr { return e.R }, func(n ast.Expr) { e.R = n }), false)
		return
	}
	op := token.Plus
	if e.Op == token.SubAssign {
		op = token.Minus
	}
	ptrT := types.Decay(e.L.Type())
	id, simple := isSimpleVar(e.L)
	an.replaceStructural(s, func() ast.Expr {
		// Annotate the amount expression first (integers: wrap=false).
		rSlot := mkslot(func() ast.Expr { return e.R }, func(n ast.Expr) { e.R = n })
		an.exprSlot(rSlot, false)
		amount := parenIfNeeded(e.R)
		if simple {
			// p += e  =>  (p = KEEP_LIVE(p + (e), p))
			arith := an.ptrArith(objIdent(id.Obj), op, amount, ptrT)
			kl := an.newKeepLive(arith, id.Obj)
			asn := &ast.Assign{Op: token.Assign, L: objIdent(id.Obj), R: kl}
			asn.SetType(ptrT)
			return asn
		}
		lv := an.annotatedLvalue(e.L)
		tmp1 := parser.NewTemp(an.fn, types.PointerTo(ptrT))
		tmp2 := parser.NewTemp(an.fn, ptrT)
		a1 := &ast.Assign{Op: token.Assign, L: objIdent(tmp1), R: an.addrOf(lv)}
		a1.SetType(tmp1.Type)
		a2 := &ast.Assign{Op: token.Assign, L: objIdent(tmp2), R: deref(objIdent(tmp1), ptrT)}
		a2.SetType(ptrT)
		arith := an.ptrArith(objIdent(tmp2), op, amount, ptrT)
		kl := an.newKeepLive(arith, tmp2)
		st := &ast.Assign{Op: token.Assign, L: deref(objIdent(tmp1), ptrT), R: kl}
		st.SetType(ptrT)
		return commaChain(ptrT, a1, a2, st)
	})
}

// annotatedLvalue runs the lvalue transformation on a detached expression
// and returns the result.
func (an *annotator) annotatedLvalue(e ast.Expr) ast.Expr {
	box := e
	an.lvalueSlot(mkslot(func() ast.Expr { return box }, func(n ast.Expr) { box = n }))
	return box
}

// ptrArith builds pointer ± integer with the pointer's type.
func (an *annotator) ptrArith(p ast.Expr, op token.Kind, amt ast.Expr, ptrT types.Type) ast.Expr {
	b := &ast.Binary{Op: op, X: p, Y: amt}
	b.SetType(ptrT)
	return b
}

func (an *annotator) addrOf(e ast.Expr) ast.Expr {
	// Taking the address forces the object out of registers — the cost the
	// paper's optimization (2) exists to avoid.
	if id, ok := ast.Unparen(e).(*ast.Ident); ok && id.Obj != nil {
		id.Obj.AddrTaken = true
	}
	u := &ast.Unary{Op: token.Amp, X: e}
	t := e.Type()
	if t == nil {
		t = types.IntType
	}
	u.SetType(types.PointerTo(t))
	return u
}

func deref(e ast.Expr, elemT types.Type) ast.Expr {
	u := &ast.Unary{Op: token.Star, X: e}
	u.SetType(elemT)
	return u
}

func parenIfNeeded(e ast.Expr) ast.Expr {
	switch e.(type) {
	case *ast.Ident, *ast.IntLit, *ast.CharLit, *ast.Paren, *ast.Call:
		return e
	}
	p := &ast.Paren{X: e, Lparen: e.Pos(), RparenEnd: e.End()}
	p.SetType(e.Type())
	return p
}

// commaChain folds exprs into left-nested comma expressions typed as t.
func commaChain(t types.Type, exprs ...ast.Expr) ast.Expr {
	out := exprs[0]
	for _, e := range exprs[1:] {
		c := &ast.Comma{X: out, Y: e}
		c.SetType(e.Type())
		out = c
	}
	if !types.Identical(types.Decay(out.Type()), types.Decay(t)) {
		out.(*ast.Comma).SetType(t)
	}
	return out
}

// runtimeCall builds a call to a named runtime function (GC_pre_incr etc.),
// synthesizing the extern declaration object on demand.
func (an *annotator) runtimeCall(name string, args ...ast.Expr) ast.Expr {
	c := &ast.Call{Fun: objIdent(an.runtimeObj(name)), Args: args}
	c.SetType(types.PointerTo(types.VoidType))
	return c
}

// runtimeObj returns (synthesizing on first use) the extern object for a
// named runtime function.
func (an *annotator) runtimeObj(name string) *ast.Object {
	obj := an.runtimeFns[name]
	if obj == nil {
		if an.runtimeFns == nil {
			an.runtimeFns = map[string]*ast.Object{}
		}
		obj = &ast.Object{
			Name:    name,
			Kind:    ast.ObjFunc,
			Storage: ast.Extern,
			Global:  true,
			Type:    &types.Func{Ret: types.PointerTo(types.VoidType), OldStyle: true},
		}
		an.runtimeFns[name] = obj
	}
	return obj
}

func (an *annotator) castTo(t types.Type, e ast.Expr) ast.Expr {
	c := &ast.Cast{To: t, TypeText: typeCText(t), X: e}
	c.SetType(t)
	return c
}
