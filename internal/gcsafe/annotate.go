package gcsafe

import (
	"gcsafety/internal/cc/ast"
	"gcsafety/internal/cc/parser"
	"gcsafety/internal/cc/token"
	"gcsafety/internal/cc/types"
)

// annotateFunc rewrites one function definition.
func (an *annotator) annotateFunc(fd *ast.FuncDecl) {
	an.fn = fd
	an.heuristicBase = nil
	if an.opts.BaseHeuristic {
		an.computeHeuristicBases(fd)
	}
	an.block(fd.Body)
	if len(fd.Temps) > 0 {
		an.emitTempDecls(fd)
	}
	an.res.Temps += len(fd.Temps)
	an.fn = nil
}

// globalDecl scans a file-scope initializer for source-checking warnings.
// Static initializers are constant expressions evaluated before the
// collector can run, so no KEEP_LIVE annotation is needed there.
func (an *annotator) globalDecl(d *ast.VarDecl) {
	if d.Init != nil {
		an.warnExpr(d.Init)
	}
	for _, e := range d.InitList {
		an.warnExpr(e)
	}
}

func (an *annotator) block(b *ast.Block) {
	for _, s := range b.Stmts {
		an.stmt(s)
	}
}

// stmtCallCheck updates stmtHasCall for the expressions about to be
// annotated (only consulted under the CallSiteOnly option).
func (an *annotator) stmtCallCheck(exprs ...ast.Expr) {
	if !an.opts.CallSiteOnly {
		an.stmtHasCall = true
		return
	}
	an.stmtHasCall = false
	for _, e := range exprs {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(x ast.Expr) bool {
			if _, ok := x.(*ast.Call); ok {
				an.stmtHasCall = true
			}
			return true
		})
	}
}

func (an *annotator) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		an.stmtCallCheck(s.X)
		an.exprStmt(s)
	case *ast.DeclStmt:
		for _, d := range s.Decls {
			an.stmtCallCheck(d.Init)
			if d.Init != nil {
				an.exprSlot(mkslot(
					func() ast.Expr { return d.Init },
					func(n ast.Expr) { d.Init = n },
				), types.IsPointer(types.Decay(d.Obj.Type)))
			}
			for i := range d.InitList {
				i := i
				an.exprSlot(mkslot(
					func() ast.Expr { return d.InitList[i] },
					func(n ast.Expr) { d.InitList[i] = n },
				), false)
			}
		}
	case *ast.Block:
		an.block(s)
	case *ast.If:
		an.stmtCallCheck(s.Cond)
		an.exprSlot(mkslot(func() ast.Expr { return s.Cond }, func(n ast.Expr) { s.Cond = n }), false)
		an.stmt(s.Then)
		if s.Else != nil {
			an.stmt(s.Else)
		}
	case *ast.While:
		an.stmtCallCheck(s.Cond)
		an.exprSlot(mkslot(func() ast.Expr { return s.Cond }, func(n ast.Expr) { s.Cond = n }), false)
		an.stmt(s.Body)
	case *ast.DoWhile:
		an.stmt(s.Body)
		an.stmtCallCheck(s.Cond)
		an.exprSlot(mkslot(func() ast.Expr { return s.Cond }, func(n ast.Expr) { s.Cond = n }), false)
	case *ast.For:
		if s.Init != nil {
			an.stmt(s.Init)
		}
		if s.Cond != nil {
			an.stmtCallCheck(s.Cond)
			an.exprSlot(mkslot(func() ast.Expr { return s.Cond }, func(n ast.Expr) { s.Cond = n }), false)
		}
		if s.Post != nil {
			an.stmtCallCheck(s.Post)
			an.exprSlot(mkslot(func() ast.Expr { return s.Post }, func(n ast.Expr) { s.Post = n }), false)
		}
		an.stmt(s.Body)
	case *ast.Return:
		if s.X != nil {
			// "...or as a function argument or result".
			an.stmtCallCheck(s.X)
			wrap := types.IsPointer(types.Decay(an.fn.FType.Ret))
			if wrap {
				// A returned pointer crosses the call boundary back into
				// the caller, so optimization (4) never drops it.
				an.stmtHasCall = true
			}
			an.exprSlot(mkslot(func() ast.Expr { return s.X }, func(n ast.Expr) { s.X = n }), wrap)
		}
	case *ast.Switch:
		an.stmtCallCheck(s.X)
		an.exprSlot(mkslot(func() ast.Expr { return s.X }, func(n ast.Expr) { s.X = n }), false)
		for _, c := range s.Cases {
			for _, st := range c.Stmts {
				an.stmt(st)
			}
		}
	case *ast.Break, *ast.Continue, *ast.Empty:
	}
}

// exprStmt handles a statement-level expression. A statement-level postfix
// increment's value is unused, so it is rewritten in the cheaper prefix
// shape (part of the paper's optimization (2) specialization).
func (an *annotator) exprStmt(s *ast.ExprStmt) {
	if u, ok := s.X.(*ast.Unary); ok && (u.Op == token.Inc || u.Op == token.Dec) && u.Postfix && isPtr(u.X) {
		// Capture the postfix span before canonicalizing: a prefix node
		// cannot represent the byte range of `p++`.
		an.forcedSpan = &[2]int{u.Pos().Off, u.End()}
		u.Postfix = false
	}
	an.exprSlot(mkslot(func() ast.Expr { return s.X }, func(n ast.Expr) { s.X = n }), false)
}

// exprSlot transforms the expression held in s. When wrap is set and the
// value is a pointer, the KEEP_LIVE rule applies to the value produced.
func (an *annotator) exprSlot(s *slot, wrap bool) {
	switch e := s.get().(type) {
	case *ast.Ident:
		an.maybeWrapTransparent(s, wrap)
	case *ast.IntLit, *ast.CharLit, *ast.SizeofType:
		// Constants can never reference the heap; sizeof(type) evaluates
		// nothing.
	case *ast.StrLit:
		// Static storage: never collected.
	case *ast.SizeofExpr:
		// The operand of sizeof is not evaluated; do not annotate inside.
	case *ast.Paren:
		an.exprSlot(mkslot(func() ast.Expr { return e.X }, func(n ast.Expr) { e.X = n }), wrap)
	case *ast.Assign:
		an.assign(s, e, wrap)
	case *ast.Unary:
		an.unary(s, e, wrap)
	case *ast.Binary:
		an.exprSlot(mkslot(func() ast.Expr { return e.X }, func(n ast.Expr) { e.X = n }), false)
		an.exprSlot(mkslot(func() ast.Expr { return e.Y }, func(n ast.Expr) { e.Y = n }), false)
		if wrap && isPtr(e) {
			// Genuine pointer arithmetic: the heart of the algorithm.
			an.wrapSlot(s)
		}
	case *ast.Cond:
		an.exprSlot(mkslot(func() ast.Expr { return e.C }, func(n ast.Expr) { e.C = n }), false)
		// A conditional is a generating expression; each arm's value feeds
		// the result, so the wrap applies per arm (equivalent to the
		// paper's temporary-introduction normal form, with the temporary
		// being the value register itself).
		an.exprSlot(mkslot(func() ast.Expr { return e.T }, func(n ast.Expr) { e.T = n }), wrap)
		an.exprSlot(mkslot(func() ast.Expr { return e.F }, func(n ast.Expr) { e.F = n }), wrap)
	case *ast.Call:
		an.call(s, e, wrap)
	case *ast.Comma:
		an.exprSlot(mkslot(func() ast.Expr { return e.X }, func(n ast.Expr) { e.X = n }), false)
		an.exprSlot(mkslot(func() ast.Expr { return e.Y }, func(n ast.Expr) { e.Y = n }), wrap)
	case *ast.Cast:
		an.castWarn(e)
		an.exprSlot(mkslot(func() ast.Expr { return e.X }, func(n ast.Expr) { e.X = n }), false)
		if wrap && isPtr(e) && !an.transparent(e) {
			an.wrapSlot(s)
		} else {
			an.maybeWrapTransparent(s, wrap)
		}
	case *ast.Index, *ast.Member:
		an.access(s, wrap)
	case *ast.KeepLive:
		// Already annotated (synthesized subtree).
	}
}

// transparent reports whether the expression's result "is statically known
// to be simply a copy of a value logically stored elsewhere" (paper,
// optimization (1)): variables, loads, call results, stored assignment
// values and constants. Such values need no KEEP_LIVE because KEEP_LIVE
// condition (2) already guarantees their visibility.
func (an *annotator) transparent(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident, *ast.IntLit, *ast.CharLit, *ast.StrLit, *ast.Call, *ast.KeepLive:
		return true
	case *ast.Paren:
		return an.transparent(e.X)
	case *ast.Comma:
		return an.transparent(e.Y)
	case *ast.Cast:
		return an.transparent(e.X)
	case *ast.Assign:
		// The value of a completed simple assignment is the stored value.
		return e.Op == token.Assign
	case *ast.Unary:
		// A dereference result is a loaded copy; the arithmetic feeding it
		// has already been wrapped.
		return e.Op == token.Star
	case *ast.Index, *ast.Member:
		return true // loads; their address computation is wrapped separately
	case *ast.Cond:
		return an.transparent(e.T) && an.transparent(e.F)
	}
	return false
}

// maybeWrapTransparent handles a wrap request on a transparent (copy-like)
// expression: with the paper's optimization (1) enabled it is suppressed;
// otherwise the KEEP_LIVE goes in anyway.
func (an *annotator) maybeWrapTransparent(s *slot, wrap bool) {
	if !wrap || !isPtr(s.get()) {
		return
	}
	b := an.baseOf(s)
	if b.nilBase() {
		return // cannot reference the heap at all
	}
	if an.opts.NoCopySuppression {
		an.wrapSlot(s)
		return
	}
	an.res.Suppressed++
}

// assign handles simple and compound assignments.
func (an *annotator) assign(s *slot, e *ast.Assign, wrap bool) {
	if e.Op == token.Assign {
		an.assignWarn(e)
		an.lvalueSlot(mkslot(func() ast.Expr { return e.L }, func(n ast.Expr) { e.L = n }))
		// "replace every pointer-valued expression e that occurs as the
		// right side of an assignment ... by KEEP_LIVE(e, BASE(e))"
		an.exprSlot(mkslot(func() ast.Expr { return e.R }, func(n ast.Expr) { e.R = n }), isPtr(e.L))
		an.maybeWrapTransparent(s, wrap)
		return
	}
	if isPtr(e.L) {
		// Pointer += / -= : treated as an assignment with arithmetic.
		an.compoundPtrAssign(s, e)
		return
	}
	an.lvalueSlot(mkslot(func() ast.Expr { return e.L }, func(n ast.Expr) { e.L = n }))
	an.exprSlot(mkslot(func() ast.Expr { return e.R }, func(n ast.Expr) { e.R = n }), false)
}

func (an *annotator) unary(s *slot, e *ast.Unary, wrap bool) {
	switch e.Op {
	case token.Inc, token.Dec:
		if isPtr(e.X) {
			an.ptrIncDec(s, e)
			return
		}
		an.lvalueSlot(mkslot(func() ast.Expr { return e.X }, func(n ast.Expr) { e.X = n }))
	case token.Star:
		// "...or as the argument of a dereferencing operation".
		an.exprSlot(mkslot(func() ast.Expr { return e.X }, func(n ast.Expr) { e.X = n }), true)
		an.maybeWrapTransparent(s, wrap)
	case token.Amp:
		// The inner access must not take its own address wrap: the whole
		// &e expression is the address arithmetic being protected.
		switch x := ast.Unparen(e.X).(type) {
		case *ast.Index, *ast.Member:
			an.accessInternals(x)
		default:
			an.lvalueSlot(mkslot(func() ast.Expr { return e.X }, func(n ast.Expr) { e.X = n }))
		}
		if wrap && isPtr(e) && !an.baseAddr(e.X).nilBase() {
			// &e with a heap base is address arithmetic.
			an.wrapSlot(s)
		}
	default:
		an.exprSlot(mkslot(func() ast.Expr { return e.X }, func(n ast.Expr) { e.X = n }), false)
	}
}

// call annotates a function call: every pointer-typed argument is a
// KEEP_LIVE site ("or as a function argument").
func (an *annotator) call(s *slot, e *ast.Call, wrap bool) {
	if an.opts.Mode == ModeTemporal {
		an.rewriteFree(e)
	}
	an.exprSlot(mkslot(func() ast.Expr { return e.Fun }, func(n ast.Expr) { e.Fun = n }), false)
	an.memcpyWarn(e)
	for i := range e.Args {
		i := i
		an.exprSlot(mkslot(
			func() ast.Expr { return e.Args[i] },
			func(n ast.Expr) { e.Args[i] = n },
		), isPtr(e.Args[i]))
	}
	// The call result is treated as the value of a KEEP_LIVE expression
	// (the paper's assumption for allocation functions, generalized), so
	// the whole call is transparent.
	an.maybeWrapTransparent(s, wrap)
}

// access handles subscript and member expressions used as values: the
// address computation is pointer arithmetic, so the access becomes
// *KEEP_LIVE(&(e), BASEADDR(e)) when a heap base exists. ("We essentially
// treat pointer offset calculations as pointer arithmetic.")
func (an *annotator) access(s *slot, wrap bool) {
	an.accessInternals(s.get())
	e := s.get()
	b := an.baseAddr(e)
	if b.nilBase() {
		// Named local/static storage: no heap object can be involved.
		return
	}
	if _, ok := e.Type().(*types.Array); ok {
		// No load occurs; the value is the (decayed) address itself. Wrap
		// the address arithmetic only if requested as a value.
		if wrap {
			an.wrapSlot(s)
		}
		return
	}
	an.wrapAccessAddr(s)
	// The loaded value itself is transparent; honour a value wrap only
	// when suppression is off.
	an.maybeWrapTransparent(s, wrap)
}

// wrapAccessAddr rewrites the access in s to *KEEP_LIVE(&(e), base),
// preserving the original source span on the synthesized nodes so nested
// annotations keep editing by position.
func (an *annotator) wrapAccessAddr(s *slot) {
	if an.opts.CallSiteOnly && !an.stmtHasCall {
		an.res.Suppressed++
		return
	}
	e := s.get()
	b := an.baseAddr(e)
	if b.nilBase() {
		return
	}
	if an.elide(b, e.Pos().Off, e.End()) {
		return
	}
	origPos, origEnd := e.Pos(), e.End()
	baseObj := an.materializeBase(b)
	amp := &ast.Unary{Op: token.Amp, X: e, OpPos: origPos}
	amp.SetType(types.PointerTo(e.Type()))
	kl := an.newKeepLive(amp, baseObj)
	star := &ast.Unary{Op: token.Star, X: kl, OpPos: origPos}
	star.SetType(e.Type())
	s.set(star)
	an.emitAddrWrap(origPos.Off, origEnd, e.Type(), baseObj)
	an.res.Inserted++
}

// accessInternals annotates the constituents of an access chain without
// inserting the chain's own address wrap.
func (an *annotator) accessInternals(e ast.Expr) {
	switch e := e.(type) {
	case *ast.Index:
		// The pointer operand's own arithmetic (if any) is wrapped through
		// the normal rules; BASEADDR covers keeping the base live across
		// the subscript arithmetic itself.
		an.exprSlot(mkslot(func() ast.Expr { return e.X }, func(n ast.Expr) { e.X = n }), false)
		an.exprSlot(mkslot(func() ast.Expr { return e.I }, func(n ast.Expr) { e.I = n }), false)
	case *ast.Member:
		if e.Arrow {
			an.exprSlot(mkslot(func() ast.Expr { return e.X }, func(n ast.Expr) { e.X = n }), false)
			return
		}
		// Dot chains recurse structurally: only the outermost access gets
		// the address wrap.
		switch x := e.X.(type) {
		case *ast.Index:
			an.exprSlot(mkslot(func() ast.Expr { return x.X }, func(n ast.Expr) { x.X = n }), false)
			an.exprSlot(mkslot(func() ast.Expr { return x.I }, func(n ast.Expr) { x.I = n }), false)
		case *ast.Member:
			an.accessInternals(x)
		case *ast.Paren:
			an.accessInternals(x.X)
		case *ast.Unary:
			if x.Op == token.Star {
				an.exprSlot(mkslot(func() ast.Expr { return x.X }, func(n ast.Expr) { x.X = n }), true)
			}
		case *ast.Ident:
			// plain variable: nothing to do
		default:
			an.exprSlot(mkslot(func() ast.Expr { return e.X }, func(n ast.Expr) { e.X = n }), false)
		}
	}
}

// lvalueSlot annotates an expression used as an assignment target (no value
// load happens, but the address computation still needs protection).
func (an *annotator) lvalueSlot(s *slot) {
	switch e := s.get().(type) {
	case *ast.Ident:
	case *ast.Paren:
		an.lvalueSlot(mkslot(func() ast.Expr { return e.X }, func(n ast.Expr) { e.X = n }))
	case *ast.Unary:
		if e.Op == token.Star {
			an.exprSlot(mkslot(func() ast.Expr { return e.X }, func(n ast.Expr) { e.X = n }), true)
		}
	case *ast.Index, *ast.Member:
		an.accessInternals(e)
		an.wrapAccessAddr(s)
	}
}

// wrapSlot applies KEEP_LIVE(e, BASE(e)) to the expression in s, emitting
// the matching text edits.
func (an *annotator) wrapSlot(s *slot) {
	if an.opts.CallSiteOnly && !an.stmtHasCall {
		// Optimization (4): no collection point inside this statement.
		an.res.Suppressed++
		return
	}
	b := an.baseOf(s)
	if b.nilBase() {
		// Definitely not a heap pointer: annotation would be dead weight.
		return
	}
	if e := s.get(); an.elide(b, e.Pos().Off, e.End()) {
		return
	}
	baseObj := an.materializeBase(b)
	e := s.get()
	origPos, origEnd := e.Pos(), e.End()
	kl := an.newKeepLive(e, baseObj)
	s.set(kl)
	an.emitValueWrap(origPos.Off, origEnd, types.Decay(e.Type()), baseObj)
	an.res.Inserted++
}

// materializeBase resolves a baseInfo to a concrete base variable,
// introducing a temporary at the generating site if necessary, and applies
// the paper's optimization (3) base-pointer heuristic.
func (an *annotator) materializeBase(b baseInfo) *ast.Object {
	if b.gen != nil {
		g := b.gen.get()
		tmp := parser.NewTemp(an.fn, types.Decay(g.Type()))
		asn := &ast.Assign{Op: token.Assign, L: objIdent(tmp), R: g}
		asn.SetType(tmp.Type)
		par := &ast.Paren{X: asn, Lparen: g.Pos(), RparenEnd: g.End()}
		par.SetType(tmp.Type)
		b.gen.set(par)
		an.emitOpen(g.Pos().Off, "("+tmp.Name+" = ")
		an.emitClose(g.End(), ")")
		return tmp
	}
	if an.heuristicBase != nil {
		if better, ok := an.heuristicBase[b.obj]; ok {
			return better
		}
	}
	return b.obj
}

// newKeepLive builds an annotation node around x.
func (an *annotator) newKeepLive(x ast.Expr, base *ast.Object) *ast.KeepLive {
	kl := &ast.KeepLive{X: x, Checked: an.opts.Mode.Checked()}
	if base != nil {
		kl.Base = objIdent(base)
	}
	kl.SetType(types.Decay(x.Type()))
	return kl
}

func objIdent(o *ast.Object) *ast.Ident {
	id := &ast.Ident{Name: o.Name, Obj: o}
	id.SetType(o.Type)
	return id
}

func intLit(v int64) *ast.IntLit {
	l := &ast.IntLit{Val: v}
	l.SetType(types.IntType)
	return l
}
