package gcsafe

import (
	"gcsafety/internal/cc/ast"
	"gcsafety/internal/cc/types"
)

// Source-checking diagnostics (paper, "Source Checking" assumption 1 and
// 2): warn when nonpointer values are directly converted to pointers, and
// when memcpy/memmove argument types disagree about whether the copied
// memory contains pointers (the practical way a strictly conforming program
// hides pointers from the collector).

func (an *annotator) castWarn(e *ast.Cast) {
	if !types.IsPointer(e.To) {
		return
	}
	xt := e.X.Type()
	if xt == nil {
		return
	}
	if an.opts.StrictCastWarnings {
		an.structCastWarn(e, xt)
	}
	if !types.IsInteger(types.Decay(xt)) {
		return
	}
	if isNullLike(e.X) {
		// "the common practice of converting very small integers to
		// pointers that are never dereferenced" is benign.
		return
	}
	an.warnf(e.Pos(), "conversion of non-pointer value to pointer type %s may disguise a heap pointer from the collector", typeCText(e.To))
}

// assignWarn flags implicit integer-to-pointer assignment.
func (an *annotator) assignWarn(e *ast.Assign) {
	if !isPtr(e.L) {
		return
	}
	rt := e.R.Type()
	if rt == nil || !types.IsInteger(types.Decay(rt)) {
		return
	}
	if isNullLike(e.R) {
		return
	}
	an.warnf(e.Pos(), "implicit conversion of integer to pointer in assignment")
}

// memcpyWarn flags memcpy/memmove calls "with arguments whose types don't
// match" in pointer content, which can write heap pointers to collector-
// invisible or misaligned locations.
func (an *annotator) memcpyWarn(c *ast.Call) {
	id, ok := ast.Unparen(c.Fun).(*ast.Ident)
	if !ok {
		return
	}
	switch id.Name {
	case "memcpy", "memmove":
	default:
		return
	}
	if len(c.Args) < 2 {
		return
	}
	d := pointeeHasPointers(c.Args[0])
	s := pointeeHasPointers(c.Args[1])
	if d != s {
		an.warnf(c.Pos(), "%s between pointer-bearing and pointer-free memory may hide pointers from the collector", id.Name)
	}
}

// pointeeHasPointers looks through casts to the original argument type and
// reports whether the memory it addresses can contain pointers.
func pointeeHasPointers(e ast.Expr) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Cast:
			e = x.X
			continue
		}
		break
	}
	t := e.Type()
	if t == nil {
		return false
	}
	switch t := types.Decay(t).(type) {
	case *types.Pointer:
		return types.ContainsPointer(t.Elem)
	}
	return false
}

// warnExpr runs the warning checks over an expression tree without
// transforming it (used for file-scope initializers).
func (an *annotator) warnExpr(e ast.Expr) {
	ast.Inspect(e, func(x ast.Expr) bool {
		switch x := x.(type) {
		case *ast.Cast:
			an.castWarn(x)
		case *ast.Assign:
			an.assignWarn(x)
		case *ast.Call:
			an.memcpyWarn(x)
		}
		return true
	})
}

func isNullLike(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.IntLit:
		// Very small integers converted to pointers are tolerated; they
		// are never valid heap addresses.
		return e.Val >= 0 && e.Val < 256
	case *ast.Cast:
		return isNullLike(e.X)
	}
	return false
}

// structCastWarn implements the paper's recommended extra check: a cast
// between different structure pointer types can "accomplish the same thing"
// as an integer-to-pointer conversion when the two layouts disagree about
// which words hold pointers — heap references can be disguised as integers
// or integers exposed as references.
func (an *annotator) structCastWarn(e *ast.Cast, fromT types.Type) {
	toP, ok := e.To.(*types.Pointer)
	if !ok {
		return
	}
	fromP, ok := types.Decay(fromT).(*types.Pointer)
	if !ok {
		return
	}
	toS, ok1 := toP.Elem.(*types.Struct)
	fromS, ok2 := fromP.Elem.(*types.Struct)
	if !ok1 || !ok2 || toS == fromS {
		return
	}
	if !pointerLayoutCompatible(fromS, toS) {
		an.warnf(e.Pos(), "cast between %s * and %s * changes which words hold pointers and may disguise heap references",
			fromS, toS)
	}
}

// pointerLayoutCompatible reports whether every pointer-holding word offset
// in the overlapping prefix of the two structs agrees.
func pointerLayoutCompatible(a, b *types.Struct) bool {
	pa := pointerOffsets(a)
	pb := pointerOffsets(b)
	limit := a.Size()
	if b.Size() < limit {
		limit = b.Size()
	}
	for off := 0; off < limit; off += 4 {
		if pa[off] != pb[off] {
			return false
		}
	}
	return true
}

func pointerOffsets(s *types.Struct) map[int]bool {
	out := map[int]bool{}
	var walk func(t types.Type, base int)
	walk = func(t types.Type, base int) {
		switch t := t.(type) {
		case *types.Pointer:
			out[base] = true
		case *types.Array:
			es := t.Elem.Size()
			for i := 0; i < t.Len; i++ {
				walk(t.Elem, base+i*es)
			}
		case *types.Struct:
			for _, f := range t.Fields {
				walk(f.Type, base+f.Off)
			}
		}
	}
	walk(s, 0)
	return out
}
