package gcsafe

import (
	"gcsafety/internal/cc/ast"
	"gcsafety/internal/cc/token"
	"gcsafety/internal/cc/types"
)

// This file implements the paper's inductive BASE / BASEADDR definition:
// BASE(e) is the pointer variable from which the value of e is computed, or
// NIL if there is no such pointer variable, chosen so that e and BASE(e)
// are guaranteed to point to the same object whenever e points to a heap
// object. BASEADDR(e) is the possible base pointer for &e.
//
// Two distinct "no base variable" outcomes matter to the annotator:
//
//   - definitely-not-heap (address of a named variable, a string literal, a
//     null constant): no annotation is needed at all, because the value can
//     never reference a collected object;
//   - generating expression (function call, pointer dereference, loaded
//     struct member, conditional): the value may well be a heap pointer but
//     no existing variable holds it. The paper's presentation assumes such
//     results are assigned to temporaries first ("we assume that
//     temporaries have already been introduced"); baseInfo carries the
//     generating site — as a slot in its parent node — so the annotator can
//     introduce exactly that temporary by splicing in `(tmp = g)`.
type baseInfo struct {
	obj *ast.Object // base pointer variable, if any
	gen *slot       // generating subexpression needing a temporary, if any
}

// nilBase reports the definitely-not-heap outcome.
func (b baseInfo) nilBase() bool { return b.obj == nil && b.gen == nil }

// slot is a settable reference to an expression held by its parent node.
type slot struct {
	get func() ast.Expr
	set func(ast.Expr)
}

func mkslot(get func() ast.Expr, set func(ast.Expr)) *slot {
	return &slot{get: get, set: set}
}

// baseOf computes BASE of the expression held in s.
func (an *annotator) baseOf(s *slot) baseInfo {
	switch e := s.get().(type) {
	case *ast.Ident:
		// BASE(x) = x if x is a variable and possible heap pointer.
		if e.Obj.IsPointerVar() && !isArrayObj(e.Obj) {
			return baseInfo{obj: e.Obj}
		}
		// Array variables (and plain integers, function names, enum
		// constants) denote storage outside the collected heap.
		return baseInfo{}
	case *ast.IntLit, *ast.CharLit, *ast.SizeofExpr, *ast.SizeofType:
		// BASE(0) = NIL.
		return baseInfo{}
	case *ast.StrLit:
		// String literals live in static storage.
		return baseInfo{}
	case *ast.Paren:
		return an.baseOf(mkslot(func() ast.Expr { return e.X }, func(n ast.Expr) { e.X = n }))
	case *ast.Assign:
		if e.Op == token.Assign {
			// BASE(x = e) = x if x is a pointer variable, else BASE(e).
			if id, ok := ast.Unparen(e.L).(*ast.Ident); ok && id.Obj.IsPointerVar() && !isArrayObj(id.Obj) {
				return baseInfo{obj: id.Obj}
			}
			return an.baseOf(mkslot(func() ast.Expr { return e.R }, func(n ast.Expr) { e.R = n }))
		}
		// BASE(e1 += e2) = BASE(e1); likewise -=.
		return an.baseOf(mkslot(func() ast.Expr { return e.L }, func(n ast.Expr) { e.L = n }))
	case *ast.Unary:
		switch e.Op {
		case token.Inc, token.Dec:
			// BASE(e1++) = BASE(++e1) = BASE(e1).
			return an.baseOf(mkslot(func() ast.Expr { return e.X }, func(n ast.Expr) { e.X = n }))
		case token.Amp:
			// BASE(&e1) = BASEADDR(e1).
			return an.baseAddr(e.X)
		case token.Star:
			// A dereference is a generating expression.
			return baseInfo{gen: s}
		}
		return baseInfo{}
	case *ast.Binary:
		switch e.Op {
		case token.Plus:
			// BASE(e1 + e2) = BASE(e1) where e1 is the pointer-typed side.
			if isPtr(e.X) {
				return an.baseOf(mkslot(func() ast.Expr { return e.X }, func(n ast.Expr) { e.X = n }))
			}
			if isPtr(e.Y) {
				return an.baseOf(mkslot(func() ast.Expr { return e.Y }, func(n ast.Expr) { e.Y = n }))
			}
		case token.Minus:
			if isPtr(e.X) {
				return an.baseOf(mkslot(func() ast.Expr { return e.X }, func(n ast.Expr) { e.X = n }))
			}
		}
		return baseInfo{}
	case *ast.Comma:
		// BASE(e1, e2) = BASE(e2).
		return an.baseOf(mkslot(func() ast.Expr { return e.Y }, func(n ast.Expr) { e.Y = n }))
	case *ast.Cast:
		// A pointer-to-pointer cast preserves the object. Integer-to-
		// pointer casts have no base (and draw a warning elsewhere).
		if isPtr(e.X) {
			return an.baseOf(mkslot(func() ast.Expr { return e.X }, func(n ast.Expr) { e.X = n }))
		}
		return baseInfo{}
	case *ast.KeepLive:
		// An already-annotated value is explicitly visible and serves as
		// its own base evidence.
		if e.Base != nil {
			return baseInfo{obj: e.Base.Obj}
		}
		return baseInfo{gen: s}
	case *ast.Call:
		// Generating: the result must be named by a temporary before
		// arithmetic can hang off it.
		return baseInfo{gen: s}
	case *ast.Cond:
		return baseInfo{gen: s}
	case *ast.Index:
		// A loaded element is generating — unless the element has array
		// type, in which case no load happens and this is address
		// arithmetic on the underlying object (the paper's "e -> x will
		// not actually involve a dereference if the field x has array
		// type").
		if _, ok := e.Type().(*types.Array); ok {
			return an.baseAddr(e)
		}
		return baseInfo{gen: s}
	case *ast.Member:
		if _, ok := e.Type().(*types.Array); ok {
			return an.baseAddr(e)
		}
		return baseInfo{gen: s}
	}
	return baseInfo{}
}

// baseAddr computes BASEADDR(e) for an lvalue expression e. The generating
// outcomes inside an address computation resolve through BASE of the
// pointer operand, so no slot is needed at this level: any temporary will
// be introduced at the pointer operand the recursion reaches.
func (an *annotator) baseAddr(e ast.Expr) baseInfo {
	switch e := e.(type) {
	case *ast.Ident:
		// BASEADDR(x) = NIL if x is a variable: the address of a named
		// variable is stack or static storage, never heap.
		return baseInfo{}
	case *ast.Paren:
		return an.baseAddr(e.X)
	case *ast.Index:
		// BASEADDR(e1[e2]) = BASE(e1) if non-NIL, else BASE(e2).
		if isPtr(e.X) || isArrayExpr(e.X) {
			bx := an.baseOf(mkslot(func() ast.Expr { return e.X }, func(n ast.Expr) { e.X = n }))
			if !bx.nilBase() {
				return bx
			}
			if isPtr(e.I) {
				return an.baseOf(mkslot(func() ast.Expr { return e.I }, func(n ast.Expr) { e.I = n }))
			}
			return bx
		}
		if isPtr(e.I) {
			return an.baseOf(mkslot(func() ast.Expr { return e.I }, func(n ast.Expr) { e.I = n }))
		}
		return baseInfo{}
	case *ast.Member:
		if e.Arrow {
			// BASEADDR(e1 -> x) = BASE(e1).
			return an.baseOf(mkslot(func() ast.Expr { return e.X }, func(n ast.Expr) { e.X = n }))
		}
		// BASEADDR(e1.x) follows the enclosing lvalue.
		return an.baseAddr(e.X)
	case *ast.Unary:
		if e.Op == token.Star {
			// &*e simplifies to e, so BASEADDR(*e) = BASE(e).
			return an.baseOf(mkslot(func() ast.Expr { return e.X }, func(n ast.Expr) { e.X = n }))
		}
	}
	return baseInfo{}
}

// isArrayObj reports whether the object's declared type is an array (its
// storage is the variable itself, not a heap object).
func isArrayObj(o *ast.Object) bool {
	_, ok := o.Type.(*types.Array)
	return ok
}

// isArrayExpr reports whether e's un-decayed type is an array.
func isArrayExpr(e ast.Expr) bool {
	if e.Type() == nil {
		return false
	}
	_, ok := e.Type().(*types.Array)
	return ok
}
