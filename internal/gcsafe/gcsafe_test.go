package gcsafe

import (
	"strings"
	"testing"

	"gcsafety/internal/cc/parser"
)

func annotate(t *testing.T, src string, opts Options) *Result {
	t.Helper()
	res, err := AnnotateSource("test.c", src, opts)
	if err != nil {
		t.Fatalf("annotate: %v", err)
	}
	return res
}

// reparse checks that the rewritten text is still accepted by the front
// end (the annotator's output feeds a real compiler in the paper).
func reparse(t *testing.T, out string) {
	t.Helper()
	if _, err := parser.Parse("out.c", out); err != nil {
		t.Fatalf("annotated output does not re-parse: %v\n--- output ---\n%s", err, out)
	}
}

func TestDisguisedPointerExample(t *testing.T) {
	// The paper's opening example: a final reference p[i-1000] may be
	// compiled as p -= 1000; ... p[i] ..., hiding the object. The
	// annotation must wrap the subscript's address arithmetic with base p.
	src := `
char g(char *p, int i) {
    return p[i - 1000];
}
`
	res := annotate(t, src, Options{})
	if res.Inserted == 0 {
		t.Fatal("no annotation inserted for the canonical example")
	}
	if !strings.Contains(res.Output, "KEEP_LIVE(&(p[i - 1000]), p)") {
		t.Fatalf("missing KEEP_LIVE around subscript arithmetic:\n%s", res.Output)
	}
	reparse(t, res.Output)
}

func TestAnalysisExampleXPlusOne(t *testing.T) {
	// The paper's Analysis section example: char f(char *x) { return x[1]; }
	src := `char f(char *x) { return x[1]; }`
	res := annotate(t, src, Options{})
	if res.Inserted != 1 {
		t.Fatalf("Inserted = %d, want 1", res.Inserted)
	}
	if !strings.Contains(res.Output, "KEEP_LIVE(&(x[1]), x)") {
		t.Fatalf("output:\n%s", res.Output)
	}
	reparse(t, res.Output)
}

func TestAsmStyleEmission(t *testing.T) {
	src := `char f(char *x) { return x[1]; }`
	res := annotate(t, src, Options{Style: EmitAsm})
	if !strings.Contains(res.Output, `__asm__("" : "+r"(__kl) : "rm"((x)))`) {
		t.Fatalf("asm-style output missing constraint:\n%s", res.Output)
	}
}

func TestCopySuppression(t *testing.T) {
	// Optimization (1): "There is clearly no reason to replace the
	// assignment p = q by p = KEEP_LIVE(q, q)."
	src := `
void f(char *q) {
    char *p;
    p = q;
}
`
	res := annotate(t, src, Options{})
	if res.Inserted != 0 {
		t.Fatalf("plain copy was annotated: %d insertions\n%s", res.Inserted, res.Output)
	}
	if res.Suppressed != 1 {
		t.Fatalf("Suppressed = %d, want 1", res.Suppressed)
	}
	// Ablation: with suppression off, the copy gets wrapped.
	res2 := annotate(t, src, Options{NoCopySuppression: true})
	if res2.Inserted != 1 {
		t.Fatalf("NoCopySuppression Inserted = %d, want 1\n%s", res2.Inserted, res2.Output)
	}
	if !strings.Contains(res2.Output, "KEEP_LIVE(q, q)") {
		t.Fatalf("output:\n%s", res2.Output)
	}
	reparse(t, res2.Output)
}

func TestPointerArithmeticAssignment(t *testing.T) {
	src := `
char *f(char *p, int n) {
    char *q;
    q = p + n;
    return q;
}
`
	res := annotate(t, src, Options{})
	if !strings.Contains(res.Output, "KEEP_LIVE(p + n, p)") {
		t.Fatalf("output:\n%s", res.Output)
	}
	reparse(t, res.Output)
}

func TestReturnWrapped(t *testing.T) {
	src := `char *f(char *p) { return p + 4; }`
	res := annotate(t, src, Options{})
	if !strings.Contains(res.Output, "KEEP_LIVE(p + 4, p)") {
		t.Fatalf("output:\n%s", res.Output)
	}
	reparse(t, res.Output)
}

func TestCallArgumentWrapped(t *testing.T) {
	src := `
void g(char *s);
void f(char *p) { g(p + 2); }
`
	res := annotate(t, src, Options{})
	if !strings.Contains(res.Output, "KEEP_LIVE(p + 2, p)") {
		t.Fatalf("output:\n%s", res.Output)
	}
	reparse(t, res.Output)
}

func TestStringCopyLoop(t *testing.T) {
	// The canonical string copy loop from the paper's optimization (3).
	src := `
void copy(char *s, char *t) {
    char *p; char *q;
    p = s; q = t;
    while (*p++ = *q++);
}
`
	res := annotate(t, src, Options{})
	reparse(t, res.Output)
	// Postfix increments must be expanded with temporaries (optimization 2
	// keeps simple variables out of memory).
	if !strings.Contains(res.Output, "__tmp1") {
		t.Fatalf("expected temporaries in expansion:\n%s", res.Output)
	}
	if !strings.Contains(res.Output, "KEEP_LIVE(__tmp1 + 1, __tmp1)") {
		t.Fatalf("expected KEEP_LIVE on increment arithmetic:\n%s", res.Output)
	}

	// Optimization (3): with the heuristic, the base pointers become the
	// slowly varying s and t.
	res3 := annotate(t, src, Options{BaseHeuristic: true})
	reparse(t, res3.Output)
	if !strings.Contains(res3.Output, "KEEP_LIVE(__tmp1 + 1, s)") {
		t.Fatalf("heuristic did not substitute s as base:\n%s", res3.Output)
	}
	if !strings.Contains(res3.Output, "KEEP_LIVE(__tmp2 + 1, t)") {
		t.Fatalf("heuristic did not substitute t as base:\n%s", res3.Output)
	}
}

func TestCheckedModeEmission(t *testing.T) {
	src := `char f(char *p) { return p[1]; }`
	res := annotate(t, src, Options{Mode: ModeChecked})
	if !strings.Contains(res.Output, "GC_same_obj((void *)&(p[1]), (void *)(p))") {
		t.Fatalf("checked output:\n%s", res.Output)
	}
	reparse(t, res.Output)
}

func TestCheckedPreIncrement(t *testing.T) {
	// Paper: ++p in debugging mode becomes
	// (char (*)) GC_pre_incr(&(p), sizeof(char)*(+(1)))
	src := `void f(char *p) { ++p; *p = 1; }`
	res := annotate(t, src, Options{Mode: ModeChecked})
	if !strings.Contains(res.Output, "GC_pre_incr(& p, 1)") &&
		!strings.Contains(res.Output, "GC_pre_incr(&(p), 1)") &&
		!strings.Contains(res.Output, "GC_pre_incr((& p), 1)") {
		t.Fatalf("checked ++p output:\n%s", res.Output)
	}
	reparse(t, res.Output)
}

func TestCheckedPostIncrementScaling(t *testing.T) {
	src := `
struct pair { int a; int b; };
void f(struct pair *p) { p++; }
`
	res := annotate(t, src, Options{Mode: ModeChecked})
	// struct pair is 8 bytes; statement-level p++ is canonicalized to the
	// prefix form, so GC_pre_incr gets a byte delta of 8.
	if !strings.Contains(res.Output, "8)") {
		t.Fatalf("expected byte delta 8 in:\n%s", res.Output)
	}
	reparse(t, res.Output)
}

func TestCompoundAssignRewrite(t *testing.T) {
	src := `void f(char *p, int n) { p += n; *p = 0; }`
	res := annotate(t, src, Options{})
	if !strings.Contains(res.Output, "p = ") || !strings.Contains(res.Output, "KEEP_LIVE(p + n, p)") {
		t.Fatalf("output:\n%s", res.Output)
	}
	reparse(t, res.Output)
}

func TestMemberAccessAnnotated(t *testing.T) {
	src := `
struct node { int val; struct node *next; };
int f(struct node *p) { return p->next->val; }
`
	res := annotate(t, src, Options{})
	reparse(t, res.Output)
	// Both the inner p->next load and the outer ->val access involve
	// address arithmetic; the outer one's base is a temporary naming the
	// loaded p->next.
	if res.Inserted < 2 {
		t.Fatalf("Inserted = %d, want >= 2\n%s", res.Inserted, res.Output)
	}
	if res.Temps < 1 {
		t.Fatalf("expected a temporary for the generating base\n%s", res.Output)
	}
}

func TestLocalStructNotAnnotated(t *testing.T) {
	// Accesses rooted at named local/static storage can never touch the
	// collected heap; no annotation should appear.
	src := `
struct point { int x; int y; };
int f() {
    struct point v;
    int arr[10];
    v.x = 1;
    arr[3] = v.x;
    return arr[3] + v.y;
}
`
	res := annotate(t, src, Options{})
	if res.Inserted != 0 {
		t.Fatalf("local-storage accesses annotated (%d):\n%s", res.Inserted, res.Output)
	}
	if res.Output != strings.ReplaceAll(src, "\r", "") {
		t.Fatalf("output should be byte-identical to input:\n%s", res.Output)
	}
}

func TestHeapArrayViaPointerAnnotated(t *testing.T) {
	src := `
int f(int *a, int i) { return a[i]; }
`
	res := annotate(t, src, Options{})
	if !strings.Contains(res.Output, "KEEP_LIVE(&(a[i]), a)") {
		t.Fatalf("output:\n%s", res.Output)
	}
	reparse(t, res.Output)
}

func TestStoreThroughSubscript(t *testing.T) {
	src := `void f(int *a, int i, int v) { a[i] = v; }`
	res := annotate(t, src, Options{})
	if !strings.Contains(res.Output, "(*(int *)KEEP_LIVE(&(a[i]), a)) = v") {
		t.Fatalf("output:\n%s", res.Output)
	}
	reparse(t, res.Output)
}

func TestIntToPointerWarning(t *testing.T) {
	src := `
char *f(int bits) {
    return (char *)bits;
}
`
	res := annotate(t, src, Options{})
	if len(res.Warnings) == 0 {
		t.Fatal("no warning for integer-to-pointer conversion")
	}
	if !strings.Contains(res.Warnings[0].Msg, "non-pointer") {
		t.Fatalf("warning = %v", res.Warnings[0])
	}
}

func TestSmallIntToPointerBenign(t *testing.T) {
	src := `char *f() { return (char *)0; }
char *g() { return (char *)1; }`
	res := annotate(t, src, Options{})
	if len(res.Warnings) != 0 {
		t.Fatalf("benign small-integer conversions warned: %v", res.Warnings)
	}
}

func TestMemcpyMismatchWarning(t *testing.T) {
	src := `
struct holder { char *p; };
void f(struct holder *h, char *buf) {
    memcpy((void *)buf, (void *)h, sizeof(struct holder));
}
`
	res := annotate(t, src, Options{})
	found := false
	for _, w := range res.Warnings {
		if strings.Contains(w.Msg, "memcpy") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no memcpy warning; warnings = %v", res.Warnings)
	}
}

func TestSizeofOperandNotAnnotated(t *testing.T) {
	src := `unsigned f(char *p) { return sizeof p[1]; }`
	res := annotate(t, src, Options{})
	if res.Inserted != 0 {
		t.Fatalf("sizeof operand annotated:\n%s", res.Output)
	}
}

func TestConditionalArmsWrapped(t *testing.T) {
	src := `char *f(char *p, char *q, int c) { return c ? p + 1 : q + 2; }`
	res := annotate(t, src, Options{})
	if !strings.Contains(res.Output, "KEEP_LIVE(p + 1, p)") ||
		!strings.Contains(res.Output, "KEEP_LIVE(q + 2, q)") {
		t.Fatalf("output:\n%s", res.Output)
	}
	reparse(t, res.Output)
}

func TestGeneratingBaseGetsTemp(t *testing.T) {
	// f() + 4: the call result must be named before arithmetic hangs off
	// it ("we assume that temporaries have already been introduced").
	src := `
char *mk();
char *f() { return mk() + 4; }
`
	res := annotate(t, src, Options{})
	reparse(t, res.Output)
	if res.Temps != 1 {
		t.Fatalf("Temps = %d, want 1\n%s", res.Temps, res.Output)
	}
	if !strings.Contains(res.Output, "(__tmp1 = mk())") {
		t.Fatalf("output:\n%s", res.Output)
	}
	if !strings.Contains(res.Output, ", __tmp1))") {
		t.Fatalf("temp not used as base:\n%s", res.Output)
	}
}

func TestTempDeclarationsEmitted(t *testing.T) {
	src := `
char *mk();
char *f() { return mk() + 4; }
`
	res := annotate(t, src, Options{})
	if !strings.Contains(res.Output, "char * __tmp1;") {
		t.Fatalf("temporary not declared:\n%s", res.Output)
	}
	reparse(t, res.Output)
}

func TestStatementLevelIncrementCheap(t *testing.T) {
	// `p++;` at statement level uses the prefix expansion (no temp).
	src := `void f(char *p) { p++; *p = 0; }`
	res := annotate(t, src, Options{})
	if strings.Contains(res.Output, "__tmp") {
		t.Fatalf("statement-level p++ should not need a temp:\n%s", res.Output)
	}
	if !strings.Contains(res.Output, "p = KEEP_LIVE(p + 1, p)") {
		t.Fatalf("output:\n%s", res.Output)
	}
	reparse(t, res.Output)
}

func TestValueUsedPostIncrementKeepsValue(t *testing.T) {
	src := `char f(char *p) { return *p++; }`
	res := annotate(t, src, Options{})
	reparse(t, res.Output)
	if !strings.Contains(res.Output, "__tmp1 = p") {
		t.Fatalf("postfix with used value needs the save temp:\n%s", res.Output)
	}
}

func TestNoIncDecExpansionAblation(t *testing.T) {
	src := `void f(char *p) { p++; *p = 0; }`
	res := annotate(t, src, Options{NoIncDecExpansion: true})
	reparse(t, res.Output)
	// The general form takes the variable's address, forcing it to memory.
	if !strings.Contains(res.Output, "= & p") && !strings.Contains(res.Output, "= &p") &&
		!strings.Contains(res.Output, "= (& p)") {
		t.Fatalf("general expansion should take &p:\n%s", res.Output)
	}
}

func TestIdempotentOnPointerFreeCode(t *testing.T) {
	src := `
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
`
	res := annotate(t, src, Options{})
	if res.Inserted != 0 || res.Output != src {
		t.Fatalf("pointer-free code modified:\n%s", res.Output)
	}
}

func TestAnnotationCountsReported(t *testing.T) {
	src := `
char *f(char *p) {
    char *q;
    q = p;         /* suppressed copy */
    q = p + 1;     /* wrapped arithmetic */
    return q;      /* suppressed copy (return of variable) */
}
`
	res := annotate(t, src, Options{})
	if res.Inserted != 1 {
		t.Fatalf("Inserted = %d, want 1\n%s", res.Inserted, res.Output)
	}
	if res.Suppressed != 2 {
		t.Fatalf("Suppressed = %d, want 2", res.Suppressed)
	}
}

func TestCallSiteOnlyDropsCallFreeAnnotations(t *testing.T) {
	// Optimization (4): statements without calls need no KEEP_LIVE when
	// collections happen only at call sites.
	src := `
char f(char *p, int i) {
    return p[i - 1000];        /* no call in this statement */
}
char g(char *p) {
    return p[strlen(p) - 1];   /* a call: annotation must stay */
}
`
	res := annotate(t, src, Options{CallSiteOnly: true})
	if strings.Contains(res.Output, "KEEP_LIVE(&(p[i - 1000])") {
		t.Fatalf("call-free statement still annotated:\n%s", res.Output)
	}
	if !strings.Contains(res.Output, "KEEP_LIVE(&(p[strlen(p) - 1]), p)") {
		t.Fatalf("call-bearing statement lost its annotation:\n%s", res.Output)
	}
	reparse(t, res.Output)
}

func TestCallSiteOnlyKeepsReturnAnnotations(t *testing.T) {
	// A returned pointer crosses a call boundary by definition.
	src := `char *f(char *p) { return p + 4; }`
	res := annotate(t, src, Options{CallSiteOnly: true})
	if !strings.Contains(res.Output, "KEEP_LIVE(p + 4, p)") {
		t.Fatalf("return annotation dropped:\n%s", res.Output)
	}
}

func TestCallSiteOnlyIncDec(t *testing.T) {
	src := `
void f(char *p) {
    p++;                       /* no call: left untouched */
    *p = 0;
}
void g(char *p) {
    putchar(*p++);             /* call in statement: rewritten */
}
`
	res := annotate(t, src, Options{CallSiteOnly: true})
	if !strings.Contains(res.Output, "    p++;") {
		t.Fatalf("call-free increment rewritten:\n%s", res.Output)
	}
	if !strings.Contains(res.Output, "__tmp1") {
		t.Fatalf("call-bearing increment not rewritten:\n%s", res.Output)
	}
	reparse(t, res.Output)
}
