package gcsafe

import (
	"gcsafety/internal/cc/ast"
	"gcsafety/internal/cc/token"
)

// computeHeuristicBases implements the paper's optimization (3): "A good
// heuristic appears to be to replace base pointers in KEEP_LIVE expressions
// by equivalent, but less rapidly varying base pointers, especially if
// those are likely to be live in any case."
//
// The analysis is deliberately small (the paper calls for "a small amount
// of analysis"): a pointer variable p may use s as its base when, in the
// whole function, p receives exactly one plain copy `p = s` from a pointer
// variable s, every other assignment to p is self-arithmetic
// (BASE(rhs) = p, e.g. p++, p += k, p = p + k, or KEEP_LIVE forms thereof),
// s is never assigned, and neither variable has its address taken. Under
// those conditions p always points into the object s points to, so s is an
// equivalent, less rapidly varying base — exactly the `while (*p++ = *q++)`
// string-copy situation the paper illustrates.
func (an *annotator) computeHeuristicBases(fd *ast.FuncDecl) {
	assigns := map[*ast.Object]int{}
	copies := map[*ast.Object][]*ast.Object{}
	others := map[*ast.Object]int{}

	record := func(target *ast.Object, src ast.Expr, selfArith bool) {
		assigns[target]++
		if selfArith {
			return
		}
		if src != nil {
			if id, ok := ast.Unparen(src).(*ast.Ident); ok && id.Obj.IsPointerVar() && !isArrayObj(id.Obj) {
				copies[target] = append(copies[target], id.Obj)
				return
			}
		}
		others[target]++
	}

	ast.Inspect(fd, func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.Assign:
			id, ok := isSimpleVar(e.L)
			if !ok || !id.Obj.IsPointerVar() {
				return true
			}
			if e.Op != token.Assign {
				record(id.Obj, nil, true) // p += k is self-arithmetic
				return true
			}
			b := an.baseOf(mkslot(func() ast.Expr { return e.R }, func(ast.Expr) {}))
			record(id.Obj, e.R, b.obj == id.Obj)
		case *ast.Unary:
			if e.Op == token.Inc || e.Op == token.Dec {
				if id, ok := isSimpleVar(e.X); ok && id.Obj.IsPointerVar() {
					record(id.Obj, nil, true)
				}
			}
		}
		return true
	})

	for p, cs := range copies {
		if len(cs) != 1 || others[p] != 0 || p.AddrTaken {
			continue
		}
		s := cs[0]
		if s == p || assigns[s] != 0 || s.AddrTaken {
			continue
		}
		if an.heuristicBase == nil {
			an.heuristicBase = map[*ast.Object]*ast.Object{}
		}
		an.heuristicBase[p] = s
	}
}
