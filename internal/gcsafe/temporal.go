package gcsafe

import (
	"gcsafety/internal/cc/ast"
)

// rewriteFree redirects free(p) to the runtime's GC_free in temporal mode.
// The paper's methodology neutralizes free ("calls to free were deleted or
// turned into no-ops"); the temporal checker instead needs frees to really
// retire storage, so that a pointer surviving one is observably stale. The
// rewrite is textual and structural, like the other annotations, so both
// the rewritten source and the compiled AST agree.
func (an *annotator) rewriteFree(e *ast.Call) {
	id, ok := ast.Unparen(e.Fun).(*ast.Ident)
	if !ok || id.Name != "free" || len(e.Args) != 1 {
		return
	}
	an.emitReplace(id.Pos().Off, id.End(), "GC_free")
	e.Fun = objIdent(an.runtimeObj("GC_free"))
	an.res.Inserted++
}
