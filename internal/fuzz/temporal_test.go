package fuzz

import (
	"testing"

	"gcsafety/internal/machine"
)

// temporalTreatmentCount is the number of temporal-mode cells a
// single-machine matrix contains: the optimized and debuggable builds, the
// concurrent build, and the adversarial-schedule build.
const temporalTreatmentCount = 4

// The headline temporal property, deterministically: for a generated
// program that seeds a use-after-free or double-free, every temporal-mode
// treatment must report a TemporalError — the classifier files each one
// under TemporalDetections and treats anything else (a silent pass
// included) as a violation.
func TestTemporalDetectsSeededUAF(t *testing.T) {
	found := 0
	for seed := int64(0); seed < 300 && found < 3; seed++ {
		p := Generate(seed, 8)
		if p.TemporalHazards == 0 {
			continue
		}
		found++
		m, err := RunMatrix(p, MatrixOptions{
			Machines: []machine.Config{machine.SPARCstation10()},
		})
		if err != nil {
			t.Fatalf("seed %d: harness failure: %v\n%s", seed, err, p.Source)
		}
		if len(m.Violations) > 0 {
			t.Fatalf("seed %d: matrix violation:\n%s", seed, Describe(p, m.Violations))
		}
		if len(m.TemporalDetections) != temporalTreatmentCount {
			t.Fatalf("seed %d: %d temporal detections, want %d\n%s",
				seed, len(m.TemporalDetections), temporalTreatmentCount, p.Source)
		}
		for _, r := range m.TemporalDetections {
			if !IsTemporalFault(r.Err) {
				t.Fatalf("seed %d [%s]: detection is not a TemporalError: %v",
					seed, r.Name(), r.Err)
			}
		}
	}
	if found == 0 {
		t.Fatalf("no program with temporal hazards in 300 seeds — the generator has gone stale")
	}
}

// The false-positive guard: a program that frees only after the last use
// (and seeds no temporal hazard) must sail through temporal mode with the
// model's exact output.
func TestTemporalNoFalsePositiveOnBenignFree(t *testing.T) {
	checked := 0
	for seed := int64(0); seed < 300 && checked < 3; seed++ {
		p := Generate(seed, 8)
		if p.TemporalHazards > 0 || p.RaceHazards > 0 {
			continue
		}
		hasFree := false
		for _, op := range p.Ops {
			if op == "free" {
				hasFree = true
			}
		}
		if !hasFree {
			continue
		}
		checked++
		for _, optimize := range []bool{false, true} {
			tr := Treatment{Machine: machine.SPARCstation10(), Annotate: AnnotateTemporal, Optimize: optimize}
			r, err := RunTreatment(p, tr)
			if err != nil {
				t.Fatalf("seed %d: harness failure: %v", seed, err)
			}
			if !r.Agreed(p.Want) {
				t.Fatalf("seed %d [%s]: temporal false positive: err=%v got=%q want=%q\n%s",
					seed, tr.Name(), r.Err, r.Output, p.Want, p.Source)
			}
		}
	}
	if checked == 0 {
		t.Fatalf("no benign-free program in 300 seeds")
	}
}

// The cross-thread-escape phenomenon: within the seed budget there must be
// a generated program whose worker thread holds a displaced pointer across
// another thread's collection point — the unannotated optimized concurrent
// build faults with the premature-reclamation detector, while the safe
// build of the same program under the same schedule agrees with the model.
func TestConcurrentDetectsThreadEscape(t *testing.T) {
	cfg := machine.SPARCstation10()
	for seed := int64(0); seed < 500; seed++ {
		p := Generate(seed, 8)
		if p.RaceHazards == 0 {
			continue
		}
		unsafe := Treatment{Machine: cfg, Annotate: AnnotateNone, Optimize: true,
			Threads: concThreads, SchedSeed: defaultSchedSeed, Adversarial: true}
		r, err := RunTreatment(p, unsafe)
		if err != nil {
			t.Fatalf("seed %d: harness failure: %v", seed, err)
		}
		if !IsReclamationFault(r.Err) {
			continue
		}
		safe := unsafe
		safe.Annotate = AnnotateSafe
		rs, err := RunTreatment(p, safe)
		if err != nil {
			t.Fatalf("seed %d: harness failure: %v", seed, err)
		}
		if !rs.Agreed(p.Want) {
			t.Fatalf("seed %d: safe concurrent build failed where only the unsafe one should: err=%v got=%q want=%q\n%s",
				seed, rs.Err, rs.Output, p.Want, p.Source)
		}
		t.Logf("cross-thread escape reproduced at seed %d: %v", seed, r.Err)
		return
	}
	t.Fatalf("no cross-thread escape detected in 500 seeds — the worker hazard has gone stale")
}

// temporalFuzzTreatments is the narrow column set FuzzTemporalDifferential
// exercises per input: the temporal builds (optimized, debuggable,
// adversarial, concurrent), the safe concurrent build as the agreement
// baseline, and the unsafe concurrent adversarial build as the tolerated
// hazard demonstration.
func temporalFuzzTreatments() []Treatment {
	cfg := machine.SPARCstation10()
	return []Treatment{
		{Machine: cfg, Annotate: AnnotateTemporal, Optimize: true},
		{Machine: cfg, Annotate: AnnotateTemporal},
		{Machine: cfg, Annotate: AnnotateTemporal, Optimize: true, Adversarial: true},
		{Machine: cfg, Annotate: AnnotateTemporal, Optimize: true, Threads: concThreads, SchedSeed: defaultSchedSeed},
		{Machine: cfg, Annotate: AnnotateSafe, Optimize: true, Threads: concThreads, SchedSeed: defaultSchedSeed},
		{Machine: cfg, Annotate: AnnotateNone, Optimize: true, Threads: concThreads, SchedSeed: defaultSchedSeed, Adversarial: true},
	}
}

// FuzzTemporalDifferential is the native fuzzing entry point for the two
// new checker columns: the fuzzer mutates the generator's byte string, and
// every resulting program must satisfy the temporal contract — temporal
// treatments fault with a TemporalError exactly when the program seeds a
// use-after-free/double-free, and agree with the model exactly when it does
// not — while the safe concurrent treatment always agrees and the unsafe
// concurrent treatment is free to fail (the demonstrated hazard). Run with:
//
//	go test -fuzz=FuzzTemporalDifferential -fuzztime=30s ./internal/fuzz
func FuzzTemporalDifferential(f *testing.F) {
	// Op-table bytes (mod 27): 23 = uaf, 24 = double-free, 25 = benign
	// free, 26 = thread-escape; the leading byte picks the step count.
	f.Add([]byte{})
	f.Add([]byte{0, 23, 10, 200, 23, 60, 7})                   // two use-after-frees
	f.Add([]byte{0, 24, 5, 24, 200, 24, 17})                   // three double-frees
	f.Add([]byte{0, 25, 12, 3, 25, 30, 1})                     // benign frees only
	f.Add([]byte{0, 26, 50, 100, 20, 9, 80})                   // one worker escape
	f.Add([]byte{2, 23, 9, 9, 24, 40, 26, 10, 10, 10, 10, 10}) // uaf + dfree + escape
	f.Add([]byte{1, 0, 30, 25, 8, 2, 23, 90, 90})              // reuse after benign free
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64 {
			data = data[:64]
		}
		p := GenerateBytes(data)
		for _, tr := range temporalFuzzTreatments() {
			r, err := RunTreatmentContext(t.Context(), p, tr, 2_000_000)
			if err != nil {
				t.Fatalf("harness failure [%s]: %v\n%s", tr.Name(), err, p.Source)
			}
			switch {
			case tr.Annotate == AnnotateTemporal && p.TemporalHazards > 0:
				if !IsTemporalFault(r.Err) {
					t.Fatalf("missed temporal detection [%s]: err=%v got=%q\n%s",
						tr.Name(), r.Err, r.Output, p.Source)
				}
			case tr.MustAgree():
				if !r.Agreed(p.Want) {
					t.Fatalf("violation [%s]: err=%v got=%q want=%q\n%s",
						tr.Name(), r.Err, r.Output, p.Want, p.Source)
				}
			}
		}
	})
}
