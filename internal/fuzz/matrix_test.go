package fuzz

import (
	"testing"

	"gcsafety/internal/machine"
)

func TestTreatmentsCrossProduct(t *testing.T) {
	ts := Treatments(MatrixOptions{})
	// 3 machines x 3 annotations x 2 opt x 2 post benign cells, plus
	// 3 adversarial runs per machine and 2 on the first machine; the
	// elision axis adds 4 benign and 2 adversarial twins on the first
	// machine; the temporal mode adds an optimized cell per machine and a
	// debug cell on the first; the concurrent-mutator mode adds 5 benign
	// multi-thread cells and 3 adversarial cells (temporal, safe-mt,
	// none-mt).
	want := 3*3*2*2 + 3*3 + 2 + (4 + 2) + (3 + 1) + 5 + 3
	if len(ts) != want {
		t.Fatalf("Treatments() = %d cells, want %d", len(ts), want)
	}
	seen := map[string]bool{}
	for _, tr := range ts {
		name := tr.Name()
		if seen[name] {
			t.Fatalf("duplicate treatment %q", name)
		}
		seen[name] = true
		if tr.Annotate == AnnotateNone && tr.Optimize && tr.MustAgree() {
			t.Fatalf("unannotated optimized treatment %q marked must-agree", name)
		}
		if (tr.Annotate != AnnotateNone || !tr.Optimize) && !tr.MustAgree() {
			t.Fatalf("treatment %q should be must-agree", name)
		}
	}
}

func TestTreatmentsSingleMachine(t *testing.T) {
	ts := Treatments(MatrixOptions{Machines: []machine.Config{machine.SPARCstation10()}})
	if want := 3*2*2 + 3 + 2 + (4 + 2) + (1 + 1) + 5 + 3; len(ts) != want {
		t.Fatalf("single-machine Treatments() = %d cells, want %d", len(ts), want)
	}
	benign := Treatments(MatrixOptions{SkipAdversarial: true})
	for _, tr := range benign {
		if tr.Adversarial {
			t.Fatalf("SkipAdversarial left %q in the list", tr.Name())
		}
	}
}

// runMatrixSeeds runs [start, start+n) seeds through the full treatment
// matrix and fails on any violation of a must-agree treatment.
func runMatrixSeeds(t *testing.T, start, n int64, steps int) {
	t.Helper()
	unsafeFailures := 0
	for seed := start; seed < start+n; seed++ {
		p := Generate(seed, steps)
		m, err := RunMatrix(p, MatrixOptions{})
		if err != nil {
			t.Fatalf("harness failure: %v\n%s", err, p.Source)
		}
		if len(m.EngineDivergences) > 0 {
			t.Fatalf("engine divergence:\n%s\n%s", m.EngineDivergences[0], p.Source)
		}
		if len(m.Violations) > 0 {
			t.Fatalf("matrix violation:\n%s", Describe(p, m.Violations))
		}
		unsafeFailures += len(m.UnsafeFailures)
	}
	t.Logf("%d seeds clean; %d tolerated unsafe-build failures", n, unsafeFailures)
}

// The headline differential property: generated programs agree with the
// model under every must-agree treatment, benign and adversarial. The full
// 2000-program acceptance run is split across subtests so progress and
// failures are attributable; -short runs a 100-program slice.
func TestMatrixAgreesOnGeneratedPrograms(t *testing.T) {
	if testing.Short() {
		runMatrixSeeds(t, 0, 100, 5)
		return
	}
	const (
		batches = 8
		perB    = 250 // 8 * 250 = 2000 programs
	)
	for b := int64(0); b < batches; b++ {
		b := b
		t.Run("batch", func(t *testing.T) {
			runMatrixSeeds(t, b*perB, perB, 5)
		})
	}
}

// The paper's phenomenon itself: within 500 generated programs the
// unannotated optimized build, run under the adversarial collection
// schedule, must access a prematurely reclaimed object.
func TestUnannotatedOptimizedReproducesReclamation(t *testing.T) {
	machines := machine.Configs()
	for seed := int64(0); seed < 500; seed++ {
		p := Generate(seed, 5)
		if p.Hazards == 0 {
			continue
		}
		for _, cfg := range machines {
			tr := Treatment{Machine: cfg, Annotate: AnnotateNone, Optimize: true, Adversarial: true}
			r, err := RunTreatment(p, tr)
			if err != nil {
				t.Fatalf("harness failure: %v", err)
			}
			if IsReclamationFault(r.Err) {
				t.Logf("premature reclamation reproduced at seed %d on %s: %v",
					seed, tr.Name(), r.Err)
				return
			}
		}
	}
	t.Fatalf("no premature reclamation in 500 generated programs — the hazard catalogue has gone stale")
}

// Conversely, the annotated build must also survive the benign schedule on
// a program known to trip the unsafe build (regression guard for the
// annotator rather than the schedule).
func TestSafeSurvivesWhereUnsafeFaults(t *testing.T) {
	p, bad := findKnownBad(t, 200)
	safe := bad.Treatment
	safe.Annotate = AnnotateSafe
	r, err := RunTreatment(p, safe)
	if err != nil {
		t.Fatalf("harness failure: %v", err)
	}
	if !r.Agreed(p.Want) {
		t.Fatalf("annotated build failed on the known-bad program: err=%v got=%q want=%q",
			r.Err, r.Output, p.Want)
	}
}

// findKnownBad scans seeds for a program whose unannotated optimized
// adversarial run faults with a premature-reclamation error.
func findKnownBad(t *testing.T, maxSeeds int64) (*Program, TreatmentResult) {
	t.Helper()
	for seed := int64(0); seed < maxSeeds; seed++ {
		p := Generate(seed, 5)
		if p.Hazards == 0 {
			continue
		}
		for _, cfg := range machine.Configs() {
			tr := Treatment{Machine: cfg, Annotate: AnnotateNone, Optimize: true, Adversarial: true}
			r, err := RunTreatment(p, tr)
			if err != nil {
				t.Fatalf("harness failure: %v", err)
			}
			if IsReclamationFault(r.Err) {
				return p, r
			}
		}
	}
	t.Fatalf("no known-bad program found in %d seeds", maxSeeds)
	return nil, TreatmentResult{}
}
