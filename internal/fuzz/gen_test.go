package fuzz

import (
	"fmt"
	"strings"
	"testing"

	"gcsafety/internal/cc/ast"
	"gcsafety/internal/cc/parser"
)

func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := Generate(seed, 10)
		b := Generate(seed, 10)
		if a.Source != b.Source || a.Want != b.Want {
			t.Fatalf("seed %d not deterministic", seed)
		}
	}
	if Generate(1, 10).Source == Generate(2, 10).Source {
		t.Fatalf("distinct seeds produced identical programs")
	}
}

func TestGeneratedProgramsParse(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		p := Generate(seed, 8)
		if _, err := parser.Parse("gen.c", p.Source); err != nil {
			t.Fatalf("seed %d does not parse: %v\n%s", seed, err, p.Source)
		}
	}
}

func TestGenerateBytesDeterministic(t *testing.T) {
	data := []byte{3, 7, 200, 41, 0, 0, 99, 5}
	a := GenerateBytes(data)
	b := GenerateBytes(data)
	if a.Source != b.Source || a.Want != b.Want {
		t.Fatalf("GenerateBytes not deterministic")
	}
	if _, err := parser.Parse("gen.c", a.Source); err != nil {
		t.Fatalf("byte-driven program does not parse: %v", err)
	}
	// Exhausted byte strings must still produce complete programs.
	if p := GenerateBytes(nil); len(p.Ops) == 0 {
		t.Fatalf("empty input produced an empty program")
	}
}

// Every operation in the table, hazard catalogue included, must actually be
// reachable from seeded generation.
func TestOpCoverage(t *testing.T) {
	seen := map[string]bool{}
	for seed := int64(0); seed < 300; seed++ {
		for _, op := range Generate(seed, 12).Ops {
			seen[op] = true
		}
	}
	want := []string{"push", "pop", "sum", "move", "len", "const",
		"disp", "walk-read", "walk-write", "walk-back",
		"interior", "interior-only", "struct-array", "buf-sum",
		"uaf", "double-free", "free", "thread-escape"}
	for _, op := range want {
		if !seen[op] {
			t.Errorf("op %q never generated in 300 seeds", op)
		}
	}
}

// The generator's constant evaluator must agree with the parser's: the
// model predicts print_int output for opConst using evalBin, and the
// compiler folds the same expression using the front end's semantics.
func TestConstExprMatchesParserEvaluator(t *testing.T) {
	g := NewExprGenSeed(19960528)
	for i := 0; i < 500; i++ {
		text, val := g.Const(4)
		src := fmt.Sprintf("int probe() { return %s; }", text)
		f, err := parser.Parse("const.c", src)
		if err != nil {
			t.Fatalf("constant expression does not parse: %s: %v", text, err)
		}
		ret := f.FuncByName("probe").Body.Stmts[0].(*ast.Return)
		got, isConst := parser.EvalConst(ret.X)
		if !isConst {
			t.Fatalf("parser did not fold %s", text)
		}
		if got != int64(val) {
			t.Fatalf("constant disagreement on %s: generator %d, parser %d", text, val, got)
		}
	}
}

func TestHazardCounting(t *testing.T) {
	total, temporal, race := 0, 0, 0
	for seed := int64(0); seed < 100; seed++ {
		p := Generate(seed, 10)
		n, nt, nr := 0, 0, 0
		for _, op := range p.Ops {
			switch op {
			case "disp", "walk-read", "walk-write", "walk-back",
				"interior", "interior-only", "struct-array", "buf-sum":
				n++
			case "uaf", "double-free":
				nt++
			case "thread-escape":
				nr++
			}
		}
		if n != p.Hazards {
			t.Fatalf("seed %d: Hazards=%d but %d hazard ops in %v", seed, p.Hazards, n, p.Ops)
		}
		if nt != p.TemporalHazards {
			t.Fatalf("seed %d: TemporalHazards=%d but %d temporal ops in %v",
				seed, p.TemporalHazards, nt, p.Ops)
		}
		// Only the first three workers can run under 4-thread treatments;
		// extra thread-escape ops are emitted dormant and not counted.
		if want := min(nr, 3); want != p.RaceHazards {
			t.Fatalf("seed %d: RaceHazards=%d but %d runnable escape ops in %v",
				seed, p.RaceHazards, want, p.Ops)
		}
		total += n
		temporal += nt
		race += nr
	}
	if total == 0 {
		t.Fatalf("no hazard operations generated at all")
	}
	if temporal == 0 {
		t.Fatalf("no temporal-hazard operations generated in 100 seeds")
	}
	if race == 0 {
		t.Fatalf("no thread-escape operations generated in 100 seeds")
	}
}

func TestCountLines(t *testing.T) {
	if n := CountLines("a\n\n  \nb\nc\n"); n != 3 {
		t.Fatalf("CountLines = %d, want 3", n)
	}
}

func TestProgramShape(t *testing.T) {
	p := Generate(7, 10)
	if !strings.Contains(p.Source, "int main()") {
		t.Fatalf("no main in generated program")
	}
	if !strings.HasSuffix(p.Want, "|") {
		t.Fatalf("model output does not end with the slot summary: %q", p.Want)
	}
}
