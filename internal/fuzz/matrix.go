package fuzz

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"gcsafety/internal/artifact"
	"gcsafety/internal/engine"
	"gcsafety/internal/faultinject"
	"gcsafety/internal/gc"
	"gcsafety/internal/gcsafe"
	"gcsafety/internal/interp"
	"gcsafety/internal/machine"
	"gcsafety/internal/par"
	"gcsafety/internal/pipeline"
	"gcsafety/internal/threaded"
)

// Annotation selects the preprocessing treatment of a program.
type Annotation int

// Annotation treatments.
const (
	// AnnotateNone compiles the program as written (GC-unsafe when
	// optimized).
	AnnotateNone Annotation = iota
	// AnnotateSafe runs the KEEP_LIVE annotator (the paper's production
	// mode).
	AnnotateSafe
	// AnnotateChecked runs the annotator in pointer-checking mode (the
	// paper's debugging mode).
	AnnotateChecked
	// AnnotateTemporal runs the annotator in temporal mode: checked-mode
	// GC_same_obj insertion plus free→GC_free rewriting, executed with the
	// interpreter's allocation-epoch tags armed, so use-after-free and
	// double-free become deterministic checker violations.
	AnnotateTemporal
)

func (a Annotation) String() string {
	switch a {
	case AnnotateSafe:
		return "safe"
	case AnnotateChecked:
		return "checked"
	case AnnotateTemporal:
		return "temporal"
	}
	return "none"
}

// Treatment is one cell of the differential matrix: a full compilation and
// execution configuration.
type Treatment struct {
	Machine  machine.Config
	Annotate Annotation
	Optimize bool
	Post     bool // peephole postprocessor
	// Adversarial runs under the maximally hostile collection schedule: a
	// forced collection at every allocation and between every two
	// instructions, with the premature-reclamation detector armed. For
	// concurrent treatments (Threads > 1) the regime is a collection at
	// every allocation and at every context switch instead — the same
	// adversary generalized to adversarial interleavings.
	Adversarial bool
	// Threads, when > 1, runs the program as N concurrent mutator threads
	// over one shared heap (thread 0 is main; thread i runs the program's
	// threadN function if defined) under a deterministic seeded
	// interleaving.
	Threads int
	// SchedSeed seeds the interleaving schedule for concurrent treatments.
	SchedSeed uint64
	// Elide runs the annotator with the liveness-based elision analysis
	// on. Elided treatments are paired with their unelided twins in the
	// matrix: both must reproduce the model, so any elision that changes
	// behavior — or drops a check that should fire — is a violation.
	Elide bool
	// Engine names the execution backend ("" = the default switch-dispatch
	// interpreter). The matrix pairs every treatment with a twin on the
	// other engine and requires bit-identical outcomes — output, fault,
	// Instrs and Cycles — so a second engine is differentially tested
	// across the whole cube, not just on golden workloads.
	Engine string
}

// defaultSchedSeed is the fixed interleaving seed of the standard
// concurrent treatments; differential fuzzing varies programs, not
// schedules, so one fully deterministic schedule per seed keeps violations
// reproducible.
const defaultSchedSeed = 0x9E3779B97F4A7C15

// concThreads is the thread count of the standard concurrent treatments:
// main plus up to three generated worker threads.
const concThreads = 4

// Name is a compact human-readable treatment label.
func (t Treatment) Name() string {
	var b strings.Builder
	b.WriteString(shortMachine(t.Machine))
	if t.Optimize {
		b.WriteString("/-O")
	} else {
		b.WriteString("/-g")
	}
	if t.Annotate != AnnotateNone {
		b.WriteString(" " + t.Annotate.String())
	}
	if t.Elide {
		b.WriteString(" elided")
	}
	if t.Post {
		b.WriteString(" post")
	}
	if t.Threads > 1 {
		fmt.Fprintf(&b, " mt%d", t.Threads)
	}
	if t.Adversarial {
		b.WriteString(" adv")
	}
	if t.Engine != "" {
		b.WriteString(" " + t.Engine)
	}
	return b.String()
}

func shortMachine(cfg machine.Config) string {
	switch cfg.Name {
	case "SPARCstation 2":
		return "ss2"
	case "SPARCstation 10":
		return "ss10"
	case "Pentium 90":
		return "p90"
	}
	return cfg.Name
}

// MustAgree reports whether the treatment is required to reproduce the
// model output. Only the unannotated optimized build — the configuration
// the paper demonstrates is not GC-safe — is exempt.
func (t Treatment) MustAgree() bool {
	return !(t.Annotate == AnnotateNone && t.Optimize)
}

// TreatmentResult is the outcome of running one treatment. Instrs and
// Cycles are the simulated counts — the quantities the engine-twin
// comparison requires to be bit-identical, because they are the
// reproduction's data.
type TreatmentResult struct {
	Treatment
	Output string
	Err    error // run-time fault, or nil
	Instrs uint64
	Cycles uint64
}

// Agreed reports whether the run completed and reproduced the model.
func (r TreatmentResult) Agreed(want string) bool {
	return r.Err == nil && r.Output == want
}

// MatrixOptions configures a matrix run.
type MatrixOptions struct {
	// Machines are the target configurations (default: the three paper
	// machines).
	Machines []machine.Config
	// SkipAdversarial drops the hostile-schedule runs (used by callers
	// that only want output agreement under the benign regime).
	SkipAdversarial bool
	// StopOnViolation aborts the matrix at the first violation.
	StopOnViolation bool
	// MaxInstrs caps each treatment run's executed instructions (0 = the
	// interpreter default). With RunMatrixContext's deadline support this
	// is what keeps runaway generated programs from hanging a campaign.
	MaxInstrs uint64
	// Faults, when non-nil, is injected into every treatment run's
	// interpreter (see internal/faultinject): the campaign then measures
	// whether the harness classifies injected failures cleanly rather
	// than whether treatments agree. A must-agree treatment that faults
	// under injection surfaces as an ordinary violation, which is exactly
	// what makes fault campaigns deterministic regression tests for the
	// error paths.
	Faults *faultinject.Set
	// Parallel is how many treatments run concurrently (0 = the shared
	// default: GCSAFETY_PARALLEL, else GOMAXPROCS). Treatments are
	// shared-nothing — each compiles its own program and owns its machine
	// and heap — and results are classified in treatment order afterwards,
	// so the MatrixResult is identical at any width.
	Parallel int
	// Engine is the backend every base treatment runs on ("" = interp).
	// The engine twins re-run the cube on the other engine.
	Engine string
	// SkipEngineTwins drops the engine-twin comparison runs (halving the
	// matrix cost for callers that only need one engine's classification).
	// Twin runs are also skipped when Faults is set: a fault set's firing
	// schedules are consumed statefully in run order, so two engines
	// cannot see the same injections and the comparison is meaningless.
	SkipEngineTwins bool
}

// MatrixResult aggregates all treatment runs of one program.
type MatrixResult struct {
	Program *Program
	Results []TreatmentResult
	// Violations are must-agree treatments that faulted or diverged from
	// the model: each one is a real finding (a compiler, annotator,
	// collector or harness bug).
	Violations []TreatmentResult
	// UnsafeFailures are unannotated optimized runs that faulted or
	// diverged. They demonstrate the paper's hazard and are expected, not
	// findings; the premature-reclamation ones are the interesting kind.
	UnsafeFailures []TreatmentResult
	// TemporalDetections are temporal-mode treatments that correctly
	// reported a seeded use-after-free/double-free as a TemporalError. For
	// a program with TemporalHazards > 0 every temporal treatment must land
	// here; a temporal treatment that instead agrees (silent pass) or fails
	// some other way is a Violation — a missed detection is as much a
	// finding as a wrong one.
	TemporalDetections []TreatmentResult
	// EngineDivergences are treatment pairs whose two engines disagreed on
	// any simulated quantity — output, fault text, Instrs or Cycles. The
	// bit-identical contract says this must always be empty; any entry is
	// an engine bug (and a finding of the same severity as a Violation).
	EngineDivergences []EngineDivergence
}

// EngineDivergence reports one engine-twin disagreement.
type EngineDivergence struct {
	Treatment         // the base treatment (Treatment.Engine = base engine)
	TwinEngine string // the engine the twin ran on
	Field      string // "output", "error", "instrs" or "cycles"
	Base, Twin string // the two values, rendered
}

func (d EngineDivergence) String() string {
	return fmt.Sprintf("[%s] %s diverged vs %s: %q vs %q",
		d.Name(), d.Field, d.TwinEngine, d.Base, d.Twin)
}

// PrematureReclamations counts unsafe failures whose fault is the
// detector's "not inside any live object" heap error — the paper's
// premature-collection scenario, as opposed to mere output divergence.
func (m *MatrixResult) PrematureReclamations() int {
	n := 0
	for _, r := range m.UnsafeFailures {
		if IsReclamationFault(r.Err) {
			n++
		}
	}
	return n
}

// IsReclamationFault reports whether err is the premature-reclamation
// detector firing (an access inside the heap but not inside any live
// object).
func IsReclamationFault(err error) bool {
	var ge *gc.Error
	return errors.As(err, &ge) && strings.Contains(ge.Msg, "not inside any live object")
}

// IsTemporalFault reports whether err is the temporal checker firing (a
// use-after-free, double-free or recycled-storage access detected through
// allocation epochs).
func IsTemporalFault(err error) bool {
	var te *interp.TemporalError
	return errors.As(err, &te)
}

// RaceDetections counts unsafe failures of concurrent treatments whose
// fault is the premature-reclamation detector — a mutator that held a
// derived pointer across a collection another thread's allocation (or a
// schedule point) triggered: the cross-thread-escape hazard demonstrated.
func (m *MatrixResult) RaceDetections() int {
	n := 0
	for _, r := range m.UnsafeFailures {
		if r.Threads > 1 && IsReclamationFault(r.Err) {
			n++
		}
	}
	return n
}

// Treatments expands opt into the full treatment list: the cross-product
// {none, safe, checked} x {-g, -O} x {peephole on/off} per machine under
// the benign schedule, plus the adversarial-schedule runs — the annotated
// optimized builds (with and without peephole) on every machine, the
// debuggable and checked builds on the first machine, and the unannotated
// optimized build on every machine (expected to fail; recorded) — plus the
// two new checker columns: temporal-mode builds (optimized everywhere,
// debuggable and adversarial on the first machine) and the concurrent-
// mutator treatments on the first machine (safe/checked/temporal annotated,
// and the unannotated optimized build, which is expected to fail when a
// generated worker races a collection) — plus, on the first machine, the
// liveness-elision twins of the safe and checked cells under both the
// benign and adversarial regimes.
func Treatments(opt MatrixOptions) []Treatment {
	machines := opt.Machines
	if len(machines) == 0 {
		machines = machine.Configs()
	}
	var ts []Treatment
	for _, cfg := range machines {
		for _, ann := range []Annotation{AnnotateNone, AnnotateSafe, AnnotateChecked} {
			for _, optimize := range []bool{false, true} {
				for _, post := range []bool{false, true} {
					ts = append(ts, Treatment{Machine: cfg, Annotate: ann, Optimize: optimize, Post: post})
				}
			}
		}
	}
	if !opt.SkipAdversarial {
		for _, cfg := range machines {
			ts = append(ts,
				Treatment{Machine: cfg, Annotate: AnnotateSafe, Optimize: true, Adversarial: true},
				Treatment{Machine: cfg, Annotate: AnnotateSafe, Optimize: true, Post: true, Adversarial: true},
				Treatment{Machine: cfg, Annotate: AnnotateNone, Optimize: true, Adversarial: true},
			)
		}
		ts = append(ts,
			Treatment{Machine: machines[0], Annotate: AnnotateNone, Adversarial: true},
			Treatment{Machine: machines[0], Annotate: AnnotateChecked, Optimize: true, Adversarial: true},
		)
	}
	// Elided treatments (first machine): each is the elision twin of a
	// benign or adversarial cell above, so the matrix differentially tests
	// that elision preserves behavior — both twins must reproduce the
	// model, and the elided checked builds must catch everything the
	// unelided ones do.
	ts = append(ts,
		Treatment{Machine: machines[0], Annotate: AnnotateSafe, Optimize: true, Elide: true},
		Treatment{Machine: machines[0], Annotate: AnnotateSafe, Optimize: true, Post: true, Elide: true},
		Treatment{Machine: machines[0], Annotate: AnnotateChecked, Elide: true},
		Treatment{Machine: machines[0], Annotate: AnnotateChecked, Optimize: true, Elide: true},
	)
	if !opt.SkipAdversarial {
		ts = append(ts,
			Treatment{Machine: machines[0], Annotate: AnnotateSafe, Optimize: true, Adversarial: true, Elide: true},
			Treatment{Machine: machines[0], Annotate: AnnotateChecked, Optimize: true, Adversarial: true, Elide: true},
		)
	}
	// Temporal-mode treatments: the optimized build on every machine, plus
	// the debuggable build on the first.
	for _, cfg := range machines {
		ts = append(ts, Treatment{Machine: cfg, Annotate: AnnotateTemporal, Optimize: true})
	}
	ts = append(ts, Treatment{Machine: machines[0], Annotate: AnnotateTemporal})
	// Concurrent-mutator treatments (first machine): N threads over one
	// shared heap under the fixed deterministic interleaving.
	ts = append(ts,
		Treatment{Machine: machines[0], Annotate: AnnotateSafe, Optimize: true, Threads: concThreads, SchedSeed: defaultSchedSeed},
		Treatment{Machine: machines[0], Annotate: AnnotateSafe, Threads: concThreads, SchedSeed: defaultSchedSeed},
		Treatment{Machine: machines[0], Annotate: AnnotateChecked, Optimize: true, Threads: concThreads, SchedSeed: defaultSchedSeed},
		Treatment{Machine: machines[0], Annotate: AnnotateTemporal, Optimize: true, Threads: concThreads, SchedSeed: defaultSchedSeed},
		Treatment{Machine: machines[0], Annotate: AnnotateNone, Optimize: true, Threads: concThreads, SchedSeed: defaultSchedSeed},
	)
	if !opt.SkipAdversarial {
		ts = append(ts,
			Treatment{Machine: machines[0], Annotate: AnnotateTemporal, Optimize: true, Adversarial: true},
			Treatment{Machine: machines[0], Annotate: AnnotateSafe, Optimize: true, Threads: concThreads, SchedSeed: defaultSchedSeed, Adversarial: true},
			Treatment{Machine: machines[0], Annotate: AnnotateNone, Optimize: true, Threads: concThreads, SchedSeed: defaultSchedSeed, Adversarial: true},
		)
	}
	return ts
}

// RunTreatment compiles and executes p under one treatment. The returned
// error is a harness-level failure (the program did not parse, annotate or
// compile) and aborts the whole matrix; run-time faults are reported inside
// the TreatmentResult.
func RunTreatment(p *Program, t Treatment) (TreatmentResult, error) {
	return RunTreatmentContext(context.Background(), p, t, 0)
}

// RunTreatmentContext is RunTreatment under a context and an instruction
// budget (0 = interpreter default). Context expiry is a harness-level
// outcome — the treatment was not measured — never a violation.
func RunTreatmentContext(ctx context.Context, p *Program, t Treatment, maxInstrs uint64) (TreatmentResult, error) {
	return runTreatment(ctx, pipeline.NewRunner(artifact.New(0)), p, t, maxInstrs, nil)
}

// runTreatment builds one treatment on the matrix's shared stage-graph
// pipeline — treatments differing only in execution regime (or only in
// back-end options) reuse cached front-end stages — and executes it.
// Injected faults reach both the pipeline stages (via the build context)
// and the interpreter (via exec.Faults); an injected build failure is a
// treatment outcome, not a harness error, exactly like an injected
// run-time fault.
func runTreatment(ctx context.Context, runner *pipeline.Runner, p *Program, t Treatment, maxInstrs uint64, faults *faultinject.Set) (TreatmentResult, error) {
	r := TreatmentResult{Treatment: t}
	if err := ctx.Err(); err != nil {
		return r, fmt.Errorf("matrix: %w", err)
	}
	opts := gcsafe.Options{}
	switch t.Annotate {
	case AnnotateChecked:
		opts.Mode = gcsafe.ModeChecked
	case AnnotateTemporal:
		opts.Mode = gcsafe.ModeTemporal
	}
	opts.Elide = t.Elide
	bctx := ctx
	if faults != nil {
		bctx = faultinject.WithContext(ctx, faults)
	}
	b, err := runner.Build(bctx, "fuzz.c", p.Source, pipeline.Options{
		Annotate:        t.Annotate != AnnotateNone,
		AnnotateOptions: opts,
		Optimize:        t.Optimize,
		Post:            t.Post,
		Machine:         t.Machine,
		Engine:          t.Engine,
	})
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return r, fmt.Errorf("matrix: %w", err)
		}
		if errors.Is(err, faultinject.ErrInjected) {
			r.Err = err
			return r, nil
		}
		var se *pipeline.StageError
		if errors.As(err, &se) {
			switch se.Stage {
			case pipeline.StageAnnotate:
				return r, fmt.Errorf("annotate: %w", se.Err)
			case pipeline.StageCodegen, pipeline.StageOptimize, pipeline.StagePeephole:
				return r, fmt.Errorf("compile: %w", se.Err)
			default:
				return r, fmt.Errorf("parse: %w", se.Err)
			}
		}
		return r, err
	}
	prog := b.Prog
	exec := interp.Options{
		Config: t.Machine, Validate: true, MaxInstrs: maxInstrs, Faults: faults,
		Temporal: t.Annotate == AnnotateTemporal, Engine: t.Engine,
	}
	if t.Threads > 1 {
		exec.Threads = t.Threads
		exec.SchedSeed = t.SchedSeed
	}
	switch {
	case t.Adversarial && t.Threads > 1:
		// Concurrent adversary: a full collection at every allocation and at
		// every context switch, the hostile-interleaving regime.
		exec.CollectAtEveryAlloc = true
		exec.CollectAtSwitch = true
	case t.Adversarial:
		exec.GCEveryInstrs = 1
		exec.CollectAtEveryAlloc = true
	default:
		// Benign but nontrivial schedule: allocation-triggered collections
		// plus a mild asynchronous tick, so the collector genuinely runs.
		exec.GCEveryInstrs = 211
		exec.TriggerBytes = 8 << 10
	}
	res, err := interp.RunContext(ctx, prog, exec)
	if res != nil {
		r.Output = res.Output
		r.Instrs = res.Instrs
		r.Cycles = res.Cycles
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return r, fmt.Errorf("matrix: %w", err)
	}
	r.Err = err
	return r, nil
}

// RunMatrix runs p under every treatment and classifies the outcomes. The
// returned error reports harness-level failures only (programs that do not
// compile); treatment disagreements are data, in MatrixResult.
func RunMatrix(p *Program, opt MatrixOptions) (*MatrixResult, error) {
	return RunMatrixContext(context.Background(), p, opt)
}

// RunMatrixContext is RunMatrix under a context: the deadline bounds the
// whole matrix, including each treatment's interpreter run.
//
// Treatments execute concurrently (MatrixOptions.Parallel wide) into a
// positional slice, and classification then walks that slice in treatment
// order — so Results ordering, the first-reported harness error, and
// StopOnViolation truncation are all exactly what a sequential run
// produces. A width of 1 runs fully inline.
func RunMatrixContext(ctx context.Context, p *Program, opt MatrixOptions) (*MatrixResult, error) {
	m := &MatrixResult{Program: p}
	ts := Treatments(opt)
	for i := range ts {
		ts[i].Engine = opt.Engine
	}
	// Engine twins: the whole cube again on the other backend. Every
	// simulated quantity must match the base run exactly; see
	// MatrixOptions.SkipEngineTwins for why fault campaigns opt out.
	var twins []Treatment
	if !opt.SkipEngineTwins && opt.Faults == nil {
		twinEngine := threaded.Name
		if opt.Engine == threaded.Name {
			twinEngine = engine.DefaultName
		}
		twins = Treatments(opt)
		for i := range twins {
			twins[i].Engine = twinEngine
		}
	}
	results := make([]TreatmentResult, len(ts))
	twinResults := make([]TreatmentResult, len(twins))
	errs := make([]error, len(ts)+len(twins))
	width := opt.Parallel
	if width <= 0 {
		width = par.Default()
	}
	// One pipeline per matrix: the ~30 treatments of one program share a
	// front end (and often whole compiled programs) through the stage
	// cache; concurrent treatments coalesce per stage via singleflight.
	runner := pipeline.NewRunner(artifact.New(0))
	par.ForEach(width, len(ts)+len(twins), func(i int) {
		if i < len(ts) {
			results[i], errs[i] = runTreatment(ctx, runner, p, ts[i], opt.MaxInstrs, opt.Faults)
		} else {
			twinResults[i-len(ts)], errs[i] = runTreatment(ctx, runner, p, twins[i-len(ts)], opt.MaxInstrs, opt.Faults)
		}
	})
	for i, t := range ts {
		if err := errs[i]; err != nil {
			return m, fmt.Errorf("%s [%s]: %w", p.Label, t.Name(), err)
		}
	}
	for i, t := range twins {
		if err := errs[len(ts)+i]; err != nil {
			return m, fmt.Errorf("%s [%s]: %w", p.Label, t.Name(), err)
		}
	}
	m.EngineDivergences = compareEngines(ts, results, twins, twinResults)
	for i, t := range ts {
		r := results[i]
		m.Results = append(m.Results, r)
		if t.Annotate == AnnotateTemporal && p.TemporalHazards > 0 {
			// The program seeds a use-after-free or double-free: the
			// temporal checker is required to fire. Anything else —
			// agreement included — is a missed detection, hence a violation.
			if IsTemporalFault(r.Err) {
				m.TemporalDetections = append(m.TemporalDetections, r)
				continue
			}
			m.Violations = append(m.Violations, r)
			if opt.StopOnViolation {
				return m, nil
			}
			continue
		}
		if r.Agreed(p.Want) {
			continue
		}
		if r.MustAgree() {
			m.Violations = append(m.Violations, r)
			if opt.StopOnViolation {
				return m, nil
			}
		} else {
			m.UnsafeFailures = append(m.UnsafeFailures, r)
		}
	}
	return m, nil
}

// compareEngines pairs each base treatment with its engine twin and
// reports every simulated quantity that differs. Fault comparison is by
// rendered error text: FaultError carries the function, pc and message,
// so identical text means the two engines faulted at the same
// instruction for the same reason.
func compareEngines(ts []Treatment, base []TreatmentResult, twins []Treatment, twinResults []TreatmentResult) []EngineDivergence {
	var out []EngineDivergence
	for i := range twins {
		b, w := base[i], twinResults[i]
		div := func(field, bv, wv string) {
			out = append(out, EngineDivergence{
				Treatment: ts[i], TwinEngine: twins[i].Engine,
				Field: field, Base: bv, Twin: wv,
			})
		}
		if b.Output != w.Output {
			div("output", b.Output, w.Output)
		}
		if be, we := errText(b.Err), errText(w.Err); be != we {
			div("error", be, we)
		}
		if b.Instrs != w.Instrs {
			div("instrs", fmt.Sprint(b.Instrs), fmt.Sprint(w.Instrs))
		}
		if b.Cycles != w.Cycles {
			div("cycles", fmt.Sprint(b.Cycles), fmt.Sprint(w.Cycles))
		}
	}
	return out
}

func errText(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// Describe renders a violation report: the treatment, what was expected,
// what happened, and the program.
func Describe(p *Program, rs []TreatmentResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s (ops %s):\n", p.Label, strings.Join(p.Ops, ","))
	for _, r := range rs {
		fmt.Fprintf(&b, "  [%s] ", r.Name())
		if r.Err != nil {
			fmt.Fprintf(&b, "faulted: %v\n", r.Err)
		} else {
			fmt.Fprintf(&b, "output diverged:\n    got:  %q\n    want: %q\n", r.Output, p.Want)
		}
	}
	b.WriteString("source:\n")
	b.WriteString(p.Source)
	return b.String()
}
