package fuzz

import (
	"testing"
)

// TestMatrixParallelDeterministic pins RunMatrix's width-independence: the
// classified result of a matrix run — result order, outputs, fault texts,
// violation and unsafe-failure partitions — is identical whether
// treatments run inline or eight wide. Run under -race (make race) this
// also exercises the fan-out for data races.
func TestMatrixParallelDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 7, 1991} {
		p := Generate(seed, 8)
		seq, err := RunMatrix(p, MatrixOptions{Parallel: 1})
		if err != nil {
			t.Fatalf("seed %d sequential: %v", seed, err)
		}
		par, err := RunMatrix(p, MatrixOptions{Parallel: 8})
		if err != nil {
			t.Fatalf("seed %d parallel: %v", seed, err)
		}
		compareResults(t, seed, "Results", seq.Results, par.Results)
		compareResults(t, seed, "Violations", seq.Violations, par.Violations)
		compareResults(t, seed, "UnsafeFailures", seq.UnsafeFailures, par.UnsafeFailures)
		compareResults(t, seed, "TemporalDetections", seq.TemporalDetections, par.TemporalDetections)
	}
}

// TestMatrixParallelDeterministicConcurrent pins the same width-independence
// on a program that exercises both new checker columns at once: the matrix
// of a program seeding temporal hazards AND a worker-thread escape must be
// byte-identical inline and eight wide — concurrent-mutator interleaving is
// a function of (program, seed) only, never of host scheduling.
func TestMatrixParallelDeterministicConcurrent(t *testing.T) {
	var seed int64 = -1
	for s := int64(0); s < 500; s++ {
		p := Generate(s, 8)
		if p.TemporalHazards > 0 && p.RaceHazards > 0 {
			seed = s
			break
		}
	}
	if seed < 0 {
		t.Fatalf("no program with both temporal and race hazards in 500 seeds")
	}
	p := Generate(seed, 8)
	seq, err := RunMatrix(p, MatrixOptions{Parallel: 1})
	if err != nil {
		t.Fatalf("seed %d sequential: %v", seed, err)
	}
	par, err := RunMatrix(p, MatrixOptions{Parallel: 8})
	if err != nil {
		t.Fatalf("seed %d parallel: %v", seed, err)
	}
	compareResults(t, seed, "Results", seq.Results, par.Results)
	compareResults(t, seed, "Violations", seq.Violations, par.Violations)
	compareResults(t, seed, "UnsafeFailures", seq.UnsafeFailures, par.UnsafeFailures)
	compareResults(t, seed, "TemporalDetections", seq.TemporalDetections, par.TemporalDetections)
	if len(seq.TemporalDetections) == 0 {
		t.Fatalf("seed %d: no temporal detections despite %d seeded hazards", seed, p.TemporalHazards)
	}
}

func compareResults(t *testing.T, seed int64, what string, a, b []TreatmentResult) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("seed %d: %s length %d sequential vs %d parallel", seed, what, len(a), len(b))
	}
	errText := func(err error) string {
		if err == nil {
			return ""
		}
		return err.Error()
	}
	for i := range a {
		if a[i].Name() != b[i].Name() || a[i].Output != b[i].Output || errText(a[i].Err) != errText(b[i].Err) {
			t.Fatalf("seed %d: %s[%d] diverges:\nsequential: %s %q %q\nparallel:   %s %q %q",
				seed, what, i,
				a[i].Name(), a[i].Output, errText(a[i].Err),
				b[i].Name(), b[i].Output, errText(b[i].Err))
		}
	}
}
