package fuzz

import (
	"fmt"
	"math/rand"
)

// Random C expression generation, shared between the program generator
// (constant expressions whose value the model must predict) and the
// parser<->printer round-trip property tests (expressions over declared
// names whose printed form must reach a fixpoint).

// ExprGen generates random C expression texts.
type ExprGen struct{ src source }

// NewExprGen returns a generator driven by r.
func NewExprGen(r *rand.Rand) *ExprGen {
	return &ExprGen{src: randAdapter{r}}
}

// NewExprGenSeed returns a deterministic generator from a bare seed.
func NewExprGenSeed(seed int64) *ExprGen {
	return &ExprGen{src: newPRNG(seed)}
}

type randAdapter struct{ r *rand.Rand }

func (a randAdapter) intn(n int) int { return a.r.Intn(n) }

// Const returns a random constant expression and its value under C
// semantics on the simulated 32-bit machine: every operation evaluates in
// int32 with wraparound, shifts mask their count to 5 bits, and >> is
// arithmetic — exactly matching the parser's constant evaluator and the
// compiler's constant folder. Division and remainder are never generated
// (their well-definedness depends on the operand values).
func (g *ExprGen) Const(depth int) (string, int32) {
	return constExpr(g.src, depth)
}

// Expr returns a random expression over the given leaf texts (variable
// names, member accesses...); integer literals are mixed in. The result is
// syntactically valid but not necessarily type-correct — round-trip
// callers skip texts that fail to parse.
func (g *ExprGen) Expr(depth int, leaves []string) string {
	return nameExpr(g.src, depth, leaves)
}

var binOps = []string{"+", "-", "*", "&", "|", "^", "<<", ">>",
	"==", "!=", "<", ">", "<=", ">="}

func constExpr(src source, depth int) (string, int32) {
	if depth <= 0 || src.intn(3) == 0 {
		v := int32(src.intn(256))
		return fmt.Sprintf("%d", v), v
	}
	switch src.intn(8) {
	case 0: // unary minus
		t, v := constExpr(src, depth-1)
		return "(-" + t + ")", -v
	case 1: // bitwise not
		t, v := constExpr(src, depth-1)
		return "(~" + t + ")", ^v
	case 2: // logical not
		t, v := constExpr(src, depth-1)
		return "(!" + t + ")", b32(v == 0)
	case 3: // conditional
		c, cv := constExpr(src, depth-1)
		a, av := constExpr(src, depth-1)
		b, bv := constExpr(src, depth-1)
		r := bv
		if cv != 0 {
			r = av
		}
		return "(" + c + " ? " + a + " : " + b + ")", r
	default:
		x, xv := constExpr(src, depth-1)
		op := binOps[src.intn(len(binOps))]
		var y string
		var yv int32
		if op == "<<" || op == ">>" {
			// keep shift counts in range as written
			yv = int32(src.intn(31))
			y = fmt.Sprintf("%d", yv)
		} else {
			y, yv = constExpr(src, depth-1)
		}
		return "(" + x + " " + op + " " + y + ")", evalBin(op, xv, yv)
	}
}

// evalBin applies one C binary operator with the machine's int32
// semantics.
func evalBin(op string, x, y int32) int32 {
	ux, uy := uint32(x), uint32(y)
	switch op {
	case "+":
		return int32(ux + uy)
	case "-":
		return int32(ux - uy)
	case "*":
		return int32(ux * uy)
	case "&":
		return x & y
	case "|":
		return x | y
	case "^":
		return x ^ y
	case "<<":
		return int32(ux << (uy & 31))
	case ">>":
		return x >> (uy & 31)
	case "==":
		return b32(x == y)
	case "!=":
		return b32(x != y)
	case "<":
		return b32(x < y)
	case ">":
		return b32(x > y)
	case "<=":
		return b32(x <= y)
	case ">=":
		return b32(x >= y)
	}
	panic("fuzz: unknown operator " + op)
}

func b32(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

var nameOps = append(append([]string{}, binOps...), "&&", "||")

func nameExpr(src source, depth int, leaves []string) string {
	if depth <= 0 || src.intn(4) == 0 {
		if src.intn(2) == 0 || len(leaves) == 0 {
			return fmt.Sprintf("%d", src.intn(1000))
		}
		return leaves[src.intn(len(leaves))]
	}
	switch src.intn(7) {
	case 0:
		return "(-" + nameExpr(src, depth-1, leaves) + ")"
	case 1:
		return "(~" + nameExpr(src, depth-1, leaves) + ")"
	case 2:
		return "(!" + nameExpr(src, depth-1, leaves) + ")"
	case 3:
		return "(" + nameExpr(src, depth-1, leaves) + " ? " +
			nameExpr(src, depth-1, leaves) + " : " + nameExpr(src, depth-1, leaves) + ")"
	case 4:
		return "(" + nameExpr(src, depth-1, leaves) + ", " + nameExpr(src, depth-1, leaves) + ")"
	default:
		op := nameOps[src.intn(len(nameOps))]
		return "(" + nameExpr(src, depth-1, leaves) + " " + op + " " +
			nameExpr(src, depth-1, leaves) + ")"
	}
}
