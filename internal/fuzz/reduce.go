package fuzz

import (
	"strings"

	"gcsafety/internal/cc/parser"
)

// Test-case reduction: before a failing program is reported it is shrunk
// by statement deletion, delta-debugging style. The generator emits one
// statement per line (and braces on their own or on statement lines), so
// line deletion is statement/expression deletion: dropping a call site,
// dropping a whole op function, dropping a helper nobody calls. Candidates
// that no longer parse are rejected without consulting the predicate, so
// the reducer can blindly try any deletion.

// Reduce shrinks src to a (locally) minimal program that still satisfies
// pred. pred must hold for src itself; if it does not, src is returned
// unchanged. pred is only ever called with programs that parse.
func Reduce(src string, pred func(candidate string) bool) string {
	if !pred(src) {
		return src
	}
	lines := strings.Split(src, "\n")
	// ddmin over line chunks: repeatedly try to delete runs of lines,
	// halving the run length until single-line granularity, and restart
	// whenever a pass made progress (a deletion can unlock further ones —
	// removing a call site makes its op function deletable).
	for {
		progress := false
		for chunk := len(lines) / 2; chunk >= 1; chunk /= 2 {
			for start := 0; start+chunk <= len(lines); {
				cand := make([]string, 0, len(lines)-chunk)
				cand = append(cand, lines[:start]...)
				cand = append(cand, lines[start+chunk:]...)
				text := strings.Join(cand, "\n")
				if parses(text) && pred(text) {
					lines = cand
					progress = true
				} else {
					start += chunk
				}
			}
		}
		if !progress {
			break
		}
	}
	return strings.Join(lines, "\n")
}

func parses(src string) bool {
	_, err := parser.Parse("reduce.c", src)
	return err == nil
}

// CountLines reports the number of non-blank source lines — the measure of
// reduction quality used in reports.
func CountLines(src string) int {
	n := 0
	for _, l := range strings.Split(src, "\n") {
		if strings.TrimSpace(l) != "" {
			n++
		}
	}
	return n
}

// ReduceViolation minimizes a program for which the matrix reported a
// violation (or an unsafe failure, when hunting those): the predicate
// re-runs the single failing treatment and keeps the candidate when it
// still disagrees with the model in the same way (fault vs divergence).
// The model output of a candidate is not re-derivable from text alone, so
// the predicate compares against a fresh generation-free criterion: a
// fault must stay a fault with the same fault class; a divergence must
// stay a divergence against the reference (-g unannotated) build's output.
func ReduceViolation(p *Program, bad TreatmentResult) string {
	wasReclamation := IsReclamationFault(bad.Err)
	wasFault := bad.Err != nil
	pred := func(candidate string) bool {
		cp := &Program{Label: p.Label + " (reduced)", Source: candidate}
		r, err := RunTreatment(cp, bad.Treatment)
		if err != nil {
			return false
		}
		if wasFault {
			if r.Err == nil {
				return false
			}
			if wasReclamation {
				return IsReclamationFault(r.Err)
			}
			return true
		}
		// Divergence: compare against the debuggable unannotated build,
		// which stands in for the model on reduced candidates.
		ref, err := RunTreatment(cp, Treatment{Machine: bad.Machine})
		if err != nil || ref.Err != nil {
			return false
		}
		return r.Err == nil && r.Output != ref.Output
	}
	return Reduce(p.Source, pred)
}
