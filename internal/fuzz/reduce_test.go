package fuzz

import (
	"strings"
	"testing"
)

func TestReduceReturnsInputWhenPredicateFailsOnIt(t *testing.T) {
	src := "int main() { return 0; }\n"
	got := Reduce(src, func(string) bool { return false })
	if got != src {
		t.Fatalf("Reduce modified a program the predicate rejects")
	}
}

func TestReduceDropsIrrelevantStatements(t *testing.T) {
	src := `int unused() {
    return 42;
}
int main() {
    int a = 1;
    int b = 2;
    print_int(7);
    print_int(a + b);
    return 0;
}
`
	pred := func(c string) bool { return strings.Contains(c, "print_int(7)") }
	got := Reduce(src, pred)
	if !pred(got) {
		t.Fatalf("reduced program no longer satisfies the predicate:\n%s", got)
	}
	if strings.Contains(got, "a + b") {
		t.Fatalf("reducer kept deletable statements:\n%s", got)
	}
	if CountLines(got) > 4 {
		t.Fatalf("reduced program still %d lines:\n%s", CountLines(got), got)
	}
}

// The acceptance property: a seeded known-bad program (one whose
// unannotated optimized build suffers premature reclamation under the
// adversarial schedule) shrinks to a straightforwardly readable repro.
func TestReduceShrinksKnownBadProgram(t *testing.T) {
	p, bad := findKnownBad(t, 200)
	before := CountLines(p.Source)
	reduced := ReduceViolation(p, bad)
	after := CountLines(reduced)
	t.Logf("reduced %d lines to %d:\n%s", before, after, reduced)
	if after > 15 {
		t.Fatalf("reduced repro still %d non-blank lines (want <= 15):\n%s", after, reduced)
	}
	// The reduced program must still exhibit the fault.
	r, err := RunTreatment(&Program{Label: "reduced", Source: reduced}, bad.Treatment)
	if err != nil {
		t.Fatalf("reduced program no longer compiles: %v", err)
	}
	if !IsReclamationFault(r.Err) {
		t.Fatalf("reduced program no longer faults: err=%v", r.Err)
	}
}
