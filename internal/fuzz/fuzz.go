// Package fuzz is the differential-fuzzing subsystem of the reproduction.
// It generates random well-defined C programs that exercise the paper's
// hazard catalogue — address-displacement folding (p[i-1000]), pointer
// walks with ++/-- (the GC_pre_incr/GC_post_incr patterns), one-past-the-
// end arithmetic, interior pointers into structs and arrays, and pointer
// values crossing function boundaries — each paired with a Go-side
// reference model of its output.
//
// The treatment-matrix runner (matrix.go) compiles every generated program
// under the full cross-product
//
//	{unannotated, safe, checked} x {-g, -O} x {peephole on/off} x machines
//
// and asserts that every treatment reproduces the model's output, with one
// deliberate exception: the unannotated optimized build, which the paper
// shows is NOT GC-safe, is allowed to fail and its failures are recorded
// rather than reported. Annotated optimized builds are additionally run
// under a maximally adversarial collection schedule (a forced collection at
// every allocation and between every two instructions) with the
// premature-reclamation detector armed.
//
// reduce.go holds a delta-debugging reducer that shrinks failing programs
// by statement deletion before they are reported, and the native fuzzing
// entry points FuzzDifferential / FuzzParserRoundtrip live in the package's
// tests. cmd/fuzzcheck drives long campaigns from the command line.
package fuzz

// source supplies the generator's random choices. Two implementations
// exist: a PRNG-backed one for deterministic seeded generation and a
// byte-stream one that lets `go test -fuzz` mutate program shapes directly.
type source interface {
	// intn returns a choice in [0, n). n must be positive.
	intn(n int) int
}

// prngSource is an xorshift32 choice stream (the same generator the
// simulated runtime's rand_next uses, but with an independent state).
type prngSource struct{ x uint32 }

func newPRNG(seed int64) *prngSource {
	x := uint32(seed)*2654435761 + 0x9E3779B9
	if x == 0 {
		x = 0x9E3779B9
	}
	return &prngSource{x: x}
}

func (p *prngSource) next() uint32 {
	x := p.x
	x ^= x << 13
	x ^= x >> 17
	x ^= x << 5
	p.x = x
	return x
}

func (p *prngSource) intn(n int) int { return int(p.next() % uint32(n)) }

// byteSource draws choices from a fuzzer-controlled byte string, so that
// mutating the input mutates the generated program incrementally. When the
// bytes run out it continues deterministically from a PRNG seeded by the
// consumed data, keeping every input a complete program.
type byteSource struct {
	data []byte
	pos  int
	tail prngSource
}

func newByteSource(data []byte) *byteSource {
	h := uint32(2166136261)
	for _, b := range data {
		h = (h ^ uint32(b)) * 16777619
	}
	if h == 0 {
		h = 0x9E3779B9
	}
	return &byteSource{data: data, tail: prngSource{x: h}}
}

func (s *byteSource) intn(n int) int {
	if s.pos < len(s.data) {
		b := s.data[s.pos]
		s.pos++
		return int(uint32(b) % uint32(n))
	}
	return int(s.tail.next() % uint32(n))
}
