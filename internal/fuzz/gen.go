package fuzz

import (
	"fmt"
	"strings"
)

// Program is one generated C translation unit together with the output its
// Go-side reference model predicts. Every compilation treatment of the
// program must produce exactly Want (premature reclamation in GC-unsafe
// treatments being the one tolerated cause of disagreement).
type Program struct {
	// Label identifies the generation parameters (seed or byte corpus).
	Label string
	// Source is the C translation unit.
	Source string
	// Want is the model-predicted standard output.
	Want string
	// Ops names the operations that were generated, in order.
	Ops []string
	// Hazards counts the operations drawn from the paper's hazard
	// catalogue (the ones an unannotated optimizer may miscompile into
	// GC-unsafe code).
	Hazards int
	// TemporalHazards counts operations that access storage after freeing
	// it (use-after-free, double-free). free is a no-op outside temporal
	// mode, so Want stays valid there; temporal treatments are required to
	// fault on these programs instead of reproducing Want.
	TemporalHazards int
	// RaceHazards counts hazard operations placed in worker-thread entry
	// functions: they only execute under concurrent-mutator treatments,
	// where an unannotated optimizer lets a collector running on another
	// thread's schedule point reclaim the object mid-use.
	RaceHazards int
}

// gen accumulates one program: C text on one side, the model on the other.
type gen struct {
	src   source
	funcs strings.Builder // generated op functions
	main  strings.Builder // statements of main
	out   strings.Builder // model-predicted output
	ops   []string
	nfn   int // op-function counter
	slots [8][]int
	// rng mirrors the simulated runtime's rand_next (xorshift32 starting
	// at 0x9E3779B9), so the model can predict dynamic values.
	rng         uint32
	hazards     int
	tempHazards int
	raceHazards int
	nthreads    int // 1 + worker functions emitted so far
}

// randNext mirrors interp's rand_next builtin.
func (g *gen) randNext() uint32 {
	x := g.rng
	x ^= x << 13
	x ^= x >> 17
	x ^= x << 5
	g.rng = x
	return x
}

// header declares the structures and helper functions shared by every
// generated program. cons/listsum/listlen are the linked-list vocabulary of
// the original differential tests; mkbuf returns a freshly allocated filled
// buffer across a function boundary.
const header = `struct node { int v; struct node *next; };
struct pair { int a; int b; };
struct node *slots[8];
struct node *cons(int v, struct node *rest) {
    struct node *n = (struct node *)GC_malloc(sizeof(struct node));
    n->v = v;
    n->next = rest;
    return n;
}
int listsum(struct node *l) {
    int s = 0;
    while (l) { s += l->v; l = l->next; }
    return s;
}
int listlen(struct node *l) {
    int n = 0;
    while (l) { n++; l = l->next; }
    return n;
}
char *mkbuf(int n, int fill) {
    char *b = (char *)GC_malloc(n);
    int j;
    for (j = 0; j < n; j++) b[j] = fill;
    return b;
}
`

// Generate builds one program from a deterministic seed. steps is the
// number of operations in the program body.
func Generate(seed int64, steps int) *Program {
	p := generate(newPRNG(seed), steps)
	p.Label = fmt.Sprintf("seed=%d steps=%d", seed, steps)
	return p
}

// GenerateBytes builds a program whose shape is controlled by a fuzzer's
// byte string: each byte decides one generator choice. The step count is
// derived from the data, bounded to keep programs small.
func GenerateBytes(data []byte) *Program {
	s := newByteSource(data)
	steps := 3 + s.intn(18)
	p := generate(s, steps)
	p.Label = fmt.Sprintf("bytes=%d steps=%d", len(data), steps)
	return p
}

func generate(src source, steps int) *Program {
	g := &gen{src: src, rng: 0x9E3779B9, nthreads: 1}
	for i := 0; i < steps; i++ {
		g.step()
	}
	// Programs with worker threads wait for them before the summary, so the
	// workers' heap traffic is fully ordered before the final observation.
	if g.nthreads > 1 {
		g.main.WriteString("    join_threads();\n")
	}
	// Final summary: the sums of all slot lists, so every program ends by
	// observing the whole reachable linked structure.
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&g.main, "    print_int(listsum(slots[%d])); print_str(\"|\");\n", i)
		fmt.Fprintf(&g.out, "%d|", sum(g.slots[i]))
	}
	var b strings.Builder
	b.WriteString(header)
	b.WriteString(g.funcs.String())
	b.WriteString("int main() {\n")
	b.WriteString(g.main.String())
	b.WriteString("    return 0;\n}\n")
	return &Program{
		Source:          b.String(),
		Want:            g.out.String(),
		Ops:             g.ops,
		Hazards:         g.hazards,
		TemporalHazards: g.tempHazards,
		RaceHazards:     g.raceHazards,
	}
}

func sum(xs []int) int {
	s := 0
	for _, v := range xs {
		s += v
	}
	return s
}

// step appends one random operation.
func (g *gen) step() {
	// Weighted op table: the linked-list operations carry the bulk of the
	// GC pressure and aliasing, the function ops carry the hazard
	// catalogue.
	type op struct {
		name   string
		weight int
		run    func()
	}
	ops := []op{
		{"push", 4, g.opPush},
		{"pop", 2, g.opPop},
		{"sum", 2, g.opSum},
		{"move", 2, g.opMove},
		{"len", 1, g.opLen},
		{"const", 1, g.opConst},
		{"disp", 3, g.opDisp},
		{"walk-read", 2, g.opWalkRead},
		{"walk-write", 1, g.opWalkWrite},
		{"walk-back", 1, g.opWalkBack},
		{"interior", 1, g.opInterior},
		{"interior-only", 1, g.opInteriorOnly},
		{"struct-array", 1, g.opStructArray},
		{"buf-sum", 1, g.opBufSum},
		{"uaf", 1, g.opUAF},
		{"double-free", 1, g.opDoubleFree},
		{"free", 1, g.opBenignFree},
		{"thread-escape", 1, g.opThreadEscape},
	}
	total := 0
	for _, o := range ops {
		total += o.weight
	}
	n := g.src.intn(total)
	for _, o := range ops {
		if n < o.weight {
			g.ops = append(g.ops, o.name)
			o.run()
			return
		}
		n -= o.weight
	}
}

// --- inline linked-list operations (migrated from the original ad-hoc
// generator in internal/interp/differential_test.go) ---

func (g *gen) opPush() {
	s := g.src.intn(8)
	v := g.src.intn(1000)
	fmt.Fprintf(&g.main, "    slots[%d] = cons(%d, slots[%d]);\n", s, v, s)
	g.slots[s] = append([]int{v}, g.slots[s]...)
}

func (g *gen) opPop() {
	s := g.src.intn(8)
	fmt.Fprintf(&g.main, "    if (slots[%d]) slots[%d] = slots[%d]->next;\n", s, s, s)
	if len(g.slots[s]) > 0 {
		g.slots[s] = g.slots[s][1:]
	}
}

func (g *gen) opSum() {
	s := g.src.intn(8)
	fmt.Fprintf(&g.main, "    print_int(listsum(slots[%d])); print_str(\" \");\n", s)
	fmt.Fprintf(&g.out, "%d ", sum(g.slots[s]))
}

func (g *gen) opMove() {
	s, d := g.src.intn(8), g.src.intn(8)
	fmt.Fprintf(&g.main, "    slots[%d] = slots[%d];\n", d, s)
	g.slots[d] = g.slots[s]
}

func (g *gen) opLen() {
	s := g.src.intn(8)
	pressure := 16 + g.src.intn(200)
	fmt.Fprintf(&g.main, "    print_int(listlen(slots[%d])); GC_malloc(%d); print_str(\" \");\n", s, pressure)
	fmt.Fprintf(&g.out, "%d ", len(g.slots[s]))
}

// opConst prints a random constant expression; the model evaluates it with
// the same stepwise int32 semantics as the compiler's constant folder.
func (g *gen) opConst() {
	text, val := constExpr(g.src, 3)
	fmt.Fprintf(&g.main, "    print_int(%s); print_str(\" \");\n", text)
	fmt.Fprintf(&g.out, "%d ", val)
}

// --- hazard-catalogue operations, one function per instance ---

// fn opens a new op function and returns its name; the returned function
// must be called exactly once to close it and emit the call site.
func (g *gen) fn() (name string, done func()) {
	name = fmt.Sprintf("op_%d", g.nfn)
	g.nfn++
	fmt.Fprintf(&g.funcs, "int %s() {\n", name)
	return name, func() {
		g.funcs.WriteString("    return 0;\n}\n")
		fmt.Fprintf(&g.main, "    %s();\n", name)
	}
}

// opDisp is the paper's opening example: the final reference to a fresh
// object is the subscript p[i - C] with a dynamic index, which displacement
// reassociation rewrites into `p = p - C; ... p[i]` — and between those two
// instructions there is no recognizable pointer to the object. The indices
// are derived from one rand_next draw so that the write and the read hit
// the same (well-defined) element.
func (g *gen) opDisp() {
	g.hazards++
	d := 100 + g.src.intn(800)  // write displacement
	c := 200 + g.src.intn(1300) // folded constant
	size := d + 256 + 8 + g.src.intn(256)
	v := 1 + g.src.intn(119)
	t := int(g.randNext() & 255)
	_, done := g.fn()
	fmt.Fprintf(&g.funcs, `    int t = rand_next() & 255;
    int i = t + %d;
    int k = t + %d;
    char *p = (char *)GC_malloc(%d);
    p[k] = %d;
    print_int(p[i - %d]); print_str(" ");
`, c+d, d, size, v, c)
	done()
	_ = t // the written element is re-read: output is v regardless of t
	fmt.Fprintf(&g.out, "%d ", v)
}

// opWalkRead walks a function-returned buffer with a post-incremented
// pointer up to a one-past-the-end limit (GC_post_incr in checked mode).
func (g *gen) opWalkRead() {
	g.hazards++
	n := 8 + g.src.intn(33)
	f := 1 + g.src.intn(5)
	_, done := g.fn()
	fmt.Fprintf(&g.funcs, `    char *c = mkbuf(%d, %d);
    char *end = c + %d;
    int s = 0;
    while (c < end) { s = s + *c; c++; }
    print_int(s); print_str(" ");
`, n, f, n)
	done()
	fmt.Fprintf(&g.out, "%d ", n*f)
}

// opWalkWrite fills a buffer through one alias and re-reads it through
// another, with all three pointers (base, cursor, limit) into one object.
func (g *gen) opWalkWrite() {
	g.hazards++
	n := 8 + g.src.intn(33)
	f := 1 + g.src.intn(5)
	_, done := g.fn()
	fmt.Fprintf(&g.funcs, `    char *b = (char *)GC_malloc(%d);
    char *c = b;
    char *end = b + %d;
    int s = 0;
    while (c < end) { *c = %d; c++; }
    for (c = b; c < end; c++) s = s + *c;
    print_int(s); print_str(" ");
`, n, n, f)
	done()
	fmt.Fprintf(&g.out, "%d ", n*f)
}

// opWalkBack starts one past the end and pre-decrements down to the base
// (the GC_pre_incr pattern of the paper's debugging mode).
func (g *gen) opWalkBack() {
	g.hazards++
	n := 8 + g.src.intn(33)
	f := 1 + g.src.intn(5)
	_, done := g.fn()
	fmt.Fprintf(&g.funcs, `    char *b = mkbuf(%d, %d);
    char *c = b + %d;
    int s = 0;
    while (c > b) { c--; s = s + *c; }
    print_int(s); print_str(" ");
`, n, f, n)
	done()
	fmt.Fprintf(&g.out, "%d ", n*f)
}

// opInterior takes an interior pointer into a heap struct and uses both the
// base pointer and the interior pointer across an allocation.
func (g *gen) opInterior() {
	g.hazards++
	x := g.src.intn(200)
	y := g.src.intn(200)
	pressure := 16 + g.src.intn(100)
	_, done := g.fn()
	fmt.Fprintf(&g.funcs, `    struct pair *pr = (struct pair *)GC_malloc(sizeof(struct pair));
    int *ip = &pr->b;
    pr->a = %d;
    *ip = %d;
    GC_malloc(%d);
    print_int(pr->a + *ip); print_str(" ");
`, x, y, pressure)
	done()
	fmt.Fprintf(&g.out, "%d ", x+y)
}

// opInteriorOnly drops the base pointer: after `pr = 0` the interior
// pointer is the object's only root, which the collector's default
// configuration must recognize.
func (g *gen) opInteriorOnly() {
	g.hazards++
	z := g.src.intn(500)
	pressure := 16 + g.src.intn(100)
	_, done := g.fn()
	fmt.Fprintf(&g.funcs, `    struct pair *pr = (struct pair *)GC_malloc(sizeof(struct pair));
    int *ip = &pr->b;
    *ip = %d;
    pr = 0;
    GC_malloc(%d);
    print_int(*ip); print_str(" ");
`, z, pressure)
	done()
	fmt.Fprintf(&g.out, "%d ", z)
}

// opStructArray allocates an array of structs and keeps an interior
// pointer into a middle element's second field across the fill loop and an
// allocation.
func (g *gen) opStructArray() {
	g.hazards++
	k := 2 + g.src.intn(8)
	mid := g.src.intn(k)
	off := g.src.intn(100)
	sel := g.src.intn(k)
	pressure := 16 + g.src.intn(100)
	_, done := g.fn()
	fmt.Fprintf(&g.funcs, `    struct pair *a = (struct pair *)GC_malloc(%d * sizeof(struct pair));
    int *ip = &a[%d].b;
    int j;
    for (j = 0; j < %d; j++) { a[j].a = j; a[j].b = j + %d; }
    GC_malloc(%d);
    print_int(*ip + a[%d].a); print_str(" ");
`, k, mid, k, off, pressure, sel)
	done()
	fmt.Fprintf(&g.out, "%d ", (mid+off)+sel)
}

// opBufSum sums a function-returned buffer by index (exercising the
// optimizer's indexed-load folding rather than pointer induction).
func (g *gen) opBufSum() {
	g.hazards++
	n := 8 + g.src.intn(33)
	f := 1 + g.src.intn(5)
	pressure := 16 + g.src.intn(100)
	_, done := g.fn()
	fmt.Fprintf(&g.funcs, `    char *q = mkbuf(%d, %d);
    int j;
    int s = 0;
    for (j = 0; j < %d; j++) s = s + q[j];
    GC_malloc(%d);
    print_int(s); print_str(" ");
`, n, f, n, pressure)
	done()
	fmt.Fprintf(&g.out, "%d ", n*f)
}

// --- temporal-hazard and concurrent-mutator operations ---

// opUAF is the classic use-after-free: free an object, reallocate its size
// class (LIFO free lists recycle the address), then read through the stale
// pointer. Outside temporal mode free is a no-op, so the read still sees
// the first value and Want stays exact; temporal mode turns the read into a
// deterministic epoch violation — either "freed storage" (the slot is still
// dead) or "storage recycled" (the slot was reissued with a newer epoch).
func (g *gen) opUAF() {
	g.tempHazards++
	v1 := 1 + g.src.intn(500)
	v2 := 1 + g.src.intn(500)
	_, done := g.fn()
	fmt.Fprintf(&g.funcs, `    int *q = (int *)malloc(16);
    int *r;
    q[0] = %d;
    free(q);
    r = (int *)malloc(16);
    r[0] = %d;
    print_int(q[0]); print_str(" ");
`, v1, v2)
	done()
	fmt.Fprintf(&g.out, "%d ", v1)
}

// opDoubleFree frees the same object twice. The second free is invisible
// outside temporal mode (both are no-ops); in temporal mode GC_free finds
// no live object at the address and reports a double free.
func (g *gen) opDoubleFree() {
	g.tempHazards++
	x := g.src.intn(900)
	_, done := g.fn()
	fmt.Fprintf(&g.funcs, `    struct pair *d = (struct pair *)GC_malloc(sizeof(struct pair));
    d->a = %d;
    print_int(d->a); print_str(" ");
    free(d);
    free(d);
`, x)
	done()
	fmt.Fprintf(&g.out, "%d ", x)
}

// opBenignFree frees a buffer strictly after its last use: legal in every
// mode, so temporal treatments must reproduce Want exactly (the false-
// positive guard for the epoch checker). Deliberately not counted in any
// hazard tally.
func (g *gen) opBenignFree() {
	n := 8 + g.src.intn(33)
	f := 1 + g.src.intn(5)
	_, done := g.fn()
	fmt.Fprintf(&g.funcs, `    char *b = mkbuf(%d, %d);
    int j;
    int s = 0;
    for (j = 0; j < %d; j++) s = s + b[j];
    print_int(s); print_str(" ");
    free(b);
`, n, f, n)
	done()
	fmt.Fprintf(&g.out, "%d ", n*f)
}

// opThreadEscape plants the paper's displacement hazard in a worker-thread
// entry function: the worker writes through a fresh object, spins long
// enough to guarantee scheduling points, and re-reads through a subscript
// whose reassociated form holds only a far-displaced pointer. Under an
// unannotated optimizer a collection on another thread's schedule point can
// reclaim the object mid-loop; the worker's asserts turn that silent
// corruption into a detected fault. Workers never print and never draw from
// the shared rand_next stream, so Want is independent of the interleaving;
// getchar() at EOF supplies the optimizer-opaque zero instead. Only the
// first three workers can run under the matrix's 4-thread treatments, so
// later ones are emitted (harmlessly dormant) but not counted as hazards.
func (g *gen) opThreadEscape() {
	k := g.nthreads
	g.nthreads++
	if k <= 3 {
		g.raceHazards++
	}
	d := 100 + g.src.intn(400)
	c := 200 + g.src.intn(800)
	size := d + 256 + 8 + g.src.intn(128)
	v := 1 + g.src.intn(119)
	loop := 3000 + g.src.intn(2000)
	fmt.Fprintf(&g.funcs, `int thread%d() {
    int t = getchar() + 1;
    int i = t + %d;
    int k = t + %d;
    char *p = (char *)GC_malloc(%d);
    int j;
    int s = 0;
    p[k] = %d;
    for (j = 0; j < %d; j++) s = s + 1;
    assert_true(s == %d);
    assert_true(p[i - %d] == %d);
    return 0;
}
`, k, c+d, d, size, v, loop, loop, c, v)
}
