package fuzz

import (
	"errors"
	"fmt"
	"testing"

	"gcsafety/internal/cc/ast"
	"gcsafety/internal/cc/parser"
	"gcsafety/internal/faultinject"
	"gcsafety/internal/interp"
	"gcsafety/internal/machine"
	"gcsafety/internal/threaded"
)

// FuzzDifferential is the native fuzzing entry point for the differential
// property: the fuzzer mutates the byte string that drives the program
// generator, and every resulting program must agree with its model under
// every must-agree treatment. The boolean is the engine column: it picks
// which execution backend runs the base cube (the matrix pairs every
// treatment with a twin on the other engine either way, so both engines
// execute every program — the column just lets the fuzzer flip which side
// is the reference). One machine is fuzzed per input to keep the
// per-execution cost down; the seeded deterministic tests cover the full
// machine set. Run with:
//
//	go test -fuzz=FuzzDifferential -fuzztime=30s ./internal/fuzz
func FuzzDifferential(f *testing.F) {
	for _, threadedBase := range []bool{false, true} {
		f.Add([]byte{}, threadedBase)
		f.Add([]byte{0}, threadedBase)
		f.Add([]byte{6, 6, 6, 6}, threadedBase)
		f.Add([]byte{3, 7, 200, 41, 0, 0, 99, 5}, threadedBase)
		f.Add([]byte{255, 128, 64, 32, 16, 8, 4, 2, 1, 0, 255, 13}, threadedBase)
		f.Add([]byte("the quick brown fox jumps over the lazy dog"), threadedBase)
	}
	f.Fuzz(func(t *testing.T, data []byte, threadedBase bool) {
		if len(data) > 64 {
			data = data[:64]
		}
		var eng string
		if threadedBase {
			eng = threaded.Name
		}
		p := GenerateBytes(data)
		m, err := RunMatrix(p, MatrixOptions{
			Machines: []machine.Config{machine.SPARCstation10()},
			Engine:   eng,
		})
		if err != nil {
			t.Fatalf("harness failure: %v\n%s", err, p.Source)
		}
		if len(m.EngineDivergences) > 0 {
			t.Fatalf("engine divergence:\n%s\n%s", m.EngineDivergences[0], p.Source)
		}
		if len(m.Violations) > 0 {
			bad := m.Violations[0]
			reduced := ReduceViolation(p, bad)
			t.Fatalf("matrix violation (reduced to %d lines):\n%s\nreduced repro:\n%s",
				CountLines(reduced), Describe(p, m.Violations), reduced)
		}
	})
}

// probeFrame embeds a fuzzer-supplied expression in a translation unit that
// declares every name the round-trip generator uses, mirroring the frame in
// internal/cc/parser's round-trip tests.
const probeFrame = `struct st { int f; };
struct pt { int g; };
int fn(int x, int y);
int a; int b;
char *p;
int arr[10];
struct st s;
struct pt *q;
int probe() { return %s; }
`

func parseProbeExpr(text string) (ast.Expr, bool) {
	f, err := parser.Parse("probe.c", fmt.Sprintf(probeFrame, text))
	if err != nil {
		return nil, false
	}
	fd := f.FuncByName("probe")
	if fd == nil || len(fd.Body.Stmts) != 1 {
		return nil, false
	}
	ret, ok := fd.Body.Stmts[0].(*ast.Return)
	if !ok || ret.X == nil {
		return nil, false
	}
	return ret.X, true
}

// FuzzParserRoundtrip is the native fuzzing entry point for the printer:
// any expression the parser accepts must round-trip through PrintExpr to a
// fixpoint, and constant expressions must evaluate identically before and
// after. Run with:
//
//	go test -fuzz=FuzzParserRoundtrip -fuzztime=30s ./internal/fuzz
func FuzzParserRoundtrip(f *testing.F) {
	f.Add("a + b * 3")
	f.Add("(p[2] ? s.f : q->g) << 4")
	f.Add("fn(a, b) , ~arr[a & 7]")
	f.Add("-(-(-1))")
	g := NewExprGenSeed(1996)
	leaves := []string{"a", "b", "s.f", "q->g", "arr[a]", "p[b]"}
	for i := 0; i < 12; i++ {
		f.Add(g.Expr(4, leaves))
	}
	f.Fuzz(func(t *testing.T, text string) {
		if len(text) > 1024 {
			return
		}
		e1, ok := parseProbeExpr(text)
		if !ok {
			return // not a valid expression: out of scope
		}
		p1 := ast.PrintExpr(e1)
		e2, ok := parseProbeExpr(p1)
		if !ok {
			t.Fatalf("printed form does not re-parse:\n  original: %s\n  printed:  %s", text, p1)
		}
		p2 := ast.PrintExpr(e2)
		if p1 != p2 {
			t.Fatalf("print/parse not a fixpoint:\n  original: %s\n  first:    %s\n  second:   %s", text, p1, p2)
		}
		v1, const1 := parser.EvalConst(e1)
		v2, const2 := parser.EvalConst(e2)
		if const1 != const2 || (const1 && v1 != v2) {
			t.Fatalf("constant value drifted across round trip: %s: (%d,%v) vs (%d,%v)",
				text, v1, const1, v2, const2)
		}
	})
}

// faultFuzzSpecs is the rotation of injection specs the fault fuzzer
// draws from — one entry per fault-point-reachable error path in the
// interpreter/collector stack.
var faultFuzzSpecs = []string{
	"gc.alloc=error,p=0.3,msg=fuzz-oom",
	"gc.alloc=error,after=10,msg=fuzz-oom-late",
	"gc.collect.force=error,p=0.5",
	"interp.step=error,msg=fuzz-abort",
	"gc.alloc=error,p=0.1;gc.collect.force=error,p=0.3;interp.step=error,p=0.2",
	// Stage-graph build points (internal/pipeline): a firing rule fails
	// the treatment's build at that stage boundary, which must classify
	// exactly like an injected run-time fault. Error actions only — sleeps
	// would slow the fuzzer without adding coverage, and panics are the
	// chaos suite's job.
	"pipeline.parse=error,p=0.5,msg=fuzz-parse",
	"pipeline.annotate=error,p=0.5,msg=fuzz-annotate",
	"pipeline.codegen=error,p=0.4;pipeline.optimize=error,p=0.4",
	"pipeline.lex=error,p=0.3;pipeline.typecheck=error,p=0.3;pipeline.peephole=error,p=0.5",
	"pipeline.codegen=error,p=0.2;gc.alloc=error,p=0.2;interp.step=error,p=0.2",
}

// FuzzFaultInjection fuzzes the treatment matrix under injected faults:
// the generator bytes shape the program as in FuzzDifferential, and
// (sel, seed) pick a fault schedule. The property is that chaos in the
// simulated program never breaks the harness:
//
//   - RunMatrix classifies every outcome (no harness-level error);
//   - every faulting must-agree treatment traces back to the injection
//     (errors.Is ErrInjected) — a fault that does NOT is a genuine
//     collector or interpreter bug surfaced by the hostile schedule;
//   - a must-agree treatment that silently diverges (no error) under
//     error/latency-free state injection is likewise a genuine bug.
//
// Run with:
//
//	go test -fuzz=FuzzFaultInjection -fuzztime=30s ./internal/fuzz
func FuzzFaultInjection(f *testing.F) {
	// One seed per rotation entry, over allocation-heavy generator bytes
	// so gc.alloc and gc.collect.force are genuinely reachable.
	f.Add([]byte{6, 6, 6, 6}, byte(0), uint64(1))
	f.Add([]byte{3, 7, 200, 41, 0, 0, 99, 5}, byte(1), uint64(2))
	f.Add([]byte{255, 128, 64, 32, 16, 8, 4, 2, 1, 0, 255, 13}, byte(2), uint64(3))
	f.Add([]byte("the quick brown fox jumps over the lazy dog"), byte(3), uint64(4))
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9, 9, 9}, byte(4), uint64(5))
	f.Add([]byte{6, 6, 6, 6}, byte(5), uint64(6))
	f.Add([]byte{3, 7, 200, 41, 0, 0, 99, 5}, byte(6), uint64(7))
	f.Add([]byte{255, 128, 64, 32, 16, 8, 4, 2, 1, 0, 255, 13}, byte(7), uint64(8))
	f.Add([]byte("the quick brown fox jumps over the lazy dog"), byte(8), uint64(9))
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9, 9, 9}, byte(9), uint64(10))
	f.Fuzz(func(t *testing.T, data []byte, sel byte, seed uint64) {
		if len(data) > 48 {
			data = data[:48]
		}
		spec := faultFuzzSpecs[int(sel)%len(faultFuzzSpecs)]
		set, err := faultinject.Parse(spec, seed)
		if err != nil {
			t.Fatalf("rotation spec %q does not parse: %v", spec, err)
		}
		p := GenerateBytes(data)
		m, err := RunMatrix(p, MatrixOptions{
			Machines: []machine.Config{machine.SPARCstation10()},
			Faults:   set,
			// Bound each treatment so fuzzer-grown programs (whose forced
			// collections are quadratic in live data) cannot stall a run.
			MaxInstrs: 300_000,
		})
		if err != nil {
			t.Fatalf("harness failure under %q: %v\n%s", spec, err, p.Source)
		}
		for _, r := range m.Violations {
			if r.Err == nil {
				t.Fatalf("silent divergence under %q (not traceable to injection):\n%s\n%s",
					spec, Describe(p, []TreatmentResult{r}), p.Source)
			}
			if !errors.Is(r.Err, faultinject.ErrInjected) && !errors.Is(r.Err, interp.ErrInstrLimit) {
				t.Fatalf("organic fault under %q [%s]: %v\n%s",
					spec, r.Name(), r.Err, p.Source)
			}
		}
	})
}
