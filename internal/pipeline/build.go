package pipeline

import (
	"context"

	"gcsafety/internal/artifact"
	"gcsafety/internal/cc/ast"
	"gcsafety/internal/cc/lexer"
	"gcsafety/internal/cc/parser"
	"gcsafety/internal/codegen"
	"gcsafety/internal/gcsafe"
	"gcsafety/internal/liveness"
	"gcsafety/internal/machine"
	"gcsafety/internal/peephole"
	"gcsafety/internal/threaded"
)

// Options configures one walk of the stage graph. Only the stages a
// field feeds see it in their content keys: annotation options stop
// influencing keys at the Annotate stage boundary, the machine enters at
// Codegen, so builds differing only in late options share every earlier
// artifact.
type Options struct {
	// Annotate enables the GC-safety preprocessor stage.
	Annotate bool
	// AnnotateOptions configures the stage when enabled.
	AnnotateOptions gcsafe.Options
	// Optimize selects the -O compiler pipeline (-g otherwise).
	Optimize bool
	// Post enables the peephole postprocessor stage.
	Post bool
	// Machine is the target configuration.
	Machine machine.Config
	// DisableReassociation / DisableLoadFolding mirror the codegen
	// ablation switches.
	DisableReassociation bool
	DisableLoadFolding   bool
	// Engine names the execution backend the build feeds. Only the
	// closure-threaded engine has a build-time artifact (the Lower stage);
	// every other value leaves the graph — and every cache key — exactly
	// as it was before the engine axis existed.
	Engine string
}

// Result is one build's outputs. Everything in it may be shared with
// other builds through the artifact cache: callers must treat the
// program, the AST and the annotation result as immutable.
type Result struct {
	// Prog is the compiled (and, under Options.Post, postprocessed)
	// program.
	Prog *machine.Program
	// Annotate is the annotator's result (nil when annotation was
	// disabled).
	Annotate *gcsafe.Result
	// Peephole reports what the postprocessor changed (nil when
	// postprocessing was disabled).
	Peephole *peephole.Stats
	// Lowered is the closure-threaded engine's pre-compiled form of Prog
	// (nil unless Options.Engine selected it). Like every artifact it may
	// be shared between builds; lowered programs are immutable after
	// construction and safe for concurrent execution.
	Lowered *threaded.Program
	// File is the checked — and, when annotation ran, annotated — AST.
	File *ast.File
	// Report describes the walk: per-stage cache hits and durations.
	Report *BuildReport
}

// annotated is the Annotate stage's artifact: the mutated deep clone of
// the checked AST plus the annotator's diagnostics and rewritten source.
type annotated struct {
	file *ast.File
	res  *gcsafe.Result
}

// postprocessed is the Peephole stage's artifact.
type postprocessed struct {
	prog  *machine.Program
	stats peephole.Stats
}

// stageKey starts the content key of one stage: the stage's own version
// chained onto the upstream artifact's key. Option fingerprints are
// appended by the caller.
func stageKey(s Stage, upstream artifact.Key) *artifact.KeyBuilder {
	return artifact.NewKey("pipeline." + string(s)).Str(Version(s)).Str(string(upstream))
}

// annotateFields folds every annotator option into a key. Elide is folded
// only when set, so the classic (unelided) treatments keep the keys they
// had before the elision axis existed.
func annotateFields(b *artifact.KeyBuilder, o gcsafe.Options) *artifact.KeyBuilder {
	b = b.Int(int64(o.Mode)).
		Bool(o.NoCopySuppression).
		Bool(o.NoIncDecExpansion).
		Bool(o.BaseHeuristic).
		Bool(o.CallSiteOnly).
		Bool(o.StrictCastWarnings).
		Int(int64(o.Style))
	if o.Elide {
		b = b.Bool(true)
	}
	return b
}

// machineFields folds the full machine configuration — not just its name
// — into a key, so ad-hoc configs with colliding names cannot share
// artifacts.
func machineFields(b *artifact.KeyBuilder, cfg machine.Config) *artifact.KeyBuilder {
	return b.Str(cfg.Name).
		Int(int64(cfg.NumRegs)).
		Bool(cfg.TwoOperand).
		Bool(cfg.LoadIndexed).
		Uint(cfg.Costs.ALU).Uint(cfg.Costs.Mul).Uint(cfg.Costs.Div).
		Uint(cfg.Costs.Load).Uint(cfg.Costs.Store).Uint(cfg.Costs.Branch).
		Uint(cfg.Costs.CallRet).Uint(cfg.Costs.SPAdjust)
}

// frontEnd runs the treatment-independent prefix of the graph — Lex,
// Parse, Typecheck — and returns the Typecheck artifact and its key.
func (r *Runner) frontEnd(ctx context.Context, name, src string, rep *BuildReport) (*checked, artifact.Key, error) {
	klex := artifact.NewKey("pipeline." + string(StageLex)).Str(Version(StageLex)).Str(src).Sum()
	v, err := r.run(ctx, StageLex, klex, rep, func() (any, int64, error) {
		s := lexer.ScanAll(src)
		return s, int64(len(s.Tokens))*48 + 64, nil
	})
	if err != nil {
		return nil, "", &StageError{Stage: StageLex, Err: err}
	}
	scan := v.(*lexer.Scan)

	kparse := stageKey(StageParse, klex).Str(name).Sum()
	v, err = r.run(ctx, StageParse, kparse, rep, func() (any, int64, error) {
		f, err := parser.ParseTokens(name, src, scan.Replay())
		if err != nil {
			return nil, 0, err
		}
		return f, int64(len(src))*6 + 256, nil
	})
	if err != nil {
		return nil, "", &StageError{Stage: StageParse, Err: err}
	}
	file := v.(*ast.File)

	kcheck := stageKey(StageTypecheck, kparse).Sum()
	v, err = r.run(ctx, StageTypecheck, kcheck, rep, func() (any, int64, error) {
		ck, err := verify(file)
		if err != nil {
			return nil, 0, err
		}
		return ck, 128, nil
	})
	if err != nil {
		return nil, "", &StageError{Stage: StageTypecheck, Err: err}
	}
	return v.(*checked), kcheck, nil
}

// liveness runs the Liveness stage on a checked front end: the elision
// facts the annotator consults under Options.Elide. The analysis only
// reads the shared AST, so no clone is needed; the facts artifact is
// itself immutable and position-keyed, so it applies equally to the
// Annotate stage's deep clone.
func (r *Runner) liveness(ctx context.Context, ck *checked, kcheck artifact.Key, rep *BuildReport) (*liveness.Facts, artifact.Key, error) {
	klive := stageKey(StageLiveness, kcheck).Sum()
	v, err := r.run(ctx, StageLiveness, klive, rep, func() (any, int64, error) {
		facts := liveness.Analyze(ck.file)
		return facts, int64(facts.Units())*96 + 256, nil
	})
	if err != nil {
		return nil, "", &StageError{Stage: StageLiveness, Err: err}
	}
	return v.(*liveness.Facts), klive, nil
}

// annotate runs the Annotate stage on a checked front end. The compute
// deep-clones the shared AST before the annotator mutates it, so the
// Parse/Typecheck artifacts stay pristine for other treatments. Under
// opts.Elide the stage first walks through Liveness, and the annotate key
// chains off the liveness key so the artifact depends on both stage
// versions.
func (r *Runner) annotate(ctx context.Context, ck *checked, kcheck artifact.Key, opts gcsafe.Options, rep *BuildReport) (*annotated, artifact.Key, error) {
	upstream := kcheck
	var facts *liveness.Facts
	if opts.Elide {
		f, klive, err := r.liveness(ctx, ck, kcheck, rep)
		if err != nil {
			return nil, "", err
		}
		facts = f
		upstream = klive
	}
	kann := annotateFields(stageKey(StageAnnotate, upstream), opts).Sum()
	v, err := r.run(ctx, StageAnnotate, kann, rep, func() (any, int64, error) {
		clone := ck.file.Clone()
		res, err := gcsafe.AnnotateWithFacts(clone, opts, facts)
		if err != nil {
			return nil, 0, err
		}
		if opts.Elide {
			r.elision.considered.Add(uint64(res.Considered))
			r.elision.elided.Add(uint64(res.Elided))
			r.elision.elidedLive.Add(uint64(res.ElidedLive))
			r.elision.elidedBounds.Add(uint64(res.ElidedBounds))
		}
		return &annotated{file: clone, res: res}, int64(len(res.Output))*8 + 512, nil
	})
	if err != nil {
		return nil, "", &StageError{Stage: StageAnnotate, Err: err}
	}
	a := v.(*annotated)
	if opts.Elide && rep != nil {
		st := ElisionStat{
			Considered:   uint64(a.res.Considered),
			Elided:       uint64(a.res.Elided),
			ElidedLive:   uint64(a.res.ElidedLive),
			ElidedBounds: uint64(a.res.ElidedBounds),
		}
		st.Kept = st.Considered - st.Elided
		rep.Elision = &st
	}
	return a, kann, nil
}

// Annotate runs the graph up to and including the Annotate stage — the
// C-to-C preprocessor as a cached pipeline.
func (r *Runner) Annotate(ctx context.Context, name, src string, opts gcsafe.Options) (*gcsafe.Result, *BuildReport, error) {
	rep := &BuildReport{}
	ck, kcheck, err := r.frontEnd(ctx, name, src, rep)
	if err != nil {
		return nil, rep, err
	}
	a, _, err := r.annotate(ctx, ck, kcheck, opts, rep)
	if err != nil {
		return nil, rep, err
	}
	return a.res, rep, nil
}

// Build walks the full graph for one translation unit. Errors are
// *StageError values attributing the failure to a stage; they unwrap to
// the parser/annotator/codegen error (or to ctx.Err(), or to an injected
// fault) underneath.
func (r *Runner) Build(ctx context.Context, name, src string, opts Options) (*Result, error) {
	rep := &BuildReport{}
	res := &Result{Report: rep}

	ck, kfront, err := r.frontEnd(ctx, name, src, rep)
	if err != nil {
		return nil, err
	}
	file := ck.file
	if opts.Annotate {
		a, kann, err := r.annotate(ctx, ck, kfront, opts.AnnotateOptions, rep)
		if err != nil {
			return nil, err
		}
		file = a.file
		res.Annotate = a.res
		kfront = kann
	}
	res.File = file

	cgOpts := codegen.Options{
		Optimize:             opts.Optimize,
		Machine:              opts.Machine,
		DisableReassociation: opts.DisableReassociation,
		DisableLoadFolding:   opts.DisableLoadFolding,
	}
	kcg := machineFields(stageKey(StageCodegen, kfront).
		Bool(opts.Optimize).
		Bool(opts.DisableReassociation).
		Bool(opts.DisableLoadFolding), opts.Machine).Sum()
	v, err := r.run(ctx, StageCodegen, kcg, rep, func() (any, int64, error) {
		ir, err := codegen.Gen(file, cgOpts)
		if err != nil {
			return nil, 0, err
		}
		n := int64(len(ir.Data)) + 256
		for _, fn := range ir.Fns {
			n += int64(len(fn.Code)) * 40
		}
		return ir, n, nil
	})
	if err != nil {
		return nil, &StageError{Stage: StageCodegen, Err: err}
	}
	ir := v.(*codegen.IR)

	kopt := stageKey(StageOptimize, kcg).Sum()
	v, err = r.run(ctx, StageOptimize, kopt, rep, func() (any, int64, error) {
		prog := codegen.Backend(ir)
		return prog, int64(prog.Size())*40 + int64(len(prog.Data)) + 256, nil
	})
	if err != nil {
		return nil, &StageError{Stage: StageOptimize, Err: err}
	}
	res.Prog = v.(*machine.Program)
	kfinal := kopt

	if opts.Post {
		// The machine config feeding the postprocessor is already part of
		// kopt (via the Codegen key), so the chain alone keys this stage.
		kpeep := stageKey(StagePeephole, kopt).Sum()
		prog := res.Prog
		v, err = r.run(ctx, StagePeephole, kpeep, rep, func() (any, int64, error) {
			q := prog.Clone()
			st := peephole.Optimize(q, opts.Machine)
			return &postprocessed{prog: q, stats: st}, int64(q.Size())*40 + int64(len(q.Data)) + 256, nil
		})
		if err != nil {
			return nil, &StageError{Stage: StagePeephole, Err: err}
		}
		p := v.(*postprocessed)
		res.Prog = p.prog
		st := p.stats
		res.Peephole = &st
		kfinal = kpeep
	}

	if opts.Engine == threaded.Name {
		// Lower the final program into the closure-threaded engine's form.
		// The stage is gated on the engine selection rather than keyed by
		// it: builds for any other engine never reach this node, so every
		// pre-existing key stays byte-stable. Lowering depends on nothing
		// but the program, so the chained key is the whole key.
		klower := stageKey(StageLower, kfinal).Sum()
		prog := res.Prog
		v, err = r.run(ctx, StageLower, klower, rep, func() (any, int64, error) {
			lp := threaded.Lower(prog)
			return lp, int64(prog.Size())*48 + 512, nil
		})
		if err != nil {
			return nil, &StageError{Stage: StageLower, Err: err}
		}
		res.Lowered = v.(*threaded.Program)
	}
	return res, nil
}
