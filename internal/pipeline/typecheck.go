package pipeline

import (
	"fmt"

	"gcsafety/internal/cc/ast"
)

// checked is the Typecheck stage's artifact: the verified AST (shared
// with the Parse artifact — the verifier does not mutate) plus the
// counts the walk gathered.
type checked struct {
	file  *ast.File
	funcs int
	exprs int
	typed int
}

// verify is the Typecheck stage: the front end types and resolves during
// parsing, so this stage re-walks the checked tree and asserts the
// invariants every downstream stage assumes — declarations carry
// objects, and identifiers are resolved. It exists as its own stage (and
// cache entry) so the invariant is checked once per distinct source, not
// once per treatment, and so front-end changes can be versioned
// independently of parsing.
func verify(f *ast.File) (*checked, error) {
	ck := &checked{file: f}
	var bad []error
	for _, d := range f.Decls {
		switch d := d.(type) {
		case *ast.FuncDecl:
			if d.Obj == nil {
				bad = append(bad, fmt.Errorf("function declaration without object"))
				continue
			}
			ck.funcs++
		case *ast.VarDecl:
			if d.Obj == nil {
				bad = append(bad, fmt.Errorf("variable declaration without object"))
			} else if d.Obj.Type == nil {
				bad = append(bad, fmt.Errorf("variable %s without type", d.Obj.Name))
			}
		}
	}
	ast.Inspect(f, func(e ast.Expr) bool {
		ck.exprs++
		if e.Type() != nil {
			ck.typed++
		}
		if id, ok := e.(*ast.Ident); ok && id.Obj == nil {
			bad = append(bad, fmt.Errorf("unresolved identifier %s", id.Name))
			return false
		}
		return true
	})
	if len(bad) > 0 {
		return nil, fmt.Errorf("typecheck: %d invariant violations, first: %w", len(bad), bad[0])
	}
	return ck, nil
}
