// Package pipeline is the stage-graph compilation pipeline: the monolithic
// parse → annotate → compile → postprocess build path, split into an
// explicit DAG of stages
//
//	Lex → Parse → Typecheck → Liveness → Annotate(mode) → Codegen(machine) → Optimize → Peephole → Lower(engine)
//
// each of which declares typed input/output artifacts and a content key
// derived from its input keys, its own version string, and a fingerprint
// of the options it consumes. Stages run through a Runner on top of the
// content-addressed artifact cache (internal/artifact), so builds that
// differ only downstream — two treatments of one workload, or one
// treatment on three machines — share every upstream artifact: the
// measurement harness's 3 tables × 4 treatments × 3 machines execute one
// Lex/Parse/Typecheck per workload.
//
// Cached artifacts are shared between callers and therefore immutable by
// contract. The two mutating passes in the codebase are fenced off by
// copies: the Annotate stage deep-clones the checked AST (ast.File.Clone)
// before gcsafe.Annotate mutates it, and the Peephole stage clones the
// compiled program (machine.Program.Clone) before the in-place rewrite.
//
// Every stage is instrumented (per-stage duration and hit/miss/error
// counters, surfaced in gcsafed's /metrics and in the BuildReport),
// honors context cancellation at its boundary, and carries a fault
// injection point named "pipeline.<stage>" (internal/faultinject).
package pipeline

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Stage identifies one node of the compilation DAG.
type Stage string

// The stages, in dependency order. Liveness runs only for elided
// treatments, Annotate is skipped when annotation is disabled, Peephole
// when postprocessing is disabled, and Lower runs only for builds that
// target the closure-threaded engine; the other five run on every build.
const (
	StageLex       Stage = "lex"
	StageParse     Stage = "parse"
	StageTypecheck Stage = "typecheck"
	StageLiveness  Stage = "liveness"
	StageAnnotate  Stage = "annotate"
	StageCodegen   Stage = "codegen"
	StageOptimize  Stage = "optimize"
	StagePeephole  Stage = "peephole"
	StageLower     Stage = "lower"
)

// Stages returns every stage in dependency order.
func Stages() []Stage {
	return []Stage{
		StageLex, StageParse, StageTypecheck, StageLiveness, StageAnnotate,
		StageCodegen, StageOptimize, StagePeephole, StageLower,
	}
}

// FaultPoint is the stage's fault injection point name
// (see internal/faultinject).
func (s Stage) FaultPoint() string { return "pipeline." + string(s) }

// index returns the stage's position in Stages(), for counter arrays.
func (s Stage) index() int {
	for i, st := range Stages() {
		if st == s {
			return i
		}
	}
	panic(fmt.Sprintf("pipeline: unknown stage %q", s))
}

// Stage versions. Each stage's implementation version participates in its
// content key, so shipping a changed stage invalidates exactly that stage
// and everything downstream of it — upstream artifacts stay warm. Bump a
// stage's version whenever its output for unchanged inputs can change.
var (
	versionMu sync.RWMutex
	versions  = map[Stage]string{
		StageLex:       "v1",
		StageParse:     "v1",
		StageTypecheck: "v1",
		StageLiveness:  "v1",
		StageAnnotate:  "v1",
		// v2: Call instructions carry the source line of the call site
		// (machine.Instr.Line), so cached v1 codegen artifacts — which lack
		// the field — must not satisfy builds that feed heap snapshots.
		StageCodegen:  "v2",
		StageOptimize: "v1",
		StagePeephole: "v1",
		StageLower:    "v1",
	}
)

// Version returns the stage's current implementation version string.
func Version(s Stage) string {
	versionMu.RLock()
	defer versionMu.RUnlock()
	return versions[s]
}

// SetVersionForTest overrides one stage's version and returns a restore
// function; tests use it to prove that a version bump invalidates cached
// artifacts.
func SetVersionForTest(s Stage, v string) (restore func()) {
	versionMu.Lock()
	old := versions[s]
	versions[s] = v
	fingerprint.Store(computeFingerprint())
	versionMu.Unlock()
	return func() {
		versionMu.Lock()
		versions[s] = old
		fingerprint.Store(computeFingerprint())
		versionMu.Unlock()
	}
}

// fingerprint caches VersionFingerprint's digest: versions change only
// through SetVersionForTest, while the fingerprint is read on every bench
// cell-cache lookup — hot enough that recomputing it per call shows up in
// the warm-table benchmarks.
var fingerprint atomic.Value // string

func init() { fingerprint.Store(computeFingerprint()) }

// computeFingerprint digests the version table; callers must hold
// versionMu (or be init).
func computeFingerprint() string {
	names := make([]string, 0, len(versions))
	for s := range versions {
		names = append(names, string(s))
	}
	sort.Strings(names)
	out := ""
	for _, n := range names {
		out += n + "=" + versions[Stage(n)] + ";"
	}
	return out
}

// VersionFingerprint digests every stage version into one stable string,
// for callers (the bench cell cache) whose own keys must change whenever
// any stage changes.
func VersionFingerprint() string {
	return fingerprint.Load().(string)
}
