package pipeline

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"gcsafety/internal/artifact"
	"gcsafety/internal/machine"
	"gcsafety/internal/peephole"
)

// Wire kinds for the stage artifacts that survive a process restart.
// Only the compiled-program artifacts (Optimize, Peephole) are
// persistable: the front-end artifacts — token streams, ASTs, IR — are
// pointer graphs that gob cannot round-trip, and they rebuild quickly;
// they simply stay memory-only.
const (
	kindProg = "pipeline.prog/v1"
	kindPost = "pipeline.post/v1"
)

type wireProg struct {
	Prog *machine.Program
}

type wirePost struct {
	Prog  *machine.Program
	Stats peephole.Stats
}

// progAccountedSize is the LRU-budget charge of a compiled program; the
// same formula the Optimize/Peephole stages use, so a disk-restored
// entry charges the budget exactly like a freshly computed one.
func progAccountedSize(p *machine.Program) int64 {
	return int64(p.Size())*40 + int64(len(p.Data)) + 256
}

// RegisterWire contributes the pipeline's persistable artifact kinds to
// a codec registry, letting a shared disk tier (gcsafed's) carry
// per-stage compiled programs across restarts alongside the server's own
// whole-product artifacts.
func RegisterWire(reg *artifact.CodecRegistry) {
	reg.Register(kindProg, artifact.Codec{
		Encode: func(key artifact.Key, v any) ([]byte, bool) {
			p, ok := v.(*machine.Program)
			if !ok {
				return nil, false
			}
			return gobBytes(&wireProg{Prog: p})
		},
		Decode: func(data []byte) (any, int64, error) {
			var w wireProg
			if err := gobDecode(data, &w); err != nil {
				return nil, 0, err
			}
			if w.Prog == nil || len(w.Prog.Funcs) == 0 {
				return nil, 0, fmt.Errorf("pipeline program artifact with no code")
			}
			return w.Prog, progAccountedSize(w.Prog), nil
		},
	})
	reg.Register(kindPost, artifact.Codec{
		Encode: func(key artifact.Key, v any) ([]byte, bool) {
			p, ok := v.(*postprocessed)
			if !ok {
				return nil, false
			}
			return gobBytes(&wirePost{Prog: p.prog, Stats: p.stats})
		},
		Decode: func(data []byte) (any, int64, error) {
			var w wirePost
			if err := gobDecode(data, &w); err != nil {
				return nil, 0, err
			}
			if w.Prog == nil || len(w.Prog.Funcs) == 0 {
				return nil, 0, fmt.Errorf("pipeline postprocessed artifact with no code")
			}
			return &postprocessed{prog: w.Prog, stats: w.Stats}, progAccountedSize(w.Prog), nil
		},
	})
}

func gobBytes(v any) ([]byte, bool) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, false
	}
	return buf.Bytes(), true
}

func gobDecode(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}
