package pipeline

import (
	"context"
	"sync/atomic"
	"time"

	"gcsafety/internal/artifact"
	"gcsafety/internal/faultinject"
)

// Runner executes stages against one artifact cache, instrumenting every
// stage with call/hit/miss/error counters and cumulative duration. A
// Runner is safe for arbitrary concurrency; concurrent builds of the same
// inputs coalesce per stage through the cache's singleflight discipline,
// so each distinct artifact is computed once no matter how many builds
// race for it.
type Runner struct {
	cache   *artifact.Cache
	stats   [9]stageCounters // indexed by Stage.index()
	elision elisionCounters
}

// elisionCounters aggregates the annotator's elision outcomes across
// every Annotate-stage computation this Runner performed (cache hits
// reuse an artifact whose counts were tallied when it was computed).
type elisionCounters struct {
	considered   atomic.Uint64
	elided       atomic.Uint64
	elidedLive   atomic.Uint64
	elidedBounds atomic.Uint64
}

// ElisionStat is the runner-wide elision counter snapshot: how many
// annotation sites the liveness analysis considered, how many it elided
// (split by reason), and how many it kept.
type ElisionStat struct {
	Considered   uint64 `json:"considered"`
	Elided       uint64 `json:"elided"`
	ElidedLive   uint64 `json:"elided_live"`
	ElidedBounds uint64 `json:"elided_bounds"`
	Kept         uint64 `json:"kept"`
}

// ElisionStats snapshots the elision counters.
func (r *Runner) ElisionStats() ElisionStat {
	s := ElisionStat{
		Considered:   r.elision.considered.Load(),
		Elided:       r.elision.elided.Load(),
		ElidedLive:   r.elision.elidedLive.Load(),
		ElidedBounds: r.elision.elidedBounds.Load(),
	}
	s.Kept = s.Considered - s.Elided
	return s
}

type stageCounters struct {
	calls      atomic.Uint64
	hits       atomic.Uint64
	misses     atomic.Uint64
	errors     atomic.Uint64
	durationNs atomic.Uint64
}

// NewRunner returns a Runner over cache. Callers that want stage
// artifacts to share an LRU budget (and a disk tier) with other artifacts
// pass the shared cache; short-lived harnesses pass artifact.New(0).
func NewRunner(cache *artifact.Cache) *Runner {
	return &Runner{cache: cache}
}

// Cache exposes the underlying artifact cache.
func (r *Runner) Cache() *artifact.Cache { return r.cache }

// StageStat is one stage's instrumentation snapshot. A call that waited
// on another build's in-flight computation counts as a hit — it did not
// compute; errors (including injected faults) are counted separately and
// never cached.
type StageStat struct {
	Stage      string  `json:"stage"`
	Calls      uint64  `json:"calls"`
	Hits       uint64  `json:"hits"`
	Misses     uint64  `json:"misses"`
	Errors     uint64  `json:"errors"`
	DurationMs float64 `json:"duration_ms"`
}

// Stats snapshots every stage's counters, in dependency order.
func (r *Runner) Stats() []StageStat {
	out := make([]StageStat, 0, len(r.stats))
	for i, s := range Stages() {
		c := &r.stats[i]
		out = append(out, StageStat{
			Stage:      string(s),
			Calls:      c.calls.Load(),
			Hits:       c.hits.Load(),
			Misses:     c.misses.Load(),
			Errors:     c.errors.Load(),
			DurationMs: float64(c.durationNs.Load()) / 1e6,
		})
	}
	return out
}

// StageStats snapshots one stage's counters.
func (r *Runner) StageStats(s Stage) StageStat {
	for _, st := range r.Stats() {
		if st.Stage == string(s) {
			return st
		}
	}
	return StageStat{Stage: string(s)}
}

// BuildReport describes one build's walk of the stage graph: which stages
// ran, whether each was served from cache, and how long each took from
// this build's perspective (a hit's duration is the lookup, or the wait
// on another build's in-flight computation).
type BuildReport struct {
	Stages []StageReport `json:"stages"`
	// Elision describes the annotate stage's elision outcome for this
	// build (nil unless the build ran with elision enabled). A cache hit
	// carries the counts recorded when the artifact was computed.
	Elision *ElisionStat `json:"elision,omitempty"`
}

// StageReport is one stage execution within a build.
type StageReport struct {
	Stage      string  `json:"stage"`
	CacheHit   bool    `json:"cache_hit"`
	DurationMs float64 `json:"duration_ms"`
}

// AllHits reports whether every stage of the build was served from cache
// — the warm-build invariant the pipeline-smoke check enforces.
func (b *BuildReport) AllHits() bool {
	for _, s := range b.Stages {
		if !s.CacheHit {
			return false
		}
	}
	return len(b.Stages) > 0
}

// run executes one stage: a ctx check at the boundary, the stage's fault
// injection point, then the cached computation. The returned error is the
// raw stage error; callers wrap it in a StageError.
func (r *Runner) run(ctx context.Context, st Stage, key artifact.Key, rep *BuildReport, compute func() (any, int64, error)) (any, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c := &r.stats[st.index()]
	c.calls.Add(1)
	start := time.Now()
	v, hit, err := r.cache.GetOrCompute(ctx, key, func() (any, int64, error) {
		if ferr := faultinject.For(ctx).FireCtx(ctx, st.FaultPoint()); ferr != nil {
			return nil, 0, ferr
		}
		return compute()
	})
	d := time.Since(start)
	c.durationNs.Add(uint64(d.Nanoseconds()))
	if err != nil {
		c.errors.Add(1)
		return nil, err
	}
	if hit {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	if rep != nil {
		rep.Stages = append(rep.Stages, StageReport{
			Stage:      string(st),
			CacheHit:   hit,
			DurationMs: float64(d.Nanoseconds()) / 1e6,
		})
	}
	return v, nil
}

// StageError attributes a build failure to the stage that produced it.
// It unwraps to the underlying error, so errors.Is/As see through it
// (context cancellation, faultinject.ErrInjected, parser and codegen
// error types).
type StageError struct {
	Stage Stage
	Err   error
}

func (e *StageError) Error() string { return string(e.Stage) + ": " + e.Err.Error() }

func (e *StageError) Unwrap() error { return e.Err }
