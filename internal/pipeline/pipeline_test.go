package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"gcsafety/internal/artifact"
	"gcsafety/internal/cc/parser"
	"gcsafety/internal/codegen"
	"gcsafety/internal/faultinject"
	"gcsafety/internal/gcsafe"
	"gcsafety/internal/machine"
	"gcsafety/internal/peephole"
	"gcsafety/internal/threaded"
	"gcsafety/internal/workloads"
)

// treatments is the canonical cell set of the paper's tables, spelled as
// pipeline options.
func treatments() map[string]Options {
	return map[string]Options{
		"-O":           {Optimize: true},
		"-O, safe":     {Optimize: true, Annotate: true},
		"-g":           {},
		"-g, checked":  {Annotate: true, AnnotateOptions: gcsafe.Options{Mode: gcsafe.ModeChecked}},
		"-O, safe+pp":  {Optimize: true, Annotate: true, Post: true},
		"-g, safe+pp":  {Annotate: true, Post: true},
		"-O, opt1-off": {Optimize: true, Annotate: true, AnnotateOptions: gcsafe.Options{NoCopySuppression: true}},
	}
}

// directBuild is the pre-pipeline monolithic build path, inlined here as
// the behavioral oracle: the stage graph must be byte-identical to it.
func directBuild(t *testing.T, name, src string, o Options) (*machine.Program, *gcsafe.Result, *peephole.Stats) {
	t.Helper()
	file, err := parser.Parse(name, src)
	if err != nil {
		t.Fatalf("direct parse: %v", err)
	}
	var ares *gcsafe.Result
	if o.Annotate {
		ares, err = gcsafe.Annotate(file, o.AnnotateOptions)
		if err != nil {
			t.Fatalf("direct annotate: %v", err)
		}
	}
	prog, err := codegen.Compile(file, codegen.Options{Optimize: o.Optimize, Machine: o.Machine})
	if err != nil {
		t.Fatalf("direct compile: %v", err)
	}
	var pst *peephole.Stats
	if o.Post {
		st := peephole.Optimize(prog, o.Machine)
		pst = &st
	}
	return prog, ares, pst
}

// TestPipelineMatchesDirectBuild pins the refactor's central contract:
// for every workload and treatment, the staged build produces exactly the
// listing, annotation output and peephole stats of the old monolithic
// path.
func TestPipelineMatchesDirectBuild(t *testing.T) {
	ws := workloads.All()
	if testing.Short() {
		ws = ws[:2]
	}
	for _, cfg := range machine.Configs() {
		for tname, o := range treatments() {
			o.Machine = cfg
			r := NewRunner(artifact.New(0))
			for _, w := range ws {
				res, err := r.Build(context.Background(), w.Name+".c", w.Source, o)
				if err != nil {
					t.Fatalf("%s [%s/%s]: %v", w.Name, cfg.Name, tname, err)
				}
				prog, ares, pst := directBuild(t, w.Name+".c", w.Source, o)
				if got, want := res.Prog.Listing(), prog.Listing(); got != want {
					t.Errorf("%s [%s/%s]: listing diverges from direct build", w.Name, cfg.Name, tname)
				}
				if o.Annotate {
					if res.Annotate == nil {
						t.Fatalf("%s: no annotate result", w.Name)
					}
					if res.Annotate.Output != ares.Output {
						t.Errorf("%s [%s/%s]: annotated source diverges", w.Name, cfg.Name, tname)
					}
					if res.Annotate.Inserted != ares.Inserted || res.Annotate.Suppressed != ares.Suppressed {
						t.Errorf("%s [%s/%s]: annotate counters diverge", w.Name, cfg.Name, tname)
					}
				} else if res.Annotate != nil {
					t.Errorf("%s: unexpected annotate result", w.Name)
				}
				if o.Post {
					if res.Peephole == nil || *res.Peephole != *pst {
						t.Errorf("%s [%s/%s]: peephole stats diverge: %+v vs %+v", w.Name, cfg.Name, tname, res.Peephole, pst)
					}
				}
			}
		}
		if testing.Short() {
			break
		}
	}
}

// TestFrontEndSharedAcrossTreatments is the cache-sharing contract: one
// workload built under every treatment and machine lexes, parses and
// typechecks exactly once.
func TestFrontEndSharedAcrossTreatments(t *testing.T) {
	r := NewRunner(artifact.New(0))
	w := workloads.All()[0]
	n := 0
	for _, cfg := range machine.Configs() {
		for _, o := range treatments() {
			o.Machine = cfg
			if _, err := r.Build(context.Background(), w.Name+".c", w.Source, o); err != nil {
				t.Fatal(err)
			}
			n++
		}
	}
	for _, st := range []Stage{StageLex, StageParse, StageTypecheck} {
		s := r.StageStats(st)
		if s.Misses != 1 {
			t.Errorf("%s: %d misses over %d builds, want 1", st, s.Misses, n)
		}
		if s.Calls != uint64(n) {
			t.Errorf("%s: %d calls, want %d", st, s.Calls, n)
		}
	}
	// Safe and checked treatments annotate differently; opt1-off is a third
	// configuration. Three annotate misses, not one per build.
	if s := r.StageStats(StageAnnotate); s.Misses != 3 {
		t.Errorf("annotate: %d misses, want 3", s.Misses)
	}
}

// TestWarmBuildAllHits is the pipeline-smoke invariant: the second build
// of the same cell reports a cache hit at every stage.
func TestWarmBuildAllHits(t *testing.T) {
	r := NewRunner(artifact.New(0))
	w := workloads.All()[0]
	o := Options{Optimize: true, Annotate: true, Post: true, Machine: machine.SPARCstation10()}
	first, err := r.Build(context.Background(), w.Name+".c", w.Source, o)
	if err != nil {
		t.Fatal(err)
	}
	if first.Report.AllHits() {
		t.Fatal("cold build reported all stages as cache hits")
	}
	second, err := r.Build(context.Background(), w.Name+".c", w.Source, o)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Report.AllHits() {
		t.Fatalf("warm build missed a stage: %+v", second.Report.Stages)
	}
	if len(second.Report.Stages) != 7 {
		t.Fatalf("expected all 7 stages in the report, got %d: %+v",
			len(second.Report.Stages), second.Report.Stages)
	}
	if second.Prog != first.Prog {
		t.Error("warm build did not share the cached program")
	}
}

// TestVersionBumpInvalidatesStage proves the invalidation rule: bumping
// one stage's version recomputes that stage and everything downstream,
// while upstream artifacts stay warm.
func TestVersionBumpInvalidatesStage(t *testing.T) {
	r := NewRunner(artifact.New(0))
	w := workloads.All()[0]
	o := Options{Optimize: true, Machine: machine.SPARCstation10()}
	if _, err := r.Build(context.Background(), w.Name+".c", w.Source, o); err != nil {
		t.Fatal(err)
	}
	restore := SetVersionForTest(StageCodegen, "v1-test-bump")
	defer restore()
	res, err := r.Build(context.Background(), w.Name+".c", w.Source, o)
	if err != nil {
		t.Fatal(err)
	}
	byStage := map[string]StageReport{}
	for _, s := range res.Report.Stages {
		byStage[s.Stage] = s
	}
	for _, warm := range []Stage{StageLex, StageParse, StageTypecheck} {
		if !byStage[string(warm)].CacheHit {
			t.Errorf("%s recomputed after a codegen version bump", warm)
		}
	}
	for _, cold := range []Stage{StageCodegen, StageOptimize} {
		if byStage[string(cold)].CacheHit {
			t.Errorf("%s served from cache across its version bump", cold)
		}
	}
}

// TestStageFaultInjection drives every stage's fault point: the build
// must fail with the injected error attributed to that stage, the error
// must not be cached, and a fault-free retry must succeed.
func TestStageFaultInjection(t *testing.T) {
	w := workloads.All()[0]
	for _, st := range Stages() {
		// Elide makes the optional Liveness stage run and the threaded
		// engine makes Lower run, so every fault point in Stages() is
		// reachable from one configuration.
		o := Options{Optimize: true, Annotate: true, Post: true, Machine: machine.SPARCstation10(), Engine: threaded.Name}
		o.AnnotateOptions.Elide = true
		r := NewRunner(artifact.New(0))
		faults, err := faultinject.Parse(st.FaultPoint()+"=error", 1)
		if err != nil {
			t.Fatal(err)
		}
		ctx := faultinject.WithContext(context.Background(), faults)
		_, err = r.Build(ctx, w.Name+".c", w.Source, o)
		if err == nil {
			t.Fatalf("%s: build survived an injected fault", st)
		}
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("%s: error %v is not ErrInjected", st, err)
		}
		var se *StageError
		if !errors.As(err, &se) || se.Stage != st {
			t.Fatalf("%s: fault attributed to %v", st, err)
		}
		if s := r.StageStats(st); s.Errors == 0 {
			t.Errorf("%s: error not counted", st)
		}
		// Errors are never cached: the same runner must build cleanly once
		// the faults are gone.
		if _, err := r.Build(context.Background(), w.Name+".c", w.Source, o); err != nil {
			t.Fatalf("%s: retry after fault failed: %v", st, err)
		}
	}
}

// TestContextCancellation: a canceled context aborts at the first stage
// boundary with the context's error visible through the StageError.
func TestContextCancellation(t *testing.T) {
	r := NewRunner(artifact.New(0))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w := workloads.All()[0]
	_, err := r.Build(ctx, w.Name+".c", w.Source, Options{Machine: machine.SPARCstation10()})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestParseErrorsMatchLegacyPath: errors surfaced by the staged front end
// are the parser's own, byte for byte, under the "parse" stage label.
func TestParseErrorsMatchLegacyPath(t *testing.T) {
	const bad = "int main( { return 0; }"
	_, direct := parser.Parse("bad.c", bad)
	if direct == nil {
		t.Fatal("expected a parse error")
	}
	r := NewRunner(artifact.New(0))
	_, err := r.Build(context.Background(), "bad.c", bad, Options{Machine: machine.SPARCstation10()})
	var se *StageError
	if !errors.As(err, &se) || se.Stage != StageParse {
		t.Fatalf("got %v, want a parse StageError", err)
	}
	if se.Err.Error() != direct.Error() {
		t.Fatalf("staged parse error %q != direct %q", se.Err, direct)
	}
}

// TestConcurrentBuildsSingleflight: a stampede of identical builds
// computes each stage once.
func TestConcurrentBuildsSingleflight(t *testing.T) {
	r := NewRunner(artifact.New(0))
	w := workloads.All()[0]
	o := Options{Optimize: true, Annotate: true, Machine: machine.SPARCstation10()}
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = r.Build(context.Background(), w.Name+".c", w.Source, o)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, st := range []Stage{StageLex, StageParse, StageTypecheck, StageAnnotate, StageCodegen, StageOptimize} {
		if s := r.StageStats(st); s.Misses != 1 {
			t.Errorf("%s: %d misses under stampede, want 1", st, s.Misses)
		}
	}
}

// TestVersionFingerprintTracksBumps: the fingerprint callers embed in
// their own keys changes with any stage version.
func TestVersionFingerprintTracksBumps(t *testing.T) {
	before := VersionFingerprint()
	restore := SetVersionForTest(StagePeephole, "v99")
	changed := VersionFingerprint()
	restore()
	if before == changed {
		t.Fatal("fingerprint did not change across a version bump")
	}
	if VersionFingerprint() != before {
		t.Fatal("fingerprint not restored")
	}
}

// TestWireRoundTrip: the persistable stage artifacts survive an
// encode/decode cycle through the codec registry.
func TestWireRoundTrip(t *testing.T) {
	reg := artifact.NewCodecRegistry()
	RegisterWire(reg)
	codec := reg.DiskCodec()

	r := NewRunner(artifact.New(0))
	w := workloads.All()[0]
	res, err := r.Build(context.Background(), w.Name+".c", w.Source,
		Options{Optimize: true, Annotate: true, Post: true, Machine: machine.SPARCstation10()})
	if err != nil {
		t.Fatal(err)
	}
	kind, data, ok := codec.Encode("k", res.Prog)
	if !ok || kind != kindProg {
		t.Fatalf("program did not encode (ok=%v kind=%q)", ok, kind)
	}
	v, size, err := codec.Decode(kind, data)
	if err != nil {
		t.Fatal(err)
	}
	back := v.(*machine.Program)
	if back.Listing() != res.Prog.Listing() {
		t.Error("program listing changed across the wire")
	}
	if size != progAccountedSize(res.Prog) {
		t.Errorf("accounted size %d != %d", size, progAccountedSize(res.Prog))
	}
	pp := &postprocessed{prog: res.Prog, stats: peephole.Stats{Fused: 1, InstrsAfter: res.Prog.Size()}}
	kind, data, ok = codec.Encode("k2", pp)
	if !ok || kind != kindPost {
		t.Fatalf("postprocessed did not encode (ok=%v kind=%q)", ok, kind)
	}
	v, _, err = codec.Decode(kind, data)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.(*postprocessed); got.stats != pp.stats || got.prog.Listing() != pp.prog.Listing() {
		t.Error("postprocessed artifact changed across the wire")
	}
	// Unclaimed values stay memory-only.
	if _, _, ok := codec.Encode("k3", 42); ok {
		t.Error("registry claimed an unknown artifact type")
	}
}

// TestStatsShape: every stage appears in Stats() in dependency order with
// consistent counters.
func TestStatsShape(t *testing.T) {
	r := NewRunner(artifact.New(0))
	w := workloads.All()[0]
	if _, err := r.Build(context.Background(), w.Name+".c", w.Source,
		Options{Optimize: true, Machine: machine.SPARCstation10()}); err != nil {
		t.Fatal(err)
	}
	stats := r.Stats()
	if len(stats) != len(Stages()) {
		t.Fatalf("got %d stage stats, want %d", len(stats), len(Stages()))
	}
	for i, st := range Stages() {
		s := stats[i]
		if s.Stage != string(st) {
			t.Fatalf("stats[%d] = %s, want %s", i, s.Stage, st)
		}
		if s.Calls != s.Hits+s.Misses+s.Errors {
			t.Errorf("%s: calls %d != hits %d + misses %d + errors %d", s.Stage, s.Calls, s.Hits, s.Misses, s.Errors)
		}
	}
	// An unannotated, unpostprocessed build runs 5 of the 7 stages.
	ran := 0
	for _, s := range stats {
		if s.Calls > 0 {
			ran++
		}
	}
	if ran != 5 {
		t.Errorf("%d stages ran, want 5", ran)
	}
}

// TestPipelineSmokeWarmBuild is the `make check` pipeline-smoke step:
// build one workload twice and fail unless the second build is served
// entirely from the stage cache.
func TestPipelineSmokeWarmBuild(t *testing.T) {
	r := NewRunner(artifact.New(0))
	w := workloads.All()[0]
	o := Options{Optimize: true, Annotate: true, Post: true, Machine: machine.SPARCstation10()}
	if _, err := r.Build(context.Background(), w.Name+".c", w.Source, o); err != nil {
		t.Fatal(err)
	}
	res, err := r.Build(context.Background(), w.Name+".c", w.Source, o)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, s := range res.Report.Stages {
		if s.CacheHit {
			hits++
		}
	}
	if pctHit := fmt.Sprintf("%d/%d", hits, len(res.Report.Stages)); !res.Report.AllHits() {
		t.Fatalf("warm build stage-cache hits %s, want 100%%: %+v", pctHit, res.Report.Stages)
	}
}
