// Package liveness implements the intraprocedural analysis behind the
// elided treatments (-Osafe-elided / -gchecked-elided): a conservative,
// per-function computation of where a KEEP_LIVE or GC_same_obj annotation
// is provably redundant, so the annotator may drop it without weakening
// GC-safety or checking.
//
// Two fact families are produced, both keyed by source position so they
// survive the pipeline's AST cloning (the Annotate stage deep-clones the
// checked tree before mutating it; positions and object Name/Seq pairs are
// preserved by ast.File.Clone):
//
//   - Base liveness (drops KEEP_LIVE in safe mode): KEEP_LIVE(e, b) exists
//     to keep the object reachable through b while e's disguised value is
//     in flight. If b is a named, address-untaken local or parameter that
//     is not assigned anywhere in the enclosing annotation unit and whose
//     value is *strongly* live after the unit, then b (or a copy of its
//     value) necessarily occupies a scanned register or stack slot across
//     the whole window, the object is rooted regardless, and the
//     annotation is a no-op. Strong liveness — the faint-variable-free
//     variant — seeds only at uses the optimizer can never eliminate
//     (call arguments, returned values, branch conditions, operands of
//     memory stores) and propagates backward through copies, so it
//     under-approximates any liveness the code generator's dead-code
//     elimination could compute: a fact here can never be invalidated
//     downstream. This is the lattice of Khedker et al.'s heap liveness
//     collapsed to the paper's single-base abstraction: per program point,
//     a set of base variables whose heap referent is explicitly live.
//
//   - In-bounds extents (drops GC_same_obj in checked mode): a forward
//     walk tracks pointers that provably hold the base of an allocation
//     of statically known byte size (p = GC_malloc(const), and copies of
//     such pointers), killing facts at reassignment and conservatively at
//     control-flow joins, loop back-edges and switch fallthrough. A
//     pointer-arithmetic or member/subscript access whose constant offset
//     lands within [0, size] — one past the end included, exactly the
//     range GC_same_obj accepts — can never fire the check, so eliding it
//     preserves every detectable violation. Checked-mode elision
//     additionally requires the base-liveness fact, because the
//     GC_same_obj call doubles as the KEEP_LIVE rooting point.
//
// Temporal mode never consults these facts: an in-bounds access through a
// stale pointer is precisely what the epoch check must still catch.
package liveness

import (
	"fmt"
	"sort"

	"gcsafety/internal/cc/ast"
	"gcsafety/internal/cc/token"
	"gcsafety/internal/cc/types"
)

// Facts is the artifact produced by Analyze: the StageLiveness output the
// annotator consults. Facts are immutable after Analyze returns and safe
// for concurrent readers.
type Facts struct {
	fns map[string]*fnFacts
}

type fnFacts struct {
	// units are the function's annotation units (statement-level
	// expressions: expression statements, initializers, conditions, loop
	// posts, return values), sorted by start offset. Units never overlap.
	units []unitFact
	// bounds records, per candidate expression span, whether the access
	// is provably in-bounds.
	bounds map[[2]int]bool
}

// unitFact is one annotation unit's analysis outcome.
type unitFact struct {
	pos, end int
	// live holds the IDs of eligible base variables strongly live after
	// the unit completes.
	live set
	// assigned holds the IDs of every object assigned (or ++/--'d)
	// anywhere within the unit.
	assigned set
}

// ObjID names an object the way facts are keyed: Name plus the Seq that
// disambiguates shadowed declarations within one function. Both fields
// survive ast.File.Clone, so IDs computed on the checked tree resolve
// against the annotator's clone.
func ObjID(o *ast.Object) string {
	return fmt.Sprintf("%s#%d", o.Name, o.Seq)
}

// BaseLive reports whether the base variable id is strongly live across
// the annotation unit containing source offset off in function fn — the
// safe-mode elision condition.
func (f *Facts) BaseLive(fn string, off int, id string) bool {
	u := f.unitAt(fn, off)
	return u != nil && u.live[id] && !u.assigned[id]
}

// InBounds reports whether the expression spanning [pos, end) in function
// fn is provably in-bounds — the checked-mode elision condition (together
// with BaseLive).
func (f *Facts) InBounds(fn string, pos, end int) bool {
	ff := f.fns[fn]
	return ff != nil && ff.bounds[[2]int{pos, end}]
}

func (f *Facts) unitAt(fn string, off int) *unitFact {
	ff := f.fns[fn]
	if ff == nil {
		return nil
	}
	i := sort.Search(len(ff.units), func(i int) bool { return ff.units[i].pos > off }) - 1
	if i < 0 || off >= ff.units[i].end {
		return nil
	}
	return &ff.units[i]
}

// Units counts the annotation units analyzed, summed over functions (a
// cheap size signal for cache accounting and reports).
func (f *Facts) Units() int {
	n := 0
	for _, ff := range f.fns {
		n += len(ff.units)
	}
	return n
}

// Analyze runs both analyses over every function definition in file. The
// walk only reads the tree; it never mutates nodes or objects, so it is
// safe to run on the shared Typecheck artifact.
func Analyze(file *ast.File) *Facts {
	f := &Facts{fns: map[string]*fnFacts{}}
	for _, d := range file.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		a := &fnAnalysis{units: map[int]*unitFact{}, bounds: map[[2]int]bool{}}
		a.stmt(fd.Body, set{})
		a.fwdStmt(fd.Body, map[string]int64{})
		ff := &fnFacts{bounds: a.bounds}
		for _, u := range a.units {
			ff.units = append(ff.units, *u)
		}
		sort.Slice(ff.units, func(i, j int) bool { return ff.units[i].pos < ff.units[j].pos })
		f.fns[fd.Obj.Name] = ff
	}
	return f
}

// eligible reports whether an object can carry elision facts: a named
// local or parameter pointer whose address is never taken. Globals and
// statics can be rewritten by callees (or other threads); address-taken
// locals can be rewritten through the pointer; temporaries are synthesized
// after this analysis runs.
func eligible(o *ast.Object) bool {
	if o == nil || o.Global || o.AddrTaken {
		return false
	}
	if o.Kind != ast.ObjVar && o.Kind != ast.ObjParam {
		return false
	}
	if o.Storage != ast.Auto && o.Storage != ast.Register {
		return false
	}
	return o.IsPointerVar()
}

// set is a strong-liveness variable set. Sets are treated as immutable
// values: every mutation copies. The analysis runs once per build and is
// cached as a pipeline stage, so clarity wins over allocation thrift.
type set map[string]bool

func (s set) clone() set {
	out := make(set, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func (s set) with(id string) set {
	if s[id] {
		return s
	}
	out := s.clone()
	out[id] = true
	return out
}

func (s set) without(id string) set {
	if !s[id] {
		return s
	}
	out := s.clone()
	delete(out, id)
	return out
}

func union(a, b set) set {
	out := a.clone()
	for k := range b {
		out[k] = true
	}
	return out
}

func equalSets(a, b set) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// fnAnalysis carries one function's traversal state.
type fnAnalysis struct {
	units  map[int]*unitFact // keyed by start offset
	bounds map[[2]int]bool
	// brks / conts are the live-set stacks for break and continue
	// targets. Loops push both; switches push brks only.
	brks  []set
	conts []set
}

// ---- Backward strong-liveness pass ----

// stmt computes the strongly-live set before s, given the set after it.
func (a *fnAnalysis) stmt(s ast.Stmt, out set) set {
	switch s := s.(type) {
	case nil:
		return out
	case *ast.ExprStmt:
		return a.unit(s.X, out, false)
	case *ast.DeclStmt:
		cur := out
		for i := len(s.Decls) - 1; i >= 0; i-- {
			d := s.Decls[i]
			needed := eligible(d.Obj) && cur[ObjID(d.Obj)]
			cur = cur.without(ObjID(d.Obj))
			for j := len(d.InitList) - 1; j >= 0; j-- {
				cur = a.unit(d.InitList[j], cur, needed)
			}
			if d.Init != nil {
				cur = a.unit(d.Init, cur, needed)
			}
		}
		return cur
	case *ast.Block:
		for i := len(s.Stmts) - 1; i >= 0; i-- {
			out = a.stmt(s.Stmts[i], out)
		}
		return out
	case *ast.If:
		thenIn := a.stmt(s.Then, out)
		elseIn := out
		if s.Else != nil {
			elseIn = a.stmt(s.Else, out)
		}
		return a.unit(s.Cond, union(thenIn, elseIn), true)
	case *ast.While:
		condIn := set{}
		for {
			a.pushLoop(out, condIn)
			bodyIn := a.stmt(s.Body, condIn)
			a.popLoop()
			next := a.unit(s.Cond, union(bodyIn, out), true)
			if equalSets(next, condIn) {
				return next
			}
			condIn = next
		}
	case *ast.DoWhile:
		bodyIn := set{}
		for {
			condIn := a.unit(s.Cond, union(bodyIn, out), true)
			a.pushLoop(out, condIn)
			next := a.stmt(s.Body, condIn)
			a.popLoop()
			if equalSets(next, bodyIn) {
				return next
			}
			bodyIn = next
		}
	case *ast.For:
		condIn := set{}
		var in set
		for {
			postIn := condIn
			if s.Post != nil {
				postIn = a.unit(s.Post, condIn, false)
			}
			a.pushLoop(out, postIn)
			bodyIn := a.stmt(s.Body, postIn)
			a.popLoop()
			var next set
			if s.Cond != nil {
				next = a.unit(s.Cond, union(bodyIn, out), true)
			} else {
				// No condition: the loop head flows straight into the
				// body; the only exit is break.
				next = bodyIn
			}
			if equalSets(next, condIn) {
				in = next
				break
			}
			condIn = next
		}
		if s.Init != nil {
			in = a.stmt(s.Init, in)
		}
		return in
	case *ast.Return:
		if s.X != nil {
			return a.unit(s.X, set{}, true)
		}
		return set{}
	case *ast.Break:
		return a.brks[len(a.brks)-1].clone()
	case *ast.Continue:
		return a.conts[len(a.conts)-1].clone()
	case *ast.Switch:
		nextIn := out // fallthrough target past the last case
		caseIns := make([]set, 0, len(s.Cases))
		hasDefault := false
		for i := len(s.Cases) - 1; i >= 0; i-- {
			c := s.Cases[i]
			if c.Vals == nil {
				hasDefault = true
			}
			a.brks = append(a.brks, out)
			caseIn := nextIn
			for j := len(c.Stmts) - 1; j >= 0; j-- {
				caseIn = a.stmt(c.Stmts[j], caseIn)
			}
			a.brks = a.brks[:len(a.brks)-1]
			caseIns = append(caseIns, caseIn)
			nextIn = caseIn
		}
		afterX := set{}
		if !hasDefault {
			afterX = out.clone()
		}
		for _, ci := range caseIns {
			afterX = union(afterX, ci)
		}
		return a.unit(s.X, afterX, true)
	case *ast.Empty:
		return out
	}
	return out
}

func (a *fnAnalysis) pushLoop(brk, cont set) {
	a.brks = append(a.brks, brk)
	a.conts = append(a.conts, cont)
}

func (a *fnAnalysis) popLoop() {
	a.brks = a.brks[:len(a.brks)-1]
	a.conts = a.conts[:len(a.conts)-1]
}

// unit records the fact for one annotation unit — the live-after set and
// the assigned-within set — and returns the strongly-live set before it.
// Loop fixpoints re-record the same unit until stable; the last (stable)
// values win.
func (a *fnAnalysis) unit(e ast.Expr, out set, needed bool) set {
	if e == nil {
		return out
	}
	pos := e.Pos().Off
	u := a.units[pos]
	if u == nil {
		u = &unitFact{pos: pos}
		a.units[pos] = u
	}
	u.end = e.End()
	u.live = out.clone()
	u.assigned = assignedIn(e)
	return a.expr(e, out, needed)
}

// expr computes strong liveness backward through one expression. needed
// reports whether the expression's value reaches an effect the optimizer
// cannot remove; only needed reads of eligible variables generate
// liveness.
func (a *fnAnalysis) expr(e ast.Expr, live set, needed bool) set {
	switch e := e.(type) {
	case nil:
		return live
	case *ast.Ident:
		if needed && eligible(e.Obj) {
			return live.with(ObjID(e.Obj))
		}
		return live
	case *ast.IntLit, *ast.CharLit, *ast.StrLit, *ast.SizeofType, *ast.SizeofExpr:
		return live
	case *ast.Paren:
		return a.expr(e.X, live, needed)
	case *ast.Cast:
		return a.expr(e.X, live, needed)
	case *ast.Assign:
		if id, ok := ast.Unparen(e.L).(*ast.Ident); ok {
			// Stores to ineligible targets (globals, statics, address-
			// taken locals) are memory effects: callees or aliases may
			// read them, so the stored value is always needed.
			rneeded := needed || !eligible(id.Obj) || live[ObjID(id.Obj)]
			live = live.without(ObjID(id.Obj))
			live = a.expr(e.R, live, rneeded)
			if e.Op != token.Assign && rneeded && eligible(id.Obj) {
				live = live.with(ObjID(id.Obj)) // compound ops read x too
			}
			return live
		}
		// Store through memory: the value and the address are both needed.
		live = a.expr(e.R, live, true)
		return a.addr(e.L, live, true)
	case *ast.Unary:
		switch e.Op {
		case token.Inc, token.Dec:
			if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
				used := needed || !eligible(id.Obj) || live[ObjID(id.Obj)]
				live = live.without(ObjID(id.Obj))
				if used && eligible(id.Obj) {
					live = live.with(ObjID(id.Obj))
				}
				return live
			}
			return a.addr(e.X, live, true) // memory read-modify-write
		case token.Amp:
			return a.addr(e.X, live, needed)
		default: // Star, Plus, Minus, Tilde, Not
			return a.expr(e.X, live, needed)
		}
	case *ast.Binary:
		nx := needed
		if e.Op == token.AndAnd || e.Op == token.OrOr {
			// The left side gates the right side's effects.
			nx = needed || hasEffects(e.Y)
		}
		live = a.expr(e.Y, live, needed)
		return a.expr(e.X, live, nx)
	case *ast.Cond:
		tIn := a.expr(e.T, live, needed)
		fIn := a.expr(e.F, live, needed)
		cNeeded := needed || hasEffects(e.T) || hasEffects(e.F)
		return a.expr(e.C, union(tIn, fIn), cNeeded)
	case *ast.Call:
		// A call is an effect: every argument escapes into the callee.
		for i := len(e.Args) - 1; i >= 0; i-- {
			live = a.expr(e.Args[i], live, true)
		}
		return a.expr(e.Fun, live, true)
	case *ast.Comma:
		live = a.expr(e.Y, live, needed)
		return a.expr(e.X, live, false)
	case *ast.Index:
		live = a.expr(e.I, live, needed)
		return a.expr(e.X, live, needed)
	case *ast.Member:
		return a.expr(e.X, live, needed)
	case *ast.KeepLive:
		return a.expr(e.X, live, needed)
	}
	return live
}

// addr traverses an lvalue used for its address. needed tells whether the
// resulting address feeds an effect.
func (a *fnAnalysis) addr(e ast.Expr, live set, needed bool) set {
	switch e := e.(type) {
	case nil:
		return live
	case *ast.Ident:
		return live // the address of a named variable uses no value
	case *ast.Paren:
		return a.addr(e.X, live, needed)
	case *ast.Unary:
		if e.Op == token.Star {
			return a.expr(e.X, live, needed)
		}
		return a.expr(e, live, needed)
	case *ast.Index:
		live = a.expr(e.I, live, needed)
		return a.expr(e.X, live, needed)
	case *ast.Member:
		if e.Arrow {
			return a.expr(e.X, live, needed)
		}
		return a.addr(e.X, live, needed)
	default:
		return a.expr(e, live, needed)
	}
}

// hasEffects reports whether evaluating e can have a side effect (call,
// assignment, increment/decrement) — the seeds strong liveness grows from.
func hasEffects(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(x ast.Expr) bool {
		switch x := x.(type) {
		case *ast.Call:
			found = true
		case *ast.Assign:
			found = true
		case *ast.Unary:
			if x.Op == token.Inc || x.Op == token.Dec {
				found = true
			}
		case *ast.SizeofExpr:
			return false // operand unevaluated
		}
		return !found
	})
	return found
}

// assignedIn collects the IDs of every object assigned, ++/--'d, or
// compound-assigned anywhere within e.
func assignedIn(e ast.Expr) set {
	out := set{}
	ast.Inspect(e, func(x ast.Expr) bool {
		switch x := x.(type) {
		case *ast.Assign:
			if id, ok := ast.Unparen(x.L).(*ast.Ident); ok && id.Obj != nil {
				out[ObjID(id.Obj)] = true
			}
		case *ast.Unary:
			if x.Op == token.Inc || x.Op == token.Dec {
				if id, ok := ast.Unparen(x.X).(*ast.Ident); ok && id.Obj != nil {
					out[ObjID(id.Obj)] = true
				}
			}
		}
		return true
	})
	return out
}

// ---- Forward in-bounds extent pass ----

// fwdStmt walks statements in execution order threading ext, the map from
// eligible pointer IDs to the byte extent of the allocation they provably
// point to the base of. Every conservative choice deletes facts.
func (a *fnAnalysis) fwdStmt(s ast.Stmt, ext map[string]int64) {
	switch s := s.(type) {
	case nil:
	case *ast.ExprStmt:
		a.boundsUnit(s.X, ext)
		applyUnit(s.X, ext)
	case *ast.DeclStmt:
		for _, d := range s.Decls {
			for _, el := range d.InitList {
				a.boundsUnit(el, ext)
				applyUnit(el, ext)
			}
			if d.Init != nil {
				a.boundsUnit(d.Init, ext)
				applyUnit(d.Init, ext)
			}
			id := ObjID(d.Obj)
			delete(ext, id)
			if d.Init != nil && eligible(d.Obj) {
				if n, ok := allocSize(d.Init); ok {
					ext[id] = n
				} else if src, ok := copySource(d.Init); ok {
					if n, ok := ext[ObjID(src)]; ok {
						ext[id] = n
					}
				}
			}
		}
	case *ast.Block:
		for _, st := range s.Stmts {
			a.fwdStmt(st, ext)
		}
	case *ast.If:
		a.boundsUnit(s.Cond, ext)
		applyUnit(s.Cond, ext)
		thenExt := copyExt(ext)
		a.fwdStmt(s.Then, thenExt)
		if s.Else != nil {
			elseExt := copyExt(ext)
			a.fwdStmt(s.Else, elseExt)
		}
		killAssigned(ext, s.Then)
		killAssigned(ext, s.Else)
	case *ast.While:
		// The condition and body re-execute: facts for anything the loop
		// assigns are stale on the back edge, so kill them up front.
		killAssigned(ext, s.Cond)
		killAssigned(ext, s.Body)
		a.boundsUnit(s.Cond, ext)
		inner := copyExt(ext)
		applyUnit(s.Cond, inner)
		a.fwdStmt(s.Body, inner)
	case *ast.DoWhile:
		killAssigned(ext, s.Body)
		killAssigned(ext, s.Cond)
		inner := copyExt(ext)
		a.fwdStmt(s.Body, inner)
		a.boundsUnit(s.Cond, inner)
	case *ast.For:
		if s.Init != nil {
			a.fwdStmt(s.Init, ext)
		}
		killAssigned(ext, s.Cond)
		killAssigned(ext, s.Post)
		killAssigned(ext, s.Body)
		if s.Cond != nil {
			a.boundsUnit(s.Cond, ext)
		}
		inner := copyExt(ext)
		if s.Cond != nil {
			applyUnit(s.Cond, inner)
		}
		a.fwdStmt(s.Body, inner)
		if s.Post != nil {
			// continue jumps straight to the post expression, skipping
			// any body-local facts; analyze it against the pre-body state
			// (loop-assigned facts are already killed there).
			postExt := copyExt(ext)
			if s.Cond != nil {
				applyUnit(s.Cond, postExt)
			}
			a.boundsUnit(s.Post, postExt)
		}
	case *ast.Return:
		if s.X != nil {
			a.boundsUnit(s.X, ext)
		}
	case *ast.Switch:
		a.boundsUnit(s.X, ext)
		applyUnit(s.X, ext)
		// Fallthrough lets one case enter mid-chain after another ran, so
		// facts touched anywhere in the switch are unreliable in every
		// case body.
		for _, c := range s.Cases {
			for _, st := range c.Stmts {
				killAssigned(ext, st)
			}
		}
		for _, c := range s.Cases {
			inner := copyExt(ext)
			for _, st := range c.Stmts {
				a.fwdStmt(st, inner)
			}
		}
	case *ast.Break, *ast.Continue, *ast.Empty:
	}
}

func copyExt(ext map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(ext))
	for k, v := range ext {
		out[k] = v
	}
	return out
}

// killAssigned deletes extent facts for every object assigned anywhere in
// the statement or expression n (nil is allowed).
func killAssigned(ext map[string]int64, n any) {
	switch v := n.(type) {
	case nil:
		return
	case ast.Expr:
		if v == nil {
			return
		}
	case ast.Stmt:
		if v == nil {
			return
		}
	}
	ast.Inspect(n, func(x ast.Expr) bool {
		switch x := x.(type) {
		case *ast.Assign:
			if id, ok := ast.Unparen(x.L).(*ast.Ident); ok && id.Obj != nil {
				delete(ext, ObjID(id.Obj))
			}
		case *ast.Unary:
			if x.Op == token.Inc || x.Op == token.Dec {
				if id, ok := ast.Unparen(x.X).(*ast.Ident); ok && id.Obj != nil {
					delete(ext, ObjID(id.Obj))
				}
			}
		case *ast.Call:
			killFreed(ext, x)
		}
		return true
	})
}

// killFreed drops the extent of a pointer passed to free/GC_free/realloc:
// the object may be retired or moved.
func killFreed(ext map[string]int64, c *ast.Call) {
	name := calleeName(c)
	if name != "free" && name != "GC_free" && name != "realloc" {
		return
	}
	if len(c.Args) > 0 {
		if id, ok := stripConv(c.Args[0]).(*ast.Ident); ok && id.Obj != nil {
			delete(ext, ObjID(id.Obj))
		}
	}
}

// boundsUnit records in-bounds facts for every candidate site in one
// annotation unit, against the extents holding at its entry. Bases
// assigned anywhere within the unit are skipped: evaluation order inside
// one expression is not modeled.
func (a *fnAnalysis) boundsUnit(e ast.Expr, ext map[string]int64) {
	if e == nil {
		return
	}
	asn := assignedIn(e)
	ast.Inspect(e, func(x ast.Expr) bool {
		if _, ok := x.(*ast.SizeofExpr); ok {
			return false // unevaluated
		}
		if off, size, ok := constOffset(x, ext, asn); ok {
			a.bounds[[2]int{x.Pos().Off, x.End()}] = off >= 0 && off <= size
		}
		return true
	})
}

// constOffset resolves x as a constant-offset derivation from a pointer
// with a known extent: p ± c, p[c], p->f, and dot/subscript chains hanging
// off those. It returns the byte offset of the derived pointer and the
// extent of the object.
func constOffset(x ast.Expr, ext map[string]int64, asn set) (off, size int64, ok bool) {
	switch x := x.(type) {
	case *ast.Binary:
		if x.Op != token.Plus && x.Op != token.Minus {
			return 0, 0, false
		}
		ptr, other := x.X, x.Y
		if !isPtrExpr(ptr) {
			if x.Op == token.Minus || !isPtrExpr(other) {
				return 0, 0, false
			}
			ptr, other = other, ptr
		}
		base, bok := baseExtent(ptr, ext, asn)
		if !bok {
			return 0, 0, false
		}
		c, cok := constEval(other)
		if !cok {
			return 0, 0, false
		}
		stride := pointeeSize(ptr)
		if stride <= 0 {
			return 0, 0, false
		}
		d := c * stride
		if x.Op == token.Minus {
			d = -d
		}
		return d, base, true
	case *ast.Index:
		bOff, bSize, bok := accessBase(x.X, ext, asn)
		if !bok {
			return 0, 0, false
		}
		c, cok := constEval(x.I)
		if !cok {
			return 0, 0, false
		}
		stride := elemSize(x)
		if stride <= 0 {
			return 0, 0, false
		}
		return bOff + c*stride, bSize, true
	case *ast.Member:
		if x.Field == nil {
			return 0, 0, false
		}
		var bOff, bSize int64
		var bok bool
		if x.Arrow {
			bOff, bSize, bok = accessBase(x.X, ext, asn)
		} else {
			// p->a.b / p[c].f: the inner access must itself resolve.
			bOff, bSize, bok = constOffset(ast.Unparen(x.X), ext, asn)
		}
		if !bok {
			return 0, 0, false
		}
		return bOff + int64(x.Field.Off), bSize, true
	}
	return 0, 0, false
}

// accessBase resolves the pointer operand of an access: a bare extent-
// carrying ident is offset 0; a nested constant-offset access (an
// array-typed member, say) contributes its own offset.
func accessBase(e ast.Expr, ext map[string]int64, asn set) (off, size int64, ok bool) {
	if n, bok := baseExtent(e, ext, asn); bok {
		return 0, n, true
	}
	return constOffset(ast.Unparen(e), ext, asn)
}

// baseExtent resolves e (through parens and pointer casts) to an ident
// carrying an extent fact that is not assigned within the current unit.
func baseExtent(e ast.Expr, ext map[string]int64, asn set) (int64, bool) {
	id, ok := stripConv(e).(*ast.Ident)
	if !ok || id.Obj == nil {
		return 0, false
	}
	key := ObjID(id.Obj)
	if asn[key] {
		return 0, false
	}
	n, ok := ext[key]
	return n, ok
}

// stripConv removes parens and casts.
func stripConv(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.Paren:
			e = x.X
		case *ast.Cast:
			e = x.X
		default:
			return e
		}
	}
}

func isPtrExpr(e ast.Expr) bool {
	t := e.Type()
	return t != nil && types.IsPointer(types.Decay(t))
}

// pointeeSize is the byte stride of arithmetic on pointer expression e.
func pointeeSize(e ast.Expr) int64 {
	t := types.Decay(e.Type())
	p, ok := t.(*types.Pointer)
	if !ok {
		return -1
	}
	return int64(p.Elem.Size())
}

// elemSize is the byte stride of a subscript on access x.
func elemSize(x *ast.Index) int64 {
	if t := x.X.Type(); t != nil {
		switch t := types.Decay(t).(type) {
		case *types.Pointer:
			return int64(t.Elem.Size())
		}
	}
	return -1
}

// applyUnit transfers one unit's assignments into ext: kills for every
// assigned object, then gens for unambiguous single assignments of a
// fresh constant-size allocation or a copy of an extent-carrying pointer.
func applyUnit(e ast.Expr, ext map[string]int64) {
	if e == nil {
		return
	}
	type def struct {
		rhs   ast.Expr // nil for ++/--/compound
		count int
	}
	defs := map[string]*def{}
	objs := map[string]*ast.Object{}
	note := func(o *ast.Object, rhs ast.Expr) {
		id := ObjID(o)
		d := defs[id]
		if d == nil {
			d = &def{}
			defs[id] = d
		}
		d.count++
		d.rhs = rhs
		objs[id] = o
	}
	ast.Inspect(e, func(x ast.Expr) bool {
		switch x := x.(type) {
		case *ast.Assign:
			if id, ok := ast.Unparen(x.L).(*ast.Ident); ok && id.Obj != nil {
				if x.Op == token.Assign {
					note(id.Obj, x.R)
				} else {
					note(id.Obj, nil)
				}
			}
		case *ast.Unary:
			if x.Op == token.Inc || x.Op == token.Dec {
				if id, ok := ast.Unparen(x.X).(*ast.Ident); ok && id.Obj != nil {
					note(id.Obj, nil)
				}
			}
		case *ast.Call:
			killFreed(ext, x)
		}
		return true
	})
	for id := range defs {
		delete(ext, id)
	}
	for id, d := range defs {
		if d.count != 1 || d.rhs == nil || !eligible(objs[id]) {
			continue
		}
		if n, ok := allocSize(d.rhs); ok {
			ext[id] = n
		} else if src, ok := copySource(d.rhs); ok {
			srcID := ObjID(src)
			if _, dual := defs[srcID]; dual {
				continue // source also assigned here: order unknown
			}
			if n, ok := ext[srcID]; ok {
				ext[id] = n
			}
		}
	}
}

// allocSize recognizes a constant-size allocation expression:
// GC_malloc(const), malloc(const), calloc(const, const) — through parens
// and casts.
func allocSize(e ast.Expr) (int64, bool) {
	c, ok := stripConv(e).(*ast.Call)
	if !ok {
		return 0, false
	}
	switch calleeName(c) {
	case "malloc", "GC_malloc":
		if len(c.Args) == 1 {
			if n, ok := constEval(c.Args[0]); ok && n >= 0 {
				return n, true
			}
		}
	case "calloc":
		if len(c.Args) == 2 {
			n1, ok1 := constEval(c.Args[0])
			n2, ok2 := constEval(c.Args[1])
			if ok1 && ok2 && n1 >= 0 && n2 >= 0 {
				return n1 * n2, true
			}
		}
	}
	return 0, false
}

// copySource recognizes a plain pointer copy `q` (through parens and
// casts) and returns the source object.
func copySource(e ast.Expr) (*ast.Object, bool) {
	id, ok := stripConv(e).(*ast.Ident)
	if !ok || id.Obj == nil || !eligible(id.Obj) {
		return nil, false
	}
	return id.Obj, true
}

func calleeName(c *ast.Call) string {
	if id, ok := ast.Unparen(c.Fun).(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// constEval evaluates a compile-time constant integer expression: integer
// and character literals, enum constants, sizeof, unary +/-/~, binary
// arithmetic of constants, casts and parens.
func constEval(e ast.Expr) (int64, bool) {
	switch e := e.(type) {
	case *ast.IntLit:
		return e.Val, true
	case *ast.CharLit:
		return e.Val, true
	case *ast.Ident:
		if e.Obj != nil && e.Obj.Kind == ast.ObjEnumConst {
			return e.Obj.EnumVal, true
		}
	case *ast.SizeofType:
		if n := e.Of.Size(); n >= 0 {
			return int64(n), true
		}
	case *ast.SizeofExpr:
		if t := e.X.Type(); t != nil {
			if n := t.Size(); n >= 0 {
				return int64(n), true
			}
		}
	case *ast.Paren:
		return constEval(e.X)
	case *ast.Cast:
		return constEval(e.X)
	case *ast.Unary:
		v, ok := constEval(e.X)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case token.Plus:
			return v, true
		case token.Minus:
			return -v, true
		case token.Tilde:
			return ^v, true
		}
	case *ast.Binary:
		x, ok1 := constEval(e.X)
		y, ok2 := constEval(e.Y)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch e.Op {
		case token.Plus:
			return x + y, true
		case token.Minus:
			return x - y, true
		case token.Star:
			return x * y, true
		case token.Slash:
			if y != 0 {
				return x / y, true
			}
		case token.Percent:
			if y != 0 {
				return x % y, true
			}
		case token.Shl:
			if y >= 0 && y < 64 {
				return x << uint(y), true
			}
		case token.Shr:
			if y >= 0 && y < 64 {
				return x >> uint(y), true
			}
		}
	}
	return 0, false
}
