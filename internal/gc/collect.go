package gc

// ObjectBase maps an arbitrary address to the base address of the allocated
// heap object containing it, or 0 if a does not point into any live object.
// This is the paper's GC_base: interior pointers — addresses anywhere inside
// an object, including the extra byte past the requested end — resolve to
// the object, exactly as the collector's default configuration promises.
func (h *Heap) ObjectBase(a Addr) Addr {
	ph := h.header(a)
	if ph == nil {
		return 0
	}
	if ph.large {
		if a >= ph.base && a < ph.base+ph.spanLen && ph.allocBit(0) {
			return ph.base
		}
		return 0
	}
	off := a - ph.base
	idx := off / ph.objSize
	if idx >= ph.nobj || !ph.allocBit(idx) {
		return 0
	}
	return ph.base + idx*ph.objSize
}

// ObjectSize returns the rounded size in bytes of the live object whose base
// address is given, or 0 if base is not the base of a live object.
func (h *Heap) ObjectSize(base Addr) uint32 {
	ph := h.header(base)
	if ph == nil {
		return 0
	}
	if ph.large {
		if base == ph.base && ph.allocBit(0) {
			return ph.objSize
		}
		return 0
	}
	off := base - ph.base
	if off%ph.objSize != 0 {
		return 0
	}
	idx := off / ph.objSize
	if idx >= ph.nobj || !ph.allocBit(idx) {
		return 0
	}
	return ph.objSize
}

// markItem is one pending entry of the mark stack: the object's base
// address together with its page header, so draining never re-walks the
// page tree to rediscover what the push already resolved.
type markItem struct {
	base Addr
	ph   *pageHeader
}

// markStackMaxCap bounds the mark-stack backing array retained across
// collections: the array is reused collection to collection (no steady-state
// allocation), but one pathologically deep object graph must not pin a huge
// buffer for the rest of the heap's life.
const markStackMaxCap = 1 << 15

// Collect performs a full stop-the-world mark-sweep collection, scanning the
// roots supplied by the installed RootScanner and then, transitively, every
// word of every reached object (the heap is untyped, so scanning is fully
// conservative).
func (h *Heap) Collect() {
	if h.roots == nil || h.collecting {
		return
	}
	h.collecting = true
	defer func() { h.collecting = false }()
	if h.cfg.Inject != nil {
		// A collection cannot fail; the point exists for latency injection.
		_ = h.cfg.Inject("gc.collect")
	}

	for _, ph := range h.pages {
		// Pages with no allocated objects, and pages whose mark bitmap is
		// already clean (freshly carved or first-ever collection), have
		// nothing to clear.
		if ph.allocated == 0 || !ph.anyMarked {
			h.stats.MarkClearsSkipped++
			continue
		}
		ph.clearMarks()
	}
	h.markStack = h.markStack[:0]
	h.roots.ScanRoots(h.markAddr)
	h.drainMarkStack()
	h.sweep()
	h.sinceGC = 0
	h.stats.Collections++
	if cap(h.markStack) > markStackMaxCap {
		h.markStack = nil
	}
}

// markAddr treats w conservatively as a potential pointer: if it resolves to
// a live, not-yet-marked object, the object is marked and queued for
// scanning.
func (h *Heap) markAddr(w Addr) {
	ph := h.header(w)
	if ph == nil {
		return
	}
	var idx uint32
	if ph.large {
		if w < ph.base || w >= ph.base+ph.spanLen {
			return
		}
		idx = 0
	} else {
		idx = (w - ph.base) / ph.objSize
		if idx >= ph.nobj {
			return
		}
	}
	if !ph.allocBit(idx) || ph.markBit(idx) {
		return
	}
	ph.setMark(idx)
	h.markStack = append(h.markStack, markItem{base: ph.base + idx*ph.objSize, ph: ph})
}

func (h *Heap) drainMarkStack() {
	baseOnly := h.cfg.BaseOnlyHeapPointers
	for len(h.markStack) > 0 {
		it := h.markStack[len(h.markStack)-1]
		h.markStack = h.markStack[:len(h.markStack)-1]
		// The popped item carries its page header, so the object's size is
		// one field read — no page-tree walk, no ObjectSize re-resolution.
		size := it.ph.objSize
		off := it.base - HeapBase
		if int(off)+int(size) > len(h.arena) {
			// Cannot happen for a live object; guard rather than panic.
			continue
		}
		obj := h.arena[off : off+size]
		for i := 0; i+WordSize <= len(obj); i += WordSize {
			w := Addr(obj[i]) | Addr(obj[i+1])<<8 | Addr(obj[i+2])<<16 | Addr(obj[i+3])<<24
			if baseOnly {
				h.markBaseOnly(w)
			} else {
				h.markAddr(w)
			}
		}
	}
}

// sweep reclaims every allocated-but-unmarked object. Small-object pages
// that become entirely empty are returned to the free-page pool; otherwise
// freed slots rejoin their size-class free list. When Config.Poison is set,
// reclaimed memory is filled with PoisonByte so that a GC-unsafe program
// touching a prematurely collected object reads recognizably dead data.
func (h *Heap) sweep() {
	var liveObj, liveBytes uint64
	// The per-class free lists are rebuilt from scratch: threading freed
	// objects while stale list links still point into reclaimed pages would
	// corrupt the lists.
	for i := range h.freeLists {
		h.freeLists[i] = 0
	}
	kept := h.pages[:0]
	for _, ph := range h.pages {
		if ph.large {
			if ph.markBit(0) {
				liveObj++
				liveBytes += uint64(ph.objSize)
				kept = append(kept, ph)
				continue
			}
			if ph.allocBit(0) {
				h.stats.ObjectsFreed++
				h.stats.BytesFreed += uint64(ph.objSize)
				if h.cfg.Poison {
					h.poison(ph.base, ph.objSize)
				}
			}
			h.releaseSpan(ph)
			continue
		}
		var liveHere uint32
		for i := uint32(0); i < ph.nobj; i++ {
			if ph.markBit(i) {
				liveHere++
			}
		}
		if liveHere == 0 {
			for i := uint32(0); i < ph.nobj; i++ {
				if ph.allocBit(i) {
					h.stats.ObjectsFreed++
					h.stats.BytesFreed += uint64(ph.objSize)
					if h.cfg.Poison {
						h.poison(ph.base+i*ph.objSize, ph.objSize)
					}
					ph.clearAlloc(i)
				}
			}
			h.releaseSpan(ph)
			continue
		}
		kept = append(kept, ph)
		class := ph.objSize / Granule
		for i := uint32(0); i < ph.nobj; i++ {
			obj := ph.base + i*ph.objSize
			switch {
			case ph.markBit(i):
				liveObj++
				liveBytes += uint64(ph.objSize)
			case ph.allocBit(i):
				h.stats.ObjectsFreed++
				h.stats.BytesFreed += uint64(ph.objSize)
				if h.cfg.Poison {
					h.poison(obj, ph.objSize)
				}
				ph.clearAlloc(i)
				h.setRawWord(obj, h.freeLists[class])
				h.freeLists[class] = obj
			default: // was already free: rethread
				h.setRawWord(obj, h.freeLists[class])
				h.freeLists[class] = obj
			}
		}
	}
	h.pages = kept
	h.stats.LiveObjects = liveObj
	h.stats.LiveBytes = liveBytes
}

// releaseSpan unmaps a header's pages and returns them to the free pool.
func (h *Heap) releaseSpan(ph *pageHeader) {
	first := (ph.base - HeapBase) / PageSize
	npages := uint32(1)
	if ph.large {
		npages = ph.spanLen / PageSize
	}
	for p := first; p < first+npages; p++ {
		h.setHeader(p, nil)
	}
	h.freeSpans = append(h.freeSpans, span{page: first, npages: npages})
}

func (h *Heap) poison(a Addr, n uint32) {
	off := a - HeapBase
	for i := uint32(0); i < n; i++ {
		h.arena[off+i] = PoisonByte
	}
}
