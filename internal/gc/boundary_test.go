package gc

import "testing"

// Edge cases of the GC_base / GC_same_obj contract: the one-past-the-end
// rule (every object is allocated with at least one extra byte so that the
// C-legal one-past-the-end pointer still resolves to the object),
// zero-size allocations, and pointers at page boundaries of multi-page
// objects.

func TestOnePastEndResolvesToObject(t *testing.T) {
	h := newTestHeap(t)
	for _, n := range []uint32{1, 7, 8, 16, 40, 100, 511} {
		a := mustAlloc(t, h, n)
		if got := h.Base(a + n); got != a {
			t.Fatalf("Base(a+%d) = %#x, want %#x (one-past-the-end must stay in the object)", n, got, a)
		}
		if _, err := h.SameObject(a+n, a); err != nil {
			t.Fatalf("GC_same_obj(a+%d, a) rejected the one-past-the-end pointer: %v", n, err)
		}
	}
}

func TestOnePastEndKeepsObjectLive(t *testing.T) {
	h := newTestHeap(t)
	const n = 24
	a := mustAlloc(t, h, n)
	// Allocate a neighbor so a's page stays interesting, then drop every
	// reference to a except the one-past-the-end pointer.
	b := mustAlloc(t, h, n)
	h.SetRoots(rootList{a + n, b})
	h.Collect()
	if got := h.ObjectBase(a); got != a {
		t.Fatalf("object reclaimed despite a live one-past-the-end pointer (Base = %#x)", got)
	}
	if err := h.ValidateAccess(a, 4); err != nil {
		t.Fatalf("object not accessible after collection: %v", err)
	}
}

func TestOnePastRoundedEndIsOutside(t *testing.T) {
	h := newTestHeap(t)
	a := mustAlloc(t, h, 24)
	end := a + h.ObjectSize(a)
	if got := h.ObjectBase(end); got == a {
		t.Fatalf("pointer one past the rounded extent still resolves to the object")
	}
}

func TestZeroSizeAllocationsAreDistinctObjects(t *testing.T) {
	h := newTestHeap(t)
	a := mustAlloc(t, h, 0)
	b := mustAlloc(t, h, 0)
	if a == b {
		t.Fatalf("two zero-size allocations share an address")
	}
	if h.ObjectBase(a) != a || h.ObjectBase(b) != b {
		t.Fatalf("zero-size allocation is not a live object")
	}
	// The extra byte makes even a zero-size object's one-past-the-end
	// (== base) pointer valid, and the object accessible at one byte.
	if err := h.ValidateAccess(a, 1); err != nil {
		t.Fatalf("zero-size object rejects a 1-byte access: %v", err)
	}
	if _, err := h.SameObject(a, b); err == nil {
		t.Fatalf("GC_same_obj accepted pointers into two distinct zero-size objects")
	}
	h.SetRoots(rootList{a})
	h.Collect()
	if h.ObjectBase(a) != a {
		t.Fatalf("rooted zero-size object was reclaimed")
	}
	if h.ObjectBase(b) != 0 {
		t.Fatalf("unrooted zero-size object survived collection")
	}
}

func TestPageBoundaryInteriorPointersOfLargeObject(t *testing.T) {
	h := newTestHeap(t)
	// Three-and-a-bit pages: interior pointers at every page boundary of
	// the span must resolve to the base.
	n := uint32(3*PageSize + 100)
	a := mustAlloc(t, h, n)
	for _, p := range []Addr{a, a + PageSize, a + 2*PageSize, a + 3*PageSize, a + n} {
		if got := h.Base(p); got != a {
			t.Fatalf("Base(%#x) = %#x, want %#x (offset %d into a %d-byte object)",
				p, got, a, p-a, n)
		}
	}
	// A page-boundary interior pointer alone must keep the whole span live.
	h.SetRoots(rootList{a + 2*PageSize})
	h.Collect()
	if h.ObjectBase(a) != a {
		t.Fatalf("large object reclaimed despite a live page-boundary interior pointer")
	}
	if err := h.ValidateAccess(a+n-4, 4); err != nil {
		t.Fatalf("tail of large object not accessible: %v", err)
	}
}

func TestSmallObjectAtPageBoundary(t *testing.T) {
	h := newTestHeap(t)
	// Fill at least one whole page with 64-byte-class objects so that some
	// object's extent ends exactly at a page boundary.
	size := h.ObjectSize(mustAlloc(t, h, 56))
	if size == 0 || PageSize%size != 0 {
		t.Fatalf("test assumes the class size divides the page (size=%d)", size)
	}
	objs := []Addr{}
	for i := uint32(0); i < 2*PageSize/size; i++ {
		objs = append(objs, mustAlloc(t, h, 56))
	}
	var last Addr // an object whose extent ends exactly at a page boundary
	for _, a := range objs {
		if (a+size)%PageSize == 0 {
			last = a
			break
		}
	}
	if last == 0 {
		t.Fatalf("no object found ending at a page boundary")
	}
	// One past the requested end stays inside; the first byte of the next
	// page belongs to some other object (or none), never to this one.
	if got := h.Base(last + 56); got != last {
		t.Fatalf("Base(one past requested end) = %#x, want %#x", got, last)
	}
	next := last + size
	if got := h.Base(next); got == last {
		t.Fatalf("pointer at next page start resolves to the previous page's object")
	}
	if _, err := h.SameObject(next, last); err == nil && h.Base(next) != 0 {
		t.Fatalf("GC_same_obj accepted a pointer that crossed a page boundary out of its object")
	}
}

func TestSameObjectVacuousForNonHeapPointers(t *testing.T) {
	h := newTestHeap(t)
	a := mustAlloc(t, h, 16)
	// q outside the heap: the paper does not check references to static and
	// stack memory, so the check passes regardless of p.
	if _, err := h.SameObject(a+123456, 0x2000); err != nil {
		t.Fatalf("GC_same_obj checked a non-heap q: %v", err)
	}
}
