package gc

import (
	"errors"
	"testing"
)

// countingInject is a hand-rolled Config.Inject hook (the heap is
// deliberately decoupled from internal/faultinject; the hook contract is
// what these tests pin down).
type countingInject struct {
	failAllocAfter int // -1 = never
	forceCollect   bool
	allocs         int
	collects       int
}

var errInjectedAlloc = errors.New("injected alloc failure")

func (c *countingInject) inject(point string) error {
	switch point {
	case "gc.alloc":
		c.allocs++
		if c.failAllocAfter >= 0 && c.allocs > c.failAllocAfter {
			return errInjectedAlloc
		}
	case "gc.collect.force":
		if c.forceCollect {
			return errors.New("force")
		}
	case "gc.collect":
		c.collects++
	}
	return nil
}

func TestInjectedAllocFailure(t *testing.T) {
	ci := &countingInject{failAllocAfter: 2}
	h := NewHeap(Config{Inject: ci.inject})
	h.SetRoots(RootFunc(func(func(Addr)) {}))
	for i := 0; i < 2; i++ {
		if _, err := h.Alloc(16); err != nil {
			t.Fatalf("alloc %d failed before the injected threshold: %v", i, err)
		}
	}
	_, err := h.Alloc(16)
	if err == nil {
		t.Fatal("third alloc succeeded past the injected failure")
	}
	if !errors.Is(err, errInjectedAlloc) {
		t.Fatalf("cause not preserved through gc.Error: %v", err)
	}
	var ge *Error
	if !errors.As(err, &ge) || ge.Op != "alloc" {
		t.Fatalf("want a gc.Error with Op=alloc, got %#v", err)
	}
	// The failed allocation must not be accounted.
	if got := h.Stats().ObjectsAlloced; got != 2 {
		t.Fatalf("ObjectsAlloced = %d, want 2", got)
	}
}

func TestInjectedForcedCollectionSchedule(t *testing.T) {
	ci := &countingInject{failAllocAfter: -1, forceCollect: true}
	h := NewHeap(Config{Inject: ci.inject})
	var keep []Addr
	h.SetRoots(RootFunc(func(visit func(Addr)) {
		for _, a := range keep {
			visit(a)
		}
	}))
	for i := 0; i < 10; i++ {
		a, err := h.Alloc(24)
		if err != nil {
			t.Fatal(err)
		}
		keep = append(keep, a)
	}
	st := h.Stats()
	// Every allocation forced a collection, far more than the byte trigger
	// (default 256 KiB over 10*24 bytes = zero collections) would run.
	if st.Collections != 10 {
		t.Fatalf("Collections = %d, want 10 (one forced per alloc)", st.Collections)
	}
	if ci.collects != 10 {
		t.Fatalf("gc.collect fired %d times, want 10", ci.collects)
	}
	// Nothing live may have been reclaimed by the perturbed schedule.
	if st.ObjectsFreed != 0 {
		t.Fatalf("forced collections reclaimed %d live objects", st.ObjectsFreed)
	}
	for _, a := range keep {
		if h.ObjectBase(a) != a {
			t.Fatalf("object %#x lost under forced-collection schedule", a)
		}
	}
}

func TestInjectHookAbsentIsInert(t *testing.T) {
	h := NewHeap(Config{})
	h.SetRoots(RootFunc(func(func(Addr)) {}))
	if _, err := h.Alloc(8); err != nil {
		t.Fatal(err)
	}
}
