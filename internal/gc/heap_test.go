package gc

import (
	"testing"
	"testing/quick"
)

// rootList is a RootScanner over an explicit slice of words.
type rootList []Addr

func (r rootList) ScanRoots(visit func(Addr)) {
	for _, w := range r {
		visit(w)
	}
}

func newTestHeap(t *testing.T) *Heap {
	t.Helper()
	return NewHeap(Config{MaxBytes: 8 << 20, TriggerBytes: ^uint32(0), Poison: true})
}

func mustAlloc(t *testing.T, h *Heap, n uint32) Addr {
	t.Helper()
	a, err := h.Alloc(n)
	if err != nil {
		t.Fatalf("Alloc(%d): %v", n, err)
	}
	return a
}

func TestAllocBasics(t *testing.T) {
	h := newTestHeap(t)
	a := mustAlloc(t, h, 16)
	if a < HeapBase {
		t.Fatalf("address %#x below heap base", a)
	}
	if a%Granule != 0 {
		t.Fatalf("address %#x not granule-aligned", a)
	}
	if got := h.ObjectBase(a); got != a {
		t.Fatalf("ObjectBase(base) = %#x, want %#x", got, a)
	}
	// 16 requested + 1 extra byte rounds to 24.
	if got := h.ObjectSize(a); got != 24 {
		t.Fatalf("ObjectSize = %d, want 24", got)
	}
}

func TestAllocZeroBytes(t *testing.T) {
	h := newTestHeap(t)
	a := mustAlloc(t, h, 0)
	if h.ObjectSize(a) == 0 {
		t.Fatal("zero-size request produced no object")
	}
}

func TestAllocZeroesMemory(t *testing.T) {
	h := newTestHeap(t)
	a := mustAlloc(t, h, 64)
	for off := uint32(0); off < 64; off += WordSize {
		w, err := h.ReadWord(a + off)
		if err != nil {
			t.Fatal(err)
		}
		if w != 0 {
			t.Fatalf("fresh object word at +%d = %#x, want 0", off, w)
		}
	}
}

func TestInteriorPointerResolution(t *testing.T) {
	h := newTestHeap(t)
	a := mustAlloc(t, h, 100)
	size := h.ObjectSize(a)
	for _, off := range []uint32{0, 1, 50, 99, 100, size - 1} {
		if got := h.ObjectBase(a + off); got != a {
			t.Errorf("ObjectBase(base+%d) = %#x, want %#x", off, got, a)
		}
	}
	if got := h.ObjectBase(a + size); got == a {
		t.Errorf("ObjectBase one past the rounded object still resolved to it")
	}
}

func TestOnePastEndStaysInObject(t *testing.T) {
	// The extra allocated byte means a pointer one past the *requested* end
	// still resolves to the object, as ANSI C pointer arithmetic requires.
	h := newTestHeap(t)
	for _, n := range []uint32{1, 7, 8, 16, 511, 512, 513, 5000} {
		a := mustAlloc(t, h, n)
		if got := h.ObjectBase(a + n); got != a {
			t.Errorf("n=%d: one-past-end pointer resolved to %#x, want %#x", n, got, a)
		}
	}
}

func TestLargeObject(t *testing.T) {
	h := newTestHeap(t)
	a := mustAlloc(t, h, 3*PageSize+100)
	if h.ObjectBase(a+2*PageSize) != a {
		t.Fatal("interior pointer into continuation page did not resolve")
	}
	if h.ObjectSize(a) < 3*PageSize+100 {
		t.Fatalf("large object size %d too small", h.ObjectSize(a))
	}
}

func TestNonHeapAddresses(t *testing.T) {
	h := newTestHeap(t)
	mustAlloc(t, h, 16)
	for _, a := range []Addr{0, 4, 0x1000, HeapBase - 4, h.limit, h.limit + 100, 0xFFFF_FFF0} {
		if got := h.ObjectBase(a); got != 0 {
			t.Errorf("ObjectBase(%#x) = %#x, want 0", a, got)
		}
	}
}

func TestCollectReclaimsUnreachable(t *testing.T) {
	h := newTestHeap(t)
	keep := mustAlloc(t, h, 32)
	var dropped []Addr
	for i := 0; i < 100; i++ {
		dropped = append(dropped, mustAlloc(t, h, 32))
	}
	h.SetRoots(rootList{keep})
	h.Collect()
	st := h.Stats()
	if st.ObjectsFreed != 100 {
		t.Fatalf("ObjectsFreed = %d, want 100", st.ObjectsFreed)
	}
	if st.LiveObjects != 1 {
		t.Fatalf("LiveObjects = %d, want 1", st.LiveObjects)
	}
	if h.ObjectBase(keep) != keep {
		t.Fatal("rooted object was collected")
	}
	for _, d := range dropped {
		if h.ObjectBase(d) != 0 {
			t.Fatalf("dropped object %#x still live", d)
		}
	}
}

func TestCollectFollowsHeapChains(t *testing.T) {
	h := newTestHeap(t)
	// Build a linked list a -> b -> c entirely in the heap; root only a.
	a := mustAlloc(t, h, 8)
	b := mustAlloc(t, h, 8)
	c := mustAlloc(t, h, 8)
	if err := h.WriteWord(a, b); err != nil {
		t.Fatal(err)
	}
	if err := h.WriteWord(b, c); err != nil {
		t.Fatal(err)
	}
	h.SetRoots(rootList{a})
	h.Collect()
	for _, x := range []Addr{a, b, c} {
		if h.ObjectBase(x) != x {
			t.Fatalf("chained object %#x collected", x)
		}
	}
}

func TestInteriorPointerKeepsObjectAlive(t *testing.T) {
	h := newTestHeap(t)
	a := mustAlloc(t, h, 200)
	h.SetRoots(rootList{a + 137}) // only an interior pointer as root
	h.Collect()
	if h.ObjectBase(a) != a {
		t.Fatal("object referenced only by an interior pointer was collected")
	}
}

func TestPoisoningOnSweep(t *testing.T) {
	h := newTestHeap(t)
	a := mustAlloc(t, h, 32)
	keep := mustAlloc(t, h, 32) // keeps the page partially occupied
	if err := h.WriteWord(a, 0x12345678); err != nil {
		t.Fatal(err)
	}
	h.SetRoots(rootList{keep})
	h.Collect()
	// The freed slot's non-link bytes must carry the poison pattern.
	bt, err := h.ReadByteAt(a + WordSize)
	if err != nil {
		t.Fatal(err)
	}
	if bt != PoisonByte {
		t.Fatalf("freed memory byte = %#x, want poison %#x", bt, PoisonByte)
	}
}

func TestValidateAccess(t *testing.T) {
	h := newTestHeap(t)
	a := mustAlloc(t, h, 32)
	junk := mustAlloc(t, h, 32)
	h.SetRoots(rootList{a})
	h.Collect()
	if err := h.ValidateAccess(a, 4); err != nil {
		t.Fatalf("access to live object rejected: %v", err)
	}
	if err := h.ValidateAccess(junk, 4); err == nil {
		t.Fatal("access to reclaimed object not detected")
	}
	if err := h.ValidateAccess(0x2000, 4); err != nil {
		t.Fatalf("non-heap access rejected: %v", err)
	}
	size := h.ObjectSize(a)
	if err := h.ValidateAccess(a+size-2, 4); err == nil {
		t.Fatal("access crossing the object end not detected")
	}
}

func TestReuseAfterCollect(t *testing.T) {
	h := NewHeap(Config{MaxBytes: 1 << 20, TriggerBytes: ^uint32(0), Poison: true})
	h.SetRoots(rootList{})
	// Allocate far more than the heap limit in total; with collection the
	// space must be reused.
	for i := 0; i < 10000; i++ {
		if _, err := h.Alloc(256); err != nil {
			h.Collect()
			if _, err := h.Alloc(256); err != nil {
				t.Fatalf("iteration %d: allocation failed after collect: %v", i, err)
			}
		}
	}
	if h.Stats().Collections == 0 {
		t.Fatal("expected at least one collection")
	}
}

func TestAllocationTrigger(t *testing.T) {
	h := NewHeap(Config{MaxBytes: 8 << 20, TriggerBytes: 4096, Poison: true})
	h.SetRoots(rootList{})
	for i := 0; i < 1000; i++ {
		mustAlloc(t, h, 32)
	}
	if h.Stats().Collections == 0 {
		t.Fatal("allocation-triggered collection never fired")
	}
}

func TestSameObject(t *testing.T) {
	h := newTestHeap(t)
	a := mustAlloc(t, h, 40)
	b := mustAlloc(t, h, 40)
	if _, err := h.SameObject(a+8, a); err != nil {
		t.Errorf("in-object arithmetic rejected: %v", err)
	}
	if _, err := h.SameObject(a+40, a); err != nil {
		t.Errorf("one-past-end arithmetic rejected: %v", err)
	}
	if _, err := h.SameObject(b, a); err == nil {
		t.Error("cross-object pointer accepted")
	}
	if _, err := h.SameObject(a-4, a); err == nil {
		t.Error("one-before-the-beginning pointer accepted (the classic C bug)")
	}
	// Static pointers pass vacuously.
	if _, err := h.SameObject(0x2000, 0x2004); err != nil {
		t.Errorf("static pointer pair rejected: %v", err)
	}
}

func TestPreAndPostIncr(t *testing.T) {
	h := newTestHeap(t)
	a := mustAlloc(t, h, 16)
	slot := a
	load := func() Addr { w, _ := h.ReadWord(slot); return w }
	store := func(w Addr) { _ = h.WriteWord(slot, w) }
	store(a + 4)
	got, err := h.PreIncr(load, store, 4)
	if err != nil || got != a+8 {
		t.Fatalf("PreIncr = %#x, %v; want %#x, nil", got, err, a+8)
	}
	got, err = h.PostIncr(load, store, 4)
	if err != nil || got != a+8 {
		t.Fatalf("PostIncr = %#x, %v; want %#x, nil", got, err, a+8)
	}
	if load() != a+12 {
		t.Fatalf("slot after PostIncr = %#x, want %#x", load(), a+12)
	}
	// Walking far past the object must be flagged.
	if _, err := h.PreIncr(load, store, 1<<16); err == nil {
		t.Fatal("PreIncr past object end not detected")
	}
}

func TestHeapLimit(t *testing.T) {
	h := NewHeap(Config{MaxBytes: 64 << 10, TriggerBytes: ^uint32(0)})
	var last error
	var kept []Addr
	for i := 0; i < 100; i++ {
		a, err := h.Alloc(4096)
		if err != nil {
			last = err
			break
		}
		kept = append(kept, a)
	}
	_ = kept
	if last == nil {
		t.Fatal("heap limit never enforced")
	}
}

// Property: ObjectBase is idempotent and consistent with ObjectSize for
// arbitrary probe offsets into arbitrary allocations.
func TestQuickObjectBaseConsistency(t *testing.T) {
	h := newTestHeap(t)
	var bases []Addr
	var sizes []uint32
	f := func(req uint16, probe uint16) bool {
		n := uint32(req)%2000 + 1
		a, err := h.Alloc(n)
		if err != nil {
			h.SetRoots(rootList{})
			h.Collect()
			bases, sizes = nil, nil
			a, err = h.Alloc(n)
			if err != nil {
				return false
			}
		}
		bases = append(bases, a)
		sizes = append(sizes, h.ObjectSize(a))
		size := h.ObjectSize(a)
		off := uint32(probe) % size
		b := h.ObjectBase(a + off)
		if b != a {
			return false
		}
		if h.ObjectBase(b) != b {
			return false
		}
		return h.ObjectSize(b) == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: after a collection with an arbitrary subset of objects rooted,
// exactly the rooted objects (no heap links here) survive.
func TestQuickRootSubsetSurvival(t *testing.T) {
	f := func(mask uint16) bool {
		h := NewHeap(Config{MaxBytes: 4 << 20, TriggerBytes: ^uint32(0), Poison: true})
		var all []Addr
		for i := 0; i < 16; i++ {
			a, err := h.Alloc(48)
			if err != nil {
				return false
			}
			all = append(all, a)
		}
		var roots rootList
		for i, a := range all {
			if mask&(1<<i) != 0 {
				roots = append(roots, a)
			}
		}
		h.SetRoots(roots)
		h.Collect()
		for i, a := range all {
			want := mask&(1<<i) != 0
			got := h.ObjectBase(a) == a
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: SameObject(p+k, p) succeeds iff 0 <= off+k <= size for pointers
// derived from a live object (using the rounded size, per the paper's
// accuracy caveat).
func TestQuickSameObjectBounds(t *testing.T) {
	h := newTestHeap(t)
	a := mustAlloc(t, h, 256)
	size := int64(h.ObjectSize(a))
	f := func(k int16) bool {
		p := Addr(int64(a) + int64(k))
		_, err := h.SameObject(p, a)
		inside := int64(k) >= 0 && int64(k) < size
		// One-past-rounded-end is outside; anything in [0,size) is inside.
		if inside {
			return err == nil
		}
		// Outside the object: must fail unless it happens to land inside
		// another live object is irrelevant — base differs either way.
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestWordRoundTrip(t *testing.T) {
	h := newTestHeap(t)
	a := mustAlloc(t, h, 64)
	vals := []Addr{0, 1, 0xDEADBEEF, 0xFFFFFFFF, 0x12345678}
	for i, v := range vals {
		if err := h.WriteWord(a+uint32(i)*4, v); err != nil {
			t.Fatal(err)
		}
	}
	for i, v := range vals {
		got, err := h.ReadWord(a + uint32(i)*4)
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Fatalf("word %d: got %#x want %#x", i, got, v)
		}
	}
}

func TestMisalignedWordAccess(t *testing.T) {
	h := newTestHeap(t)
	a := mustAlloc(t, h, 16)
	if _, err := h.ReadWord(a + 1); err == nil {
		t.Fatal("misaligned read accepted")
	}
	if err := h.WriteWord(a+2, 1); err == nil {
		t.Fatal("misaligned write accepted")
	}
}

func TestByteAccess(t *testing.T) {
	h := newTestHeap(t)
	a := mustAlloc(t, h, 8)
	if err := h.WriteByteAt(a+3, 0xAB); err != nil {
		t.Fatal(err)
	}
	b, err := h.ReadByteAt(a + 3)
	if err != nil || b != 0xAB {
		t.Fatalf("byte round trip: %#x, %v", b, err)
	}
	if _, err := h.ReadByteAt(HeapBase - 1); err == nil {
		t.Fatal("out-of-heap byte read accepted")
	}
}

func TestStatsAccounting(t *testing.T) {
	h := newTestHeap(t)
	mustAlloc(t, h, 10)
	mustAlloc(t, h, 10)
	st := h.Stats()
	if st.ObjectsAlloced != 2 {
		t.Fatalf("ObjectsAlloced = %d, want 2", st.ObjectsAlloced)
	}
	if st.BytesAllocated == 0 || st.HeapBytes == 0 {
		t.Fatalf("byte accounting missing: %+v", st)
	}
}

func TestFreeListReuseSameClass(t *testing.T) {
	h := newTestHeap(t)
	a := mustAlloc(t, h, 32)
	h.SetRoots(rootList{})
	h.Collect()
	// The freed slot should be handed out again for an equal-size request.
	b := mustAlloc(t, h, 32)
	if a != b {
		// Not guaranteed to be the identical slot, but it must come from
		// the same (reused) page span rather than growing the heap.
		if h.Stats().HeapBytes > uint64(2*PageSize) {
			t.Fatalf("heap grew (%d bytes) instead of reusing freed space", h.Stats().HeapBytes)
		}
	}
}

func TestLargeObjectReclaim(t *testing.T) {
	h := newTestHeap(t)
	a := mustAlloc(t, h, 5*PageSize)
	h.SetRoots(rootList{})
	h.Collect()
	if h.ObjectBase(a) != 0 {
		t.Fatal("large object survived with no roots")
	}
	b := mustAlloc(t, h, 5*PageSize)
	if b != a {
		t.Fatalf("large span not reused: got %#x, want %#x", b, a)
	}
}

func TestCollectWithoutRootsIsNoop(t *testing.T) {
	h := newTestHeap(t)
	mustAlloc(t, h, 16)
	h.Collect() // no scanner installed: must not reclaim anything
	if h.Stats().Collections != 0 {
		t.Fatal("collection ran without a root scanner")
	}
}

func TestBaseOnlyHeapPointerMode(t *testing.T) {
	// The Extensions-section operating mode: interior pointers in the heap
	// are not references; interior pointers in roots still are.
	h := NewHeap(Config{MaxBytes: 4 << 20, TriggerBytes: ^uint32(0), Poison: true, BaseOnlyHeapPointers: true})
	holder := mustAlloc(t, h, 16)
	target := mustAlloc(t, h, 64)
	target2 := mustAlloc(t, h, 64)
	if err := h.WriteWord(holder, target); err != nil { // base pointer in heap: OK
		t.Fatal(err)
	}
	if err := h.WriteWord(holder+4, target2+8); err != nil { // interior pointer in heap
		t.Fatal(err)
	}
	h.SetRoots(rootList{holder + 3}) // interior root is still recognized
	h.Collect()
	if h.ObjectBase(holder) != holder {
		t.Fatal("interior root pointer no longer keeps its object alive")
	}
	if h.ObjectBase(target) != target {
		t.Fatal("base pointer stored in the heap was not followed")
	}
	if h.ObjectBase(target2) != 0 {
		t.Fatal("interior pointer stored in the heap kept its object alive in base-only mode")
	}
}

func TestCheckBaseStore(t *testing.T) {
	h := NewHeap(Config{MaxBytes: 4 << 20, TriggerBytes: ^uint32(0), BaseOnlyHeapPointers: true})
	a := mustAlloc(t, h, 64)
	if err := h.CheckBaseStore(a, false); err != nil {
		t.Errorf("base pointer store rejected: %v", err)
	}
	if err := h.CheckBaseStore(a+8, false); err == nil {
		t.Error("interior pointer store into heap not rejected")
	}
	if err := h.CheckBaseStore(a+8, true); err != nil {
		t.Errorf("interior pointer store to a root area rejected: %v", err)
	}
	if err := h.CheckBaseStore(0x2000, false); err != nil {
		t.Errorf("non-heap value rejected: %v", err)
	}
	// In the default mode the check is vacuous.
	h2 := NewHeap(Config{MaxBytes: 1 << 20, TriggerBytes: ^uint32(0)})
	b, err := h2.Alloc(32)
	if err != nil {
		t.Fatal(err)
	}
	if err := h2.CheckBaseStore(b+4, false); err != nil {
		t.Errorf("default mode should not enforce the base-only discipline: %v", err)
	}
}

// TestChurnPreservesLiveContents hammers the allocator with random
// alloc/drop cycles while verifying that every retained object keeps its
// exact contents across collections (failure injection for the sweep and
// free-list logic).
func TestChurnPreservesLiveContents(t *testing.T) {
	h := NewHeap(Config{MaxBytes: 2 << 20, TriggerBytes: 32 << 10, Poison: true})
	type obj struct {
		addr Addr
		seed uint32
		size uint32
	}
	var live []obj
	var roots rootList
	h.SetRoots(gcRootsPtr{&roots})
	rng := uint32(0xC0FFEE)
	next := func(n uint32) uint32 {
		rng ^= rng << 13
		rng ^= rng >> 17
		rng ^= rng << 5
		return rng % n
	}
	fill := func(o obj) {
		for off := uint32(0); off+4 <= o.size; off += 4 {
			if err := h.WriteWord(o.addr+off, o.seed^off); err != nil {
				t.Fatal(err)
			}
		}
	}
	verify := func(o obj) {
		for off := uint32(0); off+4 <= o.size; off += 4 {
			w, err := h.ReadWord(o.addr + off)
			if err != nil {
				t.Fatal(err)
			}
			if w != o.seed^off {
				t.Fatalf("object %#x corrupted at +%d: %#x != %#x", o.addr, off, w, o.seed^off)
			}
		}
	}
	for step := 0; step < 4000; step++ {
		switch next(4) {
		case 0, 1: // allocate
			size := next(600) + 4
			a, err := h.Alloc(size)
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			o := obj{addr: a, seed: rng, size: size &^ 3}
			fill(o)
			live = append(live, o)
		case 2: // drop a random object
			if len(live) > 0 {
				i := int(next(uint32(len(live))))
				live = append(live[:i], live[i+1:]...)
			}
		case 3: // verify a random survivor
			if len(live) > 0 {
				verify(live[int(next(uint32(len(live))))])
			}
		}
		roots = roots[:0]
		for _, o := range live {
			roots = append(roots, o.addr)
		}
	}
	h.Collect()
	for _, o := range live {
		verify(o)
	}
	if h.Stats().Collections == 0 {
		t.Fatal("no collections during churn")
	}
}

// gcRootsPtr scans through a pointer so the root set can be swapped.
type gcRootsPtr struct{ roots *rootList }

func (g gcRootsPtr) ScanRoots(visit func(Addr)) {
	for _, w := range *g.roots {
		visit(w)
	}
}
