package gc

import (
	"sort"
	"testing"
)

func collectObjects(h *Heap) []ObjectInfo {
	var objs []ObjectInfo
	h.VisitObjects(func(o ObjectInfo) { objs = append(objs, o) })
	sort.Slice(objs, func(i, j int) bool { return objs[i].Base < objs[j].Base })
	return objs
}

func TestVisitObjectsBasics(t *testing.T) {
	h := newTestHeap(t)
	a := mustAlloc(t, h, 16)
	b := mustAlloc(t, h, 100)
	big := mustAlloc(t, h, 2*PageSize)
	objs := collectObjects(h)
	if len(objs) != 3 {
		t.Fatalf("VisitObjects saw %d objects, want 3", len(objs))
	}
	byBase := map[Addr]ObjectInfo{}
	for _, o := range objs {
		byBase[o.Base] = o
	}
	for _, base := range []Addr{a, b, big} {
		o, ok := byBase[base]
		if !ok {
			t.Fatalf("object %#x missing from VisitObjects", base)
		}
		if o.Size != h.ObjectSize(base) {
			t.Errorf("object %#x: size %d, want %d", base, o.Size, h.ObjectSize(base))
		}
		if o.Epoch != h.EpochOf(base) {
			t.Errorf("object %#x: epoch %d, want %d", base, o.Epoch, h.EpochOf(base))
		}
	}
	if !byBase[big].Large {
		t.Errorf("object %#x not flagged large", big)
	}
	if byBase[a].Large {
		t.Errorf("object %#x flagged large", a)
	}
}

// TestFreeThenSnapshotExcludesRetired is the satellite fix's test: objects
// retired by Heap.Free — poisoned, epoch cleared — must vanish from
// VisitObjects, BaseRO and VisitReferences even before any collection runs.
func TestFreeThenSnapshotExcludesRetired(t *testing.T) {
	h := newTestHeap(t)
	keep := mustAlloc(t, h, 16)
	dead := mustAlloc(t, h, 16)
	// keep references dead, so the edge must also disappear with the object.
	h.setRawWord(keep, dead)
	if err := h.Free(dead); err != nil {
		t.Fatalf("Free: %v", err)
	}
	objs := collectObjects(h)
	if len(objs) != 1 || objs[0].Base != keep {
		t.Fatalf("after Free, VisitObjects = %+v, want only %#x", objs, keep)
	}
	if got := h.BaseRO(dead); got != 0 {
		t.Fatalf("BaseRO(freed) = %#x, want 0", got)
	}
	refs := 0
	if !h.VisitReferences(keep, func(off uint32, target Addr) { refs++ }) {
		t.Fatal("VisitReferences(keep) reported not-an-object")
	}
	if refs != 0 {
		t.Fatalf("VisitReferences found %d edges into freed storage, want 0", refs)
	}
	if h.VisitReferences(dead, func(uint32, Addr) {}) {
		t.Fatal("VisitReferences(freed object) should report false")
	}
	// A freed large object must be gone too.
	big := mustAlloc(t, h, 2*PageSize)
	if err := h.Free(big); err != nil {
		t.Fatalf("Free(large): %v", err)
	}
	for _, o := range collectObjects(h) {
		if o.Base == big {
			t.Fatalf("freed large object %#x still visited", big)
		}
	}
}

func TestVisitReferencesFindsConservativeEdges(t *testing.T) {
	h := newTestHeap(t)
	a := mustAlloc(t, h, 32)
	b := mustAlloc(t, h, 32)
	c := mustAlloc(t, h, 32)
	h.setRawWord(a, b)       // exact base pointer
	h.setRawWord(a+4, c+8)   // interior pointer
	h.setRawWord(a+8, a)     // self-reference
	h.setRawWord(a+12, 1234) // not a heap address
	got := map[uint32]Addr{}
	if !h.VisitReferences(a, func(off uint32, target Addr) { got[off] = target }) {
		t.Fatal("VisitReferences reported not-an-object")
	}
	want := map[uint32]Addr{0: b, 4: c, 8: a}
	if len(got) != len(want) {
		t.Fatalf("edges = %v, want %v", got, want)
	}
	for off, tgt := range want {
		if got[off] != tgt {
			t.Errorf("edge at +%d = %#x, want %#x", off, got[off], tgt)
		}
	}
}

func TestVisitReferencesBaseOnlyMode(t *testing.T) {
	h := NewHeap(Config{MaxBytes: 8 << 20, TriggerBytes: ^uint32(0), Poison: true,
		BaseOnlyHeapPointers: true})
	a, _ := h.Alloc(32)
	b, _ := h.Alloc(32)
	c, _ := h.Alloc(32)
	h.setRawWord(a, b)     // base pointer: recognized
	h.setRawWord(a+4, c+8) // interior pointer in the heap: not a reference
	got := map[uint32]Addr{}
	h.VisitReferences(a, func(off uint32, target Addr) { got[off] = target })
	if len(got) != 1 || got[0] != b {
		t.Fatalf("base-only edges = %v, want only +0 -> %#x", got, b)
	}
}

// TestIntrospectionDoesNotTouchHeaderCache pins the race fix: the snapshot
// path must leave the one-entry page-header cache exactly as it found it,
// so a reader iterating objects cannot race a mutator's cache fills.
func TestIntrospectionDoesNotTouchHeaderCache(t *testing.T) {
	h := newTestHeap(t)
	a := mustAlloc(t, h, 16)
	b := mustAlloc(t, h, 2*PageSize)
	h.setRawWord(a, b)
	h.cachePage, h.cacheHdr = 0, nil
	h.VisitObjects(func(ObjectInfo) {})
	_ = h.BaseRO(a)
	_ = h.BaseRO(b + 8)
	h.VisitReferences(a, func(uint32, Addr) {})
	if h.cachePage != 0 || h.cacheHdr != nil {
		t.Fatalf("introspection populated the header cache (page=%d)", h.cachePage)
	}
	// And the read-only walk agrees with the caching one.
	if h.BaseRO(b+8) != h.ObjectBase(b+8) {
		t.Fatal("BaseRO disagrees with ObjectBase")
	}
}

// TestSnapshotThenCollectIsReadOnly asserts the acceptance criterion
// directly at the heap layer: running the full introspection pass between
// allocation and collection changes nothing about what the collection
// reclaims.
func TestSnapshotThenCollectIsReadOnly(t *testing.T) {
	build := func() (*Heap, *rootList) {
		h := newTestHeap(t)
		roots := &rootList{}
		h.SetRoots(roots)
		live := mustAlloc(t, h, 40)
		child := mustAlloc(t, h, 40)
		h.setRawWord(live, child)
		for i := 0; i < 8; i++ {
			mustAlloc(t, h, 24) // garbage
		}
		*roots = append(*roots, live)
		return h, roots
	}

	h1, _ := build()
	h1.Collect()
	want := h1.Stats()

	h2, _ := build()
	// Full snapshot pass: every object, every edge, plus base lookups.
	h2.VisitObjects(func(o ObjectInfo) {
		h2.VisitReferences(o.Base, func(off uint32, target Addr) {
			_ = h2.BaseRO(target)
		})
	})
	h2.Collect()
	got := h2.Stats()

	if got != want {
		t.Fatalf("snapshot-then-collect stats diverge:\n got %+v\nwant %+v", got, want)
	}
}
