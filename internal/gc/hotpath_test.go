package gc

import "testing"

// TestMarkClearSkipStats verifies that Collect skips the mark-bit clearing
// pass on pages that cannot hold stale mark bits — pages with no live
// objects or never marked since their last clear — and counts the skips.
func TestMarkClearSkipStats(t *testing.T) {
	h := newTestHeap(t)
	a := mustAlloc(t, h, 16)
	b := mustAlloc(t, h, 4096) // large object: its own page run
	h.SetRoots(rootList{a, b})

	// First collection: no page has ever been marked, so every clearMarks
	// is skippable.
	h.Collect()
	s := h.Stats()
	if s.MarkClearsSkipped == 0 {
		t.Fatalf("first collection skipped no mark clears: %+v", s)
	}

	// Second collection: the pages holding a and b were marked by the
	// first, so they must be cleared for real now (the skip counter grows
	// by less than the page count, and correctness below proves the
	// clears happened).
	h.Collect()
	if h.ObjectBase(a) != a || h.ObjectBase(b) != b {
		t.Fatal("rooted objects lost after repeated collections")
	}

	// A page carved after the last collection has a clean bitmap, so the
	// next collection skips its clear. (Fully reclaimed pages leave the
	// header walk entirely — releaseSpan — so a fresh allocation is what
	// exercises the skip in steady state.)
	c := mustAlloc(t, h, PageSize) // new large object: guaranteed new page
	h.SetRoots(rootList{c})
	before := h.Stats().MarkClearsSkipped
	h.Collect()
	if after := h.Stats().MarkClearsSkipped; after <= before {
		t.Fatalf("fresh page's mark clear not skipped: before %d after %d", before, after)
	}
}

// TestMarkClearSkipCorrectness pins the hazard the anyMarked flag must not
// introduce: an object that loses its root must still be reclaimed by the
// next collection even though its page was freshly cleared and re-marked
// in between.
func TestMarkClearSkipCorrectness(t *testing.T) {
	h := newTestHeap(t)
	a := mustAlloc(t, h, 16)
	h.SetRoots(rootList{a})
	h.Collect() // marks a's page
	h.Collect() // must clear the stale mark, then re-mark from the root
	if h.ObjectBase(a) != a {
		t.Fatal("rooted object reclaimed")
	}
	h.SetRoots(rootList{})
	h.Collect() // must clear the stale mark and reclaim a
	if h.ObjectBase(a) == a {
		t.Fatal("unrooted object survived: stale mark bit not cleared")
	}
}

// TestSameObjectAllocFree pins the checked-mode hot path: a successful
// GC_same_obj check performs no host allocation.
func TestSameObjectAllocFree(t *testing.T) {
	h := newTestHeap(t)
	a := mustAlloc(t, h, 64)
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := h.SameObject(a+8, a); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("SameObject allocates %.1f objects per call, want 0", allocs)
	}
}
