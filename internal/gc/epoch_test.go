package gc

import "testing"

func TestEpochMonotonic(t *testing.T) {
	h := newTestHeap(t)
	var last uint32
	for i := 0; i < 100; i++ {
		a := mustAlloc(t, h, 16)
		e := h.EpochOf(a)
		if e == 0 {
			t.Fatalf("alloc %d: epoch 0 for a live object", i)
		}
		if e <= last {
			t.Fatalf("alloc %d: epoch %d not greater than previous %d", i, e, last)
		}
		last = e
	}
	if h.Epoch() != last {
		t.Fatalf("Epoch() = %d, want %d", h.Epoch(), last)
	}
}

func TestEpochOfNonBase(t *testing.T) {
	h := newTestHeap(t)
	a := mustAlloc(t, h, 64)
	if h.EpochOf(a+8) != 0 {
		t.Error("interior pointer has a nonzero epoch")
	}
	if h.EpochOf(a-4) != 0 && a-4 < a {
		t.Error("address before the object has a nonzero epoch")
	}
	if h.EpochOf(0) != 0 {
		t.Error("null has a nonzero epoch")
	}
}

// TestFreeReallocFlipsEpochOnce is the core recycling property: freeing an
// object and immediately reallocating its size class lands on the same
// address (LIFO free list), and the epoch at that address changes exactly
// once — by exactly one step, since no other allocation intervened.
func TestFreeReallocFlipsEpochOnce(t *testing.T) {
	h := newTestHeap(t)
	a := mustAlloc(t, h, 16)
	e1 := h.EpochOf(a)
	if err := h.Free(a); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if h.EpochOf(a) != 0 {
		t.Fatalf("freed object still has epoch %d", h.EpochOf(a))
	}
	b := mustAlloc(t, h, 16)
	if b != a {
		t.Fatalf("realloc of the freed class landed at %#x, want recycled %#x", b, a)
	}
	e2 := h.EpochOf(b)
	if e2 != e1+1 {
		t.Fatalf("recycled address epoch = %d, want exactly %d+1", e2, e1)
	}
}

func TestFreeErrors(t *testing.T) {
	h := newTestHeap(t)
	a := mustAlloc(t, h, 16)
	if err := h.Free(a + 4); err == nil {
		t.Error("Free(interior) succeeded")
	}
	if err := h.Free(a); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if err := h.Free(a); err == nil {
		t.Error("double Free succeeded")
	}
	if err := h.Free(0x42); err == nil {
		t.Error("Free outside the heap succeeded")
	}
}

func TestFreePoisonsAndRecycles(t *testing.T) {
	h := newTestHeap(t)
	a := mustAlloc(t, h, 32)
	if err := h.WriteWord(a+8, 0x12345678); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	// All bytes past the free-list link word are poisoned.
	off := a - HeapBase
	for i := uint32(WordSize); i < 32; i++ {
		if h.arena[off+i] != PoisonByte {
			t.Fatalf("byte +%d after Free = %#x, want poison %#x", i, h.arena[off+i], PoisonByte)
		}
	}
	if h.ObjectBase(a) != 0 {
		t.Error("freed object still resolves to a base")
	}
}

func TestFreeLargeObject(t *testing.T) {
	h := newTestHeap(t)
	a := mustAlloc(t, h, 3*PageSize)
	e1 := h.EpochOf(a)
	if e1 == 0 {
		t.Fatal("large object has epoch 0")
	}
	if err := h.Free(a); err != nil {
		t.Fatalf("Free(large): %v", err)
	}
	if h.ObjectBase(a) != 0 {
		t.Error("freed large object still resolves")
	}
	// The span is reusable and a later collection must not double-release it
	// (Free removes the header from the sweep list itself).
	roots := rootList{}
	h.SetRoots(roots)
	h.Collect()
	h.Collect()
	b := mustAlloc(t, h, 3*PageSize)
	if h.EpochOf(b) <= e1 {
		t.Fatalf("page-reused large object epoch %d not past %d", h.EpochOf(b), e1)
	}
}

// TestEpochAcrossPageReuse frees every object of a page so that the next
// collection releases the whole page, then refills the class: the recycled
// page's slots must come back with fresh epochs, not stale ones.
func TestEpochAcrossPageReuse(t *testing.T) {
	h := newTestHeap(t)
	h.SetRoots(rootList{})
	size := uint32(16) // rounds to 24; PageSize/24 objects per page
	var addrs []Addr
	nobj := PageSize / roundUp(size+1, Granule)
	for i := uint32(0); i < nobj; i++ {
		addrs = append(addrs, mustAlloc(t, h, size))
	}
	maxEpoch := h.Epoch()
	for _, a := range addrs {
		if err := h.Free(a); err != nil {
			t.Fatalf("Free(%#x): %v", a, err)
		}
	}
	h.Collect() // page has no live objects: released to the span pool
	b := mustAlloc(t, h, size)
	if e := h.EpochOf(b); e != maxEpoch+1 {
		t.Fatalf("post-reuse epoch = %d, want %d", e, maxEpoch+1)
	}
	if h.EpochOf(b) == 0 {
		t.Fatal("recycled page slot has epoch 0")
	}
}

// TestEpochFlipAcrossCleanPageSkip covers the interaction with the PR 4
// clearMarks skip: a page that was never marked (anyMarked false) skips its
// bitmap clear during collection, and Free/realloc through such a page must
// still flip the epoch exactly once.
func TestEpochFlipAcrossCleanPageSkip(t *testing.T) {
	h := newTestHeap(t)
	keep := rootList{}
	h.SetRoots(&keep)
	a := mustAlloc(t, h, 16)
	e1 := h.EpochOf(a)

	// Collection with no roots referencing the page's objects... would free
	// a. Keep it live so the page survives, then verify the skip fired at
	// least once on some page (fresh pages are clean).
	keep = rootList{a}
	h.SetRoots(keep)
	before := h.Stats().MarkClearsSkipped
	h.Collect()
	if h.Stats().MarkClearsSkipped == before {
		t.Fatal("expected the clean-page clearMarks skip to fire")
	}
	if h.EpochOf(a) != e1 {
		t.Fatalf("collection changed a live object's epoch: %d -> %d", e1, h.EpochOf(a))
	}

	// Now free and realloc: the page was marked last collection, and the
	// epoch must flip exactly once regardless.
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	b := mustAlloc(t, h, 16)
	if b != a {
		t.Fatalf("realloc landed at %#x, want %#x", b, a)
	}
	if e2 := h.EpochOf(b); e2 != e1+1 {
		t.Fatalf("epoch after free+realloc = %d, want %d", e2, e1+1)
	}
}

// TestFreeClearsMarkBit: an object marked by the previous collection and
// then explicitly freed must not be resurrected by the next sweep (sweep
// counts marked slots as live even with the alloc bit down).
func TestFreeClearsMarkBit(t *testing.T) {
	h := newTestHeap(t)
	a := mustAlloc(t, h, 16)
	keep := rootList{a}
	h.SetRoots(keep)
	h.Collect() // marks a
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	h.SetRoots(rootList{}) // drop the root before the next collection
	h.Collect()
	if h.Stats().LiveObjects != 0 {
		t.Fatalf("freed object survived sweep: %d live objects", h.Stats().LiveObjects)
	}
	b := mustAlloc(t, h, 16)
	if h.EpochOf(b) == 0 {
		t.Fatal("post-sweep allocation has epoch 0")
	}
}

func TestCollectPreservesLiveEpochs(t *testing.T) {
	h := newTestHeap(t)
	a := mustAlloc(t, h, 40)
	b := mustAlloc(t, h, 40)
	ea, eb := h.EpochOf(a), h.EpochOf(b)
	h.SetRoots(rootList{a, b})
	for i := 0; i < 3; i++ {
		h.Collect()
	}
	if h.EpochOf(a) != ea || h.EpochOf(b) != eb {
		t.Fatalf("collections disturbed live epochs: (%d,%d) -> (%d,%d)",
			ea, eb, h.EpochOf(a), h.EpochOf(b))
	}
}
