// Package gc implements a conservative mark-sweep garbage collector over a
// simulated 32-bit address space, modelled on the collector the paper
// "Simple Garbage-Collector-Safety" (Boehm, PLDI 1996) relies on
// ([Boehm95], the Boehm-Demers-Weiser collector in its default
// configuration).
//
// The properties the paper depends on are reproduced faithfully:
//
//   - Any address pointing anywhere inside a live heap object (an interior
//     pointer) is recognized as a valid reference to that object.
//   - Objects are allocated with at least one extra byte at the end, so a
//     pointer one past the end of an object still resolves to it.
//   - The heap is organized as pages of uniformly sized objects, indexed by
//     a tree of fixed height 2 ("we use a tree of fixed height 2 describing
//     pages of uniformly sized objects"), which makes mapping an arbitrary
//     address to the beginning of the corresponding object — the operation
//     underlying both marking and GC_same_obj — very fast.
//   - Object sizes are rounded up, so pointer-arithmetic checking through
//     GC_same_obj is "not completely accurate" in exactly the way the paper
//     describes: at most unused slack memory at the end of an object can be
//     reached through an incorrectly computed pointer.
//
// The collector is nonmoving; hashing on pointer values is therefore safe
// for clients, as the paper assumes.
package gc

import "fmt"

// Addr is an address in the simulated 32-bit address space. Address 0 is
// the null pointer and never maps to an object.
type Addr = uint32

// Fundamental layout constants of the simulated machine.
const (
	// WordSize is the size in bytes of a machine word and of a pointer.
	WordSize = 4
	// Granule is the allocation granularity: every small-object size is a
	// multiple of this, and objects are aligned to it.
	Granule = 8
	// PageSize is the size of a heap block ("hblk" in Boehm's collector).
	PageSize = 4096
	// MaxSmall is the largest object size (after rounding) served from
	// uniform-object pages; larger requests get whole-page spans.
	MaxSmall = 512
	// HeapBase is the lowest heap address. Anything below it (static data)
	// or above the heap limit (the stack) is a GC root area, never a heap
	// object.
	HeapBase Addr = 0x1000_0000
)

// Config controls heap sizing and collection policy.
type Config struct {
	// MaxBytes caps the heap size. Zero means the default (64 MiB).
	MaxBytes uint32
	// TriggerBytes is the number of bytes allocated since the previous
	// collection after which Alloc invokes a collection on its own (the
	// "collections triggered at allocation sites" regime). Zero means the
	// default (256 KiB). Set to ^uint32(0) to disable allocation-triggered
	// collection entirely (the client then calls Collect itself, modelling
	// an asynchronously triggered collector).
	TriggerBytes uint32
	// Poison controls whether reclaimed object memory is overwritten with
	// PoisonByte during sweeping. Poisoning is how the test harness detects
	// that a GC-unsafe program touched a prematurely collected object.
	Poison bool
	// BaseOnlyHeapPointers enables the paper's Extensions-section operating
	// mode: interior pointers are valid only when they originate from the
	// GC roots (stack, registers, statics); words inside heap objects are
	// recognized as references only when they point exactly at an object's
	// base. See extension.go.
	BaseOnlyHeapPointers bool
	// Inject, when non-nil, is consulted at the collector's fault points
	// (internal/faultinject wires it; the heap itself stays dependency-
	// free). The heap fires three points:
	//
	//	"gc.alloc"          a non-nil return fails the allocation
	//	"gc.collect.force"  a non-nil return forces a collection at this
	//	                    allocation (schedule perturbation)
	//	"gc.collect"        fired at the start of every collection; the
	//	                    return value is ignored (collections cannot
	//	                    fail; use it for injected latency)
	Inject func(point string) error
}

// PoisonByte fills reclaimed objects when Config.Poison is set.
const PoisonByte = 0xDD

// RootScanner supplies the collector with the GC roots: machine registers,
// the stack, and statically allocated memory. The collector calls Scan with
// a visit function and expects every root word to be passed to it. Words
// that do not look like heap pointers are ignored, so the scanner may (and
// should) be fully conservative.
type RootScanner interface {
	ScanRoots(visit func(word Addr))
}

// RootFunc adapts a function to the RootScanner interface.
type RootFunc func(visit func(word Addr))

// ScanRoots implements RootScanner.
func (f RootFunc) ScanRoots(visit func(word Addr)) { f(visit) }

// Stats records cumulative collector activity.
type Stats struct {
	Collections    uint64 // completed collections
	BytesAllocated uint64 // total bytes handed out (after rounding)
	ObjectsAlloced uint64 // total objects handed out
	ObjectsFreed   uint64 // objects reclaimed by sweeping
	BytesFreed     uint64 // bytes reclaimed by sweeping
	LiveObjects    uint64 // objects live after the most recent collection
	LiveBytes      uint64 // bytes live after the most recent collection
	HeapBytes      uint64 // bytes of address space claimed from the arena
	// EpochHighWater is the most recently issued allocation epoch (see
	// epoch.go) — the monotone allocation clock's current reading, and the
	// epoch a snapshot taken now would carry.
	EpochHighWater uint64
	// MarkClearsSkipped counts pages whose mark bitmap did not need
	// clearing at the start of a collection (no allocated objects, or no
	// mark bit set since the last clear) — the all-free-page fast path.
	MarkClearsSkipped uint64
}

// An Error wraps heap failures with the faulting address.
type Error struct {
	Op   string
	Addr Addr
	Msg  string
	// Err carries an underlying cause when one exists (e.g. an injected
	// fault), preserving errors.Is/As matching through the heap boundary.
	Err error
}

func (e *Error) Error() string {
	return fmt.Sprintf("gc: %s at %#x: %s", e.Op, e.Addr, e.Msg)
}

// Unwrap exposes the underlying cause, if any.
func (e *Error) Unwrap() error { return e.Err }

func errf(op string, a Addr, format string, args ...any) error {
	return &Error{Op: op, Addr: a, Msg: fmt.Sprintf(format, args...)}
}
