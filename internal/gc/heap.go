package gc

// A pageHeader describes one heap page (or a span of pages for a large
// object). It is the analogue of Boehm's hblkhdr. Small-object pages carve
// the page into nobj objects of objSize bytes each; large objects occupy a
// whole span of pages and every page of the span shares one header.
type pageHeader struct {
	base    Addr // address of the first byte of the page or span
	objSize uint32
	nobj    uint32
	large   bool
	spanLen uint32 // span length in bytes (large objects only)
	mark    []uint64
	alloc   []uint64
	// epochs holds the birth epoch of each object slot (see epoch.go);
	// slot i is meaningful only while alloc bit i is set.
	epochs []uint32
	// allocated counts set alloc bits, so the sweep and mark phases can
	// dismiss all-free pages without scanning the bitmap.
	allocated uint32
	// anyMarked records whether any mark bit has been set since the last
	// clearMarks: a page whose bitmap is already clean (freshly carved, or
	// populated only since the previous collection) skips the clear.
	anyMarked bool
}

func bitmapWords(n uint32) int { return int((n + 63) / 64) }

func (p *pageHeader) markBit(i uint32) bool { return p.mark[i/64]&(1<<(i%64)) != 0 }
func (p *pageHeader) setMark(i uint32) {
	p.mark[i/64] |= 1 << (i % 64)
	p.anyMarked = true
}
func (p *pageHeader) clearMarks() {
	clear(p.mark)
	p.anyMarked = false
}
func (p *pageHeader) clearMark(i uint32)     { p.mark[i/64] &^= 1 << (i % 64) }
func (p *pageHeader) allocBit(i uint32) bool { return p.alloc[i/64]&(1<<(i%64)) != 0 }
func (p *pageHeader) setAlloc(i uint32) {
	if p.alloc[i/64]&(1<<(i%64)) == 0 {
		p.alloc[i/64] |= 1 << (i % 64)
		p.allocated++
	}
}
func (p *pageHeader) clearAlloc(i uint32) {
	if p.alloc[i/64]&(1<<(i%64)) != 0 {
		p.alloc[i/64] &^= 1 << (i % 64)
		p.allocated--
	}
}

// bottomBits is the log2 of the number of pages covered by one bottom-level
// index block of the two-level page tree.
const bottomBits = 10

// A span is a run of free pages available for reuse.
type span struct {
	page   uint32 // first page index (relative to HeapBase)
	npages uint32
}

const numClasses = MaxSmall/Granule + 1

// Heap is a conservative garbage-collected heap. It is not safe for
// concurrent use; the simulated machine is single-threaded (the collector is
// "asynchronously triggered" with respect to the simulated program, not with
// respect to the host).
type Heap struct {
	cfg        Config
	arena      []byte
	limit      Addr // HeapBase + len(arena)
	maxBytes   uint32
	trigger    uint32
	tree       []*[1 << bottomBits]*pageHeader
	freeLists  [numClasses]Addr // per-class free-list heads (0 = empty)
	freeSpans  []span
	pages      []*pageHeader // every allocated header, for sweeping
	roots      RootScanner
	sinceGC    uint32
	stats      Stats
	markStack  []markItem
	collecting bool
	// epoch is the allocation clock: incremented on every allocation, so
	// every object's birth is totally ordered (see epoch.go). Never reset.
	epoch uint32

	// cachePage/cacheHdr are a one-entry cache over the page-tree walk in
	// header. Conservative scanning resolves long runs of addresses on the
	// same page (sequential object words, adjacent small objects), so
	// remembering the last hit turns the two-level tree walk into one
	// compare for the overwhelmingly common case. cachePage holds the page
	// index plus one; zero means empty. setHeader invalidates it.
	cachePage uint32
	cacheHdr  *pageHeader
}

// NewHeap returns an empty heap with the given configuration.
func NewHeap(cfg Config) *Heap {
	if cfg.MaxBytes == 0 {
		cfg.MaxBytes = 64 << 20
	}
	if cfg.TriggerBytes == 0 {
		cfg.TriggerBytes = 256 << 10
	}
	h := &Heap{
		cfg:      cfg,
		limit:    HeapBase,
		maxBytes: cfg.MaxBytes,
		trigger:  cfg.TriggerBytes,
	}
	h.tree = make([]*[1 << bottomBits]*pageHeader, (cfg.MaxBytes/PageSize)>>bottomBits+1)
	return h
}

// SetRoots installs the root scanner consulted by Collect.
func (h *Heap) SetRoots(r RootScanner) { h.roots = r }

// Stats returns a snapshot of cumulative collector statistics.
func (h *Heap) Stats() Stats {
	s := h.stats
	s.HeapBytes = uint64(h.limit - HeapBase)
	s.EpochHighWater = uint64(h.epoch)
	return s
}

// Contains reports whether a falls inside the address range claimed by the
// heap so far.
func (h *Heap) Contains(a Addr) bool { return a >= HeapBase && a < h.limit }

// header returns the page header covering a, or nil.
func (h *Heap) header(a Addr) *pageHeader {
	if a < HeapBase || a >= h.limit {
		return nil
	}
	page := (a - HeapBase) / PageSize
	if page+1 == h.cachePage {
		return h.cacheHdr
	}
	bottom := h.tree[page>>bottomBits]
	if bottom == nil {
		return nil
	}
	ph := bottom[page&(1<<bottomBits-1)]
	if ph != nil {
		h.cachePage, h.cacheHdr = page+1, ph
	}
	return ph
}

func (h *Heap) setHeader(page uint32, ph *pageHeader) {
	h.cachePage, h.cacheHdr = 0, nil
	top := page >> bottomBits
	if h.tree[top] == nil {
		h.tree[top] = new([1 << bottomBits]*pageHeader)
	}
	h.tree[top][page&(1<<bottomBits-1)] = ph
}

func roundUp(n, to uint32) uint32 { return (n + to - 1) / to * to }

// grabPages finds or creates a span of npages contiguous free pages and
// returns the index of its first page. It never triggers a collection.
func (h *Heap) grabPages(npages uint32) (uint32, error) {
	for i, s := range h.freeSpans {
		if s.npages >= npages {
			page := s.page
			if s.npages == npages {
				h.freeSpans = append(h.freeSpans[:i], h.freeSpans[i+1:]...)
			} else {
				h.freeSpans[i] = span{page: s.page + npages, npages: s.npages - npages}
			}
			// Reused pages may hold stale data from a previous life.
			start := page * PageSize
			clear(h.arena[start : start+npages*PageSize])
			return page, nil
		}
	}
	need := npages * PageSize
	if uint32(len(h.arena))+need > h.maxBytes {
		return 0, errf("alloc", h.limit, "heap limit of %d bytes exceeded", h.maxBytes)
	}
	page := uint32(len(h.arena)) / PageSize
	h.arena = append(h.arena, make([]byte, need)...)
	h.limit = HeapBase + Addr(len(h.arena))
	return page, nil
}

// Alloc allocates n bytes of zeroed, collector-managed memory and returns
// its address. Following the paper, every object is allocated with at least
// one extra byte at the end so that a pointer one past the end of the
// requested region still points inside the object.
func (h *Heap) Alloc(n uint32) (Addr, error) {
	if n == 0 {
		n = 1
	}
	if n > h.maxBytes-PageSize {
		return 0, errf("alloc", 0, "request of %d bytes exceeds heap capacity", n)
	}
	size := roundUp(n+1, Granule)
	if h.cfg.Inject != nil {
		if err := h.cfg.Inject("gc.alloc"); err != nil {
			return 0, &Error{Op: "alloc", Msg: err.Error(), Err: err}
		}
		if h.cfg.Inject("gc.collect.force") != nil {
			h.Collect()
		}
	}
	if h.sinceGC >= h.trigger && h.roots != nil {
		h.Collect()
	}
	var a Addr
	var err error
	if size <= MaxSmall {
		a, err = h.allocSmall(size)
	} else {
		a, err = h.allocLarge(size)
	}
	if err != nil {
		return 0, err
	}
	h.sinceGC += size
	h.stats.BytesAllocated += uint64(size)
	h.stats.ObjectsAlloced++
	return a, nil
}

func (h *Heap) allocSmall(size uint32) (Addr, error) {
	class := size / Granule
	if h.freeLists[class] == 0 {
		if err := h.refillClass(size); err != nil {
			// Out of fresh pages: collect and retry once.
			if h.roots == nil {
				return 0, err
			}
			h.Collect()
			if h.freeLists[class] == 0 {
				if err2 := h.refillClass(size); err2 != nil {
					return 0, err2
				}
			}
		}
	}
	a := h.freeLists[class]
	next, _ := h.rawWord(a)
	h.freeLists[class] = next
	ph := h.header(a)
	idx := (a - ph.base) / ph.objSize
	ph.setAlloc(idx)
	h.stamp(ph, idx)
	h.zero(a, size)
	return a, nil
}

// refillClass carves a fresh page into objects of the given (rounded) size
// and threads them onto the class free list.
func (h *Heap) refillClass(size uint32) error {
	page, err := h.grabPages(1)
	if err != nil {
		return err
	}
	nobj := PageSize / size
	ph := &pageHeader{
		base:    HeapBase + Addr(page*PageSize),
		objSize: size,
		nobj:    nobj,
		mark:    make([]uint64, bitmapWords(nobj)),
		alloc:   make([]uint64, bitmapWords(nobj)),
		epochs:  make([]uint32, nobj),
	}
	h.setHeader(page, ph)
	h.pages = append(h.pages, ph)
	class := size / Granule
	for i := nobj; i > 0; i-- {
		obj := ph.base + Addr((i-1)*size)
		h.setRawWord(obj, h.freeLists[class])
		h.freeLists[class] = obj
	}
	return nil
}

func (h *Heap) allocLarge(size uint32) (Addr, error) {
	npages := (size + PageSize - 1) / PageSize
	page, err := h.grabPages(npages)
	if err != nil {
		if h.roots == nil {
			return 0, err
		}
		h.Collect()
		page, err = h.grabPages(npages)
		if err != nil {
			return 0, err
		}
	}
	ph := &pageHeader{
		base:    HeapBase + Addr(page*PageSize),
		objSize: size,
		nobj:    1,
		large:   true,
		spanLen: npages * PageSize,
		mark:    make([]uint64, 1),
		alloc:   make([]uint64, 1),
		epochs:  make([]uint32, 1),
	}
	for p := page; p < page+npages; p++ {
		h.setHeader(p, ph)
	}
	h.pages = append(h.pages, ph)
	ph.setAlloc(0)
	h.stamp(ph, 0)
	h.zero(ph.base, size)
	return ph.base, nil
}

func (h *Heap) zero(a Addr, n uint32) {
	off := a - HeapBase
	clear(h.arena[off : off+n])
}

// rawWord reads a word without access validation (collector internal use).
func (h *Heap) rawWord(a Addr) (Addr, error) {
	off := a - HeapBase
	if a < HeapBase || int(off)+WordSize > len(h.arena) {
		return 0, errf("read", a, "address outside heap")
	}
	b := h.arena[off : off+WordSize]
	return Addr(b[0]) | Addr(b[1])<<8 | Addr(b[2])<<16 | Addr(b[3])<<24, nil
}

func (h *Heap) setRawWord(a Addr, w Addr) {
	off := a - HeapBase
	h.arena[off] = byte(w)
	h.arena[off+1] = byte(w >> 8)
	h.arena[off+2] = byte(w >> 16)
	h.arena[off+3] = byte(w >> 24)
}
