package gc

// This file implements the paper's Extensions section: "It is possible to
// extend this approach to a collector which considers interior pointers as
// valid only if they originate from the stack or registers (another
// possible operating mode of our collector). This requires asserting that
// the client program stores only pointers to the base of an object in the
// heap or in statically allocated variables. It would again be possible to
// insert dynamic checks to verify this."
//
// When Config.BaseOnlyHeapPointers is set, the mark phase recognizes
// interior pointers in the GC roots (stack, registers, statics) but, while
// scanning heap objects, only words that point exactly at an object's base
// are treated as references. CheckBaseStore provides the corresponding
// dynamic check for stores. As the paper notes, this "avoids some
// complications with allocating large objects" but "interacts suboptimally
// with C++ compilers that use interior pointers as part of their multiple
// inheritance implementation".

// markBaseOnly marks w only if it is exactly the base address of a live
// object (used when scanning heap contents in base-only mode).
func (h *Heap) markBaseOnly(w Addr) {
	ph := h.header(w)
	if ph == nil {
		return
	}
	var idx uint32
	if ph.large {
		if w != ph.base {
			return
		}
		idx = 0
	} else {
		off := w - ph.base
		if off%ph.objSize != 0 {
			return
		}
		idx = off / ph.objSize
		if idx >= ph.nobj {
			return
		}
	}
	if !ph.allocBit(idx) || ph.markBit(idx) {
		return
	}
	ph.setMark(idx)
	h.markStack = append(h.markStack, markItem{base: ph.base + idx*ph.objSize, ph: ph})
}

// CheckBaseStore validates a pointer store under the base-only discipline:
// if value is a heap pointer about to be stored into heap or static memory
// (i.e. anywhere but the stack and registers), it must point at the base
// of its object. Non-heap values pass vacuously. The address of the store
// target decides whether the discipline applies; the caller passes
// targetIsRoot=true for stack/register/static destinations that the
// collector scans with interior pointers enabled.
func (h *Heap) CheckBaseStore(value Addr, targetIsRoot bool) error {
	if targetIsRoot || !h.cfg.BaseOnlyHeapPointers {
		return nil
	}
	base := h.ObjectBase(value)
	if base == 0 || base == value {
		return nil
	}
	return errf("base-store", value,
		"interior pointer stored into the heap under the base-only discipline (object base %#x)", base)
}
