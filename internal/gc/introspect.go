package gc

// Read-only heap introspection, the collector's half of the heapdump
// subsystem (internal/heapdump). Everything in this file observes the heap
// without mutating any collector state — including the one-entry
// page-header cache in header(), which ordinary lookups write on every
// miss. That guarantee is what makes snapshots safe to take from a
// goroutine other than the mutator's (the interpreter serves snapshot
// requests at safe points, but the post-run path may capture from the
// requester) and what makes "snapshot-then-collect reclaims exactly what
// collect-without-snapshot does" a provable property rather than a hope.

// ObjectInfo describes one live object as seen by introspection.
type ObjectInfo struct {
	Base   Addr   // base address
	Size   uint32 // rounded (actual) size in bytes
	Epoch  uint32 // birth epoch (see epoch.go)
	Marked bool   // mark bit as of the most recent collection
	Large  bool   // whole-span object
}

// VisitObjects calls fn once for every live object — every slot whose
// alloc bit is set. Objects retired by Free (poisoned, epoch cleared,
// alloc bit down) are naturally excluded: liveness is exactly the alloc
// bitmap. Visit order is unspecified; callers wanting a canonical order
// sort by base address. Read-only.
func (h *Heap) VisitObjects(fn func(ObjectInfo)) {
	for _, ph := range h.pages {
		if ph.allocated == 0 {
			continue
		}
		for i := uint32(0); i < ph.nobj; i++ {
			if !ph.allocBit(i) {
				continue
			}
			fn(ObjectInfo{
				Base:   ph.base + i*ph.objSize,
				Size:   ph.objSize,
				Epoch:  ph.epochs[i],
				Marked: ph.markBit(i),
				Large:  ph.large,
			})
		}
	}
}

// headerRO is header() minus the cache: the same two-level page-tree walk,
// but it neither consults nor writes cachePage/cacheHdr, so concurrent
// readers cannot race a mutator's cache fills.
func (h *Heap) headerRO(a Addr) *pageHeader {
	if a < HeapBase || a >= h.limit {
		return nil
	}
	page := (a - HeapBase) / PageSize
	bottom := h.tree[page>>bottomBits]
	if bottom == nil {
		return nil
	}
	return bottom[page&(1<<bottomBits-1)]
}

// BaseRO is ObjectBase without the header-cache side effect: it maps an
// arbitrary address to the base of the live object containing it (interior
// pointers included), or 0. Strictly read-only.
func (h *Heap) BaseRO(a Addr) Addr {
	ph := h.headerRO(a)
	if ph == nil {
		return 0
	}
	if ph.large {
		if a >= ph.base && a < ph.base+ph.spanLen && ph.allocBit(0) {
			return ph.base
		}
		return 0
	}
	off := a - ph.base
	idx := off / ph.objSize
	if idx >= ph.nobj || !ph.allocBit(idx) {
		return 0
	}
	return ph.base + idx*ph.objSize
}

// VisitReferences conservatively scans the live object at base, calling
// visit(off, target) for every word offset whose value resolves to a live
// heap object (target is that object's base; self-references included).
// The scan applies the same pointer-recognition rule as the collector's
// mark phase: interior pointers resolve under the default configuration,
// while under BaseOnlyHeapPointers only exact base addresses count as
// heap-stored references. Read-only; returns false when base is not the
// base of a live object.
func (h *Heap) VisitReferences(base Addr, visit func(off uint32, target Addr)) bool {
	ph := h.headerRO(base)
	if ph == nil {
		return false
	}
	var idx uint32
	if ph.large {
		if base != ph.base {
			return false
		}
	} else {
		off := base - ph.base
		if off%ph.objSize != 0 {
			return false
		}
		idx = off / ph.objSize
		if idx >= ph.nobj {
			return false
		}
	}
	if !ph.allocBit(idx) {
		return false
	}
	size := ph.objSize
	off := base - HeapBase
	if int(off)+int(size) > len(h.arena) {
		return false
	}
	obj := h.arena[off : off+size]
	baseOnly := h.cfg.BaseOnlyHeapPointers
	for i := 0; i+WordSize <= len(obj); i += WordSize {
		w := Addr(obj[i]) | Addr(obj[i+1])<<8 | Addr(obj[i+2])<<16 | Addr(obj[i+3])<<24
		t := h.BaseRO(w)
		if t == 0 || (baseOnly && t != w) {
			continue
		}
		visit(uint32(i), t)
	}
	return true
}
