package gc

// Allocation epochs: the temporal-safety extension. Every allocation is
// stamped with a monotonically increasing epoch; a checked pointer carries
// the epoch of the allocation it was derived from (the interpreter's shadow
// tags), so storage that has been explicitly freed and recycled since the
// pointer was derived is detectable — the object now at that address wears
// a different epoch. This is the allocation-clock idea of fat-pointer
// temporal-safety schemes, kept on the side: epochs change no layout, no
// allocation order and no collector decision, so all non-temporal behavior
// is bit-identical with or without them.

// stamp issues the next epoch to object idx of page ph. Called on every
// allocation; epoch 0 is never issued and means "no live object".
func (h *Heap) stamp(ph *pageHeader, idx uint32) {
	h.epoch++
	ph.epochs[idx] = h.epoch
}

// Epoch returns the most recently issued allocation epoch (0 before the
// first allocation).
func (h *Heap) Epoch() uint32 { return h.epoch }

// EpochOf returns the birth epoch of the live object whose base address is
// base, or 0 when base is not the base address of a live object. Epochs are
// compared for equality only: a mismatch between a pointer's remembered
// epoch and the epoch of the object now at its target means the original
// object was freed and its storage recycled.
func (h *Heap) EpochOf(base Addr) uint32 {
	ph := h.header(base)
	if ph == nil {
		return 0
	}
	if ph.large {
		if base != ph.base || !ph.allocBit(0) {
			return 0
		}
		return ph.epochs[0]
	}
	off := base - ph.base
	if off%ph.objSize != 0 {
		return 0
	}
	idx := off / ph.objSize
	if idx >= ph.nobj || !ph.allocBit(idx) {
		return 0
	}
	return ph.epochs[idx]
}

// Free explicitly deallocates the live object whose base address is base —
// the GC_free of temporal mode. Unlike sweeping, which the collector
// performs only on unreachable objects, Free retires an object the program
// still holds pointers to: the epoch slot is cleared, the storage is
// poisoned (under Config.Poison) and the slot rejoins its size-class free
// list at the head, so the very next allocation of the class recycles the
// address. base must be the exact base address of a live object.
func (h *Heap) Free(base Addr) error {
	ph := h.header(base)
	if ph == nil {
		return errf("free", base, "address is not inside any heap page")
	}
	if ph.large {
		if base != ph.base || !ph.allocBit(0) {
			return errf("free", base, "not the base of a live object")
		}
		h.stats.ObjectsFreed++
		h.stats.BytesFreed += uint64(ph.objSize)
		if h.cfg.Poison {
			h.poison(ph.base, ph.objSize)
		}
		ph.clearAlloc(0)
		ph.clearMark(0)
		ph.epochs[0] = 0
		h.releaseSpan(ph)
		h.removePage(ph)
		return nil
	}
	off := base - ph.base
	if off%ph.objSize != 0 {
		return errf("free", base, "not the base of an object (interior pointer)")
	}
	idx := off / ph.objSize
	if idx >= ph.nobj || !ph.allocBit(idx) {
		return errf("free", base, "not the base of a live object")
	}
	h.stats.ObjectsFreed++
	h.stats.BytesFreed += uint64(ph.objSize)
	if h.cfg.Poison {
		h.poison(base, ph.objSize)
	}
	// Clear the mark bit too: sweep counts a marked slot as live even with
	// the alloc bit down, so a stale mark would resurrect the slot's
	// accounting at the next collection.
	ph.clearAlloc(idx)
	ph.clearMark(idx)
	ph.epochs[idx] = 0
	class := ph.objSize / Granule
	h.setRawWord(base, h.freeLists[class])
	h.freeLists[class] = base
	return nil
}

// removePage drops a released header from the sweep list. Only explicit
// large-object Free needs it: sweeping releases spans itself, and a header
// left behind would be double-released at the next collection.
func (h *Heap) removePage(ph *pageHeader) {
	for i, p := range h.pages {
		if p == ph {
			h.pages = append(h.pages[:i], h.pages[i+1:]...)
			return
		}
	}
}
