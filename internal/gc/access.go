package gc

// This file holds the client-visible memory access and pointer-checking
// operations: the GC_same_obj / GC_pre_incr / GC_post_incr family the
// paper's debugging mode compiles pointer arithmetic into, plus validated
// loads and stores used by the simulated machine.

// Base is the paper's GC_base: see ObjectBase. It is exported under the
// paper's name for readability at call sites.
func (h *Heap) Base(a Addr) Addr { return h.ObjectBase(a) }

// SameObject implements GC_same_obj(p, q): it checks that p and q point to
// the same heap object and returns p. Following the paper, only heap
// pointers are checked — if q does not point into the collected heap
// (static or stack memory), the check passes vacuously, since "we do not
// check references to statically allocated and stack memory".
//
// The check is deliberately performed against the collector's own rounded
// object extents: a pointer that has strayed into the rounding slack at the
// end of an object is accepted, reproducing the paper's "not completely
// accurate" caveat.
func (h *Heap) SameObject(p, q Addr) (Addr, error) {
	bq := h.ObjectBase(q)
	if bq == 0 {
		return p, nil
	}
	bp := h.ObjectBase(p)
	if bp != bq {
		return p, errf("GC_same_obj", p,
			"pointer arithmetic moved pointer out of its object (base %#x, result resolves to %#x)", bq, bp)
	}
	return p, nil
}

// PreIncr implements GC_pre_incr: it adds delta (a signed byte offset) to
// the pointer stored at slot, checks that the result still points to the
// object the original pointer referenced, stores it back, and returns the
// new value. slot must hold a word inside heap, static or stack memory
// owned by the caller; the load and store go through the supplied accessors
// so the slot may live outside the collected heap.
func (h *Heap) PreIncr(load func() Addr, store func(Addr), delta int32) (Addr, error) {
	old := load()
	nw := Addr(int64(old) + int64(delta))
	store(nw)
	_, err := h.SameObject(nw, old)
	return nw, err
}

// PostIncr implements GC_post_incr: like PreIncr but returns the original
// value of the pointer, as the C postfix operators require.
func (h *Heap) PostIncr(load func() Addr, store func(Addr), delta int32) (Addr, error) {
	old := load()
	nw := Addr(int64(old) + int64(delta))
	store(nw)
	_, err := h.SameObject(nw, old)
	return old, err
}

// ValidateAccess reports an error if [a, a+size) lies inside the heap's
// address range but is not wholly contained in a single live object. Access
// to non-heap addresses is not the heap's concern and passes. This is the
// harness's premature-reclamation detector: a GC-unsafe program that keeps
// using a collected object trips it.
func (h *Heap) ValidateAccess(a Addr, size uint32) error {
	if !h.Contains(a) {
		return nil
	}
	base := h.ObjectBase(a)
	if base == 0 {
		return errf("access", a, "address is inside the heap but not inside any live object (premature reclamation or wild pointer)")
	}
	if a+size > base+h.ObjectSize(base) {
		return errf("access", a, "access of %d bytes runs past the end of the object at %#x", size, base)
	}
	return nil
}

// ReadWord loads the little-endian word at a. The address must be
// word-aligned and inside the heap's claimed range.
func (h *Heap) ReadWord(a Addr) (Addr, error) {
	if a%WordSize != 0 {
		return 0, errf("read", a, "misaligned word load")
	}
	return h.rawWord(a)
}

// WriteWord stores the little-endian word w at a.
func (h *Heap) WriteWord(a Addr, w Addr) error {
	if a%WordSize != 0 {
		return errf("write", a, "misaligned word store")
	}
	if a < HeapBase || a+WordSize > h.limit {
		return errf("write", a, "address outside heap")
	}
	h.setRawWord(a, w)
	return nil
}

// ReadByte loads the byte at a.
func (h *Heap) ReadByteAt(a Addr) (byte, error) {
	if a < HeapBase || a >= h.limit {
		return 0, errf("read", a, "address outside heap")
	}
	return h.arena[a-HeapBase], nil
}

// WriteByte stores b at a.
func (h *Heap) WriteByteAt(a Addr, b byte) error {
	if a < HeapBase || a >= h.limit {
		return errf("write", a, "address outside heap")
	}
	h.arena[a-HeapBase] = b
	return nil
}
