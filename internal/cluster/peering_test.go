package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"gcsafety/internal/artifact"
	"gcsafety/internal/client"
	"gcsafety/internal/faultinject"
)

// fakePeer serves the peer protocol: every get answers with a canned
// artifact, every put records what arrived.
func fakePeer(t *testing.T) (*httptest.Server, *atomic.Int64, *atomic.Int64) {
	t.Helper()
	var gets, puts atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/peer/get", func(w http.ResponseWriter, r *http.Request) {
		gets.Add(1)
		var req GetRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		_ = json.NewEncoder(w).Encode(GetResponse{
			CodecKind: "blob/v1",
			Payload:   []byte("artifact-for-" + req.Key),
			Size:      42,
			CacheHit:  true,
		})
	})
	mux.HandleFunc("/v1/peer/put", func(w http.ResponseWriter, r *http.Request) {
		puts.Add(1)
		_ = json.NewEncoder(w).Encode(PutResponse{Stored: true})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, &gets, &puts
}

// ownKey finds a key the given member owns on p's ring.
func ownKey(t *testing.T, p *Peering, member string) artifact.Key {
	t.Helper()
	for i := 0; i < 10000; i++ {
		k := artifact.NewKey("test").Int(int64(i)).Sum()
		if addr, _ := p.Owner(k); addr == member {
			return k
		}
	}
	t.Fatalf("no key owned by %s found", member)
	return ""
}

func TestFetchSelfOwnedIsLocal(t *testing.T) {
	p, err := New(Config{Self: "http://self"})
	if err != nil {
		t.Fatal(err)
	}
	resp, remote, err := p.Fetch(context.Background(), "anykey", "compile", map[string]any{})
	if resp != nil || remote || err != nil {
		t.Fatalf("single-node fetch: resp=%v remote=%v err=%v", resp, remote, err)
	}
	if st := p.Stats(); st.OwnedLocal != 1 || st.RemoteHits != 0 || st.Fallbacks != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestFetchFromOwningPeer(t *testing.T) {
	ts, gets, _ := fakePeer(t)
	p, err := New(Config{Self: "http://self", Peers: []string{ts.URL}})
	if err != nil {
		t.Fatal(err)
	}
	key := ownKey(t, p, ts.URL)
	resp, remote, err := p.Fetch(context.Background(), key, "compile", map[string]any{"name": "x.c"})
	if err != nil || !remote {
		t.Fatalf("fetch: remote=%v err=%v", remote, err)
	}
	if resp.CodecKind != "blob/v1" || string(resp.Payload) != "artifact-for-"+string(key) || !resp.CacheHit {
		t.Fatalf("response: %+v", resp)
	}
	if gets.Load() != 1 {
		t.Fatalf("peer saw %d gets", gets.Load())
	}
	st := p.Stats()
	if st.RemoteHits != 1 || st.Fallbacks != 0 || len(st.Peers) != 1 || st.Peers[0].GetHits != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestFetchDeadPeerFallsBack(t *testing.T) {
	ts, _, _ := fakePeer(t)
	dead := ts.URL
	ts.Close() // nothing listens anymore: connection refused
	p, err := New(Config{Self: "http://self", Peers: []string{dead}})
	if err != nil {
		t.Fatal(err)
	}
	key := ownKey(t, p, dead)
	start := time.Now()
	_, remote, ferr := p.Fetch(context.Background(), key, "compile", map[string]any{})
	if !remote || !errors.Is(ferr, ErrPeerUnavailable) {
		t.Fatalf("fetch against dead peer: remote=%v err=%v", remote, ferr)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("fallback took %v — the peer timeout did not bound the ladder", d)
	}
	if st := p.Stats(); st.Fallbacks != 1 || st.Peers[0].GetErrors != 1 {
		t.Fatalf("stats: %+v", st)
	}

	// Enough failures open the per-peer breaker; fetches then fast-fail
	// and the peer is reported unhealthy.
	for i := 0; i < 4; i++ {
		_, _, _ = p.Fetch(context.Background(), key, "compile", map[string]any{})
	}
	st := p.Stats()
	if !st.Peers[0].BreakerOpen {
		t.Fatalf("breaker not open after repeated failures: %+v", st.Peers[0])
	}
}

func TestFetchFaultPointSeversLink(t *testing.T) {
	ts, gets, _ := fakePeer(t)
	p, err := New(Config{Self: "http://self", Peers: []string{ts.URL}})
	if err != nil {
		t.Fatal(err)
	}
	set, err := faultinject.Parse("cluster.peer.get=error,msg=severed", 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := faultinject.WithContext(context.Background(), set)
	key := ownKey(t, p, ts.URL)
	_, remote, ferr := p.Fetch(ctx, key, "compile", map[string]any{})
	if !remote || !errors.Is(ferr, ErrPeerUnavailable) || !errors.Is(ferr, faultinject.ErrInjected) {
		t.Fatalf("injected sever: remote=%v err=%v", remote, ferr)
	}
	if gets.Load() != 0 {
		t.Fatal("fault point did not prevent the network call")
	}
	if st := p.Stats(); st.Fallbacks != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestPushToOwner(t *testing.T) {
	ts, _, puts := fakePeer(t)
	p, err := New(Config{Self: "http://self", Peers: []string{ts.URL}})
	if err != nil {
		t.Fatal(err)
	}
	key := ownKey(t, p, ts.URL)
	if err := p.Push(context.Background(), key, "blob/v1", []byte("x"), 1); err != nil {
		t.Fatalf("push: %v", err)
	}
	if puts.Load() != 1 {
		t.Fatalf("peer saw %d puts", puts.Load())
	}
	// Pushing a self-owned key is a no-op, not an error.
	self := ownKey(t, p, p.Self())
	if err := p.Push(context.Background(), self, "blob/v1", []byte("x"), 1); err != nil {
		t.Fatalf("self push: %v", err)
	}
	if st := p.Stats(); st.Pushes != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestUpdatePeersRebalances(t *testing.T) {
	a, _, _ := fakePeer(t)
	b, _, _ := fakePeer(t)
	p, err := New(Config{Self: "http://self", Peers: []string{a.URL, b.URL}})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.Members()); got != 3 {
		t.Fatalf("members: %v", p.Members())
	}

	// Record ownership, then drop b: keys owned by self or a must not
	// move (the consistent-hashing contract), b's keys must redistribute.
	type owned struct {
		addr string
		self bool
	}
	before := map[artifact.Key]owned{}
	for i := 0; i < 500; i++ {
		k := artifact.NewKey("test").Int(int64(i)).Sum()
		addr, self := p.Owner(k)
		before[k] = owned{addr, self}
	}
	p.UpdatePeers([]string{a.URL})
	movedFromB := 0
	for k, was := range before {
		addr, self := p.Owner(k)
		if was.addr == b.URL {
			movedFromB++
			if addr == b.URL {
				t.Fatalf("removed peer still owns %s", k)
			}
			continue
		}
		if addr != was.addr || self != was.self {
			t.Fatalf("key %s moved %+v -> (%s,%v) though its owner survived", k, was, addr, self)
		}
	}
	if movedFromB == 0 {
		t.Fatal("b owned nothing; test proves nothing")
	}
	if st := p.Stats(); st.Rebalances != 1 || len(st.Peers) != 1 {
		t.Fatalf("stats after rebalance: %+v", st)
	}
	// A no-op update (same membership) is not a rebalance.
	p.UpdatePeers([]string{a.URL, "http://self"})
	if st := p.Stats(); st.Rebalances != 1 {
		t.Fatalf("no-op update counted as rebalance: %+v", st)
	}
	// Adding b back keeps a's client (and its counters) intact.
	p.UpdatePeers([]string{a.URL, b.URL})
	if st := p.Stats(); st.Rebalances != 2 || len(st.Peers) != 2 {
		t.Fatalf("stats after re-add: %+v", st)
	}
}

func TestPeerClientDefaultsBiasFastFailover(t *testing.T) {
	cfg := Config{Self: "http://self"}
	cc := cfg.peerClientConfig("http://peer")
	if cc.MaxAttempts != 2 || cc.BreakerThreshold != 3 {
		t.Fatalf("defaults: %+v", cc)
	}
	// Distinct peers get distinct deterministic jitter seeds.
	if cfg.peerClientConfig("http://peer-a").JitterSeed == cfg.peerClientConfig("http://peer-b").JitterSeed {
		t.Fatal("peer jitter seeds collide")
	}
	// An explicit client config wins.
	cfg.Client = client.Config{MaxAttempts: 7}
	if cfg.peerClientConfig("http://peer").MaxAttempts != 7 {
		t.Fatal("explicit MaxAttempts overridden")
	}
}
