package cluster

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("key-%d", i)
	}
	return out
}

func TestRingDeterministicAcrossNodes(t *testing.T) {
	// Ownership must be a pure function of the member list: two nodes
	// building rings from the same members (in any order) must agree on
	// every key, or the cluster computes everything twice.
	a := newRing(0, []string{"http://a", "http://b", "http://c"})
	b := newRing(0, []string{"http://a", "http://b", "http://c"})
	for _, k := range keys(2000) {
		if a.owner(k) != b.owner(k) {
			t.Fatalf("rings disagree on %q: %q vs %q", k, a.owner(k), b.owner(k))
		}
	}
}

func TestRingSpreadsOwnership(t *testing.T) {
	members := []string{"http://a", "http://b", "http://c"}
	r := newRing(0, members)
	counts := map[string]int{}
	n := 6000
	for _, k := range keys(n) {
		counts[r.owner(k)]++
	}
	for _, m := range members {
		// With 64 virtual nodes the split stays near even; require every
		// member to own at least half its fair share.
		if counts[m] < n/(2*len(members)) {
			t.Fatalf("member %s owns only %d of %d keys: %v", m, counts[m], n, counts)
		}
	}
}

func TestRingRemovalMovesOnlyTheRemovedArcs(t *testing.T) {
	// The consistent-hashing property behind cheap rebalances: dropping a
	// member must not move any key between the surviving members.
	full := newRing(0, []string{"http://a", "http://b", "http://c"})
	without := newRing(0, []string{"http://a", "http://c"})
	moved := 0
	for _, k := range keys(4000) {
		was, is := full.owner(k), without.owner(k)
		if was == "http://b" {
			moved++
			if is == "http://b" {
				t.Fatalf("removed member still owns %q", k)
			}
			continue
		}
		if was != is {
			t.Fatalf("key %q moved %q -> %q though its owner survived", k, was, is)
		}
	}
	if moved == 0 {
		t.Fatal("removed member owned nothing; test proves nothing")
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	if got := newRing(0, nil).owner("x"); got != "" {
		t.Fatalf("empty ring owns %q", got)
	}
	one := newRing(0, []string{"http://solo"})
	for _, k := range keys(100) {
		if one.owner(k) != "http://solo" {
			t.Fatal("single-member ring must own everything")
		}
	}
}
