// Package cluster shards the content-addressed artifact store across a
// peering group of gcsafed nodes. Every artifact key has exactly one
// owning node, chosen by consistent hashing over the peer list, and the
// peer protocol (/v1/peer/get, /v1/peer/put) lets any node ask the owner
// to get-or-compute an artifact — so the cluster performs each build
// once, wherever the request landed.
//
// The design is availability-first: ownership is a performance hint, not
// a correctness requirement. Every node can compute every artifact, so
// when the owning peer is down, slow, or circuit-broken, the caller
// falls back to local computation and the only cost is a duplicated
// build. Peer calls ride internal/client, inheriting bounded retries,
// backoff with deterministic jitter, and a per-peer circuit breaker that
// turns a dead peer into a microsecond fast-fail instead of a retry
// ladder on every request.
package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ring is a consistent-hash ring: each peer address is placed at
// `replicas` pseudo-random points on a 64-bit circle, and a key is owned
// by the first peer point at or after the key's own hash. Adding or
// removing one peer moves only the keys in the arcs that peer covered —
// the property that makes peer-list changes cheap rebalances instead of
// full reshuffles.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	addr string
}

// defaultReplicas is the virtual-node count per peer. 64 points per peer
// keeps the ownership split within a few percent of even for small
// clusters while ring construction stays trivially cheap.
const defaultReplicas = 64

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// newRing builds a ring over addrs (deduplicated by the caller). A nil
// or empty addrs yields an empty ring that owns nothing.
func newRing(replicas int, addrs []string) *ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	r := &ring{points: make([]ringPoint, 0, replicas*len(addrs))}
	for _, addr := range addrs {
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, ringPoint{
				hash: hash64(addr + "#" + strconv.Itoa(i)),
				addr: addr,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by address so every node
		// sorts the ring identically — ownership must be a pure function
		// of the peer list.
		return r.points[i].addr < r.points[j].addr
	})
	return r
}

// owner returns the address owning key, or "" for an empty ring.
func (r *ring) owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the first point owns the arc past the last one
	}
	return r.points[i].addr
}
