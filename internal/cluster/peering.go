package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gcsafety/internal/artifact"
	"gcsafety/internal/client"
	"gcsafety/internal/faultinject"
)

// Config describes one node's view of the cluster.
type Config struct {
	// Self is this node's advertised base URL (e.g. "http://127.0.0.1:7996").
	// It must be the exact string the other nodes carry in their peer
	// lists: ownership is computed over addresses, so all nodes must spell
	// each node the same way.
	Self string
	// Peers is the full member list, Self included (it is added if
	// missing). Order does not matter; duplicates are removed.
	Peers []string
	// Replicas is the virtual-node count per peer on the hash ring
	// (default 64).
	Replicas int
	// PeerTimeout bounds one peer operation end to end, retries included
	// (default 2s). A slow peer must never cost more than this before the
	// caller falls back to computing locally.
	PeerTimeout time.Duration
	// Client tunes the per-peer HTTP client. Unset fields get
	// cluster-specific defaults biased toward fast failover: 2 attempts,
	// 25ms base backoff, breaker threshold 3.
	Client client.Config
}

func (c Config) peerClientConfig(addr string) client.Config {
	cc := c.Client
	if cc.MaxAttempts == 0 {
		cc.MaxAttempts = 2
	}
	if cc.BaseBackoff == 0 {
		cc.BaseBackoff = 25 * time.Millisecond
	}
	if cc.MaxBackoff == 0 {
		cc.MaxBackoff = 250 * time.Millisecond
	}
	if cc.BreakerThreshold == 0 {
		cc.BreakerThreshold = 3
	}
	if cc.BreakerCooldown == 0 {
		cc.BreakerCooldown = time.Second
	}
	if cc.JitterSeed == 0 {
		// Distinct deterministic jitter streams per peer link.
		cc.JitterSeed = hash64(addr) | 1
	}
	return cc
}

// peer is one remote member: its resilient client plus traffic counters.
type peer struct {
	addr      string
	cl        *client.Client
	gets      atomic.Uint64
	getHits   atomic.Uint64
	getErrors atomic.Uint64
	puts      atomic.Uint64
	putErrors atomic.Uint64
}

// Peering is one node's live membership state: the consistent-hash ring
// plus a client per remote peer. It is safe for concurrent use;
// UpdatePeers may be called while requests are in flight.
type Peering struct {
	cfg  Config
	self string

	mu    sync.RWMutex
	ring  *ring
	peers map[string]*peer // remote members only

	ownedLocal   atomic.Uint64 // key lookups this node owned itself
	remoteHits   atomic.Uint64 // fetches served by the owning peer
	fallbacks    atomic.Uint64 // fetches that failed over to local compute
	decodeErrors atomic.Uint64 // peer responses the codec rejected
	pushes       atomic.Uint64 // repair puts attempted
	rebalances   atomic.Uint64 // effective peer-list changes
}

// New builds the peering state for cfg. cfg.Self must be non-empty.
func New(cfg Config) (*Peering, error) {
	if cfg.Self == "" {
		return nil, errors.New("cluster: Config.Self is required")
	}
	if cfg.PeerTimeout <= 0 {
		cfg.PeerTimeout = 2 * time.Second
	}
	p := &Peering{cfg: cfg, self: cfg.Self, peers: map[string]*peer{}, ring: newRing(cfg.Replicas, nil)}
	p.UpdatePeers(cfg.Peers)
	p.rebalances.Store(0) // construction is not a rebalance
	return p, nil
}

// Self returns this node's advertised address.
func (p *Peering) Self() string { return p.self }

// Members returns the current member list, sorted, self included.
func (p *Peering) Members() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := []string{p.self}
	for addr := range p.peers {
		out = append(out, addr)
	}
	sort.Strings(out)
	return out
}

// UpdatePeers replaces the member list and rebuilds the ring: the
// rebalance path. Self is always a member; clients of retained peers are
// kept (their breaker state survives the change), clients of removed
// peers are dropped. Consistent hashing guarantees only keys in the
// arcs of added/removed peers change owners.
func (p *Peering) UpdatePeers(members []string) {
	seen := map[string]bool{p.self: true}
	normalized := []string{p.self}
	for _, addr := range members {
		if addr == "" || seen[addr] {
			continue
		}
		seen[addr] = true
		normalized = append(normalized, addr)
	}
	sort.Strings(normalized)

	p.mu.Lock()
	defer p.mu.Unlock()
	changed := len(normalized) != len(p.peers)+1
	next := make(map[string]*peer, len(normalized)-1)
	for _, addr := range normalized {
		if addr == p.self {
			continue
		}
		if existing, ok := p.peers[addr]; ok {
			next[addr] = existing
			continue
		}
		changed = true
		next[addr] = &peer{addr: addr, cl: client.New(addr, p.cfg.peerClientConfig(addr))}
	}
	p.peers = next
	p.ring = newRing(p.cfg.Replicas, normalized)
	if changed {
		p.rebalances.Add(1)
	}
}

// Owner resolves the owning member for key. self reports whether this
// node owns it (also true for a single-node cluster).
func (p *Peering) Owner(key artifact.Key) (addr string, self bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	addr = p.ring.owner(string(key))
	return addr, addr == "" || addr == p.self
}

// ErrPeerUnavailable wraps every failed peer operation so callers can
// treat "owner unreachable" uniformly, whatever the transport detail.
var ErrPeerUnavailable = errors.New("cluster: owning peer unavailable")

// Fetch resolves the owner for key and, when it is a remote peer, asks
// it to get-or-compute the artifact described by (family, recipe).
//
//	remote == false            this node owns the key: compute locally,
//	                           not a fallback (resp and err are nil)
//	remote == true, err == nil the owner served the artifact
//	remote == true, err != nil the owner was unreachable or refused:
//	                           compute locally, counted as a fallback
//
// The operation is bounded by Config.PeerTimeout and the cluster.peer.get
// fault point fires before any network activity, so chaos suites can
// sever the peer link deterministically.
func (p *Peering) Fetch(ctx context.Context, key artifact.Key, family string, recipe any) (resp *GetResponse, remote bool, err error) {
	owner, self := p.Owner(key)
	if self {
		p.ownedLocal.Add(1)
		return nil, false, nil
	}
	pr := p.lookup(owner)
	if pr == nil {
		// The ring and peer map changed between Owner and lookup; treat
		// like an unreachable owner.
		p.fallbacks.Add(1)
		return nil, true, fmt.Errorf("%w: %s left the cluster", ErrPeerUnavailable, owner)
	}
	pr.gets.Add(1)
	if ferr := faultinject.For(ctx).FireCtx(ctx, faultinject.PointPeerGet); ferr != nil {
		pr.getErrors.Add(1)
		p.fallbacks.Add(1)
		return nil, true, fmt.Errorf("%w: %w", ErrPeerUnavailable, ferr)
	}
	raw, merr := json.Marshal(recipe)
	if merr != nil {
		pr.getErrors.Add(1)
		p.fallbacks.Add(1)
		return nil, true, fmt.Errorf("%w: encoding recipe: %v", ErrPeerUnavailable, merr)
	}
	cctx, cancel := context.WithTimeout(ctx, p.cfg.PeerTimeout)
	defer cancel()
	var out GetResponse
	if _, cerr := pr.cl.PostJSON(cctx, "/v1/peer/get", nil, &GetRequest{
		Key:    string(key),
		Family: family,
		Recipe: raw,
	}, &out); cerr != nil {
		pr.getErrors.Add(1)
		p.fallbacks.Add(1)
		return nil, true, fmt.Errorf("%w: %w", ErrPeerUnavailable, cerr)
	}
	pr.getHits.Add(1)
	p.remoteHits.Add(1)
	return &out, true, nil
}

// Push offers an artifact to its owning peer, best-effort: the repair
// path after a fallback compute. Owning the key yourself is a no-op.
func (p *Peering) Push(ctx context.Context, key artifact.Key, codecKind string, payload []byte, size int64) error {
	owner, self := p.Owner(key)
	if self {
		return nil
	}
	pr := p.lookup(owner)
	if pr == nil {
		return fmt.Errorf("%w: %s left the cluster", ErrPeerUnavailable, owner)
	}
	p.pushes.Add(1)
	pr.puts.Add(1)
	if ferr := faultinject.For(ctx).FireCtx(ctx, faultinject.PointPeerPut); ferr != nil {
		pr.putErrors.Add(1)
		return fmt.Errorf("%w: %v", ErrPeerUnavailable, ferr)
	}
	cctx, cancel := context.WithTimeout(ctx, p.cfg.PeerTimeout)
	defer cancel()
	if _, cerr := pr.cl.PostJSON(cctx, "/v1/peer/put", nil, &PutRequest{
		Key:       string(key),
		CodecKind: codecKind,
		Payload:   payload,
		Size:      size,
	}, nil); cerr != nil {
		pr.putErrors.Add(1)
		return fmt.Errorf("%w: %v", ErrPeerUnavailable, cerr)
	}
	return nil
}

// NoteDecodeError records a peer response the artifact codec rejected —
// served bytes that failed revalidation count against cluster health,
// and the caller falls back to computing locally.
func (p *Peering) NoteDecodeError() {
	p.decodeErrors.Add(1)
	p.fallbacks.Add(1)
}

func (p *Peering) lookup(addr string) *peer {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.peers[addr]
}

// PeerSnapshot is one remote member's health and traffic view.
type PeerSnapshot struct {
	Addr      string `json:"addr"`
	Gets      uint64 `json:"gets"`
	GetHits   uint64 `json:"get_hits"`
	GetErrors uint64 `json:"get_errors"`
	Puts      uint64 `json:"puts"`
	PutErrors uint64 `json:"put_errors"`
	// BreakerOpen reports the peer link's circuit breaker state: true
	// means this node currently considers the peer down and is
	// fast-failing fetches to it (every such fetch is a local-compute
	// fallback).
	BreakerOpen bool `json:"breaker_open"`
	// Client carries the underlying resilient-client counters (attempts,
	// retries, breaker trips, half-open probes, recoveries).
	Client client.Stats `json:"client"`
}

// Snapshot is the cluster section of /metrics.
type Snapshot struct {
	Self    string   `json:"self"`
	Members []string `json:"members"`
	// OwnedLocal counts key lookups this node owned itself; RemoteHits
	// and Fallbacks split the rest by whether the owning peer answered.
	OwnedLocal   uint64         `json:"owned_local"`
	RemoteHits   uint64         `json:"remote_hits"`
	Fallbacks    uint64         `json:"fallbacks"`
	DecodeErrors uint64         `json:"decode_errors"`
	Pushes       uint64         `json:"pushes"`
	Rebalances   uint64         `json:"rebalances"`
	Peers        []PeerSnapshot `json:"peers"`
}

// Stats snapshots the peering state.
func (p *Peering) Stats() Snapshot {
	s := Snapshot{
		Self:         p.self,
		Members:      p.Members(),
		OwnedLocal:   p.ownedLocal.Load(),
		RemoteHits:   p.remoteHits.Load(),
		Fallbacks:    p.fallbacks.Load(),
		DecodeErrors: p.decodeErrors.Load(),
		Pushes:       p.pushes.Load(),
		Rebalances:   p.rebalances.Load(),
	}
	p.mu.RLock()
	peers := make([]*peer, 0, len(p.peers))
	for _, pr := range p.peers {
		peers = append(peers, pr)
	}
	p.mu.RUnlock()
	sort.Slice(peers, func(i, j int) bool { return peers[i].addr < peers[j].addr })
	for _, pr := range peers {
		s.Peers = append(s.Peers, PeerSnapshot{
			Addr:        pr.addr,
			Gets:        pr.gets.Load(),
			GetHits:     pr.getHits.Load(),
			GetErrors:   pr.getErrors.Load(),
			Puts:        pr.puts.Load(),
			PutErrors:   pr.putErrors.Load(),
			BreakerOpen: pr.cl.BreakerOpen(),
			Client:      pr.cl.Stats(),
		})
	}
	return s
}
