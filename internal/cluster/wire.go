package cluster

import "encoding/json"

// Wire types of the peer protocol. Artifacts travel between nodes in the
// same (codec kind, payload) byte form the disk tier persists, so one
// codec registry serves both surfaces and every transferred artifact is
// revalidated by the receiver's decoder before it enters the cache.

// GetRequest asks the owning peer to get-or-compute one artifact.
// Alongside the content-addressed key it carries the recipe — the
// original endpoint request body — because a key is a digest: the owner
// can only compute the artifact from the inputs, not from their hash.
// The owner independently recomputes the key from the recipe and refuses
// a mismatch, so a confused (or malicious) peer cannot poison another
// node's cache under a wrong key.
type GetRequest struct {
	// Key is the artifact cache key (hex SHA-256, see internal/artifact).
	Key string `json:"key"`
	// Family names the artifact family: "annotate" or "compile".
	Family string `json:"family"`
	// Recipe is the family-specific request body (the same JSON shape the
	// public /v1/annotate and /v1/compile endpoints accept).
	Recipe json.RawMessage `json:"recipe"`
}

// GetResponse returns the artifact in disk-codec wire form.
type GetResponse struct {
	// CodecKind selects the decoder (e.g. "annotate/v1", "compile/v1").
	CodecKind string `json:"codec_kind"`
	// Payload is the encoded artifact (base64 on the wire via encoding/json).
	Payload []byte `json:"payload"`
	// Size is the accounted cache size, so the requester charges its LRU
	// budget exactly as the owner did.
	Size int64 `json:"size"`
	// CacheHit reports whether the owner served the artifact from its
	// cache (memory or disk) rather than computing it.
	CacheHit bool `json:"cache_hit"`
}

// PutRequest offers an artifact to its owning peer: the availability
// repair path. When a node computed a key it does not own (because the
// owner was unreachable at the time), it pushes the result to the owner
// best-effort so the cluster converges back to one copy-of-record per
// key once the owner returns.
type PutRequest struct {
	Key       string `json:"key"`
	CodecKind string `json:"codec_kind"`
	Payload   []byte `json:"payload"`
	Size      int64  `json:"size"`
}

// PutResponse acknowledges a peer put.
type PutResponse struct {
	Stored bool `json:"stored"`
}
