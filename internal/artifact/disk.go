package artifact

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"gcsafety/internal/faultinject"
)

// Disk is the crash-safe disk tier behind the in-memory cache: a
// directory of content-addressed entries that survives restarts.
//
// Durability and integrity discipline:
//
//   - writes go to a temp file in the same directory, are fsynced, then
//     renamed into place — a crash (even kill -9) leaves either the old
//     entry, the new entry, or a stray .tmp file that startup recovery
//     deletes, never a torn entry under the real name;
//   - every entry embeds a SHA-256 digest of its payload, verified on
//     every read; a mismatch (bit rot, truncation, tampering) quarantines
//     the entry rather than serving it;
//   - startup recovery (OpenDisk) re-verifies every entry, quarantines
//     the corrupt ones and deletes temp-file debris, so a restarted
//     daemon trusts everything left in the directory;
//   - the tier degrades gracefully: after diskDisableThreshold
//     consecutive I/O failures it disables itself and the cache runs
//     memory-only (every operation is already best-effort for callers).
//
// Fault points "artifact.disk.read" and "artifact.disk.write"
// (internal/faultinject) fire before the corresponding I/O, resolving
// against the request-scoped Set carried by the operation's context
// when one is attached, else the global set.
type Disk struct {
	dir        string
	quarantine string

	// renameMu serializes the freshness probe + rename in put: without
	// it, two concurrent first Puts of a key both observe "absent" and
	// double-count entries.
	renameMu sync.Mutex

	entries     atomic.Int64
	hits        atomic.Uint64
	misses      atomic.Uint64
	writes      atomic.Uint64
	readErrors  atomic.Uint64
	writeErrors atomic.Uint64
	quarantined atomic.Uint64
	recovered   atomic.Uint64

	consecutiveErrs atomic.Int64
	disabled        atomic.Bool
}

// diskDisableThreshold is how many consecutive I/O failures the tier
// tolerates before bypassing itself for the rest of the process.
const diskDisableThreshold = 8

// diskMagic heads every entry file; bump the suffix on format changes so
// old entries are quarantined, not misparsed.
var diskMagic = []byte("gcsafeA1")

// ErrCorrupt reports an entry that failed integrity verification (and
// has been quarantined).
var ErrCorrupt = errors.New("artifact: corrupt disk entry")

// errDiskMiss distinguishes "not stored" from real failures internally.
var errDiskMiss = errors.New("artifact: disk miss")

// DiskStats is a point-in-time snapshot of the disk tier.
type DiskStats struct {
	Dir         string `json:"dir"`
	Entries     int64  `json:"entries"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Writes      uint64 `json:"writes"`
	ReadErrors  uint64 `json:"read_errors"`
	WriteErrors uint64 `json:"write_errors"`
	Quarantined uint64 `json:"quarantined"`
	Recovered   uint64 `json:"recovered"`
	Disabled    bool   `json:"disabled"`
}

// RecoverStats summarizes startup recovery.
type RecoverStats struct {
	Verified    int `json:"verified"`
	Quarantined int `json:"quarantined"`
	TempRemoved int `json:"temp_removed"`
}

// OpenDisk opens (creating if needed) a disk tier rooted at dir and runs
// startup recovery: stray temp files are deleted and every entry is
// verified, with corrupt entries moved into dir/quarantine.
func OpenDisk(dir string) (*Disk, RecoverStats, error) {
	var rs RecoverStats
	d := &Disk{dir: dir, quarantine: filepath.Join(dir, "quarantine")}
	if err := os.MkdirAll(d.quarantine, 0o755); err != nil {
		return nil, rs, fmt.Errorf("artifact: open disk tier: %w", err)
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, rs, fmt.Errorf("artifact: open disk tier: %w", err)
	}
	for _, de := range names {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		path := filepath.Join(dir, name)
		if strings.Contains(name, ".tmp") {
			_ = os.Remove(path)
			rs.TempRemoved++
			continue
		}
		if _, _, err := readEntry(path); err != nil {
			if d.moveToQuarantine(path, name) {
				rs.Quarantined++
			}
			continue
		}
		rs.Verified++
	}
	d.entries.Store(int64(rs.Verified))
	d.recovered.Store(uint64(rs.Verified))
	d.quarantined.Store(uint64(rs.Quarantined))
	return d, rs, nil
}

// Stats snapshots the tier's counters.
func (d *Disk) Stats() DiskStats {
	return DiskStats{
		Dir:         d.dir,
		Entries:     d.entries.Load(),
		Hits:        d.hits.Load(),
		Misses:      d.misses.Load(),
		Writes:      d.writes.Load(),
		ReadErrors:  d.readErrors.Load(),
		WriteErrors: d.writeErrors.Load(),
		Quarantined: d.quarantined.Load(),
		Recovered:   d.recovered.Load(),
		Disabled:    d.disabled.Load(),
	}
}

// Len reports the number of resident entries (tests).
func (d *Disk) Len() int { return int(d.entries.Load()) }

func (d *Disk) path(key Key) string { return filepath.Join(d.dir, string(key)) }

func (d *Disk) noteErr() {
	if d.consecutiveErrs.Add(1) >= diskDisableThreshold {
		d.disabled.Store(true)
	}
}

func (d *Disk) noteOK() { d.consecutiveErrs.Store(0) }

// Get reads and verifies the entry for key. It returns errDiskMiss-
// compatible (os.ErrNotExist wrapped) errors for absent keys, ErrCorrupt
// after quarantining a damaged entry, and the underlying error for I/O
// failures.
func (d *Disk) Get(ctx context.Context, key Key) (kind string, payload []byte, err error) {
	if d.disabled.Load() {
		return "", nil, errDiskMiss
	}
	if err := faultinject.For(ctx).FireCtx(ctx, faultinject.PointDiskRead); err != nil {
		d.readErrors.Add(1)
		d.noteErr()
		return "", nil, err
	}
	kind, payload, err = readEntry(d.path(key))
	switch {
	case err == nil:
		d.hits.Add(1)
		d.noteOK()
		return kind, payload, nil
	case errors.Is(err, os.ErrNotExist):
		d.misses.Add(1)
		return "", nil, errDiskMiss
	case errors.Is(err, ErrCorrupt):
		d.Quarantine(key)
		return "", nil, err
	default:
		d.readErrors.Add(1)
		d.noteErr()
		return "", nil, err
	}
}

// Put atomically stores (kind, payload) under key: temp file, fsync,
// rename. Best-effort for callers; failures only count against the tier.
func (d *Disk) Put(ctx context.Context, key Key, kind string, payload []byte) error {
	if d.disabled.Load() {
		return errors.New("artifact: disk tier disabled")
	}
	if err := faultinject.For(ctx).FireCtx(ctx, faultinject.PointDiskWrite); err != nil {
		d.writeErrors.Add(1)
		d.noteErr()
		return err
	}
	err := d.put(key, kind, payload)
	if err != nil {
		d.writeErrors.Add(1)
		d.noteErr()
		return err
	}
	d.writes.Add(1)
	d.noteOK()
	return nil
}

func (d *Disk) put(key Key, kind string, payload []byte) error {
	f, err := os.CreateTemp(d.dir, string(key)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if tmp != "" {
			_ = f.Close()
			_ = os.Remove(tmp)
		}
	}()
	sum := sha256.Sum256(payload)
	var hdr bytes.Buffer
	hdr.Write(diskMagic)
	var n [8]byte
	binary.LittleEndian.PutUint32(n[:4], uint32(len(kind)))
	hdr.Write(n[:4])
	hdr.WriteString(kind)
	binary.LittleEndian.PutUint64(n[:], uint64(len(payload)))
	hdr.Write(n[:])
	hdr.Write(sum[:])
	if _, err := f.Write(hdr.Bytes()); err != nil {
		return err
	}
	if _, err := f.Write(payload); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	// Freshness probe and rename are one atomic step under renameMu, so
	// concurrent first Puts of a key count exactly one new entry.
	d.renameMu.Lock()
	_, serr := os.Lstat(d.path(key))
	rerr := os.Rename(tmp, d.path(key))
	if rerr == nil && serr != nil {
		d.entries.Add(1)
	}
	d.renameMu.Unlock()
	if rerr != nil {
		_ = os.Remove(tmp)
		tmp = ""
		return rerr
	}
	tmp = ""
	return nil
}

// Quarantine moves the entry for key out of the live directory,
// preserving the bytes for post-mortem. Best-effort: when the move
// itself fails (quarantine directory gone, cross-device rename) the
// corrupt file is left in place rather than deleted — it still cannot
// be served, because every read re-fails verification — and the
// counters are untouched.
func (d *Disk) Quarantine(key Key) {
	if d.moveToQuarantine(d.path(key), string(key)) {
		d.quarantined.Add(1)
		d.entries.Add(-1)
	}
}

func (d *Disk) moveToQuarantine(path, name string) bool {
	for i := 0; ; i++ {
		dst := filepath.Join(d.quarantine, fmt.Sprintf("%s.%d", name, i))
		if _, err := os.Lstat(dst); err == nil {
			continue
		}
		// A failed rename must not delete the source: the whole point of
		// quarantine is to keep the corrupt bytes for post-mortem.
		return os.Rename(path, dst) == nil
	}
}

// readEntry parses and verifies one entry file.
func readEntry(path string) (kind string, payload []byte, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return "", nil, err
	}
	r := bytes.NewReader(raw)
	magic := make([]byte, len(diskMagic))
	if _, err := io.ReadFull(r, magic); err != nil || !bytes.Equal(magic, diskMagic) {
		return "", nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	var n4 [4]byte
	if _, err := io.ReadFull(r, n4[:]); err != nil {
		return "", nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	kindLen := binary.LittleEndian.Uint32(n4[:])
	if kindLen > 256 {
		return "", nil, fmt.Errorf("%w: implausible kind length %d", ErrCorrupt, kindLen)
	}
	kb := make([]byte, kindLen)
	if _, err := io.ReadFull(r, kb); err != nil {
		return "", nil, fmt.Errorf("%w: truncated kind", ErrCorrupt)
	}
	var n8 [8]byte
	if _, err := io.ReadFull(r, n8[:]); err != nil {
		return "", nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	payloadLen := binary.LittleEndian.Uint64(n8[:])
	var want [sha256.Size]byte
	if _, err := io.ReadFull(r, want[:]); err != nil {
		return "", nil, fmt.Errorf("%w: truncated digest", ErrCorrupt)
	}
	if uint64(r.Len()) != payloadLen {
		return "", nil, fmt.Errorf("%w: payload length %d, header says %d", ErrCorrupt, r.Len(), payloadLen)
	}
	payload = raw[len(raw)-r.Len():]
	if sha256.Sum256(payload) != want {
		return "", nil, fmt.Errorf("%w: digest mismatch", ErrCorrupt)
	}
	return string(kb), payload, nil
}
