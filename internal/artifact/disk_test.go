package artifact

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"gcsafety/internal/faultinject"
)

// jsonCodec is a test codec: values are JSON-encoded strings.
func jsonCodec() DiskCodec {
	return DiskCodec{
		Encode: func(key Key, v any) (string, []byte, bool) {
			b, err := json.Marshal(v)
			if err != nil {
				return "", nil, false
			}
			return "json", b, true
		},
		Decode: func(kind string, data []byte) (any, int64, error) {
			if kind != "json" {
				return nil, 0, errors.New("unknown kind")
			}
			var v string
			if err := json.Unmarshal(data, &v); err != nil {
				return nil, 0, err
			}
			return v, int64(len(v)), nil
		},
	}
}

func TestDiskPutGetRoundtrip(t *testing.T) {
	d, rs, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if rs.Verified != 0 || rs.Quarantined != 0 {
		t.Fatalf("fresh dir recovery: %+v", rs)
	}
	key := NewKey("test").Str("a").Sum()
	if err := d.Put(context.Background(), key, "blob", []byte("payload bytes")); err != nil {
		t.Fatal(err)
	}
	kind, data, err := d.Get(context.Background(), key)
	if err != nil || kind != "blob" || string(data) != "payload bytes" {
		t.Fatalf("Get = %q %q %v", kind, data, err)
	}
	// Overwriting the same key must not double-count entries.
	if err := d.Put(context.Background(), key, "blob", []byte("other")); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 {
		t.Fatalf("entries = %d, want 1", d.Len())
	}
	if _, _, err := d.Get(context.Background(), NewKey("test").Str("absent").Sum()); err == nil {
		t.Fatal("absent key served")
	}
	st := d.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestDiskCorruptionQuarantinedOnRead(t *testing.T) {
	dir := t.TempDir()
	d, _, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := NewKey("test").Str("x").Sum()
	if err := d.Put(context.Background(), key, "blob", []byte("precious")); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte behind the tier's back.
	path := filepath.Join(dir, string(key))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Get(context.Background(), key); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt read returned %v, want ErrCorrupt", err)
	}
	if _, err := os.Lstat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("corrupt entry still live")
	}
	qs, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(qs) != 1 {
		t.Fatalf("quarantine dir: %v entries, err %v", len(qs), err)
	}
	if d.Stats().Quarantined != 1 {
		t.Fatalf("stats: %+v", d.Stats())
	}
	// The key now misses cleanly.
	if _, _, err := d.Get(context.Background(), key); !errors.Is(err, errDiskMiss) {
		t.Fatalf("after quarantine: %v", err)
	}
}

func TestDiskStartupRecovery(t *testing.T) {
	dir := t.TempDir()
	d, _, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	good := NewKey("test").Str("good").Sum()
	bad := NewKey("test").Str("bad").Sum()
	if err := d.Put(context.Background(), good, "blob", []byte("fine")); err != nil {
		t.Fatal(err)
	}
	if err := d.Put(context.Background(), bad, "blob", []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash: truncate one entry mid-write under its real name
	// (cannot happen through Put, which renames; this models bit rot or a
	// meddling operator) and leave a stray temp file.
	if err := os.Truncate(filepath.Join(dir, string(bad)), 10); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, string(good)+".tmp123"), []byte("debris"), 0o644); err != nil {
		t.Fatal(err)
	}

	d2, rs, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Verified != 1 || rs.Quarantined != 1 || rs.TempRemoved != 1 {
		t.Fatalf("recovery: %+v", rs)
	}
	if kind, data, err := d2.Get(context.Background(), good); err != nil || kind != "blob" || string(data) != "fine" {
		t.Fatalf("good entry after recovery: %q %q %v", kind, data, err)
	}
	if _, _, err := d2.Get(context.Background(), bad); !errors.Is(err, errDiskMiss) {
		t.Fatalf("bad entry after recovery: %v", err)
	}
}

func TestDiskDisablesAfterConsecutiveErrors(t *testing.T) {
	defer faultinject.SetGlobal(nil)
	set, err := faultinject.Parse("artifact.disk.write=error", 1)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.SetGlobal(set)
	d, _, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := NewKey("test").Str("k").Sum()
	for i := 0; i < diskDisableThreshold; i++ {
		if err := d.Put(context.Background(), key, "blob", []byte("x")); err == nil {
			t.Fatal("injected write error did not surface")
		}
	}
	if !d.Stats().Disabled {
		t.Fatalf("tier not disabled after %d consecutive errors: %+v", diskDisableThreshold, d.Stats())
	}
	// Disabled tier bypasses I/O entirely — even with the fault still armed.
	faultinject.SetGlobal(nil)
	if err := d.Put(context.Background(), key, "blob", []byte("x")); err == nil {
		t.Fatal("disabled tier accepted a write")
	}
	if _, _, err := d.Get(context.Background(), key); !errors.Is(err, errDiskMiss) {
		t.Fatalf("disabled tier read: %v", err)
	}
}

// TestDiskRestartReenablesTier: self-disable is a per-process latch, not
// a persistent verdict on the directory. A tier that turned itself off
// after consecutive injected I/O errors stays off for the life of the
// process (no flapping), but a restart — the operator's remediation —
// reopens the directory, re-verifies what survived, and serves and
// accepts writes again.
func TestDiskRestartReenablesTier(t *testing.T) {
	defer faultinject.SetGlobal(nil)
	dir := t.TempDir()
	d, _, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := New(1 << 20)
	c.AttachDisk(d, jsonCodec())
	keyA := NewKey("test").Str("survivor").Sum()
	if _, _, err := c.GetOrCompute(context.Background(), keyA, func() (any, int64, error) {
		return "durable", 7, nil
	}); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 {
		t.Fatal("healthy write did not reach disk")
	}

	// The device "goes bad": every read and write errors until the tier
	// gives up and disables itself.
	set, err := faultinject.Parse("artifact.disk.read=error;artifact.disk.write=error", 1)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.SetGlobal(set)
	for i := 0; i < 4*diskDisableThreshold; i++ {
		key := NewKey("test").Str("churn").Int(int64(i)).Sum()
		if _, _, err := c.GetOrCompute(context.Background(), key, func() (any, int64, error) {
			return "memory-only", 11, nil
		}); err != nil {
			t.Fatalf("cache must absorb disk faults, got %v", err)
		}
	}
	if !d.Stats().Disabled {
		t.Fatalf("tier not disabled under sustained faults: %+v", d.Stats())
	}

	// Clearing the fault does NOT re-enable: the latch holds until restart,
	// so a marginal device cannot flap the tier on and off.
	faultinject.SetGlobal(nil)
	if err := d.Put(context.Background(), keyA, "json", []byte(`"x"`)); err == nil {
		t.Fatal("disabled tier accepted a write after faults cleared")
	}

	// Restart: reopen the directory. Recovery re-verifies the surviving
	// entry and the tier is live again — the pre-failure artifact restores
	// without recomputing, and new writes persist.
	d2, rs, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Verified != 1 {
		t.Fatalf("recovery after disabled run: %+v", rs)
	}
	if d2.Stats().Disabled {
		t.Fatal("reopened tier born disabled")
	}
	c2 := New(1 << 20)
	c2.AttachDisk(d2, jsonCodec())
	v, hit, err := c2.GetOrCompute(context.Background(), keyA, func() (any, int64, error) {
		t.Error("restart recomputed an artifact the disk still held")
		return "recomputed", 7, nil
	})
	if err != nil || !hit || v != "durable" {
		t.Fatalf("restored after restart: %v %v %v", v, hit, err)
	}
	keyB := NewKey("test").Str("post-restart").Sum()
	if _, _, err := c2.GetOrCompute(context.Background(), keyB, func() (any, int64, error) {
		return "fresh", 5, nil
	}); err != nil {
		t.Fatal(err)
	}
	if d2.Len() != 2 {
		t.Fatalf("re-enabled tier holds %d entries, want 2", d2.Len())
	}
}

func TestCacheDiskTierPromotionAndWriteThrough(t *testing.T) {
	dir := t.TempDir()
	d, _, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := New(1 << 20)
	c.AttachDisk(d, jsonCodec())
	key := NewKey("test").Str("v").Sum()
	computes := 0
	compute := func() (any, int64, error) {
		computes++
		return "computed", 8, nil
	}
	if v, hit, err := c.GetOrCompute(context.Background(), key, compute); err != nil || hit || v != "computed" {
		t.Fatalf("first: %v %v %v", v, hit, err)
	}
	if d.Len() != 1 {
		t.Fatal("computation not written through to disk")
	}

	// A fresh cache over the same directory restores the artifact from
	// disk without recomputing — the restart scenario.
	d2, rs, err := OpenDisk(dir)
	if err != nil || rs.Verified != 1 {
		t.Fatalf("reopen: %+v %v", rs, err)
	}
	c2 := New(1 << 20)
	c2.AttachDisk(d2, jsonCodec())
	v, hit, err := c2.GetOrCompute(context.Background(), key, compute)
	if err != nil || v != "computed" {
		t.Fatalf("restored: %v %v", v, err)
	}
	if !hit {
		t.Fatal("disk restoration did not count as a hit")
	}
	if computes != 1 {
		t.Fatalf("computed %d times, want 1", computes)
	}
	st := c2.Stats()
	if st.DiskHits != 1 || st.Disk == nil || st.Disk.Hits != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// Promotion: now resident in memory, no second disk read.
	if _, hit, _ := c2.GetOrCompute(context.Background(), key, compute); !hit {
		t.Fatal("promoted entry missed")
	}
	if c2.Stats().Disk.Hits != 1 {
		t.Fatal("memory hit went to disk")
	}
}

func TestCacheBypassesFailingDiskTier(t *testing.T) {
	defer faultinject.SetGlobal(nil)
	set, err := faultinject.Parse("artifact.disk.read=error;artifact.disk.write=error", 1)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.SetGlobal(set)
	d, _, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := New(1 << 20)
	c.AttachDisk(d, jsonCodec())
	for i := 0; i < 20; i++ {
		key := NewKey("test").Int(int64(i)).Sum()
		v, _, err := c.GetOrCompute(context.Background(), key, func() (any, int64, error) {
			return fmt.Sprintf("v%d", i), 4, nil
		})
		if err != nil || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("i=%d: cache failed under a broken disk tier: %v %v", i, v, err)
		}
	}
	if !c.Stats().Disk.Disabled {
		t.Fatalf("tier should have self-disabled: %+v", c.Stats().Disk)
	}
}

func TestCacheQuarantinesUndecodableEntry(t *testing.T) {
	dir := t.TempDir()
	d, _, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := NewKey("test").Str("w").Sum()
	// A verified entry whose kind the codec does not understand: integrity
	// passes, decoding fails, the cache must quarantine and recompute.
	if err := d.Put(context.Background(), key, "ancient-format", []byte(`"old"`)); err != nil {
		t.Fatal(err)
	}
	c := New(1 << 20)
	c.AttachDisk(d, jsonCodec())
	v, hit, err := c.GetOrCompute(context.Background(), key, func() (any, int64, error) {
		return "fresh", 5, nil
	})
	if err != nil || hit || v != "fresh" {
		t.Fatalf("undecodable entry: %v %v %v", v, hit, err)
	}
	if d.Stats().Quarantined != 1 {
		t.Fatalf("stats: %+v", d.Stats())
	}
}

// TestEvictionRacingGetAndPut drives concurrent Get/Put/GetOrCompute of
// overlapping keys through a cache small enough to evict constantly —
// run under -race this pins down the eviction/lookup locking discipline
// (satellite: eviction racing concurrent Get/Put of the same key).
func TestEvictionRacingGetAndPut(t *testing.T) {
	c := New(512) // tiny budget: half the working set fits, so inserts evict
	const keys = 16
	key := func(i int) Key { return NewKey("race").Int(int64(i % keys)).Sum() }
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := key(i + g)
				switch i % 3 {
				case 0:
					c.Put(k, strings.Repeat("x", 64), 64)
				case 1:
					if v, ok := c.Get(k); ok {
						if s, good := v.(string); !good || len(s) != 64 {
							t.Errorf("corrupt value under race: %v", v)
							return
						}
					}
				default:
					v, _, err := c.GetOrCompute(context.Background(), k, func() (any, int64, error) {
						return strings.Repeat("x", 64), 64, nil
					})
					if err != nil || len(v.(string)) != 64 {
						t.Errorf("GetOrCompute under race: %v %v", v, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("budget never forced an eviction; the race never happened")
	}
	if st.Bytes > 512 {
		t.Fatalf("bytes %d exceed budget after racing evictions", st.Bytes)
	}
}

// TestQuarantineFailurePreservesBytes: when the move into quarantine
// cannot happen (here: the quarantine directory has been replaced by a
// file), the corrupt entry must stay on disk for post-mortem — never be
// deleted — and must not be counted as quarantined.
func TestQuarantineFailurePreservesBytes(t *testing.T) {
	dir := t.TempDir()
	d, _, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := NewKey("test").Str("evidence").Sum()
	if err := d.Put(context.Background(), key, "blob", []byte("precious")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, string(key))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	q := filepath.Join(dir, "quarantine")
	if err := os.RemoveAll(q); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(q, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Get(context.Background(), key); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt read returned %v, want ErrCorrupt", err)
	}
	if _, err := os.Lstat(path); err != nil {
		t.Fatalf("failed quarantine destroyed the corrupt bytes: %v", err)
	}
	if st := d.Stats(); st.Quarantined != 0 || st.Entries != 1 {
		t.Fatalf("failed quarantine still counted: %+v", st)
	}
	// The entry is still unservable: every read re-fails verification.
	if _, _, err := d.Get(context.Background(), key); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt entry served after failed quarantine: %v", err)
	}
}

// TestConcurrentFirstPutCountsOnce: racing first Puts of the same absent
// key must settle on exactly one counted entry (the freshness probe and
// rename are one atomic step).
func TestConcurrentFirstPutCountsOnce(t *testing.T) {
	d, _, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := NewKey("test").Str("raced").Sum()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := d.Put(context.Background(), key, "blob", []byte("same")); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if d.Len() != 1 {
		t.Fatalf("entries = %d after racing Puts of one key, want 1", d.Len())
	}
	if _, _, err := d.Get(context.Background(), key); err != nil {
		t.Fatal(err)
	}
}

// TestContextScopedDiskFaults: a faultinject Set carried by the
// operation's context reaches the disk tier — the path gcsafed's
// X-Fault-Inject header rides — while context-free operations stay
// untouched.
func TestContextScopedDiskFaults(t *testing.T) {
	set, err := faultinject.Parse("artifact.disk.read=error;artifact.disk.write=error", 1)
	if err != nil {
		t.Fatal(err)
	}
	faulted := faultinject.WithContext(context.Background(), set)
	d, _, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := NewKey("test").Str("ctx").Sum()
	if err := d.Put(faulted, key, "blob", []byte("x")); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("context-scoped write fault not injected: %v", err)
	}
	if err := d.Put(context.Background(), key, "blob", []byte("x")); err != nil {
		t.Fatalf("fault leaked outside its context: %v", err)
	}
	if _, _, err := d.Get(faulted, key); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("context-scoped read fault not injected: %v", err)
	}
	if _, _, err := d.Get(context.Background(), key); err != nil {
		t.Fatalf("fault leaked outside its context: %v", err)
	}
	if set.Fired(faultinject.PointDiskRead) != 1 || set.Fired(faultinject.PointDiskWrite) != 1 {
		t.Fatalf("fired counts: read=%d write=%d, want 1/1",
			set.Fired(faultinject.PointDiskRead), set.Fired(faultinject.PointDiskWrite))
	}
	if st := d.Stats(); st.ReadErrors != 1 || st.WriteErrors != 1 {
		t.Fatalf("tier error counters: %+v", st)
	}
}
