package artifact

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestKeyBuilderDistinguishesFields(t *testing.T) {
	a := NewKey("compile").Str("ab").Str("c").Sum()
	b := NewKey("compile").Str("a").Str("bc").Sum()
	if a == b {
		t.Fatal("length prefixing failed: concatenation collision")
	}
	if NewKey("compile").Str("x").Sum() == NewKey("annotate").Str("x").Sum() {
		t.Fatal("artifact kind does not participate in the key")
	}
	if NewKey("k").Bool(true).Bool(false).Sum() == NewKey("k").Bool(false).Bool(true).Sum() {
		t.Fatal("bool ordering lost")
	}
	if NewKey("k").Int(1).Sum() != NewKey("k").Int(1).Sum() {
		t.Fatal("keys are not deterministic")
	}
}

func TestGetOrComputeCachesValue(t *testing.T) {
	c := New(1 << 20)
	calls := 0
	compute := func() (any, int64, error) { calls++; return "v", 1, nil }
	v, hit, err := c.GetOrCompute(context.Background(), "k", compute)
	if err != nil || hit || v != "v" {
		t.Fatalf("first call: v=%v hit=%v err=%v", v, hit, err)
	}
	v, hit, err = c.GetOrCompute(context.Background(), "k", compute)
	if err != nil || !hit || v != "v" {
		t.Fatalf("second call: v=%v hit=%v err=%v", v, hit, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := New(1 << 20)
	boom := errors.New("boom")
	calls := 0
	_, _, err := c.GetOrCompute(context.Background(), "k", func() (any, int64, error) {
		calls++
		return nil, 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, _, err := c.GetOrCompute(context.Background(), "k", func() (any, int64, error) {
		calls++
		return "ok", 2, nil
	})
	if err != nil || v != "ok" || calls != 2 {
		t.Fatalf("after failure: v=%v err=%v calls=%d", v, err, calls)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(10)
	for i := 0; i < 5; i++ {
		c.Put(Key(fmt.Sprintf("k%d", i)), i, 4) // 4 bytes each, budget 10 -> 2 fit
	}
	if n := c.Len(); n != 2 {
		t.Fatalf("entries = %d, want 2", n)
	}
	if _, ok := c.Get("k4"); !ok {
		t.Fatal("most recent entry evicted")
	}
	if _, ok := c.Get("k0"); ok {
		t.Fatal("oldest entry survived")
	}
	// Touching k3 then inserting must evict k4, not k3.
	if _, ok := c.Get("k3"); !ok {
		t.Fatal("k3 missing")
	}
	c.Put("k5", 5, 4)
	if _, ok := c.Get("k3"); !ok {
		t.Fatal("recently used entry evicted")
	}
	if st := c.Stats(); st.Evictions == 0 || st.Bytes > 10 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestOversizedArtifactNotRetained(t *testing.T) {
	c := New(10)
	v, hit, err := c.GetOrCompute(context.Background(), "big", func() (any, int64, error) {
		return "huge", 100, nil
	})
	if err != nil || hit || v != "huge" {
		t.Fatalf("v=%v hit=%v err=%v", v, hit, err)
	}
	if c.Len() != 0 {
		t.Fatal("oversized artifact retained")
	}
}

// TestStampede is the core contract: under heavy concurrency on one key
// the computation runs exactly once and everyone shares its result.
func TestStampede(t *testing.T) {
	c := New(1 << 20)
	var computes atomic.Int64
	gate := make(chan struct{})
	const waiters = 100
	var wg sync.WaitGroup
	hits := atomic.Int64{}
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			v, hit, err := c.GetOrCompute(context.Background(), "k", func() (any, int64, error) {
				computes.Add(1)
				return 42, 8, nil
			})
			if err != nil || v != 42 {
				t.Errorf("v=%v err=%v", v, err)
			}
			if hit {
				hits.Add(1)
			}
		}()
	}
	close(gate)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	if hits.Load() != waiters-1 {
		t.Fatalf("hits = %d, want %d", hits.Load(), waiters-1)
	}
}

func TestFollowerCancellation(t *testing.T) {
	c := New(1 << 20)
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	go c.GetOrCompute(context.Background(), "k", func() (any, int64, error) {
		close(leaderIn)
		<-release
		return "v", 1, nil
	})
	<-leaderIn
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.GetOrCompute(ctx, "k", func() (any, int64, error) {
		t.Error("follower must not compute")
		return nil, 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(release)
}
