package artifact

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
)

// A Key names one cache entry: the hex form of a SHA-256 digest over every
// input that influences the artifact. Two requests share an entry exactly
// when their keys collide, so the KeyBuilder must see *all* the inputs —
// source text, annotation options, machine, optimization level, peephole
// flag — and nothing volatile.
type Key string

// KeyBuilder accumulates the inputs of a content-addressed key. Every
// field is written length-prefixed (and bools/ints in fixed-width binary),
// so distinct field sequences can never produce the same digest by
// concatenation tricks ("ab"+"c" vs "a"+"bc").
type KeyBuilder struct {
	h hash.Hash
}

// NewKey starts a key for one artifact kind. The kind participates in the
// digest, so e.g. an "annotate" and a "compile" artifact of identical
// inputs occupy distinct entries.
func NewKey(kind string) *KeyBuilder {
	b := &KeyBuilder{h: sha256.New()}
	b.Str(kind)
	return b
}

func (b *KeyBuilder) writeLen(n int) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(n))
	b.h.Write(buf[:])
}

// Str appends one string field.
func (b *KeyBuilder) Str(s string) *KeyBuilder {
	b.writeLen(len(s))
	b.h.Write([]byte(s))
	return b
}

// Bool appends one boolean field.
func (b *KeyBuilder) Bool(v bool) *KeyBuilder {
	if v {
		b.h.Write([]byte{1})
	} else {
		b.h.Write([]byte{0})
	}
	return b
}

// Int appends one integer field in fixed-width binary.
func (b *KeyBuilder) Int(v int64) *KeyBuilder {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	b.h.Write(buf[:])
	return b
}

// Uint appends one unsigned integer field in fixed-width binary.
func (b *KeyBuilder) Uint(v uint64) *KeyBuilder {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	b.h.Write(buf[:])
	return b
}

// Sum finalizes the key.
func (b *KeyBuilder) Sum() Key {
	return Key(hex.EncodeToString(b.h.Sum(nil)))
}
