// Package artifact is the content-addressed artifact cache behind the
// gcsafed daemon and the measurement harness. Entries are keyed by a
// SHA-256 digest of everything that influences the artifact (source text,
// annotation options, machine, optimization level, peephole flag — see
// KeyBuilder), held under an LRU byte budget, and computed exactly once
// per key under arbitrary concurrency: concurrent requests for a missing
// key coalesce onto a single in-flight computation (the classic
// singleflight discipline), so a stampede of identical compiles performs
// one compile and N-1 waits.
//
// In the spirit of CGuard's "make safety cheap enough to always leave on",
// the cache makes repeated safe-mode builds near-free: the second and
// every later request for an annotated, optimized, postprocessed build is
// a map lookup.
package artifact

import (
	"container/list"
	"context"
	"sync"
)

// Cache is a concurrency-safe content-addressed store with an LRU byte
// budget and per-key computation dedup.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	lru      *list.List // front = most recently used; values are *entry
	entries  map[Key]*list.Element
	inflight map[Key]*call

	hits      uint64
	misses    uint64
	evictions uint64
}

type entry struct {
	key  Key
	val  any
	size int64
}

// call is one in-flight computation; followers block on done.
type call struct {
	done chan struct{}
	val  any
	err  error
}

// New returns a cache bounded to maxBytes of accounted entry sizes.
// maxBytes <= 0 means "no budget": every successful computation is
// retained (used by short-lived harness runs).
func New(maxBytes int64) *Cache {
	return &Cache{
		maxBytes: maxBytes,
		lru:      list.New(),
		entries:  map[Key]*list.Element{},
		inflight: map[Key]*call{},
	}
}

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	MaxBytes  int64  `json:"max_bytes"`
}

// Stats reports current counters. A request that waited on another
// request's in-flight computation counts as a hit: it did not compute.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.lru.Len(),
		Bytes:     c.bytes,
		MaxBytes:  c.maxBytes,
	}
}

// Get returns the cached value for key, if present, and marks it recently
// used. It never blocks on an in-flight computation.
func (c *Cache) Get(key Key) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		return el.Value.(*entry).val, true
	}
	return nil, false
}

// GetOrCompute returns the value for key, computing it at most once per
// key across all concurrent callers. The first caller to miss runs
// compute; every caller that arrives while that computation is in flight
// blocks until it finishes (or until its own ctx is done) and shares the
// outcome. compute returns the value and its accounted size in bytes.
//
// Errors are not cached: a failed computation is reported to the leader
// and to every follower that was already waiting on it, and the next
// caller recomputes. hit reports whether this caller avoided computing —
// a stored entry or a shared in-flight result both count.
func (c *Cache) GetOrCompute(ctx context.Context, key Key, compute func() (any, int64, error)) (val any, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		c.mu.Unlock()
		return el.Value.(*entry).val, true, nil
	}
	if cl, ok := c.inflight[key]; ok {
		c.hits++
		c.mu.Unlock()
		select {
		case <-cl.done:
			return cl.val, true, cl.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	cl := &call{done: make(chan struct{})}
	c.inflight[key] = cl
	c.misses++
	c.mu.Unlock()

	cl.val, _, cl.err = func() (any, int64, error) {
		v, size, err := compute()
		c.mu.Lock()
		delete(c.inflight, key)
		if err == nil {
			c.insertLocked(key, v, size)
		}
		c.mu.Unlock()
		return v, size, err
	}()
	close(cl.done)
	return cl.val, false, cl.err
}

// insertLocked stores an entry and evicts LRU entries past the budget.
// An artifact larger than the whole budget is returned to its requester
// but not retained.
func (c *Cache) insertLocked(key Key, v any, size int64) {
	if size < 0 {
		size = 0
	}
	if el, ok := c.entries[key]; ok {
		// Lost a race with a Put; keep the resident entry fresh.
		c.lru.MoveToFront(el)
		return
	}
	if c.maxBytes > 0 && size > c.maxBytes {
		return
	}
	el := c.lru.PushFront(&entry{key: key, val: v, size: size})
	c.entries[key] = el
	c.bytes += size
	for c.maxBytes > 0 && c.bytes > c.maxBytes {
		oldest := c.lru.Back()
		if oldest == nil || oldest == el {
			break
		}
		c.removeLocked(oldest)
		c.evictions++
	}
}

// Put stores a precomputed artifact (no dedup involved).
func (c *Cache) Put(key Key, v any, size int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insertLocked(key, v, size)
}

func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.lru.Remove(el)
	delete(c.entries, e.key)
	c.bytes -= e.size
}

// Len reports the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
