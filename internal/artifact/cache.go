// Package artifact is the content-addressed artifact cache behind the
// gcsafed daemon and the measurement harness. Entries are keyed by a
// SHA-256 digest of everything that influences the artifact (source text,
// annotation options, machine, optimization level, peephole flag — see
// KeyBuilder), held under an LRU byte budget, and computed exactly once
// per key under arbitrary concurrency: concurrent requests for a missing
// key coalesce onto a single in-flight computation (the classic
// singleflight discipline), so a stampede of identical compiles performs
// one compile and N-1 waits.
//
// In the spirit of CGuard's "make safety cheap enough to always leave on",
// the cache makes repeated safe-mode builds near-free: the second and
// every later request for an annotated, optimized, postprocessed build is
// a map lookup.
package artifact

import (
	"container/list"
	"context"
	"sync"
)

// Cache is a concurrency-safe content-addressed store with an LRU byte
// budget and per-key computation dedup.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	lru      *list.List // front = most recently used; values are *entry
	entries  map[Key]*list.Element
	inflight map[Key]*call

	// disk, when attached, is the persistent tier: a memory miss probes
	// it before computing, and every successful computation of an
	// encodable artifact is written through. Immutable after AttachDisk.
	disk  *Disk
	codec DiskCodec

	hits      uint64
	misses    uint64
	evictions uint64
	diskHits  uint64
}

// DiskCodec translates cached values to and from the disk tier's byte
// representation. Encode reports ok=false for values that cannot (or
// should not) be persisted; they simply stay memory-only. Decode gets
// back the kind string Encode returned and must reproduce the value and
// its accounted size.
type DiskCodec struct {
	Encode func(key Key, v any) (kind string, data []byte, ok bool)
	Decode func(kind string, data []byte) (v any, size int64, err error)
}

// AttachDisk installs the persistent tier. Call before serving traffic;
// the tier and codec are not swappable under concurrency.
func (c *Cache) AttachDisk(d *Disk, codec DiskCodec) {
	c.disk = d
	c.codec = codec
}

// DiskStats snapshots the attached tier (zero value when none).
func (c *Cache) DiskStats() DiskStats {
	if c.disk == nil {
		return DiskStats{}
	}
	return c.disk.Stats()
}

type entry struct {
	key  Key
	val  any
	size int64
}

// call is one in-flight computation; followers block on done.
type call struct {
	done chan struct{}
	val  any
	err  error
}

// New returns a cache bounded to maxBytes of accounted entry sizes.
// maxBytes <= 0 means "no budget": every successful computation is
// retained (used by short-lived harness runs).
func New(maxBytes int64) *Cache {
	return &Cache{
		maxBytes: maxBytes,
		lru:      list.New(),
		entries:  map[Key]*list.Element{},
		inflight: map[Key]*call{},
	}
}

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	MaxBytes  int64  `json:"max_bytes"`
	// DiskHits counts memory misses satisfied by the disk tier; Disk is
	// the tier's own counters (nil when no tier is attached).
	DiskHits uint64     `json:"disk_hits,omitempty"`
	Disk     *DiskStats `json:"disk,omitempty"`
}

// Stats reports current counters. A request that waited on another
// request's in-flight computation counts as a hit: it did not compute.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	s := Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.lru.Len(),
		Bytes:     c.bytes,
		MaxBytes:  c.maxBytes,
		DiskHits:  c.diskHits,
	}
	c.mu.Unlock()
	if c.disk != nil {
		ds := c.disk.Stats()
		s.Disk = &ds
	}
	return s
}

// Get returns the cached value for key, if present, and marks it recently
// used. It never blocks on an in-flight computation.
func (c *Cache) Get(key Key) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		return el.Value.(*entry).val, true
	}
	return nil, false
}

// GetOrCompute returns the value for key, computing it at most once per
// key across all concurrent callers. The first caller to miss runs
// compute; every caller that arrives while that computation is in flight
// blocks until it finishes (or until its own ctx is done) and shares the
// outcome. compute returns the value and its accounted size in bytes.
//
// Errors are not cached: a failed computation is reported to the leader
// and to every follower that was already waiting on it, and the next
// caller recomputes. hit reports whether this caller avoided computing —
// a stored entry or a shared in-flight result both count.
func (c *Cache) GetOrCompute(ctx context.Context, key Key, compute func() (any, int64, error)) (val any, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		c.mu.Unlock()
		return el.Value.(*entry).val, true, nil
	}
	if cl, ok := c.inflight[key]; ok {
		c.hits++
		c.mu.Unlock()
		select {
		case <-cl.done:
			return cl.val, true, cl.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	cl := &call{done: make(chan struct{})}
	c.inflight[key] = cl
	c.mu.Unlock()

	// Leader path: probe the disk tier before computing. A verified disk
	// entry promotes into memory and counts as a hit — the artifact
	// survived a restart and nobody recomputed it.
	if c.disk != nil {
		if v, size, ok := c.diskLoad(ctx, key); ok {
			c.mu.Lock()
			delete(c.inflight, key)
			c.insertLocked(key, v, size)
			c.diskHits++
			c.mu.Unlock()
			cl.val = v
			close(cl.done)
			return v, true, nil
		}
	}

	cl.val, cl.err = func() (any, error) {
		v, size, err := compute()
		c.mu.Lock()
		c.misses++
		delete(c.inflight, key)
		if err == nil {
			c.insertLocked(key, v, size)
		}
		c.mu.Unlock()
		return v, err
	}()
	close(cl.done)
	if cl.err == nil && c.disk != nil {
		c.diskStore(ctx, key, cl.val)
	}
	return cl.val, false, cl.err
}

// diskLoad reads, verifies and decodes the disk entry for key. Every
// failure mode — absent, corrupt (quarantined by the tier), undecodable
// (quarantined here), tier disabled — degrades to "not found".
func (c *Cache) diskLoad(ctx context.Context, key Key) (any, int64, bool) {
	kind, data, err := c.disk.Get(ctx, key)
	if err != nil {
		return nil, 0, false
	}
	if c.codec.Decode == nil {
		return nil, 0, false
	}
	v, size, err := c.codec.Decode(kind, data)
	if err != nil {
		// Verified bytes that no longer decode (format drift, partial
		// upgrade) are as unservable as corrupt ones.
		c.disk.Quarantine(key)
		return nil, 0, false
	}
	return v, size, true
}

// diskStore writes a computed artifact through to the disk tier,
// best-effort: errors only count against the tier's health.
func (c *Cache) diskStore(ctx context.Context, key Key, v any) {
	if c.codec.Encode == nil {
		return
	}
	kind, data, ok := c.codec.Encode(key, v)
	if !ok {
		return
	}
	_ = c.disk.Put(ctx, key, kind, data)
}

// insertLocked stores an entry and evicts LRU entries past the budget.
// An artifact larger than the whole budget is returned to its requester
// but not retained.
func (c *Cache) insertLocked(key Key, v any, size int64) {
	if size < 0 {
		size = 0
	}
	if el, ok := c.entries[key]; ok {
		// Lost a race with a Put; keep the resident entry fresh.
		c.lru.MoveToFront(el)
		return
	}
	if c.maxBytes > 0 && size > c.maxBytes {
		return
	}
	el := c.lru.PushFront(&entry{key: key, val: v, size: size})
	c.entries[key] = el
	c.bytes += size
	for c.maxBytes > 0 && c.bytes > c.maxBytes {
		oldest := c.lru.Back()
		if oldest == nil || oldest == el {
			break
		}
		c.removeLocked(oldest)
		c.evictions++
	}
}

// Put stores a precomputed artifact (no dedup involved).
func (c *Cache) Put(key Key, v any, size int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insertLocked(key, v, size)
}

func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.lru.Remove(el)
	delete(c.entries, e.key)
	c.bytes -= e.size
}

// Len reports the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
