package artifact

import (
	"fmt"
	"sync"
)

// Codec handles one wire kind of the disk tier: a matched encoder/decoder
// pair contributed by whatever package owns the artifact type.
type Codec struct {
	// Encode serializes v, or reports ok=false when v is not this codec's
	// type — the registry then probes the next registered codec, and a
	// value no codec claims simply stays memory-only.
	Encode func(key Key, v any) (data []byte, ok bool)
	// Decode reverses Encode, reproducing the value and the size it should
	// be accounted at in the LRU budget.
	Decode func(data []byte) (v any, size int64, err error)
}

// CodecRegistry composes codecs contributed by independent packages into
// the single DiskCodec a Cache accepts. The server registers its
// whole-product artifact kinds and internal/pipeline its per-stage
// compiled-program kinds against the same registry, so one disk tier
// persists both without either package knowing the other's types.
//
// Registration is expected at setup time, before the cache serves
// traffic, but is safe under concurrency throughout.
type CodecRegistry struct {
	mu     sync.RWMutex
	kinds  []string // probe order = registration order
	codecs map[string]Codec
}

// NewCodecRegistry returns an empty registry.
func NewCodecRegistry() *CodecRegistry {
	return &CodecRegistry{codecs: map[string]Codec{}}
}

// Register adds the codec for one wire kind. Kinds are versioned by
// convention ("compile/v1"); registering the same kind twice or an empty
// kind is a programming error and panics.
func (r *CodecRegistry) Register(kind string, c Codec) {
	if kind == "" {
		panic("artifact: Register with empty kind")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.codecs[kind]; dup {
		panic(fmt.Sprintf("artifact: duplicate codec kind %q", kind))
	}
	r.kinds = append(r.kinds, kind)
	r.codecs[kind] = c
}

// DiskCodec adapts the registry to the Cache's codec interface: Encode
// probes registered codecs in registration order and stamps the winning
// kind; Decode dispatches on the stored kind.
func (r *CodecRegistry) DiskCodec() DiskCodec {
	return DiskCodec{Encode: r.encode, Decode: r.decode}
}

func (r *CodecRegistry) encode(key Key, v any) (string, []byte, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, kind := range r.kinds {
		if data, ok := r.codecs[kind].Encode(key, v); ok {
			return kind, data, true
		}
	}
	return "", nil, false
}

func (r *CodecRegistry) decode(kind string, data []byte) (any, int64, error) {
	r.mu.RLock()
	c, ok := r.codecs[kind]
	r.mu.RUnlock()
	if !ok {
		return nil, 0, fmt.Errorf("unknown artifact kind %q", kind)
	}
	return c.Decode(data)
}
