// Package rewrite implements the paper's source-rewriting strategy: "In the
// process it generates a list of insertions and deletions, sorted by
// character position in the original source string. After parsing is
// complete, the insertions and deletions are applied to the original
// source."
//
// Insertions come in two flavours so that nested annotations compose
// correctly: an Open insertion (text that starts a wrapper, e.g.
// "KEEP_LIVE(") and a Close insertion (text that ends one, e.g. ", p)").
// When several insertions land on the same byte offset, closes are emitted
// before opens, closes in emission order (innermost wrapper first), opens in
// reverse emission order (outermost wrapper first) — the orders produced by
// a post-order annotation traversal.
package rewrite

import (
	"fmt"
	"sort"
	"strings"
)

type editKind int

const (
	editClose editKind = iota // sorts before opens at equal offset
	editOpen
	editReplace
)

type edit struct {
	off  int
	end  int // > off only for replacements
	kind editKind
	seq  int
	text string
}

// List accumulates edits against one source string.
type List struct {
	edits []edit
	seq   int
}

// InsertOpen schedules wrapper-opening text at off.
func (l *List) InsertOpen(off int, text string) {
	l.seq++
	l.edits = append(l.edits, edit{off: off, end: off, kind: editOpen, seq: l.seq, text: text})
}

// InsertClose schedules wrapper-closing text at off.
func (l *List) InsertClose(off int, text string) {
	l.seq++
	l.edits = append(l.edits, edit{off: off, end: off, kind: editClose, seq: l.seq, text: text})
}

// Replace schedules the deletion of src[off:end] and the insertion of text
// in its place. A replacement must not overlap any other edit.
func (l *List) Replace(off, end int, text string) {
	l.seq++
	l.edits = append(l.edits, edit{off: off, end: end, kind: editReplace, seq: l.seq, text: text})
}

// Len reports the number of scheduled edits.
func (l *List) Len() int { return len(l.edits) }

// Apply applies all scheduled edits to src and returns the rewritten text.
func (l *List) Apply(src string) (string, error) {
	edits := make([]edit, len(l.edits))
	copy(edits, l.edits)
	sort.SliceStable(edits, func(i, j int) bool {
		a, b := edits[i], edits[j]
		if a.off != b.off {
			return a.off < b.off
		}
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		if a.kind == editOpen {
			return a.seq > b.seq // outermost (emitted later) first
		}
		return a.seq < b.seq // innermost close first; replaces by order
	})
	var sb strings.Builder
	pos := 0
	for _, e := range edits {
		if e.off < pos {
			return "", fmt.Errorf("rewrite: overlapping edits at offset %d (already emitted through %d)", e.off, pos)
		}
		if e.end > len(src) || e.off > len(src) {
			return "", fmt.Errorf("rewrite: edit at %d..%d past end of source (%d bytes)", e.off, e.end, len(src))
		}
		sb.WriteString(src[pos:e.off])
		sb.WriteString(e.text)
		pos = e.end
	}
	sb.WriteString(src[pos:])
	return sb.String(), nil
}
