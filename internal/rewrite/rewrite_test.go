package rewrite

import "testing"

func apply(t *testing.T, l *List, src string) string {
	t.Helper()
	out, err := l.Apply(src)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSimpleInsert(t *testing.T) {
	var l List
	src := "p + 1"
	l.InsertOpen(0, "KEEP_LIVE(")
	l.InsertClose(5, ", p)")
	if got := apply(t, &l, src); got != "KEEP_LIVE(p + 1, p)" {
		t.Fatalf("got %q", got)
	}
}

func TestNestedWrapsSameStart(t *testing.T) {
	// outer wraps [0,5), inner wraps [0,1) — post-order emits inner first.
	var l List
	src := "p + 1"
	l.InsertOpen(0, "I(")
	l.InsertClose(1, ",a)")
	l.InsertOpen(0, "O(")
	l.InsertClose(5, ",b)")
	if got := apply(t, &l, src); got != "O(I(p,a) + 1,b)" {
		t.Fatalf("got %q", got)
	}
}

func TestNestedWrapsSameEnd(t *testing.T) {
	// inner wraps [4,5), outer wraps [0,5): closes share offset 5.
	var l List
	src := "p + q"
	l.InsertOpen(4, "I(")
	l.InsertClose(5, ",a)")
	l.InsertOpen(0, "O(")
	l.InsertClose(5, ",b)")
	if got := apply(t, &l, src); got != "O(p + I(q,a),b)" {
		t.Fatalf("got %q", got)
	}
}

func TestCloseBeforeOpenAtSameOffset(t *testing.T) {
	var l List
	src := "ab"
	l.InsertClose(1, ")")
	l.InsertOpen(1, "(")
	if got := apply(t, &l, src); got != "a)(b" {
		t.Fatalf("got %q", got)
	}
}

func TestReplace(t *testing.T) {
	var l List
	src := "x = p++;"
	l.Replace(4, 7, "(tmp = p, p = KEEP_LIVE(tmp + 1, tmp), tmp)")
	want := "x = (tmp = p, p = KEEP_LIVE(tmp + 1, tmp), tmp);"
	if got := apply(t, &l, src); got != want {
		t.Fatalf("got %q", got)
	}
}

func TestOverlapDetected(t *testing.T) {
	var l List
	l.Replace(0, 5, "x")
	l.InsertOpen(2, "(")
	if _, err := l.Apply("hello world"); err == nil {
		t.Fatal("overlap not detected")
	}
}

func TestOutOfRangeDetected(t *testing.T) {
	var l List
	l.InsertOpen(99, "(")
	if _, err := l.Apply("short"); err == nil {
		t.Fatal("out-of-range edit not detected")
	}
}

func TestManyEditsSortedStably(t *testing.T) {
	var l List
	src := "abcdef"
	l.InsertOpen(2, "[")
	l.InsertClose(4, "]")
	l.InsertOpen(0, "<")
	l.InsertClose(6, ">")
	if got := apply(t, &l, src); got != "<ab[cd]ef>" {
		t.Fatalf("got %q", got)
	}
}

func TestEmptyListIdentity(t *testing.T) {
	var l List
	if got := apply(t, &l, "unchanged"); got != "unchanged" {
		t.Fatalf("got %q", got)
	}
}
