package engine

import "gcsafety/internal/heapdump"

// Allocation-site profiling: when Options.HeapProfile is set, the machine
// records which call site produced every live object, so snapshots can
// answer "allocated at main:12 (malloc)". The design constraint is the
// dispatch loop: with profiling off, c.prof is nil and the hot path pays
// exactly one nil check on the (already cold relative to arithmetic)
// runtime-call dispatch — never per instruction. With profiling on,
// RuntimeCall leaves the pending call site (function name + source line
// from machine.Instr.Line) in pendFn/pendLine just before dispatching,
// and the allocator cases consume it.

// siteKey interns allocation sites: one heapdump.Site per distinct
// (function, line, allocator) triple.
type siteKey struct {
	fn   string
	line int32
	kind string
}

// allocProf is the per-run allocation-site profile.
type allocProf struct {
	sites []heapdump.Site
	index map[siteKey]int32
	// objSite maps live object base -> site ID. Entries for freed objects
	// go stale harmlessly: recycling the base overwrites them, and
	// snapshots only consult bases that are live at capture time.
	objSite map[uint32]int32
	// pendFn/pendLine identify the call site of the runtime call currently
	// dispatching (set at the top of RuntimeCall).
	pendFn   string
	pendLine int32
}

func newAllocProf() *allocProf {
	return &allocProf{
		index:   map[siteKey]int32{},
		objSite: map[uint32]int32{},
	}
}

// noteSite attributes the object at base to the pending call site through
// allocator kind ("malloc", "calloc", "realloc"). Only called on
// successful allocations with c.prof non-nil.
func (c *Core) noteSite(base uint32, kind string) {
	if base == 0 {
		return
	}
	p := c.prof
	k := siteKey{fn: p.pendFn, line: p.pendLine, kind: kind}
	id, ok := p.index[k]
	if !ok {
		id = int32(len(p.sites))
		p.sites = append(p.sites, heapdump.Site{ID: id, Func: k.fn, Line: k.line, Kind: kind})
		p.index[k] = id
	}
	s := &p.sites[id]
	s.Allocs++
	s.Bytes += uint64(c.heap.ObjectSize(base))
	p.objSite[base] = id
}
