package engine

import (
	"errors"
	"fmt"

	"gcsafety/internal/faultinject"
	"gcsafety/internal/gc"
	"gcsafety/internal/heapdump"
	"gcsafety/internal/machine"
)

// ErrInstrLimit is the sentinel wrapped by the fault produced when a run
// exhausts Options.MaxInstrs. Callers distinguish a runaway program
// (errors.Is(err, ErrInstrLimit)) from a genuine memory fault.
var ErrInstrLimit = errors.New("instruction budget exhausted")

// PollInterval is how many instructions execute between polls of the
// run's context. Polling a context involves an atomic load and possibly a
// channel select, far more than one simulated instruction; amortizing it
// over a power-of-two stride keeps cancellation latency in the microsecond
// range while costing the dispatch loop nothing measurable. Both engines
// share the stride: the poll schedule is part of the bit-identical
// contract (fault injection fires on it).
const PollInterval = 1024

// Options configures one execution.
type Options struct {
	Config machine.Config
	// Engine selects the execution backend: "interp" (the switch-dispatch
	// interpreter; the default when empty) or "threaded" (the
	// closure-threaded backend). Every engine produces bit-identical
	// simulated results; the knob trades host wall-clock only.
	Engine string
	// HeapBytes caps the collected heap (default 16 MiB).
	HeapBytes uint32
	// TriggerBytes is the allocation-trigger threshold (default 128 KiB).
	TriggerBytes uint32
	// GCEveryInstrs, when nonzero, additionally triggers a collection every
	// N executed instructions — the asynchronous-collector regime.
	GCEveryInstrs uint64
	// CollectAtEveryAlloc forces a full collection at every allocation —
	// the adversarial schedule of the differential fuzzing harness
	// (internal/fuzz). Combined with GCEveryInstrs=1 and Validate it is the
	// most hostile regime the machine can present to a program: any object
	// whose last recognizable reference dies too early is reclaimed and the
	// next access to it faults. It overrides TriggerBytes.
	CollectAtEveryAlloc bool
	// Validate checks every heap access against the live-object map,
	// catching use of prematurely collected objects. Purely a harness
	// feature; adds no cycles.
	Validate bool
	// MaxInstrs aborts runaway programs (default 2e9).
	MaxInstrs uint64
	// BaseOnlyHeap enables the collector's Extensions-section operating
	// mode: interior pointers stored in heap objects are not recognized as
	// references (see internal/gc/extension.go).
	BaseOnlyHeap bool
	// Temporal arms the temporal-safety checker: allocation results carry
	// their birth epoch through shadow tags on registers and memory words,
	// and any access through a pointer whose epoch no longer matches the
	// object at its target faults with a TemporalError (use-after-free /
	// recycled-storage detection; see temporal.go). Like Validate, a harness
	// feature: adds no cycles.
	Temporal bool
	// Threads, when > 1, executes the program as N concurrent mutator
	// threads over one shared heap: thread 0 runs Entry and thread i
	// (0 < i < N) runs the function named "thread<i>" when the program
	// defines it. Scheduling is deterministic — round-robin over runnable
	// threads with quantum lengths drawn from SchedSeed (see threads.go).
	Threads int
	// SchedSeed seeds the interleaving schedule (0 selects a fixed default).
	SchedSeed uint64
	// CollectAtSwitch forces a full collection at every context switch: the
	// collect-at-every-alloc adversary generalized to adversarial
	// interleavings.
	CollectAtSwitch bool
	// Input is the byte stream consumed by getchar().
	Input string
	// Entry is the function to run (default "main").
	Entry string
	// Faults, when non-nil, arms the run's fault points: "interp.step"
	// (fired at the context-poll stride; an error aborts the run with a
	// machine fault), "heapdump.capture" (fails snapshot captures) and,
	// via the heap's Config.Inject hook, "gc.alloc", "gc.collect.force"
	// and "gc.collect". Nil is fully inert.
	Faults *faultinject.Set
	// HeapProfile records allocation sites during the run and captures a
	// heap snapshot when it ends (Result.Snapshot): trigger "exit" on a
	// clean exit, "violation" when a safety checker fired, "fault"
	// otherwise. Off, it costs the dispatch loop nothing; on, it costs one
	// map insert per allocation — allocations are already collector-priced,
	// so the cost model is unchanged either way.
	HeapProfile bool
}

// Result reports one execution.
type Result struct {
	Output   string
	ExitCode int32
	Cycles   uint64
	Instrs   uint64
	GCStats  gc.Stats
	// Snapshot is the end-of-run heap snapshot (Options.HeapProfile only;
	// nil otherwise). SnapshotErr records a failed capture — the run's own
	// outcome is reported normally either way.
	Snapshot    *heapdump.Snapshot
	SnapshotErr string
}

// A FaultError reports a memory or checking fault with machine context.
type FaultError struct {
	Fn  string
	PC  int
	Err error
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("fault in %s at pc %d: %v", e.Fn, e.PC, e.Err)
}

func (e *FaultError) Unwrap() error { return e.Err }

// CheckError is the error produced when a GC_same_obj-style runtime check
// fails (the paper's pointer-arithmetic checker firing).
type CheckError struct{ Err error }

func (e *CheckError) Error() string { return "pointer check failed: " + e.Err.Error() }
func (e *CheckError) Unwrap() error { return e.Err }
