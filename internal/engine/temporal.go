package engine

import (
	"fmt"

	"gcsafety/internal/machine"
)

// Temporal mode: the engine-neutral half of the temporal-safety checker.
//
// The collector half (internal/gc epoch.go) stamps every allocation with a
// monotonically increasing epoch. This file tracks, purely on the side, the
// epoch each pointer value was born with: every register and every word of
// memory carries a shadow tag — 0 meaning "provenance unknown", nonzero
// meaning "derived from the allocation with this epoch". Tags originate
// only at allocation results, flow through moves, pointer arithmetic,
// loads/stores and the KEEP_LIVE/GC_same_obj runtime, and are checked at
// every memory access through a tagged register: if the object now at the
// target address is gone (use-after-free) or wears a different epoch
// (storage recycled since the pointer was derived), the access faults with
// a TemporalError wrapped in CheckError. Tags add no simulated cycles; like
// the access validator they are harness machinery, not modeled hardware.

// TemporalError reports a temporal-safety check failure: a use of storage
// that was explicitly freed (and possibly recycled) after the pointer was
// derived. Addr is the faulting address (0 when unknown); heap-profile
// runs feed it to the snapshot forensics renderer.
type TemporalError struct {
	Msg  string
	Addr uint32
}

func (e *TemporalError) Error() string { return "temporal check failed: " + e.Msg }

// TemporalState is the shadow-tag store. regTags is swapped per thread in
// concurrent mode; memTags covers the whole (shared) address space at word
// granularity, with absent entries meaning tag 0. Track owns all
// propagation; engines only consume SetTag/RetTag at call-return sites.
type TemporalState struct {
	regTags []uint32
	memTags map[uint32]uint32
	// RetTag carries the tag of the value a runtime builtin or user
	// function is about to return to the caller's result register.
	RetTag uint32
}

func newTemporalState(nregs int) *TemporalState {
	return &TemporalState{
		regTags: make([]uint32, nregs),
		memTags: make(map[uint32]uint32),
	}
}

func (t *TemporalState) tag(r machine.Reg) uint32 {
	if r == machine.NoReg || int(r) >= len(t.regTags) {
		return 0
	}
	return t.regTags[r]
}

// SetTag tags register r (NoReg and out-of-range writes are dropped,
// mirroring SetReg).
func (t *TemporalState) SetTag(r machine.Reg, v uint32) {
	if r == machine.NoReg || int(r) >= len(t.regTags) {
		return
	}
	t.regTags[r] = v
}

func (t *TemporalState) memTag(a uint32) uint32 { return t.memTags[a&^3] }

func (t *TemporalState) setMemTag(a, v uint32) {
	a &^= 3
	if v == 0 {
		delete(t.memTags, a)
		return
	}
	t.memTags[a] = v
}

// Track runs once per instruction, before the opcode executes: it checks
// memory operands addressed through a tagged register against the heap's
// current epochs, then propagates tags to the destination. Untagged (0)
// always passes — tags only originate at allocations, so programs that
// never touch stale storage never fault.
func (c *Core) Track(in *machine.Instr) error {
	tt := c.TT
	switch in.Op {
	case machine.Ld, machine.LdB, machine.LdBu, machine.LdH, machine.LdHu,
		machine.St, machine.StB, machine.StH:
		if tg := tt.tag(in.Rs1); tg != 0 {
			if err := c.epochCheck(c.Reg(in.Rs1)+c.Src2(in), tg); err != nil {
				return err
			}
		}
	}
	switch in.Op {
	case machine.Mov:
		if in.HasImm {
			tt.SetTag(in.Rd, 0)
		} else {
			tt.SetTag(in.Rd, tt.tag(in.Rs1))
		}
	case machine.Add:
		// Pointer arithmetic: pointer + untagged offset keeps the pointer's
		// provenance; anything else (two tags, no tags) is unknown.
		t1, t2 := tt.tag(in.Rs1), uint32(0)
		if !in.HasImm {
			t2 = tt.tag(in.Rs2)
		}
		switch {
		case t1 != 0 && t2 == 0:
			tt.SetTag(in.Rd, t1)
		case t2 != 0 && t1 == 0:
			tt.SetTag(in.Rd, t2)
		default:
			tt.SetTag(in.Rd, 0)
		}
	case machine.Sub:
		t2 := uint32(0)
		if !in.HasImm {
			t2 = tt.tag(in.Rs2)
		}
		if t2 == 0 {
			tt.SetTag(in.Rd, tt.tag(in.Rs1))
		} else {
			tt.SetTag(in.Rd, 0) // pointer difference: an integer
		}
	case machine.Ld:
		tt.SetTag(in.Rd, tt.memTag(c.Reg(in.Rs1)+c.Src2(in)))
	case machine.LdSP:
		tt.SetTag(in.Rd, tt.memTag(c.SP+uint32(in.Imm)))
	case machine.St:
		tt.setMemTag(c.Reg(in.Rs1)+c.Src2(in), tt.tag(in.Rd))
	case machine.StSP, machine.Arg:
		tt.setMemTag(c.SP+uint32(in.Imm), tt.tag(in.Rd))
	case machine.StB, machine.StH:
		// A sub-word store clobbers part of the word: tag unknown.
		tt.setMemTag(c.Reg(in.Rs1)+c.Src2(in), 0)
	case machine.KeepLive:
		tt.SetTag(in.Rd, tt.tag(in.Rs1))
	case machine.Ret:
		tt.RetTag = tt.tag(in.Rs1)
	case machine.Jmp, machine.Bz, machine.Bnz, machine.Nop, machine.Label,
		machine.AdjSP, machine.Call, machine.CallR:
		// No general-purpose destination is written here; Call results are
		// tagged at the call-return sites.
	default:
		// Every other opcode (byte/half loads, mul/div, logic, shifts,
		// compares, LeaSP) computes a non-pointer or non-heap value.
		tt.SetTag(in.Rd, 0)
	}
	return nil
}

// epochCheck validates one access at addr through a pointer tagged with
// epoch tag. Outside the heap nothing is checked (the tag may have flowed
// into an address computation that left the heap; the spatial checker owns
// that case).
func (c *Core) epochCheck(addr uint32, tag uint32) error {
	if !c.heap.Contains(addr) {
		return nil
	}
	base := c.heap.Base(addr)
	if base == 0 {
		return &CheckError{Err: &TemporalError{Addr: addr, Msg: fmt.Sprintf(
			"access at %#x to freed storage (use after free)", addr)}}
	}
	if e := c.heap.EpochOf(base); e != tag {
		return &CheckError{Err: &TemporalError{Addr: addr, Msg: fmt.Sprintf(
			"access at %#x through a stale pointer: object epoch %d, pointer epoch %d (storage recycled)",
			addr, e, tag)}}
	}
	return nil
}

// argTag returns the shadow tag of runtime-call argument i (arguments are
// words at sp+4i), or 0 outside temporal mode.
func (c *Core) argTag(i int) uint32 {
	if c.TT == nil {
		return 0
	}
	return c.TT.memTag(c.SP + uint32(4*i))
}

// noteAlloc tags an allocation result with its birth epoch and clears any
// shadow tags covering the new object's storage: the address may have been
// recycled from a freed object whose stale word tags must not leak into its
// next life.
func (c *Core) noteAlloc(a uint32) {
	tt := c.TT
	tt.RetTag = c.heap.EpochOf(a)
	if a == 0 {
		return
	}
	size := c.heap.ObjectSize(a)
	for w := a &^ 3; w < a+size; w += 4 {
		delete(tt.memTags, w)
	}
}

// gcFree implements the GC_free builtin, the real deallocator of temporal
// mode: the object's epoch is retired, its storage poisoned and recycled.
// Freeing something that is not a live object — null excepted — is itself a
// temporal violation (double free / wild free), as is freeing through a
// pointer whose epoch no longer matches the object at its target.
func (c *Core) gcFree(p uint32) (uint32, error) {
	if p == 0 {
		return 0, nil
	}
	base := c.heap.Base(p)
	if base == 0 {
		return 0, &CheckError{Err: &TemporalError{Addr: p, Msg: fmt.Sprintf(
			"free of %#x, which is not inside any live object (double free or wild free)", p)}}
	}
	if tg := c.argTag(0); tg != 0 && tg != c.heap.EpochOf(base) {
		return 0, &CheckError{Err: &TemporalError{Addr: p, Msg: fmt.Sprintf(
			"free of %#x through a stale pointer (storage recycled)", p)}}
	}
	if err := c.heap.Free(base); err != nil {
		return 0, err
	}
	return 0, nil
}

// temporalSameObj is the temporal extension of GC_same_obj: beyond the
// spatial same-object test, both operands are checked against the epoch
// they were derived with, so a checked pointer whose object was reclaimed
// and recycled since the derivation fails here even though the spatial
// check — whose base lookup now sees nothing, or a different object — would
// pass vacuously.
func (c *Core) temporalSameObj(p, q uint32) error {
	if tg := c.argTag(0); tg != 0 {
		if err := c.epochCheck(p, tg); err != nil {
			return err
		}
	}
	if tg := c.argTag(1); tg != 0 {
		if err := c.epochCheck(q, tg); err != nil {
			return err
		}
	}
	return nil
}
