package engine

import (
	"fmt"

	"gcsafety/internal/machine"
)

// The native runtime library. These functions model the paper's
// unpreprocessed standard library ("the critical pieces are likely to be
// either hand assembly coded, or manually checked for GC-safety"): they
// execute natively, charging a nominal cycle cost, and are GC-safe by
// construction.

// Nominal runtime costs (cycles).
const (
	rtBase    = 8  // fixed dispatch/prologue cost of any runtime routine
	rtPerByte = 1  // per-byte cost of string/memory routines
	rtAlloc   = 40 // allocator fast-path cost
	rtCheck   = 12 // GC_same_obj page-tree lookup cost
)

func (c *Core) arg(i int) (uint32, error) {
	return c.Read32(c.SP + uint32(4*i))
}

// RuntimeCall takes the Call instruction itself (plus the caller's name)
// rather than an unpacked symbol/arity so the allocation-site capture can
// live here, off the dispatch loop's critical path: by the time we are in
// this function a real call has already been paid for, so the c.prof
// nil-check below is noise, whereas the same check in a dispatch loop's
// Call case measurably perturbs the tuned throughput.
func (c *Core) RuntimeCall(fnName string, in *machine.Instr) (uint32, error) {
	if c.prof != nil {
		c.prof.pendFn, c.prof.pendLine = fnName, in.Line
	}
	sym, nargs := in.Sym, int(in.Imm)
	var args []uint32
	if nargs > len(c.argbuf) {
		args = make([]uint32, nargs)
	} else {
		args = c.argbuf[:nargs]
	}
	for i := range args {
		v, err := c.arg(i)
		if err != nil {
			return 0, err
		}
		args[i] = v
	}
	a := func(i int) uint32 {
		if i < len(args) {
			return args[i]
		}
		return 0
	}
	c.Cycles += rtBase
	if c.TT != nil {
		// Runtime results are untagged unless a case below says otherwise.
		c.TT.RetTag = 0
	}
	switch sym {
	case "malloc", "GC_malloc":
		c.Cycles += rtAlloc
		p, err := c.alloc(a(0))
		if err == nil && c.TT != nil {
			c.noteAlloc(p)
		}
		if err == nil && c.prof != nil {
			c.noteSite(p, "malloc")
		}
		return p, err
	case "calloc":
		c.Cycles += rtAlloc
		p, err := c.alloc(a(0) * a(1))
		if err == nil && c.TT != nil {
			c.noteAlloc(p)
		}
		if err == nil && c.prof != nil {
			c.noteSite(p, "calloc")
		}
		return p, err
	case "realloc":
		c.Cycles += rtAlloc
		p, err := c.realloc(a(0), a(1))
		if err == nil && c.TT != nil {
			c.noteAlloc(p)
		}
		if err == nil && c.prof != nil {
			c.noteSite(p, "realloc")
		}
		return p, err
	case "free":
		// The paper's methodology: "remove all calls to free". Temporal
		// mode rewrites free to GC_free at annotation time instead.
		return 0, nil
	case "GC_free":
		// The temporal mode's real deallocator (see temporal.go).
		c.Cycles += rtAlloc
		return c.gcFree(a(0))
	case "join_threads":
		// Blocks (by scheduler retry) until every sibling thread finished;
		// immediately returns 0 in single-thread mode.
		if c.threadsRemaining() {
			return 0, errJoinWait
		}
		return 0, nil
	case "GC_gcollect":
		c.heap.Collect()
		return 0, nil
	case "GC_base":
		c.Cycles += rtCheck
		b := c.heap.Base(a(0))
		if c.TT != nil {
			c.TT.RetTag = c.heap.EpochOf(b)
		}
		return b, nil
	case "GC_same_obj":
		c.Cycles += rtCheck
		if c.TT != nil {
			if err := c.temporalSameObj(a(0), a(1)); err != nil {
				return 0, err
			}
			c.TT.RetTag = c.argTag(0)
		}
		p, err := c.heap.SameObject(a(0), a(1))
		if err != nil {
			return 0, &CheckError{Err: err}
		}
		return p, nil
	case "GC_pre_incr":
		c.Cycles += rtCheck + 4
		return c.gcIncr(a(0), int32(a(1)), false)
	case "GC_post_incr":
		c.Cycles += rtCheck + 4
		return c.gcIncr(a(0), int32(a(1)), true)
	case "KEEP_LIVE":
		// The paper's portable fallback: "a call to an external function
		// whose implementation is unavailable to the compiler for
		// analysis, but which actually just returns its first argument."
		if c.TT != nil {
			c.TT.RetTag = c.argTag(0)
		}
		return a(0), nil
	case "strlen":
		s, err := c.cstring(a(0))
		if err != nil {
			return 0, err
		}
		c.Cycles += uint64(len(s)) * rtPerByte
		return uint32(len(s)), nil
	case "strcpy":
		if c.TT != nil {
			c.TT.RetTag = c.argTag(0)
		}
		return c.strcpy(a(0), a(1), 1<<30, true)
	case "strncpy":
		if c.TT != nil {
			c.TT.RetTag = c.argTag(0)
		}
		return c.strcpy(a(0), a(1), a(2), true)
	case "strcat":
		s, err := c.cstring(a(0))
		if err != nil {
			return 0, err
		}
		c.Cycles += uint64(len(s)) * rtPerByte
		if _, err := c.strcpy(a(0)+uint32(len(s)), a(1), 1<<30, true); err != nil {
			return 0, err
		}
		if c.TT != nil {
			c.TT.RetTag = c.argTag(0)
		}
		return a(0), nil
	case "strcmp":
		return c.strcmp(a(0), a(1), 1<<30)
	case "strncmp":
		return c.strcmp(a(0), a(1), a(2))
	case "strchr":
		s, err := c.cstring(a(0))
		if err != nil {
			return 0, err
		}
		c.Cycles += uint64(len(s)) * rtPerByte
		for i := 0; i <= len(s); i++ {
			var ch byte
			if i < len(s) {
				ch = s[i]
			}
			if ch == byte(a(1)) {
				if c.TT != nil {
					c.TT.RetTag = c.argTag(0)
				}
				return a(0) + uint32(i), nil
			}
		}
		return 0, nil
	case "memcpy", "memmove":
		if c.TT != nil {
			c.TT.RetTag = c.argTag(0)
		}
		return c.memmove(a(0), a(1), a(2))
	case "memset":
		if c.TT != nil {
			c.TT.RetTag = c.argTag(0)
		}
		c.Cycles += uint64(a(2)) * rtPerByte
		for i := uint32(0); i < a(2); i++ {
			if err := c.write8(a(0)+i, byte(a(1))); err != nil {
				return 0, err
			}
		}
		return a(0), nil
	case "memcmp":
		c.Cycles += uint64(a(2)) * rtPerByte
		for i := uint32(0); i < a(2); i++ {
			x, err := c.read8(a(0) + i)
			if err != nil {
				return 0, err
			}
			y, err := c.read8(a(1) + i)
			if err != nil {
				return 0, err
			}
			if x != y {
				if x < y {
					return uint32(0xFFFFFFFF), nil
				}
				return 1, nil
			}
		}
		return 0, nil
	case "putchar":
		c.out.WriteByte(byte(a(0)))
		return a(0), nil
	case "puts":
		s, err := c.cstring(a(0))
		if err != nil {
			return 0, err
		}
		c.out.WriteString(s)
		c.out.WriteByte('\n')
		return 0, nil
	case "print_str":
		s, err := c.cstring(a(0))
		if err != nil {
			return 0, err
		}
		c.out.WriteString(s)
		return 0, nil
	case "print_int":
		fmt.Fprintf(&c.out, "%d", int32(a(0)))
		return 0, nil
	case "getchar":
		if c.in >= len(c.Opts.Input) {
			return uint32(0xFFFFFFFF), nil // EOF
		}
		ch := c.Opts.Input[c.in]
		c.in++
		return uint32(ch), nil
	case "exit":
		c.Exited = true
		c.exit = int32(a(0))
		return 0, nil
	case "abort":
		return 0, fmt.Errorf("abort() called")
	case "assert_true":
		if a(0) == 0 {
			return 0, fmt.Errorf("assertion failed")
		}
		return 0, nil
	case "rand_next":
		// xorshift32: deterministic workload driver
		x := c.rng
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		c.rng = x
		return x, nil
	}
	return 0, fmt.Errorf("call to undefined function %q", sym)
}

func (c *Core) alloc(n uint32) (uint32, error) {
	a, err := c.heap.Alloc(n)
	if err != nil {
		return 0, err
	}
	return a, nil
}

func (c *Core) realloc(p, n uint32) (uint32, error) {
	if p == 0 {
		return c.alloc(n)
	}
	na, err := c.alloc(n)
	if err != nil {
		return 0, err
	}
	old := c.heap.ObjectSize(c.heap.Base(p))
	cp := old
	if n < cp {
		cp = n
	}
	if _, err := c.memmove(na, p, cp); err != nil {
		return 0, err
	}
	return na, nil
}

func (c *Core) gcIncr(slot uint32, delta int32, post bool) (uint32, error) {
	old, err := c.Read32(slot)
	if err != nil {
		return 0, err
	}
	nw := uint32(int64(old) + int64(delta))
	if err := c.Write32(slot, nw); err != nil {
		return 0, err
	}
	if c.TT != nil {
		// The pointer variable's stored tag survives the in-place update
		// and checks the moved pointer against its birth epoch.
		if tg := c.TT.memTag(slot); tg != 0 {
			if err := c.epochCheck(old, tg); err != nil {
				return 0, err
			}
		}
		c.TT.RetTag = c.TT.memTag(slot)
	}
	if _, err := c.heap.SameObject(nw, old); err != nil {
		return 0, &CheckError{Err: err}
	}
	if post {
		return old, nil
	}
	return nw, nil
}

func (c *Core) strcpy(dst, src, max uint32, nulTerm bool) (uint32, error) {
	var i uint32
	for i = 0; i < max; i++ {
		ch, err := c.read8(src + i)
		if err != nil {
			return 0, err
		}
		if err := c.write8(dst+i, ch); err != nil {
			return 0, err
		}
		c.Cycles += rtPerByte
		if ch == 0 {
			break
		}
	}
	return dst, nil
}

func (c *Core) strcmp(p, q, max uint32) (uint32, error) {
	for i := uint32(0); i < max; i++ {
		x, err := c.read8(p + i)
		if err != nil {
			return 0, err
		}
		y, err := c.read8(q + i)
		if err != nil {
			return 0, err
		}
		c.Cycles += rtPerByte
		if x != y {
			if x < y {
				return uint32(0xFFFFFFFF), nil
			}
			return 1, nil
		}
		if x == 0 {
			return 0, nil
		}
	}
	return 0, nil
}

func (c *Core) memmove(dst, src, n uint32) (uint32, error) {
	c.Cycles += uint64(n) * rtPerByte
	if dst < src {
		for i := uint32(0); i < n; i++ {
			ch, err := c.read8(src + i)
			if err != nil {
				return 0, err
			}
			if err := c.write8(dst+i, ch); err != nil {
				return 0, err
			}
		}
	} else {
		for i := n; i > 0; i-- {
			ch, err := c.read8(src + i - 1)
			if err != nil {
				return 0, err
			}
			if err := c.write8(dst+i-1, ch); err != nil {
				return 0, err
			}
		}
	}
	return dst, nil
}

var _ = machine.NoReg
