package engine

import (
	"errors"
	"fmt"

	"gcsafety/internal/faultinject"
	"gcsafety/internal/machine"
)

// Concurrent-mutator simulation. The machine stays single-threaded on the
// host: N simulated mutator threads share one heap, one static segment and
// one output stream, and are interleaved cooperatively — round-robin over
// the runnable threads, with quantum lengths drawn from a seeded xorshift64
// and bounded by the poll stride. The schedule is a pure function of
// (program, input, seed): every run of a treatment is bit-identical, which
// is what lets concurrent treatments participate in differential testing
// at all. The scheduler lives in the engine-neutral core and dispatches
// every opcode through the cold-path Step, so every engine's concurrent
// runs share one interleaving and one semantics by construction. Thread 0
// executes the entry function; thread i executes the program's "thread<i>"
// function when defined (absent workers are skipped). The stack is carved
// into equal per-thread segments, thread 0 topmost. A fault in any thread
// aborts the whole run; exit() stops all threads.

// errJoinWait is the internal sentinel the join_threads builtin returns
// while sibling threads are still running: the scheduler rewinds the call
// instruction and retries it on the thread's next quantum.
var errJoinWait = errors.New("join_threads: siblings still running")

// mthread is one simulated mutator thread: a frame stack plus the
// per-thread machine state (registers, stack pointer, stack segment
// bounds, temporal shadow tags for the register file).
type mthread struct {
	id      int
	frames  []Frame
	regs    []uint32
	regTags []uint32 // nil unless temporal mode
	sp      uint32
	lo, hi  uint32 // stack segment bounds
	done    bool
}

// threadEntryName is the naming convention binding worker i to its entry
// function.
func threadEntryName(i int) string { return fmt.Sprintf("thread%d", i) }

// runThreads executes entry as thread 0 alongside up to Threads-1 workers.
func (c *Core) runThreads(entry *machine.Func) error {
	n := c.Opts.Threads
	total := uint32(machine.StackTop - machine.StackLimit)
	seg := (total / uint32(n)) &^ 255
	if seg < 4096 {
		return fmt.Errorf("interp: %d threads leave only %d bytes of stack each", n, seg)
	}
	for i := 0; i < n; i++ {
		fn := entry
		if i > 0 {
			fn = c.prog.Funcs[threadEntryName(i)]
			if fn == nil {
				continue
			}
		}
		hi := uint32(machine.StackTop) - uint32(i)*seg
		t := &mthread{
			id:   i,
			regs: make([]uint32, len(c.Regs)),
			sp:   hi,
			lo:   hi - seg,
			hi:   hi,
		}
		if c.TT != nil {
			t.regTags = make([]uint32, len(c.Regs))
		}
		t.frames = append(t.frames, Frame{Fn: fn, PC: 0, SavedSP: hi, RetReg: machine.NoReg})
		c.threads = append(c.threads, t)
	}
	c.schedRng = c.Opts.SchedSeed
	if c.schedRng == 0 {
		c.schedRng = 0x9E3779B97F4A7C15
	}
	c.cur = -1
	for !c.Exited {
		next := c.pickThread()
		if next < 0 {
			break // every thread ran to completion
		}
		if next != c.cur {
			c.switchTo(next)
			if c.Opts.CollectAtSwitch {
				c.heap.Collect()
			}
		}
		quantum := 1 + c.schedNext()%PollInterval
		if err := c.execQuantum(c.threads[next], quantum); err != nil {
			return err
		}
	}
	return nil
}

// pickThread selects the next runnable thread, round-robin from the one
// after the current.
func (c *Core) pickThread() int {
	n := len(c.threads)
	if n == 0 {
		return -1
	}
	start := (c.cur + 1 + n) % n
	for k := 0; k < n; k++ {
		i := (start + k) % n
		if !c.threads[i].done {
			return i
		}
	}
	return -1
}

// schedNext advances the schedule's xorshift64 state.
func (c *Core) schedNext() uint64 {
	x := c.schedRng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	c.schedRng = x
	return x
}

// switchTo makes thread i current: the outgoing thread's stack pointer is
// saved, and the machine's register file, stack bounds and temporal tags
// are re-aimed at the incoming thread's. Register slices are aliased, not
// copied, so the collector always sees every thread's live registers.
func (c *Core) switchTo(i int) {
	if c.cur >= 0 {
		c.threads[c.cur].sp = c.SP
	}
	t := c.threads[i]
	c.cur = i
	c.Regs = t.regs
	c.SP = t.sp
	c.StackLo, c.StackHi = t.lo, t.hi
	if c.TT != nil {
		c.TT.regTags = t.regTags
	}
}

// threadsRemaining reports whether any thread other than the current one is
// still running (the join_threads condition).
func (c *Core) threadsRemaining() bool {
	for i, t := range c.threads {
		if i != c.cur && !t.done {
			return true
		}
	}
	return false
}

// execQuantum runs up to quantum instructions of thread t. It mirrors the
// single-thread loop's per-instruction bookkeeping (instruction budget,
// context poll, cycle accounting, asynchronous-GC tick) but dispatches
// every opcode through the cold-path Step: concurrent treatments are new
// measurement columns, not cycle-compatible reruns of the single-thread
// numbers, so the engines' inline fast paths are not duplicated here.
func (c *Core) execQuantum(t *mthread, quantum uint64) error {
	var (
		maxInstrs = c.Opts.MaxInstrs
		gcEvery   = c.Opts.GCEveryInstrs
		faults    = c.Opts.Faults
	)
	for quantum > 0 && len(t.frames) > 0 && !c.Exited {
		fr := &t.frames[len(t.frames)-1]
		if fr.PC >= len(fr.Fn.Code) {
			c.popFrame(t, 0, true) // fall off the end: return 0
			continue
		}
		in := &fr.Fn.Code[fr.PC]
		if c.Instrs >= maxInstrs {
			return &FaultError{Fn: fr.Fn.Name, PC: fr.PC,
				Err: fmt.Errorf("%w (%d)", ErrInstrLimit, maxInstrs)}
		}
		if c.Instrs%PollInterval == 0 {
			if err := c.Ctx.Err(); err != nil {
				return &FaultError{Fn: fr.Fn.Name, PC: fr.PC, Err: err}
			}
			if faults != nil {
				if err := faults.Fire(faultinject.PointInterpStep); err != nil {
					return &FaultError{Fn: fr.Fn.Name, PC: fr.PC, Err: err}
				}
			}
			// The concurrent scheduler's poll is also a snapshot-serving
			// safe point: all mutator threads are stopped here.
			if c.snapPending.Load() != nil {
				c.serveSnapshot()
			}
		}
		c.Instrs++
		c.Cycles += c.Costs[in.Op]
		if gcEvery > 0 {
			c.SinceGC++
			if c.SinceGC >= gcEvery {
				c.SinceGC = 0
				c.heap.Collect()
			}
		}
		quantum--
		if c.TT != nil {
			if err := c.Track(in); err != nil {
				return &FaultError{Fn: fr.Fn.Name, PC: fr.PC, Err: err}
			}
		}
		pc := fr.PC
		fr.PC = pc + 1
		ret, push, err := c.Step(fr, in)
		if err != nil {
			if errors.Is(err, errJoinWait) {
				fr.PC = pc // retry the join on the next quantum
				return nil // yield
			}
			return &FaultError{Fn: fr.Fn.Name, PC: pc, Err: err}
		}
		if push != nil {
			t.frames = append(t.frames, *push)
			continue
		}
		if ret {
			c.popFrame(t, c.PendingRet, false)
		}
	}
	if len(t.frames) == 0 {
		t.done = true
	}
	return nil
}

// popFrame completes t's top frame, restoring the caller's stack pointer
// and delivering val to the result register (with its temporal tag, unless
// the frame fell off the end, which returns an untagged 0).
func (c *Core) popFrame(t *mthread, val uint32, fallOff bool) {
	fr := &t.frames[len(t.frames)-1]
	c.SP = fr.SavedSP
	c.SetReg(fr.RetReg, val)
	if c.TT != nil {
		if fallOff {
			c.TT.SetTag(fr.RetReg, 0)
		} else {
			c.TT.SetTag(fr.RetReg, c.TT.RetTag)
		}
	}
	t.frames = t.frames[:len(t.frames)-1]
}
