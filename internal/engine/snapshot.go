package engine

import (
	"errors"
	"fmt"
	"runtime"

	"gcsafety/internal/faultinject"
	"gcsafety/internal/gc"
	"gcsafety/internal/heapdump"
	"gcsafety/internal/machine"
)

// Heap snapshots. CaptureSnapshot reads the machine and heap without
// mutating either (the introspection API in internal/gc never touches the
// page-header cache), so it is safe at any point where the mutator is not
// concurrently running. Two paths get there:
//
//   - the machine's own goroutine captures directly — at exit, on a
//     checker violation, or when it serves a cross-goroutine request at
//     the context-poll stride (the engine's safe point);
//   - any other goroutine calls RequestSnapshot, which parks a request in
//     snapPending and waits for the dispatch loop to serve it. After the
//     run finishes (snapDone), requesters self-serve: the machine is
//     quiescent and captures are read-only, so concurrent post-run
//     captures cannot race.

type snapResult struct {
	snap *heapdump.Snapshot
	err  error
}

type snapRequest struct{ resp chan snapResult }

// CaptureSnapshot builds a heap snapshot of the machine's current state.
// It must only be called when the mutator is stopped (see the file
// comment); external callers use RequestSnapshot instead. The capture
// fires the "heapdump.capture" fault point first: an injected error loses
// the snapshot but never perturbs the run itself.
func (c *Core) CaptureSnapshot(trigger, reason string, faultAddr uint32) (*heapdump.Snapshot, error) {
	if f := c.Opts.Faults; f != nil {
		if err := f.Fire(faultinject.PointHeapdump); err != nil {
			return nil, fmt.Errorf("heapdump capture: %w", err)
		}
	}
	var (
		sites  []heapdump.Site
		siteOf func(uint32) int32
	)
	if c.prof != nil {
		sites = append([]heapdump.Site(nil), c.prof.sites...)
		siteOf = func(base uint32) int32 {
			if id, ok := c.prof.objSite[base]; ok {
				return id
			}
			return -1
		}
	}
	snap := heapdump.Capture(c.heap, trigger, c.emitRoots, siteOf, sites)
	snap.Reason = reason
	snap.FaultAddr = faultAddr
	return snap, nil
}

// emitRoots walks exactly the root set scanRoots feeds the collector —
// every live thread's registers and stack words plus the static segment —
// but with provenance (kind, thread, slot) so snapshots can render
// "reg r3" or "static@0x2004".
func (c *Core) emitRoots(emit func(kind string, thread int, slot, word uint32)) {
	if c.threads != nil {
		for i, t := range c.threads {
			if t.done {
				continue
			}
			sp := t.sp
			if i == c.cur {
				sp = c.SP // regs alias t.regs; only sp is cached in c
			}
			for ri, r := range t.regs {
				emit(heapdump.RootReg, i, uint32(ri), r)
			}
			for a := sp &^ 3; a < t.hi; a += 4 {
				if w, err := c.read32raw(a); err == nil {
					emit(heapdump.RootStack, i, a, w)
				}
			}
		}
	} else {
		for ri, r := range c.Regs {
			emit(heapdump.RootReg, 0, uint32(ri), r)
		}
		for a := c.SP &^ 3; a < machine.StackTop; a += 4 {
			if w, err := c.read32raw(a); err == nil {
				emit(heapdump.RootStack, 0, a, w)
			}
		}
	}
	for off := 0; off+4 <= len(c.static); off += 4 {
		w := uint32(c.static[off]) | uint32(c.static[off+1])<<8 |
			uint32(c.static[off+2])<<16 | uint32(c.static[off+3])<<24
		emit(heapdump.RootStatic, 0, machine.DataBase+uint32(off), w)
	}
}

// RequestSnapshot asks a (possibly running) machine for a heap snapshot
// and blocks until one is taken. While the program runs, the snapshot is
// captured by the engine goroutine at its next safe point (the
// context-poll stride, every 1024 instructions), so the mutator is always
// stopped during capture; after the run, the requester captures on its own
// goroutine. This is the one Core method that may be called from another
// goroutine mid-run.
func (c *Core) RequestSnapshot() (*heapdump.Snapshot, error) {
	req := &snapRequest{resp: make(chan snapResult, 1)}
	for !c.snapPending.CompareAndSwap(nil, req) {
		runtime.Gosched() // another request holds the slot; wait our turn
	}
	if c.snapDone.Load() {
		// The dispatch loop has finished and will never poll again. If the
		// final drain did not already take our request, remove it and
		// self-serve: the machine is quiescent, captures are read-only.
		if c.snapPending.CompareAndSwap(req, nil) {
			return c.CaptureSnapshot(heapdump.TriggerRequest, "", 0)
		}
	}
	r := <-req.resp
	return r.snap, r.err
}

// serveSnapshot fulfills a pending cross-goroutine snapshot request, if
// any. Called only at safe points of the machine's own goroutine.
func (c *Core) serveSnapshot() {
	req := c.snapPending.Swap(nil)
	if req == nil {
		return
	}
	snap, err := c.CaptureSnapshot(heapdump.TriggerRequest, "", 0)
	req.resp <- snapResult{snap: snap, err: err}
}

// finishSnapshots marks the run over and drains any request that arrived
// before the flag was visible. The order matters: done is published
// first, so a requester that enqueues afterwards either finds its request
// taken by this drain or self-serves — it can never hang.
func (c *Core) finishSnapshots() {
	c.snapDone.Store(true)
	c.serveSnapshot()
}

// snapshotTrigger classifies a run outcome for snapshot labelling and digs
// out the faulting address when the error carries one.
func snapshotTrigger(err error) (trigger string, addr uint32) {
	if err == nil {
		return heapdump.TriggerExit, 0
	}
	var te *TemporalError
	if errors.As(err, &te) {
		return heapdump.TriggerViolation, te.Addr
	}
	var ge *gc.Error
	if errors.As(err, &ge) {
		return heapdump.TriggerViolation, ge.Addr
	}
	var ce *CheckError
	if errors.As(err, &ce) {
		return heapdump.TriggerViolation, 0
	}
	return heapdump.TriggerFault, 0
}
