// Package engine is the engine-neutral execution core: everything an
// execution backend needs to run compiled programs against the
// conservative collector — the machine state (registers, stack pointer,
// simulated memory), the native runtime library, the temporal shadow
// tags, the concurrent-mutator scheduler, the safe-point/snapshot
// handshake and allocation-site profiling — without committing to a
// dispatch strategy. Backends (the switch-dispatch interpreter in
// internal/interp, the closure-threaded backend in internal/threaded)
// register themselves here and supply only the single-thread dispatch
// loop; every simulated number they produce must be bit-identical,
// which is what lets a second engine participate in the differential
// testing discipline at all.
package engine

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"gcsafety/internal/machine"
)

// DefaultName is the engine selected when Options.Engine is empty: the
// classic switch-dispatch interpreter.
const DefaultName = "interp"

// Engine is one execution backend. Run must produce results — Instrs,
// Cycles, output bytes, GC statistics and every checker outcome —
// bit-identical to every other registered engine: the simulated numbers
// are the reproduction's data, and the fuzz matrix's engine twins
// enforce the contract.
type Engine interface {
	Name() string
	Run(ctx context.Context, prog *machine.Program, opts Options) (*Result, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Engine{}
)

// Register installs an execution backend under its name. Backends call
// it from init; a duplicate name panics (two engines claiming one name
// is a build-layout bug, not a runtime condition).
func Register(e Engine) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[e.Name()]; dup {
		panic("engine: duplicate registration of " + e.Name())
	}
	registry[e.Name()] = e
}

// Lookup resolves an engine name ("" selects DefaultName). Unknown
// names report the valid set, so surfaces that pass the error through
// (the daemon's 400, ccrun's usage failure) stay self-describing.
func Lookup(name string) (Engine, error) {
	if name == "" {
		name = DefaultName
	}
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("unknown engine %q (valid engines: %s)", name, strings.Join(namesLocked(), ", "))
	}
	return e, nil
}

// Names lists the registered engines, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Run executes prog under the engine opts.Engine selects.
func Run(ctx context.Context, prog *machine.Program, opts Options) (*Result, error) {
	e, err := Lookup(opts.Engine)
	if err != nil {
		return nil, err
	}
	return e.Run(ctx, prog, opts)
}
