package engine

import (
	"fmt"

	"gcsafety/internal/gc"
	"gcsafety/internal/machine"
)

// Simulated memory map:
//
//	0x00002000 .. : static data segment (GC roots, scanned)
//	0x10000000 .. : collected heap (internal/gc)
//	0x3ff00000 .. 0x40000000 : stack, grows down (GC roots, scanned)

func (c *Core) inStatic(a uint32) bool {
	return a >= machine.DataBase && a < machine.DataBase+uint32(len(c.static))
}

func (c *Core) inStack(a uint32) bool {
	return a >= machine.StackLimit && a < machine.StackTop
}

// validate runs the premature-reclamation detector on heap accesses.
func (c *Core) validate(a uint32, size uint32) error {
	if !c.Opts.Validate {
		return nil
	}
	return c.heap.ValidateAccess(a, size)
}

func (c *Core) read32raw(a uint32) (uint32, error) {
	// The stack is checked first: frame traffic (locals, spills, arguments)
	// dominates the access mix of every workload.
	switch {
	case c.inStack(a):
		off := a - machine.StackLimit
		s := c.stack[off:]
		return uint32(s[0]) | uint32(s[1])<<8 | uint32(s[2])<<16 | uint32(s[3])<<24, nil
	case c.inStatic(a):
		off := a - machine.DataBase
		if int(off)+4 > len(c.static) {
			return 0, fmt.Errorf("static read past segment at %#x", a)
		}
		s := c.static[off:]
		return uint32(s[0]) | uint32(s[1])<<8 | uint32(s[2])<<16 | uint32(s[3])<<24, nil
	case c.heap.Contains(a):
		return c.heap.ReadWord(a)
	}
	return 0, fmt.Errorf("read of unmapped address %#x", a)
}

// Read32 loads an aligned word from any segment, running the access
// validator on heap addresses.
func (c *Core) Read32(a uint32) (uint32, error) {
	if a%4 != 0 {
		return 0, fmt.Errorf("misaligned word read at %#x", a)
	}
	if c.heap.Contains(a) {
		if err := c.validate(a, 4); err != nil {
			return 0, err
		}
		return c.heap.ReadWord(a)
	}
	return c.read32raw(a)
}

// Write32 stores an aligned word to any segment, running the access
// validator on heap addresses.
func (c *Core) Write32(a, v uint32) error {
	if a%4 != 0 {
		return fmt.Errorf("misaligned word write at %#x", a)
	}
	switch {
	case c.inStack(a):
		off := a - machine.StackLimit
		c.stack[off] = byte(v)
		c.stack[off+1] = byte(v >> 8)
		c.stack[off+2] = byte(v >> 16)
		c.stack[off+3] = byte(v >> 24)
		return nil
	case c.inStatic(a):
		off := a - machine.DataBase
		if int(off)+4 > len(c.static) {
			return fmt.Errorf("static write past segment at %#x", a)
		}
		c.static[off] = byte(v)
		c.static[off+1] = byte(v >> 8)
		c.static[off+2] = byte(v >> 16)
		c.static[off+3] = byte(v >> 24)
		return nil
	case c.heap.Contains(a):
		if err := c.validate(a, 4); err != nil {
			return err
		}
		return c.heap.WriteWord(a, v)
	}
	return fmt.Errorf("write to unmapped address %#x", a)
}

// StackBytes returns the stack segment's backing bytes and its base
// address; engines use it for a direct LdSP/StSP fast path (the stack can
// never alias the heap, so the validator and shadow-heap paths are
// unreachable for in-segment aligned accesses).
func (c *Core) StackBytes() ([]byte, uint32) { return c.stack, machine.StackLimit }

// Read8, Write8, Read16 and Write16 expose the sub-word accessors to
// engines that dispatch the byte/halfword opcodes natively; they are the
// same functions Step uses, so both paths fault identically.
func (c *Core) Read8(a uint32) (byte, error)     { return c.read8(a) }
func (c *Core) Write8(a uint32, v byte) error    { return c.write8(a, v) }
func (c *Core) Read16(a uint32) (uint16, error)  { return c.read16(a) }
func (c *Core) Write16(a uint32, v uint16) error { return c.write16(a, v) }

func (c *Core) read8(a uint32) (byte, error) {
	switch {
	case c.inStatic(a):
		return c.static[a-machine.DataBase], nil
	case c.inStack(a):
		return c.stack[a-machine.StackLimit], nil
	case c.heap.Contains(a):
		if err := c.validate(a, 1); err != nil {
			return 0, err
		}
		return c.heap.ReadByteAt(a)
	}
	return 0, fmt.Errorf("read of unmapped address %#x", a)
}

func (c *Core) write8(a uint32, v byte) error {
	switch {
	case c.inStatic(a):
		c.static[a-machine.DataBase] = v
		return nil
	case c.inStack(a):
		c.stack[a-machine.StackLimit] = v
		return nil
	case c.heap.Contains(a):
		if err := c.validate(a, 1); err != nil {
			return err
		}
		return c.heap.WriteByteAt(a, v)
	}
	return fmt.Errorf("write to unmapped address %#x", a)
}

func (c *Core) read16(a uint32) (uint16, error) {
	if a%2 != 0 {
		return 0, fmt.Errorf("misaligned halfword read at %#x", a)
	}
	lo, err := c.read8(a)
	if err != nil {
		return 0, err
	}
	hi, err := c.read8(a + 1)
	if err != nil {
		return 0, err
	}
	return uint16(lo) | uint16(hi)<<8, nil
}

func (c *Core) write16(a uint32, v uint16) error {
	if a%2 != 0 {
		return fmt.Errorf("misaligned halfword write at %#x", a)
	}
	if err := c.write8(a, byte(v)); err != nil {
		return err
	}
	return c.write8(a+1, byte(v>>8))
}

// cstring reads a NUL-terminated string (bounded) for runtime helpers.
func (c *Core) cstring(a uint32) (string, error) {
	var b []byte
	for i := 0; i < 1<<20; i++ {
		ch, err := c.read8(a + uint32(i))
		if err != nil {
			return "", err
		}
		if ch == 0 {
			return string(b), nil
		}
		b = append(b, ch)
	}
	return "", fmt.Errorf("unterminated string at %#x", a)
}

var _ = gc.WordSize // documented relationship with the collector layout
