package engine

import "gcsafety/internal/machine"

// Frame is one activation record on a simulated call stack. Both engines
// share the representation: the interpreter keeps a []Frame directly, the
// threaded backend wraps it with its lowered-code pointer, and the
// cold-path Step pushes plain Frames for calls regardless of engine.
type Frame struct {
	Fn      *machine.Func
	PC      int
	SavedSP uint32
	RetReg  machine.Reg
	// Meta caches MetaOf(Fn); frames pushed by the cold path leave it nil
	// and the dispatch loop fills it in on first activation.
	Meta *FuncMeta
}

// FuncMeta is per-function metadata precomputed at core construction so
// hot dispatch loops never consult a map per instruction: Targets holds
// the resolved destination pc for every Jmp/Bz/Bnz (aligned with Code),
// Callees the resolved *Func for every direct Call into program code (nil
// for runtime builtins, which dispatch by name), and CalleeMeta the
// callee's own FuncMeta, so pushing a frame needs no map lookup either.
type FuncMeta struct {
	Targets    []int
	Callees    []*machine.Func
	CalleeMeta []*FuncMeta
}

// MetaOf returns the precomputed metadata for a program function (nil for
// functions outside the program the core was built for).
func (c *Core) MetaOf(fn *machine.Func) *FuncMeta { return c.meta[fn] }
