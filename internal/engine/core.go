package engine

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"

	"gcsafety/internal/faultinject"
	"gcsafety/internal/gc"
	"gcsafety/internal/machine"
)

// Core is the engine-neutral machine state: the simulated register file,
// stack and static segment, the collected heap, cycle/instruction
// accounting, the temporal shadow tags, the concurrent-mutator scheduler
// and the snapshot handshake. An execution backend supplies only the
// single-thread dispatch loop (via RunWith); everything an instruction
// can touch lives here, which is what makes two engines bit-identical by
// construction everywhere except the dispatch strategy itself.
//
// Exported fields are the hot-path state dispatch loops read and write
// directly; everything reachable only through runtime calls or the
// cold-path Step stays unexported.
type Core struct {
	prog *machine.Program
	// Opts is the run configuration (read-only after NewCore).
	Opts Options
	// Ctx is the run's context, polled at the PollInterval stride.
	Ctx context.Context
	cfg machine.Config
	// heap is the conservative collector; Heap() exposes it.
	heap *gc.Heap
	// Regs is the current thread's register file (re-aimed on context
	// switch in concurrent mode; slices are aliased, never copied, so the
	// collector always sees every thread's live registers).
	Regs []uint32
	// SP is the current stack pointer.
	SP     uint32
	static []byte
	stack  []byte
	labels map[string]map[int32]int
	byID   map[int32]*machine.Func
	meta   map[*machine.Func]*FuncMeta
	// Costs caches Config.CostOf per opcode: one slice index in the hot
	// loop instead of a switch.
	Costs [machine.NumOps]uint64
	out   strings.Builder
	in    int
	// Cycles and Instrs are the simulated accounting — the reproduction's
	// data. Engines must charge them in the same order the interpreter
	// does (cycles before the temporal track, both before the opcode).
	Cycles uint64
	Instrs uint64
	rng    uint32
	// Exited flips when the program calls exit(); dispatch loops stop at
	// the next boundary.
	Exited bool
	exit   int32
	// PendingRet carries the value of the most recent Ret to the caller's
	// result register.
	PendingRet uint32
	// SinceGC counts instructions since the last async collection.
	SinceGC uint64
	// argbuf backs RuntimeCall's argument slice so runtime dispatch —
	// including every checked-mode GC_same_obj/GC_pre_incr call — stays
	// allocation-free on the host.
	argbuf [8]uint32
	// TT is the temporal-mode shadow-tag state; nil unless Options.Temporal
	// (the hot loop pays one nil check).
	TT *TemporalState
	// StackLo/StackHi bound the current thread's stack segment for AdjSP;
	// they are the whole stack in single-thread mode.
	StackLo, StackHi uint32
	// Concurrent-mutator state (nil/zero in single-thread mode).
	threads  []*mthread
	cur      int
	schedRng uint64
	// prof is the allocation-site profile; nil unless Options.HeapProfile
	// (runtime-call dispatch pays one nil check).
	prof *allocProf
	// snapPending holds at most one cross-goroutine snapshot request,
	// served at the context-poll stride; snapDone flips once the run is
	// over, after which requesters capture on their own goroutine. See
	// snapshot.go for the handshake.
	snapPending atomic.Pointer[snapRequest]
	snapDone    atomic.Bool
}

// NewCore prepares the engine-neutral state for one run of prog.
func NewCore(prog *machine.Program, opts Options) *Core {
	if opts.HeapBytes == 0 {
		opts.HeapBytes = 16 << 20
	}
	if opts.TriggerBytes == 0 {
		opts.TriggerBytes = 128 << 10
	}
	if opts.CollectAtEveryAlloc {
		opts.TriggerBytes = 1
	}
	if opts.MaxInstrs == 0 {
		opts.MaxInstrs = 2_000_000_000
	}
	if opts.Entry == "" {
		opts.Entry = "main"
	}
	c := &Core{
		prog:   prog,
		Opts:   opts,
		Ctx:    context.Background(),
		cfg:    opts.Config,
		Regs:   make([]uint32, opts.Config.NumRegs),
		SP:     machine.StackTop,
		static: append([]byte(nil), prog.Data...),
		stack:  make([]byte, machine.StackTop-machine.StackLimit),
		labels: map[string]map[int32]int{},
		byID:   map[int32]*machine.Func{},
		rng:    0x9E3779B9,

		StackLo: machine.StackLimit,
		StackHi: machine.StackTop,
	}
	if opts.Temporal {
		c.TT = newTemporalState(int(opts.Config.NumRegs))
	}
	if opts.HeapProfile {
		c.prof = newAllocProf()
	}
	hcfg := gc.Config{
		MaxBytes:             opts.HeapBytes,
		TriggerBytes:         opts.TriggerBytes,
		Poison:               true,
		BaseOnlyHeapPointers: opts.BaseOnlyHeap,
	}
	if opts.Faults != nil {
		hcfg.Inject = opts.Faults.Fire
	}
	c.heap = gc.NewHeap(hcfg)
	c.heap.SetRoots(gc.RootFunc(c.scanRoots))
	c.meta = make(map[*machine.Func]*FuncMeta, len(prog.Funcs))
	for name, f := range prog.Funcs {
		lm := map[int32]int{}
		for pc, in := range f.Code {
			if in.Op == machine.Label {
				lm[in.Imm] = pc
			}
		}
		c.labels[name] = lm
		c.byID[f.ID] = f
	}
	// Second pass: resolve branch targets and direct-call targets now that
	// every label and function is known. An unknown label resolves to pc 0,
	// matching the zero value the label-map lookup used to produce.
	for _, f := range prog.Funcs {
		c.meta[f] = &FuncMeta{
			Targets:    make([]int, len(f.Code)),
			Callees:    make([]*machine.Func, len(f.Code)),
			CalleeMeta: make([]*FuncMeta, len(f.Code)),
		}
	}
	for _, f := range prog.Funcs {
		fm := c.meta[f]
		lm := c.labels[f.Name]
		for pc, in := range f.Code {
			switch in.Op {
			case machine.Jmp, machine.Bz, machine.Bnz:
				fm.Targets[pc] = lm[in.Imm]
			case machine.Call:
				if callee := prog.Funcs[in.Sym]; callee != nil {
					fm.Callees[pc] = callee
					fm.CalleeMeta[pc] = c.meta[callee]
				}
			}
		}
	}
	for op := 0; op < machine.NumOps; op++ {
		c.Costs[op] = c.cfg.CostOf(machine.Op(op))
	}
	return c
}

// Program returns the program the core was built for.
func (c *Core) Program() *machine.Program { return c.prog }

// RunWith executes the entry function to completion or until ctx is done,
// whichever comes first, driving single-thread execution through exec —
// the one function an engine supplies. Concurrent runs (Threads > 1) are
// scheduled here, through the shared quantum scheduler, so every engine's
// concurrent interleavings are identical by construction. The error
// strings keep their historical "interp:" prefix: they are part of the
// observable surface tests and goldens assert on.
func (c *Core) RunWith(ctx context.Context, exec func(entry *machine.Func, retReg machine.Reg) error) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	c.Ctx = ctx
	defer c.finishSnapshots()
	entry, ok := c.prog.Funcs[c.Opts.Entry]
	if !ok {
		return nil, fmt.Errorf("interp: no function %q", c.Opts.Entry)
	}
	if err := ctx.Err(); err != nil {
		return c.result(), fmt.Errorf("interp: %w", err)
	}
	var runErr error
	if c.Opts.Threads > 1 {
		runErr = c.runThreads(entry)
	} else {
		runErr = exec(entry, machine.NoReg)
	}
	res := c.result()
	if c.Opts.HeapProfile {
		trigger, addr := snapshotTrigger(runErr)
		reason := ""
		if runErr != nil {
			reason = runErr.Error()
		}
		if snap, err := c.CaptureSnapshot(trigger, reason, addr); err != nil {
			res.SnapshotErr = err.Error()
		} else {
			res.Snapshot = snap
		}
	}
	return res, runErr
}

// Poll is the safe-point body shared by every dispatch loop: context
// cancellation, the interp.step fault point, and the cross-goroutine
// snapshot handshake, in that order. Engines call it when the poll
// countdown reaches zero (every PollInterval instructions).
func (c *Core) Poll() error {
	if err := c.Ctx.Err(); err != nil {
		return err
	}
	// Fault injection shares the poll stride so an inert run pays nothing
	// beyond the existing branch.
	if f := c.Opts.Faults; f != nil {
		if err := f.Fire(faultinject.PointInterpStep); err != nil {
			return err
		}
	}
	// Cross-goroutine snapshot requests are served here: the poll stride
	// is the engine's safe point (mutator stopped).
	if c.snapPending.Load() != nil {
		c.serveSnapshot()
	}
	return nil
}

func (c *Core) result() *Result {
	return &Result{
		Output:   c.out.String(),
		ExitCode: c.exit,
		Cycles:   c.Cycles,
		Instrs:   c.Instrs,
		GCStats:  c.heap.Stats(),
	}
}

// scanRoots feeds the collector every word in the register file, the live
// stack, and the static data segment. In concurrent mode every live
// thread's register file and stack segment is a root set: a collection one
// thread triggers must see the pointers every other thread still holds.
func (c *Core) scanRoots(visit func(gc.Addr)) {
	if c.threads != nil {
		for i, t := range c.threads {
			if t.done {
				continue
			}
			sp := t.sp
			if i == c.cur {
				sp = c.SP // regs alias t.regs; only sp is cached in c
			}
			for _, r := range t.regs {
				visit(r)
			}
			for a := sp &^ 3; a < t.hi; a += 4 {
				w, err := c.read32raw(a)
				if err == nil {
					visit(w)
				}
			}
		}
	} else {
		for _, r := range c.Regs {
			visit(r)
		}
		for a := c.SP &^ 3; a < machine.StackTop; a += 4 {
			w, err := c.read32raw(a)
			if err == nil {
				visit(w)
			}
		}
	}
	base := machine.DataBase
	for off := 0; off+4 <= len(c.static); off += 4 {
		visit(uint32(c.static[off]) | uint32(c.static[off+1])<<8 |
			uint32(c.static[off+2])<<16 | uint32(c.static[off+3])<<24)
	}
	_ = base
}

// Stats exposes collector statistics mid-run (for tests).
func (c *Core) Stats() gc.Stats { return c.heap.Stats() }

// Heap exposes the collector (for tests and the checker example).
func (c *Core) Heap() *gc.Heap { return c.heap }
