package engine

import (
	"fmt"

	"gcsafety/internal/machine"
)

// Reg reads a register (NoReg and out-of-range read as 0).
func (c *Core) Reg(r machine.Reg) uint32 {
	if r == machine.NoReg || int(r) >= len(c.Regs) {
		return 0
	}
	return c.Regs[r]
}

// SetReg writes a register (NoReg and out-of-range writes are dropped).
func (c *Core) SetReg(r machine.Reg, v uint32) {
	if r == machine.NoReg || int(r) >= len(c.Regs) {
		return
	}
	c.Regs[r] = v
}

// Src2 resolves the second operand (register or immediate).
func (c *Core) Src2(in *machine.Instr) uint32 {
	if in.HasImm {
		return uint32(in.Imm)
	}
	return c.Reg(in.Rs2)
}

// Src2First resolves Mov's operand (immediate, else the FIRST source
// register — Mov's source is Rs1, not Rs2).
func (c *Core) Src2First(in *machine.Instr) uint32 {
	if in.HasImm {
		return uint32(in.Imm)
	}
	return c.Reg(in.Rs1)
}

// Step executes one cold-path instruction (anything an engine's hot loop
// does not dispatch inline). It returns ret=true when the current frame
// finished, or a new frame to push for calls. Both engines share it, so a
// cold opcode has exactly one semantics.
func (c *Core) Step(fr *Frame, in *machine.Instr) (ret bool, push *Frame, err error) {
	switch in.Op {
	case machine.Nop, machine.Label:
	case machine.KeepLive:
		// The empty asm: value flows through unchanged; the base operand is
		// merely kept live by its presence here.
		c.SetReg(in.Rd, c.Reg(in.Rs1))
	case machine.Mov:
		c.SetReg(in.Rd, c.Src2First(in))
	case machine.Add:
		c.SetReg(in.Rd, c.Reg(in.Rs1)+c.Src2(in))
	case machine.Sub:
		c.SetReg(in.Rd, c.Reg(in.Rs1)-c.Src2(in))
	case machine.Mul:
		c.SetReg(in.Rd, c.Reg(in.Rs1)*c.Src2(in))
	case machine.Div:
		d := int32(c.Src2(in))
		if d == 0 {
			return false, nil, fmt.Errorf("division by zero")
		}
		c.SetReg(in.Rd, uint32(int32(c.Reg(in.Rs1))/d))
	case machine.Divu:
		d := c.Src2(in)
		if d == 0 {
			return false, nil, fmt.Errorf("division by zero")
		}
		c.SetReg(in.Rd, c.Reg(in.Rs1)/d)
	case machine.Rem:
		d := int32(c.Src2(in))
		if d == 0 {
			return false, nil, fmt.Errorf("division by zero")
		}
		c.SetReg(in.Rd, uint32(int32(c.Reg(in.Rs1))%d))
	case machine.Remu:
		d := c.Src2(in)
		if d == 0 {
			return false, nil, fmt.Errorf("division by zero")
		}
		c.SetReg(in.Rd, c.Reg(in.Rs1)%d)
	case machine.And:
		c.SetReg(in.Rd, c.Reg(in.Rs1)&c.Src2(in))
	case machine.Or:
		c.SetReg(in.Rd, c.Reg(in.Rs1)|c.Src2(in))
	case machine.Xor:
		c.SetReg(in.Rd, c.Reg(in.Rs1)^c.Src2(in))
	case machine.Shl:
		c.SetReg(in.Rd, c.Reg(in.Rs1)<<(c.Src2(in)&31))
	case machine.Shr:
		c.SetReg(in.Rd, uint32(int32(c.Reg(in.Rs1))>>(c.Src2(in)&31)))
	case machine.Shru:
		c.SetReg(in.Rd, c.Reg(in.Rs1)>>(c.Src2(in)&31))
	case machine.CmpEq:
		c.SetReg(in.Rd, b2u(c.Reg(in.Rs1) == c.Src2(in)))
	case machine.CmpNe:
		c.SetReg(in.Rd, b2u(c.Reg(in.Rs1) != c.Src2(in)))
	case machine.CmpLt:
		c.SetReg(in.Rd, b2u(int32(c.Reg(in.Rs1)) < int32(c.Src2(in))))
	case machine.CmpLe:
		c.SetReg(in.Rd, b2u(int32(c.Reg(in.Rs1)) <= int32(c.Src2(in))))
	case machine.CmpGt:
		c.SetReg(in.Rd, b2u(int32(c.Reg(in.Rs1)) > int32(c.Src2(in))))
	case machine.CmpGe:
		c.SetReg(in.Rd, b2u(int32(c.Reg(in.Rs1)) >= int32(c.Src2(in))))
	case machine.CmpLtu:
		c.SetReg(in.Rd, b2u(c.Reg(in.Rs1) < c.Src2(in)))
	case machine.CmpLeu:
		c.SetReg(in.Rd, b2u(c.Reg(in.Rs1) <= c.Src2(in)))
	case machine.CmpGtu:
		c.SetReg(in.Rd, b2u(c.Reg(in.Rs1) > c.Src2(in)))
	case machine.CmpGeu:
		c.SetReg(in.Rd, b2u(c.Reg(in.Rs1) >= c.Src2(in)))
	case machine.Ld:
		v, e := c.Read32(c.Reg(in.Rs1) + c.Src2(in))
		if e != nil {
			return false, nil, e
		}
		c.SetReg(in.Rd, v)
	case machine.LdB:
		b, e := c.read8(c.Reg(in.Rs1) + c.Src2(in))
		if e != nil {
			return false, nil, e
		}
		c.SetReg(in.Rd, uint32(int32(int8(b))))
	case machine.LdBu:
		b, e := c.read8(c.Reg(in.Rs1) + c.Src2(in))
		if e != nil {
			return false, nil, e
		}
		c.SetReg(in.Rd, uint32(b))
	case machine.LdH:
		h, e := c.read16(c.Reg(in.Rs1) + c.Src2(in))
		if e != nil {
			return false, nil, e
		}
		c.SetReg(in.Rd, uint32(int32(int16(h))))
	case machine.LdHu:
		h, e := c.read16(c.Reg(in.Rs1) + c.Src2(in))
		if e != nil {
			return false, nil, e
		}
		c.SetReg(in.Rd, uint32(h))
	case machine.St:
		if e := c.Write32(c.Reg(in.Rs1)+c.Src2(in), c.Reg(in.Rd)); e != nil {
			return false, nil, e
		}
	case machine.StB:
		if e := c.write8(c.Reg(in.Rs1)+c.Src2(in), byte(c.Reg(in.Rd))); e != nil {
			return false, nil, e
		}
	case machine.StH:
		if e := c.write16(c.Reg(in.Rs1)+c.Src2(in), uint16(c.Reg(in.Rd))); e != nil {
			return false, nil, e
		}
	case machine.Jmp:
		fr.PC = c.labels[fr.Fn.Name][in.Imm]
	case machine.Bz:
		if c.Reg(in.Rs1) == 0 {
			fr.PC = c.labels[fr.Fn.Name][in.Imm]
		}
	case machine.Bnz:
		if c.Reg(in.Rs1) != 0 {
			fr.PC = c.labels[fr.Fn.Name][in.Imm]
		}
	case machine.AdjSP:
		ns := c.SP + uint32(in.Imm)
		if ns < c.StackLo || ns > c.StackHi {
			return false, nil, fmt.Errorf("stack overflow (sp=%#x)", ns)
		}
		c.SP = ns
	case machine.LeaSP:
		c.SetReg(in.Rd, c.SP+uint32(in.Imm))
	case machine.LdSP:
		v, e := c.Read32(c.SP + uint32(in.Imm))
		if e != nil {
			return false, nil, e
		}
		c.SetReg(in.Rd, v)
	case machine.StSP, machine.Arg:
		if e := c.Write32(c.SP+uint32(in.Imm), c.Reg(in.Rd)); e != nil {
			return false, nil, e
		}
	case machine.Call:
		return c.doCall(fr.Fn.Name, in)
	case machine.CallR:
		id := int32(c.Reg(in.Rs1))
		f, ok := c.byID[id]
		if !ok {
			return false, nil, fmt.Errorf("indirect call to invalid function id %d", id)
		}
		return false, &Frame{Fn: f, PC: 0, SavedSP: c.SP, RetReg: in.Rd}, nil
	case machine.Ret:
		if in.Rs1 != machine.NoReg {
			c.PendingRet = c.Reg(in.Rs1)
		} else {
			c.PendingRet = 0
		}
		return true, nil, nil
	default:
		return false, nil, fmt.Errorf("unimplemented opcode %v", in.Op)
	}
	return false, nil, nil
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// doCall dispatches a direct call: user function or runtime builtin.
func (c *Core) doCall(fnName string, in *machine.Instr) (bool, *Frame, error) {
	rd := in.Rd
	if f, ok := c.prog.Funcs[in.Sym]; ok {
		return false, &Frame{Fn: f, PC: 0, SavedSP: c.SP, RetReg: rd}, nil
	}
	v, err := c.RuntimeCall(fnName, in)
	if err != nil {
		return false, nil, err
	}
	c.SetReg(rd, v)
	if c.TT != nil {
		c.TT.SetTag(rd, c.TT.RetTag)
	}
	return false, nil, nil
}
