package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fakeSleep records requested delays without actually sleeping.
func fakeSleep(log *[]time.Duration) func(context.Context, time.Duration) error {
	return func(_ context.Context, d time.Duration) error {
		*log = append(*log, d)
		return nil
	}
}

// flakyHandler fails the first n requests with status, then succeeds.
func flakyHandler(n int64, status int) (http.HandlerFunc, *atomic.Int64) {
	var calls atomic.Int64
	return func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= n {
			http.Error(w, "transient", status)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"ok": true}`))
	}, &calls
}

func TestRetriesTransient500(t *testing.T) {
	h, calls := flakyHandler(2, http.StatusInternalServerError)
	ts := httptest.NewServer(h)
	defer ts.Close()

	var sleeps []time.Duration
	c := New(ts.URL, Config{Sleep: fakeSleep(&sleeps)})
	var out struct {
		OK bool `json:"ok"`
	}
	status, err := c.GetJSON(context.Background(), "/x", &out)
	if err != nil || status != http.StatusOK || !out.OK {
		t.Fatalf("got status=%d err=%v out=%+v", status, err, out)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
	if len(sleeps) != 2 {
		t.Fatalf("slept %d times, want 2", len(sleeps))
	}
	st := c.Stats()
	if st.Retries != 2 || st.Calls != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestNoRetryOn4xx(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"bad request"}`, http.StatusBadRequest)
	}))
	defer ts.Close()

	c := New(ts.URL, Config{})
	status, err := c.PostJSON(context.Background(), "/x", nil, map[string]any{}, nil)
	if status != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", status)
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want StatusError{400}", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("4xx retried: %d calls", calls.Load())
	}
}

func TestAttemptsExhausted(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	var sleeps []time.Duration
	c := New(ts.URL, Config{MaxAttempts: 3, Sleep: fakeSleep(&sleeps)})
	_, err := c.GetJSON(context.Background(), "/x", nil)
	if err == nil {
		t.Fatal("expected failure")
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want wrapped StatusError{503}", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
}

func TestHonorsRetryAfter(t *testing.T) {
	h, _ := flakyHandler(1, http.StatusServiceUnavailable)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		h(w, r)
	}))
	defer ts.Close()

	var sleeps []time.Duration
	c := New(ts.URL, Config{Sleep: fakeSleep(&sleeps)})
	if _, err := c.GetJSON(context.Background(), "/x", nil); err != nil {
		t.Fatal(err)
	}
	if len(sleeps) != 1 || sleeps[0] != time.Second {
		t.Fatalf("sleeps = %v, want exactly [1s] from Retry-After", sleeps)
	}
}

func TestJitterIsDeterministic(t *testing.T) {
	schedule := func(seed uint64) []time.Duration {
		var sleeps []time.Duration
		var calls atomic.Int64
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			calls.Add(1)
			http.Error(w, "down", http.StatusInternalServerError)
		}))
		defer ts.Close()
		c := New(ts.URL, Config{MaxAttempts: 4, JitterSeed: seed, Sleep: fakeSleep(&sleeps)})
		c.GetJSON(context.Background(), "/x", nil)
		return sleeps
	}
	a, b := schedule(7), schedule(7)
	if len(a) != 3 {
		t.Fatalf("schedule length %d, want 3", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
	other := schedule(8)
	same := true
	for i := range a {
		if a[i] != other[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("different seeds produced identical jitter: %v", a)
	}
	// Backoff windows double: sleep n is bounded by base<<n.
	base := 50 * time.Millisecond
	for i, d := range a {
		if limit := base << i; d >= limit {
			t.Fatalf("sleep %d = %v exceeds window %v", i, d, limit)
		}
	}
}

func TestCircuitBreakerOpensAndRecovers(t *testing.T) {
	broken := atomic.Bool{}
	broken.Store(true)
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if broken.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	now := time.Unix(1000, 0)
	var sleeps []time.Duration
	c := New(ts.URL, Config{
		MaxAttempts:      2,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Second,
		Sleep:            fakeSleep(&sleeps),
		Now:              func() time.Time { return now },
	})
	ctx := context.Background()

	// Two failed calls (2 attempts each) open the circuit.
	for i := 0; i < 2; i++ {
		if _, err := c.GetJSON(ctx, "/x", nil); err == nil {
			t.Fatal("expected failure")
		}
	}
	if st := c.Stats(); st.BreakerTrips != 1 {
		t.Fatalf("trips = %d, want 1", st.BreakerTrips)
	}
	seen := calls.Load()

	// Open circuit: calls fail fast without touching the network.
	if _, err := c.GetJSON(ctx, "/x", nil); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if calls.Load() != seen {
		t.Fatal("open circuit still hit the server")
	}
	if st := c.Stats(); st.FastFails != 1 {
		t.Fatalf("fast fails = %d, want 1", st.FastFails)
	}

	// Cooldown passes but the server is still down: the half-open probe
	// fails and the circuit re-opens immediately.
	now = now.Add(2 * time.Second)
	if _, err := c.GetJSON(ctx, "/x", nil); errors.Is(err, ErrCircuitOpen) || err == nil {
		t.Fatalf("probe outcome: %v", err)
	}
	if _, err := c.GetJSON(ctx, "/x", nil); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("circuit did not re-open after failed probe: %v", err)
	}

	// Server recovers; after another cooldown the probe closes the circuit.
	broken.Store(false)
	now = now.Add(2 * time.Second)
	if _, err := c.GetJSON(ctx, "/x", nil); err != nil {
		t.Fatalf("probe after recovery: %v", err)
	}
	if _, err := c.GetJSON(ctx, "/x", nil); err != nil {
		t.Fatalf("closed circuit: %v", err)
	}
}

func TestBreakerDisabled(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer ts.Close()

	var sleeps []time.Duration
	c := New(ts.URL, Config{MaxAttempts: 1, BreakerThreshold: -1, Sleep: fakeSleep(&sleeps)})
	for i := 0; i < 10; i++ {
		c.GetJSON(context.Background(), "/x", nil)
	}
	if calls.Load() != 10 {
		t.Fatalf("breaker engaged while disabled: %d calls", calls.Load())
	}
}

func TestContextCancellationStopsRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	c := New(ts.URL, Config{
		MaxAttempts: 10,
		Sleep: func(ctx context.Context, d time.Duration) error {
			cancel()
			return ctx.Err()
		},
	})
	_, err := c.GetJSON(ctx, "/x", nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestFourXXClosesBreaker(t *testing.T) {
	// A 4xx proves the daemon is alive: it must reset the consecutive
	// failure count.
	mode := atomic.Int64{} // 0: 500, 1: 400
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if mode.Load() == 0 {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		http.Error(w, "no", http.StatusBadRequest)
	}))
	defer ts.Close()

	var sleeps []time.Duration
	c := New(ts.URL, Config{MaxAttempts: 1, BreakerThreshold: 3, Sleep: fakeSleep(&sleeps)})
	ctx := context.Background()
	c.GetJSON(ctx, "/x", nil) // failure 1
	c.GetJSON(ctx, "/x", nil) // failure 2
	mode.Store(1)
	c.GetJSON(ctx, "/x", nil) // 400: resets
	mode.Store(0)
	c.GetJSON(ctx, "/x", nil) // failure 1 again
	if c.brk.isOpen() {
		t.Fatal("breaker opened despite 4xx reset")
	}
}

// TestCallerCancelDoesNotTripBreaker: context cancellation — mid-backoff
// or at the transport — is the caller's doing, not the daemon's, so it
// must never feed the circuit breaker.
func TestCallerCancelDoesNotTripBreaker(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	c := New(ts.URL, Config{
		MaxAttempts:      5,
		BreakerThreshold: 2,
		Sleep: func(ctx context.Context, d time.Duration) error {
			cancel() // the caller gives up during the first backoff
			return ctx.Err()
		},
	})
	// First call: 500 → backoff cancelled. Subsequent calls fail at the
	// transport with context.Canceled. Well past the threshold of 2,
	// the breaker must still be closed.
	for i := 0; i < 5; i++ {
		if _, err := c.GetJSON(ctx, "/x", nil); !errors.Is(err, context.Canceled) {
			t.Fatalf("call %d: err = %v, want context.Canceled", i, err)
		}
	}
	if c.brk.isOpen() {
		t.Fatal("caller cancellations opened the circuit")
	}
	if st := c.Stats(); st.BreakerTrips != 0 {
		t.Fatalf("breaker trips = %d, want 0", st.BreakerTrips)
	}
	// A fresh context reaches the daemon again immediately — no fast-fail.
	if _, err := c.GetJSON(context.Background(), "/x", nil); errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("healthy traffic fast-failed after cancellations: %v", err)
	}
}

// TestBreakerRecoveryCounters is the regression test for the half-open →
// closed path: every stage of the breaker lifecycle must be visible in
// Stats — the trip, the fast-fails while open, the single half-open
// probe, and the recovery when the probe succeeds.
func TestBreakerRecoveryCounters(t *testing.T) {
	h, _ := flakyHandler(100, http.StatusInternalServerError)
	down := atomic.Bool{}
	down.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			h(w, r)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	now := time.Unix(0, 0)
	var sleeps []time.Duration
	c := New(ts.URL, Config{
		MaxAttempts:      2,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Second,
		Sleep:            fakeSleep(&sleeps),
		Now:              func() time.Time { return now },
	})
	ctx := context.Background()

	// Two exhausted calls open the circuit.
	for i := 0; i < 2; i++ {
		if _, err := c.GetJSON(ctx, "/x", nil); err == nil {
			t.Fatal("call against a failing server succeeded")
		}
	}
	if !c.BreakerOpen() {
		t.Fatal("breaker not open after threshold failures")
	}
	st := c.Stats()
	if st.BreakerTrips != 1 || st.Attempts != 4 || st.Calls != 2 {
		t.Fatalf("after trip: %+v", st)
	}

	// While open and inside the cooldown: fast-fail, no probe.
	if _, err := c.GetJSON(ctx, "/x", nil); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("expected fast-fail, got %v", err)
	}
	if st = c.Stats(); st.FastFails != 1 || st.HalfOpenProbes != 0 {
		t.Fatalf("during cooldown: %+v", st)
	}

	// Cooldown expires, the server has recovered: the next call is the
	// half-open probe, and its success must close the circuit and count
	// as a recovery.
	now = now.Add(2 * time.Second)
	down.Store(false)
	if _, err := c.GetJSON(ctx, "/x", nil); err != nil {
		t.Fatalf("probe call failed: %v", err)
	}
	if c.BreakerOpen() {
		t.Fatal("breaker still open after successful probe")
	}
	st = c.Stats()
	if st.HalfOpenProbes != 1 || st.BreakerRecoveries != 1 {
		t.Fatalf("after recovery: %+v", st)
	}

	// Closed again: ordinary traffic flows and does not count as probes.
	if _, err := c.GetJSON(ctx, "/x", nil); err != nil {
		t.Fatalf("post-recovery call failed: %v", err)
	}
	if st = c.Stats(); st.HalfOpenProbes != 1 || st.BreakerRecoveries != 1 {
		t.Fatalf("post-recovery counters moved: %+v", st)
	}
}

// TestProbeFailureReopensWithoutRecovery: a failed half-open probe slams
// the circuit shut again and must not count as a recovery.
func TestProbeFailureReopensWithoutRecovery(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer ts.Close()

	now := time.Unix(0, 0)
	var sleeps []time.Duration
	c := New(ts.URL, Config{
		MaxAttempts:      1,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Second,
		Sleep:            fakeSleep(&sleeps),
		Now:              func() time.Time { return now },
	})
	ctx := context.Background()
	if _, err := c.GetJSON(ctx, "/x", nil); err == nil {
		t.Fatal("call against failing server succeeded")
	}
	if !c.BreakerOpen() {
		t.Fatal("breaker not open")
	}
	now = now.Add(2 * time.Second)
	if _, err := c.GetJSON(ctx, "/x", nil); err == nil {
		t.Fatal("probe against failing server succeeded")
	}
	st := c.Stats()
	if st.HalfOpenProbes != 1 || st.BreakerRecoveries != 0 || !c.BreakerOpen() {
		t.Fatalf("after failed probe: %+v open=%v", st, c.BreakerOpen())
	}
}
