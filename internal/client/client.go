// Package client is a resilient HTTP/JSON client for gcsafed. It wraps
// net/http with the three standard defenses a caller needs against a
// flaky or overloaded daemon:
//
//   - bounded retries with exponential backoff and deterministic,
//     seeded jitter, so transient 5xx/transport failures are absorbed
//     without synchronized retry storms (and chaos tests replay the
//     same retry schedule every run);
//   - Retry-After awareness: a 429 or 503 carrying the header waits the
//     server-requested interval instead of the computed backoff;
//   - a circuit breaker that opens after a run of consecutive failures,
//     fails calls fast during a cooldown, then lets a single half-open
//     probe decide whether to close again — so a dead daemon costs
//     microseconds per call, not a full retry ladder.
//
// Retries are attempted only for idempotent outcomes: transport errors,
// 429, 503, and 5xx responses. 2xx and 4xx (other than 429) are final.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Config tunes retry and breaker behavior. The zero value of any field
// selects the documented default.
type Config struct {
	// MaxAttempts bounds tries per call, first attempt included
	// (default 4).
	MaxAttempts int
	// BaseBackoff is the delay after the first failure; it doubles per
	// subsequent failure (default 50ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the per-attempt delay, Retry-After included
	// (default 2s).
	MaxBackoff time.Duration
	// JitterSeed makes the jitter sequence deterministic. Zero selects
	// seed 1; two clients with the same seed sleep identically.
	JitterSeed uint64
	// BreakerThreshold is the consecutive-failure count that opens the
	// circuit (default 5; negative disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit rejects calls before
	// allowing a half-open probe (default 1s).
	BreakerCooldown time.Duration
	// HTTPClient is the transport (default http.DefaultClient).
	HTTPClient *http.Client
	// Sleep is the clock used between attempts; tests substitute a fake
	// (default respects ctx cancellation around time.Sleep).
	Sleep func(ctx context.Context, d time.Duration) error
	// Now is the clock the breaker reads (default time.Now).
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 50 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.JitterSeed == 0 {
		c.JitterSeed = 1
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Second
	}
	if c.HTTPClient == nil {
		c.HTTPClient = http.DefaultClient
	}
	if c.Sleep == nil {
		c.Sleep = sleepCtx
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ErrCircuitOpen is returned (wrapped) when the breaker rejects a call
// without attempting it.
var ErrCircuitOpen = errors.New("circuit open")

// StatusError reports a final non-2xx response, with as much of the body
// as was readable.
type StatusError struct {
	Status int
	Body   string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("http %d: %s", e.Status, e.Body)
}

// breaker is a consecutive-failure circuit breaker with half-open probing.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	failures int
	openedAt time.Time
	open     bool
	probing  bool
}

// allow reports whether a call may proceed. In the open state it admits
// exactly one probe per cooldown expiry; the probe's outcome decides
// whether the circuit closes. probe reports that this call is the
// half-open probe.
func (b *breaker) allow() (ok, probe bool) {
	if b.threshold < 0 {
		return true, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true, false
	}
	if b.probing || b.now().Sub(b.openedAt) < b.cooldown {
		return false, false
	}
	b.probing = true
	return true, true
}

// success records a working daemon; recovered reports whether this
// closed an open circuit (the half-open → closed transition).
func (b *breaker) success() (recovered bool) {
	if b.threshold < 0 {
		return false
	}
	b.mu.Lock()
	recovered = b.open
	b.failures, b.open, b.probing = 0, false, false
	b.mu.Unlock()
	return recovered
}

func (b *breaker) failure() {
	if b.threshold < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	if b.probing || b.failures >= b.threshold {
		b.open = true
		b.probing = false
		b.openedAt = b.now()
	}
}

// Stats is a point-in-time view of client activity.
type Stats struct {
	Calls        uint64 `json:"calls"`
	Retries      uint64 `json:"retries"`
	BreakerTrips uint64 `json:"breaker_trips"`
	FastFails    uint64 `json:"fast_fails"` // calls rejected by an open circuit
	// Attempts counts individual HTTP exchanges, first tries included —
	// Attempts - Calls is the retry traffic actually put on the wire.
	Attempts uint64 `json:"attempts"`
	// HalfOpenProbes counts calls admitted as an open circuit's single
	// probe; BreakerRecoveries counts the probes whose success closed the
	// circuit again (the half-open → closed transition).
	HalfOpenProbes    uint64 `json:"half_open_probes"`
	BreakerRecoveries uint64 `json:"breaker_recoveries"`
}

// Client is a resilient caller for one gcsafed base URL. It is safe for
// concurrent use.
type Client struct {
	base string
	cfg  Config
	brk  breaker

	mu    sync.Mutex
	rng   uint64
	stats Stats
}

// New builds a Client for a base URL like "http://127.0.0.1:8440".
func New(base string, cfg Config) *Client {
	cfg = cfg.withDefaults()
	c := &Client{
		base: base,
		cfg:  cfg,
		rng:  cfg.JitterSeed,
		brk: breaker{
			threshold: cfg.BreakerThreshold,
			cooldown:  cfg.BreakerCooldown,
			now:       cfg.Now,
		},
	}
	return c
}

// Stats returns a snapshot of the client's counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// nextJitter draws the next value from the seeded splitmix64 stream as a
// fraction in [0, 1).
func (c *Client) nextJitter() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rng += 0x9e3779b97f4a7c15
	z := c.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// backoff computes the sleep before retry number n (1-based): full
// jitter over an exponentially growing window, capped at MaxBackoff.
func (c *Client) backoff(n int) time.Duration {
	window := c.cfg.BaseBackoff << (n - 1)
	if window > c.cfg.MaxBackoff || window <= 0 {
		window = c.cfg.MaxBackoff
	}
	return time.Duration(c.nextJitter() * float64(window))
}

// retryAfter extracts a usable Retry-After delay, capped at MaxBackoff.
func (c *Client) retryAfter(resp *http.Response) (time.Duration, bool) {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0, false
	}
	d := time.Duration(secs) * time.Second
	if d > c.cfg.MaxBackoff {
		d = c.cfg.MaxBackoff
	}
	return d, true
}

func retryableStatus(status int) bool {
	return status == http.StatusTooManyRequests || status >= 500
}

// do runs one request with retries and the breaker. headers may be nil.
func (c *Client) do(ctx context.Context, method, path string, headers map[string]string, body []byte) (*http.Response, []byte, error) {
	ok, probe := c.brk.allow()
	if !ok {
		c.mu.Lock()
		c.stats.FastFails++
		c.mu.Unlock()
		return nil, nil, fmt.Errorf("%s %s: %w", method, path, ErrCircuitOpen)
	}
	c.mu.Lock()
	c.stats.Calls++
	if probe {
		c.stats.HalfOpenProbes++
	}
	c.mu.Unlock()

	var lastErr error
	for attempt := 1; ; attempt++ {
		c.mu.Lock()
		c.stats.Attempts++
		c.mu.Unlock()
		resp, data, err := c.once(ctx, method, path, headers, body)
		switch {
		case err == nil && !retryableStatus(resp.StatusCode):
			// Final answer. Any complete HTTP exchange — including a 4xx —
			// proves the daemon is functioning, so it closes the breaker.
			if c.brk.success() {
				c.mu.Lock()
				c.stats.BreakerRecoveries++
				c.mu.Unlock()
			}
			if resp.StatusCode >= 400 {
				return resp, data, &StatusError{Status: resp.StatusCode, Body: string(data)}
			}
			return resp, data, nil
		case err != nil:
			if isCallerCancel(err) {
				// The caller gave up, the daemon did not misbehave: report
				// the cancellation without feeding the breaker — otherwise a
				// handful of cancelled calls would open the circuit and
				// fast-fail healthy traffic.
				return nil, nil, fmt.Errorf("%s %s: %w", method, path, err)
			}
			lastErr = err
		default:
			lastErr = &StatusError{Status: resp.StatusCode, Body: string(data)}
		}

		if attempt >= c.cfg.MaxAttempts {
			c.trip()
			return nil, nil, fmt.Errorf("%s %s: %d attempts exhausted: %w", method, path, attempt, lastErr)
		}
		delay := c.backoff(attempt)
		if err == nil {
			if ra, ok := c.retryAfter(resp); ok {
				delay = ra
			}
		}
		c.mu.Lock()
		c.stats.Retries++
		c.mu.Unlock()
		if serr := c.cfg.Sleep(ctx, delay); serr != nil {
			// A cancelled backoff is caller-initiated too: neutral for the
			// breaker.
			return nil, nil, fmt.Errorf("%s %s: %w (last error: %v)", method, path, serr, lastErr)
		}
	}
}

// isCallerCancel reports whether err is the caller's own context being
// cancelled or timing out (possibly wrapped by the HTTP transport).
func isCallerCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// trip records a failed call with the breaker and counts the trip if it
// opened the circuit.
func (c *Client) trip() {
	wasOpen := c.brk.isOpen()
	c.brk.failure()
	if !wasOpen && c.brk.isOpen() {
		c.mu.Lock()
		c.stats.BreakerTrips++
		c.mu.Unlock()
	}
}

func (b *breaker) isOpen() bool {
	if b.threshold < 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.open
}

// BreakerOpen reports whether the circuit is currently open — the caller
// is fast-failing against this base URL. Cluster peering uses it to
// export per-peer health.
func (c *Client) BreakerOpen() bool { return c.brk.isOpen() }

// once performs a single HTTP exchange, fully draining the body.
func (c *Client) once(ctx context.Context, method, path string, headers map[string]string, body []byte) (*http.Response, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return nil, nil, err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, nil, err
	}
	return resp, data, nil
}

// PostJSON marshals in, POSTs it to path with optional extra headers,
// and unmarshals the response into out (skipped when out is nil). The
// returned status is the final response's code, 0 when no response was
// obtained.
func (c *Client) PostJSON(ctx context.Context, path string, headers map[string]string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	resp, data, err := c.do(ctx, http.MethodPost, path, headers, body)
	return finishJSON(resp, data, err, out)
}

// GetJSON GETs path and unmarshals the response into out (skipped when
// out is nil).
func (c *Client) GetJSON(ctx context.Context, path string, out any) (int, error) {
	resp, data, err := c.do(ctx, http.MethodGet, path, nil, nil)
	return finishJSON(resp, data, err, out)
}

func finishJSON(resp *http.Response, data []byte, err error, out any) (int, error) {
	status := 0
	if resp != nil {
		status = resp.StatusCode
	}
	if err != nil {
		return status, err
	}
	if out != nil {
		if uerr := json.Unmarshal(data, out); uerr != nil {
			return status, fmt.Errorf("decoding response: %w", uerr)
		}
	}
	return status, nil
}
