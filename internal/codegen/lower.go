package codegen

import "gcsafety/internal/machine"

// lower finalizes machine code: patches the prologue frame adjustment,
// rebases incoming-parameter offsets now that the frame size is known,
// inserts the moves required by two-operand targets, and materializes the
// location constraint of KeepLive (result and first operand share a
// register, via a move when the allocator chose differently).
func lower(code []machine.Instr, opts Options, frame int32, numParams int) []machine.Instr {
	out := make([]machine.Instr, 0, len(code))
	cfg := opts.Machine
	scratchA := machine.Reg(cfg.NumRegs - 1)
	scratchB := machine.Reg(cfg.NumRegs - 2)
	for i, in := range code {
		// prologue patch
		if i == 0 && in.Op == machine.AdjSP {
			in.Imm = -frame
			if in.Imm == 0 {
				continue // empty frame: drop the prologue entirely
			}
			out = append(out, in)
			continue
		}
		// parameter offsets
		switch in.Op {
		case machine.LdSP, machine.StSP, machine.LeaSP:
			if in.Imm >= paramBase {
				in.Imm = in.Imm - paramBase + frame
			} else if in.Comment == "param" {
				in.Imm += frame
				in.Comment = ""
			}
		}
		// KeepLive location constraint
		if in.Op == machine.KeepLive {
			if in.Rd != in.Rs1 {
				out = append(out, machine.RR(machine.Mov, in.Rd, in.Rs1, machine.NoReg))
				in.Rs1 = in.Rd
			}
			out = append(out, in)
			continue
		}
		// two-operand fixup
		if cfg.TwoOperand && in.Op.IsArith() && in.Rd != in.Rs1 {
			switch {
			case !in.HasImm && in.Rd == in.Rs2 && commutative(in.Op):
				in.Rs1, in.Rs2 = in.Rs2, in.Rs1
			case !in.HasImm && in.Rd == in.Rs2:
				// need a temporary: pick a scratch distinct from sources
				s := scratchA
				if in.Rs1 == s || in.Rs2 == s {
					s = scratchB
				}
				out = append(out, machine.RR(machine.Mov, s, in.Rs1, machine.NoReg))
				out = append(out, machine.RR(in.Op, s, s, in.Rs2))
				out = append(out, machine.RR(machine.Mov, in.Rd, s, machine.NoReg))
				continue
			default:
				out = append(out, machine.RR(machine.Mov, in.Rd, in.Rs1, machine.NoReg))
				in.Rs1 = in.Rd
			}
		}
		out = append(out, in)
	}
	return out
}
