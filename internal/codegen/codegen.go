// Package codegen compiles the checked C AST (optionally annotated by
// internal/gcsafe) to code for the simulated RISC machine. It provides two
// pipelines mirroring the paper's measurement configurations:
//
//   - optimized ("-O"): register allocation for scalars, constant folding,
//     copy propagation, displacement reassociation (the transformation that
//     "disguises" pointers), dead-code elimination and load-address
//     folding. Without KEEP_LIVE annotations, this pipeline is genuinely
//     GC-unsafe — the hazard the paper opens with is reproducible.
//   - debuggable ("-g"): every variable lives in memory at every program
//     point, which is why "for most compilers, it is possible to guarantee
//     GC-safety by generating fully debuggable code".
//
// KEEP_LIVE lowers to the KeepLive pseudo-instruction (the empty asm of the
// paper's implementation); checked-mode KeepLive nodes lower to calls to
// the GC_same_obj runtime function.
package codegen

import (
	"fmt"

	"gcsafety/internal/cc/ast"
	"gcsafety/internal/cc/parser"
	"gcsafety/internal/cc/types"
	"gcsafety/internal/machine"
)

// Options selects the compilation pipeline.
type Options struct {
	// Optimize selects the -O pipeline; false is -g (fully debuggable).
	Optimize bool
	// Machine is the target configuration.
	Machine machine.Config
	// DisableReassociation turns off the displacement-folding optimization
	// (for ablation: it is the paper's canonical GC-unsafe transformation).
	DisableReassociation bool
	// DisableLoadFolding turns off reg+reg load-address folding.
	DisableLoadFolding bool
}

// Compile translates a type-checked translation unit: Gen (global layout
// and virtual-register code) followed by Backend (optimization, register
// allocation, lowering). The two halves are exposed separately so the
// stage pipeline can cache the machine-independent IR; Compile is their
// composition.
func Compile(file *ast.File, opts Options) (*machine.Program, error) {
	ir, err := Gen(file, opts)
	if err != nil {
		return nil, err
	}
	return Backend(ir), nil
}

// Error aggregates code generation diagnostics.
type Error struct{ Errs []error }

func (e *Error) Error() string {
	if len(e.Errs) == 1 {
		return e.Errs[0].Error()
	}
	return fmt.Sprintf("%v (and %d more errors)", e.Errs[0], len(e.Errs)-1)
}

type compiler struct {
	opts    Options
	prog    *machine.Program
	errs    []error
	strings map[string]uint32 // interned string literals -> address
	funcIDs map[string]int32  // function "addresses" for indirect calls
	globals []*ast.VarDecl
}

// funcRefID returns a stable small id serving as the "address" of a named
// function (function addresses are never heap addresses, so any small
// nonzero value works for the conservative collector).
func (c *compiler) funcRefID(name string) int32 {
	if id, ok := c.funcIDs[name]; ok {
		return id
	}
	id := int32(len(c.funcIDs) + 1)
	c.funcIDs[name] = id
	return id
}

func (c *compiler) errorf(format string, args ...any) {
	c.errs = append(c.errs, fmt.Errorf("codegen: "+format, args...))
}

// layoutGlobals assigns static addresses and builds the data image.
func (c *compiler) layoutGlobals(file *ast.File) {
	for _, d := range file.Decls {
		v, ok := d.(*ast.VarDecl)
		if !ok || v.Obj.Kind != ast.ObjVar {
			continue
		}
		size := v.Obj.Type.Size()
		if size < 0 {
			c.errorf("global %s has incomplete type %s", v.Obj.Name, v.Obj.Type)
			continue
		}
		if size == 0 {
			size = 4
		}
		align := int32(v.Obj.Type.Align())
		addr := machine.DataBase + uint32(len(c.prog.Data))
		for addr%uint32(align) != 0 {
			c.prog.Data = append(c.prog.Data, 0)
			addr++
		}
		c.prog.Globals[v.Obj.Name] = addr
		c.prog.Data = append(c.prog.Data, make([]byte, size)...)
		c.globals = append(c.globals, v)
	}
	// Initializers are written after all addresses are known (they may
	// reference other globals and string literals).
	for _, v := range c.globals {
		c.initGlobal(v)
	}
}

func (c *compiler) internString(s string) uint32 {
	if a, ok := c.strings[s]; ok {
		return a
	}
	// align to 4 so word scans of the data segment stay aligned
	for len(c.prog.Data)%4 != 0 {
		c.prog.Data = append(c.prog.Data, 0)
	}
	addr := machine.DataBase + uint32(len(c.prog.Data))
	c.prog.Data = append(c.prog.Data, []byte(s)...)
	c.prog.Data = append(c.prog.Data, 0)
	c.strings[s] = addr
	return addr
}

func (c *compiler) dataPut32(addr uint32, v uint32) {
	off := addr - machine.DataBase
	c.prog.Data[off] = byte(v)
	c.prog.Data[off+1] = byte(v >> 8)
	c.prog.Data[off+2] = byte(v >> 16)
	c.prog.Data[off+3] = byte(v >> 24)
}

func (c *compiler) initGlobal(v *ast.VarDecl) {
	addr := c.prog.Globals[v.Obj.Name]
	t := v.Obj.Type
	switch {
	case v.Init != nil:
		c.initScalar(addr, t, v.Init, v.Obj.Name)
	case v.InitList != nil:
		arr, ok := t.(*types.Array)
		if !ok {
			st, ok2 := t.(*types.Struct)
			if !ok2 {
				c.errorf("brace initializer for non-aggregate global %s", v.Obj.Name)
				return
			}
			for i, e := range v.InitList {
				if i >= len(st.Fields) {
					c.errorf("too many initializers for %s", v.Obj.Name)
					break
				}
				f := st.Fields[i]
				c.initScalar(addr+uint32(f.Off), f.Type, e, v.Obj.Name)
			}
			return
		}
		es := uint32(arr.Elem.Size())
		for i, e := range v.InitList {
			if i >= arr.Len {
				c.errorf("too many initializers for %s", v.Obj.Name)
				break
			}
			c.initScalar(addr+uint32(i)*es, arr.Elem, e, v.Obj.Name)
		}
	}
}

func (c *compiler) initScalar(addr uint32, t types.Type, e ast.Expr, name string) {
	// String literal initializing a char array copies the bytes in place.
	if arr, ok := t.(*types.Array); ok {
		if s, ok2 := ast.Unparen(e).(*ast.StrLit); ok2 {
			off := addr - machine.DataBase
			n := copy(c.prog.Data[off:off+uint32(arr.Len)], s.Val)
			_ = n
			return
		}
	}
	val, ok := c.staticValue(e)
	if !ok {
		c.errorf("initializer for %s is not a static constant: %s", name, ast.PrintExpr(e))
		return
	}
	off := addr - machine.DataBase
	switch t.Size() {
	case 1:
		c.prog.Data[off] = byte(val)
	case 2:
		c.prog.Data[off] = byte(val)
		c.prog.Data[off+1] = byte(val >> 8)
	default:
		c.dataPut32(addr, val)
	}
}

// staticValue evaluates a static initializer: integer constant expressions,
// string literal addresses, addresses of globals and elements thereof.
func (c *compiler) staticValue(e ast.Expr) (uint32, bool) {
	if v, ok := parser.EvalConst(e); ok {
		return uint32(v), true
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.StrLit:
		return c.internString(e.Val), true
	case *ast.Cast:
		return c.staticValue(e.X)
	case *ast.Ident:
		// an array or function used as an address
		if a, ok := c.prog.Globals[e.Name]; ok && isArrayType(e.Obj.Type) {
			return a, true
		}
	case *ast.Unary:
		if e.Op.String() == "&" {
			if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
				if a, ok := c.prog.Globals[id.Name]; ok {
					return a, true
				}
			}
		}
	}
	return 0, false
}

func isArrayType(t types.Type) bool {
	_, ok := t.(*types.Array)
	return ok
}
