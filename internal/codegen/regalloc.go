package codegen

import (
	"sort"

	"gcsafety/internal/machine"
)

// Register allocation: coarse live intervals over a basic-block CFG, then
// linear scan. Three physical registers are reserved as scratch for spill
// traffic and two-operand fixups; virtual registers whose intervals cross a
// call are allocated to stack slots outright, modelling a caller-saved
// convention — which also means every pointer value live across a call is
// explicitly stored in the (conservatively scanned) stack, exactly the
// GC-root behaviour the paper's framework assumes.

// scratchRegs is the number of reserved scratch registers.
const scratchRegs = 3

type interval struct {
	v          machine.Reg
	start, end int
	spilled    bool
	phys       machine.Reg
	slot       int32
}

// allocate maps virtual registers to physical registers or spill slots.
// spillBase is the first free frame offset; it returns the rewritten code
// and the final frame size.
func allocate(code []machine.Instr, cfg machine.Config, spillBase int32) ([]machine.Instr, int32) {
	code = coalesceKeepLive(code)
	intervals := buildIntervals(code)
	if len(intervals) == 0 {
		return code, align8(spillBase)
	}

	// Intervals crossing a call are forced to memory.
	var callPos []int
	for i, in := range code {
		if in.Op == machine.Call || in.Op == machine.CallR {
			callPos = append(callPos, i)
		}
	}
	for _, iv := range intervals {
		for _, cp := range callPos {
			if iv.start < cp && cp < iv.end {
				iv.spilled = true
				break
			}
		}
	}

	// Linear scan over the rest.
	k := cfg.NumRegs - scratchRegs
	if k < 1 {
		k = 1
	}
	free := make([]machine.Reg, 0, k)
	for r := k - 1; r >= 0; r-- {
		free = append(free, machine.Reg(r))
	}
	sorted := make([]*interval, len(intervals))
	copy(sorted, intervals)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].start < sorted[j].start })
	var active []*interval
	for _, iv := range sorted {
		if iv.spilled {
			continue
		}
		// expire old intervals
		na := active[:0]
		for _, a := range active {
			if a.end < iv.start {
				free = append(free, a.phys)
			} else {
				na = append(na, a)
			}
		}
		active = na
		if len(free) == 0 {
			// spill the active interval with the furthest end (or this one)
			victim := iv
			for _, a := range active {
				if a.end > victim.end {
					victim = a
				}
			}
			if victim != iv {
				iv.phys = victim.phys
				victim.spilled = true
				victim.phys = machine.NoReg
				for j, a := range active {
					if a == victim {
						active = append(active[:j], active[j+1:]...)
						break
					}
				}
				active = append(active, iv)
			} else {
				iv.spilled = true
			}
			continue
		}
		iv.phys = free[len(free)-1]
		free = free[:len(free)-1]
		active = append(active, iv)
	}

	// Assign spill slots.
	frame := spillBase
	byReg := map[machine.Reg]*interval{}
	for _, iv := range intervals {
		if iv.spilled {
			frame = align4(frame)
			iv.slot = frame
			frame += 4
		}
		byReg[iv.v] = iv
	}
	code = rewrite(code, byReg, cfg)
	return code, align8(frame)
}

func align4(n int32) int32 { return (n + 3) &^ 3 }
func align8(n int32) int32 { return (n + 7) &^ 7 }

// coalesceKeepLive merges a KeepLive's destination with its source when
// the source has no further uses, matching the paper's asm constraint that
// "the first argument be assigned the same location as the result".
func coalesceKeepLive(code []machine.Instr) []machine.Instr {
	defCount := map[machine.Reg]int{}
	useCount := map[machine.Reg]int{}
	var buf []machine.Reg
	for _, in := range code {
		if d := defOf(in); d != machine.NoReg && d.IsVirtual() {
			defCount[d]++
		}
		buf = buf[:0]
		for _, u := range usesOf(in, buf) {
			useCount[u]++
		}
	}
	rename := map[machine.Reg]machine.Reg{}
	for i, in := range code {
		if in.Op != machine.KeepLive || !in.Rs1.IsVirtual() || !in.Rd.IsVirtual() {
			continue
		}
		if useCount[in.Rs1] == 1 && defCount[in.Rs1] == 1 && defCount[in.Rd] == 1 {
			rename[in.Rd] = in.Rs1
			code[i].Rd = in.Rs1
		}
	}
	if len(rename) == 0 {
		return code
	}
	res := func(r machine.Reg) machine.Reg {
		for {
			n, ok := rename[r]
			if !ok {
				return r
			}
			r = n
		}
	}
	for i := range code {
		in := &code[i]
		if in.Rd != machine.NoReg {
			in.Rd = res(in.Rd)
		}
		if in.Rs1 != machine.NoReg {
			in.Rs1 = res(in.Rs1)
		}
		if in.Rs2 != machine.NoReg {
			in.Rs2 = res(in.Rs2)
		}
	}
	return code
}

// buildIntervals computes coarse live intervals: positions of defs/uses,
// extended across whole blocks where the register is live-in/live-out.
func buildIntervals(code []machine.Instr) []*interval {
	type block struct {
		start, end int // [start, end)
		liveIn     map[machine.Reg]bool
		liveOut    map[machine.Reg]bool
		succs      []int
	}
	// block boundaries
	var starts []int
	starts = append(starts, 0)
	labelBlock := map[int32]int{}
	for i, in := range code {
		switch in.Op {
		case machine.Label:
			if i != 0 {
				starts = append(starts, i)
			}
		case machine.Jmp, machine.Bz, machine.Bnz, machine.Ret:
			if i+1 < len(code) {
				starts = append(starts, i+1)
			}
		}
	}
	// dedupe, keep sorted
	sort.Ints(starts)
	uniq := starts[:0]
	for i, s := range starts {
		if i == 0 || s != starts[i-1] {
			uniq = append(uniq, s)
		}
	}
	starts = uniq
	blocks := make([]*block, len(starts))
	for i := range starts {
		end := len(code)
		if i+1 < len(starts) {
			end = starts[i+1]
		}
		blocks[i] = &block{start: starts[i], end: end,
			liveIn: map[machine.Reg]bool{}, liveOut: map[machine.Reg]bool{}}
		if starts[i] < len(code) && code[starts[i]].Op == machine.Label {
			labelBlock[code[starts[i]].Imm] = i
		}
	}
	blockAt := func(pos int) int {
		i := sort.Search(len(starts), func(i int) bool { return starts[i] > pos }) - 1
		return i
	}
	for i, b := range blocks {
		if b.start >= b.end {
			continue
		}
		last := code[b.end-1]
		switch last.Op {
		case machine.Jmp:
			if t, ok := labelBlock[last.Imm]; ok {
				b.succs = append(b.succs, t)
			}
		case machine.Bz, machine.Bnz:
			if t, ok := labelBlock[last.Imm]; ok {
				b.succs = append(b.succs, t)
			}
			if i+1 < len(blocks) {
				b.succs = append(b.succs, i+1)
			}
		case machine.Ret:
		default:
			if i+1 < len(blocks) {
				b.succs = append(b.succs, i+1)
			}
		}
	}
	// iterative liveness
	var buf []machine.Reg
	for changed := true; changed; {
		changed = false
		for i := len(blocks) - 1; i >= 0; i-- {
			b := blocks[i]
			out := map[machine.Reg]bool{}
			for _, s := range b.succs {
				for r := range blocks[s].liveIn {
					out[r] = true
				}
			}
			in := map[machine.Reg]bool{}
			for r := range out {
				in[r] = true
			}
			for j := b.end - 1; j >= b.start; j-- {
				if d := defOf(code[j]); d != machine.NoReg {
					delete(in, d)
				}
				buf = buf[:0]
				for _, u := range usesOf(code[j], buf) {
					if u.IsVirtual() {
						in[u] = true
					}
				}
			}
			if len(in) != len(b.liveIn) || len(out) != len(b.liveOut) {
				changed = true
			} else {
				for r := range in {
					if !b.liveIn[r] {
						changed = true
					}
				}
				for r := range out {
					if !b.liveOut[r] {
						changed = true
					}
				}
			}
			b.liveIn, b.liveOut = in, out
		}
	}
	// intervals
	ivs := map[machine.Reg]*interval{}
	touch := func(r machine.Reg, pos int) {
		if !r.IsVirtual() {
			return
		}
		iv, ok := ivs[r]
		if !ok {
			iv = &interval{v: r, start: pos, end: pos, phys: machine.NoReg}
			ivs[r] = iv
			return
		}
		if pos < iv.start {
			iv.start = pos
		}
		if pos > iv.end {
			iv.end = pos
		}
	}
	for i, in := range code {
		if d := defOf(in); d != machine.NoReg {
			touch(d, i)
		}
		buf = buf[:0]
		for _, u := range usesOf(in, buf) {
			touch(u, i)
		}
	}
	for _, b := range blocks {
		for r := range b.liveIn {
			touch(r, b.start)
		}
		for r := range b.liveOut {
			touch(r, b.end-1)
		}
	}
	_ = blockAt
	out := make([]*interval, 0, len(ivs))
	for _, iv := range ivs {
		out = append(out, iv)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].v < out[j].v })
	return out
}

// rewrite replaces virtual registers with their physical assignment,
// inserting spill loads and stores through the reserved scratch registers.
// Stack-pointer-relative spill offsets are corrected for any outstanding
// outgoing-argument adjustment.
func rewrite(code []machine.Instr, byReg map[machine.Reg]*interval, cfg machine.Config) []machine.Instr {
	scratch := []machine.Reg{
		machine.Reg(cfg.NumRegs - 1),
		machine.Reg(cfg.NumRegs - 2),
		machine.Reg(cfg.NumRegs - 3),
	}
	var out []machine.Instr
	var spAdj int32
	for _, in := range code {
		if in.Op == machine.AdjSP {
			spAdj += in.Imm
			out = append(out, in)
			continue
		}
		nextScratch := 0
		takeScratch := func() machine.Reg {
			r := scratch[nextScratch%len(scratch)]
			nextScratch++
			return r
		}
		var post []machine.Instr
		mapUse := func(r machine.Reg) machine.Reg {
			if !r.IsVirtual() {
				return r
			}
			iv := byReg[r]
			if iv == nil {
				return machine.Reg(0)
			}
			if !iv.spilled {
				return iv.phys
			}
			s := takeScratch()
			out = append(out, machine.Instr{Op: machine.LdSP, Rd: s, Imm: iv.slot - spAdj})
			return s
		}
		mapDef := func(r machine.Reg) machine.Reg {
			if !r.IsVirtual() {
				return r
			}
			iv := byReg[r]
			if iv == nil {
				return machine.Reg(0)
			}
			if !iv.spilled {
				return iv.phys
			}
			s := scratch[2]
			post = append(post, machine.Instr{Op: machine.StSP, Rd: s, Imm: iv.slot - spAdj})
			return s
		}
		// uses first, then the def
		switch {
		case in.Op.IsArith():
			in.Rs1 = mapUse(in.Rs1)
			if !in.HasImm {
				in.Rs2 = mapUse(in.Rs2)
			}
			in.Rd = mapDef(in.Rd)
		case in.Op == machine.Mov:
			if !in.HasImm {
				in.Rs1 = mapUse(in.Rs1)
			}
			in.Rd = mapDef(in.Rd)
		case in.Op.IsLoad():
			in.Rs1 = mapUse(in.Rs1)
			if !in.HasImm {
				in.Rs2 = mapUse(in.Rs2)
			}
			in.Rd = mapDef(in.Rd)
		case in.Op.IsStore():
			in.Rd = mapUse(in.Rd)
			in.Rs1 = mapUse(in.Rs1)
			if !in.HasImm {
				in.Rs2 = mapUse(in.Rs2)
			}
		case in.Op == machine.StSP || in.Op == machine.Arg:
			in.Rd = mapUse(in.Rd)
		case in.Op == machine.LdSP || in.Op == machine.LeaSP:
			in.Rd = mapDef(in.Rd)
		case in.Op == machine.Bz || in.Op == machine.Bnz:
			in.Rs1 = mapUse(in.Rs1)
		case in.Op == machine.Ret:
			if in.Rs1 != machine.NoReg {
				in.Rs1 = mapUse(in.Rs1)
			}
		case in.Op == machine.Call:
			if in.Rd != machine.NoReg {
				in.Rd = mapDef(in.Rd)
			}
		case in.Op == machine.CallR:
			in.Rs1 = mapUse(in.Rs1)
			if in.Rd != machine.NoReg {
				in.Rd = mapDef(in.Rd)
			}
		case in.Op == machine.KeepLive:
			in.Rs1 = mapUse(in.Rs1)
			if in.Rs2 != machine.NoReg {
				in.Rs2 = mapUse(in.Rs2)
			}
			in.Rd = mapDef(in.Rd)
		}
		out = append(out, in)
		out = append(out, post...)
	}
	return out
}
