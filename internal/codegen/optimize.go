package codegen

import (
	"gcsafety/internal/machine"
)

// The optimizer works on virtual-register code. It deliberately includes
// the transformation the paper opens with: displacement reassociation,
// which rewrites `a = p + (i - C)` into `t = p + (-C); a = t + i`,
// creating an intermediate pointer that may fall outside every object. A
// KeepLive use of the base pointer extends its live range past the
// arithmetic, which is what makes the annotated program safe — "the
// problem is to convince the compiler to preserve some values longer than
// they appear to be needed, rather than to suppress specific
// optimizations".

// optimize runs the -O pipeline.
func optimize(code []machine.Instr, opts Options) []machine.Instr {
	code = constFold(code)
	code = copyProp(code)
	code = localCSE(code)
	code = copyProp(code)
	if !opts.DisableReassociation {
		code = reassociate(code)
	}
	code = constFold(code)
	if opts.Machine.LoadIndexed && !opts.DisableLoadFolding {
		code = foldLoadAddresses(code)
	}
	code = deadCodeElim(code)
	return code
}

// localCSE performs block-local common-subexpression elimination over pure
// ALU operations: a repeated computation with identical opcode and operands
// reuses the earlier result via a copy (cleaned up by copy propagation).
// KeepLive results are opaque and never participate; loads are not reused
// (stores and calls could invalidate them).
func localCSE(code []machine.Instr) []machine.Instr {
	type key struct {
		op       machine.Op
		rs1, rs2 machine.Reg
		hasImm   bool
		imm      int32
	}
	avail := map[key]machine.Reg{}
	invalidate := func(r machine.Reg) {
		for k, v := range avail {
			if v == r || k.rs1 == r || (!k.hasImm && k.rs2 == r) {
				delete(avail, k)
			}
		}
	}
	for i := range code {
		in := &code[i]
		if barrier(*in) {
			avail = map[key]machine.Reg{}
			continue
		}
		if in.Op.IsArith() && in.Rd != machine.NoReg {
			k := key{op: in.Op, rs1: in.Rs1, rs2: in.Rs2, hasImm: in.HasImm, imm: in.Imm}
			if prev, ok := avail[k]; ok && prev != in.Rd {
				rd := in.Rd
				*in = machine.RR(machine.Mov, rd, prev, machine.NoReg)
				invalidate(rd)
				continue
			}
			d := in.Rd
			invalidate(d)
			if d != in.Rs1 && (in.HasImm || d != in.Rs2) {
				avail[k] = d
			}
			continue
		}
		if d := defOf(*in); d != machine.NoReg {
			invalidate(d)
		}
	}
	return code
}

// defOf returns the register defined by an instruction, or NoReg.
func defOf(in machine.Instr) machine.Reg { return machine.Def(in) }

// usesOf appends the registers read by an instruction to buf.
func usesOf(in machine.Instr, buf []machine.Reg) []machine.Reg {
	return machine.Uses(in, buf)
}

// barrier reports whether an instruction ends a straight-line window for
// local value tracking.
func barrier(in machine.Instr) bool { return in.Op.IsBarrier() }

// constFold tracks constants block-locally, folds operands into
// immediates, evaluates fully constant operations and strength-reduces
// multiplications by powers of two.
func constFold(code []machine.Instr) []machine.Instr {
	consts := map[machine.Reg]int32{}
	out := code[:0]
	for _, in := range code {
		if barrier(in) {
			consts = map[machine.Reg]int32{}
			out = append(out, in)
			continue
		}
		// substitute a known-constant Rs2
		if in.Op.IsArith() && !in.HasImm && in.Rs2 != machine.NoReg {
			if v, ok := consts[in.Rs2]; ok {
				in.HasImm = true
				in.Imm = v
				in.Rs2 = machine.NoReg
			}
		}
		// commutative swap to expose Rs1 constants
		if in.Op.IsArith() && !in.HasImm {
			if v, ok := consts[in.Rs1]; ok && commutative(in.Op) {
				in.Rs1 = in.Rs2
				in.Rs2 = machine.NoReg
				in.HasImm = true
				in.Imm = v
			}
		}
		// full evaluation
		if in.Op.IsArith() && in.HasImm {
			if v, ok := consts[in.Rs1]; ok {
				if r, ok2 := evalOp(in.Op, v, in.Imm); ok2 {
					in = machine.RI(machine.Mov, in.Rd, machine.NoReg, r)
				}
			}
		}
		// strength reduction: Mul by power of two
		if in.Op == machine.Mul && in.HasImm && in.Imm > 0 && in.Imm&(in.Imm-1) == 0 {
			sh := int32(0)
			for v := in.Imm; v > 1; v >>= 1 {
				sh++
			}
			if sh > 0 {
				in = machine.RI(machine.Shl, in.Rd, in.Rs1, sh)
			} else {
				in = machine.RR(machine.Mov, in.Rd, in.Rs1, machine.NoReg)
			}
		}
		// Add/Sub of 0 becomes a copy
		if (in.Op == machine.Add || in.Op == machine.Sub) && in.HasImm && in.Imm == 0 {
			in = machine.RR(machine.Mov, in.Rd, in.Rs1, machine.NoReg)
		}
		if d := defOf(in); d != machine.NoReg {
			delete(consts, d)
			if in.Op == machine.Mov && in.HasImm {
				consts[in.Rd] = in.Imm
			}
		}
		out = append(out, in)
	}
	return out
}

func commutative(op machine.Op) bool {
	switch op {
	case machine.Add, machine.Mul, machine.And, machine.Or, machine.Xor,
		machine.CmpEq, machine.CmpNe:
		return true
	}
	return false
}

func evalOp(op machine.Op, a, b int32) (int32, bool) {
	ua, ub := uint32(a), uint32(b)
	switch op {
	case machine.Add:
		return int32(ua + ub), true
	case machine.Sub:
		return int32(ua - ub), true
	case machine.Mul:
		return int32(ua * ub), true
	case machine.And:
		return a & b, true
	case machine.Or:
		return a | b, true
	case machine.Xor:
		return a ^ b, true
	case machine.Shl:
		return int32(ua << (ub & 31)), true
	case machine.Shr:
		return a >> (ub & 31), true
	case machine.Shru:
		return int32(ua >> (ub & 31)), true
	case machine.CmpEq:
		return b2i(a == b), true
	case machine.CmpNe:
		return b2i(a != b), true
	case machine.CmpLt:
		return b2i(a < b), true
	case machine.CmpLe:
		return b2i(a <= b), true
	case machine.CmpGt:
		return b2i(a > b), true
	case machine.CmpGe:
		return b2i(a >= b), true
	case machine.CmpLtu:
		return b2i(ua < ub), true
	case machine.CmpLeu:
		return b2i(ua <= ub), true
	case machine.CmpGtu:
		return b2i(ua > ub), true
	case machine.CmpGeu:
		return b2i(ua >= ub), true
	}
	return 0, false
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

// copyProp propagates register copies block-locally: after `Mov vd, vs`,
// uses of vd become uses of vs until either is redefined. KeepLive results
// are never propagated through — the value is opaque.
func copyProp(code []machine.Instr) []machine.Instr {
	alias := map[machine.Reg]machine.Reg{}
	invalidate := func(r machine.Reg) {
		delete(alias, r)
		for d, s := range alias {
			if s == r {
				delete(alias, d)
			}
		}
	}
	resolve := func(r machine.Reg) machine.Reg {
		for {
			s, ok := alias[r]
			if !ok {
				return r
			}
			r = s
		}
	}
	for i := range code {
		in := &code[i]
		if barrier(*in) {
			alias = map[machine.Reg]machine.Reg{}
			continue
		}
		// rewrite uses
		switch {
		case in.Op.IsArith() || in.Op.IsLoad():
			in.Rs1 = resolve(in.Rs1)
			if !in.HasImm && in.Rs2 != machine.NoReg {
				in.Rs2 = resolve(in.Rs2)
			}
		case in.Op == machine.Mov && !in.HasImm:
			in.Rs1 = resolve(in.Rs1)
		case in.Op.IsStore():
			in.Rd = resolve(in.Rd)
			in.Rs1 = resolve(in.Rs1)
			if !in.HasImm && in.Rs2 != machine.NoReg {
				in.Rs2 = resolve(in.Rs2)
			}
		case in.Op == machine.StSP || in.Op == machine.Arg:
			in.Rd = resolve(in.Rd)
		case in.Op == machine.CallR:
			in.Rs1 = resolve(in.Rs1)
		case in.Op == machine.KeepLive:
			in.Rs1 = resolve(in.Rs1)
			if in.Rs2 != machine.NoReg {
				in.Rs2 = resolve(in.Rs2)
			}
		}
		if d := defOf(*in); d != machine.NoReg {
			invalidate(d)
			if in.Op == machine.Mov && !in.HasImm && in.Rs1 != d {
				alias[d] = in.Rs1
			}
		}
	}
	return code
}

// reassociate performs displacement folding: the canonical GC-unsafe
// transformation. For `t = i ± C; a = p + t` (t defined and used exactly
// once, within one block, operands untouched in between), it produces
// `t = p ± C; a = t + i`. The constant moves onto the pointer, and the
// intermediate t may point outside every heap object.
func reassociate(code []machine.Instr) []machine.Instr {
	defCount := map[machine.Reg]int{}
	useCount := map[machine.Reg]int{}
	var buf []machine.Reg
	for _, in := range code {
		if d := defOf(in); d != machine.NoReg {
			defCount[d]++
		}
		buf = buf[:0]
		for _, u := range usesOf(in, buf) {
			useCount[u]++
		}
	}
	for i := 0; i < len(code); i++ {
		t := code[i]
		// match t.Rd = t.Rs1 ± C
		if !(t.Op == machine.Add || t.Op == machine.Sub) || !t.HasImm || t.Imm == 0 {
			continue
		}
		if defCount[t.Rd] != 1 || useCount[t.Rd] != 1 {
			continue
		}
		// find the single use within the block
		defined := map[machine.Reg]bool{}
		for j := i + 1; j < len(code); j++ {
			u := code[j]
			if barrier(u) {
				break
			}
			d := defOf(u)
			if d == t.Rs1 {
				break // index operand redefined before use
			}
			if u.Op == machine.Add && !u.HasImm && (u.Rs2 == t.Rd || u.Rs1 == t.Rd) {
				p := u.Rs1
				if u.Rs2 != t.Rd {
					p = u.Rs2
				}
				if defined[p] {
					// the base operand is not yet available at position i;
					// hoisting the constant onto it would read an undefined
					// register
					break
				}
				// When this is the base operand's final use, reuse its own
				// register for the intermediate — the exact transformation
				// the paper opens with: "a conventional C compiler may
				// replace a final reference p[i-1000] ... by the sequence
				// p = p - 1000; ... p[i] ...". The original value of p is
				// overwritten before the address computation is complete;
				// without a KEEP_LIVE use keeping p alive past this point,
				// the resulting code is not GC-safe.
				if lastUseAt(code, j, p) {
					code[i] = machine.RI(t.Op, p, p, t.Imm)
					code[j] = machine.RR(machine.Add, u.Rd, p, t.Rs1)
					break
				}
				// rewrite: t = p ± C ; a = t + i
				code[i] = machine.RI(t.Op, t.Rd, p, t.Imm)
				code[j] = machine.RR(machine.Add, u.Rd, t.Rd, t.Rs1)
				break
			}
			if d == t.Rd {
				break
			}
			if d != machine.NoReg {
				defined[d] = true
			}
			// another use of t.Rd in a non-matching instruction: stop
			stop := false
			buf = buf[:0]
			for _, r := range usesOf(u, buf) {
				if r == t.Rd {
					stop = true
				}
			}
			if stop {
				break
			}
		}
	}
	return code
}

// lastUseAt reports whether position j holds the textually final use of r
// and control flow cannot revisit j (no backward branches exist after j),
// so r's register may be recycled for the intermediate value.
func lastUseAt(code []machine.Instr, j int, r machine.Reg) bool {
	labelPos := map[int32]int{}
	for i, in := range code {
		if in.Op == machine.Label {
			labelPos[in.Imm] = i
		}
	}
	var buf []machine.Reg
	for i := j + 1; i < len(code); i++ {
		in := code[i]
		buf = buf[:0]
		for _, u := range usesOf(in, buf) {
			if u == r {
				return false
			}
		}
		switch in.Op {
		case machine.Jmp, machine.Bz, machine.Bnz:
			if lp, ok := labelPos[in.Imm]; ok && lp <= j {
				return false // a backward branch could re-execute j
			}
		}
	}
	// the use at j itself must not sit between a backward branch target and
	// its branch: check branches before j too
	for i := 0; i <= j; i++ {
		in := code[i]
		switch in.Op {
		case machine.Jmp, machine.Bz, machine.Bnz:
			if lp, ok := labelPos[in.Imm]; ok && lp <= j && i > lp {
				// loop enclosing positions [lp, i]; j inside it means the
				// value may be needed again
				if j >= lp && j <= i {
					return false
				}
			}
		}
	}
	return true
}

// foldLoadAddresses folds single-use address adds into load/store
// addressing ("indexed loads ... a free addition in the load
// instruction"). A KeepLive between the add and the memory operation
// blocks the fold naturally: the memory operation's address register is
// then defined by the KeepLive, not the add.
func foldLoadAddresses(code []machine.Instr) []machine.Instr {
	defCount := map[machine.Reg]int{}
	useCount := map[machine.Reg]int{}
	var buf []machine.Reg
	for _, in := range code {
		if d := defOf(in); d != machine.NoReg {
			defCount[d]++
		}
		buf = buf[:0]
		for _, u := range usesOf(in, buf) {
			useCount[u]++
		}
	}
	removed := map[int]bool{}
	for i := 0; i < len(code); i++ {
		a := code[i]
		if a.Op != machine.Add || defCount[a.Rd] != 1 || useCount[a.Rd] != 1 {
			continue
		}
		for j := i + 1; j < len(code); j++ {
			u := code[j]
			if barrier(u) || u.Op == machine.Call || u.Op == machine.CallR {
				break
			}
			d := defOf(u)
			if d == a.Rs1 || (!a.HasImm && d == a.Rs2) {
				break
			}
			usesA := false
			buf = buf[:0]
			for _, r := range usesOf(u, buf) {
				if r == a.Rd {
					usesA = true
				}
			}
			if usesA {
				isMem := u.Op.IsLoad() || u.Op.IsStore()
				if isMem && u.Rs1 == a.Rd && u.HasImm && u.Imm == 0 && u.Rd != a.Rd {
					// fold: [a.Rs1 + a.Rs2] or [a.Rs1 + imm]
					code[j].Rs1 = a.Rs1
					if a.HasImm {
						code[j].Imm = a.Imm
					} else {
						code[j].HasImm = false
						code[j].Rs2 = a.Rs2
					}
					removed[i] = true
				}
				break
			}
			if d == a.Rd {
				break
			}
		}
	}
	if len(removed) == 0 {
		return code
	}
	out := code[:0]
	for i, in := range code {
		if !removed[i] {
			out = append(out, in)
		}
	}
	return out
}

// deadCodeElim removes side-effect-free definitions that are never used.
// KeepLive survives unconditionally: it is the whole point.
func deadCodeElim(code []machine.Instr) []machine.Instr {
	for {
		used := map[machine.Reg]bool{}
		var buf []machine.Reg
		for _, in := range code {
			buf = buf[:0]
			for _, u := range usesOf(in, buf) {
				used[u] = true
			}
		}
		changed := false
		out := code[:0]
		for _, in := range code {
			removable := false
			switch {
			case in.Op == machine.KeepLive:
				removable = false
			case in.Op.IsArith() || in.Op == machine.Mov || in.Op.IsLoad() ||
				in.Op == machine.LeaSP || in.Op == machine.LdSP:
				removable = in.Rd != machine.NoReg && !used[in.Rd]
			}
			if removable {
				changed = true
				continue
			}
			out = append(out, in)
		}
		code = out
		if !changed {
			return code
		}
	}
}
