package codegen

import (
	"testing"

	"gcsafety/internal/machine"
)

// White-box tests for the optimizer passes.

const v0, v1, v2, v3, v4 = machine.VRegBase, machine.VRegBase + 1,
	machine.VRegBase + 2, machine.VRegBase + 3, machine.VRegBase + 4

func TestConstFoldEvaluates(t *testing.T) {
	code := []machine.Instr{
		machine.RI(machine.Mov, v0, machine.NoReg, 6),
		machine.RI(machine.Mov, v1, machine.NoReg, 7),
		machine.RR(machine.Mul, v2, v0, v1),
		{Op: machine.Ret, Rs1: v2},
	}
	out := constFold(code)
	found := false
	for _, in := range out {
		if in.Op == machine.Mov && in.Rd == v2 && in.HasImm && in.Imm == 42 {
			found = true
		}
	}
	if !found {
		t.Fatalf("6*7 not folded: %v", out)
	}
}

func TestConstFoldStrengthReduction(t *testing.T) {
	code := []machine.Instr{
		machine.RI(machine.Mul, v1, v0, 8),
		{Op: machine.Ret, Rs1: v1},
	}
	out := constFold(code)
	if out[0].Op != machine.Shl || out[0].Imm != 3 {
		t.Fatalf("mul by 8 not reduced to shl 3: %v", out[0])
	}
}

func TestConstFoldAddZero(t *testing.T) {
	code := []machine.Instr{
		machine.RI(machine.Add, v1, v0, 0),
		{Op: machine.Ret, Rs1: v1},
	}
	out := constFold(code)
	if out[0].Op != machine.Mov {
		t.Fatalf("add 0 not turned into mov: %v", out[0])
	}
}

func TestConstFoldStopsAtBarriers(t *testing.T) {
	code := []machine.Instr{
		machine.RI(machine.Mov, v0, machine.NoReg, 5),
		{Op: machine.Label, Imm: 0},
		machine.RI(machine.Add, v1, v0, 1), // v0 may differ on re-entry
		{Op: machine.Bnz, Rs1: v1, Imm: 0},
	}
	out := constFold(code)
	if out[2].Op != machine.Add {
		t.Fatalf("constant tracked across a label: %v", out[2])
	}
}

func TestCopyPropRewritesUses(t *testing.T) {
	code := []machine.Instr{
		machine.RR(machine.Mov, v1, v0, machine.NoReg),
		machine.RI(machine.Add, v2, v1, 3),
		{Op: machine.Ret, Rs1: v2},
	}
	out := copyProp(code)
	if out[1].Rs1 != v0 {
		t.Fatalf("use not rewritten to the copy source: %v", out[1])
	}
}

func TestCopyPropInvalidatedByRedefinition(t *testing.T) {
	code := []machine.Instr{
		machine.RR(machine.Mov, v1, v0, machine.NoReg),
		machine.RI(machine.Mov, v0, machine.NoReg, 9), // v0 changes
		machine.RI(machine.Add, v2, v1, 3),            // must still use v1
		{Op: machine.Ret, Rs1: v2},
	}
	out := copyProp(code)
	if out[2].Rs1 != v1 {
		t.Fatalf("stale copy propagated past a redefinition: %v", out[2])
	}
}

func TestLocalCSE(t *testing.T) {
	code := []machine.Instr{
		machine.RI(machine.Add, v1, v0, 8),
		machine.RI(machine.Ld, v2, v1, 0),
		machine.RI(machine.Add, v3, v0, 8), // same computation
		machine.RI(machine.Ld, v4, v3, 0),
		{Op: machine.Ret, Rs1: v4},
	}
	out := localCSE(code)
	if out[2].Op != machine.Mov || out[2].Rs1 != v1 {
		t.Fatalf("repeated add not CSE'd: %v", out[2])
	}
}

func TestCSEInvalidatedByOperandChange(t *testing.T) {
	code := []machine.Instr{
		machine.RI(machine.Add, v1, v0, 8),
		machine.RI(machine.Add, v0, v0, 4), // v0 changes
		machine.RI(machine.Add, v2, v0, 8), // not the same value anymore
		{Op: machine.Ret, Rs1: v2},
	}
	out := localCSE(code)
	if out[2].Op != machine.Add {
		t.Fatalf("stale CSE after operand redefinition: %v", out[2])
	}
}

func TestReassociateHoistsConstant(t *testing.T) {
	// t = i - 1000 ; a = p + t  =>  t = p - 1000 ; a = t + i
	i, p := v0, v1
	code := []machine.Instr{
		machine.RI(machine.Sub, v2, i, 1000),
		machine.RR(machine.Add, v3, p, v2),
		machine.RI(machine.Ld, v4, v3, 0),
		{Op: machine.Call, Rd: machine.NoReg, Sym: "use"}, // keeps p "used later"? no: p unused after
		{Op: machine.Ret, Rs1: v4},
	}
	out := reassociate(code)
	// The base p dies at the add, so the dying-register form applies:
	// sub p, p, 1000 ; add a, p, i
	if !(out[0].Op == machine.Sub && out[0].Rd == p && out[0].Rs1 == p && out[0].Imm == 1000) {
		t.Fatalf("expected `sub p, p, 1000`, got %v", out[0])
	}
	if !(out[1].Op == machine.Add && out[1].Rs1 == p && out[1].Rs2 == i) {
		t.Fatalf("expected `add a, p, i`, got %v", out[1])
	}
}

func TestReassociateKeepsBaseWhenReused(t *testing.T) {
	i, p := v0, v1
	code := []machine.Instr{
		machine.RI(machine.Sub, v2, i, 1000),
		machine.RR(machine.Add, v3, p, v2),
		{Op: machine.KeepLive, Rd: v4, Rs1: v3, Rs2: p}, // p used again: KEEP_LIVE base
		machine.RI(machine.Ld, v4+1, v4, 0),
		{Op: machine.Ret, Rs1: v4 + 1},
	}
	out := reassociate(code)
	// p has a later use, so the intermediate must go to the temp, not p.
	if out[0].Rd == p {
		t.Fatalf("dying-register rewrite applied although p is a KEEP_LIVE base: %v", out[0])
	}
	if !(out[0].Op == machine.Sub && out[0].Rs1 == p && out[0].Imm == 1000) {
		t.Fatalf("constant not hoisted onto the pointer: %v", out[0])
	}
}

func TestReassociateSkipsLaterDefinedBase(t *testing.T) {
	// The base operand is defined between t and the add: hoisting would
	// read an undefined register.
	code := []machine.Instr{
		machine.RI(machine.Sub, v2, v0, 8),              // t = i - 8
		machine.RI(machine.Mov, v1, machine.NoReg, 100), // base defined *here*
		machine.RR(machine.Add, v3, v1, v2),
		{Op: machine.Ret, Rs1: v3},
	}
	out := reassociate(code)
	if out[0].Rs1 != v0 {
		t.Fatalf("reassociation read an undefined base: %v", out)
	}
}

func TestDeadCodeElim(t *testing.T) {
	code := []machine.Instr{
		machine.RI(machine.Mov, v0, machine.NoReg, 1), // dead
		machine.RI(machine.Mov, v1, machine.NoReg, 2),
		machine.RI(machine.Add, v2, v1, 3), // dead chain head
		machine.RI(machine.Add, v3, v1, 4),
		{Op: machine.Ret, Rs1: v3},
	}
	out := deadCodeElim(code)
	if len(out) != 3 {
		t.Fatalf("dead code left: %v", out)
	}
}

func TestDeadCodeKeepsKeepLive(t *testing.T) {
	code := []machine.Instr{
		machine.RI(machine.Mov, v0, machine.NoReg, 1),
		{Op: machine.KeepLive, Rd: v1, Rs1: v0, Rs2: machine.NoReg}, // result unused
		{Op: machine.Ret, Rs1: machine.NoReg},
	}
	out := deadCodeElim(code)
	found := false
	for _, in := range out {
		if in.Op == machine.KeepLive {
			found = true
		}
	}
	if !found {
		t.Fatal("KeepLive eliminated as dead code")
	}
}

func TestFoldLoadAddresses(t *testing.T) {
	code := []machine.Instr{
		machine.RR(machine.Add, v2, v0, v1),
		machine.RI(machine.Ld, v3, v2, 0),
		{Op: machine.Ret, Rs1: v3},
	}
	out := foldLoadAddresses(code)
	if len(out) != 2 || out[0].Op != machine.Ld || out[0].Rs1 != v0 || out[0].Rs2 != v1 {
		t.Fatalf("load address not folded: %v", out)
	}
}

func TestFoldBlockedByKeepLive(t *testing.T) {
	// The KeepLive consumes the add's result, so the load's address comes
	// from the pseudo-instruction and the fold cannot apply — the paper's
	// Analysis-section phenomenon.
	code := []machine.Instr{
		machine.RR(machine.Add, v2, v0, v1),
		{Op: machine.KeepLive, Rd: v3, Rs1: v2, Rs2: v0},
		machine.RI(machine.Ld, v4, v3, 0),
		{Op: machine.Ret, Rs1: v4},
	}
	out := foldLoadAddresses(code)
	if len(out) != 4 {
		t.Fatalf("fold happened across a KeepLive: %v", out)
	}
}

func TestAllocateSpillsAcrossCalls(t *testing.T) {
	// A value live across a call must be in memory (our caller-saved
	// convention), which also makes it a scanned GC root.
	code := []machine.Instr{
		machine.RI(machine.Mov, v0, machine.NoReg, 7),
		{Op: machine.Call, Rd: v1, Sym: "g"},
		machine.RR(machine.Add, v2, v0, v1),
		{Op: machine.Ret, Rs1: v2},
	}
	out, frame := allocate(code, machine.SPARCstation10(), 0)
	if frame == 0 {
		t.Fatal("no spill slot allocated for the call-crossing value")
	}
	var hasStore, hasReload bool
	for _, in := range out {
		if in.Op == machine.StSP {
			hasStore = true
		}
		if in.Op == machine.LdSP {
			hasReload = true
		}
	}
	if !hasStore || !hasReload {
		t.Fatalf("spill traffic missing: %v", out)
	}
}

func TestAllocateNoVirtualsRemain(t *testing.T) {
	code := []machine.Instr{
		machine.RI(machine.Mov, v0, machine.NoReg, 1),
		machine.RI(machine.Add, v1, v0, 2),
		machine.RR(machine.Add, v2, v0, v1),
		{Op: machine.Ret, Rs1: v2},
	}
	out, _ := allocate(code, machine.Pentium90(), 0)
	var buf []machine.Reg
	for _, in := range out {
		if d := machine.Def(in); d.IsVirtual() {
			t.Fatalf("virtual def survives allocation: %v", in)
		}
		buf = buf[:0]
		for _, u := range machine.Uses(in, buf) {
			if u.IsVirtual() {
				t.Fatalf("virtual use survives allocation: %v", in)
			}
		}
	}
}

func TestCoalesceKeepLive(t *testing.T) {
	code := []machine.Instr{
		machine.RI(machine.Add, v1, v0, 4),
		{Op: machine.KeepLive, Rd: v2, Rs1: v1, Rs2: v0},
		machine.RI(machine.Ld, v3, v2, 0),
		{Op: machine.Ret, Rs1: v3},
	}
	out := coalesceKeepLive(code)
	for _, in := range out {
		if in.Op == machine.KeepLive && in.Rd != in.Rs1 {
			t.Fatalf("KeepLive not coalesced: %v", in)
		}
	}
}

func TestTwoOperandFixup(t *testing.T) {
	cfg := machine.Pentium90()
	code := []machine.Instr{
		machine.RR(machine.Sub, 2, 0, 1), // rd != rs1: needs a mov on x86
		{Op: machine.Ret, Rs1: 2},
	}
	out := lower(code, Options{Machine: cfg}, 0, 0)
	if out[0].Op != machine.Mov || out[0].Rd != 2 || out[0].Rs1 != 0 {
		t.Fatalf("two-operand fixup missing: %v", out)
	}
	if out[1].Op != machine.Sub || out[1].Rd != 2 || out[1].Rs1 != 2 {
		t.Fatalf("destructive form wrong: %v", out)
	}
	// Commutative case swaps instead of copying.
	code2 := []machine.Instr{
		machine.RR(machine.Add, 2, 0, 2),
		{Op: machine.Ret, Rs1: 2},
	}
	out2 := lower(code2, Options{Machine: cfg}, 0, 0)
	if out2[0].Op != machine.Add || out2[0].Rs1 != 2 || out2[0].Rs2 != 0 {
		t.Fatalf("commutative swap missing: %v", out2)
	}
}

func TestLowerParamOffsets(t *testing.T) {
	code := []machine.Instr{
		{Op: machine.AdjSP, Imm: 0},
		{Op: machine.LdSP, Rd: 0, Imm: 4, Comment: "param"},
		{Op: machine.LdSP, Rd: 1, Imm: paramBase + 8},
		{Op: machine.Ret, Rs1: 0},
	}
	out := lower(code, Options{Machine: machine.SPARCstation10()}, 32, 3)
	if out[0].Op != machine.AdjSP || out[0].Imm != -32 {
		t.Fatalf("prologue not patched: %v", out[0])
	}
	if out[1].Imm != 36 { // 4 + frame
		t.Fatalf("vreg param offset = %d, want 36", out[1].Imm)
	}
	if out[2].Imm != 40 { // 8 + frame
		t.Fatalf("slot param offset = %d, want 40", out[2].Imm)
	}
}
