package codegen

import (
	"gcsafety/internal/cc/ast"
	"gcsafety/internal/cc/parser"
	"gcsafety/internal/cc/token"
	"gcsafety/internal/cc/types"
	"gcsafety/internal/machine"
)

// genExpr evaluates an expression into a fresh (or variable-resident)
// virtual register and returns it.
func (f *fn) genExpr(e ast.Expr) machine.Reg {
	switch e := e.(type) {
	case *ast.IntLit:
		return f.movImm(int32(e.Val))
	case *ast.CharLit:
		return f.movImm(int32(e.Val))
	case *ast.StrLit:
		return f.movImm(int32(f.c.internString(e.Val)))
	case *ast.SizeofExpr:
		t := e.X.Type()
		if t == nil {
			return f.movImm(4)
		}
		return f.movImm(int32(t.Size()))
	case *ast.SizeofType:
		return f.movImm(int32(e.Of.Size()))
	case *ast.Paren:
		return f.genExpr(e.X)
	case *ast.Ident:
		return f.genIdent(e)
	case *ast.Unary:
		return f.genUnary(e)
	case *ast.Binary:
		return f.genBinary(e)
	case *ast.Assign:
		return f.genAssign(e)
	case *ast.Cond:
		return f.genCond(e)
	case *ast.Call:
		return f.genCall(e)
	case *ast.Comma:
		f.genExpr(e.X)
		return f.genExpr(e.Y)
	case *ast.Cast:
		return f.genCast(e)
	case *ast.Index, *ast.Member:
		// value load (or address, for array-typed members)
		if isArrayType(e.Type()) {
			return f.genAddr(e)
		}
		a := f.genAddr(e)
		return f.loadFrom(a, 0, e.Type())
	case *ast.KeepLive:
		return f.genKeepLive(e)
	}
	f.errorf("unsupported expression %T", e)
	return f.movImm(0)
}

func (f *fn) movImm(v int32) machine.Reg {
	r := f.newV()
	f.emit(machine.RI(machine.Mov, r, machine.NoReg, v))
	return r
}

func (f *fn) genIdent(e *ast.Ident) machine.Reg {
	o := e.Obj
	switch o.Kind {
	case ast.ObjEnumConst:
		return f.movImm(int32(o.EnumVal))
	case ast.ObjFunc:
		if mf, ok := f.c.prog.Funcs[o.Name]; ok {
			return f.movImm(mf.ID)
		}
		// Forward reference or runtime function: ids are resolved by name
		// at execution; hash names into the reserved low range.
		return f.movImm(int32(f.c.funcRefID(o.Name)))
	}
	if v, ok := f.varReg(o); ok {
		// copy out so expression temps never alias the variable's home
		r := f.newV()
		f.emit(machine.RR(machine.Mov, r, v, machine.NoReg))
		return r
	}
	if isArrayType(o.Type) {
		return f.genAddr(e) // arrays decay to their address
	}
	if o.Global {
		a := f.globalAddr(o)
		return f.loadFrom(a, 0, o.Type)
	}
	off := f.slotFor(o)
	if sizeOf(o.Type) < 4 {
		a := f.newV()
		f.emit(machine.Instr{Op: machine.LeaSP, Rd: a, Imm: off})
		return f.loadFrom(a, 0, o.Type)
	}
	r := f.newV()
	f.emit(machine.Instr{Op: machine.LdSP, Rd: r, Imm: off})
	return r
}

func (f *fn) globalAddr(o *ast.Object) machine.Reg {
	addr, ok := f.c.prog.Globals[o.Name]
	if !ok {
		f.errorf("undefined global %s", o.Name)
		addr = machine.DataBase
	}
	return f.movImm(int32(addr))
}

func (f *fn) genUnary(e *ast.Unary) machine.Reg {
	switch e.Op {
	case token.Star:
		a := f.genExpr(e.X)
		if isArrayType(e.Type()) {
			return a
		}
		return f.loadFrom(a, 0, e.Type())
	case token.Amp:
		return f.genAddr(e.X)
	case token.Minus:
		x := f.genExpr(e.X)
		r := f.newV()
		zero := f.movImm(0)
		f.emit(machine.RR(machine.Sub, r, zero, x))
		return r
	case token.Plus:
		return f.genExpr(e.X)
	case token.Tilde:
		x := f.genExpr(e.X)
		r := f.newV()
		f.emit(machine.RI(machine.Xor, r, x, -1))
		return r
	case token.Not:
		x := f.genExpr(e.X)
		r := f.newV()
		f.emit(machine.RI(machine.CmpEq, r, x, 0))
		return r
	case token.Inc, token.Dec:
		return f.genIncDec(e)
	}
	f.errorf("unsupported unary operator %s", e.Op)
	return f.movImm(0)
}

// genIncDec handles ++/-- that survive to code generation (integer
// operands always; pointer operands only in the un-annotated pipeline).
func (f *fn) genIncDec(e *ast.Unary) machine.Reg {
	t := types.Decay(e.X.Type())
	step := int32(1)
	if pt, ok := t.(*types.Pointer); ok {
		s := pt.Elem.Size()
		if s > 0 {
			step = int32(s)
		}
	}
	if e.Op == token.Dec {
		step = -step
	}
	old := f.genLvalueLoad(e.X)
	nw := f.newV()
	f.emit(machine.RI(machine.Add, nw, old, step))
	f.storeLvalue(e.X, nw)
	if e.Postfix {
		return old
	}
	return nw
}

func (f *fn) genBinary(e *ast.Binary) machine.Reg {
	switch e.Op {
	case token.AndAnd, token.OrOr:
		return f.genShortCircuit(e)
	}
	xt, yt := valueTypeOf(e.X), valueTypeOf(e.Y)
	x := f.genExpr(e.X)
	y := f.genExpr(e.Y)
	r := f.newV()
	switch e.Op {
	case token.Plus:
		// pointer + int scales the integer side
		if pt, ok := types.Decay(xt).(*types.Pointer); ok {
			y = f.scale(y, pt.Elem)
		} else if pt, ok := types.Decay(yt).(*types.Pointer); ok {
			x = f.scale(x, pt.Elem)
		}
		f.emit(machine.RR(machine.Add, r, x, y))
	case token.Minus:
		if pt, ok := types.Decay(xt).(*types.Pointer); ok {
			if types.IsPointer(types.Decay(yt)) {
				f.emit(machine.RR(machine.Sub, r, x, y))
				if s := pt.Elem.Size(); s > 1 {
					d := f.newV()
					f.emit(machine.RI(machine.Div, d, r, int32(s)))
					return d
				}
				return r
			}
			y = f.scale(y, pt.Elem)
		}
		f.emit(machine.RR(machine.Sub, r, x, y))
	case token.Star:
		f.emit(machine.RR(machine.Mul, r, x, y))
	case token.Slash:
		f.emit(machine.RR(f.signedOp(e, machine.Div, machine.Divu), r, x, y))
	case token.Percent:
		f.emit(machine.RR(f.signedOp(e, machine.Rem, machine.Remu), r, x, y))
	case token.Amp:
		f.emit(machine.RR(machine.And, r, x, y))
	case token.Pipe:
		f.emit(machine.RR(machine.Or, r, x, y))
	case token.Caret:
		f.emit(machine.RR(machine.Xor, r, x, y))
	case token.Shl:
		f.emit(machine.RR(machine.Shl, r, x, y))
	case token.Shr:
		op := machine.Shr
		if !types.IsSigned(types.Promote(xt)) {
			op = machine.Shru
		}
		f.emit(machine.RR(op, r, x, y))
	case token.Eq:
		f.emit(machine.RR(machine.CmpEq, r, x, y))
	case token.Ne:
		f.emit(machine.RR(machine.CmpNe, r, x, y))
	case token.Lt, token.Le, token.Gt, token.Ge:
		f.emit(machine.RR(f.relOp(e.Op, xt, yt), r, x, y))
	default:
		f.errorf("unsupported binary operator %s", e.Op)
	}
	return r
}

func (f *fn) signedOp(e *ast.Binary, s, u machine.Op) machine.Op {
	t := types.Arith(types.Decay(valueTypeOf(e.X)), types.Decay(valueTypeOf(e.Y)))
	if types.IsSigned(t) {
		return s
	}
	return u
}

func (f *fn) relOp(op token.Kind, xt, yt types.Type) machine.Op {
	unsigned := types.IsPointer(types.Decay(xt)) || types.IsPointer(types.Decay(yt))
	if !unsigned {
		ct := types.Arith(types.Decay(xt), types.Decay(yt))
		unsigned = !types.IsSigned(ct)
	}
	switch op {
	case token.Lt:
		if unsigned {
			return machine.CmpLtu
		}
		return machine.CmpLt
	case token.Le:
		if unsigned {
			return machine.CmpLeu
		}
		return machine.CmpLe
	case token.Gt:
		if unsigned {
			return machine.CmpGtu
		}
		return machine.CmpGt
	default:
		if unsigned {
			return machine.CmpGeu
		}
		return machine.CmpGe
	}
}

// scale multiplies an index register by an element size.
func (f *fn) scale(r machine.Reg, elem types.Type) machine.Reg {
	s := elem.Size()
	if s <= 1 {
		return r
	}
	out := f.newV()
	f.emit(machine.RI(machine.Mul, out, r, int32(s)))
	return out
}

func (f *fn) genShortCircuit(e *ast.Binary) machine.Reg {
	r := f.newV()
	end := f.newLabel()
	if e.Op == token.AndAnd {
		fail := f.newLabel()
		x := f.genExpr(e.X)
		f.emit(machine.Instr{Op: machine.Bz, Rs1: x, Imm: fail})
		y := f.genExpr(e.Y)
		f.emit(machine.Instr{Op: machine.Bz, Rs1: y, Imm: fail})
		f.emit(machine.RI(machine.Mov, r, machine.NoReg, 1))
		f.jmp(end)
		f.label(fail)
		f.emit(machine.RI(machine.Mov, r, machine.NoReg, 0))
		f.label(end)
		return r
	}
	ok := f.newLabel()
	x := f.genExpr(e.X)
	f.emit(machine.Instr{Op: machine.Bnz, Rs1: x, Imm: ok})
	y := f.genExpr(e.Y)
	f.emit(machine.Instr{Op: machine.Bnz, Rs1: y, Imm: ok})
	f.emit(machine.RI(machine.Mov, r, machine.NoReg, 0))
	f.jmp(end)
	f.label(ok)
	f.emit(machine.RI(machine.Mov, r, machine.NoReg, 1))
	f.label(end)
	return r
}

func (f *fn) genCond(e *ast.Cond) machine.Reg {
	r := f.newV()
	elseL, end := f.newLabel(), f.newLabel()
	c := f.genExpr(e.C)
	f.emit(machine.Instr{Op: machine.Bz, Rs1: c, Imm: elseL})
	t := f.genExpr(e.T)
	f.emit(machine.RR(machine.Mov, r, t, machine.NoReg))
	f.jmp(end)
	f.label(elseL)
	fv := f.genExpr(e.F)
	f.emit(machine.RR(machine.Mov, r, fv, machine.NoReg))
	f.label(end)
	return r
}

func (f *fn) genCast(e *ast.Cast) machine.Reg {
	x := f.genExpr(e.X)
	// Pointer and word-sized integer casts are free; narrowing truncates.
	if b, ok := e.To.(*types.Basic); ok {
		switch b.Kind {
		case types.Char:
			r := f.newV()
			r2 := f.newV()
			f.emit(machine.RI(machine.Shl, r, x, 24))
			f.emit(machine.RI(machine.Shr, r2, r, 24))
			return r2
		case types.UChar:
			r := f.newV()
			f.emit(machine.RI(machine.And, r, x, 0xFF))
			return r
		case types.Short:
			r := f.newV()
			r2 := f.newV()
			f.emit(machine.RI(machine.Shl, r, x, 16))
			f.emit(machine.RI(machine.Shr, r2, r, 16))
			return r2
		case types.UShort:
			r := f.newV()
			f.emit(machine.RI(machine.And, r, x, 0xFFFF))
			return r
		}
	}
	return x
}

// genKeepLive lowers the annotation node: in safe mode, the empty
// pseudo-instruction with its operand constraints; in checked mode, a real
// call to GC_same_obj.
func (f *fn) genKeepLive(e *ast.KeepLive) machine.Reg {
	if e.Checked {
		v := f.genExpr(e.X)
		var b machine.Reg
		if e.Base != nil {
			b = f.genExpr(e.Base)
		} else {
			b = f.movImm(0)
		}
		return f.genCallRegs("GC_same_obj", []machine.Reg{v, b}, false)
	}
	v := f.genExpr(e.X)
	var b machine.Reg = machine.NoReg
	if e.Base != nil {
		b = f.genExpr(e.Base)
	}
	r := f.newV()
	f.emit(machine.Instr{Op: machine.KeepLive, Rd: r, Rs1: v, Rs2: b, Comment: "KEEP_LIVE"})
	return r
}

// --- lvalues ---

// genAddr computes the address of an lvalue into a register.
func (f *fn) genAddr(e ast.Expr) machine.Reg {
	switch e := e.(type) {
	case *ast.Paren:
		return f.genAddr(e.X)
	case *ast.Ident:
		o := e.Obj
		if o.Kind == ast.ObjFunc {
			return f.genIdent(e)
		}
		if _, ok := f.vregs[o]; ok {
			f.errorf("address taken of register variable %s", o.Name)
			return f.movImm(0)
		}
		if o.Global {
			return f.globalAddr(o)
		}
		off := f.slotFor(o)
		a := f.newV()
		f.emit(machine.Instr{Op: machine.LeaSP, Rd: a, Imm: off})
		return a
	case *ast.Unary:
		if e.Op == token.Star {
			return f.genExpr(e.X)
		}
	case *ast.Index:
		base, idx := e.X, e.I
		if !types.IsPointer(types.Decay(valueTypeOf(base))) {
			base, idx = idx, base
		}
		b := f.genExpr(base)
		elem := e.Type()
		if i, ok := constIndex(idx); ok {
			a := f.newV()
			f.emit(machine.RI(machine.Add, a, b, i*int32(sizeOfElem(elem))))
			return a
		}
		iv := f.genExpr(idx)
		iv = f.scale(iv, elemTypeOf(elem))
		a := f.newV()
		f.emit(machine.RR(machine.Add, a, b, iv))
		return a
	case *ast.Member:
		var base machine.Reg
		if e.Arrow {
			base = f.genExpr(e.X)
		} else {
			base = f.genAddr(e.X)
		}
		if e.Field == nil {
			f.errorf("unresolved member %s", e.Name)
			return base
		}
		if e.Field.Off == 0 {
			return base
		}
		a := f.newV()
		f.emit(machine.RI(machine.Add, a, base, int32(e.Field.Off)))
		return a
	case *ast.KeepLive:
		// *KEEP_LIVE(&lv, b) = v assigns through the pinned address
		return f.genKeepLive(e)
	case *ast.StrLit:
		return f.movImm(int32(f.c.internString(e.Val)))
	}
	f.errorf("cannot take the address of %T", e)
	return f.movImm(0)
}

// constIndex extracts a constant subscript.
func constIndex(e ast.Expr) (int32, bool) {
	if v, ok := parser.EvalConst(e); ok {
		return int32(v), true
	}
	return 0, false
}

func sizeOfElem(t types.Type) int {
	s := t.Size()
	if s <= 0 {
		return 1
	}
	return s
}

// elemTypeOf wraps a type so scale() sees the element size of the access.
func elemTypeOf(t types.Type) types.Type { return t }

// genLvalueLoad loads the current value of an lvalue.
func (f *fn) genLvalueLoad(e ast.Expr) machine.Reg {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if v, ok2 := f.varReg(id.Obj); ok2 {
			r := f.newV()
			f.emit(machine.RR(machine.Mov, r, v, machine.NoReg))
			return r
		}
	}
	return f.genExpr(e)
}

// storeLvalue stores val into lvalue e.
func (f *fn) storeLvalue(e ast.Expr, val machine.Reg) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		o := e.Obj
		if v, ok := f.varReg(o); ok {
			f.emit(machine.RR(machine.Mov, v, val, machine.NoReg))
			return
		}
		if o.Global {
			a := f.globalAddr(o)
			f.storeTo(a, 0, o.Type, val)
			return
		}
		f.storeSlot(f.slotFor(o), o.Type, val)
	default:
		a := f.genAddr(e)
		f.storeTo(a, 0, exprType(e), val)
	}
}

func exprType(e ast.Expr) types.Type {
	t := e.Type()
	if t == nil {
		return types.IntType
	}
	return t
}

func valueTypeOf(e ast.Expr) types.Type { return types.Decay(exprType(e)) }

func (f *fn) genAssign(e *ast.Assign) machine.Reg {
	if e.Op == token.Assign {
		if st, ok := exprType(e.L).(*types.Struct); ok {
			return f.genStructAssign(e, st)
		}
		r := f.genExpr(e.R)
		f.storeLvalue(e.L, r)
		return r
	}
	// compound assignment: load, operate, store
	lt := valueTypeOf(e.L)
	old := f.genLvalueLoad(e.L)
	r := f.genExpr(e.R)
	if pt, ok := lt.(*types.Pointer); ok {
		r = f.scale(r, pt.Elem)
	}
	out := f.newV()
	var op machine.Op
	switch e.Op {
	case token.AddAssign:
		op = machine.Add
	case token.SubAssign:
		op = machine.Sub
	case token.MulAssign:
		op = machine.Mul
	case token.DivAssign:
		op = machine.Div
		if !types.IsSigned(types.Promote(lt)) {
			op = machine.Divu
		}
	case token.ModAssign:
		op = machine.Rem
		if !types.IsSigned(types.Promote(lt)) {
			op = machine.Remu
		}
	case token.AndAssign:
		op = machine.And
	case token.OrAssign:
		op = machine.Or
	case token.XorAssign:
		op = machine.Xor
	case token.ShlAssign:
		op = machine.Shl
	case token.ShrAssign:
		op = machine.Shr
		if !types.IsSigned(types.Promote(lt)) {
			op = machine.Shru
		}
	default:
		f.errorf("unsupported compound assignment %s", e.Op)
		op = machine.Add
	}
	f.emit(machine.RR(op, out, old, r))
	f.storeLvalue(e.L, out)
	return out
}

// genStructAssign copies a struct value with the runtime memcpy (structs
// are assigned as wholes; the paper notes checked mode would need an extra
// check here, which ValidateAccess in the interpreter provides).
func (f *fn) genStructAssign(e *ast.Assign, st *types.Struct) machine.Reg {
	dst := f.genAddr(e.L)
	src := f.genAddr(e.R)
	n := f.movImm(int32(st.Size()))
	f.genCallRegs("memcpy", []machine.Reg{dst, src, n}, true)
	return dst
}

// --- loads, stores, calls ---

// loadFrom emits a width- and sign-correct load from [addr+off].
func (f *fn) loadFrom(addr machine.Reg, off int32, t types.Type) machine.Reg {
	r := f.newV()
	op := machine.Ld
	switch tt := types.Decay(t).(type) {
	case *types.Basic:
		switch tt.Kind {
		case types.Char:
			op = machine.LdB
		case types.UChar:
			op = machine.LdBu
		case types.Short:
			op = machine.LdH
		case types.UShort:
			op = machine.LdHu
		}
	}
	f.emit(machine.RI(op, r, addr, off))
	return r
}

// storeTo emits a width-correct store of val to [addr+off].
func (f *fn) storeTo(addr machine.Reg, off int32, t types.Type, val machine.Reg) {
	op := machine.St
	switch tt := types.Decay(t).(type) {
	case *types.Basic:
		switch tt.Kind {
		case types.Char, types.UChar:
			op = machine.StB
		case types.Short, types.UShort:
			op = machine.StH
		}
	}
	in := machine.RI(op, val, addr, off)
	in.Rd = val
	in.Rs1 = addr
	f.emit(in)
}

func (f *fn) genCall(e *ast.Call) machine.Reg {
	// Direct calls by name; indirect calls through a function id.
	name := ""
	if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Obj.Kind == ast.ObjFunc {
		name = id.Obj.Name
	}
	args := make([]machine.Reg, len(e.Args))
	for i, a := range e.Args {
		if _, ok := exprType(a).(*types.Struct); ok {
			f.errorf("passing structs by value is not supported")
		}
		args[i] = f.genExpr(a)
	}
	if name != "" {
		return f.genCallRegsAt(name, args, false, int32(e.Lparen.Line))
	}
	fp := f.genExpr(e.Fun)
	return f.genCallIndirect(fp, args)
}

// genCallRegs emits the stack-based calling sequence. When discard is set
// the result register is not materialized.
func (f *fn) genCallRegs(name string, args []machine.Reg, discard bool) machine.Reg {
	return f.genCallRegsAt(name, args, discard, 0)
}

// genCallRegsAt is genCallRegs with a source line stamped on the Call
// instruction (0 for compiler-synthesized calls), giving heap snapshots
// their allocation-site provenance.
func (f *fn) genCallRegsAt(name string, args []machine.Reg, discard bool, line int32) machine.Reg {
	n := int32(len(args))
	f.emit(machine.Instr{Op: machine.AdjSP, Imm: -4 * n})
	for i, a := range args {
		f.emit(machine.Instr{Op: machine.Arg, Rd: a, Imm: int32(4 * i)})
	}
	var r machine.Reg = machine.NoReg
	if !discard {
		r = f.newV()
	}
	f.emit(machine.Instr{Op: machine.Call, Rd: r, Sym: name, Imm: n, Line: line})
	f.emit(machine.Instr{Op: machine.AdjSP, Imm: 4 * n})
	if discard {
		return machine.NoReg
	}
	return r
}

func (f *fn) genCallIndirect(fp machine.Reg, args []machine.Reg) machine.Reg {
	n := int32(len(args))
	f.emit(machine.Instr{Op: machine.AdjSP, Imm: -4 * n})
	for i, a := range args {
		f.emit(machine.Instr{Op: machine.Arg, Rd: a, Imm: int32(4 * i)})
	}
	r := f.newV()
	f.emit(machine.Instr{Op: machine.CallR, Rd: r, Rs1: fp, Imm: n})
	f.emit(machine.Instr{Op: machine.AdjSP, Imm: 4 * n})
	return r
}
