package codegen

import (
	"gcsafety/internal/cc/ast"
	"gcsafety/internal/machine"
)

// IR is the machine-independent half of a compilation: the static data
// image and every function's virtual-register code, before optimization,
// register allocation and lowering. It is what the pipeline's Codegen
// stage caches — Backend turns one IR into a *machine.Program without
// touching the AST again.
//
// An IR is immutable once Gen returns; Backend copies each function's
// code before the (in-place) backend passes run.
type IR struct {
	// Opts are the options Gen ran under. The gen phase itself consults
	// only Optimize (register-eligibility of locals), but the options
	// travel with the IR so Backend applies the matching backend pipeline.
	Opts    Options
	Data    []byte
	Globals map[string]uint32
	Fns     []*IRFunc // definition order
}

// IRFunc is one function's generated (unoptimized, unallocated) code.
type IRFunc struct {
	Name      string
	ID        int32
	NumParams int
	// SpillBase is the frame size consumed by memory-resident locals; the
	// register allocator places spill slots above it.
	SpillBase int32
	Code      []machine.Instr
}

// Gen runs the front half of the compiler: global layout, string
// interning and per-function virtual-register code generation. All
// diagnostics are gen-phase, so a nil error here guarantees Backend
// succeeds.
func Gen(file *ast.File, opts Options) (*IR, error) {
	c := &compiler{
		opts: opts,
		prog: &machine.Program{
			Funcs:   map[string]*machine.Func{},
			Globals: map[string]uint32{},
		},
		strings: map[string]uint32{},
		funcIDs: map[string]int32{},
	}
	c.layoutGlobals(file)
	ir := &IR{Opts: opts}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			ir.Fns = append(ir.Fns, c.genFunc(fd))
		}
	}
	if len(c.errs) > 0 {
		return nil, &Error{Errs: c.errs}
	}
	ir.Data = c.prog.Data
	ir.Globals = c.prog.Globals
	return ir, nil
}

// Backend runs the back half: per-function optimization (under -O),
// register allocation and lowering. It never fails — every diagnostic
// belongs to Gen — and never mutates ir, so one cached IR can be lowered
// any number of times.
func Backend(ir *IR) *machine.Program {
	prog := &machine.Program{
		Funcs:   map[string]*machine.Func{},
		Globals: ir.Globals,
		Data:    ir.Data,
	}
	for _, fi := range ir.Fns {
		code := append([]machine.Instr(nil), fi.Code...)
		if DebugHook != nil {
			DebugHook("gen:"+fi.Name, code)
		}
		if ir.Opts.Optimize {
			code = optimize(code, ir.Opts)
			if DebugHook != nil {
				DebugHook("opt:"+fi.Name, code)
			}
		}
		code, frame := allocate(code, ir.Opts.Machine, fi.SpillBase)
		code = lower(code, ir.Opts, frame, fi.NumParams)
		prog.Funcs[fi.Name] = &machine.Func{
			Name:      fi.Name,
			Code:      code,
			FrameSize: frame,
			NumParams: fi.NumParams,
			ID:        fi.ID,
		}
		prog.Order = append(prog.Order, fi.Name)
	}
	return prog
}
