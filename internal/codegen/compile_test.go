package codegen

import (
	"strings"
	"testing"

	"gcsafety/internal/cc/parser"
	"gcsafety/internal/machine"
)

func compile(t *testing.T, src string, optimize bool) *machine.Program {
	t.Helper()
	f, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := Compile(f, Options{Optimize: optimize, Machine: machine.SPARCstation10()})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

func compileErr(t *testing.T, src string) error {
	t.Helper()
	f, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Compile(f, Options{Optimize: true, Machine: machine.SPARCstation10()})
	if err == nil {
		t.Fatal("expected a compile error")
	}
	return err
}

func TestCompileProducesAllFunctions(t *testing.T) {
	prog := compile(t, `
int helper(int x) { return x * 2; }
int main() { return helper(21); }
`, true)
	if len(prog.Order) != 2 {
		t.Fatalf("Order = %v", prog.Order)
	}
	for _, name := range []string{"helper", "main"} {
		f, ok := prog.Funcs[name]
		if !ok || f.Size() == 0 {
			t.Errorf("function %s missing or empty", name)
		}
	}
}

func TestGlobalDataImage(t *testing.T) {
	prog := compile(t, `
int scalar = 0x11223344;
short half = 0x55AA;
char byteval = 0x7F;
char text[8] = "hi";
int arr[3] = {1, 2, 3};
char *sptr = "shared";
char *sptr2 = "shared";
int main() { return 0; }
`, true)
	read32 := func(sym string) uint32 {
		off := prog.Globals[sym] - machine.DataBase
		d := prog.Data
		return uint32(d[off]) | uint32(d[off+1])<<8 | uint32(d[off+2])<<16 | uint32(d[off+3])<<24
	}
	if read32("scalar") != 0x11223344 {
		t.Errorf("scalar = %#x", read32("scalar"))
	}
	off := prog.Globals["half"] - machine.DataBase
	if got := uint16(prog.Data[off]) | uint16(prog.Data[off+1])<<8; got != 0x55AA {
		t.Errorf("half = %#x", got)
	}
	if prog.Data[prog.Globals["byteval"]-machine.DataBase] != 0x7F {
		t.Error("byteval wrong")
	}
	toff := prog.Globals["text"] - machine.DataBase
	if string(prog.Data[toff:toff+2]) != "hi" {
		t.Error("char array initializer wrong")
	}
	if read32("arr")+0 == 0 {
		t.Error("arr empty")
	}
	// identical string literals are interned once
	if read32("sptr") != read32("sptr2") {
		t.Error("string literals not interned")
	}
}

func TestEnumConstantsCompileToImmediates(t *testing.T) {
	prog := compile(t, `
enum { LIMIT = 77 };
int main() { return LIMIT; }
`, true)
	found := false
	for _, in := range prog.Funcs["main"].Code {
		if in.Op == machine.Mov && in.HasImm && in.Imm == 77 {
			found = true
		}
	}
	if !found {
		t.Fatalf("enum constant not an immediate:\n%s", prog.Listing())
	}
}

func TestDebugModeKeepsVariablesInMemory(t *testing.T) {
	src := `
int main() {
    int a = 1;
    int b = 2;
    int c = a + b;
    return c;
}
`
	dbg := compile(t, src, false)
	opt := compile(t, src, true)
	countSP := func(p *machine.Program) int {
		n := 0
		for _, in := range p.Funcs["main"].Code {
			if in.Op == machine.LdSP || in.Op == machine.StSP {
				n++
			}
		}
		return n
	}
	if countSP(dbg) <= countSP(opt) {
		t.Fatalf("-g (%d stack ops) should have more memory traffic than -O (%d)",
			countSP(dbg), countSP(opt))
	}
}

func TestOptimizedSmallerOrEqual(t *testing.T) {
	src := `
int f(int *xs, int n) {
    int s = 0;
    int i;
    for (i = 0; i < n; i++) s += xs[i] * 4 + 1;
    return s;
}
`
	dbg := compile(t, src, false)
	opt := compile(t, src, true)
	if opt.Size() > dbg.Size() {
		t.Fatalf("-O (%d instrs) larger than -g (%d)", opt.Size(), dbg.Size())
	}
}

func TestErrorStructByValueParam(t *testing.T) {
	err := compileErr(t, `
struct big { int a; int b; };
int use2(struct big v) { return v.a; }
int main() {
    struct big x;
    x.a = 1;
    return use2(x);
}
`)
	if !strings.Contains(err.Error(), "struct") {
		t.Fatalf("err = %v", err)
	}
}

func TestErrorStaticLocal(t *testing.T) {
	err := compileErr(t, `
int counter() {
    static int n = 0;
    n++;
    return n;
}
int main() { return counter(); }
`)
	if !strings.Contains(err.Error(), "static locals") {
		t.Fatalf("err = %v", err)
	}
}

func TestErrorNonConstGlobalInit(t *testing.T) {
	err := compileErr(t, `
int f();
int x = f();
int main() { return x; }
`)
	if !strings.Contains(err.Error(), "static constant") {
		t.Fatalf("err = %v", err)
	}
}

func TestDisableLoadFolding(t *testing.T) {
	src := `int f(int *xs, int i) { return xs[i]; }`
	f1, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	withFold, err := Compile(f1, Options{Optimize: true, Machine: machine.SPARCstation10()})
	if err != nil {
		t.Fatal(err)
	}
	f2, _ := parser.Parse("t.c", src)
	without, err := Compile(f2, Options{
		Optimize: true, Machine: machine.SPARCstation10(), DisableLoadFolding: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if without.Size() <= withFold.Size() {
		t.Fatalf("disabling folding should grow code: %d vs %d", without.Size(), withFold.Size())
	}
}

func TestPrologueOmittedForEmptyFrame(t *testing.T) {
	prog := compile(t, `int id(int x) { return x; }`, true)
	for _, in := range prog.Funcs["id"].Code {
		if in.Op == machine.AdjSP {
			t.Fatalf("empty frame still has a prologue:\n%s", prog.Listing())
		}
	}
}

func TestFunctionIDsStable(t *testing.T) {
	prog := compile(t, `
int a() { return 1; }
int b() { return 2; }
int main() { return a() + b(); }
`, true)
	ids := map[int32]string{}
	for name, f := range prog.Funcs {
		if f.ID == 0 {
			t.Errorf("%s has zero id", name)
		}
		if other, dup := ids[f.ID]; dup {
			t.Errorf("id %d shared by %s and %s", f.ID, name, other)
		}
		ids[f.ID] = name
	}
}
