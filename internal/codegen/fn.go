package codegen

import (
	"gcsafety/internal/cc/ast"
	"gcsafety/internal/cc/parser"
	"gcsafety/internal/cc/types"
	"gcsafety/internal/machine"
)

// DebugHook, when set, receives intermediate code at each pipeline stage
// (used by tests and debugging tools; nil in production).
var DebugHook func(stage string, code []machine.Instr)

// fn compiles a single function to virtual-register code, which then flows
// through optimization, register allocation and lowering.
type fn struct {
	c      *compiler
	fd     *ast.FuncDecl
	code   []machine.Instr
	nextV  machine.Reg
	nextL  int32
	frame  int32
	slots  map[*ast.Object]int32
	vregs  map[*ast.Object]machine.Reg
	breaks []int32
	conts  []int32
}

// genFunc generates one function's virtual-register code: the gen half of
// the per-function pipeline. The backend passes (optimize, allocate,
// lower) run later, in Backend, over a copy of the returned code.
func (c *compiler) genFunc(fd *ast.FuncDecl) *IRFunc {
	f := &fn{
		c:     c,
		fd:    fd,
		nextV: machine.VRegBase,
		slots: map[*ast.Object]int32{},
		vregs: map[*ast.Object]machine.Reg{},
	}
	// The function's id is assigned before its body generates so indirect
	// references to later functions number identically to the fused
	// single-pass compiler this replaced.
	id := c.funcRefID(fd.Obj.Name)
	// Parameter and local variable placement. In the optimized pipeline,
	// scalar locals whose address is never taken live in virtual
	// registers; in the debuggable pipeline every variable has a memory
	// home at all times.
	f.emit(machine.Instr{Op: machine.AdjSP, Imm: 0}) // patched with -frame
	for i, p := range fd.Params {
		if f.vregEligible(p) {
			v := f.newV()
			f.vregs[p] = v
			// incoming arg i lives at [sp + frame + 4*i]; the offset is
			// patched during lowering (frame not yet known), marked by the
			// special comment.
			in := machine.Instr{Op: machine.LdSP, Rd: v, Imm: int32(4 * i), Comment: "param"}
			f.emit(in)
		} else {
			f.paramSlot(p, i)
		}
	}
	f.genBlock(fd.Body)
	// Fall-through return (for void functions and main's implicit return).
	f.emit(machine.Instr{Op: machine.Ret, Rs1: machine.NoReg})

	return &IRFunc{
		Name:      fd.Obj.Name,
		ID:        id,
		NumParams: len(fd.Params),
		SpillBase: f.frame,
		Code:      f.code,
	}
}

func (f *fn) emit(in machine.Instr) int {
	f.code = append(f.code, in)
	return len(f.code) - 1
}

func (f *fn) newV() machine.Reg {
	v := f.nextV
	f.nextV++
	return v
}

func (f *fn) newLabel() int32 {
	l := f.nextL
	f.nextL++
	return l
}

func (f *fn) label(l int32) { f.emit(machine.Instr{Op: machine.Label, Imm: l}) }
func (f *fn) jmp(l int32)   { f.emit(machine.Instr{Op: machine.Jmp, Imm: l}) }

func (f *fn) errorf(format string, args ...any) {
	f.c.errorf("%s: "+format, append([]any{f.fd.Obj.Name}, args...)...)
}

// vregEligible reports whether a variable may live in a register: scalar
// int/pointer, address never taken, optimized pipeline only.
func (f *fn) vregEligible(o *ast.Object) bool {
	if !f.c.opts.Optimize || o.AddrTaken {
		return false
	}
	switch o.Type.(type) {
	case *types.Array, *types.Struct:
		// Aggregates are memory objects; their decayed pointer form must
		// not promote them to registers.
		return false
	}
	switch t := types.Decay(o.Type).(type) {
	case *types.Pointer:
		return true
	case *types.Enum:
		return true
	case *types.Basic:
		return t.Kind == types.Int || t.Kind == types.UInt
	}
	return false
}

// varReg returns the virtual register housing a register-resident
// variable, allocating one lazily for annotator-introduced temporaries
// (ObjTemp objects never pass through a DeclStmt).
func (f *fn) varReg(o *ast.Object) (machine.Reg, bool) {
	if v, ok := f.vregs[o]; ok {
		return v, true
	}
	if o.Kind == ast.ObjTemp && f.vregEligible(o) {
		v := f.newV()
		f.vregs[o] = v
		return v, true
	}
	return machine.NoReg, false
}

// slotFor returns (allocating on demand) the stack offset of a local.
func (f *fn) slotFor(o *ast.Object) int32 {
	if off, ok := f.slots[o]; ok {
		return off
	}
	size := int32(o.Type.Size())
	if size <= 0 {
		size = 4
	}
	align := int32(o.Type.Align())
	if align < 1 {
		align = 1
	}
	f.frame = (f.frame + align - 1) / align * align
	off := f.frame
	f.frame += size
	f.slots[o] = off
	return off
}

// paramSlot records that parameter i's memory home is its incoming
// argument slot. Incoming slots sit above the frame; they are encoded as
// offset = paramBase + 4*i and fixed up in lowering once the frame size is
// known. paramBase is a large sentinel that cannot collide with real
// locals.
const paramBase = 1 << 24

func (f *fn) paramSlot(o *ast.Object, i int) {
	f.slots[o] = paramBase + int32(4*i)
}

// --- statements ---

func (f *fn) genBlock(b *ast.Block) {
	for _, s := range b.Stmts {
		f.genStmt(s)
	}
}

func (f *fn) genStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		f.genExpr(s.X)
	case *ast.DeclStmt:
		for _, d := range s.Decls {
			f.genLocalDecl(d)
		}
	case *ast.Block:
		f.genBlock(s)
	case *ast.Empty:
	case *ast.If:
		elseL, endL := f.newLabel(), f.newLabel()
		c := f.genExpr(s.Cond)
		f.emit(machine.Instr{Op: machine.Bz, Rs1: c, Imm: elseL})
		f.genStmt(s.Then)
		if s.Else != nil {
			f.jmp(endL)
			f.label(elseL)
			f.genStmt(s.Else)
			f.label(endL)
		} else {
			f.label(elseL)
		}
	case *ast.While:
		top, end := f.newLabel(), f.newLabel()
		f.pushLoop(end, top)
		f.label(top)
		c := f.genExpr(s.Cond)
		f.emit(machine.Instr{Op: machine.Bz, Rs1: c, Imm: end})
		f.genStmt(s.Body)
		f.jmp(top)
		f.label(end)
		f.popLoop()
	case *ast.DoWhile:
		top, cond, end := f.newLabel(), f.newLabel(), f.newLabel()
		f.pushLoop(end, cond)
		f.label(top)
		f.genStmt(s.Body)
		f.label(cond)
		c := f.genExpr(s.Cond)
		f.emit(machine.Instr{Op: machine.Bnz, Rs1: c, Imm: top})
		f.label(end)
		f.popLoop()
	case *ast.For:
		if s.Init != nil {
			f.genStmt(s.Init)
		}
		top, post, end := f.newLabel(), f.newLabel(), f.newLabel()
		f.pushLoop(end, post)
		f.label(top)
		if s.Cond != nil {
			c := f.genExpr(s.Cond)
			f.emit(machine.Instr{Op: machine.Bz, Rs1: c, Imm: end})
		}
		f.genStmt(s.Body)
		f.label(post)
		if s.Post != nil {
			f.genExpr(s.Post)
		}
		f.jmp(top)
		f.label(end)
		f.popLoop()
	case *ast.Return:
		if s.X != nil {
			v := f.genExpr(s.X)
			f.emit(machine.Instr{Op: machine.Ret, Rs1: v})
		} else {
			f.emit(machine.Instr{Op: machine.Ret, Rs1: machine.NoReg})
		}
	case *ast.Break:
		if len(f.breaks) == 0 {
			f.errorf("break outside loop or switch")
			return
		}
		f.jmp(f.breaks[len(f.breaks)-1])
	case *ast.Continue:
		if len(f.conts) == 0 || f.conts[len(f.conts)-1] < 0 {
			f.errorf("continue outside loop")
			return
		}
		f.jmp(f.conts[len(f.conts)-1])
	case *ast.Switch:
		f.genSwitch(s)
	}
}

func (f *fn) pushLoop(brk, cont int32) {
	f.breaks = append(f.breaks, brk)
	f.conts = append(f.conts, cont)
}

func (f *fn) popLoop() {
	f.breaks = f.breaks[:len(f.breaks)-1]
	f.conts = f.conts[:len(f.conts)-1]
}

func (f *fn) genSwitch(s *ast.Switch) {
	v := f.genExpr(s.X)
	end := f.newLabel()
	// break applies; continue passes through to the enclosing loop
	f.breaks = append(f.breaks, end)
	f.conts = append(f.conts, f.innerCont())
	labels := make([]int32, len(s.Cases))
	var defaultL int32 = end
	for i, cc := range s.Cases {
		labels[i] = f.newLabel()
		if cc.Vals == nil {
			defaultL = labels[i]
		}
		for _, val := range cc.Vals {
			cv, ok := parser.EvalConst(val)
			if !ok {
				f.errorf("non-constant case label")
				continue
			}
			t := f.newV()
			f.emit(machine.RI(machine.CmpEq, t, v, int32(cv)))
			f.emit(machine.Instr{Op: machine.Bnz, Rs1: t, Imm: labels[i]})
		}
	}
	f.jmp(defaultL)
	for i, cc := range s.Cases {
		f.label(labels[i])
		for _, st := range cc.Stmts {
			f.genStmt(st)
		}
		// fallthrough to the next clause, as in C
	}
	f.label(end)
	f.breaks = f.breaks[:len(f.breaks)-1]
	f.conts = f.conts[:len(f.conts)-1]
}

func (f *fn) innerCont() int32 {
	if len(f.conts) == 0 {
		return -1
	}
	return f.conts[len(f.conts)-1]
}

func (f *fn) genLocalDecl(d *ast.VarDecl) {
	o := d.Obj
	if o.Storage == ast.Static {
		f.errorf("static locals are not supported (%s)", o.Name)
		return
	}
	if f.vregEligible(o) {
		v := f.newV()
		f.vregs[o] = v
		if d.Init != nil {
			r := f.genExpr(d.Init)
			f.emit(machine.RR(machine.Mov, v, r, machine.NoReg))
		}
		return
	}
	off := f.slotFor(o)
	switch {
	case d.Init != nil:
		if arr, ok := o.Type.(*types.Array); ok {
			if s, ok2 := ast.Unparen(d.Init).(*ast.StrLit); ok2 {
				f.initLocalFromString(off, arr, s.Val)
				return
			}
		}
		r := f.genExpr(d.Init)
		f.storeSlot(off, o.Type, r)
	case d.InitList != nil:
		f.initLocalList(off, o.Type, d.InitList)
	}
}

func (f *fn) initLocalFromString(off int32, arr *types.Array, s string) {
	addr := f.c.internString(s)
	// copy via runtime memcpy: cheap and matches unpreprocessed libc
	src := f.newV()
	f.emit(machine.RI(machine.Mov, src, machine.NoReg, int32(addr)))
	dst := f.newV()
	f.emit(machine.Instr{Op: machine.LeaSP, Rd: dst, Imm: off})
	n := len(s) + 1
	if n > arr.Len {
		n = arr.Len
	}
	ln := f.newV()
	f.emit(machine.RI(machine.Mov, ln, machine.NoReg, int32(n)))
	f.genCallRegs("memcpy", []machine.Reg{dst, src, ln}, true)
}

func (f *fn) initLocalList(off int32, t types.Type, list []ast.Expr) {
	switch t := t.(type) {
	case *types.Array:
		es := int32(t.Elem.Size())
		for i, e := range list {
			r := f.genExpr(e)
			f.storeSlot(off+int32(i)*es, t.Elem, r)
		}
	case *types.Struct:
		for i, e := range list {
			if i >= len(t.Fields) {
				f.errorf("too many initializers")
				return
			}
			r := f.genExpr(e)
			f.storeSlot(off+int32(t.Fields[i].Off), t.Fields[i].Type, r)
		}
	default:
		f.errorf("brace initializer for scalar")
	}
}

// storeSlot stores r into the stack slot at off with the width of t.
func (f *fn) storeSlot(off int32, t types.Type, r machine.Reg) {
	switch sizeOf(t) {
	case 1, 2:
		// sub-word slots go through an address (StSP is word-sized)
		a := f.newV()
		f.emit(machine.Instr{Op: machine.LeaSP, Rd: a, Imm: off})
		f.storeTo(a, 0, t, r)
	default:
		f.emit(machine.Instr{Op: machine.StSP, Rd: r, Imm: off})
	}
}

func sizeOf(t types.Type) int {
	s := types.Decay(t).Size()
	if s <= 0 {
		return 4
	}
	return s
}
