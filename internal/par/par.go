// Package par centralizes the process's parallelism policy: every
// subsystem that fans work out over goroutines — the bench harness's
// table-cell measurement, the differential matrix runner, and the gcsafed
// worker pool — sizes itself from the same default so one knob
// (GCSAFETY_PARALLEL, or gcsafed -parallel) tunes them all. See DESIGN.md
// "Parallelism policy".
package par

import (
	"os"
	"runtime"
	"strconv"
)

// EnvVar overrides the default parallelism degree process-wide.
const EnvVar = "GCSAFETY_PARALLEL"

// Default returns the shared parallelism degree: GCSAFETY_PARALLEL when it
// is set to a positive integer, else GOMAXPROCS. Malformed or nonpositive
// values are ignored rather than fatal: a misconfigured environment should
// degrade to the hardware default, not take the daemon down.
func Default() int {
	if v := os.Getenv(EnvVar); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs f(i) for every i in [0, n) on at most width goroutines.
// Iterations are claimed in index order but complete in any order; callers
// needing deterministic output must write results into index i of a
// preallocated slice and assemble sequentially afterwards. width < 1 is
// treated as 1; width or n of 1 runs inline with no goroutines at all, so
// the sequential path stays allocation- and scheduler-free.
func ForEach(width, n int, f func(i int)) {
	if n <= 0 {
		return
	}
	if width > n {
		width = n
	}
	if width <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	next := make(chan int)
	done := make(chan struct{})
	for w := 0; w < width; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := range next {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	for w := 0; w < width; w++ {
		<-done
	}
}
