// Package parser implements a hand-written recursive-descent parser and
// one-pass type checker for the ANSI C subset used by the workloads (the
// calibration note for this reproduction: "no strong C-frontend libraries;
// manual parsing"). The parser is typedef-aware in the usual C fashion: the
// lexer reports registered typedef names as TypeName tokens.
package parser

import (
	"fmt"

	"gcsafety/internal/cc/ast"
	"gcsafety/internal/cc/lexer"
	"gcsafety/internal/cc/token"
	"gcsafety/internal/cc/types"
)

// TokenSource is the parser's view of its token supply. *lexer.Lexer is
// the live implementation; *lexer.Replay re-delivers a cached lexer.Scan so
// a content-addressed pipeline can share one scan across many parses.
// DefineType/IsType carry the typedef feedback channel C parsing requires.
type TokenSource interface {
	Next() token.Token
	DefineType(name string)
	IsType(name string) bool
	Errs() []error
}

// Parse parses a complete translation unit. name is used in diagnostics.
// The returned file is fully resolved and type-checked; err aggregates all
// diagnostics encountered.
func Parse(name, src string) (*ast.File, error) {
	return ParseTokens(name, src, lexer.New(src))
}

// ParseTokens parses a translation unit from an explicit token source.
// Behavior is identical to Parse when ts is a fresh lexer over src; the
// pipeline's Parse stage passes a lexer.Replay instead, so identical text
// is scanned once no matter how many treatment cells parse it.
func ParseTokens(name, src string, ts TokenSource) (*ast.File, error) {
	p := &Parser{
		lex:  ts,
		file: &ast.File{Name: name, Source: src},
	}
	p.pushScope()
	p.declareBuiltins()
	p.next()
	p.parseFile()
	p.popScope()
	for _, e := range p.lex.Errs() {
		p.errs = append(p.errs, fmt.Errorf("%s: %v", name, e))
	}
	if len(p.errs) > 0 {
		return p.file, &ErrorList{Errs: p.errs}
	}
	return p.file, nil
}

// ErrorList aggregates parse and type errors.
type ErrorList struct{ Errs []error }

func (e *ErrorList) Error() string {
	if len(e.Errs) == 1 {
		return e.Errs[0].Error()
	}
	return fmt.Sprintf("%v (and %d more errors)", e.Errs[0], len(e.Errs)-1)
}

// scope is one lexical scope: ordinary identifiers, typedef names and
// struct/union/enum tags occupy their proper separate name spaces.
type scope struct {
	objects  map[string]*ast.Object
	typedefs map[string]types.Type
	tags     map[string]types.Type
}

// Parser holds the parse state.
type Parser struct {
	lex    TokenSource
	tok    token.Token
	ahead  []token.Token // pushback queue for lookahead
	file   *ast.File
	errs   []error
	scopes []*scope
	cur    *ast.FuncDecl
	seq    int
}

type bailout struct{}

func (p *Parser) errorf(pos token.Pos, format string, args ...any) {
	if len(p.errs) > 100 {
		panic(bailout{})
	}
	p.errs = append(p.errs, fmt.Errorf("%s:%s: %s", p.file.Name, pos, fmt.Sprintf(format, args...)))
}

func (p *Parser) next() {
	if len(p.ahead) > 0 {
		p.tok = p.ahead[0]
		p.ahead = p.ahead[1:]
		return
	}
	p.tok = p.lex.Next()
}

// peek returns the token n positions ahead (0 = the token after p.tok).
func (p *Parser) peek(n int) token.Token {
	for len(p.ahead) <= n {
		p.ahead = append(p.ahead, p.lex.Next())
	}
	return p.ahead[n]
}

func (p *Parser) expect(k token.Kind) token.Token {
	t := p.tok
	if t.Kind != k {
		p.errorf(t.Pos, "expected %q, found %q", k.String(), t.Text)
		panic(bailout{})
	}
	p.next()
	return t
}

// accept consumes the current token if it has kind k.
func (p *Parser) accept(k token.Kind) (token.Token, bool) {
	if p.tok.Kind == k {
		t := p.tok
		p.next()
		return t, true
	}
	return token.Token{}, false
}

func (p *Parser) pushScope() {
	p.scopes = append(p.scopes, &scope{
		objects:  map[string]*ast.Object{},
		typedefs: map[string]types.Type{},
		tags:     map[string]types.Type{},
	})
}

func (p *Parser) popScope() { p.scopes = p.scopes[:len(p.scopes)-1] }

func (p *Parser) topScope() *scope { return p.scopes[len(p.scopes)-1] }

func (p *Parser) lookup(name string) *ast.Object {
	for i := len(p.scopes) - 1; i >= 0; i-- {
		if o, ok := p.scopes[i].objects[name]; ok {
			return o
		}
	}
	return nil
}

func (p *Parser) lookupTypedef(name string) types.Type {
	for i := len(p.scopes) - 1; i >= 0; i-- {
		if t, ok := p.scopes[i].typedefs[name]; ok {
			return t
		}
	}
	return nil
}

func (p *Parser) lookupTag(name string) types.Type {
	for i := len(p.scopes) - 1; i >= 0; i-- {
		if t, ok := p.scopes[i].tags[name]; ok {
			return t
		}
	}
	return nil
}

func (p *Parser) declare(o *ast.Object, pos token.Pos) {
	s := p.topScope()
	if old, ok := s.objects[o.Name]; ok {
		// Redeclaration: allow matching extern/prototype pairs.
		if old.Kind == ast.ObjFunc && o.Kind == ast.ObjFunc {
			s.objects[o.Name] = o
			return
		}
		if old.Storage == ast.Extern || o.Storage == ast.Extern {
			return
		}
		p.errorf(pos, "redeclaration of %q", o.Name)
		return
	}
	p.seq++
	o.Seq = p.seq
	s.objects[o.Name] = o
}

// declareBuiltins installs the runtime interface the workloads compile
// against: the collecting allocator, the checking primitives and the
// unpreprocessed "standard library" (the paper: "Standard C libraries were
// not preprocessed").
func (p *Parser) declareBuiltins() {
	charPtr := types.PointerTo(types.CharType)
	voidPtr := types.PointerTo(types.VoidType)
	decl := func(name string, ret types.Type, params []types.Param, variadic bool) {
		o := &ast.Object{
			Name:    name,
			Kind:    ast.ObjFunc,
			Storage: ast.Extern,
			Global:  true,
			Type:    &types.Func{Ret: ret, Params: params, Variadic: variadic},
		}
		p.topScope().objects[name] = o
	}
	pp := func(ts ...types.Type) []types.Param {
		var out []types.Param
		for _, t := range ts {
			out = append(out, types.Param{Type: t})
		}
		return out
	}
	uint_ := types.UIntType
	int_ := types.IntType
	// KEEP_LIVE is declared old-style so annotated output re-parses; the
	// real implementation is the opaque pseudo-instruction (or, portably,
	// "a call to an external function whose implementation is unavailable
	// to the compiler for analysis, but which actually just returns its
	// first argument").
	p.topScope().objects["KEEP_LIVE"] = &ast.Object{
		Name: "KEEP_LIVE", Kind: ast.ObjFunc, Storage: ast.Extern, Global: true,
		Type: &types.Func{Ret: voidPtr, OldStyle: true},
	}
	decl("malloc", voidPtr, pp(uint_), false)
	decl("calloc", voidPtr, pp(uint_, uint_), false)
	decl("realloc", voidPtr, pp(voidPtr, uint_), false)
	decl("free", types.VoidType, pp(voidPtr), false)
	decl("GC_malloc", voidPtr, pp(uint_), false)
	decl("GC_same_obj", voidPtr, pp(voidPtr, voidPtr), false)
	decl("GC_base", voidPtr, pp(voidPtr), false)
	decl("GC_pre_incr", voidPtr, pp(types.PointerTo(voidPtr), int_), false)
	decl("GC_post_incr", voidPtr, pp(types.PointerTo(voidPtr), int_), false)
	decl("GC_free", types.VoidType, pp(voidPtr), false)
	decl("GC_gcollect", types.VoidType, nil, false)
	// join_threads blocks until every worker thread has finished (a no-op
	// in single-thread execution).
	decl("join_threads", types.VoidType, nil, false)
	// string.h / stdio.h subset, implemented natively by the runtime.
	decl("strlen", uint_, pp(charPtr), false)
	decl("strcpy", charPtr, pp(charPtr, charPtr), false)
	decl("strncpy", charPtr, pp(charPtr, charPtr, uint_), false)
	decl("strcmp", int_, pp(charPtr, charPtr), false)
	decl("strncmp", int_, pp(charPtr, charPtr, uint_), false)
	decl("strcat", charPtr, pp(charPtr, charPtr), false)
	decl("strchr", charPtr, pp(charPtr, int_), false)
	decl("memcpy", voidPtr, pp(voidPtr, voidPtr, uint_), false)
	decl("memmove", voidPtr, pp(voidPtr, voidPtr, uint_), false)
	decl("memset", voidPtr, pp(voidPtr, int_, uint_), false)
	decl("memcmp", int_, pp(voidPtr, voidPtr, uint_), false)
	decl("putchar", int_, pp(int_), false)
	decl("puts", int_, pp(charPtr), false)
	decl("print_int", types.VoidType, pp(int_), false)
	decl("print_str", types.VoidType, pp(charPtr), false)
	decl("getchar", int_, nil, false)
	decl("abort", types.VoidType, nil, false)
	decl("exit", types.VoidType, pp(int_), false)
	decl("assert_true", types.VoidType, pp(int_), false)
	decl("rand_next", uint_, nil, false)
}

// parseFile parses the translation unit.
func (p *Parser) parseFile() {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(bailout); !ok {
				panic(r)
			}
		}
	}()
	for p.tok.Kind != token.EOF {
		p.parseTopLevel()
	}
}

func (p *Parser) parseTopLevel() {
	defer p.sync()
	at := p.tok.Pos
	storage, base, isTypedef := p.parseDeclSpecifiers()
	// A bare `struct s { ... };` or `enum {...};` defines the tag only.
	if _, ok := p.accept(token.Semi); ok {
		return
	}
	first := true
	for {
		name, typ, npos := p.parseDeclarator(base)
		if isTypedef {
			if name == "" {
				p.errorf(npos, "typedef requires a name")
			} else {
				p.topScope().typedefs[name] = typ
				p.lex.DefineType(name)
			}
		} else if ft, ok := typ.(*types.Func); ok && first && p.tok.Kind == token.LBrace {
			p.parseFuncDef(name, ft, storage, at)
			return
		} else {
			p.finishVarDecl(name, typ, storage, at, npos, true)
		}
		first = false
		if _, ok := p.accept(token.Comma); !ok {
			break
		}
	}
	p.expect(token.Semi)
}

// sync recovers from a bailout panic by skipping to a likely declaration or
// statement boundary.
func (p *Parser) sync() {
	r := recover()
	if r == nil {
		return
	}
	if _, ok := r.(bailout); !ok {
		panic(r)
	}
	if len(p.errs) > 100 {
		panic(bailout{}) // give up entirely; caught in parseFile
	}
	depth := 0
	for p.tok.Kind != token.EOF {
		switch p.tok.Kind {
		case token.Semi:
			if depth == 0 {
				p.next()
				return
			}
		case token.LBrace:
			depth++
		case token.RBrace:
			depth--
			if depth <= 0 {
				p.next()
				return
			}
		}
		p.next()
	}
}

// finishVarDecl handles the initializer and declares the object. global
// declarations go straight into file.Decls; local ones are returned via
// p.pendingDecls by parseDeclStmt.
func (p *Parser) finishVarDecl(name string, typ types.Type, storage ast.Storage, at token.Pos, npos token.Pos, global bool) *ast.VarDecl {
	if name == "" {
		p.errorf(npos, "declarator requires a name")
		return nil
	}
	kind := ast.ObjVar
	if ft, ok := typ.(*types.Func); ok {
		_ = ft
		kind = ast.ObjFunc
		storage = ast.Extern
	}
	obj := &ast.Object{Name: name, Kind: kind, Type: typ, Storage: storage, Global: global}
	if global && storage != ast.Static {
		// file-scope objects default to external linkage
		if storage == ast.Auto || storage == ast.Register {
			obj.Storage = ast.Extern
		}
	}
	d := &ast.VarDecl{Obj: obj, At: at}
	if _, ok := p.accept(token.Assign); ok {
		p.parseInitializer(d)
	}
	d.EndOff = p.tok.Pos.Off
	// Arrays with inferred length take it from the initializer.
	if arr, ok := typ.(*types.Array); ok && arr.Len < 0 {
		switch {
		case d.InitList != nil:
			arr.Len = len(d.InitList)
		case d.Init != nil:
			if s, ok := ast.Unparen(d.Init).(*ast.StrLit); ok {
				arr.Len = len(s.Val) + 1
			}
		}
	}
	p.declare(obj, npos)
	if global && kind == ast.ObjVar {
		p.file.Decls = append(p.file.Decls, d)
	}
	return d
}

func (p *Parser) parseInitializer(d *ast.VarDecl) {
	if p.tok.Kind == token.LBrace {
		p.next()
		for p.tok.Kind != token.RBrace && p.tok.Kind != token.EOF {
			if p.tok.Kind == token.LBrace {
				// Nested braces: flatten (sufficient for arrays of structs
				// with scalar members, which is all the workloads use).
				p.next()
				for p.tok.Kind != token.RBrace && p.tok.Kind != token.EOF {
					d.InitList = append(d.InitList, p.parseAssignExpr())
					if _, ok := p.accept(token.Comma); !ok {
						break
					}
				}
				p.expect(token.RBrace)
			} else {
				d.InitList = append(d.InitList, p.parseAssignExpr())
			}
			if _, ok := p.accept(token.Comma); !ok {
				break
			}
		}
		p.expect(token.RBrace)
		if d.InitList == nil {
			d.InitList = []ast.Expr{}
		}
		return
	}
	d.Init = p.parseAssignExpr()
}

func (p *Parser) parseFuncDef(name string, ft *types.Func, storage ast.Storage, at token.Pos) {
	obj := &ast.Object{Name: name, Kind: ast.ObjFunc, Type: ft, Storage: storage, Global: true}
	p.declare(obj, at)
	fd := &ast.FuncDecl{Obj: obj, FType: ft, At: at}
	p.cur = fd
	p.pushScope()
	for i := range ft.Params {
		prm := ft.Params[i]
		if prm.Name == "" {
			p.errorf(at, "parameter %d of %s has no name", i+1, name)
			continue
		}
		po := &ast.Object{Name: prm.Name, Kind: ast.ObjParam, Type: prm.Type}
		p.declare(po, at)
		fd.Params = append(fd.Params, po)
	}
	fd.Body = p.parseBlock()
	p.popScope()
	p.cur = nil
	p.file.Decls = append(p.file.Decls, fd)
}

// NewTemp synthesizes a fresh temporary object of the given type for fn.
// It is used by the gcsafe annotation pass ("we assume that temporaries
// have already been introduced").
func NewTemp(fn *ast.FuncDecl, t types.Type) *ast.Object {
	o := &ast.Object{
		Name: fmt.Sprintf("__tmp%d", len(fn.Temps)+1),
		Kind: ast.ObjTemp,
		Type: t,
	}
	fn.Temps = append(fn.Temps, o)
	return o
}
