package parser

import (
	"gcsafety/internal/cc/ast"
	"gcsafety/internal/cc/token"
	"gcsafety/internal/cc/types"
)

func (p *Parser) parseBlock() *ast.Block {
	lb := p.expect(token.LBrace)
	p.pushScope()
	b := &ast.Block{Lbrace: lb.Pos}
	for p.tok.Kind != token.RBrace && p.tok.Kind != token.EOF {
		b.Stmts = append(b.Stmts, p.parseStmtSynced())
	}
	rb := p.expect(token.RBrace)
	b.Rbrace = rb.End
	p.popScope()
	return b
}

// parseStmtSynced parses one statement, recovering locally on errors.
func (p *Parser) parseStmtSynced() (s ast.Stmt) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(bailout); !ok {
				panic(r)
			}
			if len(p.errs) > 100 {
				panic(bailout{})
			}
			p.skipToStmtBoundary()
			s = &ast.Empty{SemiPos: p.tok.Pos}
		}
	}()
	return p.parseStmt()
}

func (p *Parser) skipToStmtBoundary() {
	depth := 0
	for p.tok.Kind != token.EOF {
		switch p.tok.Kind {
		case token.Semi:
			if depth == 0 {
				p.next()
				return
			}
		case token.LBrace:
			depth++
		case token.RBrace:
			if depth == 0 {
				return
			}
			depth--
		}
		p.next()
	}
}

func (p *Parser) parseStmt() ast.Stmt {
	switch p.tok.Kind {
	case token.LBrace:
		return p.parseBlock()
	case token.Semi:
		s := &ast.Empty{SemiPos: p.tok.Pos}
		p.next()
		return s
	case token.KwIf:
		kw := p.tok.Pos
		p.next()
		p.expect(token.LParen)
		cond := p.parseExpr()
		p.requireScalar(kw, cond)
		p.expect(token.RParen)
		then := p.parseStmtSynced()
		var els ast.Stmt
		if _, ok := p.accept(token.KwElse); ok {
			els = p.parseStmtSynced()
		}
		return &ast.If{Cond: cond, Then: then, Else: els, KwPos: kw}
	case token.KwWhile:
		kw := p.tok.Pos
		p.next()
		p.expect(token.LParen)
		cond := p.parseExpr()
		p.requireScalar(kw, cond)
		p.expect(token.RParen)
		body := p.parseStmtSynced()
		return &ast.While{Cond: cond, Body: body, KwPos: kw}
	case token.KwDo:
		kw := p.tok.Pos
		p.next()
		body := p.parseStmtSynced()
		p.expect(token.KwWhile)
		p.expect(token.LParen)
		cond := p.parseExpr()
		p.expect(token.RParen)
		p.expect(token.Semi)
		return &ast.DoWhile{Body: body, Cond: cond, KwPos: kw}
	case token.KwFor:
		return p.parseFor()
	case token.KwReturn:
		kw := p.tok.Pos
		p.next()
		var x ast.Expr
		if p.tok.Kind != token.Semi {
			x = p.parseExpr()
			if p.cur != nil {
				p.checkAssignable(kw, p.cur.FType.Ret, x, token.Assign)
			}
		} else if p.cur != nil && !types.IsVoid(p.cur.FType.Ret) {
			// `return;` in a non-void function: tolerated, as pre-ANSI code
			// (and gcc) allow it.
			_ = kw
		}
		p.expect(token.Semi)
		return &ast.Return{X: x, KwPos: kw}
	case token.KwBreak:
		kw := p.tok.Pos
		p.next()
		p.expect(token.Semi)
		return &ast.Break{KwPos: kw}
	case token.KwContinue:
		kw := p.tok.Pos
		p.next()
		p.expect(token.Semi)
		return &ast.Continue{KwPos: kw}
	case token.KwSwitch:
		return p.parseSwitch()
	case token.KwGoto:
		p.errorf(p.tok.Pos, "goto is not supported by this front end")
		panic(bailout{})
	}
	if p.startsDecl() {
		return p.parseDeclStmt()
	}
	x := p.parseExpr()
	semi := p.expect(token.Semi)
	return &ast.ExprStmt{X: x, Semi: semi.End}
}

func (p *Parser) parseDeclStmt() *ast.DeclStmt {
	at := p.tok.Pos
	storage, base, isTypedef := p.parseDeclSpecifiers()
	ds := &ast.DeclStmt{At: at}
	if _, ok := p.accept(token.Semi); ok {
		return ds // bare struct/enum definition
	}
	for {
		name, typ, npos := p.parseDeclarator(base)
		if isTypedef {
			if name == "" {
				p.errorf(npos, "typedef requires a name")
			} else {
				p.topScope().typedefs[name] = typ
				p.lex.DefineType(name)
			}
		} else {
			d := p.finishVarDecl(name, typ, storage, at, npos, false)
			if d != nil {
				ds.Decls = append(ds.Decls, d)
			}
		}
		if _, ok := p.accept(token.Comma); !ok {
			break
		}
	}
	p.expect(token.Semi)
	return ds
}

func (p *Parser) parseFor() ast.Stmt {
	kw := p.tok.Pos
	p.next()
	p.expect(token.LParen)
	p.pushScope() // C89 has no for-scope declarations, but harmless
	defer p.popScope()
	f := &ast.For{KwPos: kw}
	if p.tok.Kind != token.Semi {
		if p.startsDecl() {
			f.Init = p.parseDeclStmt()
		} else {
			x := p.parseExpr()
			semi := p.expect(token.Semi)
			f.Init = &ast.ExprStmt{X: x, Semi: semi.End}
		}
	} else {
		p.next()
	}
	if p.tok.Kind != token.Semi {
		f.Cond = p.parseExpr()
		p.requireScalar(kw, f.Cond)
	}
	p.expect(token.Semi)
	if p.tok.Kind != token.RParen {
		f.Post = p.parseExpr()
	}
	p.expect(token.RParen)
	f.Body = p.parseStmtSynced()
	return f
}

func (p *Parser) parseSwitch() ast.Stmt {
	kw := p.tok.Pos
	p.next()
	p.expect(token.LParen)
	x := p.parseExpr()
	if !types.IsInteger(valueType(x)) {
		p.errorf(kw, "switch expression must have integer type")
	}
	p.expect(token.RParen)
	p.expect(token.LBrace)
	p.pushScope()
	sw := &ast.Switch{X: x, KwPos: kw}
	var cur *ast.CaseClause
	for p.tok.Kind != token.RBrace && p.tok.Kind != token.EOF {
		switch p.tok.Kind {
		case token.KwCase:
			cp := p.tok.Pos
			p.next()
			val := p.parseCondExpr()
			if _, ok := p.evalConst(val); !ok {
				p.errorf(cp, "case label is not a constant expression")
			}
			p.expect(token.Colon)
			// consecutive case labels share one clause
			if cur == nil || len(cur.Stmts) > 0 || cur.Vals == nil {
				cur = &ast.CaseClause{KwPos: cp}
				sw.Cases = append(sw.Cases, cur)
			}
			cur.Vals = append(cur.Vals, val)
		case token.KwDefault:
			cp := p.tok.Pos
			p.next()
			p.expect(token.Colon)
			cur = &ast.CaseClause{KwPos: cp}
			sw.Cases = append(sw.Cases, cur)
		default:
			if cur == nil {
				p.errorf(p.tok.Pos, "statement in switch before any case label")
				cur = &ast.CaseClause{KwPos: p.tok.Pos, Vals: []ast.Expr{}}
				sw.Cases = append(sw.Cases, cur)
			}
			cur.Stmts = append(cur.Stmts, p.parseStmtSynced())
		}
	}
	p.expect(token.RBrace)
	p.popScope()
	return sw
}
