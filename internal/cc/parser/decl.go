package parser

import (
	"gcsafety/internal/cc/ast"
	"gcsafety/internal/cc/token"
	"gcsafety/internal/cc/types"
)

// startsDecl reports whether the current token can begin a declaration.
func (p *Parser) startsDecl() bool {
	switch p.tok.Kind {
	case token.KwVoid, token.KwChar, token.KwShort, token.KwInt, token.KwLong,
		token.KwSigned, token.KwUnsigned, token.KwFloat, token.KwDouble,
		token.KwStruct, token.KwUnion, token.KwEnum, token.KwTypedef,
		token.KwExtern, token.KwStatic, token.KwAuto, token.KwRegister,
		token.KwConst, token.KwVolatile, token.TypeName:
		return true
	}
	return false
}

// parseDeclSpecifiers parses storage-class and type specifiers and returns
// the base type.
func (p *Parser) parseDeclSpecifiers() (storage ast.Storage, base types.Type, isTypedef bool) {
	storage = ast.Auto
	var (
		sawUnsigned, sawSigned bool
		sawChar, sawShort      bool
		sawInt, sawVoid        bool
		sawLong                bool
		explicit               types.Type
	)
	for {
		switch p.tok.Kind {
		case token.KwTypedef:
			isTypedef = true
			p.next()
		case token.KwExtern:
			storage = ast.Extern
			p.next()
		case token.KwStatic:
			storage = ast.Static
			p.next()
		case token.KwAuto:
			storage = ast.Auto
			p.next()
		case token.KwRegister:
			storage = ast.Register
			p.next()
		case token.KwConst, token.KwVolatile:
			// Qualifiers are accepted and ignored; the simulated machine has
			// no memory-mapped IO and the annotator never relies on them.
			p.next()
		case token.KwVoid:
			sawVoid = true
			p.next()
		case token.KwChar:
			sawChar = true
			p.next()
		case token.KwShort:
			sawShort = true
			p.next()
		case token.KwInt:
			sawInt = true
			p.next()
		case token.KwLong:
			sawLong = true
			p.next()
		case token.KwSigned:
			sawSigned = true
			p.next()
		case token.KwUnsigned:
			sawUnsigned = true
			p.next()
		case token.KwFloat, token.KwDouble:
			p.errorf(p.tok.Pos, "floating-point types are not supported by this front end")
			p.next()
			explicit = types.IntType
		case token.KwStruct, token.KwUnion:
			explicit = p.parseStructSpecifier()
		case token.KwEnum:
			explicit = p.parseEnumSpecifier()
		case token.TypeName:
			if explicit == nil && !sawChar && !sawShort && !sawInt && !sawVoid && !sawLong && !sawSigned && !sawUnsigned {
				explicit = p.lookupTypedef(p.tok.Text)
				p.next()
			} else {
				goto done
			}
		default:
			goto done
		}
	}
done:
	if explicit != nil {
		return storage, explicit, isTypedef
	}
	switch {
	case sawVoid:
		base = types.VoidType
	case sawChar && sawUnsigned:
		base = types.UCharType
	case sawChar:
		base = types.CharType
	case sawShort && sawUnsigned:
		base = types.UShortType
	case sawShort:
		base = types.ShortType
	case sawUnsigned:
		base = types.UIntType
	case sawInt, sawLong, sawSigned:
		base = types.IntType
	default:
		p.errorf(p.tok.Pos, "expected type specifier, found %q", p.tok.Text)
		base = types.IntType
	}
	return storage, base, isTypedef
}

func (p *Parser) parseStructSpecifier() types.Type {
	union := p.tok.Kind == token.KwUnion
	p.next()
	tag := ""
	if p.tok.Kind == token.Ident || p.tok.Kind == token.TypeName {
		tag = p.tok.Text
		p.next()
	}
	var st *types.Struct
	if tag != "" {
		if existing, ok := p.lookupTag("struct " + tag).(*types.Struct); ok {
			st = existing
		}
	}
	if p.tok.Kind != token.LBrace {
		// Reference to a (possibly forward-declared) tag.
		if st == nil {
			st = types.NewStruct(tag, union)
			if tag != "" {
				p.topScope().tags["struct "+tag] = st
			}
		}
		return st
	}
	if st == nil || st.Completed() {
		st = types.NewStruct(tag, union)
	}
	if tag != "" {
		p.topScope().tags["struct "+tag] = st
	}
	p.expect(token.LBrace)
	var fields []types.Field
	for p.tok.Kind != token.RBrace && p.tok.Kind != token.EOF {
		_, base, _ := p.parseDeclSpecifiers()
		for {
			name, typ, npos := p.parseDeclarator(base)
			if name == "" {
				p.errorf(npos, "unnamed struct member")
			}
			if _, ok := p.accept(token.Colon); ok {
				p.errorf(npos, "bit-fields are not supported")
				p.parseCondExpr()
			}
			fields = append(fields, types.Field{Name: name, Type: typ})
			if _, ok := p.accept(token.Comma); !ok {
				break
			}
		}
		p.expect(token.Semi)
	}
	end := p.expect(token.RBrace)
	if err := st.Complete(fields); err != nil {
		p.errorf(end.Pos, "%v", err)
	}
	return st
}

func (p *Parser) parseEnumSpecifier() types.Type {
	p.next()
	tag := ""
	if p.tok.Kind == token.Ident || p.tok.Kind == token.TypeName {
		tag = p.tok.Text
		p.next()
	}
	et := &types.Enum{Tag: tag}
	if tag != "" {
		if existing, ok := p.lookupTag("enum " + tag).(*types.Enum); ok && p.tok.Kind != token.LBrace {
			return existing
		}
		p.topScope().tags["enum "+tag] = et
	}
	if p.tok.Kind != token.LBrace {
		return et
	}
	p.expect(token.LBrace)
	next := int64(0)
	for p.tok.Kind != token.RBrace && p.tok.Kind != token.EOF {
		name := p.expect(token.Ident)
		if _, ok := p.accept(token.Assign); ok {
			v, ok := p.evalConst(p.parseCondExpr())
			if !ok {
				p.errorf(name.Pos, "enumerator %s requires a constant expression", name.Text)
			}
			next = v
		}
		obj := &ast.Object{Name: name.Text, Kind: ast.ObjEnumConst, Type: types.IntType, EnumVal: next, Global: len(p.scopes) == 1}
		p.declare(obj, name.Pos)
		next++
		if _, ok := p.accept(token.Comma); !ok {
			break
		}
	}
	p.expect(token.RBrace)
	return et
}

// parseDeclarator parses one declarator built on base and returns the
// declared name (possibly empty for abstract declarators), its type and the
// name position.
func (p *Parser) parseDeclarator(base types.Type) (string, types.Type, token.Pos) {
	for {
		if _, ok := p.accept(token.Star); ok {
			for p.tok.Kind == token.KwConst || p.tok.Kind == token.KwVolatile {
				p.next()
			}
			base = types.PointerTo(base)
			continue
		}
		break
	}
	return p.parseDirectDeclarator(base)
}

func (p *Parser) parseDirectDeclarator(base types.Type) (string, types.Type, token.Pos) {
	var name string
	npos := p.tok.Pos
	switch p.tok.Kind {
	case token.Ident, token.TypeName:
		name = p.tok.Text
		p.next()
	case token.LParen:
		// Distinguish a parenthesized declarator `(*x)` from a parameter
		// list `(int x)`. A parenthesized declarator `(*f)(...)` needs the
		// inner declarator applied to the type built from the *outer*
		// suffixes, so the inner part is parsed into a chain description
		// and applied once the suffixes are known.
		nt := p.peek(0)
		if nt.Kind == token.Star || nt.Kind == token.Ident && !p.lex.IsType(nt.Text) {
			p.next()
			chain := p.parseDeclChain()
			p.expect(token.RParen)
			base = p.parseDeclSuffixes(base)
			t := chain.apply(base, p)
			return chain.name, t, chain.pos
		}
	}
	base = p.parseDeclSuffixes(base)
	return name, base, npos
}

// declChain records the pointer/array/function structure of a parenthesized
// declarator so it can be applied once the outer suffix types are known.
type declChain struct {
	name   string
	pos    token.Pos
	stars  int
	apply_ []func(types.Type, *Parser) types.Type
}

func (c *declChain) apply(t types.Type, p *Parser) types.Type {
	for i := 0; i < c.stars; i++ {
		t = types.PointerTo(t)
	}
	for i := len(c.apply_) - 1; i >= 0; i-- {
		t = c.apply_[i](t, p)
	}
	return t
}

func (p *Parser) parseDeclChain() *declChain {
	c := &declChain{pos: p.tok.Pos}
	for {
		if _, ok := p.accept(token.Star); ok {
			c.stars++
			continue
		}
		break
	}
	if p.tok.Kind == token.Ident || p.tok.Kind == token.TypeName {
		c.name = p.tok.Text
		c.pos = p.tok.Pos
		p.next()
	}
	// suffixes inside the parens bind tighter than outer ones
	for {
		switch p.tok.Kind {
		case token.LBracket:
			p.next()
			ln := -1
			if p.tok.Kind != token.RBracket {
				v, ok := p.evalConst(p.parseCondExpr())
				if !ok || v < 0 {
					p.errorf(p.tok.Pos, "array size must be a nonnegative constant")
					v = 0
				}
				ln = int(v)
			}
			p.expect(token.RBracket)
			n := ln
			c.apply_ = append(c.apply_, func(t types.Type, _ *Parser) types.Type {
				return &types.Array{Elem: t, Len: n}
			})
		case token.LParen:
			params, variadic, oldStyle := p.parseParamList()
			c.apply_ = append(c.apply_, func(t types.Type, _ *Parser) types.Type {
				return &types.Func{Ret: t, Params: params, Variadic: variadic, OldStyle: oldStyle}
			})
		default:
			return c
		}
	}
}

// parseDeclSuffixes parses array and parameter-list suffixes.
func (p *Parser) parseDeclSuffixes(base types.Type) types.Type {
	switch p.tok.Kind {
	case token.LBracket:
		p.next()
		ln := -1
		if p.tok.Kind != token.RBracket {
			v, ok := p.evalConst(p.parseCondExpr())
			if !ok || v < 0 {
				p.errorf(p.tok.Pos, "array size must be a nonnegative constant")
				v = 0
			}
			ln = int(v)
		}
		p.expect(token.RBracket)
		elem := p.parseDeclSuffixes(base)
		return &types.Array{Elem: elem, Len: ln}
	case token.LParen:
		params, variadic, oldStyle := p.parseParamList()
		ret := p.parseDeclSuffixes(base)
		return &types.Func{Ret: ret, Params: params, Variadic: variadic, OldStyle: oldStyle}
	}
	return base
}

func (p *Parser) parseParamList() (params []types.Param, variadic, oldStyle bool) {
	p.expect(token.LParen)
	if _, ok := p.accept(token.RParen); ok {
		return nil, false, true
	}
	// (void) means no parameters
	if p.tok.Kind == token.KwVoid && p.peek(0).Kind == token.RParen {
		p.next()
		p.next()
		return nil, false, false
	}
	for {
		if _, ok := p.accept(token.Ellipsis); ok {
			variadic = true
			break
		}
		_, base, _ := p.parseDeclSpecifiers()
		name, typ, _ := p.parseDeclarator(base)
		// Arrays and functions decay in parameter position.
		typ = types.Decay(typ)
		params = append(params, types.Param{Name: name, Type: typ})
		if _, ok := p.accept(token.Comma); !ok {
			break
		}
	}
	p.expect(token.RParen)
	return params, variadic, false
}

// parseTypeName parses a type-name (for casts and sizeof).
func (p *Parser) parseTypeName() types.Type {
	_, base, _ := p.parseDeclSpecifiers()
	name, typ, pos := p.parseDeclarator(base)
	if name != "" {
		p.errorf(pos, "unexpected name %q in type name", name)
	}
	return typ
}
