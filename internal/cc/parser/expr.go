package parser

import (
	"strings"

	"gcsafety/internal/cc/ast"
	"gcsafety/internal/cc/token"
	"gcsafety/internal/cc/types"
)

// Expression grammar, standard C precedence. Every parse function returns a
// fully typed node; type errors are reported and a best-effort type is
// assigned so parsing continues.

func (p *Parser) parseExpr() ast.Expr {
	e := p.parseAssignExpr()
	for p.tok.Kind == token.Comma {
		p.next()
		y := p.parseAssignExpr()
		c := &ast.Comma{X: e, Y: y}
		c.SetType(valueType(y))
		e = c
	}
	return e
}

func (p *Parser) parseAssignExpr() ast.Expr {
	l := p.parseCondExpr()
	if !p.tok.Kind.IsAssign() {
		return l
	}
	op := p.tok.Kind
	opPos := p.tok.Pos
	p.next()
	r := p.parseAssignExpr()
	if !p.isLvalue(l) {
		p.errorf(opPos, "assignment target is not an lvalue")
	}
	lt := l.Type()
	p.checkAssignable(opPos, lt, r, op)
	a := &ast.Assign{Op: op, L: l, R: r}
	a.SetType(lt)
	return a
}

func (p *Parser) parseCondExpr() ast.Expr {
	c := p.parseBinaryExpr(1)
	if p.tok.Kind != token.Question {
		return c
	}
	qPos := p.tok.Pos
	p.next()
	t := p.parseExpr()
	p.expect(token.Colon)
	f := p.parseCondExpr()
	p.requireScalar(qPos, c)
	cond := &ast.Cond{C: c, T: t, F: f}
	tt, ft := valueType(t), valueType(f)
	switch {
	case types.IsPointer(tt):
		cond.SetType(tt)
	case types.IsPointer(ft):
		cond.SetType(ft)
	case types.IsInteger(tt) && types.IsInteger(ft):
		cond.SetType(types.Arith(tt, ft))
	default:
		cond.SetType(tt)
	}
	return cond
}

// binary operator precedence, highest binds tightest.
func binPrec(k token.Kind) int {
	switch k {
	case token.OrOr:
		return 1
	case token.AndAnd:
		return 2
	case token.Pipe:
		return 3
	case token.Caret:
		return 4
	case token.Amp:
		return 5
	case token.Eq, token.Ne:
		return 6
	case token.Lt, token.Gt, token.Le, token.Ge:
		return 7
	case token.Shl, token.Shr:
		return 8
	case token.Plus, token.Minus:
		return 9
	case token.Star, token.Slash, token.Percent:
		return 10
	}
	return 0
}

func (p *Parser) parseBinaryExpr(minPrec int) ast.Expr {
	x := p.parseCastExpr()
	for {
		prec := binPrec(p.tok.Kind)
		if prec < minPrec || prec == 0 {
			return x
		}
		op := p.tok.Kind
		opPos := p.tok.Pos
		p.next()
		y := p.parseBinaryExpr(prec + 1)
		x = p.typeBinary(opPos, op, x, y)
	}
}

// typeBinary builds and types a binary node.
func (p *Parser) typeBinary(pos token.Pos, op token.Kind, x, y ast.Expr) ast.Expr {
	b := &ast.Binary{Op: op, X: x, Y: y}
	xt, yt := valueType(x), valueType(y)
	switch op {
	case token.Plus:
		switch {
		case types.IsPointer(xt) && types.IsInteger(yt):
			b.SetType(xt)
		case types.IsInteger(xt) && types.IsPointer(yt):
			b.SetType(yt)
		case types.IsInteger(xt) && types.IsInteger(yt):
			b.SetType(types.Arith(xt, yt))
		default:
			p.errorf(pos, "invalid operands to + (%s and %s)", xt, yt)
			b.SetType(types.IntType)
		}
	case token.Minus:
		switch {
		case types.IsPointer(xt) && types.IsInteger(yt):
			b.SetType(xt)
		case types.IsPointer(xt) && types.IsPointer(yt):
			b.SetType(types.IntType)
		case types.IsInteger(xt) && types.IsInteger(yt):
			b.SetType(types.Arith(xt, yt))
		default:
			p.errorf(pos, "invalid operands to - (%s and %s)", xt, yt)
			b.SetType(types.IntType)
		}
	case token.Star, token.Slash, token.Percent, token.Amp, token.Pipe, token.Caret, token.Shl, token.Shr:
		if !types.IsInteger(xt) || !types.IsInteger(yt) {
			p.errorf(pos, "invalid operands to %s (%s and %s)", op, xt, yt)
		}
		if op == token.Shl || op == token.Shr {
			b.SetType(types.Promote(xt))
		} else {
			b.SetType(types.Arith(xt, yt))
		}
	case token.Eq, token.Ne, token.Lt, token.Gt, token.Le, token.Ge:
		okPtr := types.IsPointer(xt) && (types.IsPointer(yt) || isNullConst(y)) ||
			types.IsPointer(yt) && (types.IsPointer(xt) || isNullConst(x))
		okInt := types.IsInteger(xt) && types.IsInteger(yt)
		if !okPtr && !okInt {
			p.errorf(pos, "invalid comparison between %s and %s", xt, yt)
		}
		b.SetType(types.IntType)
	case token.AndAnd, token.OrOr:
		p.requireScalar(pos, x)
		p.requireScalar(pos, y)
		b.SetType(types.IntType)
	default:
		p.errorf(pos, "unexpected binary operator %s", op)
		b.SetType(types.IntType)
	}
	return b
}

func (p *Parser) parseCastExpr() ast.Expr {
	if p.tok.Kind == token.LParen && p.startsTypeAfterLParen() {
		lp := p.tok.Pos
		p.next()
		startOff := p.tok.Pos.Off
		t := p.parseTypeName()
		endOff := p.tok.Pos.Off
		p.expect(token.RParen)
		x := p.parseCastExpr()
		c := &ast.Cast{To: t, TypeText: trimSpace(p.file.Source[startOff:endOff]), X: x, Lparen: lp}
		c.SetType(t)
		p.checkCast(lp, t, x)
		return c
	}
	return p.parseUnaryExpr()
}

func trimSpace(s string) string {
	for len(s) > 0 && (s[len(s)-1] == ' ' || s[len(s)-1] == '\t' || s[len(s)-1] == '\n') {
		s = s[:len(s)-1]
	}
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\t' || s[0] == '\n') {
		s = s[1:]
	}
	return s
}

// startsTypeAfterLParen reports whether the token after the current LParen
// begins a type name (making this a cast or compound literal, not a
// parenthesized expression).
func (p *Parser) startsTypeAfterLParen() bool {
	switch p.peek(0).Kind {
	case token.KwVoid, token.KwChar, token.KwShort, token.KwInt, token.KwLong,
		token.KwSigned, token.KwUnsigned, token.KwFloat, token.KwDouble,
		token.KwStruct, token.KwUnion, token.KwEnum, token.KwConst,
		token.KwVolatile, token.TypeName:
		return true
	}
	return false
}

func (p *Parser) parseUnaryExpr() ast.Expr {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case token.Inc, token.Dec:
		op := p.tok.Kind
		p.next()
		x := p.parseUnaryExpr()
		if !p.isLvalue(x) {
			p.errorf(pos, "operand of %s is not an lvalue", op)
		}
		u := &ast.Unary{Op: op, X: x, OpPos: pos, OpEnd: x.End()}
		u.SetType(valueType(x))
		p.requireScalar(pos, x)
		return u
	case token.Plus, token.Minus, token.Tilde:
		op := p.tok.Kind
		p.next()
		x := p.parseCastExpr()
		if !types.IsInteger(valueType(x)) {
			p.errorf(pos, "operand of unary %s must be integer", op)
		}
		u := &ast.Unary{Op: op, X: x, OpPos: pos}
		u.SetType(types.Promote(valueType(x)))
		return u
	case token.Not:
		p.next()
		x := p.parseCastExpr()
		p.requireScalar(pos, x)
		u := &ast.Unary{Op: token.Not, X: x, OpPos: pos}
		u.SetType(types.IntType)
		return u
	case token.Star:
		p.next()
		x := p.parseCastExpr()
		xt := valueType(x)
		u := &ast.Unary{Op: token.Star, X: x, OpPos: pos}
		if pt, ok := xt.(*types.Pointer); ok {
			u.SetType(pt.Elem)
		} else {
			p.errorf(pos, "cannot dereference non-pointer type %s", xt)
			u.SetType(types.IntType)
		}
		return u
	case token.Amp:
		p.next()
		x := p.parseCastExpr()
		if !p.isLvalue(x) {
			p.errorf(pos, "cannot take the address of a non-lvalue")
		}
		p.markAddrTaken(x)
		u := &ast.Unary{Op: token.Amp, X: x, OpPos: pos}
		t := x.Type()
		if t == nil {
			t = types.IntType
		}
		u.SetType(types.PointerTo(t))
		return u
	case token.KwSizeof:
		p.next()
		if p.tok.Kind == token.LParen && p.startsTypeAfterLParen() {
			p.next()
			startOff := p.tok.Pos.Off
			t := p.parseTypeName()
			endOff := p.tok.Pos.Off
			rp := p.expect(token.RParen)
			s := &ast.SizeofType{Of: t, TypeText: trimSpace(p.file.Source[startOff:endOff]), KwPos: pos, RparenEnd: rp.End}
			s.SetType(types.UIntType)
			return s
		}
		x := p.parseUnaryExpr()
		s := &ast.SizeofExpr{X: x, KwPos: pos}
		s.SetType(types.UIntType)
		return s
	}
	return p.parsePostfixExpr()
}

func (p *Parser) parsePostfixExpr() ast.Expr {
	x := p.parsePrimaryExpr()
	for {
		switch p.tok.Kind {
		case token.LBracket:
			p.next()
			i := p.parseExpr()
			rb := p.expect(token.RBracket)
			x = p.typeIndex(x, i, rb.End)
		case token.LParen:
			lp := p.tok.Pos
			p.next()
			var args []ast.Expr
			for p.tok.Kind != token.RParen && p.tok.Kind != token.EOF {
				args = append(args, p.parseAssignExpr())
				if _, ok := p.accept(token.Comma); !ok {
					break
				}
			}
			rp := p.expect(token.RParen)
			x = p.typeCall(x, args, lp, rp.End)
		case token.Dot, token.Arrow:
			arrow := p.tok.Kind == token.Arrow
			opPos := p.tok.Pos
			p.next()
			var name token.Token
			if p.tok.Kind == token.Ident || p.tok.Kind == token.TypeName {
				name = p.tok
				p.next()
			} else {
				p.errorf(p.tok.Pos, "expected member name after %q", opPos)
				name = p.tok
			}
			x = p.typeMember(x, name, arrow, opPos)
		case token.Inc, token.Dec:
			op := p.tok.Kind
			opEnd := p.tok.End
			opPos := p.tok.Pos
			p.next()
			if !p.isLvalue(x) {
				p.errorf(opPos, "operand of postfix %s is not an lvalue", op)
			}
			p.requireScalar(opPos, x)
			u := &ast.Unary{Op: op, X: x, Postfix: true, OpPos: opPos, OpEnd: opEnd}
			u.SetType(valueType(x))
			x = u
		default:
			return x
		}
	}
}

func (p *Parser) typeIndex(x ast.Expr, i ast.Expr, rbrack int) ast.Expr {
	ix := &ast.Index{X: x, I: i, Rbrack: rbrack}
	xt, it := valueType(x), valueType(i)
	switch {
	case types.IsPointer(xt) && types.IsInteger(it):
		ix.SetType(xt.(*types.Pointer).Elem)
	case types.IsInteger(xt) && types.IsPointer(it):
		ix.SetType(it.(*types.Pointer).Elem)
	default:
		p.errorf(x.Pos(), "invalid subscript of %s by %s", xt, it)
		ix.SetType(types.IntType)
	}
	return ix
}

func (p *Parser) typeCall(fun ast.Expr, args []ast.Expr, lp token.Pos, rp int) ast.Expr {
	c := &ast.Call{Fun: fun, Args: args, Lparen: lp, Rparen: rp}
	ft := funcType(fun)
	if ft == nil {
		p.errorf(lp, "called object is not a function")
		c.SetType(types.IntType)
		return c
	}
	if !ft.OldStyle {
		if len(args) < len(ft.Params) || len(args) > len(ft.Params) && !ft.Variadic {
			p.errorf(lp, "wrong number of arguments (%d) to function expecting %d", len(args), len(ft.Params))
		}
		for i, a := range args {
			if i < len(ft.Params) {
				p.checkAssignable(a.Pos(), ft.Params[i].Type, a, token.Assign)
			}
		}
	}
	c.SetType(ft.Ret)
	return c
}

// funcType extracts the function type of a call target, looking through
// pointers and decay.
func funcType(fun ast.Expr) *types.Func {
	t := fun.Type()
	if t == nil {
		return nil
	}
	if ft, ok := t.(*types.Func); ok {
		return ft
	}
	if pt, ok := types.Decay(t).(*types.Pointer); ok {
		if ft, ok := pt.Elem.(*types.Func); ok {
			return ft
		}
	}
	return nil
}

func (p *Parser) typeMember(x ast.Expr, name token.Token, arrow bool, opPos token.Pos) ast.Expr {
	m := &ast.Member{X: x, Name: name.Text, Arrow: arrow, NameEnd: name.End}
	var st *types.Struct
	xt := x.Type()
	if arrow {
		if pt, ok := types.Decay(xt).(*types.Pointer); ok {
			st, _ = pt.Elem.(*types.Struct)
		}
	} else {
		st, _ = xt.(*types.Struct)
	}
	if st == nil {
		p.errorf(opPos, "member access on non-struct type %s", xt)
		m.SetType(types.IntType)
		return m
	}
	f := st.FieldByName(name.Text)
	if f == nil {
		p.errorf(name.Pos, "no member %q in %s", name.Text, st)
		m.SetType(types.IntType)
		return m
	}
	m.Field = f
	m.SetType(f.Type)
	return m
}

func (p *Parser) parsePrimaryExpr() ast.Expr {
	tk := p.tok
	switch tk.Kind {
	case token.Ident:
		p.next()
		id := &ast.Ident{Name: tk.Text, NamePos: tk.Pos, NameEnd: tk.End}
		obj := p.lookup(tk.Text)
		if obj == nil {
			// Implicit function declaration if followed by '(' — pre-ANSI
			// style kept for convenience; otherwise an error.
			if p.tok.Kind == token.LParen {
				obj = &ast.Object{
					Name: tk.Text, Kind: ast.ObjFunc, Storage: ast.Extern, Global: true,
					Type: &types.Func{Ret: types.IntType, OldStyle: true},
				}
				p.scopes[0].objects[tk.Text] = obj
				p.errorf(tk.Pos, "implicit declaration of function %q", tk.Text)
			} else {
				p.errorf(tk.Pos, "undeclared identifier %q", tk.Text)
				obj = &ast.Object{Name: tk.Text, Kind: ast.ObjVar, Type: types.IntType}
			}
		}
		id.Obj = obj
		id.SetType(obj.Type)
		return id
	case token.IntLit:
		p.next()
		l := &ast.IntLit{Val: tk.IntVal, LitPos: tk.Pos, LitEnd: tk.End}
		// A u/U suffix or a value not representable as int makes the
		// constant unsigned (the only other 32-bit integer type here).
		if tk.IntVal > 0x7FFFFFFF || strings.ContainsAny(tk.Text, "uU") {
			l.SetType(types.UIntType)
		} else {
			l.SetType(types.IntType)
		}
		return l
	case token.CharLit:
		p.next()
		l := &ast.CharLit{Val: tk.IntVal, LitPos: tk.Pos, LitEnd: tk.End}
		l.SetType(types.IntType)
		return l
	case token.StrLit:
		p.next()
		l := &ast.StrLit{Val: tk.StrVal, LitPos: tk.Pos, LitEnd: tk.End}
		l.SetType(&types.Array{Elem: types.CharType, Len: len(tk.StrVal) + 1})
		return l
	case token.LParen:
		p.next()
		x := p.parseExpr()
		rp := p.expect(token.RParen)
		par := &ast.Paren{X: x, Lparen: tk.Pos, RparenEnd: rp.End}
		par.SetType(x.Type())
		return par
	}
	p.errorf(tk.Pos, "expected expression, found %q", tk.Text)
	panic(bailout{})
}

// --- typing helpers ---

// valueType is the type of e when used as a value: arrays and functions
// decay to pointers.
func valueType(e ast.Expr) types.Type {
	t := e.Type()
	if t == nil {
		return types.IntType
	}
	return types.Decay(t)
}

func isNullConst(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.IntLit:
		return e.Val == 0
	case *ast.Cast:
		return types.IsPointer(e.To) && isNullConst(e.X)
	}
	return false
}

func (p *Parser) isLvalue(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Obj != nil && (e.Obj.Kind == ast.ObjVar || e.Obj.Kind == ast.ObjParam || e.Obj.Kind == ast.ObjTemp)
	case *ast.Unary:
		return e.Op == token.Star && !e.Postfix
	case *ast.Index:
		return true
	case *ast.Member:
		if e.Arrow {
			return true
		}
		return p.isLvalue(e.X)
	case *ast.Paren:
		return p.isLvalue(e.X)
	}
	return false
}

func (p *Parser) markAddrTaken(e ast.Expr) {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok && id.Obj != nil {
		id.Obj.AddrTaken = true
	}
	if m, ok := ast.Unparen(e).(*ast.Member); ok && !m.Arrow {
		p.markAddrTaken(m.X)
	}
}

func (p *Parser) requireScalar(pos token.Pos, e ast.Expr) {
	if !types.IsScalar(valueType(e)) {
		p.errorf(pos, "scalar value required, found %s", valueType(e))
	}
}

// checkAssignable verifies that r can be assigned to an lvalue of type lt.
// C's lax rules are followed: integer<->integer freely, pointer<->pointer
// with a warning channel handled by the gcsafe checker, 0 to pointers,
// struct to identical struct.
func (p *Parser) checkAssignable(pos token.Pos, lt types.Type, r ast.Expr, op token.Kind) {
	rt := valueType(r)
	if op != token.Assign {
		// compound assignment: operands behave like the binary operator
		if !types.IsScalar(lt) {
			p.errorf(pos, "compound assignment to non-scalar %s", lt)
		}
		return
	}
	switch {
	case types.IsInteger(lt) && types.IsInteger(rt):
	case types.IsPointer(lt) && types.IsPointer(rt):
	case types.IsPointer(lt) && isNullConst(r):
	case types.IsPointer(lt) && types.IsInteger(rt):
		// legal only with a cast in ANSI C; accepted with a diagnostic by
		// the source-checking pass, not here
	case types.IsInteger(lt) && types.IsPointer(rt):
	case types.IsVoid(lt):
	default:
		st, ok1 := lt.(*types.Struct)
		st2, ok2 := rt.(*types.Struct)
		if ok1 && ok2 && st == st2 {
			return
		}
		p.errorf(pos, "incompatible assignment of %s to %s", rt, lt)
	}
}

func (p *Parser) checkCast(pos token.Pos, to types.Type, x ast.Expr) {
	xt := valueType(x)
	if types.IsScalar(to) && types.IsScalar(xt) {
		return
	}
	if types.IsVoid(to) {
		return
	}
	p.errorf(pos, "invalid cast from %s to %s", xt, to)
}
