package parser_test

import (
	"fmt"
	"math/rand"
	"testing"

	"gcsafety/internal/cc/ast"
	"gcsafety/internal/cc/parser"
	"gcsafety/internal/fuzz"
)

// Property: printing a parsed expression and re-parsing the result reaches
// a fixpoint — parse(print(parse(e))) prints identically. The generator
// produces random expressions over a fixed set of declared names.

type exprGen struct {
	r *rand.Rand
}

func (g *exprGen) expr(depth int) string {
	if depth <= 0 {
		return g.leaf()
	}
	switch g.r.Intn(10) {
	case 0:
		return g.leaf()
	case 1:
		return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), g.binop(), g.expr(depth-1))
	case 2:
		return fmt.Sprintf("(%s ? %s : %s)", g.expr(depth-1), g.expr(depth-1), g.expr(depth-1))
	case 3:
		return fmt.Sprintf("(-%s)", g.expr(depth-1))
	case 4:
		return fmt.Sprintf("(~%s)", g.expr(depth-1))
	case 5:
		return fmt.Sprintf("(!%s)", g.expr(depth-1))
	case 6:
		return fmt.Sprintf("arr[%s]", g.expr(depth-1))
	case 7:
		return fmt.Sprintf("p[%s]", g.expr(depth-1))
	case 8:
		return fmt.Sprintf("fn(%s, %s)", g.expr(depth-1), g.expr(depth-1))
	default:
		return fmt.Sprintf("(%s, %s)", g.expr(depth-1), g.expr(depth-1))
	}
}

func (g *exprGen) binop() string {
	ops := []string{"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
		"<", ">", "<=", ">=", "==", "!=", "&&", "||"}
	return ops[g.r.Intn(len(ops))]
}

func (g *exprGen) leaf() string {
	switch g.r.Intn(5) {
	case 0:
		return fmt.Sprintf("%d", g.r.Intn(1000))
	case 1:
		return "a"
	case 2:
		return "b"
	case 3:
		return "s.f"
	default:
		return "q->g"
	}
}

const roundtripFrame = `
struct st { int f; };
struct pt { int g; };
int fn(int x, int y);
int a; int b;
char *p;
int arr[10];
struct st s;
struct pt *q;
int probe() { return %s; }
`

func parseProbe(t *testing.T, exprText string) (ast.Expr, bool) {
	t.Helper()
	f, err := parser.Parse("rt.c", fmt.Sprintf(roundtripFrame, exprText))
	if err != nil {
		return nil, false
	}
	fd := f.FuncByName("probe")
	ret := fd.Body.Stmts[0].(*ast.Return)
	return ret.X, true
}

func TestPrintParseFixpoint(t *testing.T) {
	g := &exprGen{r: rand.New(rand.NewSource(19960528))} // PLDI '96 week
	tried, ok := 0, 0
	for i := 0; i < 400; i++ {
		text := g.expr(4)
		e1, valid := parseProbe(t, text)
		if !valid {
			// the generator can produce type errors (e.g. % on pointers);
			// those are out of scope for the round-trip property
			continue
		}
		tried++
		p1 := ast.PrintExpr(e1)
		e2, valid := parseProbe(t, p1)
		if !valid {
			t.Fatalf("printed form does not re-parse:\n  original: %s\n  printed:  %s", text, p1)
		}
		p2 := ast.PrintExpr(e2)
		if p1 != p2 {
			t.Fatalf("print/parse not a fixpoint:\n  original: %s\n  first:    %s\n  second:   %s", text, p1, p2)
		}
		ok++
	}
	if tried < 100 {
		t.Fatalf("generator produced too few valid expressions (%d)", tried)
	}
	t.Logf("%d/%d generated expressions verified", ok, tried)
}

// Property: constant expressions evaluate identically before and after a
// print/parse round trip.
func TestConstEvalStableUnderRoundTrip(t *testing.T) {
	g := &exprGen{r: rand.New(rand.NewSource(42))}
	checked := 0
	for i := 0; i < 400; i++ {
		// constants only: replace leaves with numbers by regenerating
		text := g.constExpr(4)
		e1, valid := parseProbe(t, text)
		if !valid {
			continue
		}
		v1, isConst := parser.EvalConst(e1)
		if !isConst {
			continue
		}
		e2, valid := parseProbe(t, ast.PrintExpr(e1))
		if !valid {
			t.Fatalf("re-parse failed for %s", ast.PrintExpr(e1))
		}
		v2, isConst2 := parser.EvalConst(e2)
		if !isConst2 || v1 != v2 {
			t.Fatalf("constant drifted: %s = %d, reprinted = %d", text, v1, v2)
		}
		checked++
	}
	if checked < 50 {
		t.Fatalf("too few constant expressions checked (%d)", checked)
	}
}

func (g *exprGen) constExpr(depth int) string {
	if depth <= 0 || g.r.Intn(4) == 0 {
		return fmt.Sprintf("%d", g.r.Intn(100)+1)
	}
	switch g.r.Intn(5) {
	case 0:
		return fmt.Sprintf("(%s %s %s)", g.constExpr(depth-1), g.binop(), g.constExpr(depth-1))
	case 1:
		return fmt.Sprintf("(-%s)", g.constExpr(depth-1))
	case 2:
		return fmt.Sprintf("(~%s)", g.constExpr(depth-1))
	case 3:
		return fmt.Sprintf("(%s ? %s : %s)", g.constExpr(depth-1), g.constExpr(depth-1), g.constExpr(depth-1))
	default:
		return "sizeof(int)"
	}
}

// The same fixpoint property, driven by the shared expression generator in
// internal/fuzz — the single source of truth the differential harness and
// FuzzParserRoundtrip use — so the local ad-hoc generator above and the
// fuzzing subsystem keep exercising the printer from two angles.
func TestPrintParseFixpointFuzzGenerator(t *testing.T) {
	g := fuzz.NewExprGen(rand.New(rand.NewSource(1996)))
	leaves := []string{"a", "b", "s.f", "q->g", "arr[a]", "p[b]", "fn(a, b)"}
	tried := 0
	for i := 0; i < 600; i++ {
		text := g.Expr(4, leaves)
		e1, valid := parseProbe(t, text)
		if !valid {
			continue
		}
		tried++
		p1 := ast.PrintExpr(e1)
		e2, valid := parseProbe(t, p1)
		if !valid {
			t.Fatalf("printed form does not re-parse:\n  original: %s\n  printed:  %s", text, p1)
		}
		if p2 := ast.PrintExpr(e2); p1 != p2 {
			t.Fatalf("print/parse not a fixpoint:\n  original: %s\n  first:    %s\n  second:   %s", text, p1, p2)
		}
	}
	if tried < 200 {
		t.Fatalf("fuzz generator produced too few valid expressions (%d)", tried)
	}
}

// Constant expressions from the shared generator parse, fold to the value
// the generator predicted, and keep that value across a round trip.
func TestFuzzGeneratorConstantsAgreeWithParser(t *testing.T) {
	g := fuzz.NewExprGenSeed(42)
	for i := 0; i < 400; i++ {
		text, want := g.Const(4)
		e1, valid := parseProbe(t, text)
		if !valid {
			t.Fatalf("generated constant does not parse: %s", text)
		}
		v1, isConst := parser.EvalConst(e1)
		if !isConst || v1 != int64(want) {
			t.Fatalf("parser folded %s to (%d,%v), generator predicted %d", text, v1, isConst, want)
		}
		e2, valid := parseProbe(t, ast.PrintExpr(e1))
		if !valid {
			t.Fatalf("re-parse failed for %s", ast.PrintExpr(e1))
		}
		if v2, ok := parser.EvalConst(e2); !ok || v2 != v1 {
			t.Fatalf("constant drifted across round trip: %s", text)
		}
	}
}
