package parser

import (
	"gcsafety/internal/cc/ast"
	"gcsafety/internal/cc/token"
	"gcsafety/internal/cc/types"
)

// evalConst evaluates an integer constant expression at parse time (for
// array sizes, enum values and case labels). The second result reports
// whether the expression was constant.
func (p *Parser) evalConst(e ast.Expr) (int64, bool) {
	switch e := e.(type) {
	case *ast.IntLit:
		return e.Val, true
	case *ast.CharLit:
		return e.Val, true
	case *ast.Paren:
		return p.evalConst(e.X)
	case *ast.Ident:
		if e.Obj != nil && e.Obj.Kind == ast.ObjEnumConst {
			return e.Obj.EnumVal, true
		}
		return 0, false
	case *ast.SizeofType:
		if s := e.Of.Size(); s >= 0 {
			return int64(s), true
		}
		return 0, false
	case *ast.SizeofExpr:
		t := e.X.Type()
		if t == nil {
			return 0, false
		}
		if s := t.Size(); s >= 0 {
			return int64(s), true
		}
		return 0, false
	case *ast.Cast:
		if !types.IsInteger(e.To) {
			return 0, false
		}
		v, ok := p.evalConst(e.X)
		if !ok {
			return 0, false
		}
		return truncConst(v, e.To), true
	case *ast.Unary:
		if e.Postfix {
			return 0, false
		}
		v, ok := p.evalConst(e.X)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case token.Minus:
			return -v, true
		case token.Plus:
			return v, true
		case token.Tilde:
			return int64(int32(^uint32(v))), true
		case token.Not:
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
		return 0, false
	case *ast.Cond:
		c, ok := p.evalConst(e.C)
		if !ok {
			return 0, false
		}
		if c != 0 {
			return p.evalConst(e.T)
		}
		return p.evalConst(e.F)
	case *ast.Binary:
		x, ok := p.evalConst(e.X)
		if !ok {
			return 0, false
		}
		// short-circuit forms must not require both sides constant
		if e.Op == token.AndAnd {
			if x == 0 {
				return 0, true
			}
			y, ok := p.evalConst(e.Y)
			if !ok {
				return 0, false
			}
			return boolVal(y != 0), true
		}
		if e.Op == token.OrOr {
			if x != 0 {
				return 1, true
			}
			y, ok := p.evalConst(e.Y)
			if !ok {
				return 0, false
			}
			return boolVal(y != 0), true
		}
		y, ok := p.evalConst(e.Y)
		if !ok {
			return 0, false
		}
		unsigned := isUnsignedConstCtx(e)
		return evalBinop(e.Op, x, y, unsigned)
	}
	return 0, false
}

func boolVal(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func truncConst(v int64, t types.Type) int64 {
	switch b, _ := t.(*types.Basic); {
	case b == nil:
		return int64(int32(v))
	case b.Kind == types.Char:
		return int64(int8(v))
	case b.Kind == types.UChar:
		return int64(uint8(v))
	case b.Kind == types.Short:
		return int64(int16(v))
	case b.Kind == types.UShort:
		return int64(uint16(v))
	case b.Kind == types.UInt:
		return int64(uint32(v))
	default:
		return int64(int32(v))
	}
}

func isUnsignedConstCtx(e *ast.Binary) bool {
	t := e.Type()
	if b, ok := t.(*types.Basic); ok {
		return b.Kind == types.UInt
	}
	return false
}

func evalBinop(op token.Kind, x, y int64, unsigned bool) (int64, bool) {
	ux, uy := uint32(x), uint32(y)
	switch op {
	case token.Plus:
		return int64(int32(ux + uy)), true
	case token.Minus:
		return int64(int32(ux - uy)), true
	case token.Star:
		return int64(int32(ux * uy)), true
	case token.Slash:
		if y == 0 {
			return 0, false
		}
		if unsigned {
			return int64(int32(ux / uy)), true
		}
		return int64(int32(x) / int32(y)), true
	case token.Percent:
		if y == 0 {
			return 0, false
		}
		if unsigned {
			return int64(int32(ux % uy)), true
		}
		return int64(int32(x) % int32(y)), true
	case token.Shl:
		return int64(int32(ux << (uy & 31))), true
	case token.Shr:
		if unsigned {
			return int64(int32(ux >> (uy & 31))), true
		}
		return int64(int32(x) >> (uy & 31)), true
	case token.Amp:
		return int64(int32(ux & uy)), true
	case token.Pipe:
		return int64(int32(ux | uy)), true
	case token.Caret:
		return int64(int32(ux ^ uy)), true
	case token.Eq:
		return boolVal(ux == uy), true
	case token.Ne:
		return boolVal(ux != uy), true
	case token.Lt:
		if unsigned {
			return boolVal(ux < uy), true
		}
		return boolVal(int32(x) < int32(y)), true
	case token.Le:
		if unsigned {
			return boolVal(ux <= uy), true
		}
		return boolVal(int32(x) <= int32(y)), true
	case token.Gt:
		if unsigned {
			return boolVal(ux > uy), true
		}
		return boolVal(int32(x) > int32(y)), true
	case token.Ge:
		if unsigned {
			return boolVal(ux >= uy), true
		}
		return boolVal(int32(x) >= int32(y)), true
	}
	return 0, false
}

// EvalConst exposes constant evaluation for other passes (codegen needs
// case-label values).
func EvalConst(e ast.Expr) (int64, bool) {
	var p Parser
	return p.evalConst(e)
}
