package parser

import (
	"strings"
	"testing"

	"gcsafety/internal/cc/ast"
	"gcsafety/internal/cc/types"
)

func mustParse(t *testing.T, src string) *ast.File {
	t.Helper()
	f, err := Parse("test.c", src)
	if err != nil {
		t.Fatalf("parse error: %v", err)
	}
	return f
}

func parseErr(t *testing.T, src string) error {
	t.Helper()
	_, err := Parse("test.c", src)
	if err == nil {
		t.Fatalf("expected parse error for %q", src)
	}
	return err
}

func TestParseEmptyMain(t *testing.T) {
	f := mustParse(t, "int main() { return 0; }")
	fd := f.FuncByName("main")
	if fd == nil {
		t.Fatal("main not found")
	}
	if len(fd.Body.Stmts) != 1 {
		t.Fatalf("got %d statements, want 1", len(fd.Body.Stmts))
	}
}

func TestParseGlobals(t *testing.T) {
	f := mustParse(t, `
int x;
static int y = 5;
char *msg = "hello";
int arr[10];
int table[] = {1, 2, 3, 4};
`)
	var vars []*ast.VarDecl
	for _, d := range f.Decls {
		if v, ok := d.(*ast.VarDecl); ok {
			vars = append(vars, v)
		}
	}
	if len(vars) != 5 {
		t.Fatalf("got %d globals, want 5", len(vars))
	}
	if vars[1].Obj.Storage != ast.Static {
		t.Error("y should be static")
	}
	arr := vars[4].Obj.Type.(*types.Array)
	if arr.Len != 4 {
		t.Errorf("table length = %d, want 4 (inferred)", arr.Len)
	}
}

func TestStringArrayLengthInference(t *testing.T) {
	f := mustParse(t, `char greeting[] = "hi";`)
	v := f.Decls[0].(*ast.VarDecl)
	if got := v.Obj.Type.(*types.Array).Len; got != 3 {
		t.Fatalf("greeting length = %d, want 3 (2 chars + NUL)", got)
	}
}

func TestParseStruct(t *testing.T) {
	f := mustParse(t, `
struct point { int x; int y; };
struct point origin;
int use() { return origin.x + origin.y; }
`)
	v := f.Decls[0].(*ast.VarDecl)
	st := v.Obj.Type.(*types.Struct)
	if st.Size() != 8 {
		t.Errorf("struct point size = %d, want 8", st.Size())
	}
	if st.Fields[1].Off != 4 {
		t.Errorf("y offset = %d, want 4", st.Fields[1].Off)
	}
}

func TestStructLayoutAlignment(t *testing.T) {
	f := mustParse(t, `struct s { char c; int i; char d; }; struct s v;`)
	st := f.Decls[0].(*ast.VarDecl).Obj.Type.(*types.Struct)
	if st.Fields[1].Off != 4 {
		t.Errorf("i offset = %d, want 4", st.Fields[1].Off)
	}
	if st.Size() != 12 {
		t.Errorf("size = %d, want 12", st.Size())
	}
}

func TestUnionLayout(t *testing.T) {
	f := mustParse(t, `union u { char c; int i; short s; }; union u v;`)
	u := f.Decls[0].(*ast.VarDecl).Obj.Type.(*types.Struct)
	if u.Size() != 4 {
		t.Errorf("union size = %d, want 4", u.Size())
	}
	for _, fl := range u.Fields {
		if fl.Off != 0 {
			t.Errorf("union field %s at offset %d", fl.Name, fl.Off)
		}
	}
}

func TestSelfReferentialStruct(t *testing.T) {
	mustParse(t, `
struct node { int val; struct node *next; };
struct node *head;
int sum() {
    struct node *p;
    int s = 0;
    for (p = head; p != 0; p = p->next) s += p->val;
    return s;
}
`)
}

func TestTypedef(t *testing.T) {
	f := mustParse(t, `
typedef struct node { int v; struct node *next; } Node;
typedef Node *NodePtr;
NodePtr head;
int first() { return head->v; }
`)
	v := f.Decls[0].(*ast.VarDecl)
	pt := v.Obj.Type.(*types.Pointer)
	if _, ok := pt.Elem.(*types.Struct); !ok {
		t.Fatalf("NodePtr elem = %T, want struct", pt.Elem)
	}
}

func TestEnum(t *testing.T) {
	mustParse(t, `
enum color { RED, GREEN = 5, BLUE };
int f() { return RED + GREEN + BLUE; }
int arr[BLUE];
`)
	f := mustParse(t, `enum e { A = 2, B }; int arr[B];`)
	arr := f.Decls[0].(*ast.VarDecl).Obj.Type.(*types.Array)
	if arr.Len != 3 {
		t.Fatalf("arr len = %d, want 3", arr.Len)
	}
}

func TestFunctionPointerDeclarator(t *testing.T) {
	f := mustParse(t, `
int apply(int (*fn)(int), int x) { return fn(x); }
`)
	fd := f.FuncByName("apply")
	pt := fd.FType.Params[0].Type.(*types.Pointer)
	if _, ok := pt.Elem.(*types.Func); !ok {
		t.Fatalf("param 0 = %s, want pointer to function", fd.FType.Params[0].Type)
	}
}

func TestExpressionTypes(t *testing.T) {
	f := mustParse(t, `
char *p;
int i;
int g() { return p[i]; }
char *h() { return p + i; }
int d() { return p - p; }
`)
	_ = f
}

func TestPointerArithTypeErrors(t *testing.T) {
	parseErr(t, `char *p; char *q; int f() { return (p + q) - p; }`)
	parseErr(t, `int f() { return *5; }`)
	parseErr(t, `struct s { int x; }; struct s v; int f() { return v->x; }`)
}

func TestUndeclared(t *testing.T) {
	err := parseErr(t, `int f() { return zzz; }`)
	if !strings.Contains(err.Error(), "undeclared") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestLvalueErrors(t *testing.T) {
	parseErr(t, `int f() { 5 = 3; return 0; }`)
	parseErr(t, `int g() { int x; (x + 1)++; return x; }`)
	parseErr(t, `int h() { int x; &(x + 1); return x; }`)
}

func TestControlFlowParsing(t *testing.T) {
	mustParse(t, `
int collatz(int n) {
    int steps = 0;
    while (n != 1) {
        if (n % 2 == 0) n = n / 2;
        else n = 3 * n + 1;
        steps++;
    }
    return steps;
}
int loops() {
    int i, s = 0;
    for (i = 0; i < 10; i++) s += i;
    do { s--; } while (s > 20);
    return s;
}
`)
}

func TestSwitchParsing(t *testing.T) {
	f := mustParse(t, `
int classify(int c) {
    switch (c) {
    case 'a':
    case 'b':
        return 1;
    case 10:
        return 2;
    default:
        return 0;
    }
}
`)
	fd := f.FuncByName("classify")
	sw := fd.Body.Stmts[0].(*ast.Switch)
	if len(sw.Cases) != 3 {
		t.Fatalf("got %d cases, want 3", len(sw.Cases))
	}
	if len(sw.Cases[0].Vals) != 2 {
		t.Fatalf("first clause has %d labels, want 2", len(sw.Cases[0].Vals))
	}
	if sw.Cases[2].Vals != nil {
		t.Fatal("third clause should be default")
	}
}

func TestCharAndStringEscapes(t *testing.T) {
	f := mustParse(t, `
char nl = '\n';
char *s = "a\tb\\c\"d\0e";
`)
	v := f.Decls[0].(*ast.VarDecl)
	if v.Init.(*ast.CharLit).Val != '\n' {
		t.Error("newline escape wrong")
	}
	s := f.Decls[1].(*ast.VarDecl).Init.(*ast.StrLit)
	if s.Val != "a\tb\\c\"d\x00e" {
		t.Errorf("string = %q", s.Val)
	}
}

func TestStringConcatenation(t *testing.T) {
	f := mustParse(t, `char *s = "foo" "bar";`)
	s := f.Decls[0].(*ast.VarDecl).Init.(*ast.StrLit)
	if s.Val != "foobar" {
		t.Fatalf("concatenated = %q", s.Val)
	}
}

func TestNumericLiterals(t *testing.T) {
	f := mustParse(t, `
int a = 0x1F;
int b = 017;
int c = 42u;
int d = 1000000L;
`)
	want := []int64{31, 15, 42, 1000000}
	for i, w := range want {
		v := f.Decls[i].(*ast.VarDecl).Init.(*ast.IntLit)
		if v.Val != w {
			t.Errorf("decl %d = %d, want %d", i, v.Val, w)
		}
	}
}

func TestSizeof(t *testing.T) {
	f := mustParse(t, `
struct big { int a; int b; char c; };
int s1[sizeof(int)];
int s2[sizeof(struct big)];
int s3[sizeof(char *)];
`)
	lens := []int{4, 12, 4}
	for i, w := range lens {
		arr := f.Decls[i].(*ast.VarDecl).Obj.Type.(*types.Array)
		if arr.Len != w {
			t.Errorf("s%d len = %d, want %d", i+1, arr.Len, w)
		}
	}
}

func TestCastsAndConditional(t *testing.T) {
	mustParse(t, `
char *mem();
int f(int n) {
    char *p = (char *)mem();
    unsigned u = (unsigned)n;
    int x = n > 0 ? n : -n;
    return *p + (int)u + x;
}
`)
}

func TestCommaOperator(t *testing.T) {
	f := mustParse(t, `int f(int a, int b) { return (a++, b++, a + b); }`)
	_ = f
}

func TestCommentHandling(t *testing.T) {
	mustParse(t, `
/* block comment
   spanning lines */
int x; // line comment
int /* inline */ y;
`)
}

func TestCppLineMarkers(t *testing.T) {
	mustParse(t, `# 1 "foo.c"
int x;
#pragma whatever
int y;
`)
}

func TestPositionsRecorded(t *testing.T) {
	src := `int main() { return 1 + 2; }`
	f := mustParse(t, src)
	fd := f.FuncByName("main")
	ret := fd.Body.Stmts[0].(*ast.Return)
	b := ret.X.(*ast.Binary)
	if got := src[b.Pos().Off:b.End()]; got != "1 + 2" {
		t.Fatalf("binary span = %q, want %q", got, "1 + 2")
	}
}

func TestNestedDeclaratorArrayOfPointers(t *testing.T) {
	f := mustParse(t, `char *names[4];`)
	arr := f.Decls[0].(*ast.VarDecl).Obj.Type.(*types.Array)
	if arr.Len != 4 {
		t.Fatalf("len = %d", arr.Len)
	}
	if _, ok := arr.Elem.(*types.Pointer); !ok {
		t.Fatalf("elem = %s, want char *", arr.Elem)
	}
}

func TestVariadicDecl(t *testing.T) {
	f := mustParse(t, `int printf_like(char *fmt, ...); int f() { return printf_like("x", 1, 2, 3); }`)
	_ = f
}

func TestBuiltinsAvailable(t *testing.T) {
	mustParse(t, `
int main() {
    char *p = (char *)GC_malloc(100);
    p = (char *)GC_same_obj((void *)(p + 1), (void *)p);
    print_int(strlen(p));
    return 0;
}
`)
}

func TestAddrTakenFlag(t *testing.T) {
	f := mustParse(t, `
void g(int *p);
int f() { int x; int y; g(&x); return x + y; }
`)
	fd := f.FuncByName("f")
	ds := fd.Body.Stmts[0].(*ast.DeclStmt)
	if !ds.Decls[0].Obj.AddrTaken {
		t.Error("x should be AddrTaken")
	}
	ds2 := fd.Body.Stmts[1].(*ast.DeclStmt)
	if ds2.Decls[0].Obj.AddrTaken {
		t.Error("y should not be AddrTaken")
	}
}

func TestShadowing(t *testing.T) {
	f := mustParse(t, `
int x = 1;
int f() {
    int x = 2;
    { int x = 3; x++; }
    return x;
}
`)
	_ = f
}

func TestPrintExprRoundTrip(t *testing.T) {
	src := `int f(int a, char *p) { return a + p[a * 2] - (a ? 1 : 2); }`
	f := mustParse(t, src)
	fd := f.FuncByName("f")
	ret := fd.Body.Stmts[0].(*ast.Return)
	text := ast.PrintExpr(ret.X)
	// Re-parse the printed text inside an equivalent frame.
	re := `int f(int a, char *p) { return ` + text + `; }`
	mustParse(t, re)
}

func TestErrorRecoveryContinues(t *testing.T) {
	_, err := Parse("test.c", `
int good1() { return 1; }
int bad() { return @#$; }
int good2() { return 2; }
`)
	if err == nil {
		t.Fatal("expected error")
	}
}
