// Package token defines the lexical tokens of the ANSI C subset accepted by
// the preprocessor's front end, together with source positions. The
// annotator rewrites the original source text by byte offset (the paper's
// "list of insertions and deletions, sorted by character position"), so
// every token records the exact byte range it occupies.
package token

import "fmt"

// Kind identifies a lexical token class.
type Kind int

// Token kinds. Operator kinds are grouped so precedence tables stay compact.
const (
	EOF Kind = iota
	Ident
	TypeName // identifier registered as a typedef name
	IntLit
	CharLit
	StrLit

	// Punctuation.
	LParen
	RParen
	LBrace
	RBrace
	LBracket
	RBracket
	Semi
	Comma
	Colon
	Question
	Ellipsis

	// Operators.
	Assign    // =
	AddAssign // +=
	SubAssign // -=
	MulAssign // *=
	DivAssign // /=
	ModAssign // %=
	AndAssign // &=
	OrAssign  // |=
	XorAssign // ^=
	ShlAssign // <<=
	ShrAssign // >>=
	Inc       // ++
	Dec       // --
	Plus      // +
	Minus     // -
	Star      // *
	Slash     // /
	Percent   // %
	Amp       // &
	Pipe      // |
	Caret     // ^
	Tilde     // ~
	Not       // !
	Shl       // <<
	Shr       // >>
	Lt        // <
	Gt        // >
	Le        // <=
	Ge        // >=
	Eq        // ==
	Ne        // !=
	AndAnd    // &&
	OrOr      // ||
	Dot       // .
	Arrow     // ->

	// Keywords.
	KwAuto
	KwBreak
	KwCase
	KwChar
	KwConst
	KwContinue
	KwDefault
	KwDo
	KwDouble
	KwElse
	KwEnum
	KwExtern
	KwFloat
	KwFor
	KwGoto
	KwIf
	KwInt
	KwLong
	KwRegister
	KwReturn
	KwShort
	KwSigned
	KwSizeof
	KwStatic
	KwStruct
	KwSwitch
	KwTypedef
	KwUnion
	KwUnsigned
	KwVoid
	KwVolatile
	KwWhile
)

var kindNames = map[Kind]string{
	EOF: "EOF", Ident: "identifier", TypeName: "type name", IntLit: "integer literal",
	CharLit: "character literal", StrLit: "string literal",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}", LBracket: "[", RBracket: "]",
	Semi: ";", Comma: ",", Colon: ":", Question: "?", Ellipsis: "...",
	Assign: "=", AddAssign: "+=", SubAssign: "-=", MulAssign: "*=", DivAssign: "/=",
	ModAssign: "%=", AndAssign: "&=", OrAssign: "|=", XorAssign: "^=",
	ShlAssign: "<<=", ShrAssign: ">>=",
	Inc: "++", Dec: "--", Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%",
	Amp: "&", Pipe: "|", Caret: "^", Tilde: "~", Not: "!", Shl: "<<", Shr: ">>",
	Lt: "<", Gt: ">", Le: "<=", Ge: ">=", Eq: "==", Ne: "!=", AndAnd: "&&", OrOr: "||",
	Dot: ".", Arrow: "->",
	KwAuto: "auto", KwBreak: "break", KwCase: "case", KwChar: "char", KwConst: "const",
	KwContinue: "continue", KwDefault: "default", KwDo: "do", KwDouble: "double",
	KwElse: "else", KwEnum: "enum", KwExtern: "extern", KwFloat: "float", KwFor: "for",
	KwGoto: "goto", KwIf: "if", KwInt: "int", KwLong: "long", KwRegister: "register",
	KwReturn: "return", KwShort: "short", KwSigned: "signed", KwSizeof: "sizeof",
	KwStatic: "static", KwStruct: "struct", KwSwitch: "switch", KwTypedef: "typedef",
	KwUnion: "union", KwUnsigned: "unsigned", KwVoid: "void", KwVolatile: "volatile",
	KwWhile: "while",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Keywords maps keyword spellings to their token kinds.
var Keywords = map[string]Kind{
	"auto": KwAuto, "break": KwBreak, "case": KwCase, "char": KwChar,
	"const": KwConst, "continue": KwContinue, "default": KwDefault, "do": KwDo,
	"double": KwDouble, "else": KwElse, "enum": KwEnum, "extern": KwExtern,
	"float": KwFloat, "for": KwFor, "goto": KwGoto, "if": KwIf, "int": KwInt,
	"long": KwLong, "register": KwRegister, "return": KwReturn, "short": KwShort,
	"signed": KwSigned, "sizeof": KwSizeof, "static": KwStatic, "struct": KwStruct,
	"switch": KwSwitch, "typedef": KwTypedef, "union": KwUnion,
	"unsigned": KwUnsigned, "void": KwVoid, "volatile": KwVolatile, "while": KwWhile,
}

// Pos is a position in the source text.
type Pos struct {
	Off  int // byte offset, 0-based
	Line int // 1-based
	Col  int // 1-based, in bytes
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token. End is the byte offset one past the token's
// final character, so the token's source text is input[Pos.Off:End].
type Token struct {
	Kind Kind
	Text string // raw source spelling
	Pos  Pos
	End  int

	// IntVal is the decoded value for IntLit and CharLit tokens.
	IntVal int64
	// StrVal is the decoded (unescaped) contents for StrLit tokens.
	StrVal string
}

// IsAssign reports whether k is an assignment operator (including the
// compound forms).
func (k Kind) IsAssign() bool { return k >= Assign && k <= ShrAssign }

// IsKeyword reports whether k is a keyword.
func (k Kind) IsKeyword() bool { return k >= KwAuto && k <= KwWhile }
