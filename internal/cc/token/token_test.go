package token

import "testing"

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{
		EOF:       "EOF",
		Ident:     "identifier",
		Plus:      "+",
		ShlAssign: "<<=",
		Arrow:     "->",
		KwWhile:   "while",
		Ellipsis:  "...",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", int(k), got, want)
		}
	}
	if Kind(9999).String() == "" {
		t.Error("unknown kinds must still render")
	}
}

func TestIsAssign(t *testing.T) {
	for _, k := range []Kind{Assign, AddAssign, SubAssign, MulAssign, DivAssign,
		ModAssign, AndAssign, OrAssign, XorAssign, ShlAssign, ShrAssign} {
		if !k.IsAssign() {
			t.Errorf("%s not recognized as assignment", k)
		}
	}
	for _, k := range []Kind{Plus, Eq, Inc, Comma, KwInt} {
		if k.IsAssign() {
			t.Errorf("%s wrongly recognized as assignment", k)
		}
	}
}

func TestIsKeyword(t *testing.T) {
	for word, k := range Keywords {
		if !k.IsKeyword() {
			t.Errorf("keyword %q kind not in keyword range", word)
		}
	}
	for _, k := range []Kind{Ident, Plus, IntLit, EOF} {
		if k.IsKeyword() {
			t.Errorf("%s wrongly recognized as keyword", k)
		}
	}
	if len(Keywords) != 32 {
		t.Errorf("ANSI C has 32 keywords; table has %d", len(Keywords))
	}
}

func TestPosString(t *testing.T) {
	p := Pos{Off: 10, Line: 3, Col: 7}
	if p.String() != "3:7" {
		t.Errorf("Pos.String() = %q", p.String())
	}
}
