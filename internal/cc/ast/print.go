package ast

import (
	"fmt"
	"strconv"
	"strings"

	"gcsafety/internal/cc/token"
	"gcsafety/internal/cc/types"
)

// PrintExpr renders an expression back to C source text. Synthesized nodes
// (temporaries, KEEP_LIVE) print in the forms the paper's preprocessor
// emits. Subexpressions are parenthesized defensively; like the paper's
// output, the result "is not normally intended for human consumption".
func PrintExpr(e Expr) string {
	var sb strings.Builder
	printExpr(&sb, e)
	return sb.String()
}

func printExpr(sb *strings.Builder, e Expr) {
	switch e := e.(type) {
	case *Ident:
		sb.WriteString(e.Name)
	case *IntLit:
		sb.WriteString(strconv.FormatInt(e.Val, 10))
	case *CharLit:
		sb.WriteString(quoteChar(byte(e.Val)))
	case *StrLit:
		sb.WriteString(quoteString(e.Val))
	case *Unary:
		if e.Postfix {
			printOperand(sb, e.X)
			sb.WriteString(e.Op.String())
		} else {
			sb.WriteString(e.Op.String())
			// Avoid gluing `- -x` into `--x`.
			if e.Op == token.Minus || e.Op == token.Plus || e.Op == token.Amp {
				sb.WriteString(" ")
			}
			printOperand(sb, e.X)
		}
	case *Binary:
		printOperand(sb, e.X)
		sb.WriteString(" " + e.Op.String() + " ")
		printOperand(sb, e.Y)
	case *Assign:
		printOperand(sb, e.L)
		sb.WriteString(" " + e.Op.String() + " ")
		printOperand(sb, e.R)
	case *Cond:
		printOperand(sb, e.C)
		sb.WriteString(" ? ")
		printOperand(sb, e.T)
		sb.WriteString(" : ")
		printOperand(sb, e.F)
	case *Call:
		printOperand(sb, e.Fun)
		sb.WriteString("(")
		for i, a := range e.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			printExpr(sb, a)
		}
		sb.WriteString(")")
	case *Index:
		printOperand(sb, e.X)
		sb.WriteString("[")
		printExpr(sb, e.I)
		sb.WriteString("]")
	case *Member:
		printOperand(sb, e.X)
		if e.Arrow {
			sb.WriteString("->")
		} else {
			sb.WriteString(".")
		}
		sb.WriteString(e.Name)
	case *Cast:
		sb.WriteString("(" + typeText(e.To, e.TypeText) + ")")
		printOperand(sb, e.X)
	case *SizeofExpr:
		sb.WriteString("sizeof ")
		printOperand(sb, e.X)
	case *SizeofType:
		sb.WriteString("sizeof(" + typeText(e.Of, e.TypeText) + ")")
	case *Comma:
		sb.WriteString("(")
		printExpr(sb, e.X)
		sb.WriteString(", ")
		printExpr(sb, e.Y)
		sb.WriteString(")")
	case *Paren:
		switch e.X.(type) {
		case *Comma, *Paren:
			// these already print self-delimited; extra parentheses would
			// accumulate across print/parse round trips
			printExpr(sb, e.X)
		default:
			sb.WriteString("(")
			printExpr(sb, e.X)
			sb.WriteString(")")
		}
	case *KeepLive:
		if e.Checked {
			sb.WriteString("GC_same_obj(")
		} else {
			sb.WriteString("KEEP_LIVE(")
		}
		printExpr(sb, e.X)
		sb.WriteString(", ")
		if e.Base == nil {
			sb.WriteString("0")
		} else {
			sb.WriteString(e.Base.Name)
		}
		sb.WriteString(")")
	default:
		fmt.Fprintf(sb, "/*?%T?*/", e)
	}
}

// printOperand prints e, parenthesizing anything that is not primary.
func printOperand(sb *strings.Builder, e Expr) {
	switch e.(type) {
	case *Ident, *IntLit, *CharLit, *StrLit, *Paren, *Call, *Index, *Member, *Comma, *KeepLive:
		printExpr(sb, e)
	default:
		sb.WriteString("(")
		printExpr(sb, e)
		sb.WriteString(")")
	}
}

func typeText(t types.Type, original string) string {
	if original != "" {
		return original
	}
	return t.String()
}

func quoteChar(b byte) string {
	switch b {
	case '\'':
		return `'\''`
	case '\\':
		return `'\\'`
	case '\n':
		return `'\n'`
	case '\t':
		return `'\t'`
	case 0:
		return `'\0'`
	}
	if b >= 32 && b < 127 {
		return "'" + string(b) + "'"
	}
	return fmt.Sprintf(`'\x%02x'`, b)
}

func quoteString(s string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		b := s[i]
		switch b {
		case '"':
			sb.WriteString(`\"`)
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		case '\t':
			sb.WriteString(`\t`)
		default:
			if b >= 32 && b < 127 {
				sb.WriteByte(b)
			} else {
				fmt.Fprintf(&sb, `\%03o`, b)
			}
		}
	}
	sb.WriteByte('"')
	return sb.String()
}
