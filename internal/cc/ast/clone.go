package ast

// Clone returns a deep copy of the file: every node and every Object is
// duplicated, with Object identity preserved (all references to one Object
// in f map to one Object in the copy), so passes that mutate the tree or
// its objects in place — the gcsafe annotator sets Object.AddrTaken,
// appends FuncDecl.Temps and rewrites expressions — can run on the copy
// while f stays frozen. This is what lets a content-addressed cache hand
// the same parsed AST to many downstream stages.
//
// Types (types.Type, *types.Field, *types.Func) are shared, not copied:
// after parsing they are immutable — only the parser itself completes them
// (inferred array lengths) before Parse returns.
func (f *File) Clone() *File {
	c := &cloner{objs: map[*Object]*Object{}}
	out := &File{Name: f.Name, Source: f.Source}
	for _, d := range f.Decls {
		out.Decls = append(out.Decls, c.decl(d))
	}
	return out
}

// cloner maps original Objects to their copies so shared references (a
// VarDecl and every Ident naming it) stay shared in the clone.
type cloner struct {
	objs map[*Object]*Object
}

func (c *cloner) obj(o *Object) *Object {
	if o == nil {
		return nil
	}
	if n, ok := c.objs[o]; ok {
		return n
	}
	n := *o
	c.objs[o] = &n
	return &n
}

func (c *cloner) objs_(os []*Object) []*Object {
	if os == nil {
		return nil
	}
	out := make([]*Object, len(os))
	for i, o := range os {
		out[i] = c.obj(o)
	}
	return out
}

func (c *cloner) decl(d Decl) Decl {
	switch d := d.(type) {
	case *VarDecl:
		return c.varDecl(d)
	case *FuncDecl:
		n := *d
		n.Obj = c.obj(d.Obj)
		n.Params = c.objs_(d.Params)
		n.Temps = c.objs_(d.Temps)
		if d.Body != nil {
			n.Body = c.stmt(d.Body).(*Block)
		}
		return &n
	}
	return d
}

func (c *cloner) varDecl(d *VarDecl) *VarDecl {
	if d == nil {
		return nil
	}
	n := *d
	n.Obj = c.obj(d.Obj)
	n.Init = c.expr(d.Init)
	n.InitList = c.exprs(d.InitList)
	return &n
}

func (c *cloner) exprs(es []Expr) []Expr {
	if es == nil {
		return nil
	}
	out := make([]Expr, len(es))
	for i, e := range es {
		out[i] = c.expr(e)
	}
	return out
}

func (c *cloner) expr(e Expr) Expr {
	switch e := e.(type) {
	case nil:
		return nil
	case *Ident:
		n := *e
		n.Obj = c.obj(e.Obj)
		return &n
	case *IntLit:
		n := *e
		return &n
	case *CharLit:
		n := *e
		return &n
	case *StrLit:
		n := *e
		return &n
	case *Unary:
		n := *e
		n.X = c.expr(e.X)
		return &n
	case *Binary:
		n := *e
		n.X, n.Y = c.expr(e.X), c.expr(e.Y)
		return &n
	case *Assign:
		n := *e
		n.L, n.R = c.expr(e.L), c.expr(e.R)
		return &n
	case *Cond:
		n := *e
		n.C, n.T, n.F = c.expr(e.C), c.expr(e.T), c.expr(e.F)
		return &n
	case *Call:
		n := *e
		n.Fun = c.expr(e.Fun)
		n.Args = c.exprs(e.Args)
		return &n
	case *Index:
		n := *e
		n.X, n.I = c.expr(e.X), c.expr(e.I)
		return &n
	case *Member:
		n := *e
		n.X = c.expr(e.X)
		return &n
	case *Cast:
		n := *e
		n.X = c.expr(e.X)
		return &n
	case *SizeofExpr:
		n := *e
		n.X = c.expr(e.X)
		return &n
	case *SizeofType:
		n := *e
		return &n
	case *Comma:
		n := *e
		n.X, n.Y = c.expr(e.X), c.expr(e.Y)
		return &n
	case *Paren:
		n := *e
		n.X = c.expr(e.X)
		return &n
	case *KeepLive:
		n := *e
		n.X = c.expr(e.X)
		if e.Base != nil {
			n.Base = c.expr(e.Base).(*Ident)
		}
		return &n
	}
	return e
}

func (c *cloner) stmts(ss []Stmt) []Stmt {
	if ss == nil {
		return nil
	}
	out := make([]Stmt, len(ss))
	for i, s := range ss {
		out[i] = c.stmt(s)
	}
	return out
}

func (c *cloner) stmt(s Stmt) Stmt {
	switch s := s.(type) {
	case nil:
		return nil
	case *ExprStmt:
		n := *s
		n.X = c.expr(s.X)
		return &n
	case *DeclStmt:
		n := *s
		n.Decls = make([]*VarDecl, len(s.Decls))
		for i, d := range s.Decls {
			n.Decls[i] = c.varDecl(d)
		}
		return &n
	case *Block:
		n := *s
		n.Stmts = c.stmts(s.Stmts)
		return &n
	case *If:
		n := *s
		n.Cond = c.expr(s.Cond)
		n.Then = c.stmt(s.Then)
		n.Else = c.stmt(s.Else)
		return &n
	case *While:
		n := *s
		n.Cond = c.expr(s.Cond)
		n.Body = c.stmt(s.Body)
		return &n
	case *DoWhile:
		n := *s
		n.Body = c.stmt(s.Body)
		n.Cond = c.expr(s.Cond)
		return &n
	case *For:
		n := *s
		n.Init = c.stmt(s.Init)
		n.Cond = c.expr(s.Cond)
		n.Post = c.expr(s.Post)
		n.Body = c.stmt(s.Body)
		return &n
	case *Return:
		n := *s
		n.X = c.expr(s.X)
		return &n
	case *Break:
		n := *s
		return &n
	case *Continue:
		n := *s
		return &n
	case *Switch:
		n := *s
		n.X = c.expr(s.X)
		n.Cases = make([]*CaseClause, len(s.Cases))
		for i, cc := range s.Cases {
			nc := *cc
			nc.Vals = c.exprs(cc.Vals)
			nc.Stmts = c.stmts(cc.Stmts)
			n.Cases[i] = &nc
		}
		return &n
	case *Empty:
		n := *s
		return &n
	}
	return s
}
