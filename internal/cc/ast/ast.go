// Package ast defines the abstract syntax tree for the C subset. Every node
// records the byte range it occupies in the original source so that the
// GC-safety annotator can be implemented exactly as the paper describes: as
// a list of insertions and deletions sorted by character position, applied
// to the unmodified input text.
package ast

import (
	"gcsafety/internal/cc/token"
	"gcsafety/internal/cc/types"
)

// ObjKind classifies declared objects.
type ObjKind int

// Object kinds.
const (
	ObjVar ObjKind = iota
	ObjParam
	ObjFunc
	ObjEnumConst
	ObjTemp // compiler-introduced temporary (never in the source text)
)

// Storage classifies where an object lives.
type Storage int

// Storage classes.
const (
	Auto Storage = iota
	Static
	Extern
	Register
)

// Object is a declared entity: variable, parameter, function, enum constant
// or synthesized temporary. The annotator and code generator share Objects,
// so per-object analysis facts live here.
type Object struct {
	Name    string
	Kind    ObjKind
	Type    types.Type
	Storage Storage
	Global  bool
	EnumVal int64
	// AddrTaken is set by the checker when the object's address is taken;
	// such variables cannot be register-allocated.
	AddrTaken bool
	// Seq disambiguates shadowed names within one function.
	Seq int
}

// IsPointerVar reports whether the object is a variable (or parameter or
// temporary) of pointer type — a "possible heap pointer" in the paper's
// BASE definition.
func (o *Object) IsPointerVar() bool {
	if o == nil {
		return false
	}
	switch o.Kind {
	case ObjVar, ObjParam, ObjTemp:
		return types.IsPointer(types.Decay(o.Type))
	}
	return false
}

// Expr is any C expression node.
type Expr interface {
	Pos() token.Pos
	End() int
	// Type returns the checked C type of the expression (after the checker
	// has run); nil before checking.
	Type() types.Type
	exprNode()
}

// typed provides the Type storage shared by all expression nodes.
type typed struct{ T types.Type }

// Type returns the checked type.
func (t *typed) Type() types.Type { return t.T }

// SetType records the checked type of the node.
func (t *typed) SetType(ty types.Type) { t.T = ty }

// Ident is a reference to a named object.
type Ident struct {
	typed
	Name    string
	NamePos token.Pos
	NameEnd int
	Obj     *Object // resolved by the parser
}

// IntLit is an integer constant.
type IntLit struct {
	typed
	Val    int64
	LitPos token.Pos
	LitEnd int
}

// CharLit is a character constant.
type CharLit struct {
	typed
	Val    int64
	LitPos token.Pos
	LitEnd int
}

// StrLit is a string literal (already unescaped and concatenated).
type StrLit struct {
	typed
	Val    string
	LitPos token.Pos
	LitEnd int
}

// Unary is a prefix or postfix unary operation. For Inc/Dec, Postfix
// distinguishes x++ from ++x.
type Unary struct {
	typed
	Op      token.Kind // Amp, Star, Plus, Minus, Tilde, Not, Inc, Dec
	X       Expr
	Postfix bool
	OpPos   token.Pos
	OpEnd   int
}

// Binary is a binary operation (everything except assignment and comma).
type Binary struct {
	typed
	Op   token.Kind
	X, Y Expr
}

// Assign is a simple or compound assignment.
type Assign struct {
	typed
	Op   token.Kind // Assign .. ShrAssign
	L, R Expr
}

// Cond is the ?: operator.
type Cond struct {
	typed
	C, T, F Expr
}

// Call is a function call.
type Call struct {
	typed
	Fun    Expr
	Args   []Expr
	Lparen token.Pos
	Rparen int
}

// Index is a subscript expression X[I].
type Index struct {
	typed
	X, I   Expr
	Rbrack int
}

// Member is X.Name or X->Name.
type Member struct {
	typed
	X       Expr
	Name    string
	Arrow   bool
	NameEnd int
	Field   *types.Field // resolved by the checker
}

// Cast is an explicit type conversion.
type Cast struct {
	typed
	To       types.Type
	TypeText string // original spelling of the type, for diagnostics/printing
	X        Expr
	Lparen   token.Pos
}

// SizeofExpr is sizeof expr.
type SizeofExpr struct {
	typed
	X     Expr
	KwPos token.Pos
}

// SizeofType is sizeof(type-name).
type SizeofType struct {
	typed
	Of        types.Type
	TypeText  string
	KwPos     token.Pos
	RparenEnd int
}

// Comma is the comma operator X, Y.
type Comma struct {
	typed
	X, Y Expr
}

// Paren is a parenthesized expression, kept explicit so source positions of
// the rewritten text remain exact.
type Paren struct {
	typed
	X         Expr
	Lparen    token.Pos
	RparenEnd int
}

// KeepLive is the paper's KEEP_LIVE(e, y) annotation, introduced by the
// gcsafe pass (never written by users). Base may be nil when the paper's
// BASE(e) is NIL but the expression must still be made opaque (allocation
// results). When Checked is set, the node denotes the debugging-mode
// GC_same_obj call instead of the empty-asm form.
type KeepLive struct {
	typed
	X       Expr
	Base    *Ident
	Checked bool
}

// Position plumbing.

// Pos implements Expr.
func (x *Ident) Pos() token.Pos   { return x.NamePos }
func (x *Ident) End() int         { return x.NameEnd }
func (x *IntLit) Pos() token.Pos  { return x.LitPos }
func (x *IntLit) End() int        { return x.LitEnd }
func (x *CharLit) Pos() token.Pos { return x.LitPos }
func (x *CharLit) End() int       { return x.LitEnd }
func (x *StrLit) Pos() token.Pos  { return x.LitPos }
func (x *StrLit) End() int        { return x.LitEnd }
func (x *Unary) Pos() token.Pos {
	if x.Postfix {
		return x.X.Pos()
	}
	return x.OpPos
}
func (x *Unary) End() int {
	if x.Postfix {
		return x.OpEnd
	}
	return x.X.End()
}
func (x *Binary) Pos() token.Pos     { return x.X.Pos() }
func (x *Binary) End() int           { return x.Y.End() }
func (x *Assign) Pos() token.Pos     { return x.L.Pos() }
func (x *Assign) End() int           { return x.R.End() }
func (x *Cond) Pos() token.Pos       { return x.C.Pos() }
func (x *Cond) End() int             { return x.F.End() }
func (x *Call) Pos() token.Pos       { return x.Fun.Pos() }
func (x *Call) End() int             { return x.Rparen }
func (x *Index) Pos() token.Pos      { return x.X.Pos() }
func (x *Index) End() int            { return x.Rbrack }
func (x *Member) Pos() token.Pos     { return x.X.Pos() }
func (x *Member) End() int           { return x.NameEnd }
func (x *Cast) Pos() token.Pos       { return x.Lparen }
func (x *Cast) End() int             { return x.X.End() }
func (x *SizeofExpr) Pos() token.Pos { return x.KwPos }
func (x *SizeofExpr) End() int       { return x.X.End() }
func (x *SizeofType) Pos() token.Pos { return x.KwPos }
func (x *SizeofType) End() int       { return x.RparenEnd }
func (x *Comma) Pos() token.Pos      { return x.X.Pos() }
func (x *Comma) End() int            { return x.Y.End() }
func (x *Paren) Pos() token.Pos      { return x.Lparen }
func (x *Paren) End() int            { return x.RparenEnd }
func (x *KeepLive) Pos() token.Pos   { return x.X.Pos() }
func (x *KeepLive) End() int         { return x.X.End() }

func (*Ident) exprNode()      {}
func (*IntLit) exprNode()     {}
func (*CharLit) exprNode()    {}
func (*StrLit) exprNode()     {}
func (*Unary) exprNode()      {}
func (*Binary) exprNode()     {}
func (*Assign) exprNode()     {}
func (*Cond) exprNode()       {}
func (*Call) exprNode()       {}
func (*Index) exprNode()      {}
func (*Member) exprNode()     {}
func (*Cast) exprNode()       {}
func (*SizeofExpr) exprNode() {}
func (*SizeofType) exprNode() {}
func (*Comma) exprNode()      {}
func (*Paren) exprNode()      {}
func (*KeepLive) exprNode()   {}

// Unparen strips Paren wrappers.
func Unparen(e Expr) Expr {
	for {
		p, ok := e.(*Paren)
		if !ok {
			return e
		}
		e = p.X
	}
}

// Stmt is any statement node.
type Stmt interface {
	Pos() token.Pos
	stmtNode()
}

// ExprStmt is an expression statement.
type ExprStmt struct {
	X    Expr
	Semi int
}

// DeclStmt is a local declaration (possibly several declarators).
type DeclStmt struct {
	Decls []*VarDecl
	At    token.Pos
}

// Block is a brace-enclosed statement list.
type Block struct {
	Stmts  []Stmt
	Lbrace token.Pos
	Rbrace int
}

// If is an if/else statement.
type If struct {
	Cond       Expr
	Then, Else Stmt
	KwPos      token.Pos
}

// While is a while loop.
type While struct {
	Cond  Expr
	Body  Stmt
	KwPos token.Pos
}

// DoWhile is a do/while loop.
type DoWhile struct {
	Body  Stmt
	Cond  Expr
	KwPos token.Pos
}

// For is a for loop; any of Init, Cond, Post may be nil. Init is either an
// *ExprStmt or a *DeclStmt.
type For struct {
	Init  Stmt
	Cond  Expr
	Post  Expr
	Body  Stmt
	KwPos token.Pos
}

// Return is a return statement; X may be nil.
type Return struct {
	X     Expr
	KwPos token.Pos
}

// Break is a break statement.
type Break struct{ KwPos token.Pos }

// Continue is a continue statement.
type Continue struct{ KwPos token.Pos }

// CaseClause is one case (or default, when Vals is nil) group in a switch.
type CaseClause struct {
	Vals  []Expr // constant expressions; nil for default
	Stmts []Stmt
	KwPos token.Pos
}

// Switch is a switch statement with pre-grouped cases.
type Switch struct {
	X     Expr
	Cases []*CaseClause
	KwPos token.Pos
}

// Empty is a lone semicolon.
type Empty struct{ SemiPos token.Pos }

// Pos implements Stmt.
func (s *ExprStmt) Pos() token.Pos { return s.X.Pos() }
func (s *DeclStmt) Pos() token.Pos { return s.At }
func (s *Block) Pos() token.Pos    { return s.Lbrace }
func (s *If) Pos() token.Pos       { return s.KwPos }
func (s *While) Pos() token.Pos    { return s.KwPos }
func (s *DoWhile) Pos() token.Pos  { return s.KwPos }
func (s *For) Pos() token.Pos      { return s.KwPos }
func (s *Return) Pos() token.Pos   { return s.KwPos }
func (s *Break) Pos() token.Pos    { return s.KwPos }
func (s *Continue) Pos() token.Pos { return s.KwPos }
func (s *Switch) Pos() token.Pos   { return s.KwPos }
func (s *Empty) Pos() token.Pos    { return s.SemiPos }

func (*ExprStmt) stmtNode() {}
func (*DeclStmt) stmtNode() {}
func (*Block) stmtNode()    {}
func (*If) stmtNode()       {}
func (*While) stmtNode()    {}
func (*DoWhile) stmtNode()  {}
func (*For) stmtNode()      {}
func (*Return) stmtNode()   {}
func (*Break) stmtNode()    {}
func (*Continue) stmtNode() {}
func (*Switch) stmtNode()   {}
func (*Empty) stmtNode()    {}

// Decl is a top-level declaration.
type Decl interface {
	Pos() token.Pos
	declNode()
}

// VarDecl declares one variable (one declarator of a declaration).
type VarDecl struct {
	Obj      *Object
	Init     Expr   // scalar initializer, or nil
	InitList []Expr // brace-enclosed initializer elements, or nil
	At       token.Pos
	EndOff   int
}

// FuncDecl is a function definition (or, with Body nil, a prototype).
type FuncDecl struct {
	Obj    *Object
	FType  *types.Func
	Params []*Object
	Body   *Block
	At     token.Pos
	// Temps collects objects synthesized for this function by later passes
	// (the gcsafe temporaries); codegen allocates stack slots for them.
	Temps []*Object
}

// Pos implements Decl.
func (d *VarDecl) Pos() token.Pos  { return d.At }
func (d *FuncDecl) Pos() token.Pos { return d.At }

func (*VarDecl) declNode()  {}
func (*FuncDecl) declNode() {}

// File is one parsed translation unit.
type File struct {
	Name   string
	Source string
	Decls  []Decl
}

// FuncByName returns the function definition with the given name, or nil.
func (f *File) FuncByName(name string) *FuncDecl {
	for _, d := range f.Decls {
		if fd, ok := d.(*FuncDecl); ok && fd.Obj.Name == name && fd.Body != nil {
			return fd
		}
	}
	return nil
}
