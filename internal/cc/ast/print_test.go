package ast

import (
	"testing"

	"gcsafety/internal/cc/token"
	"gcsafety/internal/cc/types"
)

func id(name string) *Ident {
	i := &Ident{Name: name, Obj: &Object{Name: name, Kind: ObjVar, Type: types.IntType}}
	i.SetType(types.IntType)
	return i
}

func num(v int64) *IntLit {
	l := &IntLit{Val: v}
	l.SetType(types.IntType)
	return l
}

func TestPrintBasicExpressions(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{num(42), "42"},
		{id("x"), "x"},
		{&Binary{Op: token.Plus, X: id("a"), Y: num(1)}, "a + 1"},
		{&Binary{Op: token.Star, X: &Binary{Op: token.Plus, X: id("a"), Y: id("b")}, Y: num(2)},
			"(a + b) * 2"},
		{&Assign{Op: token.Assign, L: id("x"), R: num(5)}, "x = 5"},
		{&Assign{Op: token.AddAssign, L: id("x"), R: num(5)}, "x += 5"},
		{&Unary{Op: token.Minus, X: id("x")}, "- x"},
		{&Unary{Op: token.Star, X: id("p")}, "*p"},
		{&Unary{Op: token.Amp, X: id("x")}, "& x"},
		{&Unary{Op: token.Inc, X: id("x"), Postfix: true}, "x++"},
		{&Unary{Op: token.Dec, X: id("x")}, "--x"},
		{&Index{X: id("a"), I: num(3)}, "a[3]"},
		{&Member{X: id("s"), Name: "f"}, "s.f"},
		{&Member{X: id("p"), Name: "f", Arrow: true}, "p->f"},
		{&Cond{C: id("c"), T: num(1), F: num(2)}, "c ? 1 : 2"},
		{&Comma{X: id("a"), Y: id("b")}, "(a, b)"},
		{&Call{Fun: id("f"), Args: []Expr{num(1), num(2)}}, "f(1, 2)"},
		{&Paren{X: id("x")}, "(x)"},
	}
	for _, c := range cases {
		got := PrintExpr(c.e)
		if got != c.want {
			t.Errorf("PrintExpr = %q, want %q", got, c.want)
		}
	}
}

func TestPrintKeepLive(t *testing.T) {
	kl := &KeepLive{X: &Binary{Op: token.Plus, X: id("p"), Y: num(1)}, Base: id("p")}
	if got := PrintExpr(kl); got != "KEEP_LIVE((p + 1), p)" && got != "KEEP_LIVE(p + 1, p)" {
		t.Errorf("got %q", got)
	}
	klc := &KeepLive{X: id("p"), Base: id("p"), Checked: true}
	if got := PrintExpr(klc); got != "GC_same_obj(p, p)" {
		t.Errorf("got %q", got)
	}
	klNil := &KeepLive{X: id("p")}
	if got := PrintExpr(klNil); got != "KEEP_LIVE(p, 0)" {
		t.Errorf("got %q", got)
	}
}

func TestPrintStringAndCharEscapes(t *testing.T) {
	s := &StrLit{Val: "a\nb\"c\\d\x01"}
	got := PrintExpr(s)
	want := `"a\nb\"c\\d\001"`
	if got != want {
		t.Errorf("string: got %q want %q", got, want)
	}
	c := &CharLit{Val: '\n'}
	if got := PrintExpr(c); got != `'\n'` {
		t.Errorf("char: got %q", got)
	}
	c2 := &CharLit{Val: 0}
	if got := PrintExpr(c2); got != `'\0'` {
		t.Errorf("nul char: got %q", got)
	}
}

func TestPrintCastAndSizeof(t *testing.T) {
	cast := &Cast{To: types.PointerTo(types.CharType), TypeText: "char *", X: id("x")}
	if got := PrintExpr(cast); got != "(char *)x" {
		t.Errorf("cast: got %q", got)
	}
	sz := &SizeofType{Of: types.IntType, TypeText: "int"}
	if got := PrintExpr(sz); got != "sizeof(int)" {
		t.Errorf("sizeof: got %q", got)
	}
}

func TestUnparen(t *testing.T) {
	inner := id("x")
	wrapped := &Paren{X: &Paren{X: inner}}
	if Unparen(wrapped) != inner {
		t.Error("Unparen did not strip nested parens")
	}
	if Unparen(inner) != inner {
		t.Error("Unparen changed a bare expression")
	}
}

func TestObjectPredicates(t *testing.T) {
	ptrVar := &Object{Name: "p", Kind: ObjVar, Type: types.PointerTo(types.CharType)}
	if !ptrVar.IsPointerVar() {
		t.Error("pointer variable not recognized")
	}
	intVar := &Object{Name: "i", Kind: ObjVar, Type: types.IntType}
	if intVar.IsPointerVar() {
		t.Error("int variable recognized as pointer")
	}
	fn := &Object{Name: "f", Kind: ObjFunc, Type: &types.Func{Ret: types.PointerTo(types.CharType)}}
	if fn.IsPointerVar() {
		t.Error("function recognized as pointer variable")
	}
	var nilObj *Object
	if nilObj.IsPointerVar() {
		t.Error("nil object recognized as pointer variable")
	}
	tmp := &Object{Name: "t", Kind: ObjTemp, Type: types.PointerTo(types.IntType)}
	if !tmp.IsPointerVar() {
		t.Error("pointer temp not recognized")
	}
}

func TestInspectVisitsEverything(t *testing.T) {
	// Build a statement tree and count identifier visits.
	body := &Block{Stmts: []Stmt{
		&ExprStmt{X: &Assign{Op: token.Assign, L: id("a"), R: &Binary{Op: token.Plus, X: id("b"), Y: id("c")}}},
		&If{Cond: id("d"), Then: &Return{X: id("e")}, Else: &ExprStmt{X: id("f")}},
		&While{Cond: id("g"), Body: &ExprStmt{X: id("h")}},
		&For{Init: &ExprStmt{X: id("i")}, Cond: id("j"), Post: id("k"), Body: &Empty{}},
		&Switch{X: id("l"), Cases: []*CaseClause{{Vals: []Expr{num(1)}, Stmts: []Stmt{&ExprStmt{X: id("m")}}}}},
		&DoWhile{Body: &ExprStmt{X: id("n")}, Cond: id("o")},
	}}
	count := 0
	Inspect(Stmt(body), func(e Expr) bool {
		if _, ok := e.(*Ident); ok {
			count++
		}
		return true
	})
	if count != 15 {
		t.Fatalf("visited %d identifiers, want 15", count)
	}
}

func TestInspectPrune(t *testing.T) {
	e := &Binary{Op: token.Plus, X: &Paren{X: id("deep")}, Y: id("shallow")}
	seen := map[string]bool{}
	Inspect(Expr(e), func(x Expr) bool {
		if p, ok := x.(*Paren); ok {
			_ = p
			return false // prune
		}
		if i, ok := x.(*Ident); ok {
			seen[i.Name] = true
		}
		return true
	})
	if seen["deep"] {
		t.Error("pruned subtree visited")
	}
	if !seen["shallow"] {
		t.Error("sibling not visited")
	}
}
