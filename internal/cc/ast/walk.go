package ast

// Inspect traverses the statement or expression tree rooted at n in
// depth-first order, calling f for every expression encountered. If f
// returns false for an expression, its subexpressions are skipped.
func Inspect(n any, f func(Expr) bool) {
	switch n := n.(type) {
	case nil:
	case Expr:
		inspectExpr(n, f)
	case Stmt:
		inspectStmt(n, f)
	case *File:
		for _, d := range n.Decls {
			Inspect(d, f)
		}
	case *FuncDecl:
		if n.Body != nil {
			inspectStmt(n.Body, f)
		}
	case *VarDecl:
		if n.Init != nil {
			inspectExpr(n.Init, f)
		}
		for _, e := range n.InitList {
			inspectExpr(e, f)
		}
	case Decl:
	}
}

func inspectStmt(s Stmt, f func(Expr) bool) {
	switch s := s.(type) {
	case *ExprStmt:
		inspectExpr(s.X, f)
	case *DeclStmt:
		for _, d := range s.Decls {
			Inspect(d, f)
		}
	case *Block:
		for _, st := range s.Stmts {
			inspectStmt(st, f)
		}
	case *If:
		inspectExpr(s.Cond, f)
		inspectStmt(s.Then, f)
		if s.Else != nil {
			inspectStmt(s.Else, f)
		}
	case *While:
		inspectExpr(s.Cond, f)
		inspectStmt(s.Body, f)
	case *DoWhile:
		inspectStmt(s.Body, f)
		inspectExpr(s.Cond, f)
	case *For:
		if s.Init != nil {
			inspectStmt(s.Init, f)
		}
		if s.Cond != nil {
			inspectExpr(s.Cond, f)
		}
		if s.Post != nil {
			inspectExpr(s.Post, f)
		}
		inspectStmt(s.Body, f)
	case *Return:
		if s.X != nil {
			inspectExpr(s.X, f)
		}
	case *Switch:
		inspectExpr(s.X, f)
		for _, c := range s.Cases {
			for _, st := range c.Stmts {
				inspectStmt(st, f)
			}
		}
	case *Break, *Continue, *Empty:
	}
}

func inspectExpr(e Expr, f func(Expr) bool) {
	if e == nil || !f(e) {
		return
	}
	switch e := e.(type) {
	case *Ident, *IntLit, *CharLit, *StrLit, *SizeofType:
	case *Unary:
		inspectExpr(e.X, f)
	case *Binary:
		inspectExpr(e.X, f)
		inspectExpr(e.Y, f)
	case *Assign:
		inspectExpr(e.L, f)
		inspectExpr(e.R, f)
	case *Cond:
		inspectExpr(e.C, f)
		inspectExpr(e.T, f)
		inspectExpr(e.F, f)
	case *Call:
		inspectExpr(e.Fun, f)
		for _, a := range e.Args {
			inspectExpr(a, f)
		}
	case *Index:
		inspectExpr(e.X, f)
		inspectExpr(e.I, f)
	case *Member:
		inspectExpr(e.X, f)
	case *Cast:
		inspectExpr(e.X, f)
	case *SizeofExpr:
		inspectExpr(e.X, f)
	case *Comma:
		inspectExpr(e.X, f)
		inspectExpr(e.Y, f)
	case *Paren:
		inspectExpr(e.X, f)
	case *KeepLive:
		inspectExpr(e.X, f)
		if e.Base != nil {
			inspectExpr(e.Base, f)
		}
	}
}
