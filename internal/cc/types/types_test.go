package types

import (
	"testing"
	"testing/quick"
)

func TestBasicSizes(t *testing.T) {
	cases := []struct {
		t    Type
		size int
	}{
		{VoidType, 0}, {CharType, 1}, {UCharType, 1},
		{ShortType, 2}, {UShortType, 2}, {IntType, 4}, {UIntType, 4},
		{PointerTo(CharType), 4}, {PointerTo(PointerTo(IntType)), 4},
		{&Enum{Tag: "e"}, 4},
		{&Array{Elem: IntType, Len: 10}, 40},
		{&Array{Elem: CharType, Len: 7}, 7},
	}
	for _, c := range cases {
		if got := c.t.Size(); got != c.size {
			t.Errorf("%s: size = %d, want %d", c.t, got, c.size)
		}
	}
}

func TestStructLayout(t *testing.T) {
	s := NewStruct("s", false)
	if s.Completed() || s.Size() >= 0 {
		t.Fatal("fresh struct should be incomplete")
	}
	err := s.Complete([]Field{
		{Name: "c", Type: CharType},
		{Name: "i", Type: IntType},
		{Name: "h", Type: ShortType},
		{Name: "d", Type: CharType},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantOffs := []int{0, 4, 8, 10}
	for i, w := range wantOffs {
		if s.Fields[i].Off != w {
			t.Errorf("field %d offset = %d, want %d", i, s.Fields[i].Off, w)
		}
	}
	if s.Size() != 12 {
		t.Errorf("size = %d, want 12", s.Size())
	}
	if s.Align() != 4 {
		t.Errorf("align = %d, want 4", s.Align())
	}
}

func TestUnionLayout(t *testing.T) {
	u := NewStruct("u", true)
	if err := u.Complete([]Field{
		{Name: "c", Type: CharType},
		{Name: "i", Type: IntType},
	}); err != nil {
		t.Fatal(err)
	}
	if u.Size() != 4 {
		t.Errorf("size = %d", u.Size())
	}
	for _, f := range u.Fields {
		if f.Off != 0 {
			t.Errorf("union field %s at %d", f.Name, f.Off)
		}
	}
}

func TestIncompleteFieldRejected(t *testing.T) {
	inner := NewStruct("inner", false)
	outer := NewStruct("outer", false)
	if err := outer.Complete([]Field{{Name: "x", Type: inner}}); err == nil {
		t.Fatal("incomplete field accepted")
	}
}

func TestEmptyStructOccupiesSpace(t *testing.T) {
	s := NewStruct("e", false)
	if err := s.Complete(nil); err != nil {
		t.Fatal(err)
	}
	if s.Size() <= 0 {
		t.Fatalf("empty struct size = %d", s.Size())
	}
}

func TestDecay(t *testing.T) {
	arr := &Array{Elem: CharType, Len: 5}
	if p, ok := Decay(arr).(*Pointer); !ok || p.Elem != CharType {
		t.Errorf("array decay = %s", Decay(arr))
	}
	fn := &Func{Ret: IntType}
	if p, ok := Decay(fn).(*Pointer); !ok {
		t.Errorf("func decay = %s", Decay(fn))
	} else if _, ok := p.Elem.(*Func); !ok {
		t.Errorf("func decay elem = %s", p.Elem)
	}
	if Decay(IntType) != IntType {
		t.Error("scalar decayed")
	}
}

func TestPromote(t *testing.T) {
	for _, small := range []Type{CharType, UCharType, ShortType, UShortType, &Enum{}} {
		if Promote(small) != IntType {
			t.Errorf("%s did not promote to int", small)
		}
	}
	if Promote(UIntType) != UIntType {
		t.Error("unsigned int should not change")
	}
}

func TestArith(t *testing.T) {
	if Arith(CharType, ShortType) != IntType {
		t.Error("char+short should be int")
	}
	if Arith(IntType, UIntType) != UIntType {
		t.Error("int+uint should be uint")
	}
	if Arith(UIntType, CharType) != UIntType {
		t.Error("uint+char should be uint")
	}
}

func TestPredicates(t *testing.T) {
	if !IsVoid(VoidType) || IsVoid(IntType) {
		t.Error("IsVoid")
	}
	if !IsInteger(CharType) || IsInteger(VoidType) || IsInteger(PointerTo(IntType)) {
		t.Error("IsInteger")
	}
	if !IsPointer(PointerTo(IntType)) || IsPointer(IntType) {
		t.Error("IsPointer")
	}
	if !IsScalar(IntType) || !IsScalar(PointerTo(IntType)) || IsScalar(VoidType) {
		t.Error("IsScalar")
	}
	if !IsSigned(IntType) || IsSigned(UIntType) || !IsSigned(CharType) {
		t.Error("IsSigned")
	}
	st := NewStruct("s", false)
	if !IsAggregate(st) || !IsAggregate(&Array{Elem: IntType, Len: 1}) || IsAggregate(IntType) {
		t.Error("IsAggregate")
	}
}

func TestIdentical(t *testing.T) {
	if !Identical(PointerTo(CharType), PointerTo(CharType)) {
		t.Error("structural pointer identity")
	}
	if Identical(PointerTo(CharType), PointerTo(IntType)) {
		t.Error("different pointees identical")
	}
	a := NewStruct("s", false)
	b := NewStruct("s", false)
	if Identical(a, b) {
		t.Error("distinct struct instances identical (C uses tag identity)")
	}
	if !Identical(a, a) {
		t.Error("struct not identical to itself")
	}
	f1 := &Func{Ret: IntType, Params: []Param{{Type: CharType}}}
	f2 := &Func{Ret: IntType, Params: []Param{{Type: CharType}}}
	if !Identical(f1, f2) {
		t.Error("structurally equal functions not identical")
	}
	f3 := &Func{Ret: IntType, Params: []Param{{Type: CharType}}, Variadic: true}
	if Identical(f1, f3) {
		t.Error("variadic mismatch identical")
	}
}

func TestContainsPointer(t *testing.T) {
	st := NewStruct("s", false)
	if err := st.Complete([]Field{
		{Name: "n", Type: IntType},
		{Name: "p", Type: PointerTo(CharType)},
	}); err != nil {
		t.Fatal(err)
	}
	if !ContainsPointer(st) {
		t.Error("struct with pointer field")
	}
	flat := NewStruct("f", false)
	if err := flat.Complete([]Field{{Name: "n", Type: IntType}}); err != nil {
		t.Fatal(err)
	}
	if ContainsPointer(flat) {
		t.Error("pointer-free struct")
	}
	if !ContainsPointer(&Array{Elem: PointerTo(IntType), Len: 3}) {
		t.Error("array of pointers")
	}
}

// Property: struct layout never overlaps fields and respects alignment.
func TestQuickStructLayoutSound(t *testing.T) {
	elems := []Type{CharType, ShortType, IntType, PointerTo(CharType), UCharType}
	f := func(picks []uint8) bool {
		if len(picks) == 0 || len(picks) > 20 {
			return true
		}
		var fields []Field
		for i, p := range picks {
			fields = append(fields, Field{Name: string(rune('a' + i%26)), Type: elems[int(p)%len(elems)]})
		}
		s := NewStruct("q", false)
		if err := s.Complete(fields); err != nil {
			return false
		}
		end := 0
		for _, fl := range s.Fields {
			if fl.Off < end { // overlap with the previous field
				return false
			}
			if fl.Off%fl.Type.Align() != 0 { // misaligned
				return false
			}
			end = fl.Off + fl.Type.Size()
		}
		return s.Size() >= end && s.Size()%s.Align() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
