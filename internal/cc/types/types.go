// Package types models the C type system of the front end: 32-bit ints and
// pointers, chars, shorts, structs/unions, arrays, enums and function types.
// Floating point is intentionally absent — none of the workloads need it and
// the simulated machine is integer-only.
package types

import (
	"fmt"
	"strings"
)

// Machine layout parameters (see internal/gc for the matching constants).
const (
	PtrSize  = 4
	IntSize  = 4
	MaxAlign = 4
)

// Type is a C type.
type Type interface {
	Size() int  // size in bytes; 0 for void and functions, -1 for incomplete
	Align() int // alignment in bytes
	String() string
}

// BasicKind enumerates the scalar non-pointer types.
type BasicKind int

// Basic kinds. Long and int are both 32 bits, so long collapses to int.
const (
	Void BasicKind = iota
	Char
	UChar
	Short
	UShort
	Int
	UInt
)

// Basic is a scalar non-pointer type.
type Basic struct {
	Kind BasicKind
	name string
}

var basicSizes = [...]int{Void: 0, Char: 1, UChar: 1, Short: 2, UShort: 2, Int: 4, UInt: 4}

// Size implements Type.
func (b *Basic) Size() int { return basicSizes[b.Kind] }

// Align implements Type.
func (b *Basic) Align() int {
	if s := b.Size(); s > 0 {
		return s
	}
	return 1
}

func (b *Basic) String() string { return b.name }

// Signed reports whether b is a signed integer type.
func (b *Basic) Signed() bool {
	return b.Kind == Char || b.Kind == Short || b.Kind == Int
}

// Singleton basic types. Plain char is signed, as on the paper's targets.
var (
	VoidType   = &Basic{Void, "void"}
	CharType   = &Basic{Char, "char"}
	UCharType  = &Basic{UChar, "unsigned char"}
	ShortType  = &Basic{Short, "short"}
	UShortType = &Basic{UShort, "unsigned short"}
	IntType    = &Basic{Int, "int"}
	UIntType   = &Basic{UInt, "unsigned int"}
)

// Pointer is a pointer type.
type Pointer struct{ Elem Type }

// Size implements Type.
func (p *Pointer) Size() int { return PtrSize }

// Align implements Type.
func (p *Pointer) Align() int     { return PtrSize }
func (p *Pointer) String() string { return p.Elem.String() + " *" }

// PointerTo returns the pointer type to elem.
func PointerTo(elem Type) *Pointer { return &Pointer{Elem: elem} }

// Array is a C array type. Len < 0 means the length is not yet known
// (e.g. `extern char buf[]` or inferred from an initializer).
type Array struct {
	Elem Type
	Len  int
}

// Size implements Type.
func (a *Array) Size() int {
	if a.Len < 0 {
		return -1
	}
	return a.Elem.Size() * a.Len
}

// Align implements Type.
func (a *Array) Align() int { return a.Elem.Align() }
func (a *Array) String() string {
	if a.Len < 0 {
		return a.Elem.String() + " []"
	}
	return fmt.Sprintf("%s [%d]", a.Elem, a.Len)
}

// Field is one member of a struct or union.
type Field struct {
	Name string
	Type Type
	Off  int // byte offset within the aggregate
}

// Struct is a struct or union type. Incomplete (forward-declared) structs
// have Fields == nil and size < 0 until completed.
type Struct struct {
	Tag    string
	Union  bool
	Fields []Field
	size   int
	align  int
	done   bool
}

// NewStruct returns an incomplete struct (or union) type with the given tag.
func NewStruct(tag string, union bool) *Struct {
	return &Struct{Tag: tag, Union: union, size: -1, align: 1}
}

// Complete lays out the fields and finalizes the aggregate.
func (s *Struct) Complete(fields []Field) error {
	off := 0
	align := 1
	for i := range fields {
		ft := fields[i].Type
		fs := ft.Size()
		if fs < 0 {
			return fmt.Errorf("field %s has incomplete type %s", fields[i].Name, ft)
		}
		fa := ft.Align()
		if fa > align {
			align = fa
		}
		if s.Union {
			fields[i].Off = 0
			if fs > off {
				off = fs
			}
		} else {
			off = (off + fa - 1) / fa * fa
			fields[i].Off = off
			off += fs
		}
	}
	s.Fields = fields
	s.align = align
	s.size = (off + align - 1) / align * align
	if s.size == 0 {
		s.size = align // empty aggregates still occupy space
	}
	s.done = true
	return nil
}

// Completed reports whether the aggregate has been laid out.
func (s *Struct) Completed() bool { return s.done }

// Size implements Type.
func (s *Struct) Size() int { return s.size }

// Align implements Type.
func (s *Struct) Align() int { return s.align }

func (s *Struct) String() string {
	kw := "struct"
	if s.Union {
		kw = "union"
	}
	if s.Tag != "" {
		return kw + " " + s.Tag
	}
	return kw + " <anonymous>"
}

// FieldByName returns the named field, or nil.
func (s *Struct) FieldByName(name string) *Field {
	for i := range s.Fields {
		if s.Fields[i].Name == name {
			return &s.Fields[i]
		}
	}
	return nil
}

// Param is one function parameter.
type Param struct {
	Name string
	Type Type
}

// Func is a function type.
type Func struct {
	Ret      Type
	Params   []Param
	Variadic bool
	// OldStyle marks declarations with an empty parameter list `f()`, whose
	// arguments are unchecked.
	OldStyle bool
}

// Size implements Type.
func (f *Func) Size() int { return 0 }

// Align implements Type.
func (f *Func) Align() int { return 1 }

func (f *Func) String() string {
	var sb strings.Builder
	sb.WriteString(f.Ret.String())
	sb.WriteString(" (")
	for i, p := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(p.Type.String())
	}
	if f.Variadic {
		sb.WriteString(", ...")
	}
	sb.WriteString(")")
	return sb.String()
}

// Enum is an enumerated type; values are plain ints.
type Enum struct {
	Tag string
}

// Size implements Type.
func (e *Enum) Size() int { return IntSize }

// Align implements Type.
func (e *Enum) Align() int     { return IntSize }
func (e *Enum) String() string { return "enum " + e.Tag }

// --- predicates and conversions ---

// IsVoid reports whether t is void.
func IsVoid(t Type) bool {
	b, ok := t.(*Basic)
	return ok && b.Kind == Void
}

// IsInteger reports whether t is an integer (or enum) type.
func IsInteger(t Type) bool {
	switch t := t.(type) {
	case *Basic:
		return t.Kind != Void
	case *Enum:
		return true
	}
	return false
}

// IsPointer reports whether t is a pointer type.
func IsPointer(t Type) bool {
	_, ok := t.(*Pointer)
	return ok
}

// IsScalar reports whether t is usable in a boolean context.
func IsScalar(t Type) bool { return IsInteger(t) || IsPointer(t) }

// IsAggregate reports whether t is a struct, union or array.
func IsAggregate(t Type) bool {
	switch t.(type) {
	case *Struct, *Array:
		return true
	}
	return false
}

// IsSigned reports whether integer type t is signed. Enums are signed.
func IsSigned(t Type) bool {
	switch t := t.(type) {
	case *Basic:
		return t.Signed()
	case *Enum:
		return true
	}
	return false
}

// Decay converts array types to pointers to their element type and function
// types to pointers to the function, as happens to any C expression used as
// a value.
func Decay(t Type) Type {
	switch t := t.(type) {
	case *Array:
		return PointerTo(t.Elem)
	case *Func:
		return PointerTo(t)
	}
	return t
}

// Promote applies the integral promotions: everything smaller than int
// becomes int.
func Promote(t Type) Type {
	if b, ok := t.(*Basic); ok {
		switch b.Kind {
		case Char, UChar, Short, UShort:
			return IntType
		}
	}
	if _, ok := t.(*Enum); ok {
		return IntType
	}
	return t
}

// Arith returns the common type of the usual arithmetic conversions for two
// integer operands.
func Arith(a, b Type) Type {
	a, b = Promote(a), Promote(b)
	if ab, ok := a.(*Basic); ok {
		if bb, ok := b.(*Basic); ok {
			if ab.Kind == UInt || bb.Kind == UInt {
				return UIntType
			}
		}
	}
	return IntType
}

// Identical reports whether two types are structurally identical. Struct
// types are compared by identity (C's tag equivalence).
func Identical(a, b Type) bool {
	switch a := a.(type) {
	case *Basic:
		b, ok := b.(*Basic)
		return ok && a.Kind == b.Kind
	case *Pointer:
		b, ok := b.(*Pointer)
		return ok && Identical(a.Elem, b.Elem)
	case *Array:
		b, ok := b.(*Array)
		return ok && a.Len == b.Len && Identical(a.Elem, b.Elem)
	case *Struct:
		return a == b
	case *Enum:
		return a == b
	case *Func:
		b, ok := b.(*Func)
		if !ok || a.Variadic != b.Variadic || len(a.Params) != len(b.Params) {
			return false
		}
		if !Identical(a.Ret, b.Ret) {
			return false
		}
		for i := range a.Params {
			if !Identical(a.Params[i].Type, b.Params[i].Type) {
				return false
			}
		}
		return true
	}
	return false
}

// ContainsPointer reports whether storing a value of type t can place a
// pointer in memory — used by the source-checking warnings for memcpy-style
// type mismatches.
func ContainsPointer(t Type) bool {
	switch t := t.(type) {
	case *Pointer:
		return true
	case *Array:
		return ContainsPointer(t.Elem)
	case *Struct:
		for _, f := range t.Fields {
			if ContainsPointer(f.Type) {
				return true
			}
		}
	}
	return false
}
