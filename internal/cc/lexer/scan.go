package lexer

import "gcsafety/internal/cc/token"

// Scan is one fully scanned source: the complete token stream with every
// identifier reported as Ident (typedef-vs-identifier classification is a
// parse-time decision, so the raw stream is typedef-independent and can be
// shared by every parse of identical text), the scan errors, and a
// per-token cumulative error count so a replay reports exactly the errors
// a live lexer would have accumulated by any point in the stream.
//
// A Scan is immutable; Replay hands out independent cursors over it.
type Scan struct {
	Tokens []token.Token
	Errs   []error
	// errCut[i] is len(Errs) after scanning Tokens[i]: the errors a live
	// lexer would have reported once token i had been delivered.
	errCut []int
}

// ScanAll scans src to EOF. Scanning never fails: malformed input becomes
// error tokens plus entries in Errs, exactly as with the incremental Lexer.
func ScanAll(src string) *Scan {
	l := New(src)
	s := &Scan{}
	for {
		t := l.Next()
		s.Tokens = append(s.Tokens, t)
		s.errCut = append(s.errCut, len(l.errs))
		if t.Kind == token.EOF {
			break
		}
	}
	s.Errs = l.Errs()
	return s
}

// Replay returns a fresh token source over the scan. Each Replay owns its
// own position and typedef table, so concurrent parses of one shared Scan
// never interfere.
func (s *Scan) Replay() *Replay {
	return &Replay{scan: s, typedefs: map[string]bool{}}
}

// Replay re-delivers a Scan's tokens with the Lexer's interface contract:
// identifiers registered via DefineType before their delivery come out as
// TypeName (the same temporal semantics as live scanning, where the parser
// registers a typedef name before the lexer reaches its uses), and Errs
// reports only the errors attributable to tokens delivered so far.
type Replay struct {
	scan     *Scan
	pos      int
	typedefs map[string]bool
}

// Next returns the next token; at the end of the stream it returns the EOF
// token indefinitely, as a live Lexer does.
func (r *Replay) Next() token.Token {
	toks := r.scan.Tokens
	if r.pos >= len(toks) {
		return toks[len(toks)-1] // EOF, by ScanAll's construction
	}
	t := toks[r.pos]
	r.pos++
	if t.Kind == token.Ident && r.typedefs[t.Text] {
		t.Kind = token.TypeName
	}
	return t
}

// DefineType registers name so subsequent deliveries report it as TypeName.
func (r *Replay) DefineType(name string) { r.typedefs[name] = true }

// IsType reports whether name is a registered typedef name.
func (r *Replay) IsType(name string) bool { return r.typedefs[name] }

// Errs returns the scan errors attributable to the tokens delivered so far.
func (r *Replay) Errs() []error {
	if r.pos == 0 {
		return nil
	}
	return r.scan.Errs[:r.scan.errCut[r.pos-1]]
}
