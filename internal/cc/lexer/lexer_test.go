package lexer

import (
	"testing"

	"gcsafety/internal/cc/token"
)

func scanAll(t *testing.T, src string) []token.Token {
	t.Helper()
	l := New(src)
	var out []token.Token
	for {
		tk := l.Next()
		if tk.Kind == token.EOF {
			break
		}
		out = append(out, tk)
		if len(out) > 10000 {
			t.Fatal("runaway lexer")
		}
	}
	if errs := l.Errs(); len(errs) > 0 {
		t.Fatalf("scan errors: %v", errs)
	}
	return out
}

func kinds(ts []token.Token) []token.Kind {
	out := make([]token.Kind, len(ts))
	for i, t := range ts {
		out[i] = t.Kind
	}
	return out
}

func TestBasicTokens(t *testing.T) {
	ts := scanAll(t, "int x = 42;")
	want := []token.Kind{token.KwInt, token.Ident, token.Assign, token.IntLit, token.Semi}
	got := kinds(ts)
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
	if ts[3].IntVal != 42 {
		t.Fatalf("IntVal = %d", ts[3].IntVal)
	}
}

func TestAllOperators(t *testing.T) {
	src := "+ - * / % & | ^ ~ ! << >> < > <= >= == != && || = += -= *= /= %= &= |= ^= <<= >>= ++ -- -> . ? : , ; ( ) [ ] { } ..."
	ts := scanAll(t, src)
	want := []token.Kind{
		token.Plus, token.Minus, token.Star, token.Slash, token.Percent,
		token.Amp, token.Pipe, token.Caret, token.Tilde, token.Not,
		token.Shl, token.Shr, token.Lt, token.Gt, token.Le, token.Ge,
		token.Eq, token.Ne, token.AndAnd, token.OrOr,
		token.Assign, token.AddAssign, token.SubAssign, token.MulAssign,
		token.DivAssign, token.ModAssign, token.AndAssign, token.OrAssign,
		token.XorAssign, token.ShlAssign, token.ShrAssign,
		token.Inc, token.Dec, token.Arrow, token.Dot,
		token.Question, token.Colon, token.Comma, token.Semi,
		token.LParen, token.RParen, token.LBracket, token.RBracket,
		token.LBrace, token.RBrace, token.Ellipsis,
	}
	got := kinds(ts)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMaximalMunch(t *testing.T) {
	// x+++y lexes as x ++ + y
	ts := scanAll(t, "x+++y")
	want := []token.Kind{token.Ident, token.Inc, token.Plus, token.Ident}
	got := kinds(ts)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestNumberBases(t *testing.T) {
	ts := scanAll(t, "0 7 42 0x1F 0xff 017 0777 42u 42L 0x10UL")
	want := []int64{0, 7, 42, 31, 255, 15, 511, 42, 42, 16}
	for i, w := range want {
		if ts[i].Kind != token.IntLit || ts[i].IntVal != w {
			t.Errorf("token %d: %v val %d, want %d", i, ts[i].Kind, ts[i].IntVal, w)
		}
	}
}

func TestCharLiterals(t *testing.T) {
	ts := scanAll(t, `'a' '\n' '\t' '\0' '\\' '\'' '\x41' '\101'`)
	want := []int64{'a', '\n', '\t', 0, '\\', '\'', 0x41, 0101}
	for i, w := range want {
		if ts[i].IntVal != w {
			t.Errorf("char %d = %d, want %d", i, ts[i].IntVal, w)
		}
	}
}

func TestStringLiteral(t *testing.T) {
	ts := scanAll(t, `"hi\n\t\"there\"" "a" "b"`)
	// adjacent literals concatenate into one token, as in ANSI C
	if len(ts) != 1 {
		t.Fatalf("concatenation: got %d tokens", len(ts))
	}
	if ts[0].StrVal != "hi\n\t\"there\"ab" {
		t.Fatalf("got %q", ts[0].StrVal)
	}
}

func TestCommentsSkipped(t *testing.T) {
	ts := scanAll(t, "a /* whole\nblock */ b // line\nc")
	if len(ts) != 3 {
		t.Fatalf("got %d tokens", len(ts))
	}
}

func TestLineDirectivesSkipped(t *testing.T) {
	ts := scanAll(t, "# 1 \"file.c\"\nx\n#pragma foo\ny")
	if len(ts) != 2 || ts[0].Text != "x" || ts[1].Text != "y" {
		t.Fatalf("got %v", ts)
	}
}

func TestTypedefNameReporting(t *testing.T) {
	l := New("Foo x; Foo")
	l.DefineType("Foo")
	tk := l.Next()
	if tk.Kind != token.TypeName {
		t.Fatalf("first Foo = %v", tk.Kind)
	}
	if !l.IsType("Foo") || l.IsType("Bar") {
		t.Fatal("IsType bookkeeping wrong")
	}
}

func TestPositions(t *testing.T) {
	src := "ab\ncd ef"
	ts := scanAll(t, src)
	if ts[0].Pos.Line != 1 || ts[0].Pos.Col != 1 {
		t.Errorf("ab at %v", ts[0].Pos)
	}
	if ts[1].Pos.Line != 2 || ts[1].Pos.Col != 1 {
		t.Errorf("cd at %v", ts[1].Pos)
	}
	if ts[2].Pos.Line != 2 || ts[2].Pos.Col != 4 {
		t.Errorf("ef at %v", ts[2].Pos)
	}
	for _, tk := range ts {
		if src[tk.Pos.Off:tk.End] != tk.Text {
			t.Errorf("span mismatch for %q", tk.Text)
		}
	}
}

func TestErrorRecovery(t *testing.T) {
	l := New("a @ b $ 1.5")
	n := 0
	for l.Next().Kind != token.EOF {
		n++
		if n > 100 {
			t.Fatal("runaway")
		}
	}
	if len(l.Errs()) == 0 {
		t.Fatal("expected scan errors")
	}
}

func TestUnterminatedConstructs(t *testing.T) {
	for _, src := range []string{`"abc`, `'a`, "/* never closed"} {
		l := New(src)
		for l.Next().Kind != token.EOF {
		}
		if len(l.Errs()) == 0 {
			t.Errorf("%q: no error", src)
		}
	}
}

func TestKeywordsAllRecognized(t *testing.T) {
	for word, kind := range token.Keywords {
		l := New(word)
		tk := l.Next()
		if tk.Kind != kind {
			t.Errorf("%s lexed as %v", word, tk.Kind)
		}
	}
}
