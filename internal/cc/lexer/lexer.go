// Package lexer provides a hand-written scanner for the ANSI C subset. The
// scanner runs on post-cpp text: it skips comments and `# line "file"`
// markers but performs no macro expansion, matching the paper's placement of
// the preprocessor "between the normal C preprocessor (macro-expander) and
// the C compiler".
package lexer

import (
	"fmt"
	"strings"

	"gcsafety/internal/cc/token"
)

// A Lexer scans C source text into tokens.
type Lexer struct {
	src      string
	off      int
	line     int
	col      int
	typedefs map[string]bool // names to report as TypeName
	errs     []error
}

// New returns a Lexer over src. typedefs may be nil; the parser registers
// typedef names as it sees them via DefineType.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1, typedefs: map[string]bool{}}
}

// DefineType registers name so subsequent occurrences lex as TypeName.
func (l *Lexer) DefineType(name string) { l.typedefs[name] = true }

// IsType reports whether name is a registered typedef name.
func (l *Lexer) IsType(name string) bool { return l.typedefs[name] }

// Errs returns the scanning errors encountered so far.
func (l *Lexer) Errs() []error { return l.errs }

func (l *Lexer) errorf(p token.Pos, format string, args ...any) {
	l.errs = append(l.errs, fmt.Errorf("%s: %s", p, fmt.Sprintf(format, args...)))
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peekAt(n int) byte {
	if l.off+n >= len(l.src) {
		return 0
	}
	return l.src[l.off+n]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() token.Pos { return token.Pos{Off: l.off, Line: l.line, Col: l.col} }

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}
func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }
func isDigit(c byte) bool     { return c >= '0' && c <= '9' }
func isHexDigit(c byte) bool {
	return isDigit(c) || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

// skipSpace consumes whitespace, comments and cpp line markers.
func (l *Lexer) skipSpace() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == 11:
			l.advance()
		case c == '/' && l.peekAt(1) == '*':
			p := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peekAt(1) == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(p, "unterminated comment")
			}
		case c == '/' && l.peekAt(1) == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '#' && l.col == 1:
			// cpp line marker or directive left in the input: skip the line.
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

// Next scans and returns the next token.
func (l *Lexer) Next() token.Token {
	l.skipSpace()
	start := l.pos()
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: start, End: l.off}
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		return l.scanIdent(start)
	case isDigit(c):
		return l.scanNumber(start)
	case c == '\'':
		return l.scanChar(start)
	case c == '"':
		return l.scanString(start)
	}
	return l.scanOperator(start)
}

func (l *Lexer) scanIdent(start token.Pos) token.Token {
	for l.off < len(l.src) && isIdentCont(l.peek()) {
		l.advance()
	}
	text := l.src[start.Off:l.off]
	kind := token.Ident
	if k, ok := token.Keywords[text]; ok {
		kind = k
	} else if l.typedefs[text] {
		kind = token.TypeName
	}
	return token.Token{Kind: kind, Text: text, Pos: start, End: l.off}
}

func (l *Lexer) scanNumber(start token.Pos) token.Token {
	var val int64
	if l.peek() == '0' && (l.peekAt(1) == 'x' || l.peekAt(1) == 'X') {
		l.advance()
		l.advance()
		if !isHexDigit(l.peek()) {
			l.errorf(start, "malformed hexadecimal literal")
		}
		for l.off < len(l.src) && isHexDigit(l.peek()) {
			val = val*16 + int64(hexVal(l.advance()))
		}
	} else if l.peek() == '0' {
		for l.off < len(l.src) && l.peek() >= '0' && l.peek() <= '7' {
			val = val*8 + int64(l.advance()-'0')
		}
		if isDigit(l.peek()) {
			l.errorf(start, "invalid digit in octal literal")
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
	} else {
		for l.off < len(l.src) && isDigit(l.peek()) {
			val = val*10 + int64(l.advance()-'0')
		}
	}
	// Integer suffixes are accepted and ignored (everything is 32 bits).
	for l.off < len(l.src) && strings.ContainsRune("uUlL", rune(l.peek())) {
		l.advance()
	}
	if l.peek() == '.' || l.peek() == 'e' || l.peek() == 'E' {
		l.errorf(start, "floating-point literals are not supported by this front end")
		for l.off < len(l.src) && (isDigit(l.peek()) || strings.ContainsRune(".eE+-fF", rune(l.peek()))) {
			l.advance()
		}
	}
	return token.Token{Kind: token.IntLit, Text: l.src[start.Off:l.off], Pos: start, End: l.off, IntVal: val}
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	default:
		return int(c-'A') + 10
	}
}

// scanEscape decodes one escape sequence after the backslash has been seen.
func (l *Lexer) scanEscape(start token.Pos) byte {
	if l.off >= len(l.src) {
		l.errorf(start, "unterminated escape sequence")
		return 0
	}
	c := l.advance()
	switch c {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case 'b':
		return '\b'
	case 'f':
		return '\f'
	case 'v':
		return 11
	case 'a':
		return 7
	case '0', '1', '2', '3', '4', '5', '6', '7':
		v := int(c - '0')
		for i := 0; i < 2 && l.peek() >= '0' && l.peek() <= '7'; i++ {
			v = v*8 + int(l.advance()-'0')
		}
		return byte(v)
	case 'x':
		v := 0
		for isHexDigit(l.peek()) {
			v = v*16 + hexVal(l.advance())
		}
		return byte(v)
	case '\\', '\'', '"', '?':
		return c
	default:
		l.errorf(start, "unknown escape sequence \\%c", c)
		return c
	}
}

func (l *Lexer) scanChar(start token.Pos) token.Token {
	l.advance() // opening quote
	var val int64
	if l.peek() == '\\' {
		l.advance()
		val = int64(l.scanEscape(start))
	} else if l.off < len(l.src) && l.peek() != '\'' {
		val = int64(l.advance())
	} else {
		l.errorf(start, "empty character literal")
	}
	if l.peek() == '\'' {
		l.advance()
	} else {
		l.errorf(start, "unterminated character literal")
	}
	return token.Token{Kind: token.CharLit, Text: l.src[start.Off:l.off], Pos: start, End: l.off, IntVal: val}
}

func (l *Lexer) scanString(start token.Pos) token.Token {
	l.advance() // opening quote
	var sb strings.Builder
	for {
		if l.off >= len(l.src) || l.peek() == '\n' {
			l.errorf(start, "unterminated string literal")
			break
		}
		c := l.advance()
		if c == '"' {
			break
		}
		if c == '\\' {
			sb.WriteByte(l.scanEscape(start))
			continue
		}
		sb.WriteByte(c)
	}
	// Adjacent string literals concatenate, as in ANSI C.
	for {
		save := *l
		l.skipSpace()
		if l.peek() != '"' {
			*l = save
			break
		}
		l.advance()
		for {
			if l.off >= len(l.src) || l.peek() == '\n' {
				l.errorf(start, "unterminated string literal")
				break
			}
			c := l.advance()
			if c == '"' {
				break
			}
			if c == '\\' {
				sb.WriteByte(l.scanEscape(start))
				continue
			}
			sb.WriteByte(c)
		}
	}
	return token.Token{Kind: token.StrLit, Text: l.src[start.Off:l.off], Pos: start, End: l.off, StrVal: sb.String()}
}

// operator spellings ordered longest-first within each leading character.
var operators = []struct {
	text string
	kind token.Kind
}{
	{"...", token.Ellipsis},
	{"<<=", token.ShlAssign}, {">>=", token.ShrAssign},
	{"++", token.Inc}, {"--", token.Dec}, {"->", token.Arrow},
	{"<<", token.Shl}, {">>", token.Shr},
	{"<=", token.Le}, {">=", token.Ge}, {"==", token.Eq}, {"!=", token.Ne},
	{"&&", token.AndAnd}, {"||", token.OrOr},
	{"+=", token.AddAssign}, {"-=", token.SubAssign}, {"*=", token.MulAssign},
	{"/=", token.DivAssign}, {"%=", token.ModAssign}, {"&=", token.AndAssign},
	{"|=", token.OrAssign}, {"^=", token.XorAssign},
	{"+", token.Plus}, {"-", token.Minus}, {"*", token.Star}, {"/", token.Slash},
	{"%", token.Percent}, {"&", token.Amp}, {"|", token.Pipe}, {"^", token.Caret},
	{"~", token.Tilde}, {"!", token.Not}, {"<", token.Lt}, {">", token.Gt},
	{"=", token.Assign}, {"(", token.LParen}, {")", token.RParen},
	{"{", token.LBrace}, {"}", token.RBrace}, {"[", token.LBracket}, {"]", token.RBracket},
	{";", token.Semi}, {",", token.Comma}, {":", token.Colon}, {"?", token.Question},
	{".", token.Dot},
}

func (l *Lexer) scanOperator(start token.Pos) token.Token {
	rest := l.src[l.off:]
	for _, op := range operators {
		if strings.HasPrefix(rest, op.text) {
			for range op.text {
				l.advance()
			}
			return token.Token{Kind: op.kind, Text: op.text, Pos: start, End: l.off}
		}
	}
	c := l.advance()
	l.errorf(start, "unexpected character %q", c)
	return l.Next()
}
