package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

const helloC = `
int main() {
    print_str("hello, service\n");
    return 0;
}
`

const loopC = `
int main() {
    int i = 0;
    while (1) { i = i + 1; }
    return i;
}
`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func unmarshalInto(t *testing.T, data []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("bad response JSON: %v\n%s", err, data)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestAnnotateEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := postJSON(t, ts.URL+"/v1/annotate", AnnotateRequest{
		Name:   "t.c",
		Source: "char f(char *x) { return x[1]; }",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	var ar AnnotateResponse
	unmarshalInto(t, data, &ar)
	if ar.Inserted == 0 || !strings.Contains(ar.Output, "KEEP_LIVE") {
		t.Fatalf("annotation did not happen: %+v", ar)
	}
	if ar.CacheHit {
		t.Fatal("first request reported a cache hit")
	}
	resp, data = postJSON(t, ts.URL+"/v1/annotate", AnnotateRequest{
		Name:   "t.c",
		Source: "char f(char *x) { return x[1]; }",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	unmarshalInto(t, data, &ar)
	if !ar.CacheHit {
		t.Fatal("second identical request missed the cache")
	}
}

func TestCheckEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := postJSON(t, ts.URL+"/v1/check", CheckRequest{
		Name:   "t.c",
		Source: "char *f(int bits) { return (char *)bits; }",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	var cr CheckResponse
	unmarshalInto(t, data, &cr)
	if cr.Clean || len(cr.Warnings) == 0 {
		t.Fatalf("int-to-pointer conversion produced no warning: %+v", cr)
	}
	resp, data = postJSON(t, ts.URL+"/v1/check", CheckRequest{
		Name:   "ok.c",
		Source: "int f(int x) { return x + 1; }",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	unmarshalInto(t, data, &cr)
	if !cr.Clean {
		t.Fatalf("clean source flagged: %+v", cr)
	}
}

func TestCompileEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := postJSON(t, ts.URL+"/v1/compile", CompileRequest{
		Name: "t.c", Source: helloC, Optimize: true, Annotate: "safe", Post: true, Listing: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	var cr CompileResponse
	unmarshalInto(t, data, &cr)
	if cr.Size == 0 || cr.Listing == "" {
		t.Fatalf("empty compile response: %+v", cr)
	}
}

func TestRunEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := postJSON(t, ts.URL+"/v1/run", RunRequest{
		CompileRequest: CompileRequest{Name: "t.c", Source: helloC, Optimize: true, Annotate: "safe"},
		Validate:       true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	var rr RunResponse
	unmarshalInto(t, data, &rr)
	if rr.Output != "hello, service\n" || rr.Fault != "" || rr.Cycles == 0 {
		t.Fatalf("run response: %+v", rr)
	}
}

// TestRunTemporalEndpoint drives the temporal checker over the wire: an
// annotate=temporal build with the epoch checker armed turns a
// use-after-free into a CheckFailed response, not a silent pass.
func TestRunTemporalEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const uafC = `int main() {
    int *p = (int *)GC_malloc(16);
    p[0] = 7;
    free(p);
    print_int(p[0]);
    return 0;
}
`
	resp, data := postJSON(t, ts.URL+"/v1/run", RunRequest{
		CompileRequest: CompileRequest{Name: "uaf.c", Source: uafC, Optimize: true, Annotate: "temporal"},
		Temporal:       true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	var rr RunResponse
	unmarshalInto(t, data, &rr)
	if !rr.CheckFailed || !strings.Contains(rr.Fault, "temporal") {
		t.Fatalf("temporal run response: %+v", rr)
	}
	// The same program with the checker off must still run to completion
	// (free is a no-op there) — the differential baseline.
	resp, data = postJSON(t, ts.URL+"/v1/run", RunRequest{
		CompileRequest: CompileRequest{Name: "uaf.c", Source: uafC, Optimize: true, Annotate: "safe"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	var base RunResponse
	unmarshalInto(t, data, &base)
	if base.Fault != "" || base.Output != "7" {
		t.Fatalf("baseline run response: %+v", base)
	}
}

// TestRunConcurrentEndpoint runs a two-thread program on the deterministic
// concurrent-mutator simulation and checks the thread bound.
func TestRunConcurrentEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const mtC = `int thread1() { return 0; }
int main() {
    join_threads();
    print_str("joined");
    return 0;
}
`
	resp, data := postJSON(t, ts.URL+"/v1/run", RunRequest{
		CompileRequest: CompileRequest{Name: "mt.c", Source: mtC, Optimize: true, Annotate: "safe"},
		Threads:        2,
		SchedSeed:      7,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	var rr RunResponse
	unmarshalInto(t, data, &rr)
	if rr.Fault != "" || rr.Output != "joined" {
		t.Fatalf("concurrent run response: %+v", rr)
	}
	resp, data = postJSON(t, ts.URL+"/v1/run", RunRequest{
		CompileRequest: CompileRequest{Name: "mt.c", Source: mtC, Optimize: true},
		Threads:        1000,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("threads=1000: status = %d, want 400: %s", resp.StatusCode, data)
	}
}

func TestRunStepLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := postJSON(t, ts.URL+"/v1/run", RunRequest{
		CompileRequest: CompileRequest{Name: "loop.c", Source: loopC, Optimize: true},
		MaxSteps:       5000,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	var rr RunResponse
	unmarshalInto(t, data, &rr)
	if !rr.StepLimit || rr.Fault == "" {
		t.Fatalf("runaway program not stopped by step limit: %+v", rr)
	}
	if rr.Instrs != 5000 {
		t.Fatalf("instrs = %d, want 5000", rr.Instrs)
	}
}

func TestRunTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{RunTimeout: 50 * time.Millisecond})
	resp, data := postJSON(t, ts.URL+"/v1/run", RunRequest{
		CompileRequest: CompileRequest{Name: "loop.c", Source: loopC, Optimize: true},
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", resp.StatusCode, data)
	}
}

func TestMatrixEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := postJSON(t, ts.URL+"/v1/matrix", MatrixRequest{
		Seed: 1, Steps: 4, Machines: []string{"ss10"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	var mr MatrixResponse
	unmarshalInto(t, data, &mr)
	if mr.Treatments == 0 || mr.Source == "" {
		t.Fatalf("matrix response: %+v", mr)
	}
	if len(mr.Violations) != 0 {
		t.Fatalf("unexpected violations: %v", mr.Violations)
	}
}

func TestMalformedC(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, url := range []string{"/v1/annotate", "/v1/compile", "/v1/run"} {
		resp, data := postJSON(t, ts.URL+url, map[string]string{
			"name": "bad.c", "source": "int main( { return }",
		})
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Errorf("%s: status = %d, want 422: %s", url, resp.StatusCode, data)
		}
	}
}

func TestMalformedJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/compile", "application/json",
		strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestOversizedBody(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 1024})
	resp, data := postJSON(t, ts.URL+"/v1/compile", CompileRequest{
		Name: "big.c", Source: strings.Repeat("/* pad */ ", 1024),
	})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413: %s", resp.StatusCode, data)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/compile")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", resp.StatusCode)
	}
}

// TestCanceledContext drives a handler directly with a dead context: the
// request must be rejected, not executed.
func TestCanceledContext(t *testing.T) {
	s := New(Config{})
	body, _ := json.Marshal(CompileRequest{Name: "t.c", Source: helloC, Optimize: true})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/run", bytes.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != httpStatusClientClosedRequest && rec.Code != http.StatusOK {
		t.Logf("status = %d", rec.Code)
	}
	if rec.Code == http.StatusOK {
		t.Fatalf("dead-context request executed: %s", rec.Body)
	}
}

// TestCompileStampede is the acceptance criterion: under 100 concurrent
// identical /v1/compile requests the compiler runs exactly once; cache
// hits serve the rest.
func TestCompileStampede(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 256})
	const n = 100
	body, _ := json.Marshal(CompileRequest{
		Name: "stampede.c", Source: helloC, Optimize: true, Annotate: "safe", Post: true,
	})
	var wg sync.WaitGroup
	errs := make(chan error, n)
	gate := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			resp, err := http.Post(ts.URL+"/v1/compile", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b, _ := io.ReadAll(resp.Body)
				errs <- fmt.Errorf("status %d: %s", resp.StatusCode, b)
			}
		}()
	}
	close(gate)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := s.Compiles(); got != 1 {
		t.Fatalf("compile counter = %d, want exactly 1", got)
	}
	// The one compile that ran executed all seven pipeline stages cold, so
	// the shared cache records 1 outer miss + 7 stage misses; the other 99
	// requests coalesced on the outer whole-product entry.
	st := s.CacheStats()
	if st.Hits != n-1 || st.Misses != 8 {
		t.Fatalf("cache stats: %+v, want %d hits / 8 misses", st, n-1)
	}
	for _, ps := range s.PipelineStats() {
		if ps.Misses > 1 {
			t.Fatalf("stage %s executed %d times under the stampede, want at most 1", ps.Stage, ps.Misses)
		}
	}
}

// TestRunSharesCompiledArtifact pins that /v1/run reuses /v1/compile's
// artifact (and vice versa): same key space, no recompilation.
func TestRunSharesCompiledArtifact(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := CompileRequest{Name: "t.c", Source: helloC, Optimize: true, Annotate: "safe"}
	if resp, data := postJSON(t, ts.URL+"/v1/compile", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: %s", data)
	}
	resp, data := postJSON(t, ts.URL+"/v1/run", RunRequest{CompileRequest: req})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: %s", data)
	}
	var rr RunResponse
	unmarshalInto(t, data, &rr)
	if !rr.CacheHit {
		t.Fatal("run recompiled instead of using the cached artifact")
	}
	if got := s.Compiles(); got != 1 {
		t.Fatalf("compile counter = %d, want 1", got)
	}
}

// TestConcurrentRunsOnSharedProgram hammers one cached program with
// concurrent executions; under -race this pins that runs never mutate the
// shared artifact.
func TestConcurrentRunsOnSharedProgram(t *testing.T) {
	_, ts := newTestServer(t, Config{QueueDepth: 128})
	body, _ := json.Marshal(RunRequest{
		CompileRequest: CompileRequest{Name: "t.c", Source: helloC, Optimize: true, Annotate: "safe"},
		Validate:       true,
		GCEvery:        97,
	})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(resp.Body)
			var rr RunResponse
			if err := json.Unmarshal(data, &rr); err != nil || rr.Output != "hello, service\n" {
				t.Errorf("run diverged: %s", data)
			}
		}()
	}
	wg.Wait()
}

func TestMetricsAdvance(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	snap := func() Snapshot {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var s Snapshot
		if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
			t.Fatal(err)
		}
		return s
	}
	before := snap()
	postJSON(t, ts.URL+"/v1/run", RunRequest{
		CompileRequest: CompileRequest{Name: "t.c", Source: helloC, Optimize: true},
	})
	postJSON(t, ts.URL+"/v1/run", RunRequest{
		CompileRequest: CompileRequest{Name: "t.c", Source: helloC, Optimize: true},
	})
	after := snap()
	run := after.Endpoints["/v1/run"]
	if run.Requests != before.Endpoints["/v1/run"].Requests+2 {
		t.Fatalf("request counter did not advance: %+v", run)
	}
	if run.LatencyMs.Count != 2 {
		t.Fatalf("latency histogram count = %d, want 2", run.LatencyMs.Count)
	}
	var bucketSum uint64
	for _, c := range run.LatencyMs.Buckets {
		bucketSum += c
	}
	if bucketSum != run.LatencyMs.Count {
		t.Fatalf("histogram buckets sum to %d, want %d", bucketSum, run.LatencyMs.Count)
	}
	if after.Runs.Programs != before.Runs.Programs+2 || after.Runs.Cycles == 0 {
		t.Fatalf("run metrics did not advance: %+v", after.Runs)
	}
	// One cold compile = 1 outer miss + 5 stage misses (lex, parse,
	// typecheck, codegen, optimize — no annotation, no peephole); the
	// second identical run hits the outer whole-product entry.
	if after.Cache.Hits != 1 || after.Cache.Misses != 6 || after.Compiles != 1 {
		t.Fatalf("cache counters: %+v compiles=%d", after.Cache, after.Compiles)
	}
	if len(after.Pipeline) == 0 {
		t.Fatal("/metrics snapshot carries no pipeline stage counters")
	}
	var executed uint64
	for _, ps := range after.Pipeline {
		executed += ps.Misses
	}
	if executed != 5 {
		t.Fatalf("pipeline stages executed %d times, want 5: %+v", executed, after.Pipeline)
	}
}

// Pool unit tests: deterministic load-shedding behavior.

func TestPoolShedsWhenQueueFull(t *testing.T) {
	p := newPool(1, 1)
	if err := p.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() { queued <- p.acquire(context.Background()) }()
	for p.queued.Load() != 1 {
		time.Sleep(time.Millisecond)
	}
	if err := p.acquire(context.Background()); err != errBusy {
		t.Fatalf("third acquire: err = %v, want errBusy", err)
	}
	p.release()
	if err := <-queued; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	p.release()
}

func TestPoolRespectsContext(t *testing.T) {
	p := newPool(1, 4)
	if err := p.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer p.release()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := p.acquire(ctx); err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}
