package server

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"gcsafety/internal/heapdump"
)

// heapdumpC keeps an 8-node list alive through a global, so the snapshot
// has rooted objects with recorded allocation sites.
const heapdumpC = `
struct node { int v; struct node *next; };
struct node *head;
int main() {
    int i;
    for (i = 0; i < 8; i++) {
        struct node *n = (struct node *)GC_malloc(sizeof(struct node));
        n->v = i;
        n->next = head;
        head = n;
    }
    return 0;
}
`

func TestHeapdumpEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var req HeapdumpRequest
	req.Name = "dump.c"
	req.Source = heapdumpC
	req.Report = true
	resp, data := postJSON(t, ts.URL+"/v1/heapdump", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	var out HeapdumpResponse
	unmarshalInto(t, data, &out)
	if out.Snapshot == nil || len(out.Snapshot.Objects) < 8 {
		t.Fatalf("snapshot = %+v, want >= 8 objects", out.Snapshot)
	}
	if out.Snapshot.Trigger != heapdump.TriggerExit {
		t.Errorf("trigger = %q", out.Snapshot.Trigger)
	}
	if out.LiveObjects != len(out.Snapshot.Objects) || out.LiveBytes != out.Snapshot.TotalBytes() {
		t.Errorf("live gauges %d/%d disagree with the snapshot", out.LiveObjects, out.LiveBytes)
	}
	if len(out.Snapshot.Sites) == 0 {
		t.Error("no allocation sites recorded")
	}
	if !strings.Contains(out.Report, "top retainers") || !strings.Contains(out.Report, "main:") {
		t.Errorf("report missing retainers/sites:\n%s", out.Report)
	}
	if out.CacheHit {
		t.Error("first dump reported a cache hit")
	}

	// The second identical request must be served from the artifact cache.
	resp2, data2 := postJSON(t, ts.URL+"/v1/heapdump", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp2.StatusCode, data2)
	}
	var out2 HeapdumpResponse
	unmarshalInto(t, data2, &out2)
	if !out2.CacheHit {
		t.Error("identical dump missed the cache")
	}
	if out2.LiveBytes != out.LiveBytes || out2.LiveObjects != out.LiveObjects {
		t.Error("cached dump disagrees with the original")
	}

	// The /metrics heap section must reflect the one capture that ran.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mdata, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", mresp.StatusCode)
	}
	var snap Snapshot
	unmarshalInto(t, mdata, &snap)
	if snap.Heap.Snapshots != 1 {
		t.Errorf("heap.snapshots = %d, want 1 (cache hit must not re-capture)", snap.Heap.Snapshots)
	}
	if snap.Heap.LiveObjects != uint64(out.LiveObjects) || snap.Heap.LiveBytes != out.LiveBytes {
		t.Errorf("heap gauges = %d/%d, want %d/%d",
			snap.Heap.LiveObjects, snap.Heap.LiveBytes, out.LiveObjects, out.LiveBytes)
	}
	if snap.Heap.EpochHighWater == 0 {
		t.Error("heap.epoch_high_water = 0")
	}
	if snap.Heap.DurationMs.Count != 1 {
		t.Errorf("heap duration histogram count = %d, want 1", snap.Heap.DurationMs.Count)
	}
	_ = s
}

func TestHeapdumpEndpointTruncation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxDumpObjects: 4})
	var req HeapdumpRequest
	req.Source = heapdumpC
	resp, data := postJSON(t, ts.URL+"/v1/heapdump", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	var out HeapdumpResponse
	unmarshalInto(t, data, &out)
	if !out.Snapshot.Truncated || len(out.Snapshot.Objects) != 4 {
		t.Fatalf("snapshot has %d objects (truncated=%v), want 4 under the server bound",
			len(out.Snapshot.Objects), out.Snapshot.Truncated)
	}
	for _, root := range out.Snapshot.Roots {
		if out.Snapshot.Object(root.Target) == nil {
			t.Error("root targets a truncated object")
		}
	}
}

func TestHeapdumpEndpointViolation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var req HeapdumpRequest
	req.Source = `
int main() {
    int *p = (int *)GC_malloc(16);
    p[0] = 1;
    GC_free((void *)p);
    return p[0];
}
`
	req.Temporal = true
	resp, data := postJSON(t, ts.URL+"/v1/heapdump", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	var out HeapdumpResponse
	unmarshalInto(t, data, &out)
	if out.Snapshot.Trigger != heapdump.TriggerViolation {
		t.Errorf("trigger = %q, want violation", out.Snapshot.Trigger)
	}
	if out.Snapshot.Reason == "" {
		t.Error("violation snapshot has no reason")
	}
}

func TestHeapdumpEndpointBadRequest(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var req HeapdumpRequest
	req.Source = "int main( {"
	resp, _ := postJSON(t, ts.URL+"/v1/heapdump", req)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422 for a parse error", resp.StatusCode)
	}
}
