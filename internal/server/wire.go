package server

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"gcsafety/internal/artifact"
	"gcsafety/internal/machine"
)

// Wire forms of the cached artifacts for the disk tier. The in-memory
// types (annotated, compiled) keep unexported fields; these exported
// mirrors exist so encoding/gob can see them, and they carry the
// accounted cache size so a restored entry charges the LRU budget
// exactly like a freshly computed one.

const (
	kindAnnotate = "annotate/v1"
	kindCompile  = "compile/v1"
)

type wireAnnotated struct {
	Output     string
	Warnings   []string
	Inserted   int
	Suppressed int
	Temps      int
	Size       int64
}

type wireCompiled struct {
	Prog *machine.Program
	Size int64
}

// artifactCodec translates the server's cached artifact types to and
// from disk bytes. Values of unknown dynamic type (none today) simply
// stay memory-only.
func artifactCodec() artifact.DiskCodec {
	return artifact.DiskCodec{
		Encode: encodeArtifact,
		Decode: decodeArtifact,
	}
}

func encodeArtifact(key artifact.Key, v any) (string, []byte, bool) {
	var (
		kind string
		wire any
	)
	switch a := v.(type) {
	case *annotated:
		kind = kindAnnotate
		wire = &wireAnnotated{
			Output:     a.output,
			Warnings:   a.warnings,
			Inserted:   a.inserted,
			Suppressed: a.suppressed,
			Temps:      a.temps,
			Size:       a.size,
		}
	case *compiled:
		kind = kindCompile
		wire = &wireCompiled{Prog: a.prog, Size: a.accounted}
	default:
		return "", nil, false
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
		return "", nil, false
	}
	return kind, buf.Bytes(), true
}

func decodeArtifact(kind string, data []byte) (any, int64, error) {
	dec := gob.NewDecoder(bytes.NewReader(data))
	switch kind {
	case kindAnnotate:
		var w wireAnnotated
		if err := dec.Decode(&w); err != nil {
			return nil, 0, err
		}
		return &annotated{
			output:     w.Output,
			warnings:   w.Warnings,
			inserted:   w.Inserted,
			suppressed: w.Suppressed,
			temps:      w.Temps,
			size:       w.Size,
		}, w.Size, nil
	case kindCompile:
		var w wireCompiled
		if err := dec.Decode(&w); err != nil {
			return nil, 0, err
		}
		if w.Prog == nil || len(w.Prog.Funcs) == 0 {
			return nil, 0, fmt.Errorf("compile artifact with no code")
		}
		return &compiled{prog: w.Prog, size: w.Prog.Size(), accounted: w.Size}, w.Size, nil
	default:
		return nil, 0, fmt.Errorf("unknown artifact kind %q", kind)
	}
}
