package server

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"gcsafety/internal/artifact"
	"gcsafety/internal/heapdump"
	"gcsafety/internal/machine"
	"gcsafety/internal/pipeline"
)

// Wire forms of the cached artifacts for the disk tier. The in-memory
// types (annotated, compiled) keep unexported fields; these exported
// mirrors exist so encoding/gob can see them, and they carry the
// accounted cache size so a restored entry charges the LRU budget
// exactly like a freshly computed one.

const (
	kindAnnotate = "annotate/v1"
	kindCompile  = "compile/v1"
)

type wireAnnotated struct {
	Output     string
	Warnings   []string
	Inserted   int
	Suppressed int
	Temps      int
	Elided     int
	Size       int64
}

type wireCompiled struct {
	Prog *machine.Program
	Size int64
}

// artifactCodec composes the disk codec for the shared artifact cache:
// the server's whole-product annotate/compile kinds plus the pipeline's
// per-stage compiled-program kinds and the heapdump snapshot kind,
// registered against one registry so a single disk directory persists
// every family across restarts. The Lower stage's closure artifacts
// (*threaded.Program) deliberately have no codec: closures cannot be
// serialized, every Encode returns !ok, and the artifact — like the
// front-end pointer graphs — stays memory-tier only and is never pushed
// to peers; a restart or a peer miss just re-lowers (cheap, linear).
func artifactCodec() artifact.DiskCodec {
	reg := artifact.NewCodecRegistry()
	reg.Register(kindAnnotate, artifact.Codec{Encode: encodeAnnotated, Decode: decodeAnnotated})
	reg.Register(kindCompile, artifact.Codec{Encode: encodeCompiled, Decode: decodeCompiled})
	pipeline.RegisterWire(reg)
	heapdump.RegisterWire(reg)
	return reg.DiskCodec()
}

func encodeAnnotated(key artifact.Key, v any) ([]byte, bool) {
	a, ok := v.(*annotated)
	if !ok {
		return nil, false
	}
	return gobBytes(&wireAnnotated{
		Output:     a.output,
		Warnings:   a.warnings,
		Inserted:   a.inserted,
		Suppressed: a.suppressed,
		Temps:      a.temps,
		Elided:     a.elided,
		Size:       a.size,
	})
}

func decodeAnnotated(data []byte) (any, int64, error) {
	var w wireAnnotated
	if err := gobDecode(data, &w); err != nil {
		return nil, 0, err
	}
	return &annotated{
		output:     w.Output,
		warnings:   w.Warnings,
		inserted:   w.Inserted,
		suppressed: w.Suppressed,
		temps:      w.Temps,
		elided:     w.Elided,
		size:       w.Size,
	}, w.Size, nil
}

func encodeCompiled(key artifact.Key, v any) ([]byte, bool) {
	c, ok := v.(*compiled)
	if !ok {
		return nil, false
	}
	return gobBytes(&wireCompiled{Prog: c.prog, Size: c.accounted})
}

func decodeCompiled(data []byte) (any, int64, error) {
	var w wireCompiled
	if err := gobDecode(data, &w); err != nil {
		return nil, 0, err
	}
	if w.Prog == nil || len(w.Prog.Funcs) == 0 {
		return nil, 0, fmt.Errorf("compile artifact with no code")
	}
	return &compiled{prog: w.Prog, size: w.Prog.Size(), accounted: w.Size}, w.Size, nil
}

func gobBytes(v any) ([]byte, bool) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, false
	}
	return buf.Bytes(), true
}

func gobDecode(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}
