package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"gcsafety/internal/faultinject"
)

// postFaulted posts a JSON body with X-Fault-Inject / X-Fault-Seed set.
func postFaulted(t *testing.T, url, spec, seed string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if spec != "" {
		req.Header.Set(faultHeader, spec)
	}
	if seed != "" {
		req.Header.Set(faultSeedHeader, seed)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func metricsSnapshot(t *testing.T, base string) Snapshot {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestHandlerPanicBecomes500 is the satellite regression test: a
// panicking handler must produce a 500 (not a dropped connection), bump
// the panic counter, and leave a stack in /metrics.
func TestHandlerPanicBecomes500(t *testing.T) {
	_, ts := newTestServer(t, Config{AllowFaultHeaders: true})
	resp, data := postFaulted(t, ts.URL+"/v1/annotate", "server.handler=panic,msg=test-panic", "",
		map[string]any{"source": helloC})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500; body %s", resp.StatusCode, data)
	}
	if !bytes.Contains(data, []byte("panic recovered")) {
		t.Fatalf("body does not acknowledge the recovery: %s", data)
	}
	snap := metricsSnapshot(t, ts.URL)
	if snap.Panics != 1 {
		t.Fatalf("panic counter = %d, want 1", snap.Panics)
	}
	if snap.LastPanic == nil || snap.LastPanic.Endpoint != "/v1/annotate" ||
		!strings.Contains(snap.LastPanic.Value, "test-panic") || snap.LastPanic.Stack == "" {
		t.Fatalf("last_panic not captured: %+v", snap.LastPanic)
	}
	if snap.Endpoints["/v1/annotate"].Errors == 0 {
		t.Fatal("panic not recorded as an endpoint error")
	}

	// The daemon must still serve traffic afterwards.
	resp2, data2 := postJSON(t, ts.URL+"/v1/annotate", map[string]any{"source": helloC})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("daemon unhealthy after recovered panic: %d %s", resp2.StatusCode, data2)
	}
}

func TestInjectedHandlerError(t *testing.T) {
	_, ts := newTestServer(t, Config{AllowFaultHeaders: true})
	resp, data := postFaulted(t, ts.URL+"/v1/check", "server.handler=error,msg=synthetic", "7",
		map[string]any{"source": helloC})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500; body %s", resp.StatusCode, data)
	}
	if !bytes.Contains(data, []byte("synthetic")) {
		t.Fatalf("injected message lost: %s", data)
	}
}

func TestBadFaultHeaderIs400(t *testing.T) {
	_, ts := newTestServer(t, Config{AllowFaultHeaders: true})
	resp, _ := postFaulted(t, ts.URL+"/v1/check", "not-a-spec", "", map[string]any{"source": helloC})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: status = %d, want 400", resp.StatusCode)
	}
	resp2, _ := postFaulted(t, ts.URL+"/v1/check", "server.handler=error", "NaN", map[string]any{"source": helloC})
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad seed: status = %d, want 400", resp2.StatusCode)
	}
	// A 49-day sleep must not parse: ms is capped.
	resp3, _ := postFaulted(t, ts.URL+"/v1/check", "server.handler=sleep,ms=4294967295", "", map[string]any{"source": helloC})
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized ms: status = %d, want 400", resp3.StatusCode)
	}
}

// TestFaultHeaderRequiresOptIn: without Config.AllowFaultHeaders the
// header is refused outright — any reachable client being able to
// panic, 500 or stall the daemon is not an acceptable default.
func TestFaultHeaderRequiresOptIn(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := postFaulted(t, ts.URL+"/v1/check", "server.handler=error,msg=forbidden", "",
		map[string]any{"source": helloC})
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("status = %d, want 403; body %s", resp.StatusCode, data)
	}
	if !bytes.Contains(data, []byte("allow-fault-headers")) {
		t.Fatalf("refusal does not name the opt-in flag: %s", data)
	}
	// The same request without the header is served normally.
	resp2, data2 := postJSON(t, ts.URL+"/v1/check", map[string]any{"source": helloC})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("clean request: %d %s", resp2.StatusCode, data2)
	}
}

// TestInjectedRunFaultIsData: a gc.alloc fault inside a /v1/run program
// is a simulated-program failure — HTTP 200 with the fault reported in
// the body, exactly like an organic memory fault.
func TestInjectedRunFaultIsData(t *testing.T) {
	_, ts := newTestServer(t, Config{AllowFaultHeaders: true})
	src := `
int main() {
    int i;
    for (i = 0; i < 100; i = i + 1) {
        int *p = (int *)GC_malloc(64);
        *p = i;
    }
    return 0;
}
`
	resp, data := postFaulted(t, ts.URL+"/v1/run", "gc.alloc=error,after=5", "",
		map[string]any{"source": src})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200; body %s", resp.StatusCode, data)
	}
	var rr RunResponse
	unmarshalInto(t, data, &rr)
	if rr.Fault == "" || !strings.Contains(rr.Fault, "injected") {
		t.Fatalf("fault not reported: %+v", rr)
	}
}

func TestDrainReturns503WithRetryAfter(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// Before drain: readiness and traffic both fine.
	if resp, _ := http.Get(ts.URL + "/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz before drain: %d", resp.StatusCode)
	}
	s.StartDrain()
	resp, data := postJSON(t, ts.URL+"/v1/check", map[string]any{"source": helloC})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining request: status = %d, want 503; body %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	ready, _ := http.Get(ts.URL + "/readyz")
	if ready.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining: %d, want 503", ready.StatusCode)
	}
	var body map[string]string
	_ = json.NewDecoder(ready.Body).Decode(&body)
	ready.Body.Close()
	if body["status"] != "draining" {
		t.Fatalf("/readyz body: %v", body)
	}
	// Liveness is unaffected: the process is healthy, just not ready.
	if resp, _ := http.Get(ts.URL + "/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz while draining: %d", resp.StatusCode)
	}
	snap := metricsSnapshot(t, ts.URL)
	if snap.Drained == 0 || !snap.Draining {
		t.Fatalf("drain not visible in metrics: drained=%d draining=%v", snap.Drained, snap.Draining)
	}
}

// TestReadyzSaturated drives the worker pool to queue saturation and
// asserts readiness flips while liveness stays green.
func TestReadyzSaturated(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, RunTimeout: 5 * time.Second})
	// One long-running request occupies the worker; a second fills the
	// queue of depth 1.
	done := make(chan struct{}, 2)
	slow := map[string]any{"source": loopC, "timeout_ms": 2000}
	for i := 0; i < 2; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			postJSON(t, ts.URL+"/v1/run", slow)
		}()
	}
	// Poll until the queue reports saturated (the two requests are racing
	// us into their slots).
	deadline := time.Now().Add(3 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		code := resp.StatusCode
		var body map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if code == http.StatusServiceUnavailable && body["status"] == "saturated" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("readyz never reported saturation (last: %d %v)", code, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if resp, _ := http.Get(ts.URL + "/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz under saturation: %d", resp.StatusCode)
	}
	<-done
	<-done
}

// TestGlobalFaultSetReachesHandlers: env-style (global) activation works
// without any header.
func TestGlobalFaultSetReachesHandlers(t *testing.T) {
	defer faultinject.SetGlobal(nil)
	set, err := faultinject.Parse("server.handler=error,times=1,msg=global-fault", 3)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.SetGlobal(set)
	_, ts := newTestServer(t, Config{})
	resp, data := postJSON(t, ts.URL+"/v1/check", map[string]any{"source": helloC})
	if resp.StatusCode != http.StatusInternalServerError || !bytes.Contains(data, []byte("global-fault")) {
		t.Fatalf("global fault missed: %d %s", resp.StatusCode, data)
	}
	// times=1 exhausted: service recovers.
	resp2, _ := postJSON(t, ts.URL+"/v1/check", map[string]any{"source": helloC})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("after exhausted rule: %d", resp2.StatusCode)
	}
}

// TestDiskTierPersistsAcrossServers is the in-process half of the
// restart story (the full kill -9 test lives in cmd/gcsafed): two Server
// instances sharing a CacheDir, the second serving the first's compile
// from disk without recompiling.
func TestDiskTierPersistsAcrossServers(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Config{CacheDir: dir})
	if s1.DiskErr() != nil {
		t.Fatal(s1.DiskErr())
	}
	body := map[string]any{"source": helloC, "optimize": true, "annotate": "safe"}
	resp, data := postJSON(t, ts1.URL+"/v1/run", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first run: %d %s", resp.StatusCode, data)
	}
	var rr RunResponse
	unmarshalInto(t, data, &rr)
	if rr.CacheHit {
		t.Fatal("first run claimed a cache hit")
	}
	if s1.Compiles() != 1 {
		t.Fatalf("compiles = %d, want 1", s1.Compiles())
	}

	s2, ts2 := newTestServer(t, Config{CacheDir: dir})
	if s2.DiskErr() != nil {
		t.Fatal(s2.DiskErr())
	}
	if s2.DiskRecovery().Verified == 0 {
		t.Fatalf("recovery verified nothing: %+v", s2.DiskRecovery())
	}
	resp2, data2 := postJSON(t, ts2.URL+"/v1/run", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second server run: %d %s", resp2.StatusCode, data2)
	}
	var rr2 RunResponse
	unmarshalInto(t, data2, &rr2)
	if !rr2.CacheHit {
		t.Fatalf("restart did not preserve the warm artifact: %s", data2)
	}
	if rr2.Output != rr.Output || rr2.Size != rr.Size {
		t.Fatalf("disk-restored artifact diverged: %+v vs %+v", rr2, rr)
	}
	if s2.Compiles() != 0 {
		t.Fatalf("second server recompiled %d times", s2.Compiles())
	}
	st := s2.CacheStats()
	if st.DiskHits == 0 || st.Disk == nil {
		t.Fatalf("disk hit not accounted: %+v", st)
	}
}

// TestUnopenableCacheDirDegradesGracefully: a file where the cache
// directory should be is not fatal — the daemon serves memory-only and
// reports the failure.
func TestUnopenableCacheDirDegradesGracefully(t *testing.T) {
	bad := t.TempDir() + "/occupied"
	if err := os.WriteFile(bad, []byte("a file, not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{CacheDir: bad})
	if s.DiskErr() == nil {
		t.Fatal("disk error not reported")
	}
	resp, data := postJSON(t, ts.URL+"/v1/check", map[string]any{"source": helloC})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("memory-only degradation failed: %d %s", resp.StatusCode, data)
	}
	snap := metricsSnapshot(t, ts.URL)
	if snap.DiskError == "" {
		t.Fatal("disk error not surfaced in /metrics")
	}
}
