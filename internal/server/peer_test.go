package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gcsafety/internal/artifact"
	"gcsafety/internal/cluster"
	"gcsafety/internal/gcsafe"
)

// peerNode is one member of an in-process cluster: a real Server behind a
// real httptest listener, so the peer protocol crosses an actual TCP hop.
type peerNode struct {
	srv *Server
	p   *cluster.Peering
	ts  *httptest.Server
	url string
}

func (n *peerNode) post(t *testing.T, path string, body, out any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(n.url+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", path, err)
		}
	}
	return resp.StatusCode
}

// startPeerCluster brings up n peered servers. Listeners come up first
// (membership needs the URLs), handlers are attached once every Server
// exists.
func startPeerCluster(t *testing.T, n int) []*peerNode {
	t.Helper()
	nodes := make([]*peerNode, n)
	handlers := make([]atomic.Value, n) // of http.Handler
	for i := range nodes {
		h := &handlers[i]
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			h.Load().(http.Handler).ServeHTTP(w, r)
		}))
		t.Cleanup(ts.Close)
		nodes[i] = &peerNode{ts: ts, url: ts.URL}
	}
	urls := make([]string, n)
	for i, nd := range nodes {
		urls[i] = nd.url
	}
	for i, nd := range nodes {
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		p, err := cluster.New(cluster.Config{Self: nd.url, Peers: peers})
		if err != nil {
			t.Fatal(err)
		}
		nd.p = p
		nd.srv = New(Config{Workers: 4, Peering: p})
		handlers[i].Store(nd.srv.Handler())
	}
	return nodes
}

// ownerOf returns the index of the node owning key (rings agree, so any
// member's view will do).
func ownerOf(t *testing.T, nodes []*peerNode, key artifact.Key) int {
	t.Helper()
	addr, _ := nodes[0].p.Owner(key)
	for i, nd := range nodes {
		if nd.url == addr {
			return i
		}
	}
	t.Fatalf("owner %s is not a cluster member", addr)
	return -1
}

// compileSrcOwnedBy finds a source whose default-compile key the given
// node owns.
func compileSrcOwnedBy(t *testing.T, nodes []*peerNode, want int) (string, artifact.Key) {
	t.Helper()
	cfg, err := machineByName("")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		src := fmt.Sprintf("int main() { return %d; }", i)
		key := compileKey(src, 0, false, false, false, cfg)
		if ownerOf(t, nodes, key) == want {
			return src, key
		}
	}
	t.Fatal("no source found for the wanted owner")
	return "", ""
}

func totalCompiles(nodes []*peerNode) uint64 {
	var n uint64
	for _, nd := range nodes {
		n += nd.srv.Compiles()
	}
	return n
}

func TestClusterCompilesOnceAcrossNodes(t *testing.T) {
	nodes := startPeerCluster(t, 3)
	src, key := compileSrcOwnedBy(t, nodes, 2)
	owner := ownerOf(t, nodes, key)

	// The same compile hits every node concurrently, several times each.
	// Exactly one node — the owner — may actually run the compiler.
	var wg sync.WaitGroup
	for _, nd := range nodes {
		for r := 0; r < 3; r++ {
			wg.Add(1)
			go func(nd *peerNode) {
				defer wg.Done()
				var resp CompileResponse
				if code := nd.post(t, "/v1/compile", &CompileRequest{Source: src}, &resp); code != http.StatusOK {
					t.Errorf("compile on %s: status %d", nd.url, code)
				}
			}(nd)
		}
	}
	wg.Wait()
	if got := totalCompiles(nodes); got != 1 {
		t.Fatalf("cluster ran the compiler %d times, want exactly 1", got)
	}
	if nodes[owner].srv.Compiles() != 1 {
		t.Fatal("the compile did not happen on the owning node")
	}
	// Non-owners fetched remotely and should now serve from local cache
	// without touching the network again.
	for i, nd := range nodes {
		if i == owner {
			continue
		}
		st := nd.p.Stats()
		if st.RemoteHits == 0 {
			t.Fatalf("node %d answered without a remote fetch or a compile", i)
		}
		var resp CompileResponse
		nd.post(t, "/v1/compile", &CompileRequest{Source: src}, &resp)
		if !resp.CacheHit {
			t.Fatalf("node %d did not cache the fetched artifact", i)
		}
		if again := nd.p.Stats(); again.RemoteHits != st.RemoteHits {
			t.Fatalf("node %d re-fetched a locally cached artifact", i)
		}
	}
}

func TestClusterFallsBackWhenOwnerDies(t *testing.T) {
	nodes := startPeerCluster(t, 3)
	src, key := compileSrcOwnedBy(t, nodes, 1)
	owner := ownerOf(t, nodes, key)
	nodes[owner].ts.Close() // the owner vanishes mid-flight

	start := time.Now()
	var resp CompileResponse
	requester := (owner + 1) % 3
	if code := nodes[requester].post(t, "/v1/compile", &CompileRequest{Source: src}, &resp); code != http.StatusOK {
		t.Fatalf("compile with dead owner: status %d", code)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("fallback took %v — availability is not bounded", d)
	}
	if nodes[requester].srv.Compiles() != 1 {
		t.Fatal("requester did not fall back to a local compile")
	}
	st := nodes[requester].p.Stats()
	if st.Fallbacks == 0 {
		t.Fatalf("fallback not counted: %+v", st)
	}
	// The artifact is now cached locally: repeating the request must not
	// retry the dead peer or recompile.
	nodes[requester].post(t, "/v1/compile", &CompileRequest{Source: src}, &resp)
	if !resp.CacheHit || nodes[requester].srv.Compiles() != 1 {
		t.Fatal("fallback artifact was not cached locally")
	}
}

func TestPeerGetRefusesKeyMismatch(t *testing.T) {
	nodes := startPeerCluster(t, 2)
	recipe, err := json.Marshal(&CompileRequest{Source: "int main() { return 0; }"})
	if err != nil {
		t.Fatal(err)
	}
	code := nodes[0].post(t, "/v1/peer/get", &cluster.GetRequest{
		Key:    "sha256:not-the-key-this-recipe-hashes-to",
		Family: "compile",
		Recipe: recipe,
	}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("key mismatch accepted: status %d", code)
	}
	if totalCompiles(nodes) != 0 {
		t.Fatal("mismatched recipe was compiled anyway")
	}
}

func TestPeerGetDoesNotForwardAgain(t *testing.T) {
	// A peer get for a key the receiver does NOT own (stale ring on the
	// sender) must be computed locally, never forwarded — the loop guard.
	nodes := startPeerCluster(t, 2)
	src, key := compileSrcOwnedBy(t, nodes, 1)
	owner := ownerOf(t, nodes, key)
	other := 1 - owner

	recipe, err := json.Marshal(&CompileRequest{Source: src})
	if err != nil {
		t.Fatal(err)
	}
	var out cluster.GetResponse
	if code := nodes[other].post(t, "/v1/peer/get", &cluster.GetRequest{
		Key:    string(key),
		Family: "compile",
		Recipe: recipe,
	}, &out); code != http.StatusOK {
		t.Fatalf("peer get on non-owner: status %d", code)
	}
	if nodes[other].srv.Compiles() != 1 || nodes[owner].srv.Compiles() != 0 {
		t.Fatalf("non-owner forwarded instead of computing: compiles %d/%d",
			nodes[other].srv.Compiles(), nodes[owner].srv.Compiles())
	}
}

func TestPeerPutSeedsOwnerCache(t *testing.T) {
	nodes := startPeerCluster(t, 2)

	// Find a source whose annotate key node 0 owns, encode the artifact
	// with the shared codec, and offer it via /v1/peer/put.
	var (
		src string
		key artifact.Key
	)
	for i := 0; i < 1000; i++ {
		s := fmt.Sprintf("int f() { return %d; }", i)
		k := annotateKey(s, gcsafe.Options{})
		if ownerOf(t, nodes, k) == 0 {
			src, key = s, k
			break
		}
	}
	if src == "" {
		t.Fatal("no annotate key owned by node 0")
	}
	a := &annotated{output: "annotated " + src, size: 64}
	kind, payload, ok := artifactCodec().Encode(key, a)
	if !ok {
		t.Fatal("annotated artifact not encodable")
	}
	var pr cluster.PutResponse
	if code := nodes[0].post(t, "/v1/peer/put", &cluster.PutRequest{
		Key: string(key), CodecKind: kind, Payload: payload, Size: 64,
	}, &pr); code != http.StatusOK || !pr.Stored {
		t.Fatalf("peer put: status %d stored %v", code, pr.Stored)
	}

	// The owner now serves the pushed artifact without annotating.
	var resp AnnotateResponse
	nodes[0].post(t, "/v1/annotate", &AnnotateRequest{Source: src}, &resp)
	if !resp.CacheHit || resp.Output != "annotated "+src {
		t.Fatalf("pushed artifact not served: %+v", resp)
	}
	if nodes[0].srv.annotations.Load() != 0 {
		t.Fatal("owner re-annotated a pushed artifact")
	}

	// Undecodable offers are refused, not cached.
	if code := nodes[0].post(t, "/v1/peer/put", &cluster.PutRequest{
		Key: string(key), CodecKind: kind, Payload: []byte("garbage"), Size: 7,
	}, nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("garbage put: status %d", code)
	}
}

func TestPeerEndpointsRequireClustering(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, path := range []string{"/v1/peer/get", "/v1/peer/put", "/v1/peer/update"} {
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader([]byte("{}")))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s on standalone node: status %d", path, resp.StatusCode)
		}
	}
}

func TestPeerUpdateRebalancesLive(t *testing.T) {
	nodes := startPeerCluster(t, 3)
	var out PeerUpdateResponse
	// Drop node 2 from node 0's view.
	if code := nodes[0].post(t, "/v1/peer/update", &PeerUpdateRequest{
		Peers: []string{nodes[1].url},
	}, &out); code != http.StatusOK {
		t.Fatalf("peer update: status %d", code)
	}
	if len(out.Members) != 2 {
		t.Fatalf("members after update: %v", out.Members)
	}
	// Metrics expose the cluster section with the rebalance counted.
	resp, err := http.Get(nodes[0].url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Cluster == nil || snap.Cluster.Rebalances != 1 || len(snap.Cluster.Members) != 2 {
		t.Fatalf("cluster metrics: %+v", snap.Cluster)
	}
}
