package server

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"time"

	"gcsafety/internal/artifact"
	"gcsafety/internal/faultinject"
	"gcsafety/internal/fuzz"
	"gcsafety/internal/heapdump"
	"gcsafety/internal/interp"
	"gcsafety/internal/machine"
)

// HeapdumpRequest compiles and executes a program with allocation-site
// profiling, then returns the end-of-run heap snapshot — the service form
// of ccrun -heap-profile. All RunRequest treatment knobs apply.
type HeapdumpRequest struct {
	RunRequest
	// MaxObjects bounds the snapshot (clamped to the server ceiling);
	// larger heaps come back with Truncated set.
	MaxObjects int `json:"max_objects"`
	// Report asks for the rendered forensics report (top retainers by
	// retained size with root paths) alongside the raw snapshot.
	Report bool `json:"report"`
	// TopN bounds the report's retainer table (default 10).
	TopN int `json:"top_n"`
}

// HeapdumpResponse carries the snapshot. A program fault or checker
// violation is data here like in /v1/run: the snapshot's Trigger and
// Reason describe it, and the capture still happened.
type HeapdumpResponse struct {
	Snapshot    *heapdump.Snapshot `json:"snapshot"`
	Report      string             `json:"report,omitempty"`
	LiveObjects int                `json:"live_objects"`
	LiveBytes   uint64             `json:"live_bytes"`
	CacheHit    bool               `json:"cache_hit"`
}

// heapdumpKey is the snapshot's cache identity: execution is
// deterministic, so (program identity, every treatment knob, the object
// bound) fully determines the snapshot.
func heapdumpKey(req *HeapdumpRequest, ann fuzz.Annotation, cfg machine.Config, maxObjects int, maxSteps uint64) artifact.Key {
	k := artifact.NewKey("heapdump").
		Str(req.Source).
		Int(int64(ann)).
		Bool(req.Optimize).
		Bool(req.Post).
		Str(cfg.Name).
		Str(req.Input).
		Int(int64(req.GCEvery)).
		Bool(req.CollectAtEveryAlloc).
		Bool(req.Validate).
		Bool(req.Temporal).
		Int(int64(req.Threads)).
		Int(int64(req.SchedSeed)).
		Bool(req.CollectAtSwitch).
		Bool(req.BaseOnly).
		Int(int64(maxSteps)).
		Int(int64(maxObjects))
	// Elide folds in only when set (key stability for the classic cells).
	if req.Elide {
		k = k.Bool(true)
	}
	return k.Sum()
}

func (s *Server) handleHeapdump(w http.ResponseWriter, r *http.Request) error {
	var req HeapdumpRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	cfg, err := machineByName(req.Machine)
	if err != nil {
		return err
	}
	ann, err := annotationByName(req.Annotate)
	if err != nil {
		return err
	}
	if req.Threads < 0 || req.Threads > maxRunThreads {
		return errf(http.StatusBadRequest, "threads %d out of range (max %d)", req.Threads, maxRunThreads)
	}
	maxObjects := s.cfg.MaxDumpObjects
	if req.MaxObjects > 0 && req.MaxObjects < maxObjects {
		maxObjects = req.MaxObjects
	}
	steps := s.cfg.MaxSteps
	if req.MaxSteps > 0 && req.MaxSteps < steps {
		steps = req.MaxSteps
	}
	c, _, err := s.compile(r.Context(), req.Name, req.Source, ann, req.Optimize, req.Post, req.Elide, cfg)
	if err != nil {
		return err
	}
	ctx, cancel := s.runContext(r.Context(), req.TimeoutMs)
	defer cancel()
	key := heapdumpKey(&req, ann, cfg, maxObjects, steps)
	v, hit, err := s.cache.GetOrCompute(ctx, key, func() (any, int64, error) {
		res, runErr := interp.RunContext(ctx, c.prog, interp.Options{
			Config:              cfg,
			Input:               req.Input,
			GCEveryInstrs:       req.GCEvery,
			CollectAtEveryAlloc: req.CollectAtEveryAlloc,
			Validate:            req.Validate,
			Temporal:            req.Temporal,
			Threads:             req.Threads,
			SchedSeed:           req.SchedSeed,
			CollectAtSwitch:     req.CollectAtSwitch,
			BaseOnlyHeap:        req.BaseOnly,
			MaxInstrs:           steps,
			HeapProfile:         true,
			Faults:              faultinject.FromContext(r.Context()),
		})
		if runErr != nil && (errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded)) {
			return nil, 0, runErr
		}
		if res != nil {
			s.metrics.runs.record(res.Instrs, res.Cycles, res.GCStats, runErr != nil)
		}
		if res == nil || res.Snapshot == nil {
			reason := "no result"
			if res != nil {
				reason = res.SnapshotErr
			}
			return nil, 0, errf(http.StatusInternalServerError, "heapdump capture failed: %s", reason)
		}
		snap := res.Snapshot
		snap.TruncateObjects(maxObjects)
		s.metrics.heap.record(len(snap.Objects), snap.TotalBytes(), snap.Epoch,
			time.Duration(snap.CaptureNs))
		return snap, snap.AccountedSize(), nil
	})
	if err != nil {
		return err
	}
	snap := v.(*heapdump.Snapshot)
	resp := HeapdumpResponse{
		Snapshot:    snap,
		LiveObjects: len(snap.Objects),
		LiveBytes:   snap.TotalBytes(),
		CacheHit:    hit,
	}
	if req.Report {
		topN := req.TopN
		if topN <= 0 {
			topN = 10
		}
		var b strings.Builder
		heapdump.Analyze(snap).RenderReport(&b, topN)
		resp.Report = b.String()
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}
