package server

import (
	"context"
	"encoding/json"
	"net/http"

	"gcsafety/internal/artifact"
	"gcsafety/internal/cluster"
	"gcsafety/internal/fuzz"
	"gcsafety/internal/gcsafe"
	"gcsafety/internal/machine"
)

// The peer protocol: how a clustered gcsafed asks an artifact's owning
// node to get-or-compute it. The fallback ladder for every cacheable
// artifact becomes
//
//	local memory → local disk → owning peer → local compute
//
// where the peer step is attempted only for keys another node owns, is
// bounded by the peering timeout and circuit breaker, and degrades to
// local compute on any failure — availability over dedup. The owner side
// runs the request through its own cache.GetOrCompute, so concurrent
// requests for one key across the whole cluster coalesce onto a single
// computation on the owner (cluster-wide singleflight).

// Artifact family names on the peer wire.
const (
	familyAnnotate = "annotate"
	familyCompile  = "compile"
)

// noForwardKey marks contexts of peer-originated work: the owner must
// compute locally, never forward again, or a stale ring could bounce a
// request between nodes forever.
type noForwardKey struct{}

func noForward(ctx context.Context) context.Context {
	return context.WithValue(ctx, noForwardKey{}, true)
}

func forwardingAllowed(ctx context.Context) bool {
	v, _ := ctx.Value(noForwardKey{}).(bool)
	return !v
}

// machineWireName is the inverse of machineByName: recipes travel between
// peers in the public wire vocabulary.
func machineWireName(cfg machine.Config) string {
	switch cfg.Name {
	case machine.SPARCstation2().Name:
		return "ss2"
	case machine.Pentium90().Name:
		return "p90"
	default:
		return "ss10"
	}
}

// annotationWireName is the inverse of annotationByName.
func annotationWireName(ann fuzz.Annotation) string {
	switch ann {
	case fuzz.AnnotateSafe:
		return "safe"
	case fuzz.AnnotateChecked:
		return "checked"
	case fuzz.AnnotateTemporal:
		return "temporal"
	default:
		return "none"
	}
}

// annotateRecipe reconstructs the public request that produces
// (name, src, opts) — the inverse of AnnotateRequest.options, so the
// owner recomputes exactly the same artifact key.
func annotateRecipe(name, src string, opts gcsafe.Options) *AnnotateRequest {
	req := &AnnotateRequest{
		Name:              name,
		Source:            src,
		NoCopySuppression: opts.NoCopySuppression,
		NoIncDecExpansion: opts.NoIncDecExpansion,
		BaseHeuristic:     opts.BaseHeuristic,
		CallSiteOnly:      opts.CallSiteOnly,
		StrictCasts:       opts.StrictCastWarnings,
	}
	switch opts.Mode {
	case gcsafe.ModeChecked:
		req.Mode = "checked"
	case gcsafe.ModeTemporal:
		req.Mode = "temporal"
	default:
		req.Mode = "safe"
	}
	if opts.Style == gcsafe.EmitAsm {
		req.Style = "asm"
	} else {
		req.Style = "macro"
	}
	return req
}

func compileRecipe(name, src string, ann fuzz.Annotation, optimize, post, elide bool, cfg machine.Config) *CompileRequest {
	return &CompileRequest{
		Name:     name,
		Source:   src,
		Machine:  machineWireName(cfg),
		Annotate: annotationWireName(ann),
		Optimize: optimize,
		Post:     post,
		Elide:    elide,
	}
}

// peerFetch tries the owning-peer rung of the ladder: resolve the owner
// for key and, when it is a remote peer, ask it to get-or-compute.
// ok == false means "compute locally" — because this node owns the key,
// peering is off, the work is already peer-originated, or the owner was
// unreachable (counted as a fallback in the cluster stats).
func (s *Server) peerFetch(ctx context.Context, key artifact.Key, family string, recipe any) (v any, size int64, ok bool) {
	if s.peering == nil || !forwardingAllowed(ctx) {
		return nil, 0, false
	}
	resp, remote, err := s.peering.Fetch(ctx, key, family, recipe)
	if !remote || err != nil {
		return nil, 0, false
	}
	v, size, derr := s.codec.Decode(resp.CodecKind, resp.Payload)
	if derr != nil {
		// The peer served bytes our codec refuses: as unservable as a
		// corrupt disk entry. Count it and fall back to computing.
		s.peering.NoteDecodeError()
		return nil, 0, false
	}
	return v, size, true
}

// peerRepair pushes a locally computed artifact to its owning peer,
// best-effort and asynchronous: the availability-repair path after a
// fallback compute. The push rides a detached context (the triggering
// request may already be gone) that still carries its fault set, so
// chaos suites can exercise cluster.peer.put.
func (s *Server) peerRepair(ctx context.Context, key artifact.Key, v any) {
	if s.peering == nil || !forwardingAllowed(ctx) {
		return
	}
	if _, self := s.peering.Owner(key); self {
		return
	}
	kind, payload, ok := s.codec.Encode(key, v)
	if !ok {
		return
	}
	_, size, err := s.codec.Decode(kind, payload)
	if err != nil {
		return
	}
	pctx := context.WithoutCancel(ctx)
	go func() { _ = s.peering.Push(pctx, key, kind, payload, size) }()
}

// handlePeerGet serves /v1/peer/get: get-or-compute an artifact this
// node owns, returning it in disk-codec wire form. The key is recomputed
// from the recipe and must match — a peer cannot make this node file an
// artifact under a key that does not describe it.
func (s *Server) handlePeerGet(w http.ResponseWriter, r *http.Request) error {
	if s.peering == nil {
		return errf(http.StatusNotFound, "this node is not clustered")
	}
	var req cluster.GetRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	ctx := noForward(r.Context())
	var (
		key artifact.Key
		v   any
		hit bool
	)
	switch req.Family {
	case familyAnnotate:
		var ar AnnotateRequest
		if err := json.Unmarshal(req.Recipe, &ar); err != nil {
			return errf(http.StatusBadRequest, "bad annotate recipe: %v", err)
		}
		opts, err := ar.options()
		if err != nil {
			return err
		}
		key = annotateKey(ar.Source, opts)
		if string(key) != req.Key {
			return errf(http.StatusBadRequest, "recipe hashes to %s, request says %s", key, req.Key)
		}
		a, h, err := s.annotate(ctx, ar.Name, ar.Source, opts)
		if err != nil {
			return err
		}
		v, hit = a, h
	case familyCompile:
		var cr CompileRequest
		if err := json.Unmarshal(req.Recipe, &cr); err != nil {
			return errf(http.StatusBadRequest, "bad compile recipe: %v", err)
		}
		cfg, err := machineByName(cr.Machine)
		if err != nil {
			return err
		}
		ann, err := annotationByName(cr.Annotate)
		if err != nil {
			return err
		}
		key = compileKey(cr.Source, ann, cr.Optimize, cr.Post, cr.Elide, cfg)
		if string(key) != req.Key {
			return errf(http.StatusBadRequest, "recipe hashes to %s, request says %s", key, req.Key)
		}
		c, h, err := s.compile(ctx, cr.Name, cr.Source, ann, cr.Optimize, cr.Post, cr.Elide, cfg)
		if err != nil {
			return err
		}
		v, hit = c, h
	default:
		return errf(http.StatusBadRequest, "unknown artifact family %q", req.Family)
	}
	kind, payload, ok := s.codec.Encode(key, v)
	if !ok {
		return errf(http.StatusInternalServerError, "artifact for %s is not encodable", req.Family)
	}
	_, size, err := s.codec.Decode(kind, payload)
	if err != nil {
		return errf(http.StatusInternalServerError, "artifact for %s does not round-trip: %v", req.Family, err)
	}
	writeJSON(w, http.StatusOK, cluster.GetResponse{
		CodecKind: kind,
		Payload:   payload,
		Size:      size,
		CacheHit:  hit,
	})
	return nil
}

// handlePeerPut serves /v1/peer/put: accept an artifact computed
// elsewhere for a key this node owns. The payload is revalidated by the
// codec before it enters the cache; undecodable offers are refused.
func (s *Server) handlePeerPut(w http.ResponseWriter, r *http.Request) error {
	if s.peering == nil {
		return errf(http.StatusNotFound, "this node is not clustered")
	}
	var req cluster.PutRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	if req.Key == "" {
		return errf(http.StatusBadRequest, "missing key")
	}
	v, size, err := s.codec.Decode(req.CodecKind, req.Payload)
	if err != nil {
		return errf(http.StatusUnprocessableEntity, "artifact does not decode: %v", err)
	}
	s.cache.Put(artifact.Key(req.Key), v, size)
	writeJSON(w, http.StatusOK, cluster.PutResponse{Stored: true})
	return nil
}

// PeerUpdateRequest is the admin rebalance request: replace the member
// list (self is always retained).
type PeerUpdateRequest struct {
	Peers []string `json:"peers"`
}

// PeerUpdateResponse echoes the resulting membership.
type PeerUpdateResponse struct {
	Members []string `json:"members"`
}

// handlePeerUpdate serves /v1/peer/update: the live-rebalance path for
// operators replacing a failed node or growing the cluster. Ownership
// moves only for keys in the changed arcs (consistent hashing); nothing
// is transferred eagerly — artifacts re-home on their next request.
func (s *Server) handlePeerUpdate(w http.ResponseWriter, r *http.Request) error {
	if s.peering == nil {
		return errf(http.StatusNotFound, "this node is not clustered")
	}
	var req PeerUpdateRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	s.peering.UpdatePeers(req.Peers)
	writeJSON(w, http.StatusOK, PeerUpdateResponse{Members: s.peering.Members()})
	return nil
}
