// Package server implements gcsafed: a long-running HTTP/JSON daemon that
// exposes the whole reproduction pipeline — annotate, check, compile,
// peephole, run, and the differential treatment matrix — as a service.
//
// Three mechanisms make it safe to point heavy or adversarial traffic at:
//
//   - every request runs under a context deadline and an interpreter
//     instruction budget, threaded through the public pipeline down into
//     internal/interp, so no input can hang a worker;
//   - requests flow through a bounded worker pool (sized to GOMAXPROCS)
//     with a queue-depth limit that sheds excess load with 429s instead of
//     letting latency collapse;
//   - annotation and compilation results land in a content-addressed
//     artifact cache (internal/artifact) keyed by SHA-256 of (source,
//     annotation options, machine, opt level, peephole flag), so identical
//     sources are annotated/compiled exactly once under arbitrary
//     concurrency and repeated safe-mode builds are near-free.
//
// Observability is JSON counters at /metrics: per-endpoint request counts
// and latency histograms, cache hits/misses/evictions, shed requests, and
// accumulated GC statistics from every program the service ran.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"

	"gcsafety/internal/artifact"
	"gcsafety/internal/cluster"
	"gcsafety/internal/faultinject"
	"gcsafety/internal/machine"
	"gcsafety/internal/par"
	"gcsafety/internal/pipeline"
)

// Config sizes the daemon. The zero value of any field selects the
// documented default.
type Config struct {
	// Workers bounds concurrently executing pipeline requests (default:
	// the shared parallelism degree — GCSAFETY_PARALLEL, else GOMAXPROCS).
	Workers int
	// Parallel is how many treatments a single /v1/matrix request runs
	// concurrently (default: the shared parallelism degree). The matrix
	// fan-out happens inside one worker slot, so total interpreter
	// concurrency is bounded by Workers x Parallel; operators pinning the
	// daemon down tune both with one knob (gcsafed -parallel, or
	// GCSAFETY_PARALLEL).
	Parallel int
	// QueueDepth bounds requests waiting for a worker; beyond it the
	// server sheds load with 429 (default 64).
	QueueDepth int
	// CacheBytes is the artifact cache's LRU byte budget (default 256 MiB).
	CacheBytes int64
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
	// RunTimeout is the per-request processing ceiling; requests may ask
	// for less, never more (default 30s).
	RunTimeout time.Duration
	// MaxSteps is the per-run interpreter instruction ceiling; requests
	// may ask for less, never more (default 200M).
	MaxSteps uint64
	// CacheDir, when non-empty, attaches a crash-safe disk tier to the
	// artifact cache: artifacts survive restarts (even kill -9), entries
	// are SHA-256-verified on read, and corrupt entries are quarantined
	// at startup. Empty means memory-only (the default).
	CacheDir string
	// MaxDumpObjects bounds the number of objects a /v1/heapdump response
	// carries; larger heaps are truncated (Snapshot.Truncated). Requests
	// may ask for less, never more (default 65536).
	MaxDumpObjects int
	// AllowFaultHeaders opts in to per-request fault injection via the
	// X-Fault-Inject / X-Fault-Seed headers. Off by default: the headers
	// let any client that can reach the daemon fail, delay or panic its
	// own requests, so they are an attack surface unless the operator
	// asks for them (gcsafed -allow-fault-headers; -chaos enables them
	// itself). While disabled, a request carrying the header is refused
	// with 403 rather than silently ignored.
	AllowFaultHeaders bool
	// Peering, when non-nil, joins this daemon to a cache-peering cluster
	// (internal/cluster): artifact keys are owned by exactly one member
	// via consistent hashing, misses for remotely owned keys try the
	// owner before computing locally, and /v1/peer/{get,put,update} serve
	// the peer protocol. Nil means standalone (the default).
	Peering *cluster.Peering
}

func (c Config) withDefaults() Config {
	if c.Parallel <= 0 {
		c.Parallel = par.Default()
	}
	if c.Workers <= 0 {
		c.Workers = c.Parallel
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.RunTimeout == 0 {
		c.RunTimeout = 30 * time.Second
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 200_000_000
	}
	if c.MaxDumpObjects <= 0 {
		c.MaxDumpObjects = 65536
	}
	return c
}

// Server is the gcsafed daemon: an http.Handler plus its worker pool,
// artifact cache and metrics registry.
type Server struct {
	cfg   Config
	cache *artifact.Cache
	// pipeline is the stage-graph runner behind /v1/annotate, /v1/check,
	// /v1/compile and /v1/run. It shares the server's artifact cache (and
	// therefore its LRU budget and disk tier), so the whole-product
	// annotate/compile entries and the per-stage artifacts beneath them
	// compete for the same bytes and survive restarts together.
	pipeline *pipeline.Runner
	pool     *pool
	metrics  *metrics
	mux      *http.ServeMux

	// peering is the cluster membership and peer transport (nil when
	// standalone); codec is the artifact registry shared by the disk tier
	// and the peer wire, so both persist and transfer the same bytes.
	peering *cluster.Peering
	codec   artifact.DiskCodec

	// draining flips once graceful shutdown begins: /readyz fails and new
	// pipeline requests are refused with 503 + Retry-After so load
	// balancers route around the instance while in-flight work finishes.
	draining atomic.Bool

	// diskRecover / diskErr record the disk tier's startup recovery (or
	// why the tier is absent); the daemon runs memory-only on diskErr.
	diskRecover artifact.RecoverStats
	diskErr     error

	// compiles and annotations count actual pipeline executions (cache
	// misses that ran codegen / the annotator) — the counters the
	// stampede guarantee is stated in terms of.
	compiles    atomic.Uint64
	annotations atomic.Uint64
}

// New builds a daemon with its own cache and counters. A Config.CacheDir
// that cannot be opened is not fatal: the daemon degrades to memory-only
// caching and reports the failure via DiskErr and /metrics.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		cache:   artifact.New(cfg.CacheBytes),
		pool:    newPool(cfg.Workers, cfg.QueueDepth),
		metrics: newMetrics(),
		mux:     http.NewServeMux(),
	}
	s.pipeline = pipeline.NewRunner(s.cache)
	s.peering = cfg.Peering
	s.codec = artifactCodec()
	if cfg.CacheDir != "" {
		disk, rs, err := artifact.OpenDisk(cfg.CacheDir)
		s.diskRecover, s.diskErr = rs, err
		if err == nil {
			s.cache.AttachDisk(disk, s.codec)
		}
	}
	s.mux.Handle("/v1/annotate", s.handle("/v1/annotate", http.MethodPost, s.handleAnnotate))
	s.mux.Handle("/v1/check", s.handle("/v1/check", http.MethodPost, s.handleCheck))
	s.mux.Handle("/v1/compile", s.handle("/v1/compile", http.MethodPost, s.handleCompile))
	s.mux.Handle("/v1/run", s.handle("/v1/run", http.MethodPost, s.handleRun))
	s.mux.Handle("/v1/matrix", s.handle("/v1/matrix", http.MethodPost, s.handleMatrix))
	s.mux.Handle("/v1/heapdump", s.handle("/v1/heapdump", http.MethodPost, s.handleHeapdump))
	s.mux.Handle("/v1/peer/get", s.handle("/v1/peer/get", http.MethodPost, s.handlePeerGet))
	s.mux.Handle("/v1/peer/put", s.handle("/v1/peer/put", http.MethodPost, s.handlePeerPut))
	s.mux.Handle("/v1/peer/update", s.handle("/v1/peer/update", http.MethodPost, s.handlePeerUpdate))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// StartDrain marks the daemon as draining: /readyz starts failing and
// new pipeline requests get 503 + Retry-After while in-flight requests
// run to completion. Call it before http.Server.Shutdown.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether graceful shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// DiskErr reports why the disk tier is absent (nil when attached or
// never requested).
func (s *Server) DiskErr() error { return s.diskErr }

// DiskRecovery reports the disk tier's startup recovery outcome.
func (s *Server) DiskRecovery() artifact.RecoverStats { return s.diskRecover }

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// EffectiveConfig returns the configuration actually in force — every
// zero-value field resolved to its documented default — so the daemon
// can log what it is really running with.
func (s *Server) EffectiveConfig() Config { return s.cfg }

// Peering returns the cluster membership handle (nil when standalone).
func (s *Server) Peering() *cluster.Peering { return s.peering }

// CacheStats exposes cache counters (tests, metrics).
func (s *Server) CacheStats() artifact.Stats { return s.cache.Stats() }

// Compiles reports how many times the server actually ran the compiler
// (cache hits excluded).
func (s *Server) Compiles() uint64 { return s.compiles.Load() }

// PipelineStats exposes the per-stage execution counters (tests, metrics).
func (s *Server) PipelineStats() []pipeline.StageStat { return s.pipeline.Stats() }

// pool is the bounded worker pool with load shedding: at most workers
// requests execute, at most queue more wait, and everything beyond that is
// rejected immediately.
type pool struct {
	tokens  chan struct{}
	queued  atomic.Int64
	maxWait int64
}

func newPool(workers, queue int) *pool {
	return &pool{tokens: make(chan struct{}, workers), maxWait: int64(queue)}
}

var errBusy = errors.New("server at capacity")

// acquire claims a worker slot, waiting in the bounded queue if all
// workers are busy. It fails fast with errBusy once the queue is full and
// with ctx.Err() if the caller gives up while queued.
func (p *pool) acquire(ctx context.Context) error {
	select {
	case p.tokens <- struct{}{}:
		return nil
	default:
	}
	if p.queued.Add(1) > p.maxWait {
		p.queued.Add(-1)
		return errBusy
	}
	defer p.queued.Add(-1)
	select {
	case p.tokens <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (p *pool) release() { <-p.tokens }

// saturated reports whether the waiting queue is full — the point where
// the next arrival would be shed.
func (p *pool) saturated() bool { return p.queued.Load() >= p.maxWait }

// apiError is a handler failure with its HTTP status.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func errf(status int, format string, args ...any) error {
	return &apiError{status: status, msg: fmt.Sprintf(format, args...)}
}

// handle wraps an endpoint with method filtering, body limiting, drain
// refusal, panic-to-500 recovery, the worker pool, fault-injection
// activation, and metrics accounting.
func (s *Server) handle(name, method string, fn func(w http.ResponseWriter, r *http.Request) error) http.Handler {
	em := s.metrics.endpoint(name)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		status := http.StatusOK
		finish := func() {
			em.requests.Add(1)
			if status >= 400 {
				em.errors.Add(1)
			}
			em.latency.observe(time.Since(start))
		}
		defer finish()
		// The recovery barrier: a panicking handler (or an injected panic)
		// must cost the daemon nothing but this one request. Declared after
		// finish so the 500 is recorded in the endpoint counters.
		defer func() {
			if p := recover(); p != nil {
				status = http.StatusInternalServerError
				s.metrics.recordPanic(name, p, debug.Stack())
				writeError(w, status, "internal error (panic recovered)")
			}
		}()
		if r.Method != method {
			status = http.StatusMethodNotAllowed
			writeError(w, status, "method not allowed")
			return
		}
		if s.draining.Load() {
			// Drain is not overload: 503 + Retry-After tells a load
			// balancer to take the instance out of rotation and come back,
			// where the queue-full 429 below means "slow down".
			s.metrics.drained.Add(1)
			status = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", "1")
			writeError(w, status, "draining for shutdown")
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		if err := s.pool.acquire(r.Context()); err != nil {
			if errors.Is(err, errBusy) {
				s.metrics.shed.Add(1)
				status = http.StatusTooManyRequests
			} else {
				status = statusForContextErr(err)
			}
			writeError(w, status, err.Error())
			return
		}
		defer s.pool.release()
		s.metrics.inflight.Add(1)
		defer s.metrics.inflight.Add(-1)
		// Fault activation runs inside the worker slot: an injected sleep
		// or error consumes bounded pool capacity like any other work, so
		// header-driven faults cannot grow goroutines past the queue limit.
		faults, err := s.requestFaults(r)
		if err != nil {
			status = statusFor(err)
			writeError(w, status, err.Error())
			return
		}
		if faults != nil {
			r = r.WithContext(faultinject.WithContext(r.Context(), faults))
			if err := faults.FireCtx(r.Context(), faultinject.PointServerHandler); err != nil {
				if errors.Is(err, faultinject.ErrInjected) {
					status = http.StatusInternalServerError
				} else {
					status = statusForContextErr(err)
				}
				writeError(w, status, err.Error())
				return
			}
		}
		if err := fn(w, r); err != nil {
			status = statusFor(err)
			writeError(w, status, err.Error())
		}
	})
}

// faultHeader and faultSeedHeader activate request-scoped fault
// injection: the header value is a faultinject spec (and optional seed)
// compiled into a Set that lives for this request only. Honored only
// under Config.AllowFaultHeaders.
const (
	faultHeader     = "X-Fault-Inject"
	faultSeedHeader = "X-Fault-Seed"
)

// requestFaults resolves the fault Set for a request: a per-request Set
// parsed from X-Fault-Inject when present (and the operator opted in),
// else the process-wide Set (nil when fault injection is entirely off).
func (s *Server) requestFaults(r *http.Request) (*faultinject.Set, error) {
	spec := r.Header.Get(faultHeader)
	if spec == "" {
		return faultinject.Global(), nil
	}
	if !s.cfg.AllowFaultHeaders {
		return nil, errf(http.StatusForbidden,
			"%s refused: header-driven fault injection is not enabled (-allow-fault-headers)", faultHeader)
	}
	seed := uint64(1)
	if v := r.Header.Get(faultSeedHeader); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return nil, errf(http.StatusBadRequest, "bad %s header: %q", faultSeedHeader, v)
		}
		seed = n
	}
	set, err := faultinject.Parse(spec, seed)
	if err != nil {
		return nil, errf(http.StatusBadRequest, "bad %s header: %v", faultHeader, err)
	}
	return set, nil
}

func statusFor(err error) int {
	var ae *apiError
	switch {
	case errors.As(err, &ae):
		return ae.status
	case isMaxBytesError(err):
		return http.StatusRequestEntityTooLarge
	default:
		return statusForContextErr(err)
	}
}

func statusForContextErr(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return httpStatusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}

// httpStatusClientClosedRequest is nginx's conventional status for a
// client that went away mid-request; net/http has no name for it.
const httpStatusClientClosedRequest = 499

func isMaxBytesError(err error) bool {
	var mbe *http.MaxBytesError
	return errors.As(err, &mbe)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the readiness probe, distinct from liveness: a live
// daemon is not ready while it is draining for shutdown or while its
// request queue is saturated (load would only be shed). Load balancers
// poll this to take the instance out of rotation without killing it.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.draining.Load():
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	case s.pool.saturated():
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "saturated"})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.metrics.snapshot(s.cache.Stats(), s.compiles.Load(), s.annotations.Load())
	snap.Pipeline = s.pipeline.Stats()
	if es := s.pipeline.ElisionStats(); es.Considered > 0 {
		snap.Elision = &es
	}
	snap.Draining = s.draining.Load()
	if s.peering != nil {
		cs := s.peering.Stats()
		snap.Cluster = &cs
	}
	if s.cfg.CacheDir != "" {
		if s.diskErr != nil {
			snap.DiskError = s.diskErr.Error()
		} else {
			rs := s.diskRecover
			snap.DiskRecovery = &rs
		}
	}
	writeJSON(w, http.StatusOK, snap)
}

// machineByName maps the wire names to machine configurations.
func machineByName(name string) (machine.Config, error) {
	switch name {
	case "", "ss10":
		return machine.SPARCstation10(), nil
	case "ss2":
		return machine.SPARCstation2(), nil
	case "p90":
		return machine.Pentium90(), nil
	}
	return machine.Config{}, errf(http.StatusBadRequest, "unknown machine %q (want ss2, ss10 or p90)", name)
}
