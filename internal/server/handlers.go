package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"gcsafety/internal/artifact"
	"gcsafety/internal/engine"
	"gcsafety/internal/faultinject"
	"gcsafety/internal/fuzz"
	"gcsafety/internal/gcsafe"
	"gcsafety/internal/interp"
	"gcsafety/internal/machine"
	"gcsafety/internal/pipeline"
)

// decode parses a JSON request body into v, translating the failure modes
// into their HTTP statuses (400 malformed, 413 oversized).
func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if isMaxBytesError(err) {
			return err
		}
		return errf(http.StatusBadRequest, "bad request body: %v", err)
	}
	return nil
}

// AnnotateRequest asks for the C-to-C preprocessor.
type AnnotateRequest struct {
	Name   string `json:"name"`
	Source string `json:"source"`
	// Mode is "safe" (default), "checked" or "temporal".
	Mode string `json:"mode"`
	// Style is "macro" (default) or "asm".
	Style             string `json:"style"`
	NoCopySuppression bool   `json:"no_copy_suppression"`
	NoIncDecExpansion bool   `json:"no_incdec_expansion"`
	BaseHeuristic     bool   `json:"base_heuristic"`
	CallSiteOnly      bool   `json:"call_site_only"`
	StrictCasts       bool   `json:"strict_casts"`
	// Elide turns on the liveness-based elision analysis: annotations the
	// pipeline's Liveness stage proves redundant are dropped.
	Elide bool `json:"elide"`
}

// AnnotateResponse returns the rewritten source and diagnostics.
type AnnotateResponse struct {
	Output     string   `json:"output"`
	Warnings   []string `json:"warnings"`
	Inserted   int      `json:"inserted"`
	Suppressed int      `json:"suppressed"`
	Temps      int      `json:"temps"`
	Elided     int      `json:"elided,omitempty"`
	CacheHit   bool     `json:"cache_hit"`
}

func (req *AnnotateRequest) options() (gcsafe.Options, error) {
	opts := gcsafe.Options{
		NoCopySuppression:  req.NoCopySuppression,
		NoIncDecExpansion:  req.NoIncDecExpansion,
		BaseHeuristic:      req.BaseHeuristic,
		CallSiteOnly:       req.CallSiteOnly,
		StrictCastWarnings: req.StrictCasts,
		Elide:              req.Elide,
	}
	switch req.Mode {
	case "", "safe":
	case "checked":
		opts.Mode = gcsafe.ModeChecked
	case "temporal":
		opts.Mode = gcsafe.ModeTemporal
	default:
		return opts, errf(http.StatusBadRequest, "unknown mode %q (want safe, checked or temporal)", req.Mode)
	}
	switch req.Style {
	case "", "macro":
	case "asm":
		opts.Style = gcsafe.EmitAsm
	default:
		return opts, errf(http.StatusBadRequest, "unknown style %q (want macro or asm)", req.Style)
	}
	return opts, nil
}

func annotateKey(src string, opts gcsafe.Options) artifact.Key {
	k := artifact.NewKey("annotate").
		Str(src).
		Int(int64(opts.Mode)).
		Bool(opts.NoCopySuppression).
		Bool(opts.NoIncDecExpansion).
		Bool(opts.BaseHeuristic).
		Bool(opts.CallSiteOnly).
		Bool(opts.StrictCastWarnings).
		Int(int64(opts.Style))
	// Elide folds in only when set, so pre-elision keys stay byte-stable
	// (warm disk tiers keep serving the classic treatments).
	if opts.Elide {
		k = k.Bool(true)
	}
	return k.Sum()
}

// annotated is the cached product of one annotator execution. size is
// the accounted cache size, carried so the disk tier restores an entry
// with the same LRU charge it was computed with.
type annotated struct {
	output     string
	warnings   []string
	inserted   int
	suppressed int
	temps      int
	elided     int
	size       int64
}

// stageBuildError translates a pipeline build failure into the handler
// error vocabulary: context errors pass through raw (so the middleware
// maps them to 504/499), injected faults surface as 500s like every
// other injection, and genuine stage failures become 422s prefixed the
// way the pre-pipeline monolithic path spelled them.
func stageBuildError(err error) error {
	var se *pipeline.StageError
	if !errors.As(err, &se) {
		return err
	}
	if errors.Is(se.Err, context.Canceled) || errors.Is(se.Err, context.DeadlineExceeded) {
		return se.Err
	}
	if errors.Is(se.Err, faultinject.ErrInjected) {
		return errf(http.StatusInternalServerError, "%v", se.Err)
	}
	switch se.Stage {
	case pipeline.StageLex, pipeline.StageParse, pipeline.StageTypecheck:
		return errf(http.StatusUnprocessableEntity, "parse: %v", se.Err)
	case pipeline.StageAnnotate:
		return errf(http.StatusUnprocessableEntity, "annotate: %v", se.Err)
	default:
		return errf(http.StatusUnprocessableEntity, "compile: %v", se.Err)
	}
}

// annotate runs the preprocessor through the artifact cache. The outer
// whole-product entry keyed by annotateKey is what the disk tier
// persists and the stampede guarantee counts; beneath it the stage
// runner shares Lex/Parse/Typecheck with every other endpoint that saw
// the same source.
func (s *Server) annotate(ctx context.Context, name, src string, opts gcsafe.Options) (*annotated, bool, error) {
	if name == "" {
		name = "input.c"
	}
	key := annotateKey(src, opts)
	v, hit, err := s.cache.GetOrCompute(ctx, key, func() (any, int64, error) {
		// Local memory and disk both missed. Before computing, try the
		// cluster rung of the ladder: the key's owning peer get-or-computes
		// it once for the whole cluster. Any peer failure falls through to
		// a local compute — availability over dedup.
		if pv, psize, ok := s.peerFetch(ctx, key, familyAnnotate, annotateRecipe(name, src, opts)); ok {
			return pv, psize, nil
		}
		// annotations counts true local annotator executions only (not
		// artifacts fetched from peers), so summing the counter across a
		// cluster measures how many times the work was really done.
		s.annotations.Add(1)
		res, _, err := s.pipeline.Annotate(ctx, name, src, opts)
		if err != nil {
			var se *pipeline.StageError
			if errors.As(err, &se) {
				// The monolithic path reported annotator/parser errors
				// bare, with no stage prefix; keep that wire format.
				if errors.Is(se.Err, context.Canceled) || errors.Is(se.Err, context.DeadlineExceeded) {
					return nil, 0, se.Err
				}
				if errors.Is(se.Err, faultinject.ErrInjected) {
					return nil, 0, errf(http.StatusInternalServerError, "%v", se.Err)
				}
				return nil, 0, errf(http.StatusUnprocessableEntity, "%v", se.Err)
			}
			return nil, 0, err
		}
		a := &annotated{
			output:     res.Output,
			inserted:   res.Inserted,
			suppressed: res.Suppressed,
			temps:      res.Temps,
			elided:     res.Elided,
			size:       int64(len(src) + len(res.Output) + 256),
		}
		for _, w := range res.Warnings {
			a.warnings = append(a.warnings, w.String())
		}
		// A fallback compute of a remotely owned key leaves the owner
		// without the artifact; repair the placement asynchronously.
		s.peerRepair(ctx, key, a)
		return a, a.size, nil
	})
	if err != nil {
		return nil, false, err
	}
	return v.(*annotated), hit, nil
}

func (s *Server) handleAnnotate(w http.ResponseWriter, r *http.Request) error {
	var req AnnotateRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	opts, err := req.options()
	if err != nil {
		return err
	}
	a, hit, err := s.annotate(r.Context(), req.Name, req.Source, opts)
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, AnnotateResponse{
		Output:     a.output,
		Warnings:   a.warnings,
		Inserted:   a.inserted,
		Suppressed: a.suppressed,
		Temps:      a.temps,
		Elided:     a.elided,
		CacheHit:   hit,
	})
	return nil
}

// CheckRequest asks for source diagnostics only: the preprocessor's
// warnings (nonpointer-to-pointer conversions, memcpy shapes, and — by
// default here — the strict structure-cast check), without the rewritten
// output.
type CheckRequest struct {
	Name   string `json:"name"`
	Source string `json:"source"`
}

// CheckResponse lists the diagnostics.
type CheckResponse struct {
	Warnings []string `json:"warnings"`
	Clean    bool     `json:"clean"`
	CacheHit bool     `json:"cache_hit"`
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) error {
	var req CheckRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	a, hit, err := s.annotate(r.Context(), req.Name, req.Source,
		gcsafe.Options{StrictCastWarnings: true})
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, CheckResponse{
		Warnings: a.warnings,
		Clean:    len(a.warnings) == 0,
		CacheHit: hit,
	})
	return nil
}

// CompileRequest selects one cell of the paper's treatment space for a
// caller-supplied translation unit.
type CompileRequest struct {
	Name   string `json:"name"`
	Source string `json:"source"`
	// Machine is ss2, ss10 (default) or p90.
	Machine string `json:"machine"`
	// Annotate is "none" (default), "safe", "checked" or "temporal".
	Annotate string `json:"annotate"`
	Optimize bool   `json:"optimize"`
	// Post runs the peephole postprocessor.
	Post bool `json:"post"`
	// Elide turns on the liveness-based elision analysis for annotated
	// treatments.
	Elide bool `json:"elide"`
	// Listing asks for the assembly listing in the response.
	Listing bool `json:"listing"`
}

// CompileResponse describes the compiled artifact.
type CompileResponse struct {
	// Size is the static instruction count of the processed code.
	Size     int    `json:"size"`
	Machine  string `json:"machine"`
	Listing  string `json:"listing,omitempty"`
	CacheHit bool   `json:"cache_hit"`
}

// compiled is the cached product of one compiler execution. The Program
// is immutable after the peephole pass and shared by every subsequent
// run. accounted is the cache size charge, carried for the disk tier.
type compiled struct {
	prog      *machine.Program
	size      int
	accounted int64
}

func compileKey(src string, ann fuzz.Annotation, optimize, post, elide bool, cfg machine.Config) artifact.Key {
	k := artifact.NewKey("compile").
		Str(src).
		Int(int64(ann)).
		Bool(optimize).
		Bool(post).
		Str(cfg.Name)
	// Elide folds in only when set (key stability for the classic cells).
	if elide {
		k = k.Bool(true)
	}
	return k.Sum()
}

func annotationByName(name string) (fuzz.Annotation, error) {
	switch name {
	case "", "none":
		return fuzz.AnnotateNone, nil
	case "safe":
		return fuzz.AnnotateSafe, nil
	case "checked":
		return fuzz.AnnotateChecked, nil
	case "temporal":
		return fuzz.AnnotateTemporal, nil
	}
	return 0, errf(http.StatusBadRequest, "unknown annotate %q (want none, safe, checked or temporal)", name)
}

// compile builds one treatment cell through the artifact cache: the
// whole-product entry keyed by compileKey preserves the pre-pipeline
// stampede guarantee (one compile per distinct cell under arbitrary
// concurrency) and the disk-tier restart story, while the stage runner
// beneath it shares the front end and intermediate artifacts across
// cells that differ only in annotation, machine, opt level or peephole
// flag.
func (s *Server) compile(ctx context.Context, name, src string, ann fuzz.Annotation, optimize, post, elide bool, cfg machine.Config) (*compiled, bool, error) {
	if name == "" {
		name = "input.c"
	}
	key := compileKey(src, ann, optimize, post, elide, cfg)
	v, hit, err := s.cache.GetOrCompute(ctx, key, func() (any, int64, error) {
		// The cluster rung: ask the owning peer before running codegen
		// locally (see annotate for the ladder rationale).
		if pv, psize, ok := s.peerFetch(ctx, key, familyCompile, compileRecipe(name, src, ann, optimize, post, elide, cfg)); ok {
			return pv, psize, nil
		}
		// compiles counts true local compiler executions only — the
		// cluster-wide dedup gate is stated in terms of this counter.
		s.compiles.Add(1)
		opts := pipeline.Options{Optimize: optimize, Post: post, Machine: cfg}
		opts.AnnotateOptions.Elide = elide
		switch ann {
		case fuzz.AnnotateSafe:
			opts.Annotate = true
		case fuzz.AnnotateChecked:
			opts.Annotate = true
			opts.AnnotateOptions.Mode = gcsafe.ModeChecked
		case fuzz.AnnotateTemporal:
			opts.Annotate = true
			opts.AnnotateOptions.Mode = gcsafe.ModeTemporal
		}
		res, err := s.pipeline.Build(ctx, name, src, opts)
		if err != nil {
			return nil, 0, stageBuildError(err)
		}
		prog := res.Prog
		c := &compiled{prog: prog, size: prog.Size()}
		// Accounted size: instruction words plus the static segment, with
		// a per-function overhead allowance.
		c.accounted = int64(c.size)*16 + int64(len(prog.Data)) + int64(len(prog.Funcs))*64 + 256
		s.peerRepair(ctx, key, c)
		return c, c.accounted, nil
	})
	if err != nil {
		return nil, false, err
	}
	return v.(*compiled), hit, nil
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) error {
	var req CompileRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	cfg, err := machineByName(req.Machine)
	if err != nil {
		return err
	}
	ann, err := annotationByName(req.Annotate)
	if err != nil {
		return err
	}
	c, hit, err := s.compile(r.Context(), req.Name, req.Source, ann, req.Optimize, req.Post, req.Elide, cfg)
	if err != nil {
		return err
	}
	resp := CompileResponse{Size: c.size, Machine: cfg.Name, CacheHit: hit}
	if req.Listing {
		resp.Listing = c.prog.Listing()
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// RunRequest compiles (through the cache) and executes a program.
type RunRequest struct {
	CompileRequest
	// Engine selects the execution backend: "interp" (default) or
	// "threaded". Unknown names are rejected with a 400 listing the valid
	// engines. Both backends produce bit-identical simulated results; the
	// knob exists for wall-clock behavior and for differential exercise.
	Engine string `json:"engine"`
	// Input is the byte stream consumed by getchar().
	Input string `json:"input"`
	// GCEvery triggers a collection every n instructions (async regime).
	GCEvery uint64 `json:"gc_every"`
	// CollectAtEveryAlloc forces a collection at every allocation (the
	// adversarial schedule).
	CollectAtEveryAlloc bool `json:"collect_at_every_alloc"`
	// Validate arms the premature-reclamation detector.
	Validate bool `json:"validate"`
	// Temporal arms the allocation-epoch checker (use with annotate
	// "temporal" so frees reach the runtime as GC_free).
	Temporal bool `json:"temporal"`
	// Threads > 1 runs the program on the concurrent-mutator simulation.
	Threads int `json:"threads"`
	// SchedSeed selects the deterministic interleaving (0 = default).
	SchedSeed uint64 `json:"sched_seed"`
	// CollectAtSwitch forces a collection at every context switch (the
	// adversarial concurrent schedule).
	CollectAtSwitch bool `json:"collect_at_switch"`
	// BaseOnly selects the collector's Extensions-section operating mode.
	BaseOnly bool `json:"base_only"`
	// MaxSteps caps executed instructions; clamped to the server ceiling.
	MaxSteps uint64 `json:"max_steps"`
	// TimeoutMs caps wall time; clamped to the server ceiling.
	TimeoutMs int64 `json:"timeout_ms"`
}

// RunResponse reports one execution. A run-time fault of the simulated
// program (including premature-reclamation detections and failed pointer
// checks) is data, not an HTTP error: the pipeline did its job.
type RunResponse struct {
	Output      string `json:"output"`
	ExitCode    int32  `json:"exit_code"`
	Fault       string `json:"fault,omitempty"`
	CheckFailed bool   `json:"check_failed,omitempty"`
	StepLimit   bool   `json:"step_limit,omitempty"`
	Cycles      uint64 `json:"cycles"`
	Instrs      uint64 `json:"instrs"`
	Collections uint64 `json:"gc_collections"`
	Allocated   uint64 `json:"gc_objects_allocated"`
	Size        int    `json:"size"`
	CacheHit    bool   `json:"cache_hit"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) error {
	var req RunRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	cfg, err := machineByName(req.Machine)
	if err != nil {
		return err
	}
	ann, err := annotationByName(req.Annotate)
	if err != nil {
		return err
	}
	if _, err := engine.Lookup(req.Engine); err != nil {
		// Lookup's error text carries the valid-engine list.
		return errf(http.StatusBadRequest, "%v", err)
	}
	c, hit, err := s.compile(r.Context(), req.Name, req.Source, ann, req.Optimize, req.Post, req.Elide, cfg)
	if err != nil {
		return err
	}
	if req.Threads < 0 || req.Threads > maxRunThreads {
		return errf(http.StatusBadRequest, "threads %d out of range (max %d)", req.Threads, maxRunThreads)
	}
	ctx, cancel := s.runContext(r.Context(), req.TimeoutMs)
	defer cancel()
	steps := s.cfg.MaxSteps
	if req.MaxSteps > 0 && req.MaxSteps < steps {
		steps = req.MaxSteps
	}
	res, runErr := interp.RunContext(ctx, c.prog, interp.Options{
		Engine:              req.Engine,
		Config:              cfg,
		Input:               req.Input,
		GCEveryInstrs:       req.GCEvery,
		CollectAtEveryAlloc: req.CollectAtEveryAlloc,
		Validate:            req.Validate,
		Temporal:            req.Temporal,
		Threads:             req.Threads,
		SchedSeed:           req.SchedSeed,
		CollectAtSwitch:     req.CollectAtSwitch,
		BaseOnlyHeap:        req.BaseOnly,
		MaxInstrs:           steps,
		Faults:              faultinject.FromContext(r.Context()),
	})
	if runErr != nil && (errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded)) {
		return runErr
	}
	resp := RunResponse{Size: c.size, CacheHit: hit}
	if res != nil {
		resp.Output = res.Output
		resp.ExitCode = res.ExitCode
		resp.Cycles = res.Cycles
		resp.Instrs = res.Instrs
		resp.Collections = res.GCStats.Collections
		resp.Allocated = res.GCStats.ObjectsAlloced
		s.metrics.runs.record(res.Instrs, res.Cycles, res.GCStats, runErr != nil)
		s.metrics.recordEngineRun(req.Engine)
	}
	if runErr != nil {
		resp.Fault = runErr.Error()
		resp.StepLimit = errors.Is(runErr, interp.ErrInstrLimit)
		var ce *interp.CheckError
		resp.CheckFailed = errors.As(runErr, &ce)
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// runContext derives the execution context: the request's own context,
// bounded by the server ceiling, tightened further if the request asked
// for less.
func (s *Server) runContext(parent context.Context, timeoutMs int64) (context.Context, context.CancelFunc) {
	d := s.cfg.RunTimeout
	if timeoutMs > 0 {
		if rd := time.Duration(timeoutMs) * time.Millisecond; rd < d {
			d = rd
		}
	}
	return context.WithTimeout(parent, d)
}

// MatrixRequest runs one generated program through the differential
// treatment matrix (see internal/fuzz): the service form of fuzzcheck.
type MatrixRequest struct {
	// Seed selects the generated program deterministically.
	Seed int64 `json:"seed"`
	// Steps is the number of operations in the program body (default 8,
	// capped at 64).
	Steps int `json:"steps"`
	// Machines restricts the matrix (subset of ss2, ss10, p90).
	Machines []string `json:"machines"`
	// SkipAdversarial drops the hostile-schedule runs.
	SkipAdversarial bool `json:"skip_adversarial"`
	// Engine is the backend the base treatments run on ("" = interp);
	// unknown names get a 400 with the valid-engine list.
	Engine string `json:"engine"`
	// SkipEngineTwins drops the engine-twin comparison runs (halving the
	// matrix cost when only one engine's classification is wanted).
	SkipEngineTwins bool `json:"skip_engine_twins"`
}

// MatrixResponse summarizes the matrix outcome.
type MatrixResponse struct {
	Label                 string   `json:"label"`
	Source                string   `json:"source"`
	Want                  string   `json:"want"`
	Treatments            int      `json:"treatments"`
	Violations            []string `json:"violations"`
	UnsafeFailures        int      `json:"unsafe_failures"`
	PrematureReclamations int      `json:"premature_reclamations"`
	// TemporalDetections counts temporal-mode treatments that correctly
	// flagged the program's seeded use-after-free or double-free.
	TemporalDetections int `json:"temporal_detections"`
	// RaceDetections counts unsafe concurrent treatments whose failure was
	// a cross-thread premature reclamation.
	RaceDetections int `json:"race_detections"`
	// EngineDivergences are engine-twin disagreements — always expected
	// empty; any entry is an engine bug (see internal/fuzz).
	EngineDivergences []string `json:"engine_divergences"`
}

const maxMatrixSteps = 64

// maxRunThreads bounds the concurrent-mutator simulation per request: the
// threads share one simulated stack region, and the interpreter rejects
// segments that would be too small anyway.
const maxRunThreads = 16

func (s *Server) handleMatrix(w http.ResponseWriter, r *http.Request) error {
	var req MatrixRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	if req.Steps <= 0 {
		req.Steps = 8
	}
	if req.Steps > maxMatrixSteps {
		return errf(http.StatusBadRequest, "steps %d exceeds the cap (%d)", req.Steps, maxMatrixSteps)
	}
	var machines []machine.Config
	for _, name := range req.Machines {
		cfg, err := machineByName(name)
		if err != nil {
			return err
		}
		machines = append(machines, cfg)
	}
	if _, err := engine.Lookup(req.Engine); err != nil {
		return errf(http.StatusBadRequest, "%v", err)
	}
	ctx, cancel := s.runContext(r.Context(), 0)
	defer cancel()
	p := fuzz.Generate(req.Seed, req.Steps)
	m, err := fuzz.RunMatrixContext(ctx, p, fuzz.MatrixOptions{
		Machines:        machines,
		SkipAdversarial: req.SkipAdversarial,
		MaxInstrs:       s.cfg.MaxSteps,
		Parallel:        s.cfg.Parallel,
		Engine:          req.Engine,
		SkipEngineTwins: req.SkipEngineTwins,
	})
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		return errf(http.StatusUnprocessableEntity, "matrix: %v", err)
	}
	resp := MatrixResponse{
		Label:                 p.Label,
		Source:                p.Source,
		Want:                  p.Want,
		Treatments:            len(m.Results),
		Violations:            []string{},
		UnsafeFailures:        len(m.UnsafeFailures),
		PrematureReclamations: m.PrematureReclamations(),
		TemporalDetections:    len(m.TemporalDetections),
		RaceDetections:        m.RaceDetections(),
		EngineDivergences:     []string{},
	}
	for _, v := range m.Violations {
		resp.Violations = append(resp.Violations, v.Name()+": "+describeOutcome(v))
	}
	for _, d := range m.EngineDivergences {
		resp.EngineDivergences = append(resp.EngineDivergences, d.String())
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}

func describeOutcome(r fuzz.TreatmentResult) string {
	if r.Err != nil {
		return r.Err.Error()
	}
	return "output diverged"
}
