package server

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gcsafety/internal/artifact"
	"gcsafety/internal/cluster"
	"gcsafety/internal/engine"
	"gcsafety/internal/gc"
	"gcsafety/internal/pipeline"
)

// latencyBucketsMs are the upper bounds (inclusive, in milliseconds) of
// the request-latency histogram; the final implicit bucket is +Inf.
var latencyBucketsMs = [...]float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// histogram is a fixed-bucket latency histogram safe for concurrent use.
type histogram struct {
	counts [len(latencyBucketsMs) + 1]atomic.Uint64
	sumNs  atomic.Uint64
	n      atomic.Uint64
}

func (h *histogram) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for ; i < len(latencyBucketsMs); i++ {
		if ms <= latencyBucketsMs[i] {
			break
		}
	}
	h.counts[i].Add(1)
	h.sumNs.Add(uint64(d))
	h.n.Add(1)
}

// HistogramSnapshot is the JSON form of one latency histogram.
type HistogramSnapshot struct {
	// Buckets maps "le_<bound>" / "le_inf" to observation counts.
	Buckets map[string]uint64 `json:"buckets"`
	Count   uint64            `json:"count"`
	SumMs   float64           `json:"sum_ms"`
	MeanMs  float64           `json:"mean_ms"`
}

func (h *histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Buckets: map[string]uint64{}}
	for i, b := range latencyBucketsMs {
		s.Buckets[bucketLabel(b)] = h.counts[i].Load()
	}
	s.Buckets["le_inf"] = h.counts[len(latencyBucketsMs)].Load()
	s.Count = h.n.Load()
	s.SumMs = float64(h.sumNs.Load()) / float64(time.Millisecond)
	if s.Count > 0 {
		s.MeanMs = s.SumMs / float64(s.Count)
	}
	return s
}

func bucketLabel(b float64) string {
	return "le_" + strconv.FormatFloat(b, 'g', -1, 64)
}

// endpointMetrics aggregates one route's traffic.
type endpointMetrics struct {
	requests atomic.Uint64 // all completed requests
	errors   atomic.Uint64 // 4xx/5xx responses
	latency  histogram
}

// EndpointSnapshot is the JSON form of one route's counters.
type EndpointSnapshot struct {
	Requests  uint64            `json:"requests"`
	Errors    uint64            `json:"errors"`
	LatencyMs HistogramSnapshot `json:"latency_ms"`
}

// runMetrics accumulates interpreter activity across /v1/run and
// /v1/matrix requests — the service-level view of collector behavior.
type runMetrics struct {
	programs    atomic.Uint64
	faults      atomic.Uint64
	instrs      atomic.Uint64
	cycles      atomic.Uint64
	collections atomic.Uint64
	objects     atomic.Uint64
	bytesAlloc  atomic.Uint64
}

func (r *runMetrics) record(instrs, cycles uint64, st gc.Stats, faulted bool) {
	r.programs.Add(1)
	if faulted {
		r.faults.Add(1)
	}
	r.instrs.Add(instrs)
	r.cycles.Add(cycles)
	r.collections.Add(st.Collections)
	r.objects.Add(st.ObjectsAlloced)
	r.bytesAlloc.Add(st.BytesAllocated)
}

// RunSnapshot is the JSON form of accumulated interpreter activity.
type RunSnapshot struct {
	Programs       uint64 `json:"programs"`
	Faults         uint64 `json:"faults"`
	Instrs         uint64 `json:"instrs"`
	Cycles         uint64 `json:"cycles"`
	Collections    uint64 `json:"gc_collections"`
	ObjectsAlloced uint64 `json:"gc_objects_allocated"`
	BytesAllocated uint64 `json:"gc_bytes_allocated"`
}

// EngineSnapshot is the /metrics engine section: which execution
// backends this build registers, which one an empty request selects, and
// how many /v1/run executions each has served.
type EngineSnapshot struct {
	Registered []string          `json:"registered"`
	Default    string            `json:"default"`
	Runs       map[string]uint64 `json:"runs"`
}

// recordEngineRun counts one /v1/run execution against its (resolved)
// engine name.
func (m *metrics) recordEngineRun(name string) {
	if name == "" {
		name = engine.DefaultName
	}
	m.mu.Lock()
	if m.engineRuns == nil {
		m.engineRuns = map[string]uint64{}
	}
	m.engineRuns[name]++
	m.mu.Unlock()
}

// heapMetrics accumulates /v1/heapdump activity: a snapshot count with a
// capture-duration histogram, plus the most recent snapshot's live-set
// gauges and the largest allocation epoch any snapshot has carried.
type heapMetrics struct {
	snapshots   atomic.Uint64
	liveObjects atomic.Uint64 // most recent snapshot
	liveBytes   atomic.Uint64 // most recent snapshot
	epochHW     atomic.Uint64 // max across snapshots
	duration    histogram
}

func (h *heapMetrics) record(objects int, bytes uint64, epoch uint32, d time.Duration) {
	h.snapshots.Add(1)
	h.liveObjects.Store(uint64(objects))
	h.liveBytes.Store(bytes)
	for {
		cur := h.epochHW.Load()
		if uint64(epoch) <= cur || h.epochHW.CompareAndSwap(cur, uint64(epoch)) {
			break
		}
	}
	h.duration.observe(d)
}

// HeapMetricsSnapshot is the JSON form of the /metrics heap section.
type HeapMetricsSnapshot struct {
	Snapshots      uint64            `json:"snapshots"`
	LiveObjects    uint64            `json:"live_objects"`
	LiveBytes      uint64            `json:"live_bytes"`
	EpochHighWater uint64            `json:"epoch_high_water"`
	DurationMs     HistogramSnapshot `json:"snapshot_duration_ms"`
}

// PanicSnapshot describes the most recent recovered handler panic: the
// observability half of the recovery middleware, so a fleet operator can
// see *what* crashed without shelling into the box.
type PanicSnapshot struct {
	Endpoint string `json:"endpoint"`
	Value    string `json:"value"`
	Stack    string `json:"stack"`
	At       string `json:"at"` // RFC3339
}

// panicStackLimit bounds the captured stack so /metrics stays readable.
const panicStackLimit = 8 << 10

// metrics is the server-wide registry.
type metrics struct {
	start      time.Time
	mu         sync.Mutex
	endpoints  map[string]*endpointMetrics
	lastPanic  *PanicSnapshot // guarded by mu
	shed       atomic.Uint64
	drained    atomic.Uint64
	panics     atomic.Uint64
	inflight   atomic.Int64
	runs       runMetrics
	heap       heapMetrics
	engineRuns map[string]uint64 // guarded by mu
}

// recordPanic captures a recovered handler panic into the registry.
func (m *metrics) recordPanic(endpoint string, value any, stack []byte) {
	m.panics.Add(1)
	if len(stack) > panicStackLimit {
		stack = stack[:panicStackLimit]
	}
	snap := &PanicSnapshot{
		Endpoint: endpoint,
		Value:    fmt.Sprint(value),
		Stack:    string(stack),
		At:       time.Now().UTC().Format(time.RFC3339),
	}
	m.mu.Lock()
	m.lastPanic = snap
	m.mu.Unlock()
}

func newMetrics() *metrics {
	return &metrics{start: time.Now(), endpoints: map[string]*endpointMetrics{}}
}

func (m *metrics) endpoint(name string) *endpointMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	em, ok := m.endpoints[name]
	if !ok {
		em = &endpointMetrics{}
		m.endpoints[name] = em
	}
	return em
}

// Snapshot is the full /metrics document.
type Snapshot struct {
	UptimeSeconds float64                     `json:"uptime_seconds"`
	Endpoints     map[string]EndpointSnapshot `json:"endpoints"`
	Shed          uint64                      `json:"shed"`
	// Drained counts requests refused with 503 because shutdown had begun.
	Drained  uint64 `json:"drained"`
	Draining bool   `json:"draining"`
	// Panics counts handler panics absorbed by the recovery middleware;
	// LastPanic carries the most recent one's stack.
	Panics    uint64         `json:"panics"`
	LastPanic *PanicSnapshot `json:"last_panic,omitempty"`
	InFlight  int64          `json:"in_flight"`
	Cache     artifact.Stats `json:"cache"`
	// DiskRecovery reports the disk tier's startup verification when one
	// is configured; DiskError explains a tier that failed to open.
	DiskRecovery *artifact.RecoverStats `json:"disk_recovery,omitempty"`
	DiskError    string                 `json:"disk_error,omitempty"`
	Compiles     uint64                 `json:"compiles"`
	Annotations  uint64                 `json:"annotations"`
	// Pipeline reports per-stage execution counters from the stage-graph
	// runner: calls, cache hits/misses, errors and cumulative duration for
	// each of lex/parse/typecheck/liveness/annotate/codegen/optimize/
	// peephole/lower.
	Pipeline []pipeline.StageStat `json:"pipeline,omitempty"`
	// Elision aggregates the annotator's liveness-elision outcomes across
	// every elision-enabled annotate computation this server performed
	// (omitted until the first one).
	Elision *pipeline.ElisionStat `json:"elision,omitempty"`
	Runs    RunSnapshot           `json:"runs"`
	// Engine reports the execution backends: the registered set, the
	// default, and per-engine /v1/run counts.
	Engine EngineSnapshot `json:"engine"`
	// Heap reports /v1/heapdump activity: snapshot counts, capture
	// durations, the most recent live set, and the epoch high-water mark.
	Heap HeapMetricsSnapshot `json:"heap"`
	// Cluster reports cache-peering health when this node is clustered:
	// membership, per-peer hit/error/breaker state, and the
	// fallback-vs-remote-hit split that measures dedup effectiveness.
	Cluster *cluster.Snapshot `json:"cluster,omitempty"`
}

func (m *metrics) snapshot(cache artifact.Stats, compiles, annotations uint64) Snapshot {
	s := Snapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Endpoints:     map[string]EndpointSnapshot{},
		Shed:          m.shed.Load(),
		Drained:       m.drained.Load(),
		Panics:        m.panics.Load(),
		InFlight:      m.inflight.Load(),
		Cache:         cache,
		Compiles:      compiles,
		Annotations:   annotations,
		Runs: RunSnapshot{
			Programs:       m.runs.programs.Load(),
			Faults:         m.runs.faults.Load(),
			Instrs:         m.runs.instrs.Load(),
			Cycles:         m.runs.cycles.Load(),
			Collections:    m.runs.collections.Load(),
			ObjectsAlloced: m.runs.objects.Load(),
			BytesAllocated: m.runs.bytesAlloc.Load(),
		},
		Engine: EngineSnapshot{
			Registered: engine.Names(),
			Default:    engine.DefaultName,
			Runs:       map[string]uint64{},
		},
		Heap: HeapMetricsSnapshot{
			Snapshots:      m.heap.snapshots.Load(),
			LiveObjects:    m.heap.liveObjects.Load(),
			LiveBytes:      m.heap.liveBytes.Load(),
			EpochHighWater: m.heap.epochHW.Load(),
			DurationMs:     m.heap.duration.snapshot(),
		},
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, n := range m.engineRuns {
		s.Engine.Runs[name] = n
	}
	s.LastPanic = m.lastPanic
	for name, em := range m.endpoints {
		s.Endpoints[name] = EndpointSnapshot{
			Requests:  em.requests.Load(),
			Errors:    em.errors.Load(),
			LatencyMs: em.latency.snapshot(),
		}
	}
	return s
}
